file(REMOVE_RECURSE
  "CMakeFiles/skew_join.dir/skew_join.cpp.o"
  "CMakeFiles/skew_join.dir/skew_join.cpp.o.d"
  "skew_join"
  "skew_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
