# Empty compiler generated dependencies file for skew_join.
# This may be replaced when dependencies are built.
