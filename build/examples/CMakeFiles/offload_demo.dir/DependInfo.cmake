
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/offload_demo.cpp" "examples/CMakeFiles/offload_demo.dir/offload_demo.cpp.o" "gcc" "examples/CMakeFiles/offload_demo.dir/offload_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hostdb/CMakeFiles/rapid_hostdb.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rapid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dpu/CMakeFiles/rapid_dpu.dir/DependInfo.cmake"
  "/root/repo/build/src/primitives/CMakeFiles/rapid_primitives.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rapid_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rapid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
