# Empty dependencies file for offload_demo.
# This may be replaced when dependencies are built.
