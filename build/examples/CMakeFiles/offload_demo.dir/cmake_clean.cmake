file(REMOVE_RECURSE
  "CMakeFiles/offload_demo.dir/offload_demo.cpp.o"
  "CMakeFiles/offload_demo.dir/offload_demo.cpp.o.d"
  "offload_demo"
  "offload_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
