
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/rapid_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/rapid_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/dpu_test.cc" "tests/CMakeFiles/rapid_tests.dir/dpu_test.cc.o" "gcc" "tests/CMakeFiles/rapid_tests.dir/dpu_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/rapid_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/rapid_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/rapid_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/rapid_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/format_test.cc" "tests/CMakeFiles/rapid_tests.dir/format_test.cc.o" "gcc" "tests/CMakeFiles/rapid_tests.dir/format_test.cc.o.d"
  "/root/repo/tests/hostdb_test.cc" "tests/CMakeFiles/rapid_tests.dir/hostdb_test.cc.o" "gcc" "tests/CMakeFiles/rapid_tests.dir/hostdb_test.cc.o.d"
  "/root/repo/tests/ops_test.cc" "tests/CMakeFiles/rapid_tests.dir/ops_test.cc.o" "gcc" "tests/CMakeFiles/rapid_tests.dir/ops_test.cc.o.d"
  "/root/repo/tests/primitives_test.cc" "tests/CMakeFiles/rapid_tests.dir/primitives_test.cc.o" "gcc" "tests/CMakeFiles/rapid_tests.dir/primitives_test.cc.o.d"
  "/root/repo/tests/qcomp_test.cc" "tests/CMakeFiles/rapid_tests.dir/qcomp_test.cc.o" "gcc" "tests/CMakeFiles/rapid_tests.dir/qcomp_test.cc.o.d"
  "/root/repo/tests/serde_test.cc" "tests/CMakeFiles/rapid_tests.dir/serde_test.cc.o" "gcc" "tests/CMakeFiles/rapid_tests.dir/serde_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/rapid_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/rapid_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/sweeps_test.cc" "tests/CMakeFiles/rapid_tests.dir/sweeps_test.cc.o" "gcc" "tests/CMakeFiles/rapid_tests.dir/sweeps_test.cc.o.d"
  "/root/repo/tests/tpch_test.cc" "tests/CMakeFiles/rapid_tests.dir/tpch_test.cc.o" "gcc" "tests/CMakeFiles/rapid_tests.dir/tpch_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rapid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hostdb/CMakeFiles/rapid_hostdb.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/rapid_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/dpu/CMakeFiles/rapid_dpu.dir/DependInfo.cmake"
  "/root/repo/build/src/primitives/CMakeFiles/rapid_primitives.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rapid_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rapid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
