file(REMOVE_RECURSE
  "CMakeFiles/rapid_tests.dir/common_test.cc.o"
  "CMakeFiles/rapid_tests.dir/common_test.cc.o.d"
  "CMakeFiles/rapid_tests.dir/dpu_test.cc.o"
  "CMakeFiles/rapid_tests.dir/dpu_test.cc.o.d"
  "CMakeFiles/rapid_tests.dir/engine_test.cc.o"
  "CMakeFiles/rapid_tests.dir/engine_test.cc.o.d"
  "CMakeFiles/rapid_tests.dir/extensions_test.cc.o"
  "CMakeFiles/rapid_tests.dir/extensions_test.cc.o.d"
  "CMakeFiles/rapid_tests.dir/format_test.cc.o"
  "CMakeFiles/rapid_tests.dir/format_test.cc.o.d"
  "CMakeFiles/rapid_tests.dir/hostdb_test.cc.o"
  "CMakeFiles/rapid_tests.dir/hostdb_test.cc.o.d"
  "CMakeFiles/rapid_tests.dir/ops_test.cc.o"
  "CMakeFiles/rapid_tests.dir/ops_test.cc.o.d"
  "CMakeFiles/rapid_tests.dir/primitives_test.cc.o"
  "CMakeFiles/rapid_tests.dir/primitives_test.cc.o.d"
  "CMakeFiles/rapid_tests.dir/qcomp_test.cc.o"
  "CMakeFiles/rapid_tests.dir/qcomp_test.cc.o.d"
  "CMakeFiles/rapid_tests.dir/serde_test.cc.o"
  "CMakeFiles/rapid_tests.dir/serde_test.cc.o.d"
  "CMakeFiles/rapid_tests.dir/storage_test.cc.o"
  "CMakeFiles/rapid_tests.dir/storage_test.cc.o.d"
  "CMakeFiles/rapid_tests.dir/sweeps_test.cc.o"
  "CMakeFiles/rapid_tests.dir/sweeps_test.cc.o.d"
  "CMakeFiles/rapid_tests.dir/tpch_test.cc.o"
  "CMakeFiles/rapid_tests.dir/tpch_test.cc.o.d"
  "rapid_tests"
  "rapid_tests.pdb"
  "rapid_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
