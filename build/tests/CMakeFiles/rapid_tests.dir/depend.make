# Empty dependencies file for rapid_tests.
# This may be replaced when dependencies are built.
