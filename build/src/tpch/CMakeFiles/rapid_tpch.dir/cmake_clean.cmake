file(REMOVE_RECURSE
  "CMakeFiles/rapid_tpch.dir/queries.cc.o"
  "CMakeFiles/rapid_tpch.dir/queries.cc.o.d"
  "CMakeFiles/rapid_tpch.dir/tpch_gen.cc.o"
  "CMakeFiles/rapid_tpch.dir/tpch_gen.cc.o.d"
  "librapid_tpch.a"
  "librapid_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
