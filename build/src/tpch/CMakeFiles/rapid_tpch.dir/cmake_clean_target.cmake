file(REMOVE_RECURSE
  "librapid_tpch.a"
)
