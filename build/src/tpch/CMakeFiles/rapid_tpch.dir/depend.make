# Empty dependencies file for rapid_tpch.
# This may be replaced when dependencies are built.
