
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/dictionary.cc" "src/storage/CMakeFiles/rapid_storage.dir/dictionary.cc.o" "gcc" "src/storage/CMakeFiles/rapid_storage.dir/dictionary.cc.o.d"
  "/root/repo/src/storage/dsb.cc" "src/storage/CMakeFiles/rapid_storage.dir/dsb.cc.o" "gcc" "src/storage/CMakeFiles/rapid_storage.dir/dsb.cc.o.d"
  "/root/repo/src/storage/encoding_stack.cc" "src/storage/CMakeFiles/rapid_storage.dir/encoding_stack.cc.o" "gcc" "src/storage/CMakeFiles/rapid_storage.dir/encoding_stack.cc.o.d"
  "/root/repo/src/storage/loader.cc" "src/storage/CMakeFiles/rapid_storage.dir/loader.cc.o" "gcc" "src/storage/CMakeFiles/rapid_storage.dir/loader.cc.o.d"
  "/root/repo/src/storage/rle.cc" "src/storage/CMakeFiles/rapid_storage.dir/rle.cc.o" "gcc" "src/storage/CMakeFiles/rapid_storage.dir/rle.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/storage/CMakeFiles/rapid_storage.dir/table.cc.o" "gcc" "src/storage/CMakeFiles/rapid_storage.dir/table.cc.o.d"
  "/root/repo/src/storage/update.cc" "src/storage/CMakeFiles/rapid_storage.dir/update.cc.o" "gcc" "src/storage/CMakeFiles/rapid_storage.dir/update.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rapid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
