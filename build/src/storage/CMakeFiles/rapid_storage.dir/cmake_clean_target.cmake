file(REMOVE_RECURSE
  "librapid_storage.a"
)
