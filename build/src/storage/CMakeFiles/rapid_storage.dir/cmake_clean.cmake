file(REMOVE_RECURSE
  "CMakeFiles/rapid_storage.dir/dictionary.cc.o"
  "CMakeFiles/rapid_storage.dir/dictionary.cc.o.d"
  "CMakeFiles/rapid_storage.dir/dsb.cc.o"
  "CMakeFiles/rapid_storage.dir/dsb.cc.o.d"
  "CMakeFiles/rapid_storage.dir/encoding_stack.cc.o"
  "CMakeFiles/rapid_storage.dir/encoding_stack.cc.o.d"
  "CMakeFiles/rapid_storage.dir/loader.cc.o"
  "CMakeFiles/rapid_storage.dir/loader.cc.o.d"
  "CMakeFiles/rapid_storage.dir/rle.cc.o"
  "CMakeFiles/rapid_storage.dir/rle.cc.o.d"
  "CMakeFiles/rapid_storage.dir/table.cc.o"
  "CMakeFiles/rapid_storage.dir/table.cc.o.d"
  "CMakeFiles/rapid_storage.dir/update.cc.o"
  "CMakeFiles/rapid_storage.dir/update.cc.o.d"
  "librapid_storage.a"
  "librapid_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
