# Empty compiler generated dependencies file for rapid_storage.
# This may be replaced when dependencies are built.
