file(REMOVE_RECURSE
  "librapid_hostdb.a"
)
