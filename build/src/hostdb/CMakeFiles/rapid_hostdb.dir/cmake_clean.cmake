file(REMOVE_RECURSE
  "CMakeFiles/rapid_hostdb.dir/database.cc.o"
  "CMakeFiles/rapid_hostdb.dir/database.cc.o.d"
  "CMakeFiles/rapid_hostdb.dir/iterator.cc.o"
  "CMakeFiles/rapid_hostdb.dir/iterator.cc.o.d"
  "CMakeFiles/rapid_hostdb.dir/journal.cc.o"
  "CMakeFiles/rapid_hostdb.dir/journal.cc.o.d"
  "CMakeFiles/rapid_hostdb.dir/offload.cc.o"
  "CMakeFiles/rapid_hostdb.dir/offload.cc.o.d"
  "CMakeFiles/rapid_hostdb.dir/volcano.cc.o"
  "CMakeFiles/rapid_hostdb.dir/volcano.cc.o.d"
  "librapid_hostdb.a"
  "librapid_hostdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_hostdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
