# Empty dependencies file for rapid_hostdb.
# This may be replaced when dependencies are built.
