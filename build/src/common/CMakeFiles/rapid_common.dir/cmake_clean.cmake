file(REMOVE_RECURSE
  "CMakeFiles/rapid_common.dir/bitvector.cc.o"
  "CMakeFiles/rapid_common.dir/bitvector.cc.o.d"
  "CMakeFiles/rapid_common.dir/crc32.cc.o"
  "CMakeFiles/rapid_common.dir/crc32.cc.o.d"
  "CMakeFiles/rapid_common.dir/rng.cc.o"
  "CMakeFiles/rapid_common.dir/rng.cc.o.d"
  "CMakeFiles/rapid_common.dir/status.cc.o"
  "CMakeFiles/rapid_common.dir/status.cc.o.d"
  "librapid_common.a"
  "librapid_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
