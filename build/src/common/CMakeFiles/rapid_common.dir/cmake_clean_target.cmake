file(REMOVE_RECURSE
  "librapid_common.a"
)
