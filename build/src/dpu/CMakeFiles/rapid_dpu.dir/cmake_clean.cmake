file(REMOVE_RECURSE
  "CMakeFiles/rapid_dpu.dir/cost_model.cc.o"
  "CMakeFiles/rapid_dpu.dir/cost_model.cc.o.d"
  "CMakeFiles/rapid_dpu.dir/dms.cc.o"
  "CMakeFiles/rapid_dpu.dir/dms.cc.o.d"
  "CMakeFiles/rapid_dpu.dir/dpu.cc.o"
  "CMakeFiles/rapid_dpu.dir/dpu.cc.o.d"
  "librapid_dpu.a"
  "librapid_dpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_dpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
