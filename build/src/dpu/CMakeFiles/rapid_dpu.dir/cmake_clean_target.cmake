file(REMOVE_RECURSE
  "librapid_dpu.a"
)
