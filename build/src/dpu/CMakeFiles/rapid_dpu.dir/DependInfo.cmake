
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpu/cost_model.cc" "src/dpu/CMakeFiles/rapid_dpu.dir/cost_model.cc.o" "gcc" "src/dpu/CMakeFiles/rapid_dpu.dir/cost_model.cc.o.d"
  "/root/repo/src/dpu/dms.cc" "src/dpu/CMakeFiles/rapid_dpu.dir/dms.cc.o" "gcc" "src/dpu/CMakeFiles/rapid_dpu.dir/dms.cc.o.d"
  "/root/repo/src/dpu/dpu.cc" "src/dpu/CMakeFiles/rapid_dpu.dir/dpu.cc.o" "gcc" "src/dpu/CMakeFiles/rapid_dpu.dir/dpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rapid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
