# Empty dependencies file for rapid_dpu.
# This may be replaced when dependencies are built.
