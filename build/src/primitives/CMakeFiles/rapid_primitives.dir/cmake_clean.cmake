file(REMOVE_RECURSE
  "CMakeFiles/rapid_primitives.dir/filter.cc.o"
  "CMakeFiles/rapid_primitives.dir/filter.cc.o.d"
  "CMakeFiles/rapid_primitives.dir/join_kernel.cc.o"
  "CMakeFiles/rapid_primitives.dir/join_kernel.cc.o.d"
  "CMakeFiles/rapid_primitives.dir/partition_map.cc.o"
  "CMakeFiles/rapid_primitives.dir/partition_map.cc.o.d"
  "CMakeFiles/rapid_primitives.dir/registry.cc.o"
  "CMakeFiles/rapid_primitives.dir/registry.cc.o.d"
  "librapid_primitives.a"
  "librapid_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
