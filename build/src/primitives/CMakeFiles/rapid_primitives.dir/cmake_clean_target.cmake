file(REMOVE_RECURSE
  "librapid_primitives.a"
)
