
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/primitives/filter.cc" "src/primitives/CMakeFiles/rapid_primitives.dir/filter.cc.o" "gcc" "src/primitives/CMakeFiles/rapid_primitives.dir/filter.cc.o.d"
  "/root/repo/src/primitives/join_kernel.cc" "src/primitives/CMakeFiles/rapid_primitives.dir/join_kernel.cc.o" "gcc" "src/primitives/CMakeFiles/rapid_primitives.dir/join_kernel.cc.o.d"
  "/root/repo/src/primitives/partition_map.cc" "src/primitives/CMakeFiles/rapid_primitives.dir/partition_map.cc.o" "gcc" "src/primitives/CMakeFiles/rapid_primitives.dir/partition_map.cc.o.d"
  "/root/repo/src/primitives/registry.cc" "src/primitives/CMakeFiles/rapid_primitives.dir/registry.cc.o" "gcc" "src/primitives/CMakeFiles/rapid_primitives.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rapid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rapid_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
