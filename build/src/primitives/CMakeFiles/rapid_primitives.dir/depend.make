# Empty dependencies file for rapid_primitives.
# This may be replaced when dependencies are built.
