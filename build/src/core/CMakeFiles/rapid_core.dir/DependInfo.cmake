
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/rapid_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/engine.cc.o.d"
  "/root/repo/src/core/expr.cc" "src/core/CMakeFiles/rapid_core.dir/expr.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/expr.cc.o.d"
  "/root/repo/src/core/ops/filter_op.cc" "src/core/CMakeFiles/rapid_core.dir/ops/filter_op.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/ops/filter_op.cc.o.d"
  "/root/repo/src/core/ops/groupby_op.cc" "src/core/CMakeFiles/rapid_core.dir/ops/groupby_op.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/ops/groupby_op.cc.o.d"
  "/root/repo/src/core/ops/join_exec.cc" "src/core/CMakeFiles/rapid_core.dir/ops/join_exec.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/ops/join_exec.cc.o.d"
  "/root/repo/src/core/ops/merge_join_exec.cc" "src/core/CMakeFiles/rapid_core.dir/ops/merge_join_exec.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/ops/merge_join_exec.cc.o.d"
  "/root/repo/src/core/ops/partition_exec.cc" "src/core/CMakeFiles/rapid_core.dir/ops/partition_exec.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/ops/partition_exec.cc.o.d"
  "/root/repo/src/core/ops/project_op.cc" "src/core/CMakeFiles/rapid_core.dir/ops/project_op.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/ops/project_op.cc.o.d"
  "/root/repo/src/core/ops/setop_exec.cc" "src/core/CMakeFiles/rapid_core.dir/ops/setop_exec.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/ops/setop_exec.cc.o.d"
  "/root/repo/src/core/ops/sort_exec.cc" "src/core/CMakeFiles/rapid_core.dir/ops/sort_exec.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/ops/sort_exec.cc.o.d"
  "/root/repo/src/core/ops/window_exec.cc" "src/core/CMakeFiles/rapid_core.dir/ops/window_exec.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/ops/window_exec.cc.o.d"
  "/root/repo/src/core/qcomp/cost_model.cc" "src/core/CMakeFiles/rapid_core.dir/qcomp/cost_model.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/qcomp/cost_model.cc.o.d"
  "/root/repo/src/core/qcomp/logical_plan.cc" "src/core/CMakeFiles/rapid_core.dir/qcomp/logical_plan.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/qcomp/logical_plan.cc.o.d"
  "/root/repo/src/core/qcomp/partition_scheme.cc" "src/core/CMakeFiles/rapid_core.dir/qcomp/partition_scheme.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/qcomp/partition_scheme.cc.o.d"
  "/root/repo/src/core/qcomp/plan_serde.cc" "src/core/CMakeFiles/rapid_core.dir/qcomp/plan_serde.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/qcomp/plan_serde.cc.o.d"
  "/root/repo/src/core/qcomp/planner.cc" "src/core/CMakeFiles/rapid_core.dir/qcomp/planner.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/qcomp/planner.cc.o.d"
  "/root/repo/src/core/qcomp/steps.cc" "src/core/CMakeFiles/rapid_core.dir/qcomp/steps.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/qcomp/steps.cc.o.d"
  "/root/repo/src/core/qcomp/task_formation.cc" "src/core/CMakeFiles/rapid_core.dir/qcomp/task_formation.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/qcomp/task_formation.cc.o.d"
  "/root/repo/src/core/qef/column_set.cc" "src/core/CMakeFiles/rapid_core.dir/qef/column_set.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/qef/column_set.cc.o.d"
  "/root/repo/src/core/qef/relation_accessor.cc" "src/core/CMakeFiles/rapid_core.dir/qef/relation_accessor.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/qef/relation_accessor.cc.o.d"
  "/root/repo/src/core/result_format.cc" "src/core/CMakeFiles/rapid_core.dir/result_format.cc.o" "gcc" "src/core/CMakeFiles/rapid_core.dir/result_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rapid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dpu/CMakeFiles/rapid_dpu.dir/DependInfo.cmake"
  "/root/repo/build/src/primitives/CMakeFiles/rapid_primitives.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rapid_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
