file(REMOVE_RECURSE
  "../bench/bench_partition_scheme"
  "../bench/bench_partition_scheme.pdb"
  "CMakeFiles/bench_partition_scheme.dir/bench_partition_scheme.cc.o"
  "CMakeFiles/bench_partition_scheme.dir/bench_partition_scheme.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
