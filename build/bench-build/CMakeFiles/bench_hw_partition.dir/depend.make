# Empty dependencies file for bench_hw_partition.
# This may be replaced when dependencies are built.
