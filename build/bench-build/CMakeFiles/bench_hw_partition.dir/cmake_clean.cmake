file(REMOVE_RECURSE
  "../bench/bench_hw_partition"
  "../bench/bench_hw_partition.pdb"
  "CMakeFiles/bench_hw_partition.dir/bench_hw_partition.cc.o"
  "CMakeFiles/bench_hw_partition.dir/bench_hw_partition.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hw_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
