file(REMOVE_RECURSE
  "../bench/bench_vectorization"
  "../bench/bench_vectorization.pdb"
  "CMakeFiles/bench_vectorization.dir/bench_vectorization.cc.o"
  "CMakeFiles/bench_vectorization.dir/bench_vectorization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vectorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
