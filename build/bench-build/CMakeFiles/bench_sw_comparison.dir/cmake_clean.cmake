file(REMOVE_RECURSE
  "../bench/bench_sw_comparison"
  "../bench/bench_sw_comparison.pdb"
  "CMakeFiles/bench_sw_comparison.dir/bench_sw_comparison.cc.o"
  "CMakeFiles/bench_sw_comparison.dir/bench_sw_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sw_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
