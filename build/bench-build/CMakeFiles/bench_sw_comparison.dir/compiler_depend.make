# Empty compiler generated dependencies file for bench_sw_comparison.
# This may be replaced when dependencies are built.
