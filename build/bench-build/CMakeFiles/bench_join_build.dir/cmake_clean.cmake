file(REMOVE_RECURSE
  "../bench/bench_join_build"
  "../bench/bench_join_build.pdb"
  "CMakeFiles/bench_join_build.dir/bench_join_build.cc.o"
  "CMakeFiles/bench_join_build.dir/bench_join_build.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
