# Empty compiler generated dependencies file for bench_join_build.
# This may be replaced when dependencies are built.
