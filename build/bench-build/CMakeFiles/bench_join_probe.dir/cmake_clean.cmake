file(REMOVE_RECURSE
  "../bench/bench_join_probe"
  "../bench/bench_join_probe.pdb"
  "CMakeFiles/bench_join_probe.dir/bench_join_probe.cc.o"
  "CMakeFiles/bench_join_probe.dir/bench_join_probe.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
