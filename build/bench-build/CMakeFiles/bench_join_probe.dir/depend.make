# Empty dependencies file for bench_join_probe.
# This may be replaced when dependencies are built.
