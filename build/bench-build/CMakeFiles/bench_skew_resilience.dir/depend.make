# Empty dependencies file for bench_skew_resilience.
# This may be replaced when dependencies are built.
