file(REMOVE_RECURSE
  "../bench/bench_skew_resilience"
  "../bench/bench_skew_resilience.pdb"
  "CMakeFiles/bench_skew_resilience.dir/bench_skew_resilience.cc.o"
  "CMakeFiles/bench_skew_resilience.dir/bench_skew_resilience.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skew_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
