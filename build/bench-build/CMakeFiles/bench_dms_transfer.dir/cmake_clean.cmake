file(REMOVE_RECURSE
  "../bench/bench_dms_transfer"
  "../bench/bench_dms_transfer.pdb"
  "CMakeFiles/bench_dms_transfer.dir/bench_dms_transfer.cc.o"
  "CMakeFiles/bench_dms_transfer.dir/bench_dms_transfer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dms_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
