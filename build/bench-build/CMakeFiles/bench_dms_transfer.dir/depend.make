# Empty dependencies file for bench_dms_transfer.
# This may be replaced when dependencies are built.
