# Empty compiler generated dependencies file for bench_offload_distribution.
# This may be replaced when dependencies are built.
