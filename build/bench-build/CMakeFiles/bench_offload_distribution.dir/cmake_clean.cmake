file(REMOVE_RECURSE
  "../bench/bench_offload_distribution"
  "../bench/bench_offload_distribution.pdb"
  "CMakeFiles/bench_offload_distribution.dir/bench_offload_distribution.cc.o"
  "CMakeFiles/bench_offload_distribution.dir/bench_offload_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offload_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
