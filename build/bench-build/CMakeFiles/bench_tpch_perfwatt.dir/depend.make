# Empty dependencies file for bench_tpch_perfwatt.
# This may be replaced when dependencies are built.
