file(REMOVE_RECURSE
  "../bench/bench_tpch_perfwatt"
  "../bench/bench_tpch_perfwatt.pdb"
  "CMakeFiles/bench_tpch_perfwatt.dir/bench_tpch_perfwatt.cc.o"
  "CMakeFiles/bench_tpch_perfwatt.dir/bench_tpch_perfwatt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_perfwatt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
