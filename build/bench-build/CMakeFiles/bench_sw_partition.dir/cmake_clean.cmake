file(REMOVE_RECURSE
  "../bench/bench_sw_partition"
  "../bench/bench_sw_partition.pdb"
  "CMakeFiles/bench_sw_partition.dir/bench_sw_partition.cc.o"
  "CMakeFiles/bench_sw_partition.dir/bench_sw_partition.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sw_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
