# Empty dependencies file for bench_task_formation.
# This may be replaced when dependencies are built.
