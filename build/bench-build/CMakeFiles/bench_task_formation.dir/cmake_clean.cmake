file(REMOVE_RECURSE
  "../bench/bench_task_formation"
  "../bench/bench_task_formation.pdb"
  "CMakeFiles/bench_task_formation.dir/bench_task_formation.cc.o"
  "CMakeFiles/bench_task_formation.dir/bench_task_formation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_task_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
