// Figure 14: performance per watt — RAPID vs System X on x86.
//
// The paper runs half of TPC-H on both systems and reports 10x-25x
// better performance per watt for RAPID (average 15x), counting CPU
// power alone: the DPU is provisioned at 5.8 W, the dual-socket Xeon
// E5-2699 at 2 x 145 W.
//
// Reproduction methodology (see DESIGN.md): the RAPID side is the
// modeled DPU execution time from the calibrated cycle model; the
// System X side is an analytical Xeon throughput model applied to the
// measured workload volumes (rows/bytes scanned, joined, aggregated)
// of the same queries. Only the ratio's *shape* is claimed.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "dpu/power_model.h"
#include "tpch/queries.h"

int main() {
  using namespace rapid;
  bench::Header("Figure 14", "Performance per watt: RAPID vs x86");

  hostdb::HostDatabase host;
  core::RapidEngine engine;
  const double sf = bench::ScaleFactor();
  RAPID_CHECK_OK(tpch::LoadTpch(sf, &host, &engine));

  const dpu::PowerModel power;
  const bench::XeonModel xeon;

  std::printf("TPC-H SF %.2f; DPU %.1f W vs Xeon %.0f W (CPU power only)\n\n",
              sf, power.dpu_watts, power.xeon_watts());
  std::printf("%-6s | %12s | %12s | %10s | %12s\n", "query", "DPU (ms)",
              "Xeon (ms)", "perf ratio", "perf/watt x");
  std::printf("-------+--------------+--------------+------------+"
              "-------------\n");

  double ratio_sum = 0;
  double ratio_min = 1e30;
  double ratio_max = 0;
  int count = 0;
  for (const tpch::TpchQuery& query : tpch::BuildQuerySet()) {
    auto run = tpch::RunOnRapid(engine, query);
    RAPID_CHECK(run.ok());
    const double dpu_s = run.value().modeled_dpu_seconds;
    const double xeon_s = xeon.Seconds(run.value().workload);
    const double perf_ratio = xeon_s / dpu_s;  // DPU speed vs Xeon speed
    const double ppw = power.PerfPerWattRatio(perf_ratio, 1.0);
    ratio_sum += ppw;
    ratio_min = std::min(ratio_min, ppw);
    ratio_max = std::max(ratio_max, ppw);
    ++count;
    std::printf("%-6s | %12.3f | %12.3f | %10.2f | %12.1f\n",
                query.name.c_str(), dpu_s * 1e3, xeon_s * 1e3, perf_ratio,
                ppw);
  }
  std::printf("-------+--------------+--------------+------------+"
              "-------------\n");
  std::printf("%-6s | %12s | %12s | %10s | %12.1f\n", "avg", "", "", "",
              ratio_sum / count);
  std::printf("\n%-36s | %10s | %10s\n", "metric", "paper", "repro");
  std::printf("-------------------------------------+------------+----------\n");
  std::printf("%-36s | %10.0fx | %9.1fx\n", "average perf/watt advantage",
              15.0, ratio_sum / count);
  std::printf("%-36s | %6.0f-%.0fx | %5.1f-%.1fx\n",
              "per-query range", 10.0, 25.0, ratio_min, ratio_max);
  return 0;
}
