// Section 6.4 ablation: skew & statistics resilient join execution.
//
// A Zipf-skewed join under deliberately wrong statistics, comparing:
//   * small skew  — DMEM overflow to DRAM (graceful degradation),
//   * large skew  — dynamic repartitioning of oversized kernels,
//   * heavy hitters — flow-join style detection + broadcast side list.
// Reports modeled times and the runtime counters showing each
// mechanism engaging. Correctness under every strategy is asserted.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/ops/join_exec.h"
#include "core/ops/partition_exec.h"
#include "dpu/dpu.h"

namespace {

using namespace rapid;
using namespace rapid::core;

ColumnSet ZipfTable(size_t rows, double theta, uint64_t seed) {
  std::vector<ColumnMeta> metas(2);
  metas[0].name = "k";
  metas[1].name = "v";
  ColumnSet set(metas);
  ZipfGenerator zipf(1 << 14, theta, seed);
  for (size_t i = 0; i < rows; ++i) {
    set.column(0).push_back(static_cast<int64_t>(zipf.Sample()));
    set.column(1).push_back(static_cast<int64_t>(i));
  }
  return set;
}

struct RunResult {
  double modeled_ms;
  uint64_t matches;
  JoinStats stats;
};

RunResult RunJoin(dpu::Dpu& dpu, const PartitionedData& build,
                  const PartitionedData& probe, const JoinSpec& spec) {
  dpu.ResetCores();
  JoinStats stats;
  auto result = JoinExec::Execute(dpu, build, probe, spec, &stats);
  RAPID_CHECK(result.ok());
  return RunResult{dpu.ModeledPhaseSeconds() * 1e3,
                   static_cast<uint64_t>(result.value().num_rows()), stats};
}

}  // namespace

int main() {
  bench::Header("Section 6.4 (ablation)",
                "Skew & statistics resilient join execution");
  dpu::Dpu dpu;

  const ColumnSet build = ZipfTable(50'000, 0.9, 3);
  const ColumnSet probe = ZipfTable(100'000, 0.9, 5);
  PartitionScheme scheme;
  scheme.rounds.push_back(PartitionRound{32, 32});
  const PartitionedData bp =
      PartitionExec::Execute(dpu, build, {0}, scheme, 256).value();
  const PartitionedData pp =
      PartitionExec::Execute(dpu, probe, {0}, scheme, 256).value();

  JoinSpec base;
  base.build_keys = {0};
  base.probe_keys = {0};
  base.outputs = {{true, 1}, {false, 1}};
  // QComp's (deliberately wrong) estimate: uniform keys would put
  // ~1560 rows in each of 32 partitions; Zipf 0.9 concentrates far
  // more in the head partitions.
  base.est_rows_per_partition = 1560;
  base.dmem_capacity_rows = 3'200;

  // 1. No resilience: overflow happens silently (small-skew handling
  //    is always on — it's the baseline graceful path).
  JoinSpec small = base;
  small.large_skew_factor = 1e30;  // disable repartitioning
  const RunResult r_small = RunJoin(dpu, bp, pp, small);

  // 2. Large-skew handling on: oversized kernels repartition.
  JoinSpec large = base;
  large.large_skew_factor = 2.0;
  const RunResult r_large = RunJoin(dpu, bp, pp, large);

  // 3. Heavy-hitter detection on top.
  JoinSpec flow = large;
  flow.heavy_hitter_threshold = 500;
  const RunResult r_flow = RunJoin(dpu, bp, pp, flow);

  RAPID_CHECK(r_small.matches == r_large.matches);
  RAPID_CHECK(r_small.matches == r_flow.matches);

  std::printf("Zipf(theta=0.9) keys, 50k build x 100k probe, 32-way\n");
  std::printf("partitions, estimate 1560 rows/partition (wrong under"
              " skew)\n\n");
  std::printf("%-28s | %11s | %9s | %7s | %6s | %6s\n", "strategy",
              "modeled ms", "overflow", "repart", "heavy", "match");
  std::printf("-----------------------------+-------------+-----------+"
              "---------+--------+-------\n");
  std::printf("%-28s | %11.2f | %9llu | %7llu | %6llu | %5.1fM\n",
              "small-skew overflow only", r_small.modeled_ms,
              static_cast<unsigned long long>(r_small.stats.overflow_steps),
              static_cast<unsigned long long>(
                  r_small.stats.repartitioned_partitions),
              static_cast<unsigned long long>(r_small.stats.heavy_hitter_keys),
              static_cast<double>(r_small.matches) / 1e6);
  std::printf("%-28s | %11.2f | %9llu | %7llu | %6llu | %5.1fM\n",
              "+ large-skew repartitioning", r_large.modeled_ms,
              static_cast<unsigned long long>(r_large.stats.overflow_steps),
              static_cast<unsigned long long>(
                  r_large.stats.repartitioned_partitions),
              static_cast<unsigned long long>(r_large.stats.heavy_hitter_keys),
              static_cast<double>(r_large.matches) / 1e6);
  std::printf("%-28s | %11.2f | %9llu | %7llu | %6llu | %5.1fM\n",
              "+ heavy-hitter flow-join", r_flow.modeled_ms,
              static_cast<unsigned long long>(r_flow.stats.overflow_steps),
              static_cast<unsigned long long>(
                  r_flow.stats.repartitioned_partitions),
              static_cast<unsigned long long>(r_flow.stats.heavy_hitter_keys),
              static_cast<double>(r_flow.matches) / 1e6);
  std::printf(
      "\nShape check: identical results under every strategy; overflow\n"
      "probes shrink once oversized kernels repartition; heavy hitters\n"
      "leave the hash table for the broadcast side list.\n");
  return 0;
}
