// Figure 11: join build operator performance vs tile size and
// hash-buckets size.
//
// The paper reports: hash-buckets size has no direct impact (the
// bucket array lives in single-cycle DMEM); tile size improves
// throughput ~39% from 64 to 1024 rows; ~46 M rows/s per dpCore at
// 256-row tiles (~1.5 B rows/s per DPU with 32 independent kernels).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "dpu/dpu.h"
#include "primitives/join_kernel.h"

namespace {

using namespace rapid;

// Builds the compact table over `rows` keys on one core and returns
// modeled M rows/s per core.
double BuildMRows(dpu::Dpu& dpu, size_t rows, size_t buckets,
                  size_t tile_rows) {
  Rng rng(7);
  std::vector<int64_t> keys(rows);
  for (auto& key : keys) key = rng.NextInRange(0, 1 << 20);

  dpu.ResetCores();
  dpu::DpCore& core = dpu.core(0);
  primitives::CompactJoinTable table(rows, buckets, rows);
  for (size_t start = 0; start < rows; start += tile_rows) {
    const size_t n = std::min(tile_rows, rows - start);
    for (size_t i = 0; i < n; ++i) {
      table.Insert(Crc32U64(static_cast<uint64_t>(keys[start + i])),
                   start + i);
    }
    core.cycles().ChargeCompute(dpu::JoinBuildTileCycles(dpu.params(), n));
  }
  const double seconds =
      core.cycles().compute_cycles() / dpu.params().clock_hz;
  return static_cast<double>(rows) / seconds / 1e6;
}

}  // namespace

int main() {
  bench::Header("Figure 11",
                "Join build operator vs tile & hash-buckets sizes");
  dpu::Dpu dpu;
  constexpr size_t kRows = 1 << 16;

  std::printf("%-12s", "buckets");
  for (size_t tile : {64u, 128u, 256u, 512u, 1024u}) {
    std::printf(" | tile=%-5zu", tile);
  }
  std::printf("  (M rows/s per core)\n");
  std::printf("------------+------------+------------+------------+"
              "------------+------------\n");
  double t64 = 0;
  double t256 = 0;
  double t1024 = 0;
  for (size_t buckets : {1024u, 4096u, 16384u, 65536u}) {
    std::printf("%-12zu", buckets);
    for (size_t tile : {64u, 128u, 256u, 512u, 1024u}) {
      const double mrows = BuildMRows(dpu, kRows, buckets, tile);
      if (tile == 64) t64 = mrows;
      if (tile == 256) t256 = mrows;
      if (tile == 1024) t1024 = mrows;
      std::printf(" | %10.1f", mrows);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper: no direct hash-buckets impact (DMEM random access is\n"
      "single cycle); +39%% from tile 64 -> 1024 (reproduced: +%.0f%%);\n"
      "~46 M rows/s per core at tile 256 (reproduced: %.1f M);\n"
      "32 independent kernels scale linearly -> ~%.2f B rows/s per DPU.\n",
      (t1024 / t64 - 1.0) * 100, t256, t1024 * 32 / 1e3);
  return 0;
}
