// Figure 16: RAPID software vs System X on x86.
//
// Both engines run on this host's CPU over the same data: RAPID's
// vectorized, push-based, partitioned execution against System X's
// tuple-at-a-time Volcano engine. The paper reports speedups of
// 1.2x-8.5x with a 2.5x average — attributable purely to software
// design, since the hardware is identical. Wall-clock measured.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "tpch/queries.h"

int main() {
  using namespace rapid;
  bench::Header("Figure 16", "RAPID software vs System X on x86 (measured)");

  hostdb::HostDatabase host;
  core::RapidEngine engine;
  const double sf = bench::ScaleFactor();
  RAPID_CHECK_OK(tpch::LoadTpch(sf, &host, &engine));
  // Wall-clock measurement: run the simulated cores inline so OS
  // thread scheduling on small hosts does not pollute the timing.
  engine.dpu().SetInlineExecution(true);

  std::printf("TPC-H SF %.2f, wall-clock on this host\n\n", sf);
  std::printf("%-6s | %13s | %13s | %8s\n", "query", "RAPID-sw (ms)",
              "System X (ms)", "speedup");
  std::printf("-------+---------------+---------------+---------\n");

  double sum = 0;
  double lo = 1e30;
  double hi = 0;
  int count = 0;
  for (const tpch::TpchQuery& query : tpch::BuildQuerySet()) {
    auto rapid_run = tpch::RunOnRapid(engine, query);
    auto host_run = tpch::RunOnHost(host, query);
    RAPID_CHECK(rapid_run.ok());
    RAPID_CHECK(host_run.ok());
    const double speedup =
        host_run.value().wall_seconds / rapid_run.value().wall_seconds;
    sum += speedup;
    lo = std::min(lo, speedup);
    hi = std::max(hi, speedup);
    ++count;
    std::printf("%-6s | %13.2f | %13.2f | %7.2fx\n", query.name.c_str(),
                rapid_run.value().wall_seconds * 1e3,
                host_run.value().wall_seconds * 1e3, speedup);
  }
  std::printf("-------+---------------+---------------+---------\n");
  std::printf("%-6s | %13s | %13s | %7.2fx\n", "avg", "", "", sum / count);
  std::printf("\n%-36s | %10s | %10s\n", "metric", "paper", "repro");
  std::printf("-------------------------------------+------------+----------\n");
  std::printf("%-36s | %9.1fx | %9.2fx\n", "average software speedup", 2.5,
              sum / count);
  std::printf("%-36s | %4.1f-%.1fx | %4.1f-%.1fx\n", "range", 1.2, 8.5, lo,
              hi);
  std::printf(
      "\nNote: RAPID software is 'not particularly tuned for x86' (the\n"
      "paper's words) — the win comes from vectorized push-based\n"
      "execution and partitioned joins vs tuple-at-a-time iteration.\n");
  return 0;
}
