// Scalar vs SIMD-dispatched primitive throughput.
//
// Measures every dispatched kernel family (filter, agg, arith, hash,
// partition map, bucket indices) with dispatch pinned to scalar and
// then to the best level the host supports, prints the speedups, and
// emits BENCH_primitives.json with the raw rows/s so the CostParams::
// HostCalibrated() multipliers can be re-derived after kernel changes.
// An end-to-end TPC-H Q6-style scan (wall-clock, not modeled cycles)
// shows how much of the kernel-level win survives a whole query.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/bitvector.h"
#include "common/rng.h"
#include "common/simd.h"
#include "primitives/agg.h"
#include "primitives/arith.h"
#include "primitives/filter.h"
#include "primitives/hash.h"
#include "primitives/join_kernel.h"
#include "primitives/simd.h"
#include "tpch/queries.h"

namespace {

using namespace rapid;

constexpr size_t kTileRows = 4096;
constexpr size_t kTiles = 2048;  // ~32 MiB of int32 per pass

double SecondsOf(const std::function<void()>& fn) {
  // One warm-up pass, then the best of three timed passes (the VM's
  // scheduler jitter makes min more stable than mean).
  fn();
  double best = 1e30;
  for (int pass = 0; pass < 3; ++pass) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct FamilyResult {
  std::string family;
  double scalar_rows_per_sec = 0;
  double simd_rows_per_sec = 0;
  double speedup() const { return simd_rows_per_sec / scalar_rows_per_sec; }
};

FamilyResult Measure(const std::string& family, size_t rows_per_run,
                     const std::function<void()>& fn) {
  FamilyResult r;
  r.family = family;
  const SimdLevel best = SimdLevelSupported();
  ForceSimdLevel(SimdLevel::kScalar);
  r.scalar_rows_per_sec = static_cast<double>(rows_per_run) / SecondsOf(fn);
  ForceSimdLevel(best);
  r.simd_rows_per_sec = static_cast<double>(rows_per_run) / SecondsOf(fn);
  return r;
}

}  // namespace

int main() {
  bench::Header("Primitives", "scalar vs SIMD-dispatched kernel throughput");
  const SimdLevel best = SimdLevelSupported();
  std::printf("best SIMD level on this host: %s\n\n", SimdLevelName(best));

  Rng rng(7);
  std::vector<int32_t> values(kTileRows);
  std::vector<int32_t> values2(kTileRows);
  std::vector<int64_t> values64(kTileRows);
  std::vector<uint32_t> hashes(kTileRows);
  for (size_t i = 0; i < kTileRows; ++i) {
    values[i] = static_cast<int32_t>(rng.Next());
    values2[i] = static_cast<int32_t>(rng.Next());
    values64[i] = static_cast<int64_t>(rng.Next());
    hashes[i] = static_cast<uint32_t>(rng.Next());
  }
  const size_t total_rows = kTileRows * kTiles;

  std::vector<FamilyResult> results;

  {
    BitVector bv;
    results.push_back(Measure("filter_bv_i32", total_rows, [&] {
      for (size_t t = 0; t < kTiles; ++t) {
        primitives::FilterConstBv<primitives::CmpOp::kLt, int32_t>(
            values.data(), kTileRows, 0, &bv);
      }
    }));
  }
  {
    std::vector<uint32_t> rids;
    results.push_back(Measure("filter_rid_i32", total_rows, [&] {
      for (size_t t = 0; t < kTiles; ++t) {
        rids.clear();
        primitives::FilterConstRid<primitives::CmpOp::kEq, int32_t>(
            values.data(), kTileRows, values[17], &rids);
      }
    }));
  }
  {
    primitives::AggState state;
    results.push_back(Measure("agg_sum_i32", total_rows, [&] {
      for (size_t t = 0; t < kTiles; ++t) {
        primitives::AggTile(values.data(), kTileRows, &state);
      }
    }));
  }
  {
    primitives::AggState state;
    results.push_back(Measure("agg_sum_i64", total_rows, [&] {
      for (size_t t = 0; t < kTiles; ++t) {
        primitives::AggTile(values64.data(), kTileRows, &state);
      }
    }));
  }
  {
    std::vector<int32_t> out(kTileRows);
    results.push_back(Measure("arith_mul_i32", total_rows, [&] {
      for (size_t t = 0; t < kTiles; ++t) {
        primitives::ArithColCol<primitives::ArithOp::kMul, int32_t>(
            values.data(), values2.data(), kTileRows, out.data());
      }
    }));
  }
  {
    std::vector<uint32_t> out(kTileRows);
    results.push_back(Measure("hash_crc32_i64", total_rows, [&] {
      for (size_t t = 0; t < kTiles; ++t) {
        primitives::HashTile(values64.data(), kTileRows, out.data());
      }
    }));
  }
  {
    std::vector<uint16_t> parts(kTileRows);
    std::vector<uint32_t> counts(64);
    results.push_back(Measure("partition_map", total_rows, [&] {
      for (size_t t = 0; t < kTiles; ++t) {
        const auto& kernels = primitives::simd::partition_kernels();
        kernels.partition_of(hashes.data(), kTileRows, 0, 63, parts.data());
        std::fill(counts.begin(), counts.end(), 0u);
        kernels.histogram(parts.data(), kTileRows, counts.data(), 64);
      }
    }));
  }
  {
    std::vector<uint32_t> buckets(kTileRows);
    results.push_back(Measure("bucket_indices", total_rows, [&] {
      for (size_t t = 0; t < kTiles; ++t) {
        primitives::ComputeBucketIndices(hashes.data(), kTileRows, 1024,
                                         buckets.data());
      }
    }));
  }

  std::printf("%-16s | %14s | %14s | %8s\n", "family", "scalar Mrows/s",
              "simd Mrows/s", "speedup");
  std::printf("-----------------+----------------+----------------+---------\n");
  for (const FamilyResult& r : results) {
    std::printf("%-16s | %14.1f | %14.1f | %7.2fx\n", r.family.c_str(),
                r.scalar_rows_per_sec / 1e6, r.simd_rows_per_sec / 1e6,
                r.speedup());
  }

  // ---- End-to-end TPC-H-style query (wall clock) --------------------------
  hostdb::HostDatabase host;
  core::RapidEngine engine;
  const double sf = bench::ScaleFactor();
  RAPID_CHECK_OK(tpch::LoadTpch(sf, &host, &engine));
  auto q6 = tpch::BuildQuery("Q6");
  RAPID_CHECK(q6.ok());
  double e2e_scalar = 0;
  double e2e_simd = 0;
  {
    ForceSimdLevel(SimdLevel::kScalar);
    e2e_scalar = SecondsOf([&] {
      RAPID_CHECK(tpch::RunOnRapid(engine, q6.value()).ok());
    });
    ForceSimdLevel(best);
    e2e_simd = SecondsOf([&] {
      RAPID_CHECK(tpch::RunOnRapid(engine, q6.value()).ok());
    });
  }
  std::printf("\nTPC-H Q6 (SF %.2f) wall clock: scalar %.1f ms, %s %.1f ms "
              "(%.2fx)\n",
              sf, e2e_scalar * 1e3, SimdLevelName(best), e2e_simd * 1e3,
              e2e_scalar / e2e_simd);

  // ---- JSON ---------------------------------------------------------------
  FILE* json = std::fopen("BENCH_primitives.json", "w");
  RAPID_CHECK(json != nullptr);
  std::fprintf(json, "{\n  \"simd_level\": \"%s\",\n  \"families\": [\n",
               SimdLevelName(best));
  for (size_t i = 0; i < results.size(); ++i) {
    const FamilyResult& r = results[i];
    std::fprintf(json,
                 "    {\"family\": \"%s\", \"scalar_rows_per_sec\": %.0f, "
                 "\"simd_rows_per_sec\": %.0f, \"speedup\": %.2f}%s\n",
                 r.family.c_str(), r.scalar_rows_per_sec, r.simd_rows_per_sec,
                 r.speedup(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"tpch_q6\": {\"sf\": %.2f, \"scalar_seconds\": %.4f, "
               "\"simd_seconds\": %.4f, \"speedup\": %.2f}\n}\n",
               sf, e2e_scalar, e2e_simd, e2e_scalar / e2e_simd);
  std::fclose(json);
  std::printf("wrote BENCH_primitives.json\n");
  return 0;
}
