// Figure 9: read / read-write performance of DMS transfers.
//
// Columns from 2 to 32, tile sizes 64-256 rows, 4-byte columns,
// access patterns r and rw. The paper reports >= 9 GiB/s at 128-row
// tiles (about 75% of the DDR3 peak), a slight decrease with more
// columns, and better setup amortization with larger tiles.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "dpu/dpu.h"

int main() {
  using namespace rapid;
  using namespace rapid::dpu;
  bench::Header("Figure 9", "Read/write performance with DMS");

  Dpu dpu;
  const CostParams& p = dpu.params();

  std::printf("%-8s", "cols");
  for (const char* cfg : {"64_r", "64_rw", "128_r", "128_rw", "256_r",
                          "256_rw"}) {
    std::printf(" | %8s", cfg);
  }
  std::printf("   (GiB/s)\n");
  std::printf("--------+----------+----------+----------+----------+"
              "----------+----------\n");

  for (int cols : {2, 4, 8, 16, 32}) {
    std::printf("%-8d", cols);
    for (size_t tile : {64u, 128u, 256u}) {
      for (bool rw : {false, true}) {
        // Modeled transfer of many tiles; the per-tile formula is
        // exact, so one tile suffices.
        const double cycles = DmsTileTransferCycles(p, cols, tile, 4, rw);
        const double bytes =
            static_cast<double>(cols) * tile * 4 * (rw ? 2 : 1);
        const double gib = bytes / cycles * p.clock_hz / (1 << 30);
        std::printf(" | %8.2f", gib);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper: >= 9 GiB/s for an 8 KB buffer (128 rows x 4 x 4B, double\n"
      "buffered r&w) = ~75%% of the 12.8 GB/s DDR3 peak; slight decrease\n"
      "with more columns; larger tiles amortize DMS configuration.\n");
  return 0;
}
