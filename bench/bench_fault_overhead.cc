// Fault-injector overhead ablation.
//
// The injector is compiled into every hot path unconditionally (DMS
// descriptors, DMEM allocation, ATE sends, join builds) and gated only
// by one relaxed atomic load. This harness quantifies what that gate
// costs when no faults are armed — the price every production query
// pays for having the failure-recovery machinery compiled in.
//
// Two measurements:
//   1. Microbenchmark: a DMEM alloc/reset loop dominated by the
//      RAPID_FAULT_POINT check itself.
//   2. End-to-end: a filter+group-by query and a partitioned hash
//      join, with the injector left disabled vs armed-but-never-firing
//      (probability 0). The disabled case must be within run-to-run
//      noise of the seed's pre-injector numbers; the armed case bounds
//      the cost of the slow path's RNG draw.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "common/fault.h"
#include "common/rng.h"
#include "core/engine.h"
#include "dpu/dmem.h"
#include "storage/loader.h"

namespace {

using namespace rapid;
using namespace rapid::core;
using primitives::CmpOp;

constexpr size_t kRows = 400'000;
constexpr int kQueryReps = 5;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// DMEM bump allocation: ~the cheapest operation carrying a fault
// point, so the gate's share of its cost is maximal.
double AllocLoopNsPerOp(size_t iters) {
  dpu::Dmem dmem(32 * 1024);
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iters; ++i) {
    auto r = dmem.Allocate(64);
    if (!r.ok()) dmem.Reset();
  }
  return SecondsSince(start) / static_cast<double>(iters) * 1e9;
}

void LoadData(RapidEngine& engine) {
  Rng rng(99);
  std::vector<storage::ColumnSpec> specs = {
      {"id", storage::ColumnKind::kInt64},
      {"grp", storage::ColumnKind::kInt32},
      {"val", storage::ColumnKind::kInt32}};
  std::vector<storage::ColumnData> data(3);
  for (size_t i = 0; i < kRows; ++i) {
    data[0].ints.push_back(static_cast<int64_t>(i));
    data[1].ints.push_back(rng.NextInRange(0, 255));
    data[2].ints.push_back(rng.NextInRange(0, 9999));
  }
  RAPID_CHECK(engine.Load(storage::LoadTable("t", specs, data).value()).ok());

  std::vector<storage::ColumnSpec> dspecs = {
      {"k", storage::ColumnKind::kInt64},
      {"w", storage::ColumnKind::kInt32}};
  std::vector<storage::ColumnData> ddata(2);
  for (int i = 0; i < 256; ++i) {
    ddata[0].ints.push_back(i);
    ddata[1].ints.push_back(i * 7);
  }
  RAPID_CHECK(
      engine.Load(storage::LoadTable("d", dspecs, ddata).value()).ok());
}

LogicalPtr AggPlan() {
  return LogicalNode::GroupBy(
      LogicalNode::Scan("t", {"grp", "val"},
                        {Predicate::CmpConst("val", CmpOp::kLt, 5000)}),
      {{"grp", Expr::Col("grp")}},
      {{"s", AggFunc::kSum, Expr::Col("val"), {}}});
}

LogicalPtr JoinPlan() {
  return LogicalNode::Join(LogicalNode::Scan("t", {"grp", "val"}),
                           LogicalNode::Scan("d", {"k", "w"}), {"grp"}, {"k"},
                           {"val", "w"});
}

double QuerySeconds(RapidEngine& engine, const LogicalPtr& plan,
                    bool enable_checkpoints = true) {
  ExecOptions options;
  options.planner.enable_fusion = false;  // exercise the partition path
  options.enable_checkpoints = enable_checkpoints;
  double best = 1e30;
  for (int i = 0; i < kQueryReps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto result = engine.Execute(plan, options);
    RAPID_CHECK(result.ok());
    const double s = SecondsSince(start);
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  bench::Header("Fault injector", "overhead of compiled-in fault points");

  // Make sure nothing is armed from the environment.
  FaultInjector::Instance().Reset();

  constexpr size_t kAllocIters = 4'000'000;
  const double alloc_disabled = AllocLoopNsPerOp(kAllocIters);

  // Armed at probability zero: the gate now takes the slow path (map
  // lookup + RNG draw) on every poll but never injects.
  FaultInjector::Instance().Reset(0x0eadful);
  FaultInjector::SiteSpec never;
  never.probability = 0.0;
  FaultInjector::Instance().Arm(faults::kDmemAlloc, never);
  const double alloc_armed = AllocLoopNsPerOp(kAllocIters);
  FaultInjector::Instance().Reset();

  std::printf("\nDMEM alloc loop (%zu iters):\n", kAllocIters);
  std::printf("  injector disabled        %7.2f ns/op\n", alloc_disabled);
  std::printf("  armed, probability 0     %7.2f ns/op  (%.1f%% overhead)\n",
              alloc_armed,
              (alloc_armed / alloc_disabled - 1.0) * 100.0);

  RapidEngine engine;
  LoadData(engine);

  struct QueryCase {
    const char* name;
    LogicalPtr plan;
    double disabled = 0;        // injector off, checkpoints on (production)
    double armed = 0;           // injector armed p=0, checkpoints on
    double no_checkpoints = 0;  // injector off, checkpoints off
  };
  QueryCase cases[] = {{"filter+group-by", AggPlan()},
                       {"partitioned join", JoinPlan()}};

  std::printf("\nEnd-to-end queries (%zu rows, best of %d):\n", kRows,
              kQueryReps);
  std::printf("  %-18s %12s %12s %10s\n", "query", "disabled", "armed p=0",
              "overhead");
  for (QueryCase& c : cases) {
    FaultInjector::Instance().Reset();
    c.disabled = QuerySeconds(engine, c.plan);

    FaultInjector::Instance().Reset(0x0eadful);
    FaultInjector::SiteSpec quiet;
    quiet.probability = 0.0;
    for (const char* site : {faults::kDmsTransfer, faults::kDmsPartition,
                             faults::kDmemAlloc, faults::kJoinBuild}) {
      FaultInjector::Instance().Arm(site, quiet);
    }
    c.armed = QuerySeconds(engine, c.plan);
    FaultInjector::Instance().Reset();

    std::printf("  %-18s %9.3f ms %9.3f ms %9.1f%%\n", c.name,
                c.disabled * 1e3, c.armed * 1e3,
                (c.armed / c.disabled - 1.0) * 100.0);
  }

  // ---- Checkpoint bookkeeping ----------------------------------------------
  // Fragment checkpointing is on by default: on the fault-free path
  // its cost is the subtree_steps map build, the per-step done/progress
  // vectors and the progress pointer threading — no data copies. The
  // A/B below bounds that bookkeeping; interleaved best-of-reps damps
  // clock drift between the two configurations.
  std::printf("\nFragment checkpointing (fault-free, best of %d):\n",
              kQueryReps);
  std::printf("  %-18s %12s %12s %10s\n", "query", "ckpt off", "ckpt on",
              "overhead");
  double worst_overhead = 0;
  for (QueryCase& c : cases) {
    // Interleave the two configurations rep by rep so frequency and
    // cache drift hit both sides equally; keep the best of each.
    c.no_checkpoints = 1e30;
    c.disabled = 1e30;
    for (int i = 0; i < kQueryReps; ++i) {
      c.no_checkpoints =
          std::min(c.no_checkpoints, QuerySeconds(engine, c.plan, false));
      c.disabled = std::min(c.disabled, QuerySeconds(engine, c.plan, true));
    }
    const double overhead = c.disabled / c.no_checkpoints - 1.0;
    if (overhead > worst_overhead) worst_overhead = overhead;
    std::printf("  %-18s %9.3f ms %9.3f ms %9.1f%%\n", c.name,
                c.no_checkpoints * 1e3, c.disabled * 1e3, overhead * 100.0);
  }

  // ---- JSON ----------------------------------------------------------------
  FILE* json = std::fopen("BENCH_fault.json", "w");
  RAPID_CHECK(json != nullptr);
  std::fprintf(json,
               "{\n  \"alloc_loop_iters\": %zu,\n"
               "  \"alloc_disabled_ns\": %.3f,\n  \"alloc_armed_ns\": %.3f,\n"
               "  \"rows\": %zu,\n  \"queries\": [\n",
               kAllocIters, alloc_disabled, alloc_armed, kRows);
  const size_t ncases = sizeof(cases) / sizeof(cases[0]);
  for (size_t i = 0; i < ncases; ++i) {
    const QueryCase& c = cases[i];
    std::fprintf(json,
                 "    {\"query\": \"%s\", \"disabled_ms\": %.4f,"
                 " \"armed_ms\": %.4f,\n     \"no_checkpoints_ms\": %.4f,"
                 " \"checkpoint_overhead_pct\": %.2f}%s\n",
                 c.name, c.disabled * 1e3, c.armed * 1e3,
                 c.no_checkpoints * 1e3,
                 (c.disabled / c.no_checkpoints - 1.0) * 100.0,
                 i + 1 < ncases ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_fault.json\n");

  // Acceptance (opt-in, RAPID_CHECK=1): fault-free checkpoint
  // bookkeeping must stay within 2%% of a checkpoint-free run, with a
  // small absolute allowance for timer noise on short queries.
  if (const char* check = std::getenv("RAPID_CHECK");
      check != nullptr && check[0] == '1') {
    for (const QueryCase& c : cases) {
      RAPID_CHECK(c.disabled <= c.no_checkpoints * 1.02 + 500e-6);
    }
    std::printf("RAPID_CHECK: checkpoint bookkeeping within 2%% (worst %.2f%%)\n",
                worst_overhead * 100.0);
  }

  std::printf(
      "\nTarget: the disabled column is the production configuration and\n"
      "must stay within run-to-run noise of a build without fault points\n"
      "(one relaxed atomic load per site, branch predicted not-taken).\n");
  return 0;
}
