// Section 5.3 ablation: partition-scheme optimization.
//
// For a sweep of relation sizes, shows the required number of
// partitions (data size / DMEM, floored at the 32-core parallelism)
// and the scheme the optimizer picks, next to naive alternatives —
// demonstrating heuristics (a)-(d): power-of-two fan-outs, per-round
// limits, round minimization, and symmetric factors.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/qcomp/partition_scheme.h"

namespace {

using namespace rapid;
using namespace rapid::core;

std::string SchemeString(const PartitionScheme& scheme) {
  std::string out;
  for (size_t r = 0; r < scheme.rounds.size(); ++r) {
    if (r) out += " x ";
    out += std::to_string(scheme.rounds[r].fanout);
    if (scheme.rounds[r].hw_fanout > 1) {
      out += "(hw" + std::to_string(scheme.rounds[r].hw_fanout) + ")";
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::Header("Section 5.3 (ablation)", "Partition scheme optimization");
  const dpu::CostParams& params = dpu::CostParams::Default();

  std::printf("%-12s | %10s | %-18s | %14s\n", "rows (8B)", "target",
              "chosen scheme", "modeled cycles");
  std::printf("-------------+------------+--------------------+"
              "---------------\n");
  for (size_t rows : {100'000ul, 1'000'000ul, 10'000'000ul, 50'000'000ul,
                      200'000'000ul}) {
    PartitionPlanInput in;
    in.total_rows = rows;
    in.row_bytes = 8;
    auto choice = OptimizePartitionScheme(in, params);
    RAPID_CHECK(choice.ok());
    std::printf("%-12zu | %10d | %-18s | %14.0f\n", rows,
                choice.value().target_fanout,
                SchemeString(choice.value().scheme).c_str(),
                choice.value().cycles);
  }

  // Heuristic (d): symmetric factors near cost ties. Cap the per-round
  // fan-out so 4096 needs two rounds; 64 x 64 must beat 1024 x 4-style
  // asymmetric splits.
  PartitionPlanInput capped;
  capped.total_rows = 8'000'000;
  capped.row_bytes = 8;
  capped.max_round_fanout = 64;
  auto sym = OptimizePartitionScheme(capped, params);
  RAPID_CHECK(sym.ok());
  std::printf(
      "\nWith a 64-way per-round cap, the 4096-way target factorizes\n"
      "as %s — the symmetric choice (the paper favours 8x8 over 16x4).\n",
      SchemeString(sym.value().scheme).c_str());

  // Cost comparison of alternatives for a fixed 1024-way target.
  PartitionPlanInput fixed;
  fixed.total_rows = 2'000'000;
  fixed.row_bytes = 8;
  PartitionScheme one_pass;
  one_pass.rounds.push_back(PartitionRound{1024, 32});
  PartitionScheme two_pass;
  two_pass.rounds.push_back(PartitionRound{32, 32});
  two_pass.rounds.push_back(PartitionRound{32, 1});
  PartitionScheme three_pass;
  three_pass.rounds.push_back(PartitionRound{16, 16});
  three_pass.rounds.push_back(PartitionRound{16, 1});
  three_pass.rounds.push_back(PartitionRound{4, 1});
  std::printf("\n1024-way alternatives (2M rows):\n");
  std::printf("  %-24s %12.0f cycles\n", "1024 (one pass, hw+sw):",
              SchemeCycles(one_pass, fixed, params));
  std::printf("  %-24s %12.0f cycles\n", "32 x 32 (two rounds):",
              SchemeCycles(two_pass, fixed, params));
  std::printf("  %-24s %12.0f cycles\n", "16 x 16 x 4 (three):",
              SchemeCycles(three_pass, fixed, params));
  std::printf(
      "\nShape check: rounds rescan the data, so the optimizer minimizes\n"
      "rounds first (heuristic c), then cost, breaking ties by symmetry.\n");
  return 0;
}
