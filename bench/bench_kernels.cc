// Wall-clock micro-benchmarks of the primitive kernels on the host
// CPU (google-benchmark). These measure the *software* quality of the
// RAPID primitives — branch-free tight loops over columns — which is
// what carries the Figure 16 software-only comparison.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/crc32.h"
#include "common/rng.h"
#include "primitives/filter.h"
#include "primitives/hash.h"
#include "primitives/join_kernel.h"
#include "primitives/partition_map.h"

namespace {

using namespace rapid;
using namespace rapid::primitives;

std::vector<int32_t> RandomInts(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> out(n);
  for (auto& v : out) v = static_cast<int32_t>(rng.NextInRange(0, 1 << 20));
  return out;
}

void BM_FilterBvEq(benchmark::State& state) {
  const auto values = RandomInts(static_cast<size_t>(state.range(0)), 1);
  BitVector bv;
  for (auto _ : state) {
    FilterConstBv<CmpOp::kLt, int32_t>(values.data(), values.size(),
                                       1 << 19, &bv);
    benchmark::DoNotOptimize(bv.mutable_words());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_FilterBvEq)->Arg(1 << 16);

void BM_FilterRid(benchmark::State& state) {
  const auto values = RandomInts(static_cast<size_t>(state.range(0)), 2);
  std::vector<uint32_t> rids;
  for (auto _ : state) {
    rids.clear();
    FilterConstRid<CmpOp::kEq, int32_t>(values.data(), values.size(), 12345,
                                        &rids);
    benchmark::DoNotOptimize(rids.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_FilterRid)->Arg(1 << 16);

void BM_Crc32Hash(benchmark::State& state) {
  const auto values = RandomInts(static_cast<size_t>(state.range(0)), 3);
  std::vector<int64_t> keys(values.begin(), values.end());
  std::vector<uint32_t> hashes(keys.size());
  for (auto _ : state) {
    HashTile(keys.data(), keys.size(), hashes.data());
    benchmark::DoNotOptimize(hashes.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_Crc32Hash)->Arg(1 << 16);

void BM_ComputePartitionMap(benchmark::State& state) {
  Rng rng(4);
  std::vector<uint32_t> hashes(static_cast<size_t>(state.range(0)));
  for (auto& h : hashes) h = static_cast<uint32_t>(rng.Next());
  PartitionMap map;
  for (auto _ : state) {
    ComputePartitionMap(hashes.data(), hashes.size(),
                        static_cast<int>(state.range(1)), 0, &map);
    benchmark::DoNotOptimize(map.rids.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(hashes.size()));
}
BENCHMARK(BM_ComputePartitionMap)->Args({1 << 14, 32})->Args({1 << 14, 256});

void BM_JoinBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<uint32_t> hashes(n);
  for (auto& h : hashes) h = static_cast<uint32_t>(rng.Next());
  for (auto _ : state) {
    CompactJoinTable table(n, n / 4, n);
    for (size_t i = 0; i < n; ++i) table.Insert(hashes[i], i);
    benchmark::DoNotOptimize(table.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_JoinBuild)->Arg(1 << 14);

void BM_JoinProbe(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<int64_t>(i);
  CompactJoinTable table(n, n / 4, n);
  for (size_t i = 0; i < n; ++i) {
    table.Insert(Crc32U64(static_cast<uint64_t>(keys[i])), i);
  }
  Rng rng(6);
  std::vector<int64_t> probes(n);
  for (auto& p : probes) p = rng.NextInRange(0, static_cast<int64_t>(2 * n));
  ProbeStats stats;
  for (auto _ : state) {
    size_t matches = 0;
    for (int64_t p : probes) {
      table.Probe(
          Crc32U64(static_cast<uint64_t>(p)),
          [&](size_t offset) { return keys[offset] == p; },
          [&](size_t) { ++matches; }, &stats);
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_JoinProbe)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
