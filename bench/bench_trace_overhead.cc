// Trace-collector overhead ablation.
//
// Instrumentation sites are compiled into every hot path (per-morsel
// spans in scan/join/group-by/sort, per-transfer DMS events) and gated
// by TraceCollector::Recording — one relaxed atomic load plus a mode
// compare. This harness quantifies:
//
//   1. Microbenchmark: the disabled-span construct/destruct cost in
//      ns/site, and the full-mode event count of a representative
//      query; their product estimates the off-mode tax.
//   2. End-to-end: a Q6-style filter+aggregate and a partitioned join
//      under RAPID_TRACE=off|summary|full, interleaved rep by rep so
//      clock and cache drift hit all modes equally.
//
// Acceptance (opt-in via RAPID_CHECK=1): the estimated off-mode
// overhead stays under 2% and full tracing (spans + args + JSON
// export) stays within 10% of off, with a small absolute allowance
// for timer noise on short queries.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/engine.h"
#include "storage/loader.h"

namespace {

using namespace rapid;
using namespace rapid::core;
using primitives::CmpOp;

constexpr size_t kRows = 400'000;
constexpr int kQueryReps = 5;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The cost of one *disabled* instrumentation site: TraceSpan
// construction falls through on the Recording() gate.
double DisabledSpanNsPerSite(size_t iters) {
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iters; ++i) {
    TraceSpan span(TraceMode::kFull, 0, "bench.disabled");
    (void)span;
  }
  return SecondsSince(start) / static_cast<double>(iters) * 1e9;
}

void LoadData(RapidEngine& engine) {
  Rng rng(99);
  std::vector<storage::ColumnSpec> specs = {
      {"id", storage::ColumnKind::kInt64},
      {"grp", storage::ColumnKind::kInt32},
      {"val", storage::ColumnKind::kInt32}};
  std::vector<storage::ColumnData> data(3);
  for (size_t i = 0; i < kRows; ++i) {
    data[0].ints.push_back(static_cast<int64_t>(i));
    data[1].ints.push_back(rng.NextInRange(0, 255));
    data[2].ints.push_back(rng.NextInRange(0, 9999));
  }
  RAPID_CHECK(engine.Load(storage::LoadTable("t", specs, data).value()).ok());

  std::vector<storage::ColumnSpec> dspecs = {
      {"k", storage::ColumnKind::kInt64},
      {"w", storage::ColumnKind::kInt32}};
  std::vector<storage::ColumnData> ddata(2);
  for (int i = 0; i < 256; ++i) {
    ddata[0].ints.push_back(i);
    ddata[1].ints.push_back(i * 7);
  }
  RAPID_CHECK(
      engine.Load(storage::LoadTable("d", dspecs, ddata).value()).ok());
}

// Q6 shape: one selective scan feeding an aggregation.
LogicalPtr AggPlan() {
  return LogicalNode::GroupBy(
      LogicalNode::Scan("t", {"grp", "val"},
                        {Predicate::CmpConst("val", CmpOp::kLt, 5000)}),
      {{"grp", Expr::Col("grp")}},
      {{"s", AggFunc::kSum, Expr::Col("val"), {}}});
}

LogicalPtr JoinPlan() {
  return LogicalNode::Join(LogicalNode::Scan("t", {"grp", "val"}),
                           LogicalNode::Scan("d", {"k", "w"}), {"grp"}, {"k"},
                           {"val", "w"});
}

double QuerySeconds(RapidEngine& engine, const LogicalPtr& plan) {
  const auto start = std::chrono::steady_clock::now();
  auto result = engine.Execute(plan);
  RAPID_CHECK(result.ok());
  return SecondsSince(start);
}

size_t TraceEventCount() {
  const TraceCollector::Snapshot snap =
      TraceCollector::Instance().TakeSnapshot();
  size_t core_events = 0;
  size_t other_events = 0;
  for (const auto& track : snap.tracks) {
    const bool core = track.name.rfind("dpCore", 0) == 0;
    (core ? core_events : other_events) += track.events.size();
    if (!core && !track.events.empty()) {
      std::printf("    track %-8s %6zu events\n", track.name.c_str(),
                  track.events.size());
    }
  }
  std::printf("    dpCore tracks   %6zu events\n", core_events);
  return core_events + other_events;
}

}  // namespace

int main() {
  bench::Header("Trace collector", "overhead of compiled-in trace spans");

  ForceTraceMode(TraceMode::kOff);

  constexpr size_t kSpanIters = 8'000'000;
  const double span_ns = DisabledSpanNsPerSite(kSpanIters);
  std::printf("\nDisabled span site (%zu iters): %.2f ns/site\n", kSpanIters,
              span_ns);

  RapidEngine engine;
  LoadData(engine);

  struct QueryCase {
    const char* name;
    LogicalPtr plan;
    double off = 1e30;
    double summary = 1e30;
    double full = 1e30;
    size_t full_events = 0;
  };
  QueryCase cases[] = {{"filter+group-by", AggPlan()},
                       {"partitioned join", JoinPlan()}};

  // Warm-up plus event census: one full-mode run per case.
  for (QueryCase& c : cases) {
    ForceTraceMode(TraceMode::kFull);
    (void)QuerySeconds(engine, c.plan);
    c.full_events = TraceEventCount();
  }

  // Interleave the three modes rep by rep, rotating which mode runs
  // first: the first query after switching working sets pays the
  // cache-warming cost, and rotation spreads that tax evenly instead
  // of always charging it to the same mode. Keep the best of each.
  for (int rep = 0; rep < kQueryReps; ++rep) {
    for (QueryCase& c : cases) {
      for (int k = 0; k < 3; ++k) {
        double* best[] = {&c.off, &c.summary, &c.full};
        const TraceMode modes[] = {TraceMode::kOff, TraceMode::kSummary,
                                   TraceMode::kFull};
        const int m = (rep + k) % 3;
        ForceTraceMode(modes[m]);
        *best[m] = std::min(*best[m], QuerySeconds(engine, c.plan));
      }
    }
  }
  ForceTraceMode(TraceMode::kOff);

  std::printf("\nEnd-to-end queries (%zu rows, best of %d):\n", kRows,
              kQueryReps);
  std::printf("  %-18s %10s %10s %10s %9s %8s\n", "query", "off", "summary",
              "full", "full ovh", "events");
  double worst_off_est = 0;
  double worst_full = 0;
  for (const QueryCase& c : cases) {
    // Off-mode estimate: every event recorded in full mode corresponds
    // to one gated site the off-mode run still visits.
    const double off_est =
        static_cast<double>(c.full_events) * span_ns * 1e-9 / c.off;
    worst_off_est = std::max(worst_off_est, off_est);
    const double full_ovh = c.full / c.off - 1.0;
    worst_full = std::max(worst_full, full_ovh);
    std::printf("  %-18s %7.3f ms %7.3f ms %7.3f ms %8.1f%% %8zu\n", c.name,
                c.off * 1e3, c.summary * 1e3, c.full * 1e3, full_ovh * 100.0,
                c.full_events);
    std::printf("    off-mode tax estimate: %zu sites x %.2f ns = %.1f us"
                " (%.3f%% of query)\n",
                c.full_events, span_ns,
                static_cast<double>(c.full_events) * span_ns * 1e-3,
                off_est * 100.0);
  }

  // ---- JSON ----------------------------------------------------------------
  FILE* json = std::fopen("BENCH_trace.json", "w");
  RAPID_CHECK(json != nullptr);
  std::fprintf(json,
               "{\n  \"span_iters\": %zu,\n  \"disabled_span_ns\": %.3f,\n"
               "  \"rows\": %zu,\n  \"queries\": [\n",
               kSpanIters, span_ns, kRows);
  const size_t ncases = sizeof(cases) / sizeof(cases[0]);
  for (size_t i = 0; i < ncases; ++i) {
    const QueryCase& c = cases[i];
    std::fprintf(json,
                 "    {\"query\": \"%s\", \"off_ms\": %.4f,"
                 " \"summary_ms\": %.4f, \"full_ms\": %.4f,\n"
                 "     \"full_events\": %zu, \"full_overhead_pct\": %.2f}%s\n",
                 c.name, c.off * 1e3, c.summary * 1e3, c.full * 1e3,
                 c.full_events, (c.full / c.off - 1.0) * 100.0,
                 i + 1 < ncases ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_trace.json\n");

  // Acceptance (opt-in, RAPID_CHECK=1).
  if (const char* check = std::getenv("RAPID_CHECK");
      check != nullptr && check[0] == '1') {
    // Off mode: the gated sites' estimated cost stays under 2% of the
    // query. (Estimated, not differenced: the tax is far below timer
    // noise, which is the point.)
    RAPID_CHECK(worst_off_est <= 0.02);
    // Full mode: spans, annotations and the JSON export stay within
    // 10% of off, with an absolute allowance for short-query jitter.
    for (const QueryCase& c : cases) {
      RAPID_CHECK(c.full <= c.off * 1.10 + 500e-6);
    }
    std::printf("RAPID_CHECK: off-mode tax %.3f%% (gate 2%%),"
                " full-mode overhead %.1f%% (gate 10%% + 0.5 ms)\n",
                worst_off_est * 100.0, worst_full * 100.0);
  }

  std::printf(
      "\nTarget: off is the production configuration — every site costs one\n"
      "relaxed atomic load; full records per-morsel spans and exports\n"
      "Perfetto-loadable JSON without perturbing modeled results.\n");
  return 0;
}
