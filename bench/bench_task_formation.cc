// Figure 4: task formation for the paper's aggregation example.
//
//   SELECT sum(l_quantity * 0.5), min(l_quantity)
//   FROM lineitem WHERE l_extendedprice > 100;
//
// 1 M input rows, 4-byte columns, 25% selectivity. The paper shows
// three formations: (a) every operator its own task, (b) filter and
// aggregate fused, (c) all operators in one task — and picks (c),
// which materializes the least data to DRAM.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/qcomp/task_formation.h"

int main() {
  using namespace rapid;
  using namespace rapid::core;
  bench::Header("Figure 4", "Task formation for the aggregation example");

  // Operator chain and DMEM profiles (scan -> filter -> aggregate),
  // matching the example's 4-byte columns and 25% selectivity.
  const std::vector<OpProfile> ops = {
      {"scan", 64, 8, 1.0, 4},
      {"filter", 64, 12, 0.25, 4},
      {"aggregate", 64, 8, 0.0, 8},
  };
  constexpr size_t kRows = 1'000'000;
  constexpr size_t kRowBytes = 4;
  const dpu::CostParams& params = dpu::CostParams::Default();

  struct Candidate {
    const char* name;
    std::vector<TaskGroup> tasks;
  };
  const Candidate candidates[] = {
      {"(a) scan | filter | agg",
       {{0, 0, 1024}, {1, 1, 1024}, {2, 2, 1024}}},
      {"(b) scan | filter+agg", {{0, 0, 1024}, {1, 2, 512}}},
      {"(c) scan+filter+agg", {{0, 2, 256}}},
  };

  std::printf("%-26s | %16s | %14s\n", "formation", "modeled cycles",
              "DRAM traffic");
  std::printf("---------------------------+------------------+------------"
              "---\n");
  for (const Candidate& c : candidates) {
    const double cycles =
        FormationCycles(ops, c.tasks, kRows, kRowBytes, params).value();
    // Materialized bytes: task inputs + outputs.
    double traffic = 0;
    double rows = kRows;
    double row_bytes = kRowBytes;
    for (const TaskGroup& t : c.tasks) {
      double out_rows = rows;
      for (size_t i = t.first_op; i <= t.last_op; ++i) {
        out_rows *= ops[i].output_ratio;
      }
      traffic += rows * row_bytes +
                 out_rows * static_cast<double>(ops[t.last_op].output_row_bytes);
      rows = out_rows;
      row_bytes = static_cast<double>(ops[t.last_op].output_row_bytes);
    }
    std::printf("%-26s | %16.0f | %11.2f MB\n", c.name, cycles,
                traffic / 1e6);
  }

  const auto best =
      FormTasks(ops, 32 * 1024, kRows, kRowBytes, params).value();
  std::printf(
      "\nOptimizer choice: %zu task(s); first task spans ops %zu..%zu at\n"
      "tile %zu rows — the fully fused formation (c), as in the paper.\n",
      best.tasks.size(), best.tasks[0].first_op, best.tasks[0].last_op,
      best.tasks[0].tile_rows);
  return 0;
}
