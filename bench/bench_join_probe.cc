// Figure 12: join probe operator performance vs tile size and
// hash-buckets size at a fixed 50% hit ratio.
//
// The paper reports 880 M - 1.35 B rows/s per DPU, ~30% gain from
// tile 64 -> 1024, and no impact from the hash-buckets size while the
// array stays in DMEM.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "dpu/dpu.h"
#include "primitives/join_kernel.h"

namespace {

using namespace rapid;

double ProbeMRowsPerDpu(dpu::Dpu& dpu, size_t build_rows, size_t buckets,
                        size_t tile_rows) {
  Rng rng(13);
  std::vector<int64_t> keys(build_rows);
  for (size_t i = 0; i < build_rows; ++i) {
    keys[i] = static_cast<int64_t>(i);  // unique keys
  }
  primitives::CompactJoinTable table(build_rows, buckets, build_rows);
  for (size_t i = 0; i < build_rows; ++i) {
    table.Insert(Crc32U64(static_cast<uint64_t>(keys[i])), i);
  }

  // 50% hit ratio: half the probes hit existing keys.
  const size_t probe_rows = build_rows * 16;
  std::vector<int64_t> probes(probe_rows);
  for (size_t i = 0; i < probe_rows; ++i) {
    probes[i] = rng.NextBounded(2) == 0
                    ? static_cast<int64_t>(rng.NextBounded(build_rows))
                    : static_cast<int64_t>(build_rows + rng.NextBounded(1u << 20));
  }

  dpu.ResetCores();
  dpu::DpCore& core = dpu.core(0);
  for (size_t start = 0; start < probe_rows; start += tile_rows) {
    const size_t n = std::min(tile_rows, probe_rows - start);
    primitives::ProbeStats stats;
    for (size_t i = 0; i < n; ++i) {
      const int64_t probe = probes[start + i];
      table.Probe(
          Crc32U64(static_cast<uint64_t>(probe)),
          [&](size_t offset) { return keys[offset] == probe; },
          [](size_t) {}, &stats);
    }
    core.cycles().ChargeCompute(dpu::JoinProbeTileCycles(
        dpu.params(), n, stats.chain_steps, stats.matches));
  }
  const double seconds =
      core.cycles().compute_cycles() / dpu.params().clock_hz;
  // 32 cores probe independent partitions.
  return static_cast<double>(probe_rows) / seconds / 1e6 * 32;
}

}  // namespace

int main() {
  bench::Header("Figure 12",
                "Join probe operator vs tile & hash-buckets (hit: 50%)");
  dpu::Dpu dpu;
  constexpr size_t kBuildRows = 1 << 10;  // one DMEM-resident kernel

  std::printf("%-12s", "buckets");
  for (size_t tile : {64u, 128u, 256u, 512u, 1024u}) {
    std::printf(" | tile=%-5zu", tile);
  }
  std::printf("  (M rows/s per DPU)\n");
  std::printf("------------+------------+------------+------------+"
              "------------+------------\n");
  double t64 = 0;
  double t1024 = 0;
  for (size_t buckets : {1024u, 2048u, 4096u, 8192u}) {
    std::printf("%-12zu", buckets);
    for (size_t tile : {64u, 128u, 256u, 512u, 1024u}) {
      const double mrows = ProbeMRowsPerDpu(dpu, kBuildRows, buckets, tile);
      if (tile == 64) t64 = mrows;
      if (tile == 1024) t1024 = mrows;
      std::printf(" | %10.0f", mrows);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper: 880 M - 1.35 B rows/s per DPU (reproduced: %.0f M - %.0f M)\n"
      "with ~30%% gain from tile 64 -> 1024 (reproduced: +%.0f%%); the\n"
      "hash-buckets size has no impact while resident in DMEM.\n",
      t64, t1024, (t1024 / t64 - 1.0) * 100);
  return 0;
}
