// Section 7.2 micro-benchmark: filter operator performance.
//
// The paper reports 482 M tuples/s on a single dpCore (1.65
// cycles/tuple via the dual-issued bvld/filteq loop) and a 9.6 GiB/s
// peak across 32 dpCores, with the computation hidden behind DMS
// transfers. This harness runs the real filter pipeline through the
// engine and reports the modeled DPU throughput.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "storage/loader.h"

int main() {
  using namespace rapid;
  using namespace rapid::core;
  bench::Header("Section 7.2", "Filter operator performance");

  constexpr size_t kRows = 4 << 20;
  std::vector<storage::ColumnSpec> specs = {{"k",
                                             storage::ColumnKind::kInt32}};
  std::vector<storage::ColumnData> data(1);
  data[0].ints.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    data[0].ints.push_back(static_cast<int64_t>(i % 1000));
  }
  RapidEngine engine;
  RAPID_CHECK_OK(engine.Load(
      storage::LoadTable("t", specs, data).value()));

  // Pure filter measurement: a predicate with no qualifying rows
  // isolates the bvld/filteq loop (no gather, no materialization),
  // exactly like the paper's micro-benchmark.
  auto plan = LogicalNode::Scan(
      "t", {"k"}, {Predicate::CmpConst("k", primitives::CmpOp::kLt, -1)});
  auto result = engine.Execute(plan);
  RAPID_CHECK(result.ok());

  // Per-core compute rate: total filter-side compute cycles over all
  // rows (the bvld/filteq loop plus selection bookkeeping).
  const double compute_cycles = result.value().stats.total_compute_cycles;
  const double cycles_per_tuple = compute_cycles / static_cast<double>(kRows);
  const double per_core = 800e6 / cycles_per_tuple;
  // Operator bandwidth: the scan step's modeled time (transfer-bound,
  // all 32 cores fed by the shared DMS).
  const double scan_seconds = result.value().stats.steps[0].modeled_seconds;
  const double gib_per_sec =
      static_cast<double>(kRows) * 4 / scan_seconds / (1 << 30);

  std::printf("%-34s | %10s | %10s\n", "metric", "paper", "modeled");
  std::printf("-----------------------------------+------------+-----------\n");
  std::printf("%-34s | %10.0f | %10.0f\n",
              "filter tuples/s per core (M)", 482.0,
              per_core / 1e6);
  std::printf("%-34s | %10.2f | %10.2f\n", "cycles per tuple", 1.65,
              cycles_per_tuple);
  std::printf("%-34s | %10.1f | %10.1f\n", "32-core bandwidth (GiB/s)", 9.6,
              gib_per_sec);
  std::printf(
      "\nNote: the operator runs at the DMS transfer rate — compute is\n"
      "hidden behind double-buffered transfers, so the 32-core figure is\n"
      "transfer-bound (compare Figure 9), matching the paper's text.\n");
  return 0;
}
