// Encoded-scan A/B: RAPID_ENCODED_SCAN=off vs auto through the full
// engine on a Q6-shaped scan+aggregate.
//
// Two tables with identical schema and row count: an RLE-friendly one
// (sorted date, long-run small domains — the shape clustering gives
// l_shipdate/l_quantity) and an incompressible one (every column
// shuffled high-entropy, so the encoding stack keeps everything
// plain). The encoded path must (i) return bit-identical aggregates,
// (ii) cut modeled scan time >= 1.3x where runs exist, and (iii) cost
// <= 2% where they don't — the auto gate has to be safe to leave on.
//
// Emits BENCH_encoding.json for the CI trend line.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "storage/encoding_stack.h"
#include "storage/loader.h"

namespace {

using namespace rapid;
using namespace rapid::core;
using primitives::CmpOp;
using storage::EncodedScanMode;

constexpr size_t kRows = 200'000;

void LoadTables(RapidEngine& engine) {
  const std::vector<storage::ColumnSpec> specs = {
      {"shipdate", storage::ColumnKind::kDate},
      {"quantity", storage::ColumnKind::kInt32},
      {"discount", storage::ColumnKind::kInt32},
      {"price", storage::ColumnKind::kInt64}};

  // RLE-friendly: sorted date (runs of ~256 rows), coarse-grained
  // quantity/discount runs, and a price column that repeats within
  // order-sized groups.
  {
    std::vector<storage::ColumnData> data(4);
    Rng rng(42);
    for (size_t i = 0; i < kRows; ++i) {
      data[0].ints.push_back(static_cast<int64_t>(9131 + i / 256));
      data[1].ints.push_back(static_cast<int64_t>((i / 64) % 50 + 1));
      data[2].ints.push_back(static_cast<int64_t>((i / 128) % 11));
      data[3].ints.push_back(static_cast<int64_t>((i / 32) % 1000 + 90000));
    }
    RAPID_CHECK(
        engine.Load(storage::LoadTable("rle_friendly", specs, data).value())
            .ok());
  }

  // Incompressible: same domains, every row drawn independently.
  {
    std::vector<storage::ColumnData> data(4);
    Rng rng(43);
    for (size_t i = 0; i < kRows; ++i) {
      data[0].ints.push_back(9131 + rng.NextInRange(0, kRows / 256));
      data[1].ints.push_back(rng.NextInRange(1, 50));
      data[2].ints.push_back(rng.NextInRange(0, 10));
      data[3].ints.push_back(rng.NextInRange(90000, 91000));
    }
    RAPID_CHECK(
        engine.Load(storage::LoadTable("shuffled", specs, data).value()).ok());
  }
}

LogicalPtr Q6(const std::string& table) {
  return LogicalNode::GroupBy(
      LogicalNode::Scan(
          table, {"discount", "price"},
          {Predicate::Between("shipdate", 9200, 9500, 0.5),
           Predicate::CmpConst("quantity", CmpOp::kLt, 24, 0.5),
           Predicate::Between("discount", 3, 7, 0.45)}),
      {},
      {{"revenue", AggFunc::kSum,
        Expr::Mul(Expr::Col("price"), Expr::Col("discount")), {}}});
}

struct RunResult {
  size_t rows = 0;
  int64_t revenue = 0;
  double modeled_ms = 0;
  double wall_ms = 0;
  double dms_cycles = 0;
  uint64_t encoded_bytes = 0;
  uint64_t plain_bytes = 0;
  uint64_t runs_filtered = 0;
};

RunResult Run(RapidEngine& engine, const std::string& table,
              EncodedScanMode mode) {
  const EncodedScanMode prev = storage::ForceEncodedScan(mode);
  auto result = engine.Execute(Q6(table));
  storage::ForceEncodedScan(prev);
  RAPID_CHECK(result.ok());
  RunResult r;
  r.rows = result.value().rows.num_rows();
  r.revenue = r.rows > 0 ? result.value().rows.Value(0, 0) : 0;
  r.modeled_ms = result.value().stats.modeled_seconds * 1e3;
  r.wall_ms = result.value().stats.wall_seconds * 1e3;
  r.dms_cycles = result.value().stats.total_dms_cycles;
  r.encoded_bytes = result.value().stats.encoded_bytes_moved;
  r.plain_bytes = result.value().stats.plain_bytes_moved;
  r.runs_filtered = result.value().stats.runs_filtered;
  return r;
}

}  // namespace

int main() {
  bench::Header("Encoded scans (RAPID_ENCODED_SCAN ablation)",
                "RLE tiles over the DMS + run-level filters vs plain scans");
  RapidEngine engine;
  LoadTables(engine);

  std::printf("%zu rows/table, Q6-shaped scan+sum; off = plain tiles,\n"
              "auto = encoded transfers + run-level predicates\n\n",
              kRows);
  std::printf("%-13s | %9s | %9s | %7s | %9s | %9s | %8s\n", "table",
              "off ms", "auto ms", "speedup", "enc KB", "plain KB", "runs");
  std::printf("--------------+-----------+-----------+---------+-----------+"
              "-----------+---------\n");

  bool ok = true;
  double friendly_speedup = 0;
  double shuffled_speedup = 0;
  RunResult results[2][2];
  const char* tables[2] = {"rle_friendly", "shuffled"};
  for (int t = 0; t < 2; ++t) {
    const RunResult off = Run(engine, tables[t], EncodedScanMode::kOff);
    const RunResult on = Run(engine, tables[t], EncodedScanMode::kAuto);
    results[t][0] = off;
    results[t][1] = on;
    // Bit-identity is non-negotiable: same group count, same sum.
    RAPID_CHECK(off.rows == on.rows);
    RAPID_CHECK(off.revenue == on.revenue);
    RAPID_CHECK(off.encoded_bytes == 0);
    const double speedup = on.modeled_ms > 0 ? off.modeled_ms / on.modeled_ms
                                             : 1.0;
    (t == 0 ? friendly_speedup : shuffled_speedup) = speedup;
    std::printf("%-13s | %9.3f | %9.3f | %6.2fx | %9.1f | %9.1f | %8llu\n",
                tables[t], off.modeled_ms, on.modeled_ms, speedup,
                on.encoded_bytes / 1024.0, on.plain_bytes / 1024.0,
                static_cast<unsigned long long>(on.runs_filtered));
  }

  // Gates: the friendly table must win >= 1.3x modeled; the shuffled
  // table (nothing encodable, the gate should be a no-op) must not
  // regress by more than 2%.
  if (friendly_speedup < 1.3) ok = false;
  if (shuffled_speedup < 0.98) ok = false;
  if (results[0][1].encoded_bytes == 0) ok = false;
  if (results[0][1].runs_filtered == 0) ok = false;

  FILE* json = std::fopen("BENCH_encoding.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"rows\": %zu,\n", kRows);
    for (int t = 0; t < 2; ++t) {
      std::fprintf(
          json,
          "  \"%s\": {\"off_modeled_ms\": %.6f, \"auto_modeled_ms\": %.6f,\n"
          "    \"speedup\": %.4f, \"encoded_bytes\": %llu,\n"
          "    \"plain_bytes\": %llu, \"runs_filtered\": %llu,\n"
          "    \"off_dms_cycles\": %.0f, \"auto_dms_cycles\": %.0f},\n",
          tables[t], results[t][0].modeled_ms, results[t][1].modeled_ms,
          t == 0 ? friendly_speedup : shuffled_speedup,
          static_cast<unsigned long long>(results[t][1].encoded_bytes),
          static_cast<unsigned long long>(results[t][1].plain_bytes),
          static_cast<unsigned long long>(results[t][1].runs_filtered),
          results[t][0].dms_cycles, results[t][1].dms_cycles);
    }
    std::fprintf(json, "  \"pass\": %s\n}\n", ok ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_encoding.json\n");
  }

  std::printf("\nGates: bit-identical results; rle_friendly >= 1.3x modeled"
              " (got %.2fx);\nshuffled regression <= 2%% (got %.2fx): %s\n",
              friendly_speedup, shuffled_speedup, ok ? "PASS" : "FAIL");
  // Acceptance (opt-in, RAPID_CHECK=1): the modeled speedup/regression
  // gates become hard failures (modeled time is deterministic, so this
  // is safe to enforce on any machine).
  if (const char* check = std::getenv("RAPID_CHECK");
      check != nullptr && std::string(check) == "1") {
    RAPID_CHECK(ok);
  }
  return ok ? 0 : 1;
}
