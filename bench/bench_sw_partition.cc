// Figure 10: software partitioning operator performance.
//
// Fan-out sweep with 2 columns of 4 bytes and several input tile
// sizes. The paper reports ~948 M rows/s at 32-way fan-out on 32
// cores (7-7.6 GiB/s with tiles > 128 rows), feasibility up to 64-way
// without a significant drop, and larger tiles helping at high
// fan-outs.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/ops/partition_exec.h"
#include "dpu/dpu.h"

namespace {

using namespace rapid;
using namespace rapid::core;

ColumnSet MakeInput(size_t rows) {
  std::vector<ColumnMeta> metas(2);
  metas[0].name = "k";
  metas[0].type = storage::DataType::kInt32;  // 2 x 4-byte columns
  metas[1].name = "v";
  metas[1].type = storage::DataType::kInt32;
  ColumnSet set(metas);
  Rng rng(42);
  set.column(0).reserve(rows);
  set.column(1).reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    set.column(0).push_back(rng.NextInRange(0, 1 << 20));
    set.column(1).push_back(static_cast<int64_t>(i));
  }
  return set;
}

// Modeled throughput of software-partitioning `input` `fanout` ways.
double MRowsPerSec(dpu::Dpu& dpu, const ColumnSet& input, int fanout,
                   size_t tile_rows) {
  dpu.ResetCores();
  PartitionScheme scheme;
  scheme.rounds.push_back(PartitionRound{fanout, /*hw_fanout=*/1});
  auto result = PartitionExec::Execute(dpu, input, {0}, scheme, tile_rows);
  RAPID_CHECK(result.ok());
  const double seconds = dpu.ModeledPhaseSeconds();
  return static_cast<double>(input.num_rows()) / seconds / 1e6;
}

}  // namespace

int main() {
  bench::Header("Figure 10", "Software partitioning operator performance");
  dpu::Dpu dpu;
  const ColumnSet input = MakeInput(1 << 20);

  std::printf("%-8s", "fanout");
  for (size_t tile : {64u, 128u, 256u, 512u}) {
    std::printf(" | tile=%-4zu", tile);
  }
  std::printf("   (M rows/s, 32 cores)\n");
  std::printf("--------+-----------+-----------+-----------+-----------\n");
  double at32 = 0;
  for (int fanout : {2, 4, 8, 16, 32, 64, 128, 256}) {
    std::printf("%-8d", fanout);
    for (size_t tile : {64u, 128u, 256u, 512u}) {
      const double mrows = MRowsPerSec(dpu, input, fanout, tile);
      if (fanout == 32 && tile == 256) at32 = mrows;
      std::printf(" | %9.0f", mrows);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper: ~948 M rows/s at 32-way (reproduced: %.0f M rows/s at\n"
      "tile 256); feasible to 64-way without a significant drop; larger\n"
      "tiles win at high fan-outs (per-partition loop overhead\n"
      "amortizes over more rows).\n",
      at32);
  return 0;
}
