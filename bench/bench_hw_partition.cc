// Figure 8: hardware-partitioning performance of the DMS.
//
// 32-way partitioning of a large relation with 4 columns of 4 bytes
// each, for every strategy the engine supports: radix (low 5 bits of
// the key), hash over 1/2/4 keys, and range (uniform bounds over the
// input cardinality). The paper reports ~9.3 GiB/s in all cases.

#include <cstdio>
#include <numeric>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "dpu/dpu.h"

namespace {

using namespace rapid;
using namespace rapid::dpu;

double RunStrategy(Dpu& dpu, HwPartitionStrategy strategy, int num_keys,
                   size_t rows) {
  // 4 columns of 4 bytes; key columns drawn from them.
  Rng rng(42);
  std::vector<std::vector<int32_t>> cols(4, std::vector<int32_t>(rows));
  for (auto& col : cols) {
    for (auto& v : col) v = static_cast<int32_t>(rng.NextBounded(1u << 30));
  }

  HwPartitionSpec spec;
  spec.strategy = strategy;
  spec.fanout = 32;
  for (int k = 0; k < num_keys; ++k) {
    spec.keys.push_back(
        KeyColumn{reinterpret_cast<uint8_t*>(cols[k].data()), 4});
  }
  if (strategy == HwPartitionStrategy::kRange) {
    // Uniform ranges over the input cardinality (31 bounds).
    for (int b = 1; b < 32; ++b) {
      spec.range_bounds.push_back(static_cast<int64_t>(
          (static_cast<uint64_t>(1) << 30) / 32 * b));
    }
  }

  dpu.ResetCores();
  CycleCounter cycles;
  std::vector<uint16_t> targets;
  RAPID_CHECK_OK(
      dpu.dms().ComputeTargets(&cycles, spec, rows, /*row_bytes=*/16,
                               &targets));
  // Distribute all 4 columns to the per-core buffers (part of the same
  // engine pass; target resolution dominates the charge).
  std::vector<std::vector<uint8_t>> out(32);
  for (int c = 0; c < 4; ++c) {
    dpu.dms().DistributeColumn(nullptr, reinterpret_cast<uint8_t*>(
                                            cols[c].data()),
                               4, targets, &out);
  }

  const double seconds = cycles.dms_cycles() / dpu.params().clock_hz;
  const double bytes = static_cast<double>(rows) * 16;
  return bytes / seconds / (1 << 30);
}

}  // namespace

int main() {
  bench::Header("Figure 8", "Hardware-partitioning performance of DMS");
  Dpu dpu;
  constexpr size_t kRows = 4 << 20;  // 64 MiB relation

  struct Config {
    const char* name;
    HwPartitionStrategy strategy;
    int keys;
    double paper_gib;
  };
  const Config configs[] = {
      {"radix", HwPartitionStrategy::kRadix, 1, 9.3},
      {"hash-1key", HwPartitionStrategy::kHash, 1, 9.3},
      {"hash-2key", HwPartitionStrategy::kHash, 2, 9.3},
      {"hash-4key", HwPartitionStrategy::kHash, 4, 9.3},
      {"range", HwPartitionStrategy::kRange, 1, 9.3},
  };

  std::printf("%-10s | %15s | %15s\n", "strategy", "paper (GiB/s)",
              "modeled (GiB/s)");
  std::printf("-----------+-----------------+----------------\n");
  for (const Config& c : configs) {
    const double gib = RunStrategy(dpu, c.strategy, c.keys, kRows);
    std::printf("%-10s | %15.1f | %15.2f\n", c.name, c.paper_gib, gib);
  }
  std::printf(
      "\nShape check: all strategies sustain ~9.3 GiB/s; the engine\n"
      "works in isolation from the dpCores (no compute cycles charged).\n");
  return 0;
}
