// Tile-pipeline fusion ablation.
//
// The same star-join query family executed twice through the full
// stack: once with the fused push-pipeline executor (scan/filter/
// project/broadcast-probe collapsed into one ParallelFor round, tiles
// staying DMEM-resident across the whole chain) and once with the
// step-materialized path (every operator materializes a ColumnSet,
// joins partition both sides). Chains grow from 2 to 4 operators.
//
// Reported per chain: plan shape, end-to-end rows/s, modeled time and
// modeled DMS transfer cycles. The DMS ratio is the fusion win — data
// movement eliminated by not materializing intermediates and not
// partitioning — and must not come with a wall-clock regression.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "storage/loader.h"

namespace {

using namespace rapid;
using namespace rapid::core;
using primitives::CmpOp;

constexpr size_t kFactRows = 200'000;
constexpr size_t kDimRows = 1'000;

void LoadData(RapidEngine& engine) {
  Rng rng(42);
  {
    std::vector<storage::ColumnSpec> specs = {
        {"f_id", storage::ColumnKind::kInt64},
        {"f_dim", storage::ColumnKind::kInt32},
        {"f_price", storage::ColumnKind::kDecimal},
        {"f_qty", storage::ColumnKind::kInt32}};
    std::vector<storage::ColumnData> data(4);
    for (size_t i = 0; i < kFactRows; ++i) {
      data[0].ints.push_back(static_cast<int64_t>(i));
      data[1].ints.push_back(rng.NextInRange(0, kDimRows - 1));
      data[2].decimals.push_back(
          static_cast<double>(rng.NextInRange(100, 99999)) / 100.0);
      data[3].ints.push_back(rng.NextInRange(1, 50));
    }
    RAPID_CHECK(engine.Load(storage::LoadTable("facts", specs, data).value())
                    .ok());
  }
  {
    std::vector<storage::ColumnSpec> specs = {
        {"d_id", storage::ColumnKind::kInt32},
        {"d_class", storage::ColumnKind::kInt32}};
    std::vector<storage::ColumnData> data(2);
    for (size_t i = 0; i < kDimRows; ++i) {
      data[0].ints.push_back(static_cast<int64_t>(i));
      data[1].ints.push_back(static_cast<int64_t>(i % 13));
    }
    RAPID_CHECK(engine.Load(storage::LoadTable("dims", specs, data).value())
                    .ok());
  }
}

struct ChainResult {
  size_t rows = 0;
  size_t steps = 0;
  double wall_ms = 0;
  double modeled_ms = 0;
  double dms_cycles = 0;
};

ChainResult Run(RapidEngine& engine, const LogicalPtr& plan, bool fused) {
  ExecOptions options;
  options.planner.enable_fusion = fused;
  auto result = engine.Execute(plan, options);
  RAPID_CHECK(result.ok());
  ChainResult r;
  r.rows = result.value().rows.num_rows();
  r.steps = result.value().stats.steps.size();
  r.wall_ms = result.value().stats.wall_seconds * 1e3;
  r.modeled_ms = result.value().stats.modeled_seconds * 1e3;
  r.dms_cycles = result.value().stats.total_dms_cycles;
  return r;
}

}  // namespace

int main() {
  bench::Header("Tile-pipeline fusion (ablation)",
                "Fused push pipelines vs step-materialized execution");
  RapidEngine engine;
  LoadData(engine);

  auto facts = LogicalNode::Scan("facts", {"f_dim", "f_price", "f_qty"});
  auto dims = LogicalNode::Scan("dims", {"d_id", "d_class"});

  std::vector<std::pair<std::string, LogicalPtr>> chains;
  // 2 ops: scan -> broadcast probe.
  chains.emplace_back(
      "scan>probe",
      LogicalNode::Join(dims, facts, {"d_id"}, {"f_dim"},
                        {"d_class", "f_price", "f_qty"}));
  // 3 ops: scan -> filter -> probe.
  auto filtered = LogicalNode::Scan(
      "facts", {"f_dim", "f_price", "f_qty"},
      {Predicate::CmpConst("f_qty", CmpOp::kGe, 20)});
  chains.emplace_back(
      "scan>filter>probe",
      LogicalNode::Join(dims, filtered, {"d_id"}, {"f_dim"},
                        {"d_class", "f_price", "f_qty"}));
  // 4 ops: scan -> filter -> probe -> project (the project rides the
  // fused pipeline as a trailing filter+project stage).
  chains.emplace_back(
      "scan>filter>probe>project",
      LogicalNode::Project(
          LogicalNode::Join(dims, filtered, {"d_id"}, {"f_dim"},
                            {"d_class", "f_price", "f_qty"}),
          {{"gross", Expr::Mul(Expr::Col("f_price"), Expr::Col("f_qty"))},
           {"d_class", Expr::Col("d_class")}}));

  std::printf("facts %zu rows x dims %zu rows; fused = tile pipelines +\n"
              "broadcast probe, unfused = materialize + partitioned join\n\n",
              kFactRows, kDimRows);
  std::printf("%-26s | %5s | %5s | %9s | %9s | %8s | %8s | %5s\n", "chain",
              "steps", "f.stp", "unf ms", "fus ms", "unf DMSc", "fus DMSc",
              "DMSx");
  std::printf("---------------------------+-------+-------+-----------+-----"
              "------+----------+----------+------\n");

  bool ok = true;
  for (const auto& [name, plan] : chains) {
    const ChainResult unfused = Run(engine, plan, false);
    const ChainResult fused = Run(engine, plan, true);
    RAPID_CHECK(fused.rows == unfused.rows);
    const double dms_ratio =
        fused.dms_cycles > 0 ? unfused.dms_cycles / fused.dms_cycles : 0;
    const double fused_rows_per_s =
        static_cast<double>(fused.rows) / (fused.wall_ms / 1e3);
    std::printf("%-26s | %5zu | %5zu | %9.3f | %9.3f | %7.2fM | %7.2fM |"
                " %4.1fx\n",
                name.c_str(), unfused.steps, fused.steps, unfused.modeled_ms,
                fused.modeled_ms, unfused.dms_cycles / 1e6,
                fused.dms_cycles / 1e6, dms_ratio);
    std::printf("%-26s   fused output %.1fM rows/s wall, wall %0.1f ms vs"
                " %0.1f ms\n",
                "", fused_rows_per_s / 1e6, fused.wall_ms, unfused.wall_ms);
    if (dms_ratio < 1.3) ok = false;
  }

  std::printf("\nShape check: identical row counts; every fused chain moves\n"
              ">=1.3x fewer modeled DMS cycles than the step-materialized\n"
              "plan: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
