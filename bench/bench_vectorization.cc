// Figure 13: performance gain in join with vectorization.
//
// The paper isolates the join of TPC-H Q3 and runs it with and
// without vectorized execution, reporting ~46% improvement (and far
// fewer branch mispredictions) with vectorization on. Here the same
// Q3 join fragment runs through the engine in both modes; the
// row-at-a-time mode charges the per-row interpretation overhead that
// batching amortizes away.

#include <cstdio>

#include "bench/bench_util.h"
#include "tpch/queries.h"

int main() {
  using namespace rapid;
  bench::Header("Figure 13", "Performance gain in join with vectorization");

  hostdb::HostDatabase host;
  core::RapidEngine engine;
  const double sf = bench::ScaleFactor();
  RAPID_CHECK_OK(tpch::LoadTpch(sf, &host, &engine));

  auto q3 = tpch::BuildQuery("Q3").value();
  auto plan = q3.fragments[0](engine.catalog(), {}).value();

  core::ExecOptions vec;
  vec.vectorized = true;
  core::ExecOptions scalar;
  scalar.vectorized = false;

  // The paper isolates the *join operator* of Q3; sum the modeled time
  // of the hash-join steps in each mode.
  auto join_seconds = [&](const core::ExecOptions& options) {
    auto result = engine.Execute(plan, options);
    RAPID_CHECK(result.ok());
    double seconds = 0;
    for (const core::StepTiming& step : result.value().stats.steps) {
      if (step.description.find("HASHJOIN") != std::string::npos) {
        seconds += step.modeled_seconds;
      }
    }
    return seconds;
  };
  const double t_vec = join_seconds(vec);
  const double t_scalar = join_seconds(scalar);
  const double gain = (t_scalar - t_vec) / t_scalar * 100.0;

  std::printf("TPC-H Q3 (SF %.2f), modeled DPU time of the join steps:\n",
              sf);
  std::printf("  %-28s %10.3f ms\n", "vectorization disabled:",
              t_scalar * 1e3);
  std::printf("  %-28s %10.3f ms\n", "vectorization enabled:", t_vec * 1e3);
  std::printf("\n%-36s | %8s | %8s\n", "metric", "paper", "repro");
  std::printf("-------------------------------------+----------+---------\n");
  std::printf("%-36s | %7.0f%% | %7.0f%%\n",
              "gain with vectorized execution", 46.0, gain);
  std::printf(
      "\nShape check: batching rows through primitives removes the\n"
      "per-row setup/interpretation overhead (and, on the real dpCore,\n"
      "the branch mispredictions the paper measures).\n");
  return 0;
}
