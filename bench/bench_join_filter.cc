// Join-filter pushdown A/B: RAPID_JOIN_FILTER=off vs auto through the
// full engine on a partitioned FK join.
//
// Two joins over the same fact table: a *selective* one (the dim
// build side filtered to ~1% of its keys, so ~99% of fact rows
// reference pruned dims and are Bloom-prunable before the probe-side
// partition rounds) and a *non-selective* one (every fact row has a
// build match, so the cost gate must decline the filter and the auto
// mode must cost nothing). The pushdown must (i) return bit-identical
// results, (ii) cut modeled join time >= 1.3x on the selective join,
// and (iii) cost <= 2% where nothing can be pruned — the auto gate
// has to be safe to leave on.
//
// Emits BENCH_join_filter.json for the CI trend line.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/join_filter.h"
#include "storage/loader.h"

namespace {

using namespace rapid;
using namespace rapid::core;

constexpr size_t kFactRows = 200'000;
constexpr size_t kDimRows = 8192;

void LoadTables(RapidEngine& engine) {
  {
    std::vector<storage::ColumnSpec> specs = {
        {"k", storage::ColumnKind::kInt64},
        {"w", storage::ColumnKind::kInt32}};
    std::vector<storage::ColumnData> data(2);
    for (size_t i = 0; i < kDimRows; ++i) {
      data[0].ints.push_back(static_cast<int64_t>(i));
      data[1].ints.push_back(static_cast<int64_t>(i));
    }
    RAPID_CHECK(engine.Load(storage::LoadTable("dim", specs, data).value())
                    .ok());
  }
  {
    std::vector<storage::ColumnSpec> specs = {
        {"id", storage::ColumnKind::kInt64},
        {"v", storage::ColumnKind::kInt64}};
    std::vector<storage::ColumnData> data(2);
    Rng rng(4242);
    for (size_t i = 0; i < kFactRows; ++i) {
      data[0].ints.push_back(static_cast<int64_t>(i));
      data[1].ints.push_back(
          rng.NextInRange(0, static_cast<int>(kDimRows) - 1));
    }
    RAPID_CHECK(engine.Load(storage::LoadTable("fact", specs, data).value())
                    .ok());
  }
}

// selective: build side filtered to ~1% of its keys. Non-selective:
// unfiltered build, every probe row passes — nothing to prune.
LogicalPtr JoinPlan(bool selective) {
  std::vector<Predicate> dim_preds;
  if (selective) {
    dim_preds.push_back(Predicate::Between("w", 0, 80, 0.01));
  }
  return LogicalNode::GroupBy(
      LogicalNode::Join(
          LogicalNode::Scan("dim", {"k", "w"}, std::move(dim_preds)),
          LogicalNode::Scan("fact", {"id", "v"}), {"k"}, {"v"},
          {"id", "w"}),
      {},
      {{"checksum", AggFunc::kSum, Expr::Col("id"), {}},
       {"rows", AggFunc::kCount, Expr::Col("id"), {}}});
}

struct RunResult {
  int64_t checksum = 0;
  int64_t rows = 0;
  double modeled_ms = 0;
  double dms_cycles = 0;
  uint64_t filters_built = 0;
  uint64_t rows_pruned = 0;
  uint64_t filter_bytes = 0;
};

RunResult Run(RapidEngine& engine, bool selective, JoinFilterMode mode) {
  const JoinFilterMode prev = ForceJoinFilter(mode);
  // Unfused partitioned join: the headline saving is the probe-side
  // partition DMS round trips the pruned rows no longer pay.
  ExecOptions options;
  options.planner.enable_fusion = false;
  auto result = engine.Execute(JoinPlan(selective), options);
  ForceJoinFilter(prev);
  RAPID_CHECK(result.ok());
  RunResult r;
  RAPID_CHECK(result.value().rows.num_rows() == 1);
  r.checksum = result.value().rows.Value(0, 0);
  r.rows = result.value().rows.Value(0, 1);
  r.modeled_ms = result.value().stats.modeled_seconds * 1e3;
  r.dms_cycles = result.value().stats.total_dms_cycles;
  r.filters_built = result.value().stats.join_filter_built;
  r.rows_pruned = result.value().stats.rows_pruned_by_join_filter;
  r.filter_bytes = result.value().stats.filter_bytes;
  return r;
}

}  // namespace

int main() {
  bench::Header("Join-filter pushdown (RAPID_JOIN_FILTER ablation)",
                "build-side Bloom filters pruning probe rows before the DMS");
  RapidEngine engine;
  LoadTables(engine);

  std::printf("%zu-row fact joins %zu-row dim (sum+count on top);\n"
              "off = plain partitioned join, auto = Bloom pruning in the"
              " probe scan\n\n",
              kFactRows, kDimRows);
  std::printf("%-13s | %9s | %9s | %7s | %9s | %8s | %8s\n", "join",
              "off ms", "auto ms", "speedup", "pruned", "filters", "flt KB");
  std::printf("--------------+-----------+-----------+---------+-----------+"
              "----------+---------\n");

  bool ok = true;
  double selective_speedup = 0;
  double nonselective_speedup = 0;
  RunResult results[2][2];
  const char* names[2] = {"selective", "nonselective"};
  for (int t = 0; t < 2; ++t) {
    const bool selective = t == 0;
    const RunResult off = Run(engine, selective, JoinFilterMode::kOff);
    const RunResult on = Run(engine, selective, JoinFilterMode::kAuto);
    results[t][0] = off;
    results[t][1] = on;
    // Bit-identity is non-negotiable: same row count, same checksum.
    RAPID_CHECK(off.rows == on.rows);
    RAPID_CHECK(off.checksum == on.checksum);
    RAPID_CHECK(off.filters_built == 0 && off.rows_pruned == 0);
    const double speedup =
        on.modeled_ms > 0 ? off.modeled_ms / on.modeled_ms : 1.0;
    (selective ? selective_speedup : nonselective_speedup) = speedup;
    std::printf("%-13s | %9.3f | %9.3f | %6.2fx | %9llu | %8llu | %8.1f\n",
                names[t], off.modeled_ms, on.modeled_ms, speedup,
                static_cast<unsigned long long>(on.rows_pruned),
                static_cast<unsigned long long>(on.filters_built),
                on.filter_bytes / 1024.0);
  }

  // Gates: the selective join must win >= 1.3x modeled and really
  // prune; the non-selective join (cost gate declines the filter)
  // must not regress by more than 2%.
  if (selective_speedup < 1.3) ok = false;
  if (nonselective_speedup < 0.98) ok = false;
  if (results[0][1].rows_pruned == 0) ok = false;
  if (results[0][1].filters_built == 0) ok = false;

  FILE* json = std::fopen("BENCH_join_filter.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"fact_rows\": %zu,\n  \"dim_rows\": %zu,\n",
                 kFactRows, kDimRows);
    for (int t = 0; t < 2; ++t) {
      std::fprintf(
          json,
          "  \"%s\": {\"off_modeled_ms\": %.6f, \"auto_modeled_ms\": %.6f,\n"
          "    \"speedup\": %.4f, \"rows_pruned\": %llu,\n"
          "    \"filters_built\": %llu, \"filter_bytes\": %llu,\n"
          "    \"off_dms_cycles\": %.0f, \"auto_dms_cycles\": %.0f},\n",
          names[t], results[t][0].modeled_ms, results[t][1].modeled_ms,
          t == 0 ? selective_speedup : nonselective_speedup,
          static_cast<unsigned long long>(results[t][1].rows_pruned),
          static_cast<unsigned long long>(results[t][1].filters_built),
          static_cast<unsigned long long>(results[t][1].filter_bytes),
          results[t][0].dms_cycles, results[t][1].dms_cycles);
    }
    std::fprintf(json, "  \"pass\": %s\n}\n", ok ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_join_filter.json\n");
  }

  std::printf("\nGates: bit-identical results; selective >= 1.3x modeled"
              " (got %.2fx);\nnonselective regression <= 2%% (got %.2fx): %s\n",
              selective_speedup, nonselective_speedup, ok ? "PASS" : "FAIL");
  // Acceptance (opt-in, RAPID_CHECK=1): modeled time is deterministic,
  // so the speedup/regression gates are safe to enforce anywhere.
  if (const char* check = std::getenv("RAPID_CHECK");
      check != nullptr && std::string(check) == "1") {
    RAPID_CHECK(ok);
  }
  return ok ? 0 : 1;
}
