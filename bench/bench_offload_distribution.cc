// Figure 15: elapsed-time percentage in RAPID vs the host database.
//
// Scans, filters, group-bys, top-k and joins offload entirely, so the
// paper measures an average 97.57% of elapsed time spent in RAPID,
// with the host only post-processing the (small) results. This
// harness routes each query's fragments through the host database's
// offload machinery and measures the wall-clock split.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "tpch/queries.h"

int main() {
  using namespace rapid;
  bench::Header("Figure 15", "Elapsed time percentage in RAPID vs host");

  hostdb::HostDatabase host;
  core::RapidEngine engine;
  const double sf = bench::ScaleFactor();
  RAPID_CHECK_OK(tpch::LoadTpch(sf, &host, &engine));
  // Wall-clock measurement: run the simulated cores inline so OS
  // thread scheduling on small hosts does not pollute the timing.
  engine.dpu().SetInlineExecution(true);

  std::printf("TPC-H SF %.2f, full offload through the RAPID operator\n\n",
              sf);
  std::printf("%-6s | %12s | %12s | %10s\n", "query", "RAPID (ms)",
              "host (ms)", "RAPID %");
  std::printf("-------+--------------+--------------+-----------\n");

  double pct_sum = 0;
  int count = 0;
  for (const tpch::TpchQuery& query : tpch::BuildQuerySet()) {
    double rapid_s = 0;
    double host_s = 0;
    std::vector<core::ColumnSet> prev;
    bool ok = true;
    for (const auto& fragment : query.fragments) {
      auto plan = fragment(host.catalog(), prev);
      if (!plan.ok()) {
        ok = false;
        break;
      }
      auto report = host.ExecuteQuery(plan.value(), &engine);
      if (!report.ok()) {
        ok = false;
        break;
      }
      rapid_s += report.value().rapid_wall_seconds;
      host_s += report.value().host_wall_seconds;
      prev.push_back(std::move(report.value().rows));
    }
    if (!ok) continue;
    // Host post-processing (AVG finalization etc.) counts as host time.
    if (query.post) {
      const auto t0 = std::chrono::steady_clock::now();
      (void)query.post(prev);
      host_s += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    }
    const double pct = rapid_s / (rapid_s + host_s) * 100.0;
    pct_sum += pct;
    ++count;
    std::printf("%-6s | %12.3f | %12.3f | %9.2f%%\n", query.name.c_str(),
                rapid_s * 1e3, host_s * 1e3, pct);
  }
  std::printf("-------+--------------+--------------+-----------\n");
  std::printf("%-6s | %12s | %12s | %9.2f%%\n", "avg", "", "",
              pct_sum / count);
  std::printf("\nPaper: 97.57%% average elapsed time in RAPID.\n");
  return 0;
}
