// Tile-local memory ablation: (1) software-partition column scatter,
// scalar store loop vs the write-combining kernel that stages full
// cache lines in DMEM-modeled scratch and flushes them with streaming
// stores — measured in GB/s at fan-outs crossing the TLB/cache-line
// pressure point, with in-bench bit-identity; (2) heap allocations per
// tile on the TPC-H Q6 and Q14 paths, tile-pool recycling vs the
// pre-pool one-heap-allocation-per-acquire behavior (RAPID_TILE_POOL
// bypass). Emits BENCH_memory.json for the CI trend line.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "common/arena.h"
#include "common/simd.h"
#include "core/engine.h"
#include "hostdb/database.h"
#include "primitives/simd.h"
#include "tpch/queries.h"

namespace {

using namespace rapid;

struct ScatterPoint {
  size_t fanout = 0;
  double scalar_gbs = 0;
  double vector_gbs = 0;
  bool identical = false;
};

double SecondsOf(const std::function<void()>& fn, int reps) {
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

ScatterPoint RunScatter(size_t fanout, size_t n, int reps) {
  std::mt19937_64 rng(fanout * 7919 + 17);
  std::vector<int64_t> input(n);
  std::vector<uint16_t> pof(n);
  std::vector<uint32_t> counts(fanout, 0);
  for (size_t i = 0; i < n; ++i) {
    input[i] = static_cast<int64_t>(rng());
    pof[i] = static_cast<uint16_t>(rng() % fanout);
    ++counts[pof[i]];
  }
  Arena arena;
  uint8_t* wc = static_cast<uint8_t*>(
      arena.Allocate(primitives::simd::ScatterScratchBytes(fanout)));

  // Two independent destination sets so the levels cannot alias.
  auto make_dst = [&](std::vector<std::vector<int64_t>>* storage,
                      std::vector<int64_t*>* dst) {
    storage->assign(fanout, {});
    dst->assign(fanout, nullptr);
    for (size_t p = 0; p < fanout; ++p) {
      (*storage)[p].assign(counts[p] + 1, 0);
      (*dst)[p] = (*storage)[p].data();
    }
  };
  std::vector<std::vector<int64_t>> sstore, vstore;
  std::vector<int64_t*> sdst, vdst;
  make_dst(&sstore, &sdst);
  make_dst(&vstore, &vdst);

  ScatterPoint point;
  point.fanout = fanout;
  const double bytes = static_cast<double>(n) * sizeof(int64_t) * reps;

  const SimdLevel prev = ForceSimdLevel(SimdLevel::kScalar);
  auto scalar_fn = primitives::simd::partition_kernels().scatter_col;
  ForceSimdLevel(SimdLevelSupported());
  auto vector_fn = primitives::simd::partition_kernels().scatter_col;
  ForceSimdLevel(prev);

  // Each call restarts its cursors from the dst bases, so repetitions
  // overwrite in place and timing stays allocation-free.
  point.scalar_gbs =
      bytes / SecondsOf([&] { scalar_fn(input.data(), pof.data(), n, fanout,
                                        sdst.data(), wc); }, reps) / 1e9;
  point.vector_gbs =
      bytes / SecondsOf([&] { vector_fn(input.data(), pof.data(), n, fanout,
                                        vdst.data(), wc); }, reps) / 1e9;

  point.identical = true;
  for (size_t p = 0; p < fanout; ++p) {
    if (std::memcmp(sstore[p].data(), vstore[p].data(),
                    counts[p] * sizeof(int64_t)) != 0) {
      point.identical = false;
    }
  }
  return point;
}

struct AllocPoint {
  std::string name;
  uint64_t tiles = 1;
  uint64_t heap_allocs_before = 0;  // pool bypassed: one heap alloc each
  uint64_t heap_allocs_after = 0;   // warm pool: misses only
  double reduction = 0;
};

TilePoolStats PoolNow(core::RapidEngine& engine) {
  TilePoolStats total;
  for (int c = 0; c < engine.dpu().num_cores(); ++c) {
    total.Accumulate(engine.dpu().core(c).pool().stats());
  }
  return total;
}

AllocPoint RunAllocs(core::RapidEngine& engine, const tpch::TpchQuery& query,
                     size_t tile_rows) {
  AllocPoint point;
  point.name = query.name;

  // "Before": the pre-pool engine — every tile-scratch acquire is a
  // heap allocation (and the arena never grows).
  const bool prev_bypass = TileBufferPool::ForceBypass(true);
  TilePoolStats t0 = PoolNow(engine);
  auto before = tpch::RunOnRapid(engine, query);
  RAPID_CHECK(before.ok());
  TilePoolStats t1 = PoolNow(engine);
  TileBufferPool::ForceBypass(prev_bypass);
  point.heap_allocs_before = t1.acquires - t0.acquires;

  // "After": warm the pool once, then measure the steady state every
  // query after the first actually runs in.
  auto warm = tpch::RunOnRapid(engine, query);
  RAPID_CHECK(warm.ok());
  TilePoolStats t2 = PoolNow(engine);
  auto after = tpch::RunOnRapid(engine, query);
  RAPID_CHECK(after.ok());
  TilePoolStats t3 = PoolNow(engine);
  point.heap_allocs_after = t3.misses - t2.misses;

  const uint64_t scanned = after.value().workload.scanned_rows;
  point.tiles = scanned > 0 ? (scanned + tile_rows - 1) / tile_rows : 1;
  point.reduction =
      static_cast<double>(point.heap_allocs_before) /
      static_cast<double>(std::max<uint64_t>(1, point.heap_allocs_after));
  return point;
}

}  // namespace

int main() {
  bench::Header("Tile-local memory",
                "WC partition scatter + tile-pool allocation ablation");

  // ---- Scatter kernels -----------------------------------------------------
  // Output must exceed the last-level cache for the streaming stores
  // to pay off — that is the regime the partition scatter lives in
  // (fresh destination vectors every tile, fan-out x columns outputs).
  const size_t kRows = 1u << 23;  // 64 MiB of int64 per pass
  const int kReps = 4;
  std::vector<ScatterPoint> scatter;
  for (size_t fanout : {16u, 64u, 256u}) {
    scatter.push_back(RunScatter(fanout, kRows, kReps));
    RAPID_CHECK(scatter.back().identical);
  }

  std::printf("scatter, %zu rows x %d reps, int64 columns (vector tier: %s)\n\n",
              kRows, kReps,
              SimdLevelName(SimdLevelSupported()));
  std::printf("%7s | %11s | %11s | %8s | %9s\n", "fanout", "scalar GB/s",
              "vector GB/s", "speedup", "identical");
  std::printf("--------+-------------+-------------+----------+----------\n");
  for (const ScatterPoint& p : scatter) {
    std::printf("%7zu | %11.2f | %11.2f | %7.2fx | %9s\n", p.fanout,
                p.scalar_gbs, p.vector_gbs, p.vector_gbs / p.scalar_gbs,
                p.identical ? "yes" : "NO");
  }

  // ---- Q6/Q14 allocations per tile ----------------------------------------
  const double sf = rapid::bench::ScaleFactor(0.02);
  const size_t tile_rows = 2048;
  hostdb::HostDatabase host;
  core::RapidEngine engine{dpu::DpuConfig{}};
  RAPID_CHECK(tpch::LoadTpch(sf, &host, &engine, 42, tile_rows).ok());

  std::vector<AllocPoint> allocs;
  for (const char* name : {"Q6", "Q14"}) {
    auto query = tpch::BuildQuery(name);
    RAPID_CHECK(query.ok());
    allocs.push_back(RunAllocs(engine, query.value(), tile_rows));
  }

  std::printf("\nTPC-H SF %.2f, %zu-row tiles; before = pool bypassed (one"
              " heap alloc per acquire), after = warm-pool misses\n\n",
              sf, tile_rows);
  std::printf("%5s | %6s | %13s | %12s | %10s\n", "query", "tiles",
              "allocs before", "allocs after", "reduction");
  std::printf("------+--------+---------------+--------------+-----------\n");
  for (const AllocPoint& p : allocs) {
    std::printf("%5s | %6llu | %13llu | %12llu | %9.1fx\n", p.name.c_str(),
                static_cast<unsigned long long>(p.tiles),
                static_cast<unsigned long long>(p.heap_allocs_before),
                static_cast<unsigned long long>(p.heap_allocs_after),
                p.reduction);
    // Acceptance floor: the pool must at least halve per-tile heap
    // allocations on these paths (steady state is usually alloc-free).
    RAPID_CHECK(p.reduction >= 2.0);
  }

  // ---- JSON ----------------------------------------------------------------
  FILE* json = std::fopen("BENCH_memory.json", "w");
  RAPID_CHECK(json != nullptr);
  std::fprintf(json, "{\n  \"scatter_rows\": %zu,\n  \"scatter\": [\n", kRows);
  for (size_t i = 0; i < scatter.size(); ++i) {
    const ScatterPoint& p = scatter[i];
    std::fprintf(json,
                 "    {\"fanout\": %zu, \"scalar_gbs\": %.3f,"
                 " \"vector_gbs\": %.3f,\n     \"speedup\": %.3f,"
                 " \"identical_results\": %s}%s\n",
                 p.fanout, p.scalar_gbs, p.vector_gbs,
                 p.vector_gbs / p.scalar_gbs, p.identical ? "true" : "false",
                 i + 1 < scatter.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"tile_rows\": %zu,\n  \"allocations\": [\n",
               tile_rows);
  for (size_t i = 0; i < allocs.size(); ++i) {
    const AllocPoint& p = allocs[i];
    std::fprintf(
        json,
        "    {\"query\": \"%s\", \"tiles\": %llu,"
        " \"heap_allocs_before\": %llu,\n     \"heap_allocs_after\": %llu,"
        " \"allocs_per_tile_before\": %.3f,\n"
        "     \"allocs_per_tile_after\": %.3f, \"reduction\": %.1f}%s\n",
        p.name.c_str(), static_cast<unsigned long long>(p.tiles),
        static_cast<unsigned long long>(p.heap_allocs_before),
        static_cast<unsigned long long>(p.heap_allocs_after),
        static_cast<double>(p.heap_allocs_before) /
            static_cast<double>(p.tiles),
        static_cast<double>(p.heap_allocs_after) /
            static_cast<double>(p.tiles),
        p.reduction, i + 1 < allocs.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_memory.json\n");
  return 0;
}
