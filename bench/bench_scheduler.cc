// Morsel-driven scheduler ablation: static round-robin striding vs the
// dynamic LPT + work-stealing WorkQueue (RAPID_SCHED), on workloads
// with deliberately skewed morsel weights:
//
//   * Zipf scan    — chunk row counts follow a capped Zipf(1.1) decay
//                    (hot head of near-full chunks, long tail of small
//                    ones), so static round-robin lands the heavy
//                    chunks of every stride group on the same core.
//   * skewed join  — partition pair sizes follow a capped Zipf(1.2),
//                    the shape a heavy-hitter key distribution leaves
//                    behind after hash partitioning.
//
// Reports the modeled phase makespan (slowest core's compute cycles,
// summed over morsel phases), the imbalance ratio (max/mean) and steal
// counts for both modes, asserts the results are bit-identical, and
// emits BENCH_scheduler.json for the CI trend line.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/ops/join_exec.h"
#include "dpu/dpu.h"
#include "dpu/work_queue.h"
#include "storage/table.h"

namespace {

using namespace rapid;
using namespace rapid::core;

// Capped Zipf morsel weights: rank r carries (r+1)^-theta of the mass,
// clipped at `cap_rows` (the chunk/partition capacity bound) and
// floored at a 64-row minimum tile.
std::vector<size_t> CappedZipfRows(size_t n, double theta, size_t total_rows,
                                   size_t cap_rows) {
  std::vector<double> w(n);
  double tot = 0;
  for (size_t r = 0; r < n; ++r) {
    w[r] = std::pow(static_cast<double>(r + 1), -theta);
    tot += w[r];
  }
  std::vector<size_t> rows(n);
  for (size_t r = 0; r < n; ++r) {
    const auto scaled =
        static_cast<size_t>(std::llround(total_rows * w[r] / tot));
    rows[r] = std::max<size_t>(64, std::min(cap_rows, scaled));
  }
  return rows;
}

storage::Table ZipfChunkTable(const std::vector<size_t>& chunk_rows) {
  storage::Schema schema({{"k", storage::DataType::kInt64},
                          {"v", storage::DataType::kInt64}});
  storage::Table table("z", schema);
  storage::Partition part;
  Rng rng(1234);
  int64_t key = 0;
  for (const size_t rows : chunk_rows) {
    storage::Chunk chunk(schema, rows);
    for (size_t r = 0; r < rows; ++r) {
      chunk.column(0).Append(key++);
      chunk.column(1).Append(rng.NextInRange(0, 99));
    }
    part.AddChunk(std::move(chunk));
  }
  table.AddPartition(std::move(part));
  table.set_rows_per_chunk(4096);
  table.RecomputeStats();
  return table;
}

// One partition pair per Zipf rank: partition p holds keys congruent
// to p so the pair sizes are exactly the capped-Zipf weights (build
// rows_p distinct keys, each matched by two probe rows).
PartitionedData ZipfPartitions(const std::vector<size_t>& part_rows,
                               size_t probe_factor) {
  std::vector<ColumnMeta> metas(2);
  metas[0].name = "k";
  metas[1].name = "v";
  PartitionedData data;
  data.bits_used = 8;
  const auto num_parts = static_cast<int64_t>(part_rows.size());
  for (size_t p = 0; p < part_rows.size(); ++p) {
    ColumnSet set(metas);
    const size_t rows = part_rows[p] * probe_factor;
    for (size_t j = 0; j < rows; ++j) {
      const int64_t key =
          static_cast<int64_t>(p) +
          static_cast<int64_t>(j % part_rows[p]) * num_parts;
      set.column(0).push_back(key);
      set.column(1).push_back(static_cast<int64_t>(j));
    }
    data.partitions.push_back(std::move(set));
  }
  return data;
}

struct ModeResult {
  double makespan_cycles = 0;  // summed per-phase slowest-core cycles
  double imbalance = 1.0;      // max/mean over the morsel phases
  uint64_t steals = 0;
  ColumnSet rows;
};

bool SameRows(const ColumnSet& a, const ColumnSet& b) {
  if (a.num_columns() != b.num_columns()) return false;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (a.column(c) != b.column(c)) return false;
  }
  return true;
}

ModeResult RunScan(dpu::SchedMode mode, const std::vector<size_t>& chunks) {
  const dpu::SchedMode prev = dpu::ForceSchedMode(mode);
  RapidEngine engine{dpu::DpuConfig{}};
  RAPID_CHECK(engine.Load(ZipfChunkTable(chunks)).ok());
  auto plan = LogicalNode::Scan(
      "z", {"k", "v"},
      {Predicate::CmpConst("v", primitives::CmpOp::kLt, 50)});
  auto result = engine.Execute(plan);
  RAPID_CHECK(result.ok());
  dpu::ForceSchedMode(prev);
  const dpu::ImbalanceStats& imb = result.value().stats.imbalance;
  return ModeResult{imb.max_core_cycles, imb.Ratio(), imb.steal_count,
                    std::move(result.value().rows)};
}

ModeResult RunJoin(dpu::SchedMode mode, const PartitionedData& build,
                   const PartitionedData& probe) {
  const dpu::SchedMode prev = dpu::ForceSchedMode(mode);
  dpu::Dpu dpu{dpu::DpuConfig{}};
  JoinSpec spec;
  spec.build_keys = {0};
  spec.probe_keys = {0};
  spec.outputs = {{true, 1}, {false, 1}};
  spec.large_skew_factor = 1e30;  // measure scheduling, not repartitioning
  auto result = JoinExec::Execute(dpu, build, probe, spec);
  RAPID_CHECK(result.ok());
  dpu::ForceSchedMode(prev);
  const dpu::ImbalanceStats& imb = dpu.imbalance();
  return ModeResult{imb.max_core_cycles, imb.Ratio(), imb.steal_count,
                    std::move(result.value())};
}

void PrintRow(const char* workload, const ModeResult& st,
              const ModeResult& mo) {
  std::printf("%-12s | %13.0f | %13.0f | %7.2fx | %6.2f | %6.2f | %6llu\n",
              workload, st.makespan_cycles, mo.makespan_cycles,
              st.makespan_cycles / mo.makespan_cycles, st.imbalance,
              mo.imbalance, static_cast<unsigned long long>(mo.steals));
}

}  // namespace

int main() {
  bench::Header("Scheduler ablation",
                "Static round-robin vs morsel-driven LPT + stealing");

  // 512 chunks, capped Zipf(1.1): the largest chunk is ~one mean core
  // load, so the win comes from balancing, not from splitting one
  // dominant morsel (which no scheduler could).
  const std::vector<size_t> chunk_rows =
      CappedZipfRows(512, 1.1, 48 * 4096, 4096);
  const ModeResult scan_static = RunScan(dpu::SchedMode::kStatic, chunk_rows);
  const ModeResult scan_morsel = RunScan(dpu::SchedMode::kMorsel, chunk_rows);
  RAPID_CHECK(SameRows(scan_static.rows, scan_morsel.rows));

  // 256 partition pairs, capped Zipf(1.2) pair sizes; each build key
  // matches exactly two probe rows so pair work stays linear in rows.
  const std::vector<size_t> pair_rows = CappedZipfRows(256, 1.2, 98304, 2048);
  const PartitionedData build = ZipfPartitions(pair_rows, 1);
  const PartitionedData probe = ZipfPartitions(pair_rows, 2);
  const ModeResult join_static = RunJoin(dpu::SchedMode::kStatic, build, probe);
  const ModeResult join_morsel = RunJoin(dpu::SchedMode::kMorsel, build, probe);
  RAPID_CHECK(SameRows(join_static.rows, join_morsel.rows));

  std::printf("32 cores; makespan = summed per-phase slowest-core compute"
              " cycles\n\n");
  std::printf("%-12s | %13s | %13s | %8s | %6s | %6s | %6s\n", "workload",
              "static cycles", "morsel cycles", "speedup", "imb(s)", "imb(m)",
              "steals");
  std::printf("-------------+---------------+---------------+----------+"
              "--------+--------+-------\n");
  PrintRow("zipf scan", scan_static, scan_morsel);
  PrintRow("skewed join", join_static, join_morsel);

  const double total_static =
      scan_static.makespan_cycles + join_static.makespan_cycles;
  const double total_morsel =
      scan_morsel.makespan_cycles + join_morsel.makespan_cycles;
  const double speedup = total_static / total_morsel;
  std::printf("\ncombined speedup: %.2fx (acceptance floor 1.3x)\n", speedup);
  RAPID_CHECK(speedup >= 1.3);

  FILE* json = std::fopen("BENCH_scheduler.json", "w");
  RAPID_CHECK(json != nullptr);
  std::fprintf(json, "{\n  \"cores\": 32,\n  \"workloads\": [\n");
  const struct {
    const char* name;
    const ModeResult* st;
    const ModeResult* mo;
  } rows[] = {{"zipf_scan", &scan_static, &scan_morsel},
              {"skewed_join", &join_static, &join_morsel}};
  for (size_t i = 0; i < 2; ++i) {
    std::fprintf(
        json,
        "    {\"name\": \"%s\", \"static_makespan_cycles\": %.0f,\n"
        "     \"morsel_makespan_cycles\": %.0f, \"speedup\": %.3f,\n"
        "     \"static_imbalance\": %.3f, \"morsel_imbalance\": %.3f,\n"
        "     \"morsel_steals\": %llu, \"identical_results\": true}%s\n",
        rows[i].name, rows[i].st->makespan_cycles, rows[i].mo->makespan_cycles,
        rows[i].st->makespan_cycles / rows[i].mo->makespan_cycles,
        rows[i].st->imbalance, rows[i].mo->imbalance,
        static_cast<unsigned long long>(rows[i].mo->steals),
        i + 1 < 2 ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"combined_speedup\": %.3f\n}\n", speedup);
  std::fclose(json);
  std::printf("wrote BENCH_scheduler.json\n");
  return 0;
}
