// Parameterized property sweeps: the same invariants checked across
// operator parameter spaces — comparison operators, selectivities,
// join fan-outs, tile sizes, group-by strategies and DSB scales.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "core/ops/partition_exec.h"
#include "hostdb/volcano.h"
#include "storage/dsb.h"
#include "storage/loader.h"
#include "tests/test_util.h"

namespace rapid {
namespace {

using core::AggFunc;
using core::Expr;
using core::LogicalNode;
using core::Predicate;
using primitives::CmpOp;
using rapid::testing::ExpectSameRows;
using rapid::testing::MakeColumnSet;
using rapid::testing::SortedRows;

// Shared two-engine fixture over one synthetic table.
class SweepFixture {
 public:
  SweepFixture() {
    Rng rng(777);
    std::vector<storage::ColumnSpec> specs = {
        {"k", storage::ColumnKind::kInt32},
        {"g", storage::ColumnKind::kInt32},
        {"v", storage::ColumnKind::kInt64}};
    std::vector<storage::ColumnData> data(3);
    for (int i = 0; i < 8000; ++i) {
      data[0].ints.push_back(rng.NextInRange(0, 999));
      data[1].ints.push_back(rng.NextInRange(0, 200));
      data[2].ints.push_back(rng.NextInRange(-1000, 1000));
    }
    storage::LoadOptions opts;
    opts.rows_per_chunk = 512;
    engine_.Load(storage::LoadTable("s", specs, data, opts).value());
    host_.emplace("s", storage::LoadTable("s", specs, data, opts).value());
  }

  void Check(const core::LogicalPtr& plan,
             const core::ExecOptions& options = {}) {
    auto rapid_result = engine_.Execute(plan, options);
    ASSERT_TRUE(rapid_result.ok()) << rapid_result.status().ToString();
    auto host_result = hostdb::VolcanoExecutor::Execute(plan, host_);
    ASSERT_TRUE(host_result.ok());
    ExpectSameRows(rapid_result.value().rows, host_result.value());
  }

  core::RapidEngine engine_;
  core::Catalog host_;
};

SweepFixture& Fixture() {
  static SweepFixture* fixture = new SweepFixture();
  return *fixture;
}

// ---- Comparison operator x constant sweep ----------------------------------

class CmpOpSweep
    : public ::testing::TestWithParam<std::tuple<CmpOp, int64_t>> {};

TEST_P(CmpOpSweep, FilterAgreesAcrossEngines) {
  const auto [op, constant] = GetParam();
  Fixture().Check(LogicalNode::Scan(
      "s", {"k", "v"}, {Predicate::CmpConst("k", op, constant)}));
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAndSelectivities, CmpOpSweep,
    ::testing::Combine(::testing::Values(CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                         CmpOp::kLe, CmpOp::kGt, CmpOp::kGe),
                       // Constants spanning ~0%, 1%, 50%, 99%, 100%
                       // selectivity for each operator.
                       ::testing::Values(-1, 10, 500, 990, 1000)));

// ---- Join fan-out sweep ------------------------------------------------

class JoinFanoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(JoinFanoutSweep, ForcedFanoutKeepsResults) {
  core::ExecOptions options;
  options.planner.force_join_fanout = GetParam();
  auto small = LogicalNode::Scan("s", {"g", "v"},
                                 {Predicate::CmpConst("g", CmpOp::kLt, 20)});
  auto big = LogicalNode::Scan("s", {"g", "k"});
  auto plan = LogicalNode::Join(small, big, {"g"}, {"g"}, {"v", "k"});
  Fixture().Check(plan, options);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, JoinFanoutSweep,
                         ::testing::Values(2, 4, 8, 16, 32));

// ---- Partition tile-size sweep -------------------------------------------

class PartitionTileSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PartitionTileSweep, AllTileSizesRouteIdentically) {
  dpu::Dpu dpu;
  Rng rng(5);
  std::vector<int64_t> keys(3000);
  std::vector<int64_t> vals(3000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng.NextInRange(0, 500);
    vals[i] = static_cast<int64_t>(i);
  }
  core::ColumnSet input = MakeColumnSet({"k", "v"}, {keys, vals});
  core::PartitionScheme scheme;
  scheme.rounds.push_back(core::PartitionRound{16, 16});
  auto parts =
      core::PartitionExec::Execute(dpu, input, {0}, scheme, GetParam());
  ASSERT_TRUE(parts.ok());
  // Tile size must never change the routing, only the modeled cost.
  std::vector<std::vector<int64_t>> all;
  for (const auto& p : parts.value().partitions) {
    for (auto& row : rapid::testing::Rows(p)) all.push_back(row);
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, SortedRows(input));
}

INSTANTIATE_TEST_SUITE_P(TileSizes, PartitionTileSweep,
                         ::testing::Values(64, 128, 256, 512, 1024));

// ---- Group-by strategy sweep -----------------------------------------------

class GroupByStrategySweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(GroupByStrategySweep, StrategyNeverChangesResults) {
  const auto [low_ndv_threshold, max_partition_rows] = GetParam();
  core::ExecOptions options;
  options.planner.low_ndv_threshold = low_ndv_threshold;
  options.planner.groupby_max_partition_rows = max_partition_rows;
  auto plan = LogicalNode::GroupBy(
      LogicalNode::Scan("s", {"g", "v"}),
      {{"g", Expr::Col("g")}},
      {{"sum_v", AggFunc::kSum, Expr::Col("v"), {}},
       {"n", AggFunc::kCount, nullptr, {}},
       {"min_v", AggFunc::kMin, Expr::Col("v"), {}}});
  Fixture().Check(plan, options);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, GroupByStrategySweep,
    ::testing::Values(std::make_tuple(100000, 0),  // low-NDV on-the-fly
                      std::make_tuple(10, 0),      // high-NDV partitioned
                      std::make_tuple(10, 32),     // + runtime re-partition
                      std::make_tuple(10, 8)));    // aggressive re-partition

// ---- DSB scale sweep ---------------------------------------------------

class DsbScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(DsbScaleSweep, ExactRoundTripAtEveryScale) {
  const int scale = GetParam();
  Rng rng(static_cast<uint64_t>(scale) + 1);
  std::vector<double> values;
  const double p = static_cast<double>(storage::Pow10(scale));
  for (int i = 0; i < 500; ++i) {
    values.push_back(static_cast<double>(rng.NextInRange(-1000000, 1000000)) /
                     p);
  }
  const storage::DsbColumn col = storage::DsbEncode(values);
  EXPECT_TRUE(col.exceptions.empty());
  EXPECT_LE(col.scale, scale);
  EXPECT_EQ(storage::DsbDecode(col), values);
}

INSTANTIATE_TEST_SUITE_P(Scales, DsbScaleSweep,
                         ::testing::Range(0, 10));

// ---- Join DMEM capacity sweep ----------------------------------------------

class JoinCapacitySweep : public ::testing::TestWithParam<size_t> {};

TEST_P(JoinCapacitySweep, OverflowNeverChangesResults) {
  core::ExecOptions options;
  options.planner.join_dmem_capacity_rows = GetParam();
  auto small = LogicalNode::Scan("s", {"g", "v"},
                                 {Predicate::CmpConst("v", CmpOp::kGt, 0)});
  auto big = LogicalNode::Scan("s", {"g", "k"});
  auto plan = LogicalNode::Join(small, big, {"g"}, {"g"}, {"v", "k"});
  Fixture().Check(plan, options);
}

INSTANTIATE_TEST_SUITE_P(Capacities, JoinCapacitySweep,
                         ::testing::Values(1, 8, 64, 1024, 1u << 20));

}  // namespace
}  // namespace rapid
