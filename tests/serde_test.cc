// Tests for the QEP wire format (Section 3.1): expression, predicate
// and full-plan round trips, error handling, and — the strongest
// check — every TPC-H query executed from its parsed wire form
// producing exactly the rows of the original plan.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/qcomp/plan_serde.h"
#include "tests/test_util.h"
#include "tpch/queries.h"

namespace rapid::core {
namespace {

using primitives::CmpOp;
using rapid::testing::ExpectSameRows;

TEST(SerdeTest, ExprRoundTrip) {
  auto expr = Expr::Mul(Expr::Col("price"),
                        Expr::Sub(Expr::Dec(1.0, 2), Expr::Col("disc")));
  const std::string wire = SerializeExpr(*expr);
  ASSERT_OK_AND_ASSIGN(ExprPtr parsed, ParseExpr(wire));
  EXPECT_EQ(SerializeExpr(*parsed), wire);
  EXPECT_EQ(parsed->kind, Expr::Kind::kBinary);
  EXPECT_EQ(parsed->left->column, "price");
  EXPECT_EQ(parsed->right->left->value, 100);  // 1.00 at scale 2
  EXPECT_EQ(parsed->right->left->scale, 2);
}

TEST(SerdeTest, EscapedNames) {
  auto expr = Expr::Col("weird \"name\" with\\slash");
  ASSERT_OK_AND_ASSIGN(ExprPtr parsed, ParseExpr(SerializeExpr(*expr)));
  EXPECT_EQ(parsed->column, "weird \"name\" with\\slash");
}

TEST(SerdeTest, ScanPlanRoundTrip) {
  BitVector set(8);
  set.Set(2);
  set.Set(5);
  auto plan = LogicalNode::Scan(
      "lineitem", {"a", "b"},
      {Predicate::CmpConst("a", CmpOp::kLt, -17, 0.25),
       Predicate::Between("b", 5, 9, 0.1),
       Predicate::InSet("c", set, 0.3),
       Predicate::CmpCol("a", CmpOp::kGe, "b", 0.4)});
  const std::string wire = SerializePlan(plan);
  ASSERT_OK_AND_ASSIGN(LogicalPtr parsed, ParsePlan(wire));
  // Stable fixed point: serializing the parse reproduces the wire.
  EXPECT_EQ(SerializePlan(parsed), wire);
  EXPECT_EQ(parsed->table, "lineitem");
  ASSERT_EQ(parsed->predicates.size(), 4u);
  EXPECT_EQ(parsed->predicates[0].value, -17);
  EXPECT_DOUBLE_EQ(parsed->predicates[0].selectivity, 0.25);
  EXPECT_EQ(parsed->predicates[2].in_set.size(), 8u);
  EXPECT_TRUE(parsed->predicates[2].in_set.Test(5));
  EXPECT_FALSE(parsed->predicates[2].in_set.Test(3));
}

TEST(SerdeTest, ComplexPlanRoundTrip) {
  auto scan1 = LogicalNode::Scan("t1", {"k", "v"});
  auto scan2 = LogicalNode::Scan("t2", {"k2", "w"},
                                 {Predicate::CmpConst("w", CmpOp::kGt, 3)});
  auto join = LogicalNode::Join(scan1, scan2, {"k"}, {"k2"}, {"v", "w"},
                                JoinType::kLeftOuter);
  std::vector<AggSpec> aggs;
  aggs.push_back({"s", AggFunc::kSum, Expr::Col("v"),
                  std::make_shared<Predicate>(
                      Predicate::CmpConst("w", CmpOp::kGe, 10))});
  aggs.push_back({"n", AggFunc::kCount, nullptr, {}});
  auto grouped =
      LogicalNode::GroupBy(join, {{"w", Expr::Col("w")}}, std::move(aggs));
  auto plan = LogicalNode::TopK(grouped, {{"s", false}, {"w", true}}, 7);

  const std::string wire = SerializePlan(plan);
  ASSERT_OK_AND_ASSIGN(LogicalPtr parsed, ParsePlan(wire));
  EXPECT_EQ(SerializePlan(parsed), wire);
  EXPECT_EQ(parsed->kind, LogicalNode::Kind::kTopK);
  EXPECT_EQ(parsed->limit, 7u);
  const LogicalNode& g = *parsed->input;
  ASSERT_EQ(g.aggregates.size(), 2u);
  EXPECT_NE(g.aggregates[0].filter, nullptr);
  EXPECT_EQ(g.aggregates[1].expr, nullptr);
  EXPECT_EQ(g.input->join_type, JoinType::kLeftOuter);
}

TEST(SerdeTest, SetOpWindowFilterProjectRoundTrip) {
  auto base = LogicalNode::Scan("t", {"a", "b"});
  auto filtered = LogicalNode::Filter(
      base, {Predicate::CmpConst("a", CmpOp::kNe, 0)}, {"a"});
  auto projected = LogicalNode::Project(
      base, {{"twice", Expr::Mul(Expr::Col("a"), Expr::Int(2))}});
  auto united = LogicalNode::SetOp(SetOpKind::kMinus, filtered, projected);
  LogicalWindow w;
  w.func = WindowFunc::kRunningSum;
  w.partition_by = {"a"};
  w.order_by = {{"a", false}};
  w.value_column = "a";
  w.output_name = "rs";
  auto plan = LogicalNode::Window(united, {w});

  const std::string wire = SerializePlan(plan);
  ASSERT_OK_AND_ASSIGN(LogicalPtr parsed, ParsePlan(wire));
  EXPECT_EQ(SerializePlan(parsed), wire);
  EXPECT_EQ(parsed->windows[0].func, WindowFunc::kRunningSum);
  EXPECT_EQ(parsed->windows[0].value_column, "a");
  EXPECT_EQ(parsed->input->setop, SetOpKind::kMinus);
}

TEST(SerdeTest, MalformedInputsRejected) {
  EXPECT_FALSE(ParsePlan("").ok());
  EXPECT_FALSE(ParsePlan("(scan)").ok());
  EXPECT_FALSE(ParsePlan("(scan \"t\" (cols) (preds)").ok());  // unbalanced
  EXPECT_FALSE(ParsePlan("(frobnicate \"t\")").ok());
  EXPECT_FALSE(
      ParsePlan("(scan \"t\" (cols) (preds)) trailing").ok());
  EXPECT_FALSE(ParseExpr("(col )").ok());
  EXPECT_FALSE(ParseExpr("(add (int 1))").ok());
}

TEST(SerdeTest, TpchQueriesExecuteIdenticallyFromWire) {
  hostdb::HostDatabase host;
  RapidEngine engine;
  ASSERT_OK(tpch::LoadTpch(0.005, &host, &engine, /*seed=*/9,
                           /*rows_per_chunk=*/1024));
  for (const tpch::TpchQuery& query : tpch::BuildQuerySet()) {
    std::vector<ColumnSet> prev;
    for (const auto& fragment : query.fragments) {
      ASSERT_OK_AND_ASSIGN(LogicalPtr plan,
                           fragment(engine.catalog(), prev));
      ASSERT_OK_AND_ASSIGN(LogicalPtr parsed,
                           ParsePlan(SerializePlan(plan)));
      ASSERT_OK_AND_ASSIGN(QueryResult original, engine.Execute(plan));
      ASSERT_OK_AND_ASSIGN(QueryResult roundtrip, engine.Execute(parsed));
      ExpectSameRows(original.rows, roundtrip.rows);
      prev.push_back(std::move(original.rows));
    }
  }
}

}  // namespace
}  // namespace rapid::core
