// Fault-injected execution tests: deterministic fault injector
// behavior, DPU-layer recovery (DMS retry, ATE redelivery, join
// build-overflow repartitioning, DMEM-OOM pipeline demotion), query
// cancellation/deadlines, and the host-fallback contract — every
// injected fault must end in recovery or a clean host fallback whose
// rows are bit-identical to a fault-free run. Never a crash, hang, or
// wrong answer.

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/cancel.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/engine.h"
#include "core/ops/join_exec.h"
#include "core/ops/partition_exec.h"
#include "dpu/ate.h"
#include "dpu/dpu.h"
#include "dpu/work_queue.h"
#include "hostdb/database.h"
#include "storage/loader.h"
#include "hostdb/offload.h"
#include "tests/test_util.h"

namespace rapid {
namespace {

using core::ColumnSet;
using core::ExecOptions;
using core::JoinExec;
using core::JoinSpec;
using core::JoinStats;
using core::LogicalNode;
using core::LogicalPtr;
using core::PartitionedData;
using core::PartitionExec;
using core::PartitionRound;
using core::PartitionScheme;
using core::Predicate;
using core::QueryResult;
using hostdb::HostDatabase;
using hostdb::QueryReport;
using primitives::CmpOp;
using rapid::testing::ExpectSameRows;
using rapid::testing::MakeColumnSet;
using rapid::testing::SortedRows;

// ---- FaultInjector unit behavior -------------------------------------------

TEST(FaultInjectorTest, DisabledByDefaultAndZeroStateAfterReset) {
  FaultInjector::Instance().Reset();
  EXPECT_FALSE(FaultInjector::enabled());
  EXPECT_TRUE(FaultInjector::Instance().Poll("nobody.armed").ok());
  EXPECT_TRUE(FaultInjector::Instance().PollIfEnabled("nobody.armed").ok());
}

TEST(FaultInjectorTest, DeterministicUnderSeed) {
  auto run_pattern = [](uint64_t seed) {
    ScopedFaultInjection fi(seed);
    FaultInjector::SiteSpec spec;
    spec.probability = 0.5;
    fi.Arm("test.site", spec);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(!FaultInjector::Instance().Poll("test.site").ok());
    }
    return pattern;
  };
  const std::vector<bool> a = run_pattern(42);
  const std::vector<bool> b = run_pattern(42);
  EXPECT_EQ(a, b);
  // A 0.5-probability site must neither always fire nor never fire.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST(FaultInjectorTest, SkipFirstAndMaxFailuresTriggers) {
  ScopedFaultInjection fi(7);
  FaultInjector::SiteSpec spec;
  spec.code = StatusCode::kInternal;
  spec.skip_first = 2;   // hits 1-2 pass
  spec.max_failures = 3; // hits 3-5 fail, 6+ pass again
  fi.Arm("test.ordinal", spec);
  std::vector<bool> failed;
  for (int i = 0; i < 8; ++i) {
    failed.push_back(!FaultInjector::Instance().Poll("test.ordinal").ok());
  }
  EXPECT_EQ(failed, (std::vector<bool>{false, false, true, true, true, false,
                                       false, false}));
  EXPECT_EQ(FaultInjector::Instance().hits("test.ordinal"), 8u);
  EXPECT_EQ(FaultInjector::Instance().failures("test.ordinal"), 3u);
}

TEST(FaultInjectorTest, InjectedStatusCarriesConfiguredCode) {
  ScopedFaultInjection fi(1);
  FaultInjector::SiteSpec spec;
  spec.code = StatusCode::kOutOfMemory;
  fi.Arm("test.code", spec);
  const Status st = FaultInjector::Instance().Poll("test.code");
  EXPECT_TRUE(st.IsOutOfMemory());
}

// ---- ATE delivery faults ---------------------------------------------------

TEST(AteFaultTest, TransientLossIsRedelivered) {
  ScopedFaultInjection fi(11);
  FaultInjector::SiteSpec spec;
  spec.max_failures = 2;  // two dropped hops, budget is 4 attempts
  fi.Arm(faults::kAteSend, spec);

  dpu::Ate ate(2);
  ASSERT_OK(ate.Send(0, 1, /*tag=*/7, {1, 2, 3}));
  auto msg = ate.TryReceive(1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->tag, 7u);
  EXPECT_EQ(FaultInjector::Instance().failures(faults::kAteSend), 2u);
}

TEST(AteFaultTest, PersistentLossExhaustsAttemptsWithoutEnqueue) {
  ScopedFaultInjection fi(12);
  FaultInjector::SiteSpec spec;  // probability 1, unlimited
  fi.Arm(faults::kAteSend, spec);

  dpu::Ate ate(2);
  const Status st = ate.Send(0, 1, /*tag=*/9);
  EXPECT_TRUE(st.IsRetryExhausted()) << st.ToString();
  EXPECT_FALSE(ate.TryReceive(1).has_value());  // nothing half-delivered
}

TEST(AteFaultTest, BarrierWaitUnblocksOnCancellation) {
  dpu::AteBarrier barrier(2);
  CancelToken token;
  token.Cancel();
  // A cancelled participant must abandon the barrier promptly instead
  // of waiting forever for a peer that will never come.
  const Status st = barrier.Wait(&token);
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  // Its arrival still counted: the surviving participant completes the
  // barrier instead of being stranded behind the dead query.
  EXPECT_TRUE(barrier.Wait().ok());
}

// ---- DMS retry policy ------------------------------------------------------

class FaultEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto [specs, data] = TableData(4000);
    ASSERT_OK(host_.CreateTable("t", specs, data));
    ASSERT_OK(host_.LoadToRapid("t", &engine_));
    auto [dspecs, ddata] = DimData(64);
    ASSERT_OK(host_.CreateTable("d", dspecs, ddata));
    ASSERT_OK(host_.LoadToRapid("d", &engine_));
  }

  static std::pair<std::vector<storage::ColumnSpec>,
                   std::vector<storage::ColumnData>>
  TableData(int rows) {
    std::vector<storage::ColumnSpec> specs = {
        {"id", storage::ColumnKind::kInt64},
        {"v", storage::ColumnKind::kInt32}};
    std::vector<storage::ColumnData> data(2);
    Rng rng(77);
    for (int i = 0; i < rows; ++i) {
      data[0].ints.push_back(i);
      data[1].ints.push_back(rng.NextInRange(0, 63));
    }
    return {specs, data};
  }

  static std::pair<std::vector<storage::ColumnSpec>,
                   std::vector<storage::ColumnData>>
  DimData(int rows) {
    std::vector<storage::ColumnSpec> specs = {
        {"k", storage::ColumnKind::kInt64},
        {"w", storage::ColumnKind::kInt32}};
    std::vector<storage::ColumnData> data(2);
    for (int i = 0; i < rows; ++i) {
      data[0].ints.push_back(i);
      data[1].ints.push_back(i * 3);
    }
    return {specs, data};
  }

  // Scan + filter + group-by: exercises accessor tile loops, DMEM
  // allocation and (fused) pipelines.
  LogicalPtr AggPlan() {
    return LogicalNode::GroupBy(
        LogicalNode::Scan("t", {"v"},
                          {Predicate::CmpConst("v", CmpOp::kLt, 48)}),
        {}, {{"s", core::AggFunc::kSum, core::Expr::Col("v"), {}}});
  }

  // Partitioned hash join: exercises partition descriptors and the
  // join build/probe kernels.
  LogicalPtr JoinPlan() {
    return LogicalNode::Join(LogicalNode::Scan("t", {"id", "v"}),
                             LogicalNode::Scan("d", {"k", "w"}), {"v"}, {"k"},
                             {"id", "w"});
  }

  HostDatabase host_;
  // Pinned to the paper's 32-core DPU: offload decisions are
  // cost-based and must not flip under a RAPID_CORES override.
  core::RapidEngine engine_{dpu::DpuConfig{}};
};

TEST_F(FaultEngineTest, TransientDmsFaultIsRetriedAndQuerySucceeds) {
  // Clean reference run first.
  ASSERT_OK_AND_ASSIGN(QueryResult clean, engine_.Execute(AggPlan()));

  ScopedFaultInjection fi(21);
  FaultInjector::SiteSpec spec;
  spec.max_failures = 2;  // heals within the 4-attempt descriptor budget
  fi.Arm(faults::kDmsTransfer, spec);

  ASSERT_OK_AND_ASSIGN(QueryResult faulted, engine_.Execute(AggPlan()));
  EXPECT_EQ(FaultInjector::Instance().failures(faults::kDmsTransfer), 2u);
  EXPECT_GT(FaultInjector::Instance().hits(faults::kDmsTransfer), 2u);
  ExpectSameRows(faulted.rows, clean.rows);
}

TEST_F(FaultEngineTest, PersistentDmsFaultSurfacesAsRetryExhausted) {
  ScopedFaultInjection fi(22);
  fi.Arm(faults::kDmsTransfer, FaultInjector::SiteSpec{});  // always fails
  auto result = engine_.Execute(AggPlan());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsRetryExhausted())
      << result.status().ToString();
}

// ---- DMEM OOM -> pipeline demotion ----------------------------------------

TEST_F(FaultEngineTest, DmemOomDemotesFusedPipelineAndSucceeds) {
  ASSERT_OK_AND_ASSIGN(QueryResult clean, engine_.Execute(AggPlan()));

  ScopedFaultInjection fi(23);
  FaultInjector::SiteSpec spec;
  spec.code = StatusCode::kOutOfMemory;
  spec.max_failures = 1;  // fused attempt dies, unfused retry is clean
  fi.Arm(faults::kDmemAlloc, spec);

  ExecOptions options;
  ASSERT_TRUE(options.planner.enable_fusion);
  ASSERT_OK_AND_ASSIGN(QueryResult demoted, engine_.Execute(AggPlan(),
                                                            options));
  EXPECT_TRUE(demoted.stats.demoted_to_unfused);
  ExpectSameRows(demoted.rows, clean.rows);
}

// ---- Join build overflow recovery -----------------------------------------

ColumnSet RandomKv(size_t n, uint64_t seed, int64_t key_range) {
  Rng rng(seed);
  std::vector<int64_t> keys(n);
  std::vector<int64_t> vals(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = rng.NextInRange(0, key_range - 1);
    vals[i] = static_cast<int64_t>(i);
  }
  return MakeColumnSet({"k", "v"}, {keys, vals});
}

struct JoinInputs {
  PartitionedData build;
  PartitionedData probe;
};

JoinInputs MakeJoinInputs(dpu::Dpu& dpu) {
  JoinInputs in;
  ColumnSet build = RandomKv(600, 5, 90);
  ColumnSet probe = RandomKv(1500, 6, 90);
  PartitionScheme scheme;
  scheme.rounds.push_back(PartitionRound{4, 4});
  in.build = PartitionExec::Execute(dpu, build, {0}, scheme, 128).value();
  in.probe = PartitionExec::Execute(dpu, probe, {0}, scheme, 128).value();
  return in;
}

JoinSpec KvJoinSpec() {
  JoinSpec spec;
  spec.build_keys = {0};
  spec.probe_keys = {0};
  spec.outputs = {{true, 1}, {false, 0}, {false, 1}};
  return spec;
}

TEST(JoinFaultTest, InjectedBuildCapacityFaultRecoversByRepartition) {
  dpu::Dpu dpu;
  JoinInputs in = MakeJoinInputs(dpu);
  ASSERT_OK_AND_ASSIGN(ColumnSet clean,
                       JoinExec::Execute(dpu, in.build, in.probe,
                                         KvJoinSpec()));

  ScopedFaultInjection fi(31);
  FaultInjector::SiteSpec spec;
  spec.code = StatusCode::kCapacityExceeded;
  spec.max_failures = 1;  // one kernel overflows once, then recovers
  fi.Arm(faults::kJoinBuild, spec);

  JoinStats stats;
  ASSERT_OK_AND_ASSIGN(ColumnSet recovered,
                       JoinExec::Execute(dpu, in.build, in.probe, KvJoinSpec(),
                                         &stats));
  EXPECT_GE(stats.overflow_recoveries, 1u);
  EXPECT_EQ(SortedRows(recovered), SortedRows(clean));
}

TEST(JoinFaultTest, HardDmemCapacityRepartitionsWithoutInjection) {
  dpu::Dpu dpu;
  JoinInputs in = MakeJoinInputs(dpu);
  ASSERT_OK_AND_ASSIGN(ColumnSet clean,
                       JoinExec::Execute(dpu, in.build, in.probe,
                                         KvJoinSpec()));

  JoinSpec spec = KvJoinSpec();
  spec.hard_capacity = true;
  spec.dmem_capacity_rows = 32;  // every ~150-row build side must split
  JoinStats stats;
  ASSERT_OK_AND_ASSIGN(ColumnSet recovered,
                       JoinExec::Execute(dpu, in.build, in.probe, spec,
                                         &stats));
  EXPECT_GE(stats.overflow_recoveries, 1u);
  EXPECT_EQ(SortedRows(recovered), SortedRows(clean));
}

TEST(JoinFaultTest, UnrecoverableCapacityFaultSurfacesCleanly) {
  dpu::Dpu dpu;
  JoinInputs in = MakeJoinInputs(dpu);
  ScopedFaultInjection fi(32);
  FaultInjector::SiteSpec spec;
  spec.code = StatusCode::kCapacityExceeded;  // every attempt overflows
  fi.Arm(faults::kJoinBuild, spec);
  auto result = JoinExec::Execute(dpu, in.build, in.probe, KvJoinSpec());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCapacityExceeded())
      << result.status().ToString();
}

// ---- Cancellation and deadlines -------------------------------------------

TEST_F(FaultEngineTest, CancelledTokenStopsQueryBeforeWork) {
  CancelToken token;
  token.Cancel();
  ExecOptions options;
  options.cancel = &token;
  auto result = engine_.Execute(AggPlan(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
}

TEST_F(FaultEngineTest, ExpiredDeadlineSurfacesAsDeadlineExceeded) {
  ExecOptions options;
  options.timeout_seconds = 1e-9;  // expires before the first barrier
  auto result = engine_.Execute(AggPlan(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
}

TEST_F(FaultEngineTest, DeadlineComposesWithCallerToken) {
  CancelToken token;
  token.Cancel();
  ExecOptions options;
  options.cancel = &token;
  options.timeout_seconds = 3600;  // generous: the token trips first
  auto result = engine_.Execute(AggPlan(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
}

TEST(JoinFaultTest, CancelUnwindsJoinAtTileBoundary) {
  // Tile loops poll the token: a cancelled query exits the kernel
  // within one tile round instead of finishing build/probe.
  dpu::Dpu dpu;
  JoinInputs in = MakeJoinInputs(dpu);
  CancelToken token;
  token.Cancel();
  auto result = JoinExec::Execute(dpu, in.build, in.probe, KvJoinSpec(),
                                  nullptr, &token);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
}

TEST_F(FaultEngineTest, MidQueryCancelFromAnotherThreadNeverCrashes) {
  // Non-deterministic interleaving by design: the cancel lands at some
  // arbitrary point of the query. Whatever the timing, the engine must
  // either finish cleanly or return kCancelled — never crash or hang.
  for (int round = 0; round < 8; ++round) {
    CancelToken token;
    ExecOptions options;
    options.cancel = &token;
    std::thread killer([&token, round] {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
      token.Cancel();
    });
    auto result = engine_.Execute(JoinPlan(), options);
    killer.join();
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsCancelled())
          << result.status().ToString();
    }
  }
}

TEST_F(FaultEngineTest, CancellationPropagatesThroughHostWithoutFallback) {
  // A dead query must NOT be resurrected on the Volcano path: the host
  // propagates cancellation instead of falling back.
  CancelToken token;
  token.Cancel();
  ExecOptions options;
  options.cancel = &token;
  auto report = host_.ExecuteQuery(AggPlan(), &engine_, options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCancelled()) << report.status().ToString();
}

// ---- Host fallback hardening ----------------------------------------------

TEST_F(FaultEngineTest, AdmissionDeniedRecordsFallbackReason) {
  ASSERT_OK(host_.Update("t", {storage::RowChange{1, {1, 9}}}));
  ASSERT_OK_AND_ASSIGN(QueryReport report,
                       host_.ExecuteQuery(AggPlan(), &engine_));
  EXPECT_TRUE(report.fell_back);
  EXPECT_NE(report.fallback_reason.find("AdmissionDenied"), std::string::npos)
      << report.fallback_reason;
}

TEST_F(FaultEngineTest, CapacityExceededFallsBackWithReason) {
  ASSERT_OK_AND_ASSIGN(core::ColumnSet local, host_.ExecuteLocal(JoinPlan()));

  ScopedFaultInjection fi(41);
  FaultInjector::SiteSpec spec;
  spec.code = StatusCode::kCapacityExceeded;  // unrecoverable: every build
  fi.Arm(faults::kJoinBuild, spec);

  ExecOptions options;
  options.planner.enable_fusion = false;  // force the partitioned join
  ASSERT_OK_AND_ASSIGN(QueryReport report,
                       host_.ExecuteQuery(JoinPlan(), &engine_, options));
  EXPECT_TRUE(report.fell_back);
  EXPECT_NE(report.fallback_reason.find("CapacityExceeded"),
            std::string::npos)
      << report.fallback_reason;
  ExpectSameRows(report.rows, local);
}

// The acceptance matrix: >= 4 fault sites x deterministic seeds. Every
// injected fault must end in silent recovery or host fallback with
// rows bit-identical to the fault-free run.
TEST_F(FaultEngineTest, FaultMatrixRecoversOrFallsBackBitIdentical) {
  struct SiteCase {
    const char* site;
    StatusCode code;
  };
  const SiteCase cases[] = {
      {faults::kDmsTransfer, StatusCode::kInternal},
      {faults::kDmsPartition, StatusCode::kInternal},
      {faults::kDmemAlloc, StatusCode::kOutOfMemory},
      {faults::kJoinBuild, StatusCode::kCapacityExceeded},
  };
  const uint64_t seeds[] = {101, 202, 303};

  ExecOptions options;
  options.planner.enable_fusion = false;  // partitioned join: all sites hot
  ASSERT_OK_AND_ASSIGN(QueryReport clean,
                       host_.ExecuteQuery(JoinPlan(), &engine_, options));
  ASSERT_FALSE(clean.fell_back);
  const auto clean_rows = SortedRows(clean.rows);

  for (const SiteCase& c : cases) {
    for (uint64_t seed : seeds) {
      ScopedFaultInjection fi(seed);
      FaultInjector::SiteSpec spec;
      spec.code = c.code;
      spec.probability = 0.3;  // sometimes heals in-retry, sometimes not
      fi.Arm(c.site, spec);

      auto result = host_.ExecuteQuery(JoinPlan(), &engine_, options);
      ASSERT_TRUE(result.ok()) << c.site << " seed " << seed << ": "
                               << result.status().ToString();
      const QueryReport& report = result.value();
      EXPECT_GT(FaultInjector::Instance().hits(c.site), 0u)
          << c.site << " was never exercised";
      EXPECT_EQ(SortedRows(report.rows), clean_rows)
          << c.site << " seed " << seed << " (fell_back=" << report.fell_back
          << " reason=" << report.fallback_reason << ")";
    }
  }
}

// ---- Fragment checkpointing: round reuse, morsel resume, DPU retry --------

// Counts the injector polls of `site` over one clean run of `fn` by
// arming the site at probability zero: the slow path runs on every
// poll but never injects. Descriptor/allocation poll counts are a pure
// function of the data layout (not of thread timing), so the count
// pins a deterministic injection point via skip_first.
template <typename Fn>
uint64_t CleanPollCount(const char* site, Fn&& fn) {
  ScopedFaultInjection fi(1);
  FaultInjector::SiteSpec probe;
  probe.probability = 0.0;
  fi.Arm(site, probe);
  fn();
  return FaultInjector::Instance().hits(site);
}

TEST(PartitionFaultTest, RoundFailureResumesFromCompletedRounds) {
  dpu::Dpu dpu;
  ColumnSet input = RandomKv(20000, 9, 5000);
  PartitionScheme scheme;
  scheme.rounds.push_back(PartitionRound{4, 4});
  scheme.rounds.push_back(PartitionRound{4, 1});

  ASSERT_OK_AND_ASSIGN(
      PartitionedData clean,
      PartitionExec::Execute(dpu, input, {0}, scheme, 256));
  EXPECT_EQ(clean.rounds, 2);

  const uint64_t polls = CleanPollCount(faults::kDmsPartition, [&] {
    ASSERT_OK(
        PartitionExec::Execute(dpu, input, {0}, scheme, 256).status());
  });
  ASSERT_GT(polls, 1u);

  // Rounds are barriers, so poll `polls` (the last first-attempt
  // descriptor) always lands in round 2. Failing it and everything
  // after exhausts the DMS retry budget and kills the pass with round
  // 1 fully reassembled.
  ScopedFaultInjection fi(52);
  FaultInjector::SiteSpec spec;
  spec.skip_first = polls - 1;  // unlimited failures from there on
  fi.Arm(faults::kDmsPartition, spec);

  core::PartitionProgress progress;
  auto failed = PartitionExec::Execute(dpu, input, {0}, scheme, 256,
                                       nullptr, &progress);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsRetryExhausted())
      << failed.status().ToString();
  ASSERT_EQ(progress.rounds_done, 1);
  EXPECT_TRUE(progress.CompatibleWith(scheme));

  // Retry with the checkpoint: round 1 is skipped, round 2 re-runs,
  // and the output is bit-identical to the fault-free pass.
  FaultInjector::Instance().Disarm(faults::kDmsPartition);
  ASSERT_OK_AND_ASSIGN(
      PartitionedData resumed,
      PartitionExec::Execute(dpu, input, {0}, scheme, 256, nullptr,
                             &progress));
  EXPECT_TRUE(progress.empty());  // consumed by the resume
  EXPECT_EQ(resumed.rounds, 2);
  EXPECT_EQ(resumed.bits_used, clean.bits_used);
  ASSERT_EQ(resumed.partitions.size(), clean.partitions.size());
  for (size_t p = 0; p < clean.partitions.size(); ++p) {
    EXPECT_EQ(SortedRows(resumed.partitions[p]),
              SortedRows(clean.partitions[p]))
        << "partition " << p;
  }
}

TEST(PartitionFaultTest, PoolAcquireFaultSurfacesAndReleasesScratch) {
  // Fresh DPU: cold tile pools, so the first partition scratch acquire
  // takes the would-allocate path that polls the fault point.
  dpu::Dpu dpu;
  ColumnSet input = RandomKv(4000, 11, 500);
  PartitionScheme scheme;
  scheme.rounds.push_back(PartitionRound{8, 1});

  ScopedFaultInjection fi(72);
  FaultInjector::SiteSpec spec;
  spec.code = StatusCode::kOutOfMemory;
  spec.max_failures = 1;
  fi.Arm(faults::kPoolAcquire, spec);

  auto result = PartitionExec::Execute(dpu, input, {0}, scheme, 256);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfMemory()) << result.status().ToString();
  EXPECT_EQ(FaultInjector::Instance().failures(faults::kPoolAcquire), 1u);

  // Every scratch handle acquired before the failure was returned.
  TilePoolStats stats;
  for (int c = 0; c < dpu.num_cores(); ++c) {
    stats.Accumulate(dpu.core(c).pool().stats());
  }
  EXPECT_EQ(stats.outstanding(), 0u);

  // The fault is spent: the same pass now succeeds.
  FaultInjector::Instance().Disarm(faults::kPoolAcquire);
  ASSERT_OK(PartitionExec::Execute(dpu, input, {0}, scheme, 256).status());
}

TEST(PartitionFaultTest, MidSplitFailureReleasesEarlierScratchHandles) {
  // Fail the *third* scratch acquire of the pass: whichever unit draws
  // it is already holding two pooled buffers, so this exercises the
  // unwind with live handles mid-SplitRange.
  dpu::Dpu dpu;
  ColumnSet input = RandomKv(4000, 13, 500);
  PartitionScheme scheme;
  scheme.rounds.push_back(PartitionRound{8, 1});

  ScopedFaultInjection fi(73);
  FaultInjector::SiteSpec spec;
  spec.code = StatusCode::kOutOfMemory;
  spec.skip_first = 2;
  spec.max_failures = 1;
  fi.Arm(faults::kPoolAcquire, spec);

  auto result = PartitionExec::Execute(dpu, input, {0}, scheme, 256);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfMemory()) << result.status().ToString();

  TilePoolStats stats;
  for (int c = 0; c < dpu.num_cores(); ++c) {
    stats.Accumulate(dpu.core(c).pool().stats());
  }
  EXPECT_EQ(stats.outstanding(), 0u);
}

TEST(PartitionFaultTest, CancelDuringPartitionReleasesPoolAndSavesNothing) {
  dpu::Dpu dpu;
  ColumnSet input = RandomKv(4000, 12, 500);
  PartitionScheme scheme;
  scheme.rounds.push_back(PartitionRound{4, 1});
  scheme.rounds.push_back(PartitionRound{4, 1});

  CancelToken token;
  token.Cancel();
  core::PartitionProgress progress;
  auto result = PartitionExec::Execute(dpu, input, {0}, scheme, 256, &token,
                                       &progress);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  // A killed query is abandoned, not retried: no checkpoint, and all
  // pooled scratch back in the free lists (the ASan job leak-checks
  // this test on top of the gauge).
  EXPECT_TRUE(progress.empty());
  TilePoolStats stats;
  for (int c = 0; c < dpu.num_cores(); ++c) {
    stats.Accumulate(dpu.core(c).pool().stats());
  }
  EXPECT_EQ(stats.outstanding(), 0u);
}

// The reuse acceptance matrix: inject a failure after the partition
// rounds complete and require (a) an in-place DPU retry within budget,
// (b) completed rounds restored instead of re-executed, and (c) rows
// bit-identical to the fault-free run — across 3 injector seeds, both
// schedulers and every supported SIMD tier.
TEST_F(FaultEngineTest, ReuseMatrixRestoresRoundsBitIdenticalAcrossModes) {
  ExecOptions options;
  options.planner.enable_fusion = false;  // partitioned join plan
  options.retry_budget = 2;

  ASSERT_OK_AND_ASSIGN(QueryReport clean,
                       host_.ExecuteQuery(JoinPlan(), &engine_, options));
  ASSERT_FALSE(clean.fell_back);
  const auto clean_rows = SortedRows(clean.rows);

  const uint64_t seeds[] = {101, 202, 303};
  for (int lvl = 0; lvl <= static_cast<int>(SimdLevelSupported()); ++lvl) {
    for (dpu::SchedMode mode :
         {dpu::SchedMode::kStatic, dpu::SchedMode::kMorsel}) {
      const SimdLevel prev_lvl = ForceSimdLevel(static_cast<SimdLevel>(lvl));
      const dpu::SchedMode prev_mode = dpu::ForceSchedMode(mode);

      const uint64_t polls = CleanPollCount(faults::kDmsPartition, [&] {
        auto r = host_.ExecuteQuery(JoinPlan(), &engine_, options);
        ASSERT_OK(r.status());
      });
      ASSERT_GT(polls, 0u);

      for (uint64_t seed : seeds) {
        ScopedFaultInjection fi(seed);
        FaultInjector::SiteSpec spec;
        spec.skip_first = polls - 1;
        // Exactly the DMS descriptor budget: the last partition unit
        // exhausts its in-DMS retries (one engine-level transient
        // failure), then the fragment retry runs clean.
        spec.max_failures = 4;
        fi.Arm(faults::kDmsPartition, spec);

        auto result = host_.ExecuteQuery(JoinPlan(), &engine_, options);
        ASSERT_TRUE(result.ok())
            << result.status().ToString() << " simd=" << lvl
            << " sched=" << dpu::SchedModeName(mode) << " seed=" << seed;
        const QueryReport& report = result.value();
        EXPECT_FALSE(report.fell_back) << report.fallback_reason;
        EXPECT_EQ(report.dpu_retries, 1u)
            << "simd=" << lvl << " sched=" << dpu::SchedModeName(mode)
            << " seed=" << seed;
        // At minimum the other side's completed partition rounds were
        // restored from the checkpoint instead of re-partitioned.
        EXPECT_GE(report.reused_rounds, 1u);
        EXPECT_EQ(SortedRows(report.rows), clean_rows)
            << "simd=" << lvl << " sched=" << dpu::SchedModeName(mode)
            << " seed=" << seed;
      }
      dpu::ForceSchedMode(prev_mode);
      ForceSimdLevel(prev_lvl);
    }
  }
}

TEST_F(FaultEngineTest, PersistentPipelineFaultFallsBackWithMorselResume) {
  // Many-chunk fact table: the fused probe pipeline gets one morsel
  // per chunk, so a late fault leaves plenty of completed morsels.
  storage::LoadOptions geometry;
  geometry.rows_per_chunk = 64;
  auto [specs, data] = TableData(6400);
  ASSERT_OK(host_.CreateTable("bigt", specs, data, geometry));
  ASSERT_OK(host_.LoadToRapid("bigt", &engine_));
  LogicalPtr plan =
      LogicalNode::Join(LogicalNode::Scan("bigt", {"id", "v"}),
                        LogicalNode::Scan("d", {"k", "w"}), {"v"}, {"k"},
                        {"id", "w"});

  ExecOptions options;
  options.retry_budget = 2;
  ASSERT_TRUE(options.planner.enable_fusion);

  ASSERT_OK_AND_ASSIGN(QueryReport clean,
                       host_.ExecuteQuery(plan, &engine_, options));
  ASSERT_FALSE(clean.fell_back);
  const auto clean_rows = SortedRows(clean.rows);

  const uint64_t polls = CleanPollCount(faults::kDmsTransfer, [&] {
    auto r = host_.ExecuteQuery(plan, &engine_, options);
    ASSERT_OK(r.status());
  });
  ASSERT_GT(polls, 0u);

  // Unlimited failures from the last transfer onward: the first
  // attempt dies on the one morsel owning that transfer (every other
  // morsel already completed), both in-place retries restore the
  // completed morsels and die on the same one, and the query falls
  // back to the host with the resume accounting attached.
  ScopedFaultInjection fi(61);
  FaultInjector::SiteSpec spec;
  spec.skip_first = polls - 1;
  fi.Arm(faults::kDmsTransfer, spec);

  ASSERT_OK_AND_ASSIGN(QueryReport report,
                       host_.ExecuteQuery(plan, &engine_, options));
  EXPECT_TRUE(report.fell_back);
  EXPECT_EQ(report.dpu_retries, 2u);
  EXPECT_GE(report.resumed_morsels, 1u);
  EXPECT_EQ(SortedRows(report.rows), clean_rows);
}

TEST_F(FaultEngineTest, PoolAcquireFaultGetsInPlaceRetry) {
  ExecOptions options;
  options.planner.enable_fusion = false;
  options.retry_budget = 2;
  ASSERT_OK_AND_ASSIGN(QueryReport clean,
                       host_.ExecuteQuery(JoinPlan(), &engine_, options));
  const auto clean_rows = SortedRows(clean.rows);

  // Fresh engine: cold tile pools, so partition scratch acquires take
  // the would-allocate path that polls pool.acquire.
  core::RapidEngine cold{dpu::DpuConfig{}};
  ASSERT_OK(host_.LoadToRapid("t", &cold));
  ASSERT_OK(host_.LoadToRapid("d", &cold));

  ScopedFaultInjection fi(71);
  FaultInjector::SiteSpec spec;
  spec.code = StatusCode::kOutOfMemory;
  spec.max_failures = 1;
  fi.Arm(faults::kPoolAcquire, spec);

  ASSERT_OK_AND_ASSIGN(QueryReport report,
                       host_.ExecuteQuery(JoinPlan(), &cold, options));
  EXPECT_GT(FaultInjector::Instance().hits(faults::kPoolAcquire), 0u);
  EXPECT_EQ(FaultInjector::Instance().failures(faults::kPoolAcquire), 1u);
  // Allocator pressure on an unfused plan is transient: one in-place
  // retry, no host fallback, same rows.
  EXPECT_FALSE(report.fell_back) << report.fallback_reason;
  EXPECT_EQ(report.dpu_retries, 1u);
  EXPECT_EQ(SortedRows(report.rows), clean_rows);
}

}  // namespace
}  // namespace rapid
