// Unit and property tests for the primitive kernels: filters (both
// row representations), arithmetic, hashing, software-partitioning
// maps, aggregation, the primitive catalog, and the compact hash-join
// kernel with its DMEM-overflow behaviour.

#include <map>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "primitives/agg.h"
#include "primitives/arith.h"
#include "primitives/filter.h"
#include "primitives/hash.h"
#include "primitives/join_kernel.h"
#include "primitives/partition_map.h"
#include "primitives/registry.h"
#include "tests/test_util.h"

namespace rapid::primitives {
namespace {

// ---- Filter kernels --------------------------------------------------------

template <CmpOp op>
std::vector<uint32_t> ReferenceFilter(const std::vector<int32_t>& values,
                                      int32_t c) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (Compare<op, int32_t>(values[i], c)) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

template <CmpOp op>
void CheckFilterOp(const std::vector<int32_t>& values, int32_t c) {
  const std::vector<uint32_t> expected = ReferenceFilter<op>(values, c);
  // Bit-vector flavour.
  BitVector bv;
  FilterConstBv<op, int32_t>(values.data(), values.size(), c, &bv);
  std::vector<uint32_t> got;
  bv.ToRids(&got);
  EXPECT_EQ(got, expected);
  // RID flavour.
  std::vector<uint32_t> rids;
  FilterConstRid<op, int32_t>(values.data(), values.size(), c, &rids);
  EXPECT_EQ(rids, expected);
}

TEST(FilterTest, AllComparisonOpsMatchReference) {
  Rng rng(17);
  std::vector<int32_t> values(777);
  for (auto& v : values) v = static_cast<int32_t>(rng.NextInRange(-50, 50));
  for (int32_t c : {-50, -7, 0, 13, 50}) {
    CheckFilterOp<CmpOp::kEq>(values, c);
    CheckFilterOp<CmpOp::kNe>(values, c);
    CheckFilterOp<CmpOp::kLt>(values, c);
    CheckFilterOp<CmpOp::kLe>(values, c);
    CheckFilterOp<CmpOp::kGt>(values, c);
    CheckFilterOp<CmpOp::kGe>(values, c);
  }
}

TEST(FilterTest, RefineOnlyTouchesQualifyingRows) {
  // vals  : 0 1 2 3 4 5 6 7
  // first : even values        -> {0,2,4,6}
  // refine: value > 3          -> {4,6}
  std::vector<int32_t> values = {0, 1, 2, 3, 4, 5, 6, 7};
  BitVector even(8);
  for (size_t i = 0; i < 8; i += 2) even.Set(i);
  BitVector refined;
  FilterConstBvRefine<CmpOp::kGt, int32_t>(values.data(), 8, 3, even,
                                           &refined);
  std::vector<uint32_t> rids;
  refined.ToRids(&rids);
  EXPECT_EQ(rids, (std::vector<uint32_t>{4, 6}));
}

TEST(FilterTest, RefineEqualsEvalThenAndProperty) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 1 + rng.NextBounded(300);
    std::vector<int64_t> values(n);
    for (auto& v : values) v = rng.NextInRange(0, 20);
    BitVector first;
    FilterConstBv<CmpOp::kGt, int64_t>(values.data(), n, 5, &first);
    BitVector refined;
    FilterConstBvRefine<CmpOp::kLt, int64_t>(values.data(), n, 15, first,
                                             &refined);
    BitVector full;
    FilterConstBv<CmpOp::kLt, int64_t>(values.data(), n, 15, &full);
    full.And(first);
    EXPECT_EQ(refined, full);
  }
}

TEST(FilterTest, Between) {
  std::vector<int32_t> values = {1, 5, 10, 15, 20};
  BitVector bv;
  FilterBetweenBv<int32_t>(values.data(), 5, 5, 15, &bv);
  std::vector<uint32_t> rids;
  bv.ToRids(&rids);
  EXPECT_EQ(rids, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(FilterTest, ColumnVsColumn) {
  std::vector<int32_t> l = {1, 5, 3};
  std::vector<int32_t> r = {2, 4, 3};
  BitVector lt;
  FilterColColBv<CmpOp::kLt, int32_t>(l.data(), r.data(), 3, &lt);
  EXPECT_TRUE(lt.Test(0));
  EXPECT_FALSE(lt.Test(1));
  EXPECT_FALSE(lt.Test(2));
}

TEST(FilterTest, DictSetMembership) {
  std::vector<uint32_t> codes = {0, 1, 2, 3, 2, 9};
  BitVector qualifying(4);
  qualifying.Set(1);
  qualifying.Set(2);
  BitVector out;
  FilterDictSetBv(codes.data(), codes.size(), qualifying, &out);
  std::vector<uint32_t> rids;
  out.ToRids(&rids);
  // Code 9 is beyond the bitmap and must not qualify.
  EXPECT_EQ(rids, (std::vector<uint32_t>{1, 2, 4}));
}

TEST(FilterTest, GatheredRidRefinement) {
  std::vector<uint32_t> rids = {3, 8, 12, 20};
  std::vector<int64_t> gathered = {5, 50, 7, 80};  // values at those rids
  const size_t kept = FilterGatheredRid<CmpOp::kGt, int64_t>(gathered.data(),
                                                             10, &rids);
  EXPECT_EQ(kept, 2u);
  EXPECT_EQ(rids, (std::vector<uint32_t>{8, 20}));
}

TEST(FilterTest, NarrowTypesWork) {
  std::vector<int8_t> v8 = {-3, 0, 3};
  BitVector bv;
  FilterConstBv<CmpOp::kGe, int8_t>(v8.data(), 3, 0, &bv);
  EXPECT_EQ(bv.CountOnes(), 2u);
  std::vector<int16_t> v16 = {-300, 0, 300};
  FilterConstBv<CmpOp::kLt, int16_t>(v16.data(), 3, 0, &bv);
  EXPECT_EQ(bv.CountOnes(), 1u);
}

// ---- Arithmetic ------------------------------------------------------------

TEST(ArithTest, ColColAndColConst) {
  std::vector<int64_t> a = {1, 2, 3};
  std::vector<int64_t> b = {10, 20, 30};
  std::vector<int64_t> out(3);
  ArithColCol<ArithOp::kAdd, int64_t>(a.data(), b.data(), 3, out.data());
  EXPECT_EQ(out, (std::vector<int64_t>{11, 22, 33}));
  ArithColCol<ArithOp::kSub, int64_t>(b.data(), a.data(), 3, out.data());
  EXPECT_EQ(out, (std::vector<int64_t>{9, 18, 27}));
  ArithColConst<ArithOp::kMul, int64_t>(a.data(), 3, 5, out.data());
  EXPECT_EQ(out, (std::vector<int64_t>{5, 10, 15}));
}

TEST(ArithTest, DsbRescaleTile) {
  std::vector<int64_t> m = {125, -7};
  DsbRescaleTile(m.data(), 2, 2, 4);
  EXPECT_EQ(m, (std::vector<int64_t>{12500, -700}));
  DsbRescaleTile(m.data(), 2, 4, 4);  // no-op
  EXPECT_EQ(m[0], 12500);
}

TEST(ArithTest, DsbMulAddsScales) {
  // 1.25 * 0.3 = 0.375: mantissas 125(s2) * 3(s1) = 375(s3).
  std::vector<int64_t> l = {125};
  std::vector<int64_t> r = {3};
  std::vector<int64_t> out(1);
  const int scale = DsbMulTile(l.data(), 2, r.data(), 1, 1, out.data());
  EXPECT_EQ(scale, 3);
  EXPECT_EQ(out[0], 375);
}

TEST(ArithTest, DsbMulConst) {
  // 2.5 * 0.5 = 1.25: 25(s1) * 5(s1) = 125(s2).
  std::vector<int64_t> v = {25};
  std::vector<int64_t> out(1);
  const int scale = DsbMulConstTile(v.data(), 1, 5, 1, 1, out.data());
  EXPECT_EQ(scale, 2);
  EXPECT_EQ(out[0], 125);
}

// ---- Hash ------------------------------------------------------------------

TEST(HashTest, TileMatchesScalar) {
  std::vector<int64_t> keys = {1, 2, 3, 1};
  std::vector<uint32_t> hashes(4);
  HashTile(keys.data(), 4, hashes.data());
  EXPECT_EQ(hashes[0], hashes[3]);
  EXPECT_EQ(hashes[0], Crc32U64(1));
  EXPECT_NE(hashes[0], hashes[1]);
}

TEST(HashTest, CombineChainsColumns) {
  std::vector<int64_t> k1 = {1, 1};
  std::vector<int64_t> k2 = {5, 6};
  std::vector<uint32_t> hashes(2);
  HashTile(k1.data(), 2, hashes.data());
  HashCombineTile(k2.data(), 2, hashes.data());
  EXPECT_NE(hashes[0], hashes[1]);  // second key differentiates
}

// ---- Partition map (Listings 2 and 3) ----------------------------------

TEST(PartitionMapTest, MapMatchesHashBits) {
  std::vector<uint32_t> hashes = {0b0000, 0b0001, 0b0110, 0b1111};
  PartitionMap map;
  ComputePartitionMap(hashes.data(), hashes.size(), 4, /*shift=*/0, &map);
  EXPECT_EQ(map.partition_of,
            (std::vector<uint16_t>{0, 1, 2, 3}));
  ComputePartitionMap(hashes.data(), hashes.size(), 4, /*shift=*/2, &map);
  EXPECT_EQ(map.partition_of,
            (std::vector<uint16_t>{0, 0, 1, 3}));
}

TEST(PartitionMapTest, RidsGroupedInTileOrder) {
  std::vector<uint32_t> hashes = {1, 0, 1, 0, 1};
  PartitionMap map;
  ComputePartitionMap(hashes.data(), hashes.size(), 2, 0, &map);
  EXPECT_EQ(map.counts, (std::vector<uint32_t>{2, 3}));
  EXPECT_EQ(map.offsets, (std::vector<uint32_t>{0, 2, 5}));
  EXPECT_EQ(map.rids, (std::vector<uint32_t>{1, 3, 0, 2, 4}));
}

TEST(PartitionMapTest, SwPartitionColumnGathersSequentially) {
  std::vector<uint32_t> hashes = {1, 0, 1};
  PartitionMap map;
  ComputePartitionMap(hashes.data(), 3, 2, 0, &map);
  std::vector<int64_t> col = {100, 200, 300};
  std::vector<int64_t> out(3);
  SwPartitionColumn(col.data(), map, out.data());
  EXPECT_EQ(out, (std::vector<int64_t>{200, 100, 300}));
}

TEST(PartitionMapTest, PropertyEveryRowLandsInItsPartition) {
  Rng rng(31);
  for (int fanout : {2, 8, 64, 256}) {
    std::vector<uint32_t> hashes(1000);
    for (auto& h : hashes) h = static_cast<uint32_t>(rng.Next());
    PartitionMap map;
    ComputePartitionMap(hashes.data(), hashes.size(), fanout, 3, &map);
    uint32_t total = 0;
    for (int p = 0; p < fanout; ++p) {
      for (uint32_t i = map.offsets[p]; i < map.offsets[p + 1]; ++i) {
        EXPECT_EQ((hashes[map.rids[i]] >> 3) & (fanout - 1),
                  static_cast<uint32_t>(p));
      }
      total += map.counts[p];
    }
    EXPECT_EQ(total, 1000u);
  }
}

// ---- Aggregation -----------------------------------------------------------

TEST(AggTest, TileAggregatesAll) {
  std::vector<int64_t> values = {5, -2, 9, 0};
  AggState st;
  AggTile(values.data(), values.size(), &st);
  EXPECT_EQ(st.sum, 12);
  EXPECT_EQ(st.min, -2);
  EXPECT_EQ(st.max, 9);
  EXPECT_EQ(st.count, 4u);
}

TEST(AggTest, SelectedRowsOnly) {
  std::vector<int64_t> values = {5, -2, 9, 0};
  BitVector sel(4);
  sel.Set(0);
  sel.Set(2);
  AggState st;
  AggTileSelected(values.data(), sel, &st);
  EXPECT_EQ(st.sum, 14);
  EXPECT_EQ(st.min, 5);
  EXPECT_EQ(st.max, 9);
  EXPECT_EQ(st.count, 2u);
}

TEST(AggTest, GroupedUpdates) {
  std::vector<int64_t> values = {1, 2, 3, 4};
  std::vector<uint32_t> groups = {0, 1, 0, 1};
  std::vector<AggState> states(2);
  AggTileGrouped(values.data(), groups.data(), 4, states.data());
  EXPECT_EQ(states[0].sum, 4);
  EXPECT_EQ(states[1].sum, 6);
  EXPECT_EQ(states[0].count, 2u);
}

TEST(AggTest, MergeCombinesStates) {
  AggState a;
  a.sum = 10;
  a.min = -1;
  a.max = 5;
  a.count = 3;
  AggState b;
  b.sum = 7;
  b.min = 0;
  b.max = 9;
  b.count = 2;
  a.Merge(b);
  EXPECT_EQ(a.sum, 17);
  EXPECT_EQ(a.min, -1);
  EXPECT_EQ(a.max, 9);
  EXPECT_EQ(a.count, 5u);
}

// ---- Primitive catalog -------------------------------------------------

TEST(RegistryTest, PaperNamingConvention) {
  // Listing 1's primitive name is reproducible from the convention.
  EXPECT_EQ(PrimitiveCatalog::FilterName("eq", 4, false),
            "rpdmpr_bvflt_ub4_OPT_TYPE_EQ_cval");
  ASSERT_OK_AND_ASSIGN(
      PrimitiveInfo info,
      PrimitiveCatalog::Instance().Find("rpdmpr_bvflt_ub4_OPT_TYPE_EQ_cval"));
  EXPECT_EQ(info.family, "filter");
  EXPECT_EQ(info.operation, "eq");
  EXPECT_EQ(info.input_width, 4);
  EXPECT_FALSE(info.rid_variant);
}

TEST(RegistryTest, GeneratesAllTypeCombinations) {
  const auto& prims = PrimitiveCatalog::Instance().primitives();
  // 6 cmp ops x 4 widths x 2 flavours = 48 filter primitives.
  int filters = 0;
  for (const auto& p : prims) {
    if (p.family == "filter") ++filters;
  }
  EXPECT_EQ(filters, 48);
  EXPECT_FALSE(PrimitiveCatalog::Instance().Find("nonexistent").ok());
  // The software-partitioning primitives of Listings 2/3 exist.
  EXPECT_OK(
      PrimitiveCatalog::Instance().Find("rpdmpr_compute_partition_map")
          .status());
  EXPECT_OK(PrimitiveCatalog::Instance().Find("swpart_partcol_ub4").status());
}

// ---- Compact hash-join kernel (Section 6.3) ----------------------------

TEST(JoinKernelTest, PaperFigure6Example) {
  // 8 tuples, 4 buckets; colours in the figure = hash values 0..3.
  // Tuples at offsets {0,4,7} share hash 0 etc.; we reproduce the
  // backward chaining with a hash function we control.
  const std::vector<uint32_t> hashes = {0, 1, 2, 1, 0, 1, 3, 0};
  CompactJoinTable table(8, 4, 8);
  for (size_t i = 0; i < 8; ++i) table.Insert(hashes[i], i);
  // Entries are ceil(log2(8+1)) = 4 bits.
  EXPECT_EQ(table.entry_bits(), 4);
  EXPECT_FALSE(table.overflowed());

  // Probing hash 0 must visit offsets 7 -> 4 -> 0 (backwards chain).
  std::vector<size_t> visited;
  ProbeStats stats;
  table.Probe(
      0, [](size_t) { return true; },
      [&](size_t offset) { visited.push_back(offset); }, &stats);
  EXPECT_EQ(visited, (std::vector<size_t>{7, 4, 0}));
  EXPECT_EQ(stats.chain_steps, 3u);
  EXPECT_EQ(stats.matches, 3u);
}

TEST(JoinKernelTest, KeyComparisonFiltersHashCollisions) {
  // Two keys in the same bucket; only the equal key matches.
  std::vector<int64_t> build_keys = {100, 200};
  CompactJoinTable table(2, 1, 2);  // one bucket: everything collides
  table.Insert(0, 0);
  table.Insert(0, 1);
  ProbeStats stats;
  std::vector<size_t> matches;
  table.Probe(
      0, [&](size_t offset) { return build_keys[offset] == 200; },
      [&](size_t offset) { matches.push_back(offset); }, &stats);
  EXPECT_EQ(matches, (std::vector<size_t>{1}));
  EXPECT_EQ(stats.chain_steps, 2u);
  EXPECT_EQ(stats.matches, 1u);
}

TEST(JoinKernelTest, CompactSizing) {
  // 1000 rows, 256 buckets: entries are ceil(log2(1001)) = 10 bits;
  // bucket + link arrays stay under 1.6 KiB + overhead.
  CompactJoinTable table(1000, 256, 1000);
  EXPECT_EQ(table.entry_bits(), 10);
  EXPECT_LE(table.DmemBytes(), 1700u);
}

TEST(JoinKernelTest, DmemOverflowKeepsAllRowsProbeable) {
  // Capacity 100, 250 rows: 150 rows overflow to the DRAM region
  // (Figure 7); probes must still see every inserted row.
  constexpr size_t kRows = 250;
  constexpr size_t kCapacity = 100;
  std::vector<int64_t> keys(kRows);
  for (size_t i = 0; i < kRows; ++i) keys[i] = static_cast<int64_t>(i % 50);
  CompactJoinTable table(kRows, 64, kCapacity);
  for (size_t i = 0; i < kRows; ++i) {
    table.Insert(Crc32U64(static_cast<uint64_t>(keys[i])), i);
  }
  EXPECT_TRUE(table.overflowed());
  EXPECT_EQ(table.dmem_rows(), kCapacity);
  EXPECT_EQ(table.overflow_rows(), kRows - kCapacity);

  for (int64_t probe = 0; probe < 50; ++probe) {
    ProbeStats stats;
    size_t matches = 0;
    table.Probe(
        Crc32U64(static_cast<uint64_t>(probe)),
        [&](size_t offset) { return keys[offset] == probe; },
        [&](size_t) { ++matches; }, &stats);
    EXPECT_EQ(matches, kRows / 50) << probe;
    EXPECT_GT(stats.overflow_steps, 0u) << probe;
  }
}

TEST(JoinKernelTest, RandomEquijoinMatchesReferenceProperty) {
  Rng rng(41);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t n = 50 + rng.NextBounded(400);
    std::vector<int64_t> build(n);
    for (auto& k : build) k = rng.NextInRange(0, 40);
    // Reference: multimap semantics.
    std::unordered_map<int64_t, size_t> expected_counts;
    for (int64_t k : build) expected_counts[k]++;

    const size_t buckets = 64;
    // Random DMEM capacity exercises both overflow and normal paths.
    const size_t capacity = 1 + rng.NextBounded(n);
    CompactJoinTable table(n, buckets, capacity);
    for (size_t i = 0; i < n; ++i) {
      table.Insert(Crc32U64(static_cast<uint64_t>(build[i])), i);
    }
    for (int64_t probe = -5; probe < 45; ++probe) {
      size_t matches = 0;
      ProbeStats stats;
      table.Probe(
          Crc32U64(static_cast<uint64_t>(probe)),
          [&](size_t offset) { return build[offset] == probe; },
          [&](size_t) { ++matches; }, &stats);
      const auto it = expected_counts.find(probe);
      EXPECT_EQ(matches, it == expected_counts.end() ? 0 : it->second);
    }
  }
}

TEST(JoinKernelTest, ComputeBucketIndices) {
  std::vector<uint32_t> hashes = {0, 17, 33, 64};
  std::vector<uint32_t> indices(4);
  ComputeBucketIndices(hashes.data(), 4, 32, indices.data());
  EXPECT_EQ(indices, (std::vector<uint32_t>{0, 17, 1, 0}));
}

TEST(JoinKernelTest, EmptyTableProbesCleanly) {
  CompactJoinTable table(0, 4, 0);
  ProbeStats stats;
  table.Probe(123, [](size_t) { return true; },
              [](size_t) { FAIL() << "no rows to match"; }, &stats);
  EXPECT_EQ(stats.matches, 0u);
}

}  // namespace
}  // namespace rapid::primitives
