// Unit tests for the DPU simulator: DMEM arena, cycle cost model,
// ATE messaging/synchronization, DMS transfers and hardware
// partitioning, and the DPU facade's parallel scheduling.

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <thread>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dpu/ate.h"
#include "dpu/cost_model.h"
#include "dpu/dmem.h"
#include "dpu/dms.h"
#include "dpu/dpu.h"
#include "dpu/power_model.h"
#include "tests/test_util.h"

namespace rapid::dpu {
namespace {

// ---- Dmem ------------------------------------------------------------------

TEST(DmemTest, BumpAllocationAndBudget) {
  Dmem dmem(1024);
  ASSERT_OK_AND_ASSIGN(uint8_t* a, dmem.Allocate(100));
  ASSERT_OK_AND_ASSIGN(uint8_t* b, dmem.Allocate(100));
  EXPECT_NE(a, b);
  EXPECT_EQ(dmem.used(), 208u);  // 8-byte aligned: 104 + 104
  EXPECT_TRUE(dmem.Contains(a));
  EXPECT_TRUE(dmem.Contains(b));

  auto too_big = dmem.Allocate(900);
  EXPECT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kOutOfMemory);
}

TEST(DmemTest, ResetReclaimsEverything) {
  Dmem dmem(256);
  ASSERT_OK(dmem.Allocate(200).status());
  dmem.Reset();
  EXPECT_EQ(dmem.used(), 0u);
  EXPECT_OK(dmem.Allocate(200).status());
  EXPECT_EQ(dmem.high_water(), 200u);
}

TEST(DmemTest, TypedArrayAllocation) {
  Dmem dmem(1024);
  ASSERT_OK_AND_ASSIGN(int64_t* arr, dmem.AllocateArray<int64_t>(16));
  for (int i = 0; i < 16; ++i) arr[i] = i;
  EXPECT_EQ(arr[15], 15);
}

TEST(DmemTest, DpuConfigDefaultsMatchPaper) {
  // Brace-initialization gives the paper constants; Default() applies
  // the RAPID_CORES override on top, so only compare core counts when
  // the override is absent.
  const DpuConfig config{};
  if (std::getenv("RAPID_CORES") == nullptr) {
    EXPECT_EQ(DpuConfig::Default().num_cores, 32);
  }
  EXPECT_EQ(config.num_cores, 32);
  EXPECT_EQ(config.num_macros, 4);
  EXPECT_EQ(config.dmem_bytes, 32u * 1024);
  EXPECT_EQ(config.l1d_bytes, 16u * 1024);
  EXPECT_DOUBLE_EQ(config.clock_hz, 800e6);
  EXPECT_DOUBLE_EQ(config.chip_power_w, 5.8);
  EXPECT_DOUBLE_EQ(config.core_dynamic_power_w, 0.051);
}

// ---- Cost model ------------------------------------------------------------

TEST(CostModelTest, FilterMatchesPaperThroughput) {
  // 1.65 cycles/tuple at 800 MHz = ~485 M tuples/s/core (Section 7.2
  // reports 482 M).
  const CostParams& p = CostParams::Default();
  const double tuples_per_sec = p.clock_hz / p.filter_cycles_per_row;
  EXPECT_NEAR(tuples_per_sec / 1e6, 482.0, 8.0);
}

TEST(CostModelTest, DmsTransferReaches9GiBs) {
  // Figure 9: 128-row tiles of 4x4-byte columns sustain >= 9 GiB/s.
  const CostParams& p = CostParams::Default();
  const double cycles = DmsTileTransferCycles(p, 4, 128, 4, false);
  const double bytes = 4.0 * 128 * 4;
  const double gib_per_sec = bytes / cycles * p.clock_hz / (1 << 30);
  EXPECT_GE(gib_per_sec, 9.0);
  EXPECT_LE(gib_per_sec, 12.0);  // below DDR3 peak
}

TEST(CostModelTest, LargerTilesAmortizeSetup) {
  const CostParams& p = CostParams::Default();
  const double t64 = 64 * 4 / DmsTileTransferCycles(p, 1, 64, 4, false);
  const double t256 = 256 * 4 / DmsTileTransferCycles(p, 1, 256, 4, false);
  EXPECT_GT(t256, t64);
}

TEST(CostModelTest, ReadWriteSlowerThanRead) {
  const CostParams& p = CostParams::Default();
  // Compare effective bandwidth per moved byte.
  const double r = DmsTileTransferCycles(p, 4, 128, 4, false) / (4 * 128 * 4);
  const double rw =
      DmsTileTransferCycles(p, 4, 128, 4, true) / (2.0 * 4 * 128 * 4);
  EXPECT_GT(rw, r);
}

TEST(CostModelTest, MoreColumnsSlightlySlower) {
  const CostParams& p = CostParams::Default();
  auto bw = [&](int cols) {
    const double bytes = static_cast<double>(cols) * 128 * 4;
    return bytes / DmsTileTransferCycles(p, cols, 128, 4, false);
  };
  EXPECT_GT(bw(2), bw(32));
}

TEST(CostModelTest, HwPartitionNear9Point3GiBs) {
  // Figure 8: ~9.3 GiB/s for all strategies.
  const CostParams& p = CostParams::Default();
  const size_t rows = 1 << 20;
  const size_t bytes = rows * 16;  // 4 columns x 4 bytes
  for (HwPartitionStrategy s :
       {HwPartitionStrategy::kRadix, HwPartitionStrategy::kHash,
        HwPartitionStrategy::kRange}) {
    const double cycles = HwPartitionCycles(p, s, 1, rows, bytes);
    const double gib = static_cast<double>(bytes) / cycles * p.clock_hz /
                       (1 << 30);
    EXPECT_NEAR(gib, 9.3, 0.4) << static_cast<int>(s);
  }
}

TEST(CostModelTest, JoinBuildMatchesPaperRates) {
  // Figure 11: ~46 M rows/s/core at 256-row tiles; +39% from 64->1024.
  const CostParams& p = CostParams::Default();
  auto rate = [&](size_t tile) {
    return static_cast<double>(tile) / JoinBuildTileCycles(p, tile) *
           p.clock_hz;
  };
  EXPECT_NEAR(rate(256) / 1e6, 46.0, 3.0);
  EXPECT_NEAR(rate(1024) / rate(64), 1.39, 0.06);
}

TEST(CostModelTest, JoinProbeMatchesPaperRates) {
  // Figure 12: 880 M - 1.35 B rows/s per DPU (32 cores), +30% from
  // tile 64 -> 1024 (50% hit ratio: ~1 chain step/row, 0.5 match).
  const CostParams& p = CostParams::Default();
  auto rate = [&](size_t tile) {
    return static_cast<double>(tile) /
           JoinProbeTileCycles(p, tile, tile, tile / 2) * p.clock_hz * 32;
  };
  EXPECT_GE(rate(64) / 1e6, 850.0);
  EXPECT_LE(rate(1024) / 1e6, 1400.0);
  EXPECT_NEAR(rate(1024) / rate(64), 1.30, 0.06);
}

TEST(CycleCounterTest, DoubleBufferingOverlaps) {
  CycleCounter c;
  c.ChargeCompute(100);
  c.ChargeDms(60);
  EXPECT_DOUBLE_EQ(c.EffectiveCycles(true), 100);   // overlap: max
  EXPECT_DOUBLE_EQ(c.EffectiveCycles(false), 160);  // serialized: sum
  CycleCounter d;
  d.ChargeDms(50);
  c.Merge(d);
  EXPECT_DOUBLE_EQ(c.dms_cycles(), 110);
  c.Reset();
  EXPECT_DOUBLE_EQ(c.EffectiveCycles(), 0);
}

TEST(PowerModelTest, PerfPerWattRatio) {
  PowerModel power;
  EXPECT_DOUBLE_EQ(power.xeon_watts(), 290.0);
  // A DPU at 30% of the Xeon's throughput has 15x perf/watt.
  EXPECT_NEAR(power.PerfPerWattRatio(0.3, 1.0), 15.0, 0.1);
}

// ---- ATE -------------------------------------------------------------------

TEST(AteTest, PointToPointOrdering) {
  Ate ate(4);
  for (uint64_t i = 0; i < 100; ++i) ate.Send(0, 1, i);
  for (uint64_t i = 0; i < 100; ++i) {
    AteMessage msg = ate.Receive(1);
    EXPECT_EQ(msg.from, 0);
    EXPECT_EQ(msg.tag, i);
  }
}

TEST(AteTest, TryReceiveOnEmptyMailbox) {
  Ate ate(2);
  EXPECT_FALSE(ate.TryReceive(0).has_value());
  ate.Send(1, 0, 7, {1, 2, 3});
  auto msg = ate.TryReceive(0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(AteTest, CrossThreadDelivery) {
  Ate ate(2);
  std::thread sender([&] {
    for (uint64_t i = 0; i < 50; ++i) ate.Send(0, 1, i);
  });
  uint64_t sum = 0;
  for (int i = 0; i < 50; ++i) sum += ate.Receive(1).tag;
  sender.join();
  EXPECT_EQ(sum, 49u * 50 / 2);
}

TEST(AteTest, HardwareMutexExcludes) {
  Ate ate(2);
  int counter = 0;
  auto body = [&] {
    for (int i = 0; i < 1000; ++i) {
      ate.Lock(3);
      ++counter;
      ate.Unlock(3);
    }
  };
  std::thread t1(body);
  std::thread t2(body);
  t1.join();
  t2.join();
  EXPECT_EQ(counter, 2000);
}

TEST(AteBarrierTest, ReusableAcrossGenerations) {
  constexpr int kThreads = 8;
  AteBarrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < 5; ++phase) {
        phase_counter.fetch_add(1);
        barrier.Wait();
        // After the barrier, all participants of this phase arrived.
        if (phase_counter.load() < (phase + 1) * kThreads) failed = true;
        barrier.Wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(phase_counter.load(), 5 * kThreads);
}

// ---- DMS -------------------------------------------------------------------

class DmsTest : public ::testing::Test {
 protected:
  DmsTest() : dms_(DpuConfig::Default(), CostParams::Default()) {}
  Dms dms_;
  CycleCounter cycles_;
};

TEST_F(DmsTest, TransferTileCopiesAllSlices) {
  std::vector<uint32_t> src1(64);
  std::vector<uint32_t> src2(64);
  std::iota(src1.begin(), src1.end(), 0);
  std::iota(src2.begin(), src2.end(), 1000);
  std::vector<uint32_t> dst1(64);
  std::vector<uint32_t> dst2(64);
  dms_.TransferTile(
      &cycles_,
      {ColumnSlice{reinterpret_cast<uint8_t*>(src1.data()),
                   reinterpret_cast<uint8_t*>(dst1.data()), 256},
       ColumnSlice{reinterpret_cast<uint8_t*>(src2.data()),
                   reinterpret_cast<uint8_t*>(dst2.data()), 256}},
      false);
  EXPECT_EQ(dst1, src1);
  EXPECT_EQ(dst2, src2);
  EXPECT_GT(cycles_.dms_cycles(), 0);
  EXPECT_EQ(cycles_.compute_cycles(), 0);  // DMS works in isolation
}

TEST_F(DmsTest, GatherByRids) {
  std::vector<int32_t> src = {10, 11, 12, 13, 14, 15};
  std::vector<uint32_t> rids = {5, 0, 3};
  std::vector<int32_t> dst(3);
  dms_.Gather(&cycles_, reinterpret_cast<uint8_t*>(dst.data()),
              reinterpret_cast<const uint8_t*>(src.data()), rids.data(), 3, 4);
  EXPECT_EQ(dst, (std::vector<int32_t>{15, 10, 13}));
}

TEST_F(DmsTest, GatherBitsSelectsSetRows) {
  std::vector<int64_t> src = {0, 10, 20, 30, 40};
  BitVector bits(5);
  bits.Set(1);
  bits.Set(4);
  std::vector<int64_t> dst(2);
  const size_t n =
      dms_.GatherBits(&cycles_, reinterpret_cast<uint8_t*>(dst.data()),
                      reinterpret_cast<const uint8_t*>(src.data()), bits, 8);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(dst, (std::vector<int64_t>{10, 40}));
}

TEST_F(DmsTest, ScatterByRids) {
  std::vector<int32_t> src = {7, 8, 9};
  std::vector<uint32_t> rids = {2, 0, 4};
  std::vector<int32_t> dst(5, -1);
  dms_.Scatter(&cycles_, reinterpret_cast<uint8_t*>(dst.data()),
               reinterpret_cast<const uint8_t*>(src.data()), rids.data(), 3,
               4);
  EXPECT_EQ(dst, (std::vector<int32_t>{8, -1, 7, -1, 9}));
}

TEST_F(DmsTest, RadixPartitionUsesLowBits) {
  std::vector<int32_t> keys = {0, 1, 31, 32, 33, 63};
  HwPartitionSpec spec;
  spec.strategy = HwPartitionStrategy::kRadix;
  spec.keys = {KeyColumn{reinterpret_cast<uint8_t*>(keys.data()), 4}};
  spec.fanout = 32;
  std::vector<uint16_t> targets;
  ASSERT_OK(dms_.ComputeTargets(&cycles_, spec, keys.size(), 4, &targets));
  EXPECT_EQ(targets, (std::vector<uint16_t>{0, 1, 31, 0, 1, 31}));
}

TEST_F(DmsTest, HashPartitionIsDeterministicAndBounded) {
  std::vector<int64_t> keys(1000);
  std::iota(keys.begin(), keys.end(), 0);
  HwPartitionSpec spec;
  spec.strategy = HwPartitionStrategy::kHash;
  spec.keys = {KeyColumn{reinterpret_cast<uint8_t*>(keys.data()), 8}};
  spec.fanout = 16;
  std::vector<uint16_t> t1;
  std::vector<uint16_t> t2;
  ASSERT_OK(dms_.ComputeTargets(&cycles_, spec, keys.size(), 8, &t1));
  ASSERT_OK(dms_.ComputeTargets(&cycles_, spec, keys.size(), 8, &t2));
  EXPECT_EQ(t1, t2);
  std::vector<int> counts(16, 0);
  for (uint16_t t : t1) {
    ASSERT_LT(t, 16);
    counts[t]++;
  }
  for (int c : counts) EXPECT_GT(c, 20);  // roughly uniform
}

TEST_F(DmsTest, MultiKeyHashDiffersFromSingleKey) {
  std::vector<int32_t> k1(100);
  std::vector<int32_t> k2(100);
  for (int i = 0; i < 100; ++i) {
    k1[i] = i;
    k2[i] = 99 - i;
  }
  HwPartitionSpec one;
  one.strategy = HwPartitionStrategy::kHash;
  one.keys = {KeyColumn{reinterpret_cast<uint8_t*>(k1.data()), 4}};
  one.fanout = 32;
  HwPartitionSpec two = one;
  two.keys.push_back(KeyColumn{reinterpret_cast<uint8_t*>(k2.data()), 4});
  std::vector<uint16_t> t1;
  std::vector<uint16_t> t2;
  ASSERT_OK(dms_.ComputeTargets(&cycles_, one, 100, 4, &t1));
  ASSERT_OK(dms_.ComputeTargets(&cycles_, two, 100, 8, &t2));
  EXPECT_NE(t1, t2);
}

TEST_F(DmsTest, RangePartitionMatchesBounds) {
  std::vector<int32_t> keys = {-5, 0, 9, 10, 11, 99, 100};
  HwPartitionSpec spec;
  spec.strategy = HwPartitionStrategy::kRange;
  spec.keys = {KeyColumn{reinterpret_cast<uint8_t*>(keys.data()), 4}};
  spec.fanout = 3;
  spec.range_bounds = {10, 100};  // (-inf,10), [10,100), [100,inf)
  std::vector<uint16_t> targets;
  ASSERT_OK(dms_.ComputeTargets(&cycles_, spec, keys.size(), 4, &targets));
  EXPECT_EQ(targets, (std::vector<uint16_t>{0, 0, 0, 1, 1, 1, 2}));
}

TEST_F(DmsTest, RoundRobinSpreadsEvenly) {
  HwPartitionSpec spec;
  spec.strategy = HwPartitionStrategy::kRoundRobin;
  spec.fanout = 4;
  std::vector<uint16_t> targets;
  ASSERT_OK(dms_.ComputeTargets(&cycles_, spec, 8, 4, &targets));
  EXPECT_EQ(targets, (std::vector<uint16_t>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST_F(DmsTest, SkewAwareRoundRobinSpreadsFrequentRange) {
  // Rows with value 7 (the frequent range) rotate over cores {8,9};
  // everything else round-robins over the fan-out (Section 5.4).
  std::vector<int32_t> keys = {7, 1, 7, 2, 7, 3, 7};
  HwPartitionSpec spec;
  spec.strategy = HwPartitionStrategy::kRoundRobin;
  spec.fanout = 4;
  spec.keys = {KeyColumn{reinterpret_cast<uint8_t*>(keys.data()), 4}};
  spec.skew_ranges = {SkewRange{7, 7, {8, 9}}};
  std::vector<uint16_t> targets;
  ASSERT_OK(dms_.ComputeTargets(&cycles_, spec, keys.size(), 4, &targets));
  EXPECT_EQ(targets, (std::vector<uint16_t>{8, 0, 9, 1, 8, 2, 9}));
}

TEST_F(DmsTest, InvalidSpecsRejected) {
  std::vector<uint16_t> targets;
  HwPartitionSpec too_wide;
  too_wide.strategy = HwPartitionStrategy::kHash;
  too_wide.fanout = 64;  // beyond the 32-way engine
  std::vector<int32_t> keys = {1};
  too_wide.keys = {KeyColumn{reinterpret_cast<uint8_t*>(keys.data()), 4}};
  EXPECT_FALSE(dms_.ComputeTargets(&cycles_, too_wide, 1, 4, &targets).ok());

  HwPartitionSpec no_keys;
  no_keys.strategy = HwPartitionStrategy::kHash;
  no_keys.fanout = 8;
  EXPECT_FALSE(dms_.ComputeTargets(&cycles_, no_keys, 1, 4, &targets).ok());

  HwPartitionSpec bad_range;
  bad_range.strategy = HwPartitionStrategy::kRange;
  bad_range.fanout = 4;
  bad_range.keys = {KeyColumn{reinterpret_cast<uint8_t*>(keys.data()), 4}};
  bad_range.range_bounds = {1};  // needs fanout-1 = 3 bounds
  EXPECT_FALSE(dms_.ComputeTargets(&cycles_, bad_range, 1, 4, &targets).ok());
}

TEST_F(DmsTest, DistributeColumnAppendsPerTarget) {
  std::vector<int32_t> col = {10, 20, 30, 40};
  std::vector<uint16_t> targets = {1, 0, 1, 0};
  std::vector<std::vector<uint8_t>> out(2);
  dms_.DistributeColumn(&cycles_, reinterpret_cast<uint8_t*>(col.data()), 4,
                        targets, &out);
  ASSERT_EQ(out[0].size(), 8u);
  ASSERT_EQ(out[1].size(), 8u);
  EXPECT_EQ(reinterpret_cast<int32_t*>(out[0].data())[0], 20);
  EXPECT_EQ(reinterpret_cast<int32_t*>(out[0].data())[1], 40);
  EXPECT_EQ(reinterpret_cast<int32_t*>(out[1].data())[0], 10);
  EXPECT_EQ(reinterpret_cast<int32_t*>(out[1].data())[1], 30);
}

// ---- Dpu facade ------------------------------------------------------------

TEST(DpuTest, ParallelForRunsEveryCoreOnce) {
  Dpu dpu{DpuConfig{}};
  std::vector<std::atomic<int>> hits(32);
  dpu.ParallelFor([&](DpCore& core) { hits[core.id()].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DpuTest, ParallelForNLimitsParticipants) {
  Dpu dpu{DpuConfig{}};
  std::atomic<int> count{0};
  dpu.ParallelForN(5, [&](DpCore& core) {
    EXPECT_LT(core.id(), 5);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 5);
}

TEST(DpuTest, MaxEffectiveCyclesTracksSlowestCore) {
  Dpu dpu{DpuConfig{}};
  dpu.ParallelFor([&](DpCore& core) {
    core.cycles().ChargeCompute(core.id() == 3 ? 1000.0 : 10.0);
  });
  EXPECT_DOUBLE_EQ(dpu.MaxEffectiveCycles(), 1000.0);
  EXPECT_DOUBLE_EQ(dpu.TotalComputeCycles(), 1000.0 + 31 * 10.0);
  dpu.ResetCores();
  EXPECT_DOUBLE_EQ(dpu.MaxEffectiveCycles(), 0.0);
}

TEST(DpuTest, CoresHaveMacroAssignment) {
  Dpu dpu{DpuConfig{}};
  EXPECT_EQ(dpu.core(0).macro_id(), 0);
  EXPECT_EQ(dpu.core(7).macro_id(), 0);
  EXPECT_EQ(dpu.core(8).macro_id(), 1);
  EXPECT_EQ(dpu.core(31).macro_id(), 3);
}

TEST(DpuTest, SequentialParallelForRounds) {
  // The actor model schedules rounds back to back; state must not
  // leak between rounds.
  Dpu dpu{DpuConfig{}};
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    dpu.ParallelFor([&](DpCore&) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 32);
  }
}

TEST(DpuTest, CustomConfigSmallerDpu) {
  DpuConfig config;
  config.num_cores = 4;
  config.cores_per_macro = 2;
  config.dmem_bytes = 4096;
  Dpu dpu(config);
  EXPECT_EQ(dpu.num_cores(), 4);
  EXPECT_EQ(dpu.core(0).dmem().capacity(), 4096u);
  std::atomic<int> count{0};
  dpu.ParallelFor([&](DpCore&) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

}  // namespace
}  // namespace rapid::dpu
