// Shared helpers for the RAPID test suite.

#ifndef RAPID_TESTS_TEST_UTIL_H_
#define RAPID_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/qef/column_set.h"
#include "storage/loader.h"

namespace rapid::testing {

// All rows of a ColumnSet as row tuples, sorted — engine results are
// order-insensitive unless a sort step fixed the order.
inline std::vector<std::vector<int64_t>> SortedRows(
    const core::ColumnSet& set) {
  std::vector<std::vector<int64_t>> rows;
  rows.reserve(set.num_rows());
  for (size_t r = 0; r < set.num_rows(); ++r) {
    std::vector<int64_t> row(set.num_columns());
    for (size_t c = 0; c < set.num_columns(); ++c) row[c] = set.Value(r, c);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

inline std::vector<std::vector<int64_t>> Rows(const core::ColumnSet& set) {
  std::vector<std::vector<int64_t>> rows;
  rows.reserve(set.num_rows());
  for (size_t r = 0; r < set.num_rows(); ++r) {
    std::vector<int64_t> row(set.num_columns());
    for (size_t c = 0; c < set.num_columns(); ++c) row[c] = set.Value(r, c);
    rows.push_back(std::move(row));
  }
  return rows;
}

// Asserts two result sets hold the same bag of rows (sorted compare)
// and the same column names.
inline void ExpectSameRows(const core::ColumnSet& a,
                           const core::ColumnSet& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.meta(c).name, b.meta(c).name) << "column " << c;
  }
  EXPECT_EQ(SortedRows(a), SortedRows(b));
}

// Builds a ColumnSet from widened columns, with int64 metadata.
inline core::ColumnSet MakeColumnSet(
    const std::vector<std::string>& names,
    const std::vector<std::vector<int64_t>>& columns) {
  std::vector<core::ColumnMeta> metas;
  for (const auto& name : names) {
    core::ColumnMeta m;
    m.name = name;
    metas.push_back(m);
  }
  core::ColumnSet out(metas);
  for (size_t c = 0; c < columns.size(); ++c) out.column(c) = columns[c];
  return out;
}

#define ASSERT_OK(expr)                                          \
  do {                                                           \
    auto _st = (expr);                                           \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                     \
  } while (0)

#define EXPECT_OK(expr)                                          \
  do {                                                           \
    auto _st = (expr);                                           \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                     \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                         \
  ASSERT_OK_AND_ASSIGN_IMPL(RAPID_CONCAT(_res_, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, rexpr)               \
  auto tmp = (rexpr);                                            \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();              \
  lhs = std::move(tmp).value()

}  // namespace rapid::testing

#endif  // RAPID_TESTS_TEST_UTIL_H_
