// End-to-end engine tests: every operator class executed through the
// full stack (planner -> steps -> QEF -> DPU simulator), validated
// against the host's independent Volcano engine on the same data and
// logical plans. Both engines share encodings, so results must match
// exactly.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "hostdb/volcano.h"
#include "storage/loader.h"
#include "tests/test_util.h"

namespace rapid::core {
namespace {

using primitives::CmpOp;
using rapid::testing::ExpectSameRows;
using rapid::testing::SortedRows;

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2024);
    // "facts": a larger fact table.
    {
      std::vector<storage::ColumnSpec> specs = {
          {"f_id", storage::ColumnKind::kInt64},
          {"f_dim", storage::ColumnKind::kInt32},
          {"f_cat", storage::ColumnKind::kString},
          {"f_price", storage::ColumnKind::kDecimal},
          {"f_qty", storage::ColumnKind::kInt32},
          {"f_day", storage::ColumnKind::kDate}};
      std::vector<storage::ColumnData> data(6);
      const char* cats[] = {"red", "green", "blue", "black"};
      for (int i = 0; i < 20000; ++i) {
        data[0].ints.push_back(i);
        data[1].ints.push_back(rng.NextInRange(0, 499));
        data[2].strings.push_back(cats[rng.NextBounded(4)]);
        data[3].decimals.push_back(
            static_cast<double>(rng.NextInRange(100, 99999)) / 100.0);
        data[4].ints.push_back(rng.NextInRange(1, 50));
        data[5].ints.push_back(rng.NextInRange(8000, 9000));
      }
      Load("facts", specs, data);
    }
    // "dims": a small dimension table.
    {
      std::vector<storage::ColumnSpec> specs = {
          {"d_id", storage::ColumnKind::kInt32},
          {"d_name", storage::ColumnKind::kString},
          {"d_class", storage::ColumnKind::kInt32}};
      std::vector<storage::ColumnData> data(3);
      for (int i = 0; i < 500; ++i) {
        data[0].ints.push_back(i);
        data[1].strings.push_back("dim" + std::to_string(i));
        data[2].ints.push_back(i % 7);
      }
      Load("dims", specs, data);
    }
  }

  void Load(const std::string& name,
            const std::vector<storage::ColumnSpec>& specs,
            const std::vector<storage::ColumnData>& data) {
    storage::LoadOptions opts;
    opts.rows_per_chunk = 1024;
    auto table = storage::LoadTable(name, specs, data, opts);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    ASSERT_TRUE(engine_.Load(std::move(table).value()).ok());
    // Host gets an identical copy (re-encoded deterministically).
    auto copy = storage::LoadTable(name, specs, data, opts);
    host_catalog_.emplace(name, std::move(copy).value());
  }

  // Runs the plan on both engines and requires identical results.
  void CheckAgainstVolcano(const LogicalPtr& plan,
                           const ExecOptions& options = {}) {
    auto rapid_result = engine_.Execute(plan, options);
    ASSERT_TRUE(rapid_result.ok()) << rapid_result.status().ToString();
    auto host_result = hostdb::VolcanoExecutor::Execute(plan, host_catalog_);
    ASSERT_TRUE(host_result.ok()) << host_result.status().ToString();
    ExpectSameRows(rapid_result.value().rows, host_result.value());
  }

  int64_t DictCodeOf(const std::string& table, const std::string& column,
                     const std::string& value) {
    const storage::Table* t = engine_.GetTable(table);
    const size_t idx = t->schema().IndexOf(column).value();
    return t->dictionary(idx)->Lookup(value).value();
  }

  RapidEngine engine_;
  Catalog host_catalog_;
};

TEST_F(EngineTest, ScanWithoutPredicates) {
  CheckAgainstVolcano(LogicalNode::Scan("facts", {"f_id", "f_qty"}));
}

TEST_F(EngineTest, FilterConjunction) {
  CheckAgainstVolcano(LogicalNode::Scan(
      "facts", {"f_id", "f_price"},
      {Predicate::Between("f_day", 8100, 8200),
       Predicate::CmpConst("f_qty", CmpOp::kGe, 25)}));
}

TEST_F(EngineTest, HighlySelectiveFilterUsesRidPath) {
  CheckAgainstVolcano(LogicalNode::Scan(
      "facts", {"f_id"}, {Predicate::CmpConst("f_id", CmpOp::kEq, 12345)}));
}

TEST_F(EngineTest, DictionaryPredicates) {
  const int64_t blue = DictCodeOf("facts", "f_cat", "blue");
  CheckAgainstVolcano(LogicalNode::Scan(
      "facts", {"f_id", "f_cat"},
      {Predicate::CmpConst("f_cat", CmpOp::kEq, blue)}));

  BitVector set(4);
  set.Set(static_cast<size_t>(DictCodeOf("facts", "f_cat", "red")));
  set.Set(static_cast<size_t>(DictCodeOf("facts", "f_cat", "black")));
  CheckAgainstVolcano(LogicalNode::Scan("facts", {"f_id"},
                                        {Predicate::InSet("f_cat", set)}));
}

TEST_F(EngineTest, ProjectionArithmeticWithDsb) {
  auto scan = LogicalNode::Scan("facts", {"f_price", "f_qty"},
                                {Predicate::CmpConst("f_qty", CmpOp::kGt, 40)});
  auto project = LogicalNode::Project(
      scan,
      {{"gross", Expr::Mul(Expr::Col("f_price"), Expr::Col("f_qty"))},
       {"rebased", Expr::Sub(Expr::Col("f_price"), Expr::Dec(0.5, 2))}});
  CheckAgainstVolcano(project);
}

TEST_F(EngineTest, LowNdvGroupBy) {
  auto scan = LogicalNode::Scan("facts", {"f_cat", "f_qty", "f_price"});
  CheckAgainstVolcano(LogicalNode::GroupBy(
      scan, {{"f_cat", Expr::Col("f_cat")}},
      {{"n", AggFunc::kCount, nullptr, {}},
       {"total_qty", AggFunc::kSum, Expr::Col("f_qty"), {}},
       {"min_price", AggFunc::kMin, Expr::Col("f_price"), {}},
       {"max_price", AggFunc::kMax, Expr::Col("f_price"), {}}}));
}

TEST_F(EngineTest, HighNdvGroupByPartitioned) {
  ExecOptions options;
  options.planner.low_ndv_threshold = 100;  // force the partitioned path
  auto scan = LogicalNode::Scan("facts", {"f_dim", "f_qty"});
  auto plan = LogicalNode::GroupBy(
      scan, {{"f_dim", Expr::Col("f_dim")}},
      {{"s", AggFunc::kSum, Expr::Col("f_qty"), {}}});
  auto rapid_result = engine_.Execute(plan, options);
  ASSERT_TRUE(rapid_result.ok()) << rapid_result.status().ToString();
  auto host_result = hostdb::VolcanoExecutor::Execute(plan, host_catalog_);
  ASSERT_TRUE(host_result.ok());
  ExpectSameRows(rapid_result.value().rows, host_result.value());
}

TEST_F(EngineTest, GroupByWithFilterClause) {
  auto scan = LogicalNode::Scan("facts", {"f_cat", "f_qty"});
  CheckAgainstVolcano(LogicalNode::GroupBy(
      scan, {{"f_cat", Expr::Col("f_cat")}},
      {{"big", AggFunc::kCount, nullptr,
        std::make_shared<Predicate>(
            Predicate::CmpConst("f_qty", CmpOp::kGe, 25))},
       {"all", AggFunc::kCount, nullptr, {}}}));
}

TEST_F(EngineTest, ScalarAggregation) {
  auto scan = LogicalNode::Scan(
      "facts", {"f_price", "f_qty"},
      {Predicate::CmpConst("f_qty", CmpOp::kLt, 10)});
  CheckAgainstVolcano(LogicalNode::GroupBy(
      scan, {},
      {{"revenue", AggFunc::kSum,
        Expr::Mul(Expr::Col("f_price"), Expr::Col("f_qty")), {}}}));
}

TEST_F(EngineTest, InnerJoinFkShape) {
  auto facts = LogicalNode::Scan("facts", {"f_dim", "f_qty"});
  auto dims = LogicalNode::Scan("dims", {"d_id", "d_class"});
  CheckAgainstVolcano(LogicalNode::Join(dims, facts, {"d_id"}, {"f_dim"},
                                        {"d_class", "f_qty"}));
}

TEST_F(EngineTest, JoinThenGroupBy) {
  auto facts = LogicalNode::Scan("facts", {"f_dim", "f_price", "f_qty"});
  auto dims = LogicalNode::Scan("dims", {"d_id", "d_class"});
  auto join = LogicalNode::Join(dims, facts, {"d_id"}, {"f_dim"},
                                {"d_class", "f_price", "f_qty"});
  CheckAgainstVolcano(LogicalNode::GroupBy(
      join, {{"d_class", Expr::Col("d_class")}},
      {{"revenue", AggFunc::kSum,
        Expr::Mul(Expr::Col("f_price"), Expr::Col("f_qty")), {}}}));
}

TEST_F(EngineTest, SemiAndAntiJoins) {
  auto small = LogicalNode::Scan(
      "facts", {"f_dim"}, {Predicate::CmpConst("f_qty", CmpOp::kGe, 49)});
  auto dims = LogicalNode::Scan("dims", {"d_id", "d_class"});
  CheckAgainstVolcano(LogicalNode::Join(small, dims, {"f_dim"}, {"d_id"},
                                        {"d_id", "d_class"},
                                        JoinType::kSemi));
  CheckAgainstVolcano(LogicalNode::Join(small, dims, {"f_dim"}, {"d_id"},
                                        {"d_id", "d_class"},
                                        JoinType::kAnti));
}

TEST_F(EngineTest, LeftOuterJoinPreservesProbe) {
  // Dims 400.. have no matching facts rows below f_dim 500? They do;
  // instead filter facts to a narrow range so many dims stay
  // unmatched.
  auto facts = LogicalNode::Scan(
      "facts", {"f_dim", "f_qty"},
      {Predicate::CmpConst("f_dim", CmpOp::kLt, 50)});
  auto dims = LogicalNode::Scan("dims", {"d_id", "d_class"});
  CheckAgainstVolcano(LogicalNode::Join(facts, dims, {"f_dim"}, {"d_id"},
                                        {"f_qty", "d_id", "d_class"},
                                        JoinType::kLeftOuter));
}

TEST_F(EngineTest, FilterOnJoinOutput) {
  auto facts = LogicalNode::Scan("facts", {"f_dim", "f_qty"});
  auto dims = LogicalNode::Scan("dims", {"d_id", "d_class"});
  auto join = LogicalNode::Join(dims, facts, {"d_id"}, {"f_dim"},
                                {"d_class", "f_qty", "f_dim"});
  CheckAgainstVolcano(LogicalNode::Filter(
      join, {Predicate::CmpCol("d_class", CmpOp::kLt, "f_qty")},
      {"d_class", "f_qty"}));
}

TEST_F(EngineTest, SortAndTopK) {
  auto scan = LogicalNode::Scan(
      "facts", {"f_id", "f_qty"},
      {Predicate::CmpConst("f_id", CmpOp::kLt, 200)});
  // Sorted results must match exactly including order.
  auto sorted_plan =
      LogicalNode::Sort(scan, {{"f_qty", false}, {"f_id", true}});
  auto rapid_result = engine_.Execute(sorted_plan);
  ASSERT_TRUE(rapid_result.ok());
  auto host_result =
      hostdb::VolcanoExecutor::Execute(sorted_plan, host_catalog_);
  ASSERT_TRUE(host_result.ok());
  EXPECT_EQ(rapid::testing::Rows(rapid_result.value().rows),
            rapid::testing::Rows(host_result.value()));

  // TopK is a prefix of the sorted order; ties make the exact row set
  // ambiguous, so compare against the sorted prefix on the keys only.
  auto topk_plan = LogicalNode::TopK(scan, {{"f_qty", false}}, 10);
  auto topk = engine_.Execute(topk_plan);
  ASSERT_TRUE(topk.ok());
  ASSERT_EQ(topk.value().rows.num_rows(), 10u);
  auto host_sorted = hostdb::VolcanoExecutor::Execute(
      LogicalNode::Sort(scan, {{"f_qty", false}}), host_catalog_);
  ASSERT_TRUE(host_sorted.ok());
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_EQ(topk.value().rows.Value(r, 1), host_sorted.value().Value(r, 1));
  }
}

TEST_F(EngineTest, SetOperations) {
  auto low = LogicalNode::Scan(
      "facts", {"f_dim"}, {Predicate::CmpConst("f_qty", CmpOp::kLt, 10)});
  auto high = LogicalNode::Scan(
      "facts", {"f_dim"}, {Predicate::CmpConst("f_qty", CmpOp::kGt, 40)});
  CheckAgainstVolcano(LogicalNode::SetOp(SetOpKind::kUnion, low, high));
  CheckAgainstVolcano(LogicalNode::SetOp(SetOpKind::kIntersect, low, high));
  CheckAgainstVolcano(LogicalNode::SetOp(SetOpKind::kMinus, low, high));
}

TEST_F(EngineTest, WindowFunctions) {
  auto scan = LogicalNode::Scan(
      "facts", {"f_cat", "f_qty", "f_id"},
      {Predicate::CmpConst("f_id", CmpOp::kLt, 100)});
  LogicalWindow rank;
  rank.func = WindowFunc::kRank;
  rank.partition_by = {"f_cat"};
  rank.order_by = {{"f_qty", false}};
  rank.output_name = "qty_rank";
  CheckAgainstVolcano(LogicalNode::Window(scan, {rank}));
}

TEST_F(EngineTest, NonVectorizedModeSameResults) {
  // Figure 13's ablation switch changes cycle accounting, never
  // results.
  ExecOptions scalar;
  scalar.vectorized = false;
  auto scan = LogicalNode::Scan("facts", {"f_cat", "f_qty"},
                                {Predicate::CmpConst("f_qty", CmpOp::kGe, 20)});
  auto plan = LogicalNode::GroupBy(
      scan, {{"f_cat", Expr::Col("f_cat")}},
      {{"s", AggFunc::kSum, Expr::Col("f_qty"), {}}});
  auto vec = engine_.Execute(plan);
  auto novec = engine_.Execute(plan, scalar);
  ASSERT_TRUE(vec.ok());
  ASSERT_TRUE(novec.ok());
  ExpectSameRows(vec.value().rows, novec.value().rows);
  // The scalar run must model more cycles.
  EXPECT_GT(novec.value().stats.modeled_seconds,
            vec.value().stats.modeled_seconds);
}

TEST_F(EngineTest, StatsArePopulated) {
  auto scan = LogicalNode::Scan("facts", {"f_qty"});
  auto plan = LogicalNode::GroupBy(
      scan, {}, {{"s", AggFunc::kSum, Expr::Col("f_qty"), {}}});
  auto result = engine_.Execute(plan);
  ASSERT_TRUE(result.ok());
  const ExecutionStats& stats = result.value().stats;
  EXPECT_GT(stats.modeled_seconds, 0);
  EXPECT_GT(stats.wall_seconds, 0);
  EXPECT_EQ(stats.workload.scanned_rows, 20000u);
  EXPECT_FALSE(stats.steps.empty());
  EXPECT_FALSE(result.value().plan_text.empty());
}

TEST_F(EngineTest, UpdatesVisibleAfterApply) {
  // Baseline count of f_qty == 50.
  auto count_plan = LogicalNode::GroupBy(
      LogicalNode::Scan("facts", {"f_qty"},
                        {Predicate::CmpConst("f_qty", CmpOp::kEq, 50)}),
      {}, {{"n", AggFunc::kCount, nullptr, {}}});
  auto before = engine_.Execute(count_plan);
  ASSERT_TRUE(before.ok());
  const int64_t n_before = before.value().rows.num_rows() > 0
                               ? before.value().rows.Value(0, 0)
                               : 0;

  // Rewrite row 0 to qty 50 (keeping other columns).
  const storage::Table* t = engine_.GetTable("facts");
  std::vector<int64_t> row0;
  for (size_t c = 0; c < t->schema().num_fields(); ++c) {
    row0.push_back(t->partition(0).chunk(0).column(c).GetInt(0));
  }
  row0[4] = 50;  // f_qty
  ASSERT_OK(engine_.ApplyUpdate("facts", t->scn() + 1,
                                {storage::RowChange{0, row0}}));

  auto after = engine_.Execute(count_plan);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().rows.Value(0, 0), n_before + 1);
  // Tracker resolves the new version at a current SCN but not before.
  const storage::Tracker* tracker = engine_.tracker("facts");
  ASSERT_NE(tracker, nullptr);
  EXPECT_EQ(tracker->Resolve(t->scn(), 0, 4).value(), 50);
}

TEST_F(EngineTest, GroupByRuntimeRepartition) {
  // Force tiny partition budgets: every high-NDV partition exceeds the
  // estimate and must re-partition at runtime (Section 5.4), with
  // identical results.
  ExecOptions options;
  options.planner.low_ndv_threshold = 100;  // high-NDV path
  options.planner.groupby_max_partition_rows = 64;
  auto plan = LogicalNode::GroupBy(
      LogicalNode::Scan("facts", {"f_dim", "f_qty"}),
      {{"f_dim", Expr::Col("f_dim")}},
      {{"s", AggFunc::kSum, Expr::Col("f_qty"), {}},
       {"n", AggFunc::kCount, nullptr, {}}});
  auto repartitioned = engine_.Execute(plan, options);
  ASSERT_TRUE(repartitioned.ok()) << repartitioned.status().ToString();
  EXPECT_GT(repartitioned.value().stats.workload.groupby_repartitions, 0u);
  auto host_result = hostdb::VolcanoExecutor::Execute(plan, host_catalog_);
  ASSERT_TRUE(host_result.ok());
  ExpectSameRows(repartitioned.value().rows, host_result.value());
}

TEST_F(EngineTest, VacuumReclaimsSupersededVersions) {
  const storage::Table* t = engine_.GetTable("facts");
  std::vector<int64_t> row0;
  for (size_t c = 0; c < t->schema().num_fields(); ++c) {
    row0.push_back(t->partition(0).chunk(0).column(c).GetInt(0));
  }
  const uint64_t base = t->scn();
  ASSERT_OK(engine_.ApplyUpdate("facts", base + 1,
                                {storage::RowChange{7, row0}}));
  ASSERT_OK(engine_.ApplyUpdate("facts", base + 2,
                                {storage::RowChange{7, row0}}));
  // The base+1 version expired at base+2; with no query older than
  // base+2 it can be reclaimed.
  EXPECT_EQ(engine_.VacuumTrackers(base + 2), 1u);
  EXPECT_EQ(engine_.VacuumTrackers(base + 2), 0u);
}

TEST_F(EngineTest, FusedPipelineMatchesUnfused) {
  // The fused broadcast-probe pipeline must be row-identical to the
  // materialize/partition/join path on every join flavor, and must
  // move strictly fewer modeled DMS cycles (it skips materializing the
  // scan output and both partition passes).
  ExecOptions unfused;
  unfused.planner.enable_fusion = false;

  std::vector<LogicalPtr> plans;
  auto facts = LogicalNode::Scan("facts", {"f_dim", "f_qty"});
  auto dims = LogicalNode::Scan("dims", {"d_id", "d_class"});
  plans.push_back(LogicalNode::Join(dims, facts, {"d_id"}, {"f_dim"},
                                    {"d_class", "f_qty"}));
  auto filtered = LogicalNode::Scan(
      "facts", {"f_dim", "f_qty"},
      {Predicate::CmpConst("f_qty", CmpOp::kGe, 25)});
  plans.push_back(LogicalNode::Join(dims, filtered, {"d_id"}, {"f_dim"},
                                    {"d_class", "f_qty"},
                                    JoinType::kInner));
  plans.push_back(LogicalNode::Join(dims, facts, {"d_id"}, {"f_dim"},
                                    {"f_dim", "f_qty"}, JoinType::kSemi));
  plans.push_back(LogicalNode::Join(dims, facts, {"d_id"}, {"f_dim"},
                                    {"f_dim", "f_qty"}, JoinType::kAnti));
  // Left outer: the build side (left) is filtered far below the probe
  // side so the broadcast-cost gate admits it (32 cores re-reading the
  // build must cost less than the partition passes it replaces);
  // unmatched dims take nulls.
  auto small_facts = LogicalNode::Scan(
      "facts", {"f_dim", "f_qty"},
      {Predicate::CmpConst("f_id", CmpOp::kLt, 10)});
  plans.push_back(LogicalNode::Join(small_facts, dims, {"f_dim"}, {"d_id"},
                                    {"f_qty", "d_id", "d_class"},
                                    JoinType::kLeftOuter));

  for (const LogicalPtr& plan : plans) {
    auto fused_result = engine_.Execute(plan);
    ASSERT_TRUE(fused_result.ok()) << fused_result.status().ToString();
    auto unfused_result = engine_.Execute(plan, unfused);
    ASSERT_TRUE(unfused_result.ok()) << unfused_result.status().ToString();
    ASSERT_NE(fused_result.value().plan_text.find("PIPELINE"),
              std::string::npos)
        << fused_result.value().plan_text;
    ASSERT_EQ(unfused_result.value().plan_text.find("PIPELINE"),
              std::string::npos);
    ExpectSameRows(fused_result.value().rows, unfused_result.value().rows);
    EXPECT_LT(fused_result.value().stats.total_dms_cycles,
              unfused_result.value().stats.total_dms_cycles)
        << fused_result.value().plan_text;
  }
}

TEST_F(EngineTest, FusedJoinThenGroupBy) {
  // A breaker (group-by) downstream of a fused probe pipeline: the
  // pipeline materializes once, the group-by consumes it.
  auto facts = LogicalNode::Scan("facts", {"f_dim", "f_price", "f_qty"});
  auto dims = LogicalNode::Scan("dims", {"d_id", "d_class"});
  auto join = LogicalNode::Join(dims, facts, {"d_id"}, {"f_dim"},
                                {"d_class", "f_price", "f_qty"});
  auto plan = LogicalNode::GroupBy(
      join, {{"d_class", Expr::Col("d_class")}},
      {{"revenue", AggFunc::kSum,
        Expr::Mul(Expr::Col("f_price"), Expr::Col("f_qty")), {}}});
  auto result = engine_.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result.value().plan_text.find("PIPELINE"), std::string::npos)
      << result.value().plan_text;
  auto host_result = hostdb::VolcanoExecutor::Execute(plan, host_catalog_);
  ASSERT_TRUE(host_result.ok());
  ExpectSameRows(result.value().rows, host_result.value());
}

TEST_F(EngineTest, EmptyResultQueries) {
  CheckAgainstVolcano(LogicalNode::Scan(
      "facts", {"f_id"}, {Predicate::CmpConst("f_id", CmpOp::kLt, -1)}));
  // Join with an empty side.
  auto none = LogicalNode::Scan(
      "facts", {"f_dim"}, {Predicate::CmpConst("f_id", CmpOp::kLt, -1)});
  auto dims = LogicalNode::Scan("dims", {"d_id"});
  CheckAgainstVolcano(
      LogicalNode::Join(none, dims, {"f_dim"}, {"d_id"}, {"d_id"}));
}

}  // namespace
}  // namespace rapid::core
