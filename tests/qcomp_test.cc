// Tests for QComp: selectivity estimation, partition-scheme
// optimization (Section 5.3 heuristics), task formation (Section 5.2,
// Figure 4), the cost estimator, and physical planning decisions.

#include <gtest/gtest.h>

#include "core/qcomp/cost_model.h"
#include "core/qcomp/partition_scheme.h"
#include "core/qcomp/planner.h"
#include "core/qcomp/task_formation.h"
#include "storage/loader.h"
#include "tests/test_util.h"

namespace rapid::core {
namespace {

using primitives::CmpOp;

// ---- Selectivity estimation ----------------------------------------------

TEST(SelectivityTest, RangeFractions) {
  storage::ColumnStats stats;
  stats.min = 0;
  stats.max = 99;
  stats.ndv = 100;
  EXPECT_NEAR(EstimateSelectivity(
                  stats, Predicate::CmpConst("c", CmpOp::kLt, 50)),
              0.5, 0.01);
  EXPECT_NEAR(EstimateSelectivity(
                  stats, Predicate::CmpConst("c", CmpOp::kGt, 90)),
              0.09, 0.01);
  EXPECT_NEAR(EstimateSelectivity(stats, Predicate::Between("c", 10, 19)),
              0.1, 0.01);
  EXPECT_NEAR(EstimateSelectivity(
                  stats, Predicate::CmpConst("c", CmpOp::kEq, 5)),
              0.01, 0.001);
  // Out-of-range constants clamp to 0 / 1.
  EXPECT_DOUBLE_EQ(EstimateSelectivity(
                       stats, Predicate::CmpConst("c", CmpOp::kLt, -5)),
                   0.0);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(
                       stats, Predicate::CmpConst("c", CmpOp::kGt, -5)),
                   1.0);
}

TEST(SelectivityTest, InSetUsesNdv) {
  storage::ColumnStats stats;
  stats.min = 0;
  stats.max = 9;
  stats.ndv = 10;
  BitVector codes(10);
  codes.Set(1);
  codes.Set(2);
  codes.Set(3);
  EXPECT_NEAR(
      EstimateSelectivity(stats, Predicate::InSet("c", codes)), 0.3, 0.01);
}

// ---- Partition-scheme optimization ----------------------------------------

TEST(PartitionSchemeTest, RequiredPartitionsFromDataAndParallelism) {
  PartitionPlanInput in;
  in.total_rows = 1000;
  in.row_bytes = 8;
  in.dmem_budget_bytes = 16 * 1024;
  in.min_partitions = 32;
  // Data fits easily; parallelism dictates 32.
  EXPECT_EQ(RequiredPartitions(in), 32);
  // 10M rows x 8B / 16KiB = ~4883 -> next pow2 = 8192.
  in.total_rows = 10'000'000;
  EXPECT_EQ(RequiredPartitions(in), 8192);
}

TEST(PartitionSchemeTest, SmallTargetIsSingleHardwareRound) {
  PartitionPlanInput in;
  in.total_rows = 10000;
  in.row_bytes = 8;
  ASSERT_OK_AND_ASSIGN(SchemeChoice choice,
                       OptimizePartitionScheme(in, dpu::CostParams::Default()));
  EXPECT_EQ(choice.target_fanout, 32);
  ASSERT_EQ(choice.scheme.rounds.size(), 1u);
  EXPECT_EQ(choice.scheme.rounds[0].fanout, 32);
  EXPECT_EQ(choice.scheme.rounds[0].hw_fanout, 32);
}

TEST(PartitionSchemeTest, LargeTargetMinimizesRounds) {
  // 1024 partitions fit in one HW x SW pass (32 x 32).
  PartitionPlanInput in;
  in.total_rows = 2'000'000;
  in.row_bytes = 8;  // -> 977 -> 1024 partitions
  ASSERT_OK_AND_ASSIGN(SchemeChoice choice,
                       OptimizePartitionScheme(in, dpu::CostParams::Default()));
  EXPECT_EQ(choice.target_fanout, 1024);
  EXPECT_EQ(choice.scheme.NumRounds(), 1u);
  EXPECT_EQ(choice.scheme.rounds[0].fanout, 1024);
}

TEST(PartitionSchemeTest, BeyondOnePassUsesMultipleRounds) {
  PartitionPlanInput in;
  in.total_rows = 80'000'000;
  in.row_bytes = 8;  // ~39063 -> 65536 partitions > 1024 max per round
  ASSERT_OK_AND_ASSIGN(SchemeChoice choice,
                       OptimizePartitionScheme(in, dpu::CostParams::Default()));
  EXPECT_EQ(choice.target_fanout, 65536);
  EXPECT_GE(choice.scheme.NumRounds(), 2u);
  int fanout = 1;
  for (const PartitionRound& r : choice.scheme.rounds) {
    EXPECT_EQ(r.fanout & (r.fanout - 1), 0);  // heuristic (a): pow2
    fanout *= r.fanout;
  }
  EXPECT_EQ(fanout, 65536);
}

TEST(PartitionSchemeTest, CostGrowsWithRounds) {
  PartitionPlanInput in;
  in.total_rows = 1'000'000;
  in.row_bytes = 8;
  const dpu::CostParams& p = dpu::CostParams::Default();
  PartitionScheme one;
  one.rounds.push_back(PartitionRound{64, 32});
  PartitionScheme two;
  two.rounds.push_back(PartitionRound{8, 8});
  two.rounds.push_back(PartitionRound{8, 1});
  EXPECT_LT(SchemeCycles(one, in, p), SchemeCycles(two, in, p));
}

TEST(PartitionSchemeTest, SymmetrySelectsBalancedFactors) {
  // Among equal-cost 2-round factorizations of 4096 (e.g. 64x64 vs
  // 1024x4), the symmetric one must win near ties. Force 2 rounds by
  // capping the per-round fan-out at 64.
  PartitionPlanInput in;
  in.total_rows = 8'000'000;
  in.row_bytes = 8;  // -> 4096 partitions
  in.max_round_fanout = 64;
  in.max_sw_fanout = 64;
  ASSERT_OK_AND_ASSIGN(SchemeChoice choice,
                       OptimizePartitionScheme(in, dpu::CostParams::Default()));
  ASSERT_EQ(choice.scheme.NumRounds(), 2u);
  EXPECT_EQ(choice.scheme.rounds[0].fanout, 64);
  EXPECT_EQ(choice.scheme.rounds[1].fanout, 64);
}

TEST(PartitionSchemeTest, InfeasibleTargetRejected) {
  PartitionPlanInput in;
  in.total_rows = 1;
  in.row_bytes = 8;
  in.min_partitions = 1;  // target 1: nothing to do
  EXPECT_FALSE(OptimizePartitionScheme(in, dpu::CostParams::Default()).ok());
}

// ---- Task formation --------------------------------------------------------

TEST(TaskFormationTest, MaxTileRespectsDmem) {
  std::vector<OpProfile> ops = {
      {"scan", 64, 16, 1.0, 16},
      {"filter", 64, 24, 0.25, 16},
  };
  // 32 KiB budget: 40 B/row -> 64..512 rows fit, 1024 overflows
  // (40*1024 + 128 > 32768).
  ASSERT_OK_AND_ASSIGN(size_t tile, MaxTileRows(ops, 0, 1, 32 * 1024));
  EXPECT_EQ(tile, 512u);
  // Oversized state cannot fit at all.
  std::vector<OpProfile> fat = {{"huge", 40000, 8, 1.0, 8}};
  EXPECT_FALSE(MaxTileRows(fat, 0, 0, 32 * 1024).ok());
}

TEST(TaskFormationTest, Figure4PrefersSingleFusedTask) {
  // The paper's aggregation example: scan -> filter (25% selectivity)
  // -> aggregate over 1M rows of 4-byte columns. Fusing everything
  // avoids materializing intermediates, so the single-task formation
  // (Figure 4c) must win.
  std::vector<OpProfile> ops = {
      {"scan", 64, 8, 1.0, 4},
      {"filter", 64, 12, 0.25, 4},
      {"agg", 64, 8, 0.0, 8},
  };
  ASSERT_OK_AND_ASSIGN(
      TaskFormation best,
      FormTasks(ops, 32 * 1024, 1'000'000, 4, dpu::CostParams::Default()));
  ASSERT_EQ(best.tasks.size(), 1u);
  EXPECT_EQ(best.tasks[0].first_op, 0u);
  EXPECT_EQ(best.tasks[0].last_op, 2u);

  // And the explicit candidates rank as the paper's figure shows:
  // (c) one task < (b) filter+agg fused < (a) all separate.
  const dpu::CostParams& p = dpu::CostParams::Default();
  const double c_all =
      FormationCycles(ops, {{0, 2, 256}}, 1'000'000, 4, p).value();
  const double b_two = FormationCycles(ops, {{0, 0, 512}, {1, 2, 512}},
                                       1'000'000, 4, p)
                           .value();
  const double a_three =
      FormationCycles(ops, {{0, 0, 1024}, {1, 1, 1024}, {2, 2, 1024}},
                      1'000'000, 4, p)
          .value();
  EXPECT_LT(c_all, b_two);
  EXPECT_LT(b_two, a_three);
}

TEST(TaskFormationTest, SplitsWhenOpsDoNotFitTogether) {
  // Two operators that only fit DMEM separately force a two-task
  // formation.
  std::vector<OpProfile> ops = {
      {"a", 14000, 64, 1.0, 8},
      {"b", 14000, 64, 1.0, 8},
  };
  ASSERT_OK_AND_ASSIGN(
      TaskFormation best,
      FormTasks(ops, 32 * 1024, 100'000, 8, dpu::CostParams::Default()));
  EXPECT_EQ(best.tasks.size(), 2u);
}

TEST(TaskFormationTest, EmptyChainRejected) {
  EXPECT_FALSE(
      FormTasks({}, 32 * 1024, 100, 8, dpu::CostParams::Default()).ok());
}

TEST(TaskFormationTest, ComputeStreamOverlapsTransfer) {
  // With cycles_per_row = 0 (the default) the formation cost is pure
  // transfer; a compute-bound profile raises it, and with double
  // buffering the task costs max(transfer, compute), so doubling an
  // already-dominant compute rate doubles the bound.
  const dpu::CostParams& p = dpu::CostParams::Default();
  std::vector<OpProfile> transfer_only = {{"scan", 64, 8, 1.0, 4, 0.0}};
  std::vector<OpProfile> compute_heavy = {{"scan", 64, 8, 1.0, 4, 100.0}};
  std::vector<OpProfile> compute_heavier = {{"scan", 64, 8, 1.0, 4, 200.0}};
  const double t0 =
      FormationCycles(transfer_only, {{0, 0, 1024}}, 100'000, 4, p).value();
  const double t1 =
      FormationCycles(compute_heavy, {{0, 0, 1024}}, 100'000, 4, p).value();
  const double t2 =
      FormationCycles(compute_heavier, {{0, 0, 1024}}, 100'000, 4, p).value();
  EXPECT_LT(t0, t1);
  // Per-tile setup is common to both; the max(transfer, compute) term
  // exactly doubles.
  EXPECT_NEAR(t2 - t1, 100.0 * 100'000, 1e-6);
  // A faster SIMD kernel (divided rate) pulls the formation cost back
  // toward the transfer bound.
  std::vector<OpProfile> vectorized = {{"scan", 64, 8, 1.0, 4, 100.0 / 8}};
  const double tv =
      FormationCycles(vectorized, {{0, 0, 1024}}, 100'000, 4, p).value();
  EXPECT_LT(tv, t1);
}

TEST(CostEstimatorTest, SimdMultipliersReduceComputeBoundCosts) {
  dpu::DpuConfig config;
  dpu::CostParams scalar = dpu::CostParams::Default();
  dpu::CostParams simd = scalar;
  simd.simd.filter = 8.0;
  simd.simd.agg = 4.0;
  CostEstimator e_scalar(config, scalar);
  CostEstimator e_simd(config, simd);
  // Many conjuncts make the scan compute-bound, so the filter
  // multiplier must show up in the estimate.
  EXPECT_LT(e_simd.ScanSeconds(1'000'000, 4, 8, 0.9),
            e_scalar.ScanSeconds(1'000'000, 4, 8, 0.9));
  EXPECT_LT(e_simd.GroupBySeconds(1'000'000, 100, 4, false),
            e_scalar.GroupBySeconds(1'000'000, 100, 4, false));
}

// ---- Cost estimator --------------------------------------------------------

TEST(CostEstimatorTest, MonotoneInInputSize) {
  CostEstimator est(dpu::DpuConfig::Default(), dpu::CostParams::Default());
  EXPECT_LT(est.ScanSeconds(1000, 16, 1, 0.5),
            est.ScanSeconds(1'000'000, 16, 1, 0.5));
  EXPECT_LT(est.JoinSeconds(1000, 1000, 16, 1),
            est.JoinSeconds(100'000, 100'000, 16, 1));
  EXPECT_LT(est.JoinSeconds(1000, 1000, 16, 1),
            est.JoinSeconds(1000, 1000, 16, 3));
  EXPECT_LT(est.GroupBySeconds(1000, 10, 2, true),
            est.GroupBySeconds(1'000'000, 10, 2, true));
  EXPECT_LT(est.SortSeconds(1000, 8), est.SortSeconds(100'000, 8));
}

// ---- Planner decisions -----------------------------------------------------

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<storage::ColumnSpec> specs = {
        {"id", storage::ColumnKind::kInt64},
        {"grp", storage::ColumnKind::kInt32},
        {"val", storage::ColumnKind::kInt32}};
    std::vector<storage::ColumnData> data(3);
    for (int i = 0; i < 10000; ++i) {
      data[0].ints.push_back(i);            // ndv 10000
      data[1].ints.push_back(i % 4);        // ndv 4
      data[2].ints.push_back(i % 100);      // ndv 100
    }
    auto table = storage::LoadTable("t", specs, data);
    ASSERT_TRUE(table.ok());
    catalog_.emplace("t", std::move(table).value());
  }

  Result<PhysicalPlan> Plan(const LogicalPtr& node) {
    Planner planner(dpu::DpuConfig::Default(), dpu::CostParams::Default());
    return planner.Plan(node, catalog_);
  }

  Catalog catalog_;
};

TEST_F(PlannerTest, RidListChosenBelowOneThirtySecond) {
  // Selectivity 1/10000 -> RID list; 1/2 -> bit vector (Section 5.4).
  auto selective = LogicalNode::Scan(
      "t", {"val"}, {Predicate::CmpConst("id", CmpOp::kEq, 5)});
  ASSERT_OK_AND_ASSIGN(PhysicalPlan p1, Plan(selective));
  EXPECT_NE(p1.steps[0]->Describe().find(" rid"), std::string::npos);

  auto broad = LogicalNode::Scan(
      "t", {"val"}, {Predicate::CmpConst("val", CmpOp::kLt, 50)});
  ASSERT_OK_AND_ASSIGN(PhysicalPlan p2, Plan(broad));
  EXPECT_NE(p2.steps[0]->Describe().find(" bv"), std::string::npos);
}

TEST_F(PlannerTest, PredicatesOrderedMostSelectiveFirst) {
  auto scan = LogicalNode::Scan(
      "t", {"val"},
      {Predicate::CmpConst("val", CmpOp::kLt, 90),   // ~0.9
       Predicate::CmpConst("id", CmpOp::kLt, 100)}); // ~0.01
  ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, Plan(scan));
  // Execution must apply the id predicate first; observable through
  // the step description only indirectly, so execute and compare
  // results with a reference instead (ordering is a perf concern; the
  // planner test just checks the plan builds with both predicates).
  EXPECT_NE(plan.steps[0]->Describe().find("preds=2"), std::string::npos);
}

TEST_F(PlannerTest, GroupByStrategyByNdv) {
  // grp has 4 distinct values -> low NDV (on-the-fly + merge).
  auto low = LogicalNode::GroupBy(
      LogicalNode::Scan("t", {"grp", "val"}),
      {{"grp", Expr::Col("grp")}},
      {{"s", AggFunc::kSum, Expr::Col("val"), {}}});
  ASSERT_OK_AND_ASSIGN(PhysicalPlan p1, Plan(low));
  bool found_low = false;
  for (const auto& s : p1.steps) {
    if (s->Describe().find("low-ndv") != std::string::npos) found_low = true;
  }
  EXPECT_TRUE(found_low);

  // id has 10000 distinct values -> high NDV with a partition step.
  Planner planner(dpu::DpuConfig::Default(), dpu::CostParams::Default(),
                  PlannerOptions{.low_ndv_threshold = 1000});
  auto high = LogicalNode::GroupBy(
      LogicalNode::Scan("t", {"id", "val"}), {{"id", Expr::Col("id")}},
      {{"s", AggFunc::kSum, Expr::Col("val"), {}}});
  ASSERT_OK_AND_ASSIGN(PhysicalPlan p2, planner.Plan(high, catalog_));
  bool found_partition = false;
  bool found_high = false;
  for (const auto& s : p2.steps) {
    if (s->Describe().find("PARTITION") != std::string::npos) {
      found_partition = true;
    }
    if (s->Describe().find("high-ndv") != std::string::npos) {
      found_high = true;
    }
  }
  EXPECT_TRUE(found_partition);
  EXPECT_TRUE(found_high);
}

TEST_F(PlannerTest, JoinBuildsOnSmallerSide) {
  // Left side is the full table, right side is filtered to ~1%;
  // the planner must build on the right side. Verify via the
  // partition step order: the build partition step comes first.
  // (Fusion disabled: this test pins the partitioned-join shape.)
  auto big = LogicalNode::Scan("t", {"id", "val"});
  auto small = LogicalNode::Scan(
      "t", {"id", "grp"}, {Predicate::CmpConst("id", CmpOp::kLt, 100)});
  auto join = LogicalNode::Join(big, small, {"id"}, {"id"}, {"val", "grp"});
  Planner planner(dpu::DpuConfig::Default(), dpu::CostParams::Default(),
                  PlannerOptions{.enable_fusion = false});
  ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, planner.Plan(join, catalog_));
  // Steps: scan(big)=0, scan(small)=1, partition(build)=2,
  // partition(probe)=3, join=4. Build partition must reference step 1.
  ASSERT_GE(plan.steps.size(), 5u);
  EXPECT_NE(plan.steps[2]->Describe().find("PARTITION #1"),
            std::string::npos)
      << plan.Describe();
  EXPECT_NE(plan.steps[3]->Describe().find("PARTITION #0"),
            std::string::npos);
}

TEST_F(PlannerTest, MissingTableFails) {
  auto scan = LogicalNode::Scan("nope", {"x"});
  EXPECT_FALSE(Plan(scan).ok());
}

TEST_F(PlannerTest, FilterOverScanFuses) {
  auto plan_node = LogicalNode::Filter(
      LogicalNode::Scan("t", {"val"}),
      {Predicate::CmpConst("val", CmpOp::kLt, 10)});
  ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, Plan(plan_node));
  EXPECT_EQ(plan.steps.size(), 1u);  // fused into the scan task
  EXPECT_NE(plan.steps[0]->Describe().find("preds=1"), std::string::npos);
}

// ---- Pipeline fusion -------------------------------------------------------

TEST_F(PlannerTest, SmallBuildJoinFusesIntoPipeline) {
  // Build side is ~100 estimated rows: the fusion pass must collapse
  // partition/partition/join into a broadcast probe stage riding the
  // probe-side scan pipeline.
  auto big = LogicalNode::Scan("t", {"id", "val"});
  auto small = LogicalNode::Scan(
      "t", {"id", "grp"}, {Predicate::CmpConst("id", CmpOp::kLt, 100)});
  auto join = LogicalNode::Join(big, small, {"id"}, {"id"}, {"val", "grp"});
  ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, Plan(join));
  const std::string desc = plan.Describe();
  EXPECT_NE(desc.find("PIPELINE"), std::string::npos) << desc;
  EXPECT_NE(desc.find("probe build=#"), std::string::npos) << desc;
  EXPECT_EQ(desc.find("PARTITION"), std::string::npos) << desc;
  EXPECT_EQ(desc.find("HASHJOIN"), std::string::npos) << desc;
  // Build-side producer + fused pipeline.
  EXPECT_EQ(plan.steps.size(), 2u) << desc;
  EXPECT_EQ(plan.root, 1);
}

TEST_F(PlannerTest, LargeBuildJoinStaysPartitioned) {
  // Same join but the gate is lowered below the build estimate: the
  // partitioned join shape must survive.
  auto big = LogicalNode::Scan("t", {"id", "val"});
  auto small = LogicalNode::Scan(
      "t", {"id", "grp"}, {Predicate::CmpConst("id", CmpOp::kLt, 100)});
  auto join = LogicalNode::Join(big, small, {"id"}, {"id"}, {"val", "grp"});
  Planner planner(dpu::DpuConfig::Default(), dpu::CostParams::Default(),
                  PlannerOptions{.fusion_max_build_rows = 10});
  ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, planner.Plan(join, catalog_));
  const std::string desc = plan.Describe();
  EXPECT_NE(desc.find("PARTITION"), std::string::npos) << desc;
  EXPECT_NE(desc.find("HASHJOIN"), std::string::npos) << desc;
  EXPECT_EQ(desc.find("PIPELINE"), std::string::npos) << desc;
}

TEST_F(PlannerTest, SkewKnobsDisableFusion) {
  auto big = LogicalNode::Scan("t", {"id", "val"});
  auto small = LogicalNode::Scan(
      "t", {"id", "grp"}, {Predicate::CmpConst("id", CmpOp::kLt, 100)});
  auto join = LogicalNode::Join(big, small, {"id"}, {"id"}, {"val", "grp"});
  Planner planner(dpu::DpuConfig::Default(), dpu::CostParams::Default(),
                  PlannerOptions{.force_join_fanout = 8});
  ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, planner.Plan(join, catalog_));
  EXPECT_EQ(plan.Describe().find("PIPELINE"), std::string::npos)
      << plan.Describe();
}

TEST_F(PlannerTest, FusionStopsAtPipelineBreakers) {
  // Sort and group-by are barriers: the chain beneath fuses, the
  // breaker stays its own step and ids stay consecutive.
  auto agg = LogicalNode::GroupBy(
      LogicalNode::Filter(LogicalNode::Scan("t", {"grp", "val"}),
                          {Predicate::CmpConst("val", CmpOp::kLt, 50)}),
      {{"grp", Expr::Col("grp")}},
      {{"s", AggFunc::kSum, Expr::Col("val"), {}}});
  auto sorted = LogicalNode::Sort(agg, {{"grp", true}});
  ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, Plan(sorted));
  const std::string desc = plan.Describe();
  EXPECT_NE(desc.find("GROUPBY"), std::string::npos) << desc;
  EXPECT_NE(desc.find("SORT"), std::string::npos) << desc;
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    EXPECT_EQ(plan.steps[i]->id(), static_cast<int>(i));
  }
  EXPECT_EQ(plan.root, static_cast<int>(plan.steps.size()) - 1);
}

}  // namespace
}  // namespace rapid::core
