// Unit tests for the storage model: types/schemas, vectors, DSB
// encoding, dictionaries, RLE, tables/statistics, the loader, and
// SCN-versioned update tracking.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/data_type.h"
#include "storage/dictionary.h"
#include "storage/dsb.h"
#include "storage/loader.h"
#include "storage/rle.h"
#include "storage/table.h"
#include "storage/update.h"
#include "storage/vector.h"
#include "tests/test_util.h"

namespace rapid::storage {
namespace {

// ---- Types / Schema --------------------------------------------------------

TEST(DataTypeTest, Widths) {
  EXPECT_EQ(WidthOf(DataType::kInt8), 1u);
  EXPECT_EQ(WidthOf(DataType::kInt16), 2u);
  EXPECT_EQ(WidthOf(DataType::kInt32), 4u);
  EXPECT_EQ(WidthOf(DataType::kInt64), 8u);
  EXPECT_EQ(WidthOf(DataType::kDecimal), 8u);
  EXPECT_EQ(WidthOf(DataType::kDate), 4u);
  EXPECT_EQ(WidthOf(DataType::kDictCode), 4u);
}

TEST(SchemaTest, IndexOfAndRowWidth) {
  Schema schema({{"a", DataType::kInt32},
                 {"b", DataType::kDecimal},
                 {"c", DataType::kInt8}});
  ASSERT_OK_AND_ASSIGN(size_t idx, schema.IndexOf("b"));
  EXPECT_EQ(idx, 1u);
  EXPECT_FALSE(schema.IndexOf("missing").ok());
  EXPECT_EQ(schema.RowWidth(), 13u);
}

// ---- Vector ----------------------------------------------------------------

TEST(VectorTest, TypedAccess) {
  Vector v(DataType::kInt16, 10);
  v.Append(42);
  v.Append(-7);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.GetInt(0), 42);
  EXPECT_EQ(v.GetInt(1), -7);
  EXPECT_EQ(v.Data<int16_t>()[0], 42);
}

TEST(VectorTest, AllPhysicalTypesRoundTrip) {
  for (DataType t : {DataType::kInt8, DataType::kInt16, DataType::kInt32,
                     DataType::kInt64, DataType::kDecimal, DataType::kDate,
                     DataType::kDictCode}) {
    Vector v(t, 4);
    const int64_t value = t == DataType::kInt8 ? 17 : 1234;
    v.Append(value);
    EXPECT_EQ(v.GetInt(0), value) << NameOf(t);
  }
}

TEST(VectorTest, CloneIsDeep) {
  Vector v(DataType::kInt64, 4);
  v.Append(1);
  v.set_dsb_scale(3);
  Vector c = v.Clone();
  c.SetInt(0, 99);
  EXPECT_EQ(v.GetInt(0), 1);
  EXPECT_EQ(c.GetInt(0), 99);
  EXPECT_EQ(c.dsb_scale(), 3);
}

// ---- DSB -------------------------------------------------------------------

TEST(DsbTest, EncodesCommonScale) {
  // Values need scales {2, 1, 0}; the common scale is the max (2).
  DsbColumn col = DsbEncode({1.25, 3.5, 7.0});
  EXPECT_EQ(col.scale, 2);
  EXPECT_EQ(col.mantissas, (std::vector<int64_t>{125, 350, 700}));
  EXPECT_TRUE(col.exceptions.empty());
}

TEST(DsbTest, RoundTripExactDecimals) {
  const std::vector<double> values = {0.0, -1.5, 12345.6789, 0.000001, -0.07};
  DsbColumn col = DsbEncode(values);
  EXPECT_EQ(DsbDecode(col), values);
}

TEST(DsbTest, IrrationalFractionBecomesException) {
  // 1/3 cannot be expressed at any decimal scale (paper's example).
  const double third = 1.0 / 3.0;
  DsbColumn col = DsbEncode({1.5, third});
  EXPECT_EQ(col.scale, 1);
  EXPECT_TRUE(col.IsException(1));
  EXPECT_FALSE(col.IsException(0));
  EXPECT_EQ(col.exceptions.size(), 1u);
  EXPECT_DOUBLE_EQ(col.DecodeRow(1), third);
  EXPECT_EQ(DsbDecode(col), (std::vector<double>{1.5, third}));
}

TEST(DsbTest, HugeValueAtCommonScaleBecomesException) {
  // 1e17 fits at scale 0 but overflows int64 at scale 6.
  DsbColumn col = DsbEncode({1e17, 0.000001});
  EXPECT_EQ(col.scale, 6);
  EXPECT_TRUE(col.IsException(0));
  EXPECT_DOUBLE_EQ(col.DecodeRow(0), 1e17);
}

TEST(DsbTest, RescalePreservesValue) {
  ASSERT_OK_AND_ASSIGN(int64_t m, DsbRescale(125, 2, 5));
  EXPECT_EQ(m, 125000);
  EXPECT_FALSE(DsbRescale(1, 5, 2).ok());  // precision loss forbidden
  EXPECT_FALSE(DsbRescale(INT64_MAX / 10, 0, 2).ok());  // overflow
}

TEST(DsbTest, Pow10Table) {
  EXPECT_EQ(Pow10(0), 1);
  EXPECT_EQ(Pow10(2), 100);
  EXPECT_EQ(Pow10(18), 1000000000000000000LL);
}

TEST(DsbTest, RandomCentsRoundTripProperty) {
  // The dominant production shape: integers / 100.
  Rng rng(11);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(static_cast<double>(rng.NextInRange(-10000000, 10000000)) /
                     100.0);
  }
  DsbColumn col = DsbEncode(values);
  EXPECT_TRUE(col.exceptions.empty());
  EXPECT_LE(col.scale, 2);
  EXPECT_EQ(DsbDecode(col), values);
}

// ---- Dictionary ------------------------------------------------------------

TEST(DictionaryTest, InsertLookupDecode) {
  Dictionary dict;
  const uint32_t a = dict.GetOrInsert("apple");
  const uint32_t b = dict.GetOrInsert("banana");
  EXPECT_EQ(dict.GetOrInsert("apple"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.size(), 2u);
  ASSERT_OK_AND_ASSIGN(uint32_t found, dict.Lookup("banana"));
  EXPECT_EQ(found, b);
  EXPECT_FALSE(dict.Lookup("cherry").ok());
  EXPECT_EQ(dict.Decode(a), "apple");
}

TEST(DictionaryTest, RangeLookup) {
  Dictionary dict;
  dict.GetOrInsert("delta");
  dict.GetOrInsert("alpha");
  dict.GetOrInsert("charlie");
  dict.GetOrInsert("bravo");
  // alpha..charlie inclusive.
  BitVector codes = dict.RangeLookup("alpha", true, "charlie", true);
  EXPECT_EQ(codes.CountOnes(), 3u);
  EXPECT_TRUE(codes.Test(dict.Lookup("alpha").value()));
  EXPECT_TRUE(codes.Test(dict.Lookup("bravo").value()));
  EXPECT_TRUE(codes.Test(dict.Lookup("charlie").value()));
  EXPECT_FALSE(codes.Test(dict.Lookup("delta").value()));
  // Unbounded below.
  BitVector below = dict.RangeLookup("", false, "bravo", true);
  EXPECT_EQ(below.CountOnes(), 2u);
  // Unbounded above.
  BitVector above = dict.RangeLookup("charlie", true, "", false);
  EXPECT_EQ(above.CountOnes(), 2u);
}

TEST(DictionaryTest, PrefixLookup) {
  Dictionary dict;
  dict.GetOrInsert("PROMO BRUSHED TIN");
  dict.GetOrInsert("STANDARD TIN");
  dict.GetOrInsert("PROMO PLATED STEEL");
  dict.GetOrInsert("PRO");
  BitVector promo = dict.PrefixLookup("PROMO");
  EXPECT_EQ(promo.CountOnes(), 2u);
  EXPECT_TRUE(promo.Test(dict.Lookup("PROMO BRUSHED TIN").value()));
  EXPECT_TRUE(promo.Test(dict.Lookup("PROMO PLATED STEEL").value()));
  BitVector pro = dict.PrefixLookup("PRO");
  EXPECT_EQ(pro.CountOnes(), 3u);
}

TEST(DictionaryTest, UpdatableAfterLoad) {
  // The dictionary supports updates: new values appended later keep
  // existing codes stable and remain range-searchable (Section 4.2).
  Dictionary dict;
  const uint32_t m = dict.GetOrInsert("mango");
  EXPECT_TRUE(dict.IsOrderPreserving());  // single entry
  const uint32_t a = dict.GetOrInsert("apricot");
  EXPECT_EQ(dict.Lookup("mango").value(), m);
  EXPECT_FALSE(dict.IsOrderPreserving());  // apricot < mango, code higher
  BitVector r = dict.RangeLookup("a", true, "m", true);
  EXPECT_TRUE(r.Test(a));
  EXPECT_FALSE(r.Test(m));
}

TEST(DictionaryTest, OrderPreservingWhenInsertedSorted) {
  Dictionary dict;
  dict.GetOrInsert("a");
  dict.GetOrInsert("b");
  dict.GetOrInsert("c");
  EXPECT_TRUE(dict.IsOrderPreserving());
}

// ---- RLE -------------------------------------------------------------------

TEST(RleTest, EncodeDecodeRoundTrip) {
  const std::vector<int64_t> values = {5, 5, 5, 1, 2, 2, 9};
  RleColumn col = RleEncode(values.data(), values.size());
  EXPECT_EQ(col.runs.size(), 4u);
  EXPECT_EQ(RleDecode(col), values);
}

TEST(RleTest, RandomAccess) {
  const std::vector<int64_t> values = {7, 7, 3, 3, 3, 8};
  RleColumn col = RleEncode(values.data(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(RleValueAt(col, i), values[i]) << i;
  }
}

TEST(RleTest, ProfitabilityDecision) {
  std::vector<int64_t> runs(1000, 42);            // one run: profitable
  std::vector<int64_t> unique(1000);
  for (size_t i = 0; i < 1000; ++i) unique[i] = static_cast<int64_t>(i);
  EXPECT_TRUE(RleIsProfitable(RleEncode(runs.data(), 1000), 8));
  EXPECT_FALSE(RleIsProfitable(RleEncode(unique.data(), 1000), 8));
}

TEST(RleTest, EmptyInput) {
  RleColumn col = RleEncode(nullptr, 0);
  EXPECT_TRUE(col.runs.empty());
  EXPECT_TRUE(RleDecode(col).empty());
}

TEST(RleTest, RandomRoundTripProperty) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int64_t> values;
    for (int i = 0; i < 500; ++i) {
      values.insert(values.end(), 1 + rng.NextBounded(5),
                    static_cast<int64_t>(rng.NextBounded(10)));
    }
    RleColumn col = RleEncode(values.data(), values.size());
    EXPECT_EQ(RleDecode(col), values);
    EXPECT_EQ(col.num_rows, values.size());
  }
}

// ---- Loader / Table --------------------------------------------------------

std::pair<std::vector<ColumnSpec>, std::vector<ColumnData>> SampleTable() {
  std::vector<ColumnSpec> specs = {{"id", ColumnKind::kInt64},
                                   {"price", ColumnKind::kDecimal},
                                   {"city", ColumnKind::kString},
                                   {"day", ColumnKind::kDate}};
  std::vector<ColumnData> data(4);
  const char* cities[] = {"basel", "zurich", "bern"};
  for (int i = 0; i < 100; ++i) {
    data[0].ints.push_back(i);
    data[1].decimals.push_back(static_cast<double>(i) * 0.25);
    data[2].strings.push_back(cities[i % 3]);
    data[3].ints.push_back(10000 + i);
  }
  return {specs, data};
}

TEST(LoaderTest, LayoutFollowsOptions) {
  auto [specs, data] = SampleTable();
  LoadOptions opts;
  opts.rows_per_chunk = 16;
  opts.num_partitions = 2;
  ASSERT_OK_AND_ASSIGN(Table table, LoadTable("t", specs, data, opts));
  EXPECT_EQ(table.num_rows(), 100u);
  EXPECT_EQ(table.num_partitions(), 2u);
  // ceil(100/16) = 7 chunks dealt round-robin: 4 + 3.
  EXPECT_EQ(table.partition(0).num_chunks(), 4u);
  EXPECT_EQ(table.partition(1).num_chunks(), 3u);
  EXPECT_EQ(table.rows_per_chunk(), 16u);
}

TEST(LoaderTest, EncodesDictionaryAndDecimal) {
  auto [specs, data] = SampleTable();
  ASSERT_OK_AND_ASSIGN(Table table, LoadTable("t", specs, data));
  // Dictionary codes assigned in first-seen order.
  const Dictionary* dict = table.dictionary(2);
  ASSERT_NE(dict, nullptr);
  EXPECT_EQ(dict->Lookup("basel").value(), 0u);
  EXPECT_EQ(dict->Lookup("zurich").value(), 1u);
  EXPECT_EQ(dict->Lookup("bern").value(), 2u);
  // Decimal scale: 0.25 needs scale 2.
  EXPECT_EQ(table.stats(1).dsb_scale, 2);
  EXPECT_EQ(table.partition(0).chunk(0).column(1).GetInt(1), 25);  // 0.25
}

TEST(LoaderTest, StatsComputed) {
  auto [specs, data] = SampleTable();
  ASSERT_OK_AND_ASSIGN(Table table, LoadTable("t", specs, data));
  EXPECT_EQ(table.stats(0).min, 0);
  EXPECT_EQ(table.stats(0).max, 99);
  EXPECT_EQ(table.stats(0).ndv, 100u);
  EXPECT_EQ(table.stats(2).ndv, 3u);  // three cities
}

TEST(LoaderTest, RejectsMismatchedColumns) {
  auto [specs, data] = SampleTable();
  data[1].decimals.pop_back();
  EXPECT_FALSE(LoadTable("t", specs, data).ok());
}

TEST(LoaderTest, RejectsInexactDecimals) {
  std::vector<ColumnSpec> specs = {{"x", ColumnKind::kDecimal}};
  std::vector<ColumnData> data(1);
  data[0].decimals = {1.0 / 3.0};
  auto result = LoadTable("t", specs, data);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotSupported);
}

TEST(LoaderTest, ApplyRowChangeHitsRightSlot) {
  auto [specs, data] = SampleTable();
  LoadOptions opts;
  opts.rows_per_chunk = 16;
  opts.num_partitions = 2;
  ASSERT_OK_AND_ASSIGN(Table table, LoadTable("t", specs, data, opts));
  // Row 50: chunk 3 -> partition 1, chunk 1, row 2.
  ASSERT_OK(ApplyRowChange(&table, 50, {999, 7777, 1, 12345}));
  EXPECT_EQ(table.partition(1).chunk(1).column(0).GetInt(2), 999);
  EXPECT_EQ(table.partition(1).chunk(1).column(1).GetInt(2), 7777);
  // Out-of-range row rejected.
  EXPECT_FALSE(ApplyRowChange(&table, 100000, {0, 0, 0, 0}).ok());
  // Wrong arity rejected.
  EXPECT_FALSE(ApplyRowChange(&table, 1, {0}).ok());
}

// ---- Tracker ---------------------------------------------------------------

TEST(TrackerTest, ResolvesVersionsBySCN) {
  Tracker tracker(2);
  ASSERT_OK(tracker.ApplyUpdate(10, {{5, {100, 200}}}));
  ASSERT_OK(tracker.ApplyUpdate(20, {{5, {111, 222}}}));

  // Query at SCN 15 sees the version from SCN 10.
  ASSERT_OK_AND_ASSIGN(int64_t v, tracker.Resolve(15, 5, 0));
  EXPECT_EQ(v, 100);
  // Query at SCN 25 sees the newest version.
  ASSERT_OK_AND_ASSIGN(v, tracker.Resolve(25, 5, 1));
  EXPECT_EQ(v, 222);
  // Query older than any update: no version.
  EXPECT_FALSE(tracker.Resolve(5, 5, 0).ok());
  // Untouched row: not found (caller reads the base vector).
  EXPECT_FALSE(tracker.Resolve(25, 6, 0).ok());
  EXPECT_TRUE(tracker.HasVersionFor(25, 5));
  EXPECT_FALSE(tracker.HasVersionFor(25, 6));
}

TEST(TrackerTest, ExpirationSetOnSupersede) {
  Tracker tracker(1);
  ASSERT_OK(tracker.ApplyUpdate(10, {{1, {7}}}));
  ASSERT_OK(tracker.ApplyUpdate(20, {{1, {8}}}));
  EXPECT_EQ(tracker.num_units(), 2u);
  EXPECT_EQ(tracker.latest_scn(), 20u);
}

TEST(TrackerTest, RejectsNonMonotonicScn) {
  Tracker tracker(1);
  ASSERT_OK(tracker.ApplyUpdate(10, {{1, {7}}}));
  EXPECT_FALSE(tracker.ApplyUpdate(10, {{1, {8}}}).ok());
  EXPECT_FALSE(tracker.ApplyUpdate(5, {{1, {8}}}).ok());
}

TEST(TrackerTest, RejectsWrongArity) {
  Tracker tracker(2);
  EXPECT_FALSE(tracker.ApplyUpdate(10, {{1, {7}}}).ok());
}

TEST(TrackerTest, VacuumReclaimsDeadVersions) {
  Tracker tracker(1);
  ASSERT_OK(tracker.ApplyUpdate(10, {{1, {7}}}));
  ASSERT_OK(tracker.ApplyUpdate(20, {{1, {8}}}));
  ASSERT_OK(tracker.ApplyUpdate(30, {{2, {9}}}));
  // No active query before SCN 25: the SCN-10 version of row 1 died at
  // SCN 20 <= 25.
  EXPECT_EQ(tracker.Vacuum(25), 1u);
  // The survivors still resolve.
  EXPECT_EQ(tracker.Resolve(25, 1, 0).value(), 8);
  EXPECT_EQ(tracker.Resolve(35, 2, 0).value(), 9);
  EXPECT_EQ(tracker.Vacuum(25), 0u);  // idempotent
}

}  // namespace
}  // namespace rapid::storage
