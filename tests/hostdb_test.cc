// Tests for the System X substrate: SCN journal and admissibility,
// checkpointing into RAPID trackers, offload planning (full / partial
// / none), the RAPID placeholder operator with fallback, and the
// end-to-end HostDatabase query path.

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "hostdb/database.h"
#include "hostdb/journal.h"
#include "hostdb/offload.h"
#include "tests/test_util.h"

namespace rapid::hostdb {
namespace {

using core::AggFunc;
using core::Expr;
using core::LogicalNode;
using core::LogicalPtr;
using core::Predicate;
using primitives::CmpOp;
using rapid::testing::ExpectSameRows;

std::pair<std::vector<storage::ColumnSpec>, std::vector<storage::ColumnData>>
SmallTable(int rows, int64_t value_offset = 0) {
  std::vector<storage::ColumnSpec> specs = {
      {"id", storage::ColumnKind::kInt64},
      {"v", storage::ColumnKind::kInt32}};
  std::vector<storage::ColumnData> data(2);
  for (int i = 0; i < rows; ++i) {
    data[0].ints.push_back(i);
    data[1].ints.push_back(value_offset + i % 10);
  }
  return {specs, data};
}

class HostDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto [specs, data] = SmallTable(5000);
    ASSERT_OK(host_.CreateTable("t", specs, data));
    ASSERT_OK(host_.LoadToRapid("t", &engine_));
  }

  LogicalPtr SumPlan() {
    return LogicalNode::GroupBy(
        LogicalNode::Scan("t", {"v"},
                          {Predicate::CmpConst("v", CmpOp::kLt, 5)}),
        {}, {{"s", AggFunc::kSum, Expr::Col("v"), {}}});
  }

  HostDatabase host_;
  // Pinned to the paper's 32-core DPU: offload decisions are
  // cost-based and must not flip under a RAPID_CORES override.
  core::RapidEngine engine_{dpu::DpuConfig{}};
};

// ---- Journal / admissibility -------------------------------------------

TEST_F(HostDbTest, JournalAdmissibility) {
  ScnJournal& journal = host_.journal();
  const uint64_t scn0 = journal.current_scn();
  EXPECT_TRUE(journal.Admissible("t", scn0));

  // An update creates a pending journal entry: queries at or after its
  // SCN are inadmissible until checkpointed.
  ASSERT_OK(host_.Update("t", {storage::RowChange{1, {1, 99}}}));
  const uint64_t scn1 = journal.current_scn();
  EXPECT_FALSE(journal.Admissible("t", scn1));
  EXPECT_TRUE(journal.Admissible("t", scn1 - 1));  // older query: fine
  EXPECT_EQ(journal.PendingCount("t"), 1u);

  ASSERT_OK(host_.Checkpoint(&engine_));
  EXPECT_TRUE(journal.Admissible("t", scn1));
  EXPECT_EQ(journal.PendingCount("t"), 0u);
  // The change reached RAPID's table and tracker.
  EXPECT_EQ(engine_.GetTable("t")->scn(), scn1);
  EXPECT_EQ(engine_.tracker("t")->Resolve(scn1, 1, 1).value(), 99);
}

TEST_F(HostDbTest, UpdateAppliesToHostTableInPlace) {
  ASSERT_OK(host_.Update("t", {storage::RowChange{10, {10, 77}}}));
  const storage::Table* t = host_.GetTable("t");
  // Row 10 lives in chunk 0 (2048 rows/chunk default).
  EXPECT_EQ(t->partition(0).chunk(0).column(1).GetInt(10), 77);
}

// ---- Offload planning ----------------------------------------------------

TEST_F(HostDbTest, FullOffloadWhenLoaded) {
  OffloadPlanner planner(engine_.dpu().config(), engine_.dpu().params());
  const OffloadDecision d =
      planner.Decide(SumPlan(), engine_, host_.catalog());
  EXPECT_EQ(d.kind, OffloadDecision::Kind::kFull);
  EXPECT_GT(d.local_seconds, d.rapid_seconds);
}

TEST_F(HostDbTest, NoOffloadWhenTableMissing) {
  auto [specs, data] = SmallTable(100);
  ASSERT_OK(host_.CreateTable("unloaded", specs, data));
  OffloadPlanner planner(engine_.dpu().config(), engine_.dpu().params());
  auto plan = LogicalNode::Scan("unloaded", {"v"});
  const OffloadDecision d = planner.Decide(plan, engine_, host_.catalog());
  EXPECT_EQ(d.kind, OffloadDecision::Kind::kNone);
}

TEST_F(HostDbTest, PartialOffloadPicksLoadedSubtree) {
  // Join between a loaded and an unloaded table: only the loaded
  // subtree can offload.
  auto [specs, data] = SmallTable(100);
  ASSERT_OK(host_.CreateTable("unloaded", specs, data));
  auto loaded = LogicalNode::Scan("t", {"id", "v"});
  auto missing = LogicalNode::Scan("unloaded", {"id", "v"});
  auto join =
      LogicalNode::Join(missing, loaded, {"id"}, {"id"}, {"v"});
  OffloadPlanner planner(engine_.dpu().config(), engine_.dpu().params());
  const OffloadDecision d = planner.Decide(join, engine_, host_.catalog());
  EXPECT_EQ(d.kind, OffloadDecision::Kind::kPartial);
  ASSERT_EQ(d.fragments.size(), 1u);
  EXPECT_EQ(d.fragments[0]->table, "t");
}

TEST_F(HostDbTest, MultiFragmentPartialOffload) {
  // Two loaded subtrees under an unloaded join: both must become
  // placeholders ("one or many place holder node(s)").
  auto [specs, data] = SmallTable(100);
  ASSERT_OK(host_.CreateTable("unloaded", specs, data));
  ASSERT_OK(host_.CreateTable("t2", specs, data));
  ASSERT_OK(host_.LoadToRapid("t2", &engine_));

  auto loaded1 = LogicalNode::Scan(
      "t", {"id", "v"}, {Predicate::CmpConst("v", CmpOp::kLt, 4)});
  auto loaded2 = LogicalNode::Scan("t2", {"id", "v"});
  auto lower = LogicalNode::Join(loaded1, LogicalNode::Scan("unloaded",
                                                            {"id"}),
                                 {"id"}, {"id"}, {"id", "v"});
  auto plan = LogicalNode::Join(loaded2, lower, {"id"}, {"id"}, {"v", "id"});

  OffloadPlanner planner(engine_.dpu().config(), engine_.dpu().params());
  const OffloadDecision d = planner.Decide(plan, engine_, host_.catalog());
  EXPECT_EQ(d.kind, OffloadDecision::Kind::kPartial);
  EXPECT_EQ(d.fragments.size(), 2u);

  ASSERT_OK_AND_ASSIGN(QueryReport report, host_.ExecuteQuery(plan, &engine_));
  EXPECT_TRUE(report.offloaded);
  ASSERT_OK_AND_ASSIGN(core::ColumnSet local, host_.ExecuteLocal(plan));
  ExpectSameRows(report.rows, local);
}

TEST_F(HostDbTest, BackgroundCheckpointerPropagates) {
  using namespace std::chrono_literals;
  host_.StartBackgroundCheckpointer(&engine_, 5ms);
  ASSERT_OK(host_.Update("t", {storage::RowChange{4, {4, 64}}}));
  // Wait for the background thread to drain the journal.
  for (int i = 0; i < 200 && host_.journal().PendingCount("t") > 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(host_.journal().PendingCount("t"), 0u);
  host_.StopBackgroundCheckpointer();
  // The change reached RAPID.
  const storage::Table* t = engine_.GetTable("t");
  EXPECT_EQ(t->partition(0).chunk(0).column(1).GetInt(4), 64);
}

TEST_F(HostDbTest, CollectTablesFindsAllScans) {
  auto join = LogicalNode::Join(LogicalNode::Scan("a", {"x"}),
                                LogicalNode::Scan("b", {"x"}), {"x"}, {"x"},
                                {"x"});
  std::vector<std::string> tables;
  OffloadPlanner::CollectTables(join, &tables);
  EXPECT_EQ(tables, (std::vector<std::string>{"a", "b"}));
}

// ---- ExecuteQuery end to end ---------------------------------------------

TEST_F(HostDbTest, FullOffloadExecutesOnRapid) {
  ASSERT_OK_AND_ASSIGN(QueryReport report,
                       host_.ExecuteQuery(SumPlan(), &engine_));
  EXPECT_EQ(report.decision, OffloadDecision::Kind::kFull);
  EXPECT_TRUE(report.offloaded);
  EXPECT_FALSE(report.fell_back);
  EXPECT_GT(report.rapid_modeled_seconds, 0);
  // Result matches local execution.
  ASSERT_OK_AND_ASSIGN(core::ColumnSet local, host_.ExecuteLocal(SumPlan()));
  ExpectSameRows(report.rows, local);
}

TEST_F(HostDbTest, PendingChangesForceFallback) {
  // An unpropagated change makes the query inadmissible; the RAPID
  // operator must fall back to System-X-only execution and still
  // return correct (host-fresh) results.
  ASSERT_OK(host_.Update("t", {storage::RowChange{2, {2, 3}}}));
  ASSERT_OK_AND_ASSIGN(QueryReport report,
                       host_.ExecuteQuery(SumPlan(), &engine_));
  EXPECT_TRUE(report.fell_back);
  EXPECT_FALSE(report.offloaded);
  ASSERT_OK_AND_ASSIGN(core::ColumnSet local, host_.ExecuteLocal(SumPlan()));
  ExpectSameRows(report.rows, local);

  // After checkpointing, offload resumes.
  ASSERT_OK(host_.Checkpoint(&engine_));
  ASSERT_OK_AND_ASSIGN(QueryReport after,
                       host_.ExecuteQuery(SumPlan(), &engine_));
  EXPECT_TRUE(after.offloaded);
  // And RAPID sees the updated value.
  ExpectSameRows(after.rows, local);
}

TEST_F(HostDbTest, PartialOffloadProducesCorrectJoin) {
  auto [specs, data] = SmallTable(300, 100);
  ASSERT_OK(host_.CreateTable("unloaded", specs, data));
  auto loaded = LogicalNode::Scan(
      "t", {"id", "v"}, {Predicate::CmpConst("v", CmpOp::kLt, 3)});
  auto missing = LogicalNode::Scan("unloaded", {"id"});
  auto join = LogicalNode::Join(loaded, missing, {"id"}, {"id"}, {"id", "v"});
  ASSERT_OK_AND_ASSIGN(QueryReport report,
                       host_.ExecuteQuery(join, &engine_));
  EXPECT_EQ(report.decision, OffloadDecision::Kind::kPartial);
  ASSERT_OK_AND_ASSIGN(core::ColumnSet local, host_.ExecuteLocal(join));
  ExpectSameRows(report.rows, local);
}

TEST_F(HostDbTest, LoadToRapidReflectsPriorUpdates) {
  // Update before loading a second engine: LOAD must ship current
  // content.
  ASSERT_OK(host_.Update("t", {storage::RowChange{3, {3, 42}}}));
  core::RapidEngine engine2;
  ASSERT_OK(host_.LoadToRapid("t", &engine2));
  const storage::Table* t = engine2.GetTable("t");
  EXPECT_EQ(t->partition(0).chunk(0).column(1).GetInt(3), 42);
}

TEST_F(HostDbTest, DictionariesEncodeIdenticallyAcrossEngines) {
  std::vector<storage::ColumnSpec> specs = {
      {"s", storage::ColumnKind::kString}};
  std::vector<storage::ColumnData> data(1);
  data[0].strings = {"zeta", "alpha", "zeta", "mid"};
  ASSERT_OK(host_.CreateTable("strs", specs, data));
  ASSERT_OK(host_.LoadToRapid("strs", &engine_));
  const storage::Table* h = host_.GetTable("strs");
  const storage::Table* r = engine_.GetTable("strs");
  for (const char* v : {"zeta", "alpha", "mid"}) {
    EXPECT_EQ(h->dictionary(0)->Lookup(v).value(),
              r->dictionary(0)->Lookup(v).value());
  }
}

TEST_F(HostDbTest, VolcanoIteratorLifecycle) {
  // Exercise the pull-based interface directly: start/fetch/close.
  auto plan = LogicalNode::Scan(
      "t", {"id"}, {Predicate::CmpConst("id", CmpOp::kLt, 3)});
  ASSERT_OK_AND_ASSIGN(IteratorPtr it,
                       VolcanoExecutor::Build(plan, host_.catalog()));
  ASSERT_OK(it->Start());
  Row row;
  int rows = 0;
  for (;;) {
    auto more = it->Fetch(&row);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    ++rows;
  }
  it->Close();
  EXPECT_EQ(rows, 3);
}

TEST_F(HostDbTest, MissingTableErrors) {
  EXPECT_FALSE(host_.LoadToRapid("nope", &engine_).ok());
  EXPECT_FALSE(host_.Update("nope", {}).ok());
  auto plan = LogicalNode::Scan("nope", {"x"});
  EXPECT_FALSE(host_.ExecuteLocal(plan).ok());
}

}  // namespace
}  // namespace rapid::hostdb
