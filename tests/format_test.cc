// Tests for result decoding/formatting and dictionary/type metadata
// propagation through plans (the host's post-processing decode of
// Section 3.2).

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/result_format.h"
#include "storage/loader.h"
#include "tests/test_util.h"
#include "tpch/tpch_gen.h"

namespace rapid::core {
namespace {

using primitives::CmpOp;

class FormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<storage::ColumnSpec> specs = {
        {"city", storage::ColumnKind::kString},
        {"amount", storage::ColumnKind::kDecimal},
        {"day", storage::ColumnKind::kDate},
        {"n", storage::ColumnKind::kInt32}};
    std::vector<storage::ColumnData> data(4);
    const char* cities[] = {"basel", "zurich", "geneva"};
    for (int i = 0; i < 300; ++i) {
      data[0].strings.push_back(cities[i % 3]);
      data[1].decimals.push_back(static_cast<double>(i) * 0.25);
      data[2].ints.push_back(tpch::DaysFromCivil(1995, 3, 1 + i % 28));
      data[3].ints.push_back(i);
    }
    auto table = storage::LoadTable("t", specs, data);
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(engine_.Load(std::move(table).value()).ok());
  }

  RapidEngine engine_;
};

TEST_F(FormatTest, ScanPropagatesDictAndTypes) {
  auto plan = LogicalNode::Scan("t", {"city", "amount", "day", "n"});
  ASSERT_OK_AND_ASSIGN(QueryResult result, engine_.Execute(plan));
  const ColumnSet& rows = result.rows;
  EXPECT_NE(rows.meta(0).dict, nullptr);
  EXPECT_EQ(rows.meta(2).type, storage::DataType::kDate);
  EXPECT_EQ(FormatCell(rows, 0, 0), "basel");
  EXPECT_EQ(FormatCell(rows, 1, 0), "zurich");
  EXPECT_EQ(FormatCell(rows, 1, 1), "0.25");
  EXPECT_EQ(FormatCell(rows, 0, 2), "1995-03-01");
  EXPECT_EQ(FormatCell(rows, 5, 3), "5");
}

TEST_F(FormatTest, GroupByKeysKeepDictionary) {
  auto plan = LogicalNode::Sort(
      LogicalNode::GroupBy(
          LogicalNode::Scan("t", {"city", "n"}),
          {{"city", Expr::Col("city")}},
          {{"total", AggFunc::kSum, Expr::Col("n"), {}}}),
      {{"city", true}});
  ASSERT_OK_AND_ASSIGN(QueryResult result, engine_.Execute(plan));
  ASSERT_EQ(result.rows.num_rows(), 3u);
  // Codes sort by insertion order (basel=0, zurich=1, geneva=2).
  EXPECT_EQ(FormatCell(result.rows, 0, 0), "basel");
  EXPECT_EQ(FormatCell(result.rows, 1, 0), "zurich");
  EXPECT_EQ(FormatCell(result.rows, 2, 0), "geneva");
}

TEST_F(FormatTest, JoinOutputKeepsSourceMetadata) {
  auto left = LogicalNode::Scan(
      "t", {"n", "city"}, {Predicate::CmpConst("n", CmpOp::kLt, 3)});
  auto right = LogicalNode::Scan("t", {"n", "day"});
  auto plan = LogicalNode::Join(left, right, {"n"}, {"n"}, {"city", "day"});
  ASSERT_OK_AND_ASSIGN(QueryResult result, engine_.Execute(plan));
  ASSERT_GT(result.rows.num_rows(), 0u);
  EXPECT_NE(result.rows.meta(0).dict, nullptr);
  EXPECT_EQ(result.rows.meta(1).type, storage::DataType::kDate);
}

TEST_F(FormatTest, NegativeDecimalsFormat) {
  std::vector<ColumnMeta> metas(1);
  metas[0].name = "d";
  metas[0].type = storage::DataType::kDecimal;
  metas[0].dsb_scale = 2;
  ColumnSet set(metas);
  set.AppendRow({-12345});  // -123.45
  set.AppendRow({-45});     // -0.45
  set.AppendRow({0});
  EXPECT_EQ(FormatCell(set, 0, 0), "-123.45");
  EXPECT_EQ(FormatCell(set, 1, 0), "-0.45");
  EXPECT_EQ(FormatCell(set, 2, 0), "0.00");
}

TEST_F(FormatTest, TableRendering) {
  auto plan = LogicalNode::Scan("t", {"city", "n"},
                                {Predicate::CmpConst("n", CmpOp::kLt, 2)});
  ASSERT_OK_AND_ASSIGN(QueryResult result, engine_.Execute(plan));
  const std::string table = FormatTable(result.rows);
  EXPECT_NE(table.find("city"), std::string::npos);
  EXPECT_NE(table.find("basel"), std::string::npos);
  EXPECT_NE(table.find("zurich"), std::string::npos);
  // Truncation note appears when rows exceed the limit.
  auto all = LogicalNode::Scan("t", {"n"});
  ASSERT_OK_AND_ASSIGN(QueryResult big, engine_.Execute(all));
  EXPECT_NE(FormatTable(big.rows, 5).find("rows total"), std::string::npos);
}

TEST_F(FormatTest, DateRoundTripAcrossDomain) {
  // CivilFromDays must invert DaysFromCivil across the TPC-H range.
  for (int y : {1970, 1992, 1995, 1998, 2000, 2038}) {
    for (int m : {1, 2, 3, 6, 12}) {
      for (int d : {1, 15, 28}) {
        std::vector<ColumnMeta> metas(1);
        metas[0].name = "dt";
        metas[0].type = storage::DataType::kDate;
        ColumnSet set(metas);
        set.AppendRow({tpch::DaysFromCivil(y, m, d)});
        char expected[16];
        std::snprintf(expected, sizeof(expected), "%04d-%02d-%02d", y, m, d);
        EXPECT_EQ(FormatCell(set, 0, 0), expected);
      }
    }
  }
}

}  // namespace
}  // namespace rapid::core
