// Join-filter pushdown (sideways information passing): build-side
// blocked Bloom filters pruning probe rows before partitioning and
// the hash probe. End-to-end contract: RAPID_JOIN_FILTER=off vs auto
// is bit-identical across SIMD tiers, scheduler modes, join types
// (the filter never changes semi/anti/left-outer semantics) and
// injected DMS faults; the gate never changes plan shape; and the
// pruning counters are visible through ExecutionStats/QueryReport,
// zeroed on host fallback.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/engine.h"
#include "core/join_filter.h"
#include "core/ops/join_exec.h"
#include "core/ops/partition_exec.h"
#include "core/qcomp/planner.h"
#include "core/qcomp/steps.h"
#include "dpu/dpu.h"
#include "dpu/work_queue.h"
#include "hostdb/database.h"
#include "hostdb/offload.h"
#include "storage/loader.h"
#include "tests/test_util.h"

namespace rapid {
namespace {

using core::ColumnSet;
using core::ExecOptions;
using core::JoinExec;
using core::JoinFilterMode;
using core::JoinSpec;
using core::JoinStats;
using core::JoinType;
using core::LogicalNode;
using core::LogicalPtr;
using core::PartitionedData;
using core::PartitionExec;
using core::PartitionRound;
using core::PartitionScheme;
using core::Predicate;
using core::QueryResult;
using hostdb::HostDatabase;
using hostdb::QueryReport;
using rapid::testing::ExpectSameRows;
using rapid::testing::MakeColumnSet;
using rapid::testing::Rows;
using rapid::testing::SortedRows;

class ScopedJoinFilter {
 public:
  explicit ScopedJoinFilter(JoinFilterMode mode)
      : previous_(core::ForceJoinFilter(mode)) {}
  ~ScopedJoinFilter() { core::ForceJoinFilter(previous_); }

 private:
  JoinFilterMode previous_;
};

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : previous_(ForceSimdLevel(level)) {}
  ~ScopedSimdLevel() { ForceSimdLevel(previous_); }

 private:
  SimdLevel previous_;
};

class ScopedSchedMode {
 public:
  explicit ScopedSchedMode(dpu::SchedMode mode)
      : previous_(dpu::ForceSchedMode(mode)) {}
  ~ScopedSchedMode() { dpu::ForceSchedMode(previous_); }

 private:
  dpu::SchedMode previous_;
};

// A selective FK join: dim keys 0..4095 with a ~1% filter on the
// payload, facts referencing the full key domain — ~99% of fact rows
// have no surviving build match and are Bloom-prunable.
class JoinFilterEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<storage::ColumnSpec> dim_specs = {
        {"k", storage::ColumnKind::kInt64},
        {"w", storage::ColumnKind::kInt32}};
    std::vector<storage::ColumnData> dim_data(2);
    for (int i = 0; i < 4096; ++i) {
      dim_data[0].ints.push_back(i);
      dim_data[1].ints.push_back(i);
    }
    ASSERT_OK(host_.CreateTable("dim", dim_specs, dim_data));
    ASSERT_OK(host_.LoadToRapid("dim", &engine_));

    std::vector<storage::ColumnSpec> fact_specs = {
        {"id", storage::ColumnKind::kInt64},
        {"v", storage::ColumnKind::kInt64}};
    std::vector<storage::ColumnData> fact_data(2);
    Rng rng(2026);
    for (int i = 0; i < 20000; ++i) {
      fact_data[0].ints.push_back(i);
      fact_data[1].ints.push_back(rng.NextInRange(0, 4095));
    }
    ASSERT_OK(host_.CreateTable("fact", fact_specs, fact_data));
    ASSERT_OK(host_.LoadToRapid("fact", &engine_));
  }

  // Build side (dim) filtered to ~1% of its keys; probe side scans
  // the whole fact table.
  static LogicalPtr SelectivePlan(JoinType type) {
    std::vector<std::string> outputs;
    switch (type) {
      case JoinType::kSemi:
      case JoinType::kAnti:
        outputs = {"id"};  // probe side only
        break;
      default:
        outputs = {"id", "w"};
    }
    return LogicalNode::Join(
        LogicalNode::Scan("dim", {"k", "w"},
                          {Predicate::Between("w", 0, 40, 0.01)}),
        LogicalNode::Scan("fact", {"id", "v"}), {"k"}, {"v"},
        std::move(outputs), type);
  }

  HostDatabase host_;
  core::RapidEngine engine_{dpu::DpuConfig{}};
};

TEST_F(JoinFilterEngineTest, OffAndAutoBitIdenticalAcrossTiersAndSchedulers) {
  QueryResult reference;
  {
    ScopedJoinFilter off(JoinFilterMode::kOff);
    ASSERT_OK_AND_ASSIGN(reference,
                         engine_.Execute(SelectivePlan(JoinType::kInner)));
    EXPECT_EQ(reference.stats.join_filter_built, 0u);
    EXPECT_EQ(reference.stats.rows_pruned_by_join_filter, 0u);
    EXPECT_EQ(reference.stats.filter_bytes, 0u);
  }
  ASSERT_GT(reference.rows.num_rows(), 0u);

  const SimdLevel levels[] = {SimdLevel::kScalar, SimdLevel::kSse42,
                              SimdLevel::kAvx2};
  const dpu::SchedMode scheds[] = {dpu::SchedMode::kStatic,
                                   dpu::SchedMode::kMorsel};
  for (SimdLevel level : levels) {
    for (dpu::SchedMode sched : scheds) {
      ScopedSimdLevel simd(level);
      ScopedSchedMode mode(sched);
      QueryResult off_run;
      QueryResult auto_run;
      {
        ScopedJoinFilter off(JoinFilterMode::kOff);
        ASSERT_OK_AND_ASSIGN(off_run,
                             engine_.Execute(SelectivePlan(JoinType::kInner)));
      }
      {
        ScopedJoinFilter on(JoinFilterMode::kAuto);
        ASSERT_OK_AND_ASSIGN(auto_run,
                             engine_.Execute(SelectivePlan(JoinType::kInner)));
      }
      ExpectSameRows(off_run.rows, reference.rows);
      ExpectSameRows(auto_run.rows, reference.rows);
      // The filter really ran and pruned: ~99% of fact rows reference
      // dim keys the build-side predicate dropped.
      EXPECT_GT(auto_run.stats.join_filter_built, 0u) << SimdLevelName(level);
      EXPECT_GT(auto_run.stats.rows_pruned_by_join_filter,
                auto_run.rows.num_rows())
          << SimdLevelName(level);
      EXPECT_GT(auto_run.stats.filter_bytes, 0u) << SimdLevelName(level);
      EXPECT_EQ(off_run.stats.rows_pruned_by_join_filter, 0u);
    }
  }
}

TEST_F(JoinFilterEngineTest, SemiAntiLeftOuterSemanticsUnchanged) {
  // Anti and left-outer emit probe rows *without* a build match — the
  // rows a filter prunes — so these types exercise the guarantee that
  // pruning skips probe work without dropping output rows.
  const JoinType types[] = {JoinType::kSemi, JoinType::kAnti,
                            JoinType::kLeftOuter};
  const SimdLevel levels[] = {SimdLevel::kScalar, SimdLevel::kSse42,
                              SimdLevel::kAvx2};
  const dpu::SchedMode scheds[] = {dpu::SchedMode::kStatic,
                                   dpu::SchedMode::kMorsel};
  for (JoinType type : types) {
    QueryResult reference;
    {
      ScopedJoinFilter off(JoinFilterMode::kOff);
      ASSERT_OK_AND_ASSIGN(reference, engine_.Execute(SelectivePlan(type)));
    }
    ASSERT_GT(reference.rows.num_rows(), 0u);
    for (SimdLevel level : levels) {
      for (dpu::SchedMode sched : scheds) {
        ScopedSimdLevel simd(level);
        ScopedSchedMode mode(sched);
        ScopedJoinFilter on(JoinFilterMode::kAuto);
        ASSERT_OK_AND_ASSIGN(QueryResult auto_run,
                             engine_.Execute(SelectivePlan(type)));
        ExpectSameRows(auto_run.rows, reference.rows);
      }
    }
  }
  // Anti join output covers the pruned key range: pruning never
  // removed a no-match row.
  ScopedJoinFilter on(JoinFilterMode::kAuto);
  ASSERT_OK_AND_ASSIGN(QueryResult anti,
                       engine_.Execute(SelectivePlan(JoinType::kAnti)));
  EXPECT_GT(anti.rows.num_rows(), 15000u);
}

TEST_F(JoinFilterEngineTest, SurvivesInjectedDmsFaultBitIdentical) {
  ScopedJoinFilter on(JoinFilterMode::kAuto);
  ASSERT_OK_AND_ASSIGN(QueryResult clean,
                       engine_.Execute(SelectivePlan(JoinType::kInner)));
  ASSERT_GT(clean.stats.rows_pruned_by_join_filter, 0u);

  // Transient dms.transfer faults: descriptor retries and checkpoint
  // replays must rebuild/re-evaluate the filter to the same rows.
  ScopedFaultInjection fi(93);
  FaultInjector::SiteSpec spec;
  spec.max_failures = 2;
  fi.Arm(faults::kDmsTransfer, spec);

  ASSERT_OK_AND_ASSIGN(QueryResult faulted,
                       engine_.Execute(SelectivePlan(JoinType::kInner)));
  EXPECT_EQ(FaultInjector::Instance().failures(faults::kDmsTransfer), 2u);
  ExpectSameRows(faulted.rows, clean.rows);
  EXPECT_GT(faulted.stats.rows_pruned_by_join_filter, 0u);
}

TEST_F(JoinFilterEngineTest, QueryReportExposesCountersAndZerosOnFallback) {
  ScopedJoinFilter on(JoinFilterMode::kAuto);
  LogicalPtr plan = SelectivePlan(JoinType::kInner);
  ASSERT_OK_AND_ASSIGN(QueryReport report, host_.ExecuteQuery(plan, &engine_));
  ASSERT_FALSE(report.fell_back);
  EXPECT_GT(report.join_filter_built, 0u);
  EXPECT_GT(report.rows_pruned_by_join_filter, 0u);
  EXPECT_GT(report.filter_bytes, 0u);

  {
    ScopedJoinFilter off(JoinFilterMode::kOff);
    ASSERT_OK_AND_ASSIGN(QueryReport off_report,
                         host_.ExecuteQuery(plan, &engine_));
    EXPECT_EQ(off_report.rows_pruned_by_join_filter, 0u);
    EXPECT_EQ(off_report.join_filter_built, 0u);
    ExpectSameRows(report.rows, off_report.rows);
  }

  // Persistent DMS fault: the query falls back to the host, which
  // builds no Bloom filters — all counters must read zero while the
  // rows stay bit-identical.
  ScopedFaultInjection fi(94);
  fi.Arm(faults::kDmsTransfer, FaultInjector::SiteSpec{});  // always fails
  ASSERT_OK_AND_ASSIGN(QueryReport fallback,
                       host_.ExecuteQuery(plan, &engine_));
  EXPECT_TRUE(fallback.fell_back);
  EXPECT_EQ(fallback.join_filter_built, 0u);
  EXPECT_EQ(fallback.rows_pruned_by_join_filter, 0u);
  EXPECT_EQ(fallback.filter_bytes, 0u);
  EXPECT_EQ(SortedRows(fallback.rows), SortedRows(report.rows));
}

// ---- Plan shape ------------------------------------------------------------

// Lowers a plan (fusion disabled so steps stay inspectable) and
// returns the probe-side ScanStep's filter ref state.
bool ProbeScanHasFilterRef(const core::Catalog& catalog,
                           const LogicalPtr& plan) {
  core::PlannerOptions options;
  options.enable_fusion = false;
  core::Planner planner(dpu::DpuConfig::Default(), dpu::CostParams::Default(),
                        options);
  auto lowered = planner.Plan(plan, catalog);
  EXPECT_TRUE(lowered.ok()) << lowered.status().ToString();
  if (!lowered.ok()) return false;
  for (const auto& step : lowered.value().steps) {
    if (auto* scan = dynamic_cast<core::ScanStep*>(step.get())) {
      if (scan->join_filter().enabled()) return true;
    }
  }
  return false;
}

TEST(JoinFilterPlanTest, RefAttachmentIndependentOfGateAndTypeAware) {
  std::vector<storage::ColumnSpec> dim_specs = {
      {"k", storage::ColumnKind::kInt64},
      {"w", storage::ColumnKind::kInt32}};
  std::vector<storage::ColumnData> dim_data(2);
  for (int i = 0; i < 4096; ++i) {
    dim_data[0].ints.push_back(i);
    dim_data[1].ints.push_back(i);
  }
  std::vector<storage::ColumnSpec> fact_specs = {
      {"id", storage::ColumnKind::kInt64},
      {"v", storage::ColumnKind::kInt64}};
  std::vector<storage::ColumnData> fact_data(2);
  for (int i = 0; i < 20000; ++i) {
    fact_data[0].ints.push_back(i);
    fact_data[1].ints.push_back(i % 4096);
  }
  core::Catalog catalog;
  ASSERT_OK_AND_ASSIGN(storage::Table dim,
                       storage::LoadTable("dim", dim_specs, dim_data));
  catalog.emplace("dim", std::move(dim));
  ASSERT_OK_AND_ASSIGN(storage::Table fact,
                       storage::LoadTable("fact", fact_specs, fact_data));
  catalog.emplace("fact", std::move(fact));

  auto plan = [](JoinType type) {
    return LogicalNode::Join(
        LogicalNode::Scan("dim", {"k", "w"},
                          {Predicate::Between("w", 0, 40, 0.01)}),
        LogicalNode::Scan("fact", {"id", "v"}), {"k"}, {"v"},
        std::vector<std::string>{"id"}, type);
  };

  // The gate is runtime-only: the planner attaches the ref in both
  // modes, so toggling RAPID_JOIN_FILTER never changes plan shape.
  {
    ScopedJoinFilter off(JoinFilterMode::kOff);
    EXPECT_TRUE(ProbeScanHasFilterRef(catalog, plan(JoinType::kInner)));
  }
  {
    ScopedJoinFilter on(JoinFilterMode::kAuto);
    EXPECT_TRUE(ProbeScanHasFilterRef(catalog, plan(JoinType::kInner)));
    EXPECT_TRUE(ProbeScanHasFilterRef(catalog, plan(JoinType::kSemi)));
    // Anti and left-outer emit probe rows without a match; a scan-side
    // prune would drop their output, so no ref is ever attached.
    EXPECT_FALSE(ProbeScanHasFilterRef(catalog, plan(JoinType::kAnti)));
    EXPECT_FALSE(ProbeScanHasFilterRef(catalog, plan(JoinType::kLeftOuter)));
  }
}

// ---- Join-kernel internal filter -------------------------------------------

// The partitioned join kernel's own per-pair filter (the path used
// when no scan-side pushdown covers the probe input): exercises both
// the batched probe (inner/semi/anti) and the per-row probe
// (left-outer) with spec.build_join_filter set.
class JoinKernelFilterTest : public ::testing::Test {
 protected:
  struct Inputs {
    PartitionedData build;
    PartitionedData probe;
  };

  // Build keys cover 1/8 of the probe key domain: most probe rows are
  // prunable.
  Inputs MakeInputs() {
    std::vector<int64_t> bk, bv, pk, pv;
    for (int64_t i = 0; i < 256; ++i) {
      bk.push_back(i);
      bv.push_back(i * 10);
    }
    Rng rng(5150);
    for (int64_t i = 0; i < 4000; ++i) {
      pk.push_back(rng.NextInRange(0, 2047));
      pv.push_back(i);
    }
    ColumnSet build = MakeColumnSet({"k", "bv"}, {bk, bv});
    ColumnSet probe = MakeColumnSet({"k", "pv"}, {pk, pv});
    PartitionScheme scheme;
    scheme.rounds.push_back(PartitionRound{32, 32});
    Inputs in;
    in.build = PartitionExec::Execute(dpu_, build, {0}, scheme, 128).value();
    in.probe = PartitionExec::Execute(dpu_, probe, {0}, scheme, 128).value();
    return in;
  }

  static JoinSpec Spec(JoinType type) {
    JoinSpec spec;
    spec.type = type;
    spec.build_keys = {0};
    spec.probe_keys = {0};
    spec.build_join_filter = true;
    if (type == JoinType::kSemi || type == JoinType::kAnti) {
      spec.outputs = {{false, 0}, {false, 1}};
    } else {
      spec.outputs = {{true, 1}, {false, 0}, {false, 1}};
    }
    return spec;
  }

  dpu::Dpu dpu_;
};

TEST_F(JoinKernelFilterTest, PrunesWithoutChangingAnyJoinTypeOutput) {
  Inputs in = MakeInputs();
  const JoinType types[] = {JoinType::kInner, JoinType::kSemi,
                            JoinType::kAnti, JoinType::kLeftOuter};
  for (JoinType type : types) {
    ColumnSet off_result;
    JoinStats off_stats;
    {
      ScopedJoinFilter off(JoinFilterMode::kOff);
      ASSERT_OK_AND_ASSIGN(off_result,
                           JoinExec::Execute(dpu_, in.build, in.probe,
                                             Spec(type), &off_stats));
    }
    ColumnSet auto_result;
    JoinStats auto_stats;
    {
      ScopedJoinFilter on(JoinFilterMode::kAuto);
      ASSERT_OK_AND_ASSIGN(auto_result,
                           JoinExec::Execute(dpu_, in.build, in.probe,
                                             Spec(type), &auto_stats));
    }
    // Exact emission order must match, not just the row multiset.
    EXPECT_EQ(Rows(off_result), Rows(auto_result))
        << "type=" << static_cast<int>(type);
    EXPECT_EQ(off_stats.join_filter_built, 0u);
    EXPECT_EQ(off_stats.rows_pruned_by_join_filter, 0u);
    EXPECT_GT(auto_stats.join_filter_built, 0u)
        << "type=" << static_cast<int>(type);
    // ~7/8 of probe keys fall outside the build domain.
    EXPECT_GT(auto_stats.rows_pruned_by_join_filter, 2000u)
        << "type=" << static_cast<int>(type);
    EXPECT_GT(auto_stats.filter_bytes, 0u);
    EXPECT_EQ(auto_stats.matches, off_stats.matches);
  }
}

TEST_F(JoinKernelFilterTest, SpecFlagOffMeansNoFilterEvenInAutoMode) {
  Inputs in = MakeInputs();
  ScopedJoinFilter on(JoinFilterMode::kAuto);
  JoinSpec spec = Spec(JoinType::kInner);
  spec.build_join_filter = false;  // planner cost gate said no
  JoinStats stats;
  ASSERT_OK_AND_ASSIGN(ColumnSet result,
                       JoinExec::Execute(dpu_, in.build, in.probe, spec,
                                         &stats));
  EXPECT_EQ(stats.join_filter_built, 0u);
  EXPECT_EQ(stats.rows_pruned_by_join_filter, 0u);
  EXPECT_GT(result.num_rows(), 0u);
}

}  // namespace
}  // namespace rapid
