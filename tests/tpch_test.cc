// TPC-H workload tests: generator invariants and, for every query in
// the evaluated set, exact agreement between RAPID and the System X
// Volcano engine on the same data.

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

namespace rapid::tpch {
namespace {

using rapid::testing::ExpectSameRows;

// ---- Date helper -----------------------------------------------------------

TEST(DateTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
  // Ordering across the TPC-H date domain.
  EXPECT_LT(DaysFromCivil(1992, 1, 1), DaysFromCivil(1998, 8, 2));
  EXPECT_EQ(DaysFromCivil(1995, 3, 15) - DaysFromCivil(1995, 3, 14), 1);
}

// ---- Generator -------------------------------------------------------------

class GeneratorTest : public ::testing::Test {
 protected:
  static constexpr double kSf = 0.005;
  GeneratorTest() : gen_(kSf, 7) {}
  TpchGenerator gen_;
};

TEST_F(GeneratorTest, Cardinalities) {
  EXPECT_EQ(gen_.Region().num_rows(), 5u);
  EXPECT_EQ(gen_.Nation().num_rows(), 25u);
  EXPECT_EQ(gen_.Supplier().num_rows(), 50u);
  EXPECT_EQ(gen_.Customer().num_rows(), 750u);
  EXPECT_EQ(gen_.Part().num_rows(), 1000u);
  EXPECT_EQ(gen_.PartSupp().num_rows(), 4000u);  // 4 suppliers per part
  EXPECT_EQ(gen_.Orders().num_rows(), 7500u);
  // Lineitem: 1-7 lines per order.
  const size_t lines = gen_.Lineitem().num_rows();
  EXPECT_GE(lines, 7500u);
  EXPECT_LE(lines, 7u * 7500u);
}

TEST_F(GeneratorTest, ForeignKeysInRange) {
  TableData orders = gen_.Orders();
  TableData lineitem = gen_.Lineitem();
  std::unordered_set<int64_t> orderkeys(orders.data[0].ints.begin(),
                                        orders.data[0].ints.end());
  for (int64_t ok : lineitem.data[0].ints) {
    ASSERT_TRUE(orderkeys.count(ok));
  }
  for (int64_t ck : orders.data[1].ints) {
    ASSERT_GE(ck, 1);
    ASSERT_LE(ck, 750);
  }
  for (int64_t pk : lineitem.data[1].ints) {
    ASSERT_GE(pk, 1);
    ASSERT_LE(pk, 1000);
  }
}

TEST_F(GeneratorTest, DateCorrelations) {
  TableData orders = gen_.Orders();
  TableData lineitem = gen_.Lineitem();
  std::unordered_map<int64_t, int64_t> orderdate;
  for (size_t i = 0; i < orders.num_rows(); ++i) {
    orderdate[orders.data[0].ints[i]] = orders.data[4].ints[i];
  }
  for (size_t i = 0; i < lineitem.num_rows(); ++i) {
    const int64_t od = orderdate[lineitem.data[0].ints[i]];
    const int64_t ship = lineitem.data[10].ints[i];
    const int64_t commit = lineitem.data[11].ints[i];
    const int64_t receipt = lineitem.data[12].ints[i];
    ASSERT_GT(ship, od);
    ASSERT_LE(ship, od + 121);
    ASSERT_GT(commit, od);
    ASSERT_GT(receipt, ship);
  }
}

TEST_F(GeneratorTest, ValueDomains) {
  TableData lineitem = gen_.Lineitem();
  for (double q : lineitem.data[4].decimals) {
    ASSERT_GE(q, 1);
    ASSERT_LE(q, 50);
  }
  for (double d : lineitem.data[6].decimals) {
    ASSERT_GE(d, 0.0);
    ASSERT_LE(d, 0.10);
  }
  for (double t : lineitem.data[7].decimals) {
    ASSERT_GE(t, 0.0);
    ASSERT_LE(t, 0.08);
  }
  // linestatus is correlated with shipdate.
  const int32_t cutoff = DaysFromCivil(1995, 6, 17);
  for (size_t i = 0; i < lineitem.num_rows(); ++i) {
    const bool open = lineitem.data[10].ints[i] > cutoff;
    ASSERT_EQ(lineitem.data[9].strings[i], open ? "O" : "F");
  }
}

TEST_F(GeneratorTest, DeterministicForSeed) {
  TpchGenerator a(kSf, 99);
  TpchGenerator b(kSf, 99);
  EXPECT_EQ(a.Lineitem().data[5].decimals, b.Lineitem().data[5].decimals);
  TpchGenerator c(kSf, 100);
  EXPECT_NE(a.Lineitem().data[5].decimals, c.Lineitem().data[5].decimals);
}

// ---- Query agreement: RAPID vs System X ------------------------------------

class TpchQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    host_ = new hostdb::HostDatabase();
    engine_ = new core::RapidEngine();
    RAPID_CHECK_OK(LoadTpch(0.01, host_, engine_, /*seed=*/5,
                            /*rows_per_chunk=*/1024));
  }
  static void TearDownTestSuite() {
    delete host_;
    delete engine_;
    host_ = nullptr;
    engine_ = nullptr;
  }

  void CheckQuery(const std::string& name, bool expect_rows = true) {
    ASSERT_OK_AND_ASSIGN(TpchQuery query, BuildQuery(name));
    ASSERT_OK_AND_ASSIGN(QueryRun rapid, RunOnRapid(*engine_, query));
    ASSERT_OK_AND_ASSIGN(QueryRun host, RunOnHost(*host_, query));
    ExpectSameRows(rapid.result, host.result);
    if (expect_rows) {
      EXPECT_GT(rapid.result.num_rows(), 0u) << name;
    }
    EXPECT_GT(rapid.modeled_dpu_seconds, 0) << name;
  }

  static hostdb::HostDatabase* host_;
  static core::RapidEngine* engine_;
};

hostdb::HostDatabase* TpchQueryTest::host_ = nullptr;
core::RapidEngine* TpchQueryTest::engine_ = nullptr;

TEST_F(TpchQueryTest, Q1) { CheckQuery("Q1"); }
TEST_F(TpchQueryTest, Q3) { CheckQuery("Q3"); }
TEST_F(TpchQueryTest, Q4) { CheckQuery("Q4"); }
TEST_F(TpchQueryTest, Q5) { CheckQuery("Q5"); }
TEST_F(TpchQueryTest, Q6) { CheckQuery("Q6"); }
TEST_F(TpchQueryTest, Q10) { CheckQuery("Q10"); }
TEST_F(TpchQueryTest, Q11) { CheckQuery("Q11"); }
TEST_F(TpchQueryTest, Q12) { CheckQuery("Q12"); }
TEST_F(TpchQueryTest, Q14) { CheckQuery("Q14"); }
TEST_F(TpchQueryTest, Q18) { CheckQuery("Q18", /*expect_rows=*/false); }
TEST_F(TpchQueryTest, Q19) { CheckQuery("Q19", /*expect_rows=*/false); }

TEST_F(TpchQueryTest, QuerySetComplete) {
  const std::vector<TpchQuery> set = BuildQuerySet();
  EXPECT_EQ(set.size(), 11u);
  EXPECT_FALSE(BuildQuery("Q99").ok());
}

TEST_F(TpchQueryTest, Q1AveragesAreFinalizedByHost) {
  ASSERT_OK_AND_ASSIGN(TpchQuery q1, BuildQuery("Q1"));
  ASSERT_OK_AND_ASSIGN(QueryRun run, RunOnRapid(*engine_, q1));
  // Post-processing appends avg_qty / avg_price / avg_disc.
  EXPECT_OK(run.result.IndexOf("avg_qty").status());
  EXPECT_OK(run.result.IndexOf("avg_price").status());
  ASSERT_OK_AND_ASSIGN(size_t avg_qty, run.result.IndexOf("avg_qty"));
  ASSERT_OK_AND_ASSIGN(size_t sum_qty, run.result.IndexOf("sum_qty"));
  ASSERT_OK_AND_ASSIGN(size_t cnt, run.result.IndexOf("count_order"));
  for (size_t r = 0; r < run.result.num_rows(); ++r) {
    const double expected = run.result.Decimal(r, sum_qty) /
                            static_cast<double>(run.result.Value(r, cnt));
    EXPECT_NEAR(run.result.Decimal(r, avg_qty), expected, 0.01);
  }
}

TEST_F(TpchQueryTest, Q6MatchesDirectComputation) {
  // Independent computation of Q6 from the generated data.
  TpchGenerator gen(0.01, 5);
  TableData li = gen.Lineitem();
  const int32_t lo = DaysFromCivil(1994, 1, 1);
  const int32_t hi = DaysFromCivil(1994, 12, 31);
  double revenue = 0;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    const int64_t ship = li.data[10].ints[i];
    const double disc = li.data[6].decimals[i];
    const double qty = li.data[4].decimals[i];
    if (ship >= lo && ship <= hi && disc >= 0.05 - 1e-9 &&
        disc <= 0.07 + 1e-9 && qty < 24) {
      revenue += li.data[5].decimals[i] * disc;
    }
  }
  ASSERT_OK_AND_ASSIGN(TpchQuery q6, BuildQuery("Q6"));
  ASSERT_OK_AND_ASSIGN(QueryRun run, RunOnRapid(*engine_, q6));
  ASSERT_EQ(run.result.num_rows(), 1u);
  EXPECT_NEAR(run.result.Decimal(0, 0), revenue, 0.01);
}

TEST_F(TpchQueryTest, FullQuerySetThroughOffloadPath) {
  // Queries routed through the host database offload machinery must
  // produce the same rows as direct RAPID execution.
  ASSERT_OK_AND_ASSIGN(TpchQuery q6, BuildQuery("Q6"));
  ASSERT_OK_AND_ASSIGN(core::LogicalPtr plan,
                       q6.fragments[0](host_->catalog(), {}));
  ASSERT_OK_AND_ASSIGN(hostdb::QueryReport report,
                       host_->ExecuteQuery(plan, engine_));
  EXPECT_TRUE(report.offloaded);
  ASSERT_OK_AND_ASSIGN(QueryRun direct, RunOnRapid(*engine_, q6));
  ExpectSameRows(report.rows, direct.result);
}

}  // namespace
}  // namespace rapid::tpch
