// Tests for the extension features: sort-merge join (Section 6.5) and
// the per-vector encoding stack (Section 4.2), plus a randomized
// cross-engine fuzz harness that generates plans and requires RAPID
// and the Volcano engine to agree on every one.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "core/ops/merge_join_exec.h"
#include "core/ops/partition_exec.h"
#include "hostdb/volcano.h"
#include "storage/encoding_stack.h"
#include "storage/loader.h"
#include "tests/test_util.h"

namespace rapid {
namespace {

using core::ColumnMeta;
using core::ColumnSet;
using core::JoinSpec;
using core::MergeJoinExec;
using core::MergeJoinSpec;
using primitives::CmpOp;
using rapid::testing::ExpectSameRows;
using rapid::testing::MakeColumnSet;
using rapid::testing::Rows;
using rapid::testing::SortedRows;

// ---- Sort-merge join -------------------------------------------------------

class MergeJoinTest : public ::testing::Test {
 protected:
  dpu::Dpu dpu_;
};

TEST_F(MergeJoinTest, BasicInnerJoinOrderedByKey) {
  ColumnSet left = MakeColumnSet({"k", "v"}, {{3, 1, 2, 1}, {30, 10, 20, 11}});
  ColumnSet right = MakeColumnSet({"k", "w"}, {{2, 1, 4}, {200, 100, 400}});
  MergeJoinSpec spec;
  spec.left_key = 0;
  spec.right_key = 0;
  spec.outputs = {{true, 0}, {true, 1}, {false, 1}};
  ASSERT_OK_AND_ASSIGN(ColumnSet out,
                       MergeJoinExec::Execute(dpu_, left, right, spec));
  // Output ordered by key — a property hash join does not give.
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.column(0), (std::vector<int64_t>{1, 1, 2}));
  EXPECT_TRUE((out.column(1) == std::vector<int64_t>{10, 11, 20}) ||
              (out.column(1) == std::vector<int64_t>{11, 10, 20}));
  EXPECT_EQ(out.column(2), (std::vector<int64_t>{100, 100, 200}));
}

TEST_F(MergeJoinTest, DuplicateKeysCrossProduct) {
  ColumnSet left = MakeColumnSet({"k", "v"}, {{5, 5}, {1, 2}});
  ColumnSet right = MakeColumnSet({"k", "w"}, {{5, 5, 5}, {7, 8, 9}});
  MergeJoinSpec spec;
  spec.outputs = {{true, 1}, {false, 1}};
  ASSERT_OK_AND_ASSIGN(ColumnSet out,
                       MergeJoinExec::Execute(dpu_, left, right, spec));
  EXPECT_EQ(out.num_rows(), 6u);
}

TEST_F(MergeJoinTest, AgreesWithHashJoinProperty) {
  Rng rng(55);
  for (int trial = 0; trial < 5; ++trial) {
    const size_t nl = 100 + rng.NextBounded(400);
    const size_t nr = 100 + rng.NextBounded(400);
    std::vector<int64_t> lk(nl);
    std::vector<int64_t> lv(nl);
    std::vector<int64_t> rk(nr);
    std::vector<int64_t> rv(nr);
    for (size_t i = 0; i < nl; ++i) {
      lk[i] = rng.NextInRange(0, 60);
      lv[i] = static_cast<int64_t>(i);
    }
    for (size_t i = 0; i < nr; ++i) {
      rk[i] = rng.NextInRange(0, 60);
      rv[i] = static_cast<int64_t>(1000 + i);
    }
    ColumnSet left = MakeColumnSet({"k", "v"}, {lk, lv});
    ColumnSet right = MakeColumnSet({"k", "w"}, {rk, rv});

    MergeJoinSpec mspec;
    mspec.outputs = {{true, 0}, {true, 1}, {false, 1}};
    ASSERT_OK_AND_ASSIGN(ColumnSet merge_out,
                         MergeJoinExec::Execute(dpu_, left, right, mspec));

    core::PartitionScheme scheme;
    scheme.rounds.push_back(core::PartitionRound{8, 8});
    auto bp = core::PartitionExec::Execute(dpu_, left, {0}, scheme, 256);
    auto pp = core::PartitionExec::Execute(dpu_, right, {0}, scheme, 256);
    ASSERT_TRUE(bp.ok() && pp.ok());
    JoinSpec hspec;
    hspec.build_keys = {0};
    hspec.probe_keys = {0};
    hspec.outputs = {{true, 0}, {true, 1}, {false, 1}};
    ASSERT_OK_AND_ASSIGN(
        ColumnSet hash_out,
        core::JoinExec::Execute(dpu_, bp.value(), pp.value(), hspec,
                                nullptr));
    EXPECT_EQ(SortedRows(merge_out), SortedRows(hash_out)) << trial;
  }
}

TEST_F(MergeJoinTest, BadSpecsRejected) {
  ColumnSet left = MakeColumnSet({"k"}, {{1}});
  ColumnSet right = MakeColumnSet({"k"}, {{1}});
  MergeJoinSpec bad_key;
  bad_key.left_key = 5;
  EXPECT_FALSE(MergeJoinExec::Execute(dpu_, left, right, bad_key).ok());
  MergeJoinSpec bad_out;
  bad_out.outputs = {{false, 9}};
  EXPECT_FALSE(MergeJoinExec::Execute(dpu_, left, right, bad_out).ok());
}

// ---- Encoding stack --------------------------------------------------------

TEST(EncodingStackTest, RleChosenForRunHeavyVectors) {
  storage::Vector runs(storage::DataType::kInt32, 1024);
  for (int i = 0; i < 1024; ++i) runs.Append(i / 256);  // four runs
  const auto choice = storage::ChooseEncoding(runs);
  EXPECT_EQ(choice.encoding, storage::VectorEncoding::kRle);
  EXPECT_LT(choice.encoded_bytes, choice.plain_bytes / 10);
  EXPECT_GT(choice.CompressionRatio(), 10.0);
}

TEST(EncodingStackTest, PlainChosenForHighEntropyVectors) {
  storage::Vector unique(storage::DataType::kInt64, 512);
  for (int i = 0; i < 512; ++i) unique.Append(i * 7919);
  const auto choice = storage::ChooseEncoding(unique);
  EXPECT_EQ(choice.encoding, storage::VectorEncoding::kPlain);
  EXPECT_EQ(choice.encoded_bytes, choice.plain_bytes);
}

TEST(EncodingStackTest, PerVectorSelectionWithinOneColumn) {
  // One column whose first chunk is constant (RLE wins) and second is
  // unique (plain wins): the stack is selected per vector.
  std::vector<storage::ColumnSpec> specs = {{"c",
                                             storage::ColumnKind::kInt64}};
  std::vector<storage::ColumnData> data(1);
  for (int i = 0; i < 1000; ++i) data[0].ints.push_back(42);
  for (int i = 0; i < 1000; ++i) data[0].ints.push_back(i * 13 + 7);
  storage::LoadOptions opts;
  opts.rows_per_chunk = 1000;
  ASSERT_OK_AND_ASSIGN(storage::Table table,
                       storage::LoadTable("t", specs, data, opts));
  const auto reports = storage::AnalyzeTableEncodings(table);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].vectors_total, 2u);
  EXPECT_EQ(reports[0].vectors_rle, 1u);
  EXPECT_LT(reports[0].encoded_bytes, reports[0].plain_bytes);
}

TEST(EncodingStackTest, RleRoundTripThroughVector) {
  storage::Vector v(storage::DataType::kInt16, 64);
  for (int i = 0; i < 64; ++i) v.Append(i / 16);
  const storage::RleColumn rle = storage::RleFromVector(v);
  const std::vector<int64_t> decoded = storage::RleDecode(rle);
  for (size_t i = 0; i < 64; ++i) EXPECT_EQ(decoded[i], v.GetInt(i));
}

// ---- Cross-engine fuzz -----------------------------------------------------

class FuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(321);
    std::vector<storage::ColumnSpec> specs = {
        {"a", storage::ColumnKind::kInt32},
        {"b", storage::ColumnKind::kInt64},
        {"c", storage::ColumnKind::kInt32},
        {"d", storage::ColumnKind::kDecimal}};
    std::vector<storage::ColumnData> data(4);
    for (int i = 0; i < 5000; ++i) {
      data[0].ints.push_back(rng.NextInRange(0, 50));
      data[1].ints.push_back(rng.NextInRange(-100, 100));
      data[2].ints.push_back(rng.NextInRange(0, 1000));
      data[3].decimals.push_back(
          static_cast<double>(rng.NextInRange(0, 10000)) / 100.0);
    }
    storage::LoadOptions opts;
    opts.rows_per_chunk = 512;
    auto t1 = storage::LoadTable("f1", specs, data, opts);
    ASSERT_TRUE(t1.ok());
    ASSERT_TRUE(engine_.Load(std::move(t1).value()).ok());
    auto t2 = storage::LoadTable("f1", specs, data, opts);
    host_catalog_.emplace("f1", std::move(t2).value());
  }

  core::Predicate RandomPredicate(Rng& rng) {
    const char* cols[] = {"a", "b", "c"};
    const std::string col = cols[rng.NextBounded(3)];
    const CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                         CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
    switch (rng.NextBounded(3)) {
      case 0:
        return core::Predicate::CmpConst(col, ops[rng.NextBounded(6)],
                                         rng.NextInRange(-100, 1000));
      case 1: {
        const int64_t lo = rng.NextInRange(-100, 500);
        return core::Predicate::Between(col, lo,
                                        lo + rng.NextInRange(0, 300));
      }
      default:
        return core::Predicate::CmpCol(col, ops[rng.NextBounded(6)],
                                       cols[rng.NextBounded(3)]);
    }
  }

  core::RapidEngine engine_;
  core::Catalog host_catalog_;
};

TEST_F(FuzzTest, RandomFilterAggPlansAgreeAcrossEngines) {
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<core::Predicate> preds;
    const size_t num_preds = rng.NextBounded(4);
    for (size_t i = 0; i < num_preds; ++i) preds.push_back(RandomPredicate(rng));

    auto scan = core::LogicalNode::Scan("f1", {"a", "b", "c", "d"}, preds);

    core::LogicalPtr plan;
    switch (rng.NextBounded(3)) {
      case 0:
        plan = scan;
        break;
      case 1: {
        std::vector<core::AggSpec> aggs;
        aggs.push_back({"s", core::AggFunc::kSum, core::Expr::Col("b"), {}});
        aggs.push_back({"m", core::AggFunc::kMax, core::Expr::Col("d"), {}});
        aggs.push_back({"n", core::AggFunc::kCount, nullptr, {}});
        plan = core::LogicalNode::GroupBy(
            scan, {{"a", core::Expr::Col("a")}}, std::move(aggs));
        break;
      }
      default: {
        plan = core::LogicalNode::Project(
            scan, {{"x", core::Expr::Mul(core::Expr::Col("d"),
                                         core::Expr::Col("a"))},
                   {"y", core::Expr::Sub(core::Expr::Col("b"),
                                         core::Expr::Int(3))}});
        break;
      }
    }

    auto rapid_result = engine_.Execute(plan);
    ASSERT_TRUE(rapid_result.ok())
        << trial << ": " << rapid_result.status().ToString();
    auto host_result = hostdb::VolcanoExecutor::Execute(plan, host_catalog_);
    ASSERT_TRUE(host_result.ok()) << trial;
    ExpectSameRows(rapid_result.value().rows, host_result.value());
  }
}

TEST_F(FuzzTest, RandomSelfJoinPlansAgreeAcrossEngines) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    auto small = core::LogicalNode::Scan(
        "f1", {"a", "b"}, {RandomPredicate(rng)});
    auto probe_side = core::LogicalNode::Scan(
        "f1", {"a", "d"}, {RandomPredicate(rng)});
    core::LogicalPtr plan = core::LogicalNode::Join(
        small, probe_side, {"a"}, {"a"}, {"b", "d"});
    if (rng.NextBounded(2) == 0) {
      plan = core::LogicalNode::GroupBy(
          plan, {},
          {{"s", core::AggFunc::kSum, core::Expr::Col("b"), {}},
           {"n", core::AggFunc::kCount, nullptr, {}}});
    }
    auto rapid_result = engine_.Execute(plan);
    ASSERT_TRUE(rapid_result.ok())
        << trial << ": " << rapid_result.status().ToString();
    auto host_result = hostdb::VolcanoExecutor::Execute(plan, host_catalog_);
    ASSERT_TRUE(host_result.ok()) << trial;
    ExpectSameRows(rapid_result.value().rows, host_result.value());
  }
}

}  // namespace
}  // namespace rapid
