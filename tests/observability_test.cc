// Observability layer: unified tracing (common/trace.h), the metrics
// registry (common/metrics.h), leveled logging (common/logging.h),
// EXPLAIN ANALYZE and QueryReport::Summary(). Contracts under test:
//
//   - tracing is off by default and bit-identical across
//     off|summary|full, SIMD tiers, schedulers and injected DMS faults
//     (spans never poll fault sites or touch DMEM/tile pools);
//   - traces are well-formed: every begin has an end (open_depth back
//     to zero), per-core virtual time is monotone, and the steps-track
//     span durations reconcile exactly with modeled_seconds;
//   - stats invariants that were previously unchecked: plain bytes
//     dominate encoded bytes when encoding is on, static scheduling
//     never steals, fallback zeroes the DPU-side counters.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/trace.h"
#include "core/engine.h"
#include "dpu/work_queue.h"
#include "hostdb/database.h"
#include "hostdb/offload.h"
#include "storage/encoding_stack.h"
#include "storage/loader.h"
#include "tests/test_util.h"

namespace rapid {
namespace {

using core::ExecutionStats;
using core::LogicalNode;
using core::LogicalPtr;
using core::Predicate;
using core::QueryResult;
using hostdb::HostDatabase;
using hostdb::QueryReport;
using rapid::testing::ExpectSameRows;
using rapid::testing::SortedRows;

class ScopedTraceMode {
 public:
  explicit ScopedTraceMode(TraceMode mode) : previous_(ForceTraceMode(mode)) {}
  ~ScopedTraceMode() { ForceTraceMode(previous_); }

 private:
  TraceMode previous_;
};

class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : previous_(ForceLogLevel(level)) {}
  ~ScopedLogLevel() { ForceLogLevel(previous_); }

 private:
  LogLevel previous_;
};

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : previous_(ForceSimdLevel(level)) {}
  ~ScopedSimdLevel() { ForceSimdLevel(previous_); }

 private:
  SimdLevel previous_;
};

class ScopedSchedMode {
 public:
  explicit ScopedSchedMode(dpu::SchedMode mode)
      : previous_(dpu::ForceSchedMode(mode)) {}
  ~ScopedSchedMode() { dpu::ForceSchedMode(previous_); }

 private:
  dpu::SchedMode previous_;
};

class ScopedEncodedScan {
 public:
  explicit ScopedEncodedScan(storage::EncodedScanMode mode)
      : previous_(storage::ForceEncodedScan(mode)) {}
  ~ScopedEncodedScan() { storage::ForceEncodedScan(previous_); }

 private:
  storage::EncodedScanMode previous_;
};

// A dim/fact pair giving every layer something to do: encoded-friendly
// low-cardinality columns, a selective build side (join filters), a
// join (partitioning), and a group-by.
class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<storage::ColumnSpec> dim_specs = {
        {"k", storage::ColumnKind::kInt64},
        {"w", storage::ColumnKind::kInt32}};
    std::vector<storage::ColumnData> dim_data(2);
    for (int i = 0; i < 4096; ++i) {
      dim_data[0].ints.push_back(i);
      dim_data[1].ints.push_back(i);
    }
    ASSERT_OK(host_.CreateTable("dim", dim_specs, dim_data));
    ASSERT_OK(host_.LoadToRapid("dim", &engine_));

    std::vector<storage::ColumnSpec> fact_specs = {
        {"id", storage::ColumnKind::kInt64},
        {"v", storage::ColumnKind::kInt64},
        {"flag", storage::ColumnKind::kInt32}};
    std::vector<storage::ColumnData> fact_data(3);
    Rng rng(2026);
    for (int i = 0; i < 20000; ++i) {
      fact_data[0].ints.push_back(i);
      fact_data[1].ints.push_back(rng.NextInRange(0, 4095));
      // Long constant runs: RLE-friendly, so encoded scans engage.
      fact_data[2].ints.push_back(i / 2500);
    }
    ASSERT_OK(host_.CreateTable("fact", fact_specs, fact_data));
    ASSERT_OK(host_.LoadToRapid("fact", &engine_));
  }

  static LogicalPtr JoinPlan() {
    return LogicalNode::Join(
        LogicalNode::Scan("dim", {"k", "w"},
                          {Predicate::Between("w", 0, 40, 0.01)}),
        LogicalNode::Scan("fact", {"id", "v"}), {"k"}, {"v"},
        std::vector<std::string>{"id", "w"}, core::JoinType::kInner);
  }

  static LogicalPtr ScanPlan() {
    return LogicalNode::Scan("fact", {"id", "v", "flag"},
                             {Predicate::CmpConst(
                                 "flag", primitives::CmpOp::kLe, 3)});
  }

  HostDatabase host_;
  core::RapidEngine engine_;
};

// ---- Gating ----------------------------------------------------------------

TEST_F(ObservabilityTest, TraceOffByDefaultProducesNoTrace) {
  ScopedTraceMode off(TraceMode::kOff);
  ASSERT_OK_AND_ASSIGN(QueryResult r, engine_.Execute(JoinPlan()));
  ASSERT_GT(r.rows.num_rows(), 0u);
  // EndQuery in off mode never exports: whatever LastTrace held before
  // stays untouched, and a fresh summary run replaces it.
  ScopedTraceMode on(TraceMode::kSummary);
  ASSERT_OK_AND_ASSIGN(QueryResult traced, engine_.Execute(JoinPlan()));
  EXPECT_NE(core::RapidEngine::LastTrace().find("\"traceEvents\""),
            std::string::npos);
}

TEST_F(ObservabilityTest, BitIdenticalAcrossTraceModesTiersAndSchedulers) {
  QueryResult reference;
  {
    ScopedTraceMode off(TraceMode::kOff);
    ASSERT_OK_AND_ASSIGN(reference, engine_.Execute(JoinPlan()));
  }
  ASSERT_GT(reference.rows.num_rows(), 0u);

  const TraceMode modes[] = {TraceMode::kOff, TraceMode::kSummary,
                             TraceMode::kFull};
  const SimdLevel levels[] = {SimdLevel::kScalar, SimdLevel::kAvx2};
  const dpu::SchedMode scheds[] = {dpu::SchedMode::kStatic,
                                   dpu::SchedMode::kMorsel};
  for (TraceMode mode : modes) {
    for (SimdLevel level : levels) {
      for (dpu::SchedMode sched : scheds) {
        ScopedTraceMode trace(mode);
        ScopedSimdLevel simd(level);
        ScopedSchedMode scheduling(sched);
        ASSERT_OK_AND_ASSIGN(QueryResult run, engine_.Execute(JoinPlan()));
        ExpectSameRows(run.rows, reference.rows);
        EXPECT_EQ(run.stats.modeled_seconds, reference.stats.modeled_seconds)
            << TraceModeName(mode) << "/" << SimdLevelName(level);
      }
    }
  }
}

TEST_F(ObservabilityTest, BitIdenticalUnderInjectedDmsFault) {
  // Spans never poll fault sites, so the fault-injection ordinals — and
  // with them the rows — must match between off and full tracing. Four
  // consecutive failures exhaust the descriptor's retry budget, forcing
  // an engine-level checkpoint retry in both runs.
  QueryResult off_run;
  {
    ScopedTraceMode off(TraceMode::kOff);
    ScopedFaultInjection fi(93);
    FaultInjector::SiteSpec spec;
    spec.max_failures = 4;
    fi.Arm(faults::kDmsTransfer, spec);
    ASSERT_OK_AND_ASSIGN(off_run, engine_.Execute(JoinPlan()));
    EXPECT_EQ(FaultInjector::Instance().failures(faults::kDmsTransfer), 4u);
    EXPECT_EQ(off_run.stats.dpu_retries, 1u);
  }
  QueryResult full_run;
  {
    ScopedTraceMode full(TraceMode::kFull);
    ScopedFaultInjection fi(93);
    FaultInjector::SiteSpec spec;
    spec.max_failures = 4;
    fi.Arm(faults::kDmsTransfer, spec);
    ASSERT_OK_AND_ASSIGN(full_run, engine_.Execute(JoinPlan()));
    EXPECT_EQ(FaultInjector::Instance().failures(faults::kDmsTransfer), 4u);
  }
  ExpectSameRows(full_run.rows, off_run.rows);
  EXPECT_EQ(full_run.stats.modeled_seconds, off_run.stats.modeled_seconds);
  EXPECT_EQ(full_run.stats.dpu_retries, off_run.stats.dpu_retries);
  // The retry shows up in the trace as an engine-level instant.
  EXPECT_NE(core::RapidEngine::LastTrace().find("engine.retry"),
            std::string::npos);
}

// ---- Well-formedness -------------------------------------------------------

TEST_F(ObservabilityTest, SpansWellFormedAndPerCoreTimeMonotone) {
  ScopedTraceMode full(TraceMode::kFull);
  ASSERT_OK_AND_ASSIGN(QueryResult r, engine_.Execute(JoinPlan()));
  ASSERT_GT(r.rows.num_rows(), 0u);

  const TraceCollector::Snapshot snap =
      TraceCollector::Instance().TakeSnapshot();
  ASSERT_GT(snap.tracks.size(), 4u);
  ASSERT_GT(snap.clock_hz, 0.0);
  size_t core_events = 0;
  for (const TraceCollector::Track& track : snap.tracks) {
    // Every begin had an end: no span is still open.
    EXPECT_EQ(track.open_depth, 0) << track.name;
    double last_end = 0;
    for (const TraceCollector::Event& e : track.events) {
      EXPECT_GE(e.end, e.begin) << track.name << ": " << e.name;
      EXPECT_GE(e.depth, 0) << track.name << ": " << e.name;
      if (track.cycle_time && track.name.rfind("dpCore", 0) == 0) {
        // Single writer per core track and a cycle clock that only
        // accumulates: close order is monotone in virtual time.
        EXPECT_GE(e.end, last_end) << track.name << ": " << e.name;
        last_end = e.end;
        ++core_events;
      }
    }
  }
  // Full mode actually recorded per-morsel core spans.
  EXPECT_GT(core_events, 0u);
}

TEST_F(ObservabilityTest, StepsTrackReconcilesWithModeledSeconds) {
  ScopedTraceMode summary(TraceMode::kSummary);
  ASSERT_OK_AND_ASSIGN(QueryResult r, engine_.Execute(JoinPlan()));
  ASSERT_GT(r.stats.modeled_seconds, 0.0);

  const TraceCollector::Snapshot snap =
      TraceCollector::Instance().TakeSnapshot();
  double step_cycles = 0;
  size_t step_spans = 0;
  for (const TraceCollector::Track& track : snap.tracks) {
    if (track.name != "steps") continue;
    for (const TraceCollector::Event& e : track.events) {
      if (e.instant) continue;
      step_cycles += e.end - e.begin;
      ++step_spans;
    }
  }
  ASSERT_GT(step_spans, 0u);
  const double traced_seconds = step_cycles / snap.clock_hz;
  // Acceptance bound is 1%; by construction the cursor makes it exact.
  EXPECT_NEAR(traced_seconds, r.stats.modeled_seconds,
              r.stats.modeled_seconds * 0.01);
}

TEST_F(ObservabilityTest, FullTraceRecordsDmsAndPlannerTracks) {
  ScopedTraceMode full(TraceMode::kFull);
  ASSERT_OK_AND_ASSIGN(QueryResult r, engine_.Execute(JoinPlan()));
  const TraceCollector::Snapshot snap =
      TraceCollector::Instance().TakeSnapshot();
  size_t dms_events = 0;
  size_t planner_events = 0;
  for (const TraceCollector::Track& track : snap.tracks) {
    if (track.name == "dms") dms_events = track.events.size();
    if (track.name == "planner") planner_events = track.events.size();
  }
  EXPECT_GT(dms_events, 0u);
  EXPECT_GT(planner_events, 0u);
  const std::string& json = core::RapidEngine::LastTrace();
  EXPECT_NE(json.find("dms.transfer"), std::string::npos);
  EXPECT_NE(json.find("qcomp.plan"), std::string::npos);
}

// ---- Stats invariants ------------------------------------------------------

TEST_F(ObservabilityTest, PlainBytesDominateEncodedBytesWhenEncodingOn) {
  ScopedEncodedScan on(storage::EncodedScanMode::kAuto);
  ASSERT_OK_AND_ASSIGN(QueryResult r, engine_.Execute(ScanPlan()));
  ASSERT_GT(r.stats.encoded_bytes_moved, 0u);
  EXPECT_GE(r.stats.plain_bytes_moved, r.stats.encoded_bytes_moved);
}

TEST_F(ObservabilityTest, StaticSchedulingNeverSteals) {
  ScopedSchedMode sched(dpu::SchedMode::kStatic);
  ASSERT_OK_AND_ASSIGN(QueryResult r, engine_.Execute(JoinPlan()));
  EXPECT_EQ(r.stats.imbalance.steal_count, 0u);
}

TEST_F(ObservabilityTest, FallbackZeroesDpuCountersInReport) {
  ScopedEncodedScan on(storage::EncodedScanMode::kAuto);
  LogicalPtr plan = ScanPlan();
  ASSERT_OK_AND_ASSIGN(QueryReport clean, host_.ExecuteQuery(plan, &engine_));
  ASSERT_FALSE(clean.fell_back);
  ASSERT_GT(clean.encoded_bytes_moved, 0u);

  ScopedFaultInjection fi(94);
  fi.Arm(faults::kDmsTransfer, FaultInjector::SiteSpec{});  // always fails
  ASSERT_OK_AND_ASSIGN(QueryReport fallback,
                       host_.ExecuteQuery(plan, &engine_));
  ASSERT_TRUE(fallback.fell_back);
  EXPECT_EQ(fallback.encoded_bytes_moved, 0u);
  EXPECT_EQ(fallback.plain_bytes_moved, 0u);
  EXPECT_EQ(fallback.runs_filtered, 0u);
  EXPECT_EQ(fallback.join_filter_built, 0u);
  EXPECT_EQ(fallback.rows_pruned_by_join_filter, 0u);
  EXPECT_EQ(SortedRows(fallback.rows), SortedRows(clean.rows));
}

// ---- EXPLAIN ANALYZE -------------------------------------------------------

TEST_F(ObservabilityTest, ExplainAnalyzeRendersPerNodeActuals) {
  ASSERT_OK_AND_ASSIGN(std::string text, engine_.ExplainAnalyze(JoinPlan()));
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(text.find("rows="), std::string::npos);
  EXPECT_NE(text.find("modeled_ms="), std::string::npos);
  EXPECT_NE(text.find("compute_cycles="), std::string::npos);
  // A join plan renders more than one physical node (lines are
  // indented two spaces per tree level, then "#<id> <describe>").
  size_t nodes = 0;
  size_t line_start = 0;
  while (line_start < text.size()) {
    size_t p = line_start;
    while (p < text.size() && text[p] == ' ') ++p;
    if (p < text.size() && text[p] == '#') ++nodes;
    const size_t nl = text.find('\n', line_start);
    if (nl == std::string::npos) break;
    line_start = nl + 1;
  }
  EXPECT_GE(nodes, 2u) << text;
}

TEST_F(ObservabilityTest, HostExplainAnalyzeIncludesOffloadDecision) {
  ASSERT_OK_AND_ASSIGN(std::string text,
                       host_.ExplainAnalyze(JoinPlan(), &engine_));
  EXPECT_NE(text.find("offload:"), std::string::npos);
  EXPECT_NE(text.find("rows="), std::string::npos);
}

TEST_F(ObservabilityTest, QueryReportSummaryIsStableKeyValueLine) {
  ASSERT_OK_AND_ASSIGN(QueryReport report,
                       host_.ExecuteQuery(JoinPlan(), &engine_));
  const std::string line = report.Summary();
  EXPECT_NE(line.find("rows="), std::string::npos);
  EXPECT_NE(line.find("offload="), std::string::npos);
  EXPECT_NE(line.find("modeled_ms="), std::string::npos);
  EXPECT_NE(line.find("plain_bytes="), std::string::npos);
  EXPECT_NE(line.find("retries="), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

// ---- Metrics ---------------------------------------------------------------

TEST(MetricsTest, CountersGaugesHistogramsAndSnapshot) {
  auto& reg = MetricsRegistry::Instance();
  MetricCounter* c = reg.Counter("test.counter");
  ASSERT_NE(c, nullptr);
  // Registration is idempotent: same name, same instance.
  EXPECT_EQ(c, reg.Counter("test.counter"));
  c->Reset();
  c->Increment();
  c->Add(4);
  EXPECT_EQ(c->value(), 5u);

  MetricGauge* g = reg.Gauge("test.gauge");
  g->Set(-7);
  EXPECT_EQ(g->value(), -7);

  MetricHistogram* h = reg.Histogram("test.histo", {1.0, 10.0, 100.0});
  h->Reset();
  h->Observe(0.5);
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);  // overflow bucket
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 555.5);
  EXPECT_EQ(h->bucket_count(0), 1u);
  EXPECT_EQ(h->bucket_count(1), 1u);
  EXPECT_EQ(h->bucket_count(2), 1u);
  EXPECT_EQ(h->bucket_count(3), 1u);

  bool saw_counter = false;
  for (const auto& entry : reg.Snapshot()) {
    if (entry.name == "test.counter") {
      saw_counter = true;
      EXPECT_EQ(entry.counter, 5u);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_NE(reg.DumpText().find("test.histo"), std::string::npos);
  EXPECT_NE(reg.DumpJson().find("\"test.gauge\""), std::string::npos);
}

TEST_F(ObservabilityTest, QueryEmitsEngineAndHostMetrics) {
  auto& reg = MetricsRegistry::Instance();
  const uint64_t engine_before = reg.Counter("rapid.queries")->value();
  const uint64_t host_before = reg.Counter("hostdb.queries")->value();
  ASSERT_OK_AND_ASSIGN(QueryReport report,
                       host_.ExecuteQuery(JoinPlan(), &engine_));
  ASSERT_GT(report.rows.num_rows(), 0u);
  EXPECT_GT(reg.Counter("rapid.queries")->value(), engine_before);
  EXPECT_GT(reg.Counter("hostdb.queries")->value(), host_before);
}

// ---- Logging ---------------------------------------------------------------

TEST(LoggingTest, LevelGateHonorsForcedLevel) {
  ScopedLogLevel warn(LogLevel::kWarn);
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  {
    ScopedLogLevel debug(LogLevel::kDebug);
    EXPECT_TRUE(LogEnabled(LogLevel::kDebug));
  }
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  // The macro itself compiles and runs at an enabled level.
  RAPID_LOG(kWarn, "logging self-test %d", 42);
}

}  // namespace
}  // namespace rapid
