// Scalar-vs-SIMD equivalence suite for the dispatched primitive
// kernels. For every vectorized (op, type) pair the kernels at each
// supported SIMD level must be *bit-identical* to the scalar twin:
// same bit-vector words (including zero tail bits), same RID lists in
// the same order, same aggregate state, same hashes. The suite runs
// the same tiles under ForceSimdLevel(kScalar) and under every level
// up to SimdLevelSupported(), so on an AVX2 host it covers scalar,
// SSE4.2 and AVX2 in one binary; the RAPID_SIMD=off CI leg then
// re-runs it with dispatch pinned to scalar.

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitvector.h"
#include "common/crc32.h"
#include "common/simd.h"
#include "dpu/cost_model.h"
#include "primitives/agg.h"
#include "primitives/arith.h"
#include "primitives/filter.h"
#include "primitives/hash.h"
#include "primitives/registry.h"
#include "primitives/simd.h"

namespace rapid::primitives {
namespace {

using rapid::BitVector;
using rapid::ForceSimdLevel;
using rapid::SimdLevel;
using rapid::SimdLevelSupported;

// Tile lengths exercising empty tiles, word boundaries (63/64/65),
// a non-power-of-two body and a full 4 KiB-row tile.
const size_t kLengths[] = {0, 1, 63, 64, 65, 1000, 4096};

// Restores the pre-test dispatch level even if an assertion fires.
class LevelGuard {
 public:
  LevelGuard() : previous_(ForceSimdLevel(SimdLevel::kScalar)) {}
  ~LevelGuard() { ForceSimdLevel(previous_); }

 private:
  SimdLevel previous_;
};

std::vector<SimdLevel> LevelsToTest() {
  std::vector<SimdLevel> levels;
  for (int l = 0; l <= static_cast<int>(SimdLevelSupported()); ++l) {
    levels.push_back(static_cast<SimdLevel>(l));
  }
  return levels;
}

// Seeded tile of T drawn from a small domain (many duplicates, so
// every comparison op selects a non-trivial subset) mixed with
// full-range values and the type's extremes.
template <typename T>
std::vector<T> MakeTile(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<T> values(n);
  for (size_t i = 0; i < n; ++i) {
    switch (rng() % 4) {
      case 0:
        values[i] = static_cast<T>(rng() % 16);  // dense duplicates
        break;
      case 1:
        values[i] = static_cast<T>(rng());  // full bit range
        break;
      case 2:
        values[i] = std::numeric_limits<T>::min();
        break;
      default:
        values[i] = std::numeric_limits<T>::max();
        break;
    }
  }
  return values;
}

template <typename T>
class SimdFilterTest : public ::testing::Test {};
using FilterTypes =
    ::testing::Types<int8_t, uint8_t, int16_t, uint16_t, int32_t, uint32_t,
                     int64_t, uint64_t>;
TYPED_TEST_SUITE(SimdFilterTest, FilterTypes);

TYPED_TEST(SimdFilterTest, ConstBvBitIdenticalAcrossLevels) {
  using T = TypeParam;
  LevelGuard guard;
  for (size_t n : kLengths) {
    const std::vector<T> values = MakeTile<T>(n, 17 * n + sizeof(T));
    const T constants[] = {static_cast<T>(7), std::numeric_limits<T>::min(),
                           std::numeric_limits<T>::max(),
                           n > 0 ? values[n / 2] : static_cast<T>(0)};
    for (T c : constants) {
      for (int op = 0; op < simd::kNumCmpOps; ++op) {
        // Scalar reference words.
        ForceSimdLevel(SimdLevel::kScalar);
        const size_t num_words = (n + 63) / 64;
        std::vector<uint64_t> ref(num_words + 1, ~uint64_t{0});
        simd::filter_kernels<T>().const_bv[op](values.data(), n, c, ref.data());
        for (SimdLevel level : LevelsToTest()) {
          ForceSimdLevel(level);
          std::vector<uint64_t> got(num_words + 1, ~uint64_t{0});
          simd::filter_kernels<T>().const_bv[op](values.data(), n, c,
                                                 got.data());
          for (size_t w = 0; w < num_words; ++w) {
            ASSERT_EQ(ref[w], got[w])
                << "type width " << sizeof(T) << " op " << op << " n " << n
                << " level " << rapid::SimdLevelName(level) << " word " << w;
          }
          // Tail bits beyond n must be zero; the guard word beyond
          // ceil(n/64) must be untouched.
          if (n % 64 != 0) {
            EXPECT_EQ(got[num_words - 1] >> (n % 64), 0u);
          }
          EXPECT_EQ(got[num_words], ~uint64_t{0});
        }
      }
    }
  }
}

TYPED_TEST(SimdFilterTest, ColColAndBetweenBitIdenticalAcrossLevels) {
  using T = TypeParam;
  LevelGuard guard;
  for (size_t n : kLengths) {
    const std::vector<T> left = MakeTile<T>(n, 3 * n + 1);
    const std::vector<T> right = MakeTile<T>(n, 5 * n + 2);
    const T lo = static_cast<T>(2);
    const T hi = static_cast<T>(11);
    const size_t num_words = (n + 63) / 64;

    ForceSimdLevel(SimdLevel::kScalar);
    std::vector<std::vector<uint64_t>> ref(simd::kNumCmpOps);
    for (int op = 0; op < simd::kNumCmpOps; ++op) {
      ref[op].assign(num_words, 0);
      simd::filter_kernels<T>().colcol_bv[op](left.data(), right.data(), n,
                                              ref[op].data());
    }
    std::vector<uint64_t> ref_between(num_words, 0);
    simd::filter_kernels<T>().between_bv(left.data(), n, lo, hi,
                                         ref_between.data());

    for (SimdLevel level : LevelsToTest()) {
      ForceSimdLevel(level);
      for (int op = 0; op < simd::kNumCmpOps; ++op) {
        std::vector<uint64_t> got(num_words, 0);
        simd::filter_kernels<T>().colcol_bv[op](left.data(), right.data(), n,
                                                got.data());
        EXPECT_EQ(ref[op], got) << "colcol op " << op << " n " << n
                                << " level " << rapid::SimdLevelName(level);
      }
      std::vector<uint64_t> got(num_words, 0);
      simd::filter_kernels<T>().between_bv(left.data(), n, lo, hi, got.data());
      EXPECT_EQ(ref_between, got)
          << "between n " << n << " level " << rapid::SimdLevelName(level);
    }
  }
}

TYPED_TEST(SimdFilterTest, RidListsMatchScalarOrderAndContent) {
  using T = TypeParam;
  LevelGuard guard;
  for (size_t n : kLengths) {
    const std::vector<T> values = MakeTile<T>(n, 29 * n + 5);
    const T c = static_cast<T>(7);

    ForceSimdLevel(SimdLevel::kScalar);
    std::vector<uint32_t> ref_rids;
    FilterConstRid<CmpOp::kLe, T>(values.data(), n, c, &ref_rids);
    std::vector<uint32_t> ref_gathered = ref_rids;
    {
      // Gather the qualifying values, then refine with a second
      // predicate — mirrors the RID pipeline in the executor.
      std::vector<T> gathered(ref_gathered.size());
      for (size_t i = 0; i < ref_gathered.size(); ++i) {
        gathered[i] = values[ref_gathered[i]];
      }
      FilterGatheredRid<CmpOp::kGe, T>(gathered.data(), static_cast<T>(3),
                                       &ref_gathered);
    }

    for (SimdLevel level : LevelsToTest()) {
      ForceSimdLevel(level);
      std::vector<uint32_t> rids;
      FilterConstRid<CmpOp::kLe, T>(values.data(), n, c, &rids);
      EXPECT_EQ(ref_rids, rids)
          << "FilterConstRid n " << n << " level "
          << rapid::SimdLevelName(level);
      std::vector<uint32_t> refined = ref_rids;
      std::vector<T> gathered(refined.size());
      for (size_t i = 0; i < refined.size(); ++i) {
        gathered[i] = values[refined[i]];
      }
      const size_t kept = FilterGatheredRid<CmpOp::kGe, T>(
          gathered.data(), static_cast<T>(3), &refined);
      EXPECT_EQ(ref_gathered, refined);
      EXPECT_EQ(ref_gathered.size(), kept);
    }
  }
}

// Satellite regression: FilterConstBv must *assign* every output word,
// not OR into stale bits. Reuse one BitVector across tiles of
// decreasing then increasing length; any read-modify-write of the
// output words or stale tail would leave extra bits set.
TEST(FilterConstBvReuse, NoOrAccumulationAcrossShrinkingAndGrowingTiles) {
  LevelGuard guard;
  for (SimdLevel level : LevelsToTest()) {
    ForceSimdLevel(level);
    BitVector bv;
    for (size_t n : {4096, 65, 64, 63, 1, 0, 1, 63, 64, 65, 4096}) {
      std::vector<int32_t> values(n, 1);  // all rows qualify (== 1)
      FilterConstBv<CmpOp::kEq, int32_t>(values.data(), n, 1, &bv);
      ASSERT_EQ(bv.size(), n);
      ASSERT_EQ(bv.CountOnes(), n) << "level " << rapid::SimdLevelName(level);
      // Now none qualify: every previously-set bit must clear.
      FilterConstBv<CmpOp::kEq, int32_t>(values.data(), n, 2, &bv);
      ASSERT_EQ(bv.CountOnes(), 0u) << "level "
                                    << rapid::SimdLevelName(level);
    }
  }
}

TEST(FilterConstBvRefine, MatchesFilterThenAnd) {
  LevelGuard guard;
  const size_t n = 1000;
  const std::vector<int32_t> values = MakeTile<int32_t>(n, 99);
  BitVector in;
  in.Resize(n);
  for (size_t i = 0; i < n; i += 3) in.Set(i);
  for (SimdLevel level : LevelsToTest()) {
    ForceSimdLevel(level);
    BitVector expected;
    FilterConstBv<CmpOp::kGt, int32_t>(values.data(), n, 5, &expected);
    expected.And(in);
    BitVector got;
    FilterConstBvRefine<CmpOp::kGt, int32_t>(values.data(), n, 5, in, &got);
    EXPECT_TRUE(expected == got) << "level " << rapid::SimdLevelName(level);
  }
}

// ---- Aggregation -----------------------------------------------------------

template <typename T>
class SimdAggTest : public ::testing::Test {};
using AggTypes = ::testing::Types<int32_t, uint32_t, int64_t, uint64_t>;
TYPED_TEST_SUITE(SimdAggTest, AggTypes);

// Agg tiles bound the magnitude so the scalar twin's int64 sum cannot
// overflow (UB there); equivalence over the full bit range is covered
// by the filter/hash tests.
template <typename T>
std::vector<T> MakeAggTile(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<T> values(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t magnitude = rng() % (uint64_t{1} << 40);
    if (std::is_signed_v<T> && rng() % 2 == 0) {
      values[i] = static_cast<T>(-static_cast<int64_t>(magnitude));
    } else {
      values[i] = static_cast<T>(magnitude);
    }
  }
  return values;
}

TYPED_TEST(SimdAggTest, TileAndSelectedMatchScalar) {
  using T = TypeParam;
  LevelGuard guard;
  for (size_t n : kLengths) {
    const std::vector<T> values = MakeAggTile<T>(n, 7 * n + 3);
    BitVector selected;
    selected.Resize(n);
    std::mt19937_64 rng(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng() % 3 != 0) selected.Set(i);
    }
    // One fully-set word in the middle exercises the all-ones fast
    // path of the selected kernel.
    if (n >= 128) {
      for (size_t i = 64; i < 128; ++i) selected.Set(i);
    }

    ForceSimdLevel(SimdLevel::kScalar);
    AggState ref_full;
    AggTile(values.data(), n, &ref_full);
    AggState ref_sel;
    AggTileSelected(values.data(), selected, &ref_sel);

    for (SimdLevel level : LevelsToTest()) {
      ForceSimdLevel(level);
      AggState full;
      AggTile(values.data(), n, &full);
      EXPECT_EQ(ref_full.sum, full.sum);
      EXPECT_EQ(ref_full.min, full.min);
      EXPECT_EQ(ref_full.max, full.max);
      EXPECT_EQ(ref_full.count, full.count);
      AggState sel;
      AggTileSelected(values.data(), selected, &sel);
      EXPECT_EQ(ref_sel.sum, sel.sum) << "n " << n << " level "
                                      << rapid::SimdLevelName(level);
      EXPECT_EQ(ref_sel.min, sel.min);
      EXPECT_EQ(ref_sel.max, sel.max);
      EXPECT_EQ(ref_sel.count, sel.count);
    }
  }
}

// Empty and tiny tiles must not clobber min/max with vector-identity
// values (the "merge only if the vector loop ran" guard).
TYPED_TEST(SimdAggTest, TinyTilesDoNotLeakIdentityValues) {
  using T = TypeParam;
  LevelGuard guard;
  for (SimdLevel level : LevelsToTest()) {
    ForceSimdLevel(level);
    AggState state;
    AggTile<T>(nullptr, 0, &state);
    EXPECT_EQ(state.min, INT64_MAX);
    EXPECT_EQ(state.max, INT64_MIN);
    EXPECT_EQ(state.count, 0u);
    const T one[] = {static_cast<T>(5)};
    AggTile<T>(one, 1, &state);
    EXPECT_EQ(state.min, 5);
    EXPECT_EQ(state.max, 5);
    EXPECT_EQ(state.sum, 5);
    EXPECT_EQ(state.count, 1u);
  }
}

// ---- Arithmetic ------------------------------------------------------------

template <typename T>
class SimdArithTest : public ::testing::Test {};
TYPED_TEST_SUITE(SimdArithTest, AggTypes);

// Bounded so T*T and T+T cannot overflow a signed element (UB in the
// scalar twin).
template <typename T>
std::vector<T> MakeArithTile(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<T> values(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t magnitude = static_cast<int64_t>(rng() % 30000);
    values[i] = static_cast<T>(std::is_signed_v<T> && rng() % 2 == 0
                                   ? -magnitude
                                   : magnitude);
  }
  return values;
}

TYPED_TEST(SimdArithTest, ColColAndColConstMatchScalar) {
  using T = TypeParam;
  LevelGuard guard;
  for (size_t n : kLengths) {
    const std::vector<T> left = MakeArithTile<T>(n, 11 * n + 1);
    const std::vector<T> right = MakeArithTile<T>(n, 13 * n + 2);
    const T c = static_cast<T>(37);
    for (int op = 0; op < simd::kNumArithOps; ++op) {
      ForceSimdLevel(SimdLevel::kScalar);
      std::vector<T> ref_cc(n), ref_ck(n);
      simd::arith_kernels<T>().colcol[op](left.data(), right.data(), n,
                                          ref_cc.data());
      simd::arith_kernels<T>().colconst[op](left.data(), n, c, ref_ck.data());
      for (SimdLevel level : LevelsToTest()) {
        ForceSimdLevel(level);
        std::vector<T> cc(n), ck(n);
        simd::arith_kernels<T>().colcol[op](left.data(), right.data(), n,
                                            cc.data());
        simd::arith_kernels<T>().colconst[op](left.data(), n, c, ck.data());
        EXPECT_EQ(ref_cc, cc) << "colcol op " << op << " n " << n << " level "
                              << rapid::SimdLevelName(level);
        EXPECT_EQ(ref_ck, ck) << "colconst op " << op << " n " << n
                              << " level " << rapid::SimdLevelName(level);
        // In-place aliasing (out == values), which DsbRescaleTile uses.
        std::vector<T> inplace = left;
        simd::arith_kernels<T>().colconst[op](inplace.data(), n, c,
                                              inplace.data());
        EXPECT_EQ(ref_ck, inplace);
      }
    }
  }
}

// ---- Hashing ---------------------------------------------------------------

template <typename T>
class SimdHashTest : public ::testing::Test {};
TYPED_TEST_SUITE(SimdHashTest, FilterTypes);

TYPED_TEST(SimdHashTest, TileAndCombineMatchCrc32Reference) {
  using T = TypeParam;
  LevelGuard guard;
  for (size_t n : kLengths) {
    const std::vector<T> keys = MakeTile<T>(n, 23 * n + 7);
    // Reference: the per-row CRC32 helpers the join/partition layers
    // were built on. Every level must reproduce them exactly, or join
    // placement and partition assignment would change with the ISA.
    std::vector<uint32_t> ref(n), ref_combine(n);
    for (size_t i = 0; i < n; ++i) {
      ref[i] = Crc32U64(static_cast<uint64_t>(keys[i]));
      ref_combine[i] =
          Crc32Combine(static_cast<uint32_t>(i * 2654435761u),
                       static_cast<uint64_t>(keys[i]));
    }
    for (SimdLevel level : LevelsToTest()) {
      ForceSimdLevel(level);
      std::vector<uint32_t> got(n);
      HashTile(keys.data(), n, got.data());
      EXPECT_EQ(ref, got) << "HashTile n " << n << " level "
                          << rapid::SimdLevelName(level);
      std::vector<uint32_t> combine(n);
      for (size_t i = 0; i < n; ++i) {
        combine[i] = static_cast<uint32_t>(i * 2654435761u);
      }
      HashCombineTile(keys.data(), n, combine.data());
      EXPECT_EQ(ref_combine, combine)
          << "HashCombineTile n " << n << " level "
          << rapid::SimdLevelName(level);
    }
  }
}

// ---- Partition kernels -----------------------------------------------------

TEST(SimdPartitionTest, PartitionOfHistogramBucketIndicesMatchScalar) {
  LevelGuard guard;
  for (size_t n : kLengths) {
    std::mt19937_64 rng(41 * n + 9);
    std::vector<uint32_t> hashes(n);
    for (auto& h : hashes) h = static_cast<uint32_t>(rng());
    for (const auto& [shift, fanout] : {std::pair<int, size_t>{0, 32},
                                        {7, 64}, {16, 1024}, {20, 4096}}) {
      const uint32_t mask = static_cast<uint32_t>(fanout - 1);

      ForceSimdLevel(SimdLevel::kScalar);
      std::vector<uint16_t> ref_parts(n);
      simd::partition_kernels().partition_of(hashes.data(), n, shift, mask,
                                             ref_parts.data());
      std::vector<uint32_t> ref_counts(fanout, 0);
      simd::partition_kernels().histogram(ref_parts.data(), n,
                                          ref_counts.data(), fanout);
      std::vector<uint32_t> ref_buckets(n);
      simd::partition_kernels().bucket_indices(hashes.data(), n, mask,
                                               ref_buckets.data());

      for (SimdLevel level : LevelsToTest()) {
        ForceSimdLevel(level);
        std::vector<uint16_t> parts(n);
        simd::partition_kernels().partition_of(hashes.data(), n, shift, mask,
                                               parts.data());
        EXPECT_EQ(ref_parts, parts) << "partition_of n " << n << " shift "
                                    << shift << " level "
                                    << rapid::SimdLevelName(level);
        std::vector<uint32_t> counts(fanout, 0);
        simd::partition_kernels().histogram(parts.data(), n, counts.data(),
                                            fanout);
        EXPECT_EQ(ref_counts, counts);
        std::vector<uint32_t> buckets(n);
        simd::partition_kernels().bucket_indices(hashes.data(), n, mask,
                                                 buckets.data());
        EXPECT_EQ(ref_buckets, buckets);
      }
    }
  }
}

// A partition_of mask wider than 16 bits saturates packus_epi32; the
// AVX2 kernel must detect this and produce the scalar truncation.
TEST(SimdPartitionTest, WideMaskFallsBackToScalarSemantics) {
  LevelGuard guard;
  const size_t n = 1000;
  std::mt19937_64 rng(5);
  std::vector<uint32_t> hashes(n);
  for (auto& h : hashes) h = static_cast<uint32_t>(rng());
  const uint32_t wide_mask = (1u << 18) - 1;  // fanout 256 Ki (synthetic)

  ForceSimdLevel(SimdLevel::kScalar);
  std::vector<uint16_t> ref(n);
  simd::partition_kernels().partition_of(hashes.data(), n, 0, wide_mask,
                                         ref.data());
  for (SimdLevel level : LevelsToTest()) {
    ForceSimdLevel(level);
    std::vector<uint16_t> got(n);
    simd::partition_kernels().partition_of(hashes.data(), n, 0, wide_mask,
                                           got.data());
    EXPECT_EQ(ref, got) << "level " << rapid::SimdLevelName(level);
  }
}

// ---- Dispatch bookkeeping --------------------------------------------------

TEST(SimdDispatchTest, ResolvedLevelNeverExceedsActiveLevel) {
  LevelGuard guard;
  for (SimdLevel level : LevelsToTest()) {
    ForceSimdLevel(level);
    for (const char* family : {"filter", "agg", "arith", "hash", "partition"}) {
      for (int width : {1, 2, 4, 8}) {
        EXPECT_LE(static_cast<int>(simd::ResolvedLevel(family, width)),
                  static_cast<int>(level))
            << family << " width " << width;
      }
    }
  }
}

TEST(SimdDispatchTest, CatalogReportsResolvedIsa) {
  LevelGuard guard;
  const auto& catalog = PrimitiveCatalog::Instance();

  ForceSimdLevel(SimdLevel::kScalar);
  for (const PrimitiveInfo& info : catalog.primitives()) {
    auto isa = catalog.ResolvedIsa(info.name);
    ASSERT_TRUE(isa.ok()) << info.name;
    EXPECT_EQ("scalar", isa.value()) << info.name;
  }

  if (SimdLevelSupported() >= SimdLevel::kAvx2) {
    ForceSimdLevel(SimdLevel::kAvx2);
    // 4-byte filters run AVX2 kernels; the CRC32 hash family has no
    // AVX2 form and resolves to the inherited SSE4.2 kernels.
    EXPECT_EQ("avx2", catalog
                          .ResolvedIsa(PrimitiveCatalog::FilterName("eq", 4,
                                                                    false))
                          .value());
    EXPECT_EQ("sse42", catalog.ResolvedIsa("rpdmpr_crc32_ub8").value());
  }
  EXPECT_FALSE(catalog.ResolvedIsa("no_such_primitive").ok());
}

TEST(SimdDispatchTest, HostCalibratedMultipliersTrackActiveLevel) {
  LevelGuard guard;
  ForceSimdLevel(SimdLevel::kScalar);
  const dpu::CostParams scalar = dpu::CostParams::HostCalibrated();
  EXPECT_EQ(1.0, scalar.simd.filter);
  EXPECT_EQ(1.0, scalar.simd.agg);

  for (SimdLevel level : LevelsToTest()) {
    ForceSimdLevel(level);
    const dpu::CostParams p = dpu::CostParams::HostCalibrated();
    EXPECT_GE(p.simd.filter, 1.0);
    EXPECT_GE(p.simd.agg, 1.0);
    EXPECT_GE(p.simd.arith, 1.0);
    EXPECT_GE(p.simd.hash, 1.0);
    EXPECT_GE(p.simd.partition_map, 1.0);
    if (level == SimdLevel::kAvx2) {
      EXPECT_GT(p.simd.filter, scalar.simd.filter);
      EXPECT_GT(p.simd.agg, scalar.simd.agg);
    }
  }
  // Default() stays deterministic: all multipliers exactly 1.
  EXPECT_EQ(1.0, dpu::CostParams::Default().simd.filter);
  EXPECT_EQ(1.0, dpu::CostParams::Default().simd.partition_map);
}

}  // namespace
}  // namespace rapid::primitives
