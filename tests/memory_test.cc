// Tile-local memory subsystem tests: arena alignment/growth/reset,
// tile-buffer-pool recycling (steady state allocates nothing new),
// write-combining partition scatter bit-identity against the scalar
// twin across SIMD levels and scheduling modes, the dmem.alloc fault
// path with pooled operators, and host-fallback reuse of completed
// DPU subtree results.

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/fault.h"
#include "common/simd.h"
#include "core/engine.h"
#include "dpu/work_queue.h"
#include "hostdb/database.h"
#include "hostdb/offload.h"
#include "primitives/simd.h"
#include "tests/test_util.h"

namespace rapid {
namespace {

using core::ExecOptions;
using core::LogicalNode;
using core::LogicalPtr;
using core::Predicate;
using core::QueryResult;
using hostdb::HostDatabase;
using hostdb::QueryReport;
using primitives::CmpOp;
using rapid::testing::ExpectSameRows;
using rapid::testing::SortedRows;

bool Aligned(const void* p, size_t alignment) {
  return reinterpret_cast<uintptr_t>(p) % alignment == 0;
}

// ---- Arena -----------------------------------------------------------------

TEST(ArenaTest, AllocationsAre64ByteAlignedByDefault) {
  Arena arena;
  // Odd sizes force the bump pointer off alignment between calls.
  for (size_t bytes : {1u, 7u, 63u, 64u, 65u, 1000u}) {
    void* p = arena.Allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(Aligned(p, Arena::kDefaultAlignment)) << bytes;
    std::memset(p, 0xAB, bytes);  // must be writable
  }
  EXPECT_EQ(arena.stats().alloc_calls, 6u);
  EXPECT_GE(arena.stats().bytes_reserved, arena.stats().bytes_used);
}

TEST(ArenaTest, GrowsByChunksAndTracksHighWater) {
  Arena arena(4096);
  EXPECT_EQ(arena.stats().chunk_count, 0u);
  arena.Allocate(1024);
  EXPECT_EQ(arena.stats().chunk_count, 1u);
  // Larger than the chunk size: the arena must still serve it.
  void* big = arena.Allocate(64 * 1024);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.stats().chunk_count, 2u);
  EXPECT_GE(arena.stats().high_water, 64u * 1024);
}

TEST(ArenaTest, ResetRewindsButKeepsChunks) {
  Arena arena(4096);
  for (int i = 0; i < 8; ++i) arena.Allocate(1024);
  const size_t chunks = arena.stats().chunk_count;
  const size_t reserved = arena.stats().bytes_reserved;
  arena.Reset();
  EXPECT_EQ(arena.stats().bytes_used, 0u);
  EXPECT_EQ(arena.stats().chunk_count, chunks);
  // Refilling after Reset reuses the retained chunks: no new memory.
  for (int i = 0; i < 8; ++i) arena.Allocate(1024);
  EXPECT_EQ(arena.stats().bytes_reserved, reserved);
}

TEST(ArenaTest, TypedArrayRespectsElementAlignment) {
  Arena arena;
  arena.Allocate(1);  // misalign the cursor
  int64_t* v = arena.AllocateArray<int64_t>(100);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(Aligned(v, alignof(int64_t)));
  for (int i = 0; i < 100; ++i) v[i] = i;
  EXPECT_EQ(v[99], 99);
}

// ---- TileBufferPool --------------------------------------------------------

TEST(TileBufferPoolTest, BuffersAreAlignedAndSizedUp) {
  Arena arena;
  TileBufferPool pool(&arena);
  auto h = pool.Acquire(100);
  ASSERT_TRUE(h);
  EXPECT_TRUE(Aligned(h.data(), Arena::kDefaultAlignment));
  EXPECT_GE(h.size(), 100u);  // rounded up to the size class
}

TEST(TileBufferPoolTest, SteadyStateStopsAllocating) {
  if (TileBufferPool::BypassActive()) {
    GTEST_SKIP() << "RAPID_TILE_POOL=off: recycling disabled by request";
  }
  Arena arena;
  TileBufferPool pool(&arena);
  // Warm-up: first acquire of each class is a miss.
  { auto a = pool.Acquire(4096); auto b = pool.Acquire(4096); }
  const size_t warm_misses = pool.stats().misses;
  const size_t warm_used = arena.stats().bytes_used;
  // Cross-"tile" reuse: the same working set must recycle forever.
  for (int tile = 0; tile < 100; ++tile) {
    auto a = pool.Acquire(4096);
    auto b = pool.Acquire(4096);
    std::memset(a.data(), tile, a.size());
  }
  EXPECT_EQ(pool.stats().misses, warm_misses);
  EXPECT_EQ(arena.stats().bytes_used, warm_used);
  EXPECT_GE(pool.stats().reuses, 200u);
}

TEST(TileBufferPoolTest, BypassModeBuysNothingButStaysCorrect) {
  Arena arena;
  TileBufferPool pool(&arena);
  const bool prev = TileBufferPool::ForceBypass(true);
  for (int i = 0; i < 4; ++i) {
    auto h = pool.AcquireArray<int64_t>(512);
    ASSERT_TRUE(h);
    h.as<int64_t>()[511] = i;
  }
  TileBufferPool::ForceBypass(prev);
  // Every bypass acquire went to the heap: no reuse, no arena growth.
  EXPECT_EQ(pool.stats().acquires, 4u);
  EXPECT_EQ(pool.stats().reuses, 0u);
  EXPECT_EQ(arena.stats().bytes_used, 0u);
}

TEST(TileBufferPoolTest, HandleMoveTransfersOwnership) {
  if (TileBufferPool::BypassActive()) {
    GTEST_SKIP() << "RAPID_TILE_POOL=off: recycling disabled by request";
  }
  Arena arena;
  TileBufferPool pool(&arena);
  auto a = pool.Acquire(256);
  uint8_t* p = a.data();
  TileBufferPool::Handle b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): post-move probe
  EXPECT_EQ(b.data(), p);
  b.reset();
  // The buffer went back to the free list: next acquire reuses it.
  auto c = pool.Acquire(256);
  EXPECT_EQ(c.data(), p);
}

// ---- Write-combining scatter kernels ---------------------------------------

// Reference scatter: the simplest possible stable loop.
void ReferenceScatter(const std::vector<int64_t>& input,
                      const std::vector<uint16_t>& pof, size_t fanout,
                      std::vector<std::vector<int64_t>>* out) {
  out->assign(fanout, {});
  for (size_t i = 0; i < input.size(); ++i) {
    (*out)[pof[i]].push_back(input[i]);
  }
}

class ScatterLevelGuard {
 public:
  ScatterLevelGuard() : previous_(ForceSimdLevel(SimdLevel::kScalar)) {}
  ~ScatterLevelGuard() { ForceSimdLevel(previous_); }

 private:
  SimdLevel previous_;
};

TEST(ScatterKernelTest, BitIdenticalToReferenceAcrossLevelsAndFanouts) {
  ScatterLevelGuard guard;
  std::mt19937_64 rng(12345);
  Arena arena;
  // Sizes cross the WC-line boundary and leave partial tails; fan-outs
  // cover the >= 64 regime the cost model targets.
  for (size_t fanout : {3u, 16u, 64u, 256u}) {
    for (size_t n : {0u, 1u, 63u, 257u, 4096u, 5003u}) {
      std::vector<int64_t> input(n);
      std::vector<uint16_t> pof(n);
      for (size_t i = 0; i < n; ++i) {
        input[i] = static_cast<int64_t>(rng());
        pof[i] = static_cast<uint16_t>(rng() % fanout);
      }
      std::vector<std::vector<int64_t>> expected;
      ReferenceScatter(input, pof, fanout, &expected);

      for (int l = 0; l <= static_cast<int>(SimdLevelSupported()); ++l) {
        ForceSimdLevel(static_cast<SimdLevel>(l));
        // Destinations deliberately start at unaligned offsets so the
        // vector tier exercises its pre-alignment head path.
        std::vector<std::vector<int64_t>> storage(fanout);
        std::vector<int64_t*> dst(fanout);
        for (size_t p = 0; p < fanout; ++p) {
          storage[p].assign(expected[p].size() + 3, -1);
          dst[p] = storage[p].data() + 3;
        }
        uint8_t* wc = static_cast<uint8_t*>(
            arena.Allocate(primitives::simd::ScatterScratchBytes(fanout)));
        primitives::simd::partition_kernels().scatter_col(
            input.data(), pof.data(), n, fanout, dst.data(), wc);
        for (size_t p = 0; p < fanout; ++p) {
          ASSERT_EQ(0, std::memcmp(dst[p], expected[p].data(),
                                   expected[p].size() * sizeof(int64_t)))
              << "level " << l << " fanout " << fanout << " n " << n
              << " partition " << p;
          // Guard rows before the start must be untouched.
          EXPECT_EQ(storage[p][0], -1);
          EXPECT_EQ(storage[p][2], -1);
        }
      }
    }
  }
}

// ---- Engine-level identity and pool behavior -------------------------------

class MemoryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<storage::ColumnSpec> specs = {
        {"id", storage::ColumnKind::kInt64},
        {"v", storage::ColumnKind::kInt32}};
    std::vector<storage::ColumnData> data(2);
    std::mt19937_64 rng(9);
    for (int i = 0; i < 6000; ++i) {
      data[0].ints.push_back(i);
      data[1].ints.push_back(static_cast<int64_t>(rng() % 512));
    }
    ASSERT_OK(host_.CreateTable("t", specs, data));
    ASSERT_OK(host_.LoadToRapid("t", &engine_));

    std::vector<storage::ColumnSpec> dspecs = {
        {"k", storage::ColumnKind::kInt64},
        {"w", storage::ColumnKind::kInt32}};
    std::vector<storage::ColumnData> ddata(2);
    for (int i = 0; i < 512; ++i) {
      ddata[0].ints.push_back(i);
      ddata[1].ints.push_back(i * 7);
    }
    ASSERT_OK(host_.CreateTable("d", dspecs, ddata));
    ASSERT_OK(host_.LoadToRapid("d", &engine_));
  }

  // Partitioned join: drives the software-partition scatter path.
  LogicalPtr JoinPlan() {
    return LogicalNode::Join(LogicalNode::Scan("t", {"id", "v"}),
                             LogicalNode::Scan("d", {"k", "w"}), {"v"}, {"k"},
                             {"id", "w"});
  }

  // Filter + arithmetic projection + aggregate: the Q6-shaped pooled
  // pipeline (filter gather, expression temporaries).
  LogicalPtr AggPlan() {
    return LogicalNode::GroupBy(
        LogicalNode::Scan("t", {"id", "v"},
                          {Predicate::CmpConst("v", CmpOp::kLt, 300)}),
        {},
        {{"s", core::AggFunc::kSum,
          core::Expr::Mul(core::Expr::Col("id"), core::Expr::Col("v")), {}}});
  }

  HostDatabase host_;
  core::RapidEngine engine_{dpu::DpuConfig{}};
};

TEST_F(MemoryEngineTest, ScatterPathBitIdenticalAcrossSimdAndSched) {
  // Force the partitioned join so SplitRange's WC scatter runs.
  ExecOptions options;
  options.planner.enable_fusion = false;

  ScatterLevelGuard level_guard;
  std::vector<std::vector<std::vector<int64_t>>> results;
  for (int l = 0; l <= static_cast<int>(SimdLevelSupported()); ++l) {
    for (dpu::SchedMode mode : {dpu::SchedMode::kStatic,
                                dpu::SchedMode::kMorsel}) {
      ForceSimdLevel(static_cast<SimdLevel>(l));
      const dpu::SchedMode prev = dpu::ForceSchedMode(mode);
      auto result = engine_.Execute(JoinPlan(), options);
      dpu::ForceSchedMode(prev);
      ASSERT_OK(result.status());
      results.push_back(SortedRows(result.value().rows));
    }
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i]) << "combination " << i;
  }
}

TEST_F(MemoryEngineTest, TilePoolWarmsUpAcrossQueries) {
  if (TileBufferPool::BypassActive()) {
    GTEST_SKIP() << "RAPID_TILE_POOL=off: recycling disabled by request";
  }
  ASSERT_OK_AND_ASSIGN(QueryResult first, engine_.Execute(AggPlan()));
  EXPECT_GT(first.stats.tile_pool.acquires, 0u);
  EXPECT_GT(first.stats.arena.bytes_used, 0u);
  const uint64_t high_water = first.stats.arena.high_water;

  // The pool persists across queries: an identical second run must be
  // fully served from recycled buffers, with zero arena growth.
  ASSERT_OK_AND_ASSIGN(QueryResult second, engine_.Execute(AggPlan()));
  EXPECT_EQ(second.stats.tile_pool.misses, 0u);
  EXPECT_GT(second.stats.tile_pool.reuses, 0u);
  EXPECT_EQ(second.stats.arena.high_water, high_water);
  ExpectSameRows(first.rows, second.rows);
}

TEST_F(MemoryEngineTest, DmemOomStillDemotesWithPooledOperators) {
  ASSERT_OK_AND_ASSIGN(QueryResult clean, engine_.Execute(AggPlan()));

  ScopedFaultInjection fi(31);
  FaultInjector::SiteSpec spec;
  spec.code = StatusCode::kOutOfMemory;
  spec.max_failures = 1;  // fused attempt dies, unfused retry is clean
  fi.Arm(faults::kDmemAlloc, spec);

  ASSERT_OK_AND_ASSIGN(QueryResult demoted, engine_.Execute(AggPlan()));
  EXPECT_TRUE(demoted.stats.demoted_to_unfused);
  ExpectSameRows(demoted.rows, clean.rows);
}

// ---- Host fallback reuse of completed fragments ----------------------------

TEST_F(MemoryEngineTest, FallbackReusesCompletedScanSubtrees) {
  ASSERT_OK_AND_ASSIGN(core::ColumnSet local, host_.ExecuteLocal(JoinPlan()));

  // Unrecoverable join-build failure: by then both scan steps have
  // materialized, so the host fallback must resume from them.
  ScopedFaultInjection fi(47);
  FaultInjector::SiteSpec spec;
  spec.code = StatusCode::kCapacityExceeded;
  fi.Arm(faults::kJoinBuild, spec);

  ExecOptions options;
  options.planner.enable_fusion = false;  // force the partitioned join
  ASSERT_OK_AND_ASSIGN(QueryReport report,
                       host_.ExecuteQuery(JoinPlan(), &engine_, options));
  EXPECT_TRUE(report.fell_back);
  EXPECT_GE(report.reused_fragments, 1u);
  ExpectSameRows(report.rows, local);
}

TEST_F(MemoryEngineTest, CleanRunsAndAdmissionDenialsReuseNothing) {
  ASSERT_OK_AND_ASSIGN(QueryReport clean,
                       host_.ExecuteQuery(AggPlan(), &engine_));
  EXPECT_FALSE(clean.fell_back);
  EXPECT_EQ(clean.reused_fragments, 0u);

  // Admission denial happens before any DPU work: nothing to reuse.
  ASSERT_OK(host_.Update("t", {storage::RowChange{1, {1, 9}}}));
  ASSERT_OK_AND_ASSIGN(QueryReport denied,
                       host_.ExecuteQuery(AggPlan(), &engine_));
  EXPECT_TRUE(denied.fell_back);
  EXPECT_EQ(denied.reused_fragments, 0u);
}

}  // namespace
}  // namespace rapid
