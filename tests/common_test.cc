// Unit tests for the common substrate: Status/Result, BitVector,
// CompactArray, CRC32, RNG/Zipf, AlignedBuffer.

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/bitvector.h"
#include "common/buffer.h"
#include "common/compact_array.h"
#include "common/crc32.h"
#include "common/mix64.h"
#include "common/rng.h"
#include "common/status.h"

namespace rapid {
namespace {

// ---- Status / Result -------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad fanout");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad fanout");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfMemory("x").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::AdmissionDenied("x").code(),
            StatusCode::kAdmissionDenied);
  EXPECT_EQ(Status::CapacityExceeded("x").code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::RetryExhausted("x").code(),
            StatusCode::kRetryExhausted);
}

TEST(StatusTest, FailureRecoveryCodesRoundTrip) {
  // Code -> constructor -> ToString -> predicate, for the codes the
  // failure-recovery paths key off.
  const Status cancelled = Status::Cancelled("user hit ctrl-c");
  EXPECT_EQ(cancelled.ToString(), "Cancelled: user hit ctrl-c");
  EXPECT_TRUE(cancelled.IsCancelled());
  EXPECT_TRUE(cancelled.IsCancellation());
  EXPECT_FALSE(cancelled.IsDeadlineExceeded());

  const Status deadline = Status::DeadlineExceeded("5s budget elapsed");
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: 5s budget elapsed");
  EXPECT_TRUE(deadline.IsDeadlineExceeded());
  EXPECT_TRUE(deadline.IsCancellation());
  EXPECT_FALSE(deadline.IsCancelled());

  const Status exhausted = Status::RetryExhausted("4 attempts");
  EXPECT_EQ(exhausted.ToString(), "RetryExhausted: 4 attempts");
  EXPECT_TRUE(exhausted.IsRetryExhausted());
  // Retry exhaustion is a DPU failure, not a dead query: the host may
  // fall back, so it must NOT classify as cancellation.
  EXPECT_FALSE(exhausted.IsCancellation());

  // Predicates discriminate: no other error code reads as cancellation.
  EXPECT_FALSE(Status::OutOfMemory("x").IsCancellation());
  EXPECT_FALSE(Status::Internal("x").IsCancellation());
  EXPECT_TRUE(Status::OutOfMemory("x").IsOutOfMemory());
  EXPECT_TRUE(Status::AdmissionDenied("x").IsAdmissionDenied());
  EXPECT_TRUE(Status::CapacityExceeded("x").IsCapacityExceeded());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nothing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Status UseHalf(int v, int* out) {
  RAPID_ASSIGN_OR_RETURN(*out, Half(v));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

// ---- BitVector -------------------------------------------------------------

TEST(BitVectorTest, SetTestClear) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.CountOnes(), 0u);
  bv.Set(0);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Test(0));
  EXPECT_TRUE(bv.Test(64));
  EXPECT_TRUE(bv.Test(129));
  EXPECT_FALSE(bv.Test(1));
  EXPECT_EQ(bv.CountOnes(), 3u);
  bv.Clear(64);
  EXPECT_FALSE(bv.Test(64));
  EXPECT_EQ(bv.CountOnes(), 2u);
}

TEST(BitVectorTest, SetAllMasksTail) {
  BitVector bv(70);
  bv.SetAll();
  EXPECT_EQ(bv.CountOnes(), 70u);
  bv.Not();
  EXPECT_EQ(bv.CountOnes(), 0u);
}

TEST(BitVectorTest, NotMasksTailBits) {
  BitVector bv(3);
  bv.Set(1);
  bv.Not();
  EXPECT_TRUE(bv.Test(0));
  EXPECT_FALSE(bv.Test(1));
  EXPECT_TRUE(bv.Test(2));
  EXPECT_EQ(bv.CountOnes(), 2u);
}

TEST(BitVectorTest, AndOr) {
  BitVector a(10);
  BitVector b(10);
  a.Set(1);
  a.Set(3);
  b.Set(3);
  b.Set(5);
  BitVector a_and = a;
  a_and.And(b);
  EXPECT_EQ(a_and.CountOnes(), 1u);
  EXPECT_TRUE(a_and.Test(3));
  BitVector a_or = a;
  a_or.Or(b);
  EXPECT_EQ(a_or.CountOnes(), 3u);
}

TEST(BitVectorTest, RidRoundTrip) {
  BitVector bv(200);
  std::vector<uint32_t> rids = {0, 1, 63, 64, 65, 128, 199};
  for (uint32_t r : rids) bv.Set(r);
  std::vector<uint32_t> out;
  bv.ToRids(&out);
  EXPECT_EQ(out, rids);
  EXPECT_EQ(BitVector::FromRids(rids, 200), bv);
}

TEST(BitVectorTest, RandomRoundTripProperty) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.NextBounded(500);
    BitVector bv(n);
    std::set<uint32_t> expected;
    for (size_t i = 0; i < n / 3 + 1; ++i) {
      const auto r = static_cast<uint32_t>(rng.NextBounded(n));
      bv.Set(r);
      expected.insert(r);
    }
    std::vector<uint32_t> rids;
    bv.ToRids(&rids);
    EXPECT_EQ(rids.size(), expected.size());
    EXPECT_TRUE(std::is_sorted(rids.begin(), rids.end()));
    for (uint32_t r : rids) EXPECT_TRUE(expected.count(r));
    EXPECT_EQ(bv.CountOnes(), expected.size());
  }
}

// ---- CompactArray ----------------------------------------------------------

TEST(CompactArrayTest, BitsFor) {
  EXPECT_EQ(BitsFor(0), 1);
  EXPECT_EQ(BitsFor(1), 1);
  EXPECT_EQ(BitsFor(2), 2);
  EXPECT_EQ(BitsFor(7), 3);
  EXPECT_EQ(BitsFor(8), 4);
  EXPECT_EQ(BitsFor(255), 8);
  EXPECT_EQ(BitsFor(256), 9);
}

TEST(CompactArrayTest, SetGetAcrossWordBoundaries) {
  // 7-bit entries straddle 64-bit word boundaries regularly.
  CompactArray arr(100, 7);
  for (size_t i = 0; i < 100; ++i) arr.Set(i, i % 128);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(arr.Get(i), i % 128) << i;
}

TEST(CompactArrayTest, MaxValueAndFill) {
  CompactArray arr(33, 5);
  EXPECT_EQ(arr.max_value(), 31u);
  arr.FillWithMax();
  for (size_t i = 0; i < 33; ++i) EXPECT_EQ(arr.Get(i), 31u);
}

TEST(CompactArrayTest, ByteSizeIsCompact) {
  // 1000 entries of 10 bits = 10000 bits = 1250 bytes -> 1256 rounded
  // to whole words; far below 1000 * 8 for plain offsets.
  CompactArray arr(1000, 10);
  EXPECT_LE(arr.byte_size(), 1264u);
}

class CompactArrayWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(CompactArrayWidthTest, RandomRoundTrip) {
  const int bits = GetParam();
  Rng rng(static_cast<uint64_t>(bits) * 31);
  const size_t n = 257;
  CompactArray arr(n, bits);
  std::vector<uint64_t> expected(n);
  const uint64_t mask = arr.max_value();
  for (size_t i = 0; i < n; ++i) {
    expected[i] = rng.Next() & mask;
    arr.Set(i, expected[i]);
  }
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(arr.Get(i), expected[i]) << i;
  // Overwrites stay independent.
  for (size_t i = 0; i < n; i += 3) {
    expected[i] = rng.Next() & mask;
    arr.Set(i, expected[i]);
  }
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(arr.Get(i), expected[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(AllWidths, CompactArrayWidthTest,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 13, 16, 21, 31,
                                           32, 33, 48, 63, 64));

// ---- CRC32 -----------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC32C("123456789") with standard init/final conventions differs;
  // we validate determinism and avalanche behaviour instead.
  const uint32_t h1 = Crc32("123456789", 9);
  const uint32_t h2 = Crc32("123456789", 9);
  const uint32_t h3 = Crc32("123456788", 9);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
}

TEST(Crc32Test, SeedChaining) {
  const uint32_t a = Crc32U64(42);
  const uint32_t ab = Crc32Combine(a, 43);
  const uint32_t ab2 = Crc32Combine(Crc32U64(42), 43);
  EXPECT_EQ(ab, ab2);
  EXPECT_NE(ab, Crc32Combine(Crc32U64(43), 42));  // order matters
}

TEST(Crc32Test, HardwareMatchesSoftware) {
  // The dispatched Crc32 (SSE4.2 / ARMv8 CRC instructions when the CPU
  // has them) must be bit-identical to the table-walk reference on
  // every length, alignment and seed.
  Rng rng(7);
  std::vector<uint8_t> buf(512);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
  const size_t lengths[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17,
                            63, 64, 65, 100, 256, 511, 512};
  const uint32_t seeds[] = {0xFFFFFFFFu, 0u, 0xDEADBEEFu};
  for (size_t len : lengths) {
    for (size_t off = 0; off < 3 && off + len <= buf.size(); ++off) {
      for (uint32_t seed : seeds) {
        EXPECT_EQ(Crc32(buf.data() + off, len, seed),
                  Crc32Software(buf.data() + off, len, seed))
            << "len=" << len << " off=" << off << " seed=" << seed;
      }
    }
  }
  // Informational: whether this run exercised the HW path at all.
  SUCCEED() << "hardware CRC32 available: "
            << (Crc32HardwareAvailable() ? "yes" : "no");
}

TEST(Crc32Test, DistributionOverBuckets) {
  // Hash partitioning relies on low bits being well distributed.
  constexpr int kBuckets = 32;
  int counts[kBuckets] = {0};
  for (uint64_t k = 0; k < 32000; ++k) {
    counts[Crc32U64(k) % kBuckets]++;
  }
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_GT(counts[b], 800) << "bucket " << b;
    EXPECT_LT(counts[b], 1200) << "bucket " << b;
  }
}

// ---- Rng / Zipf ------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const int64_t v = rng.NextInRange(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfGenerator zipf(10, 0.0, 42);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample()]++;
  for (int c : counts) {
    EXPECT_GT(c, 1500);
    EXPECT_LT(c, 2500);
  }
}

TEST(ZipfTest, SkewedConcentratesOnHead) {
  ZipfGenerator zipf(1000, 1.2, 42);
  size_t head = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample() < 10) ++head;
  }
  // With theta=1.2, the top 10 of 1000 values draw well over a third.
  EXPECT_GT(head, static_cast<size_t>(kSamples / 3));
}

TEST(ZipfTest, SamplesWithinDomain) {
  ZipfGenerator zipf(7, 0.9, 1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(), 7u);
}

// ---- AlignedBuffer ---------------------------------------------------------

TEST(AlignedBufferTest, AlignmentAndZeroing) {
  AlignedBuffer buf(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kCacheLineSize, 0u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(buf.data()[i], 0);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer a(64);
  a.data()[0] = 42;
  AlignedBuffer b = std::move(a);
  EXPECT_EQ(b.data()[0], 42);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBufferTest, EmptyBufferIsSafe) {
  AlignedBuffer buf;
  EXPECT_EQ(buf.size(), 0u);
  AlignedBuffer moved = std::move(buf);
  EXPECT_EQ(moved.size(), 0u);
}

// ---- Mix64 -----------------------------------------------------------------

TEST(Mix64Test, KnownSplitMix64Values) {
  // First outputs of a splitmix64 stream seeded 0 are Mix64(0),
  // Mix64(gamma), Mix64(2*gamma), ... with gamma = 0x9E3779B97F4A7C15.
  EXPECT_EQ(Mix64(0), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(Mix64(0x9E3779B97F4A7C15ull), 0x6E789E6AA1B965F4ull);
}

TEST(Mix64Test, IsInjectiveOnSample) {
  // Mix64 is a bijection on uint64_t; no collisions on any sample.
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < 100000; ++i) {
    EXPECT_TRUE(seen.insert(Mix64(i)).second) << "collision at " << i;
  }
}

TEST(Mix64Test, AvalancheFlipsHalfTheOutputBits) {
  // Flipping any single input bit must flip each output bit with
  // probability ~1/2. Measured over 64 bit positions x 256 inputs;
  // a weak finalizer (e.g. multiply-only) fails this by an order of
  // magnitude in the low bits.
  Rng rng(7);
  for (int bit = 0; bit < 64; ++bit) {
    int flipped = 0;
    constexpr int kTrials = 256;
    for (int t = 0; t < kTrials; ++t) {
      const uint64_t x = rng.Next();
      flipped += __builtin_popcountll(Mix64(x) ^ Mix64(x ^ (1ull << bit)));
    }
    const double mean = static_cast<double>(flipped) / kTrials;
    EXPECT_GT(mean, 28.0) << "weak avalanche from input bit " << bit;
    EXPECT_LT(mean, 36.0) << "weak avalanche from input bit " << bit;
  }
}

TEST(Mix64Test, HighAndLowHalvesUniformOnSequentialKeys) {
  // Sequential keys (the common join-key shape) must spread evenly
  // through both the high 32 bits (Bloom block choice) and low 32
  // bits (lane bit positions). 16 buckets x 64k keys: every bucket
  // within 10% of the expected 4096.
  constexpr int kBuckets = 16;
  constexpr uint64_t kKeys = 1 << 16;
  int high[kBuckets] = {0};
  int low[kBuckets] = {0};
  for (uint64_t i = 0; i < kKeys; ++i) {
    const uint64_t h = Mix64(i);
    ++high[(h >> 32) & (kBuckets - 1)];
    ++low[h & (kBuckets - 1)];
  }
  const int expect = kKeys / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(high[b], expect, expect / 10) << "high-half bucket " << b;
    EXPECT_NEAR(low[b], expect, expect / 10) << "low-half bucket " << b;
  }
}

TEST(Mix64Test, IndependentFromCrc32OnCollidingKeys) {
  // Keys crafted to share Crc32U64 low bits must not concentrate in
  // Mix64 blocks: the families are independent by construction.
  std::vector<uint64_t> colliders;
  for (uint64_t i = 0; colliders.size() < 1024 && i < 1u << 22; ++i) {
    if ((Crc32U64(i) & 0xFF) == 0) colliders.push_back(i);
  }
  ASSERT_GE(colliders.size(), 512u);
  constexpr int kBuckets = 8;
  int counts[kBuckets] = {0};
  for (uint64_t k : colliders) {
    ++counts[(Mix64(k) >> 32) & (kBuckets - 1)];
  }
  const int expect = static_cast<int>(colliders.size()) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_GT(counts[b], expect / 2) << "bucket " << b;
    EXPECT_LT(counts[b], expect * 2) << "bucket " << b;
  }
}

TEST(Mix64Test, CombineDiffersFromPlainHashAndKeepsAvalanche) {
  // Composite-key combining must not degenerate to hashing either
  // component alone, and must be order-sensitive: (a, b) and (b, a)
  // are different composite keys.
  EXPECT_NE(Mix64Combine(0, 42), Mix64(42));
  EXPECT_NE(Mix64Combine(Mix64(1), 2), Mix64Combine(Mix64(2), 1));
  std::unordered_set<uint64_t> seen;
  for (uint64_t a = 0; a < 64; ++a) {
    for (uint64_t b = 0; b < 64; ++b) {
      seen.insert(Mix64Combine(Mix64(a), b));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

}  // namespace
}  // namespace rapid
