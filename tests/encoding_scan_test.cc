// Encoded scans (Section 4.2 + 5.4): the loader's per-vector encoding
// choice, the typed RLE decode path, QComp's code-space predicate
// rewrite, and — end to end — bit-identity of RAPID_ENCODED_SCAN=off
// vs auto across SIMD tiers, scheduler modes and injected DMS faults.
// The gate changes bytes moved and modeled cycles, never results.

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/bitvector.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/engine.h"
#include "core/qcomp/planner.h"
#include "core/qcomp/steps.h"
#include "dpu/work_queue.h"
#include "hostdb/database.h"
#include "hostdb/offload.h"
#include "storage/encoding_stack.h"
#include "storage/loader.h"
#include "storage/rle.h"
#include "tests/test_util.h"

namespace rapid {
namespace {

using core::ExecOptions;
using core::LogicalNode;
using core::LogicalPtr;
using core::Predicate;
using core::QueryResult;
using hostdb::HostDatabase;
using hostdb::QueryReport;
using primitives::CmpOp;
using storage::EncodedScanMode;
using rapid::testing::ExpectSameRows;
using rapid::testing::SortedRows;

class ScopedEncodedScan {
 public:
  explicit ScopedEncodedScan(EncodedScanMode mode)
      : previous_(storage::ForceEncodedScan(mode)) {}
  ~ScopedEncodedScan() { storage::ForceEncodedScan(previous_); }

 private:
  EncodedScanMode previous_;
};

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : previous_(ForceSimdLevel(level)) {}
  ~ScopedSimdLevel() { ForceSimdLevel(previous_); }

 private:
  SimdLevel previous_;
};

class ScopedSchedMode {
 public:
  explicit ScopedSchedMode(dpu::SchedMode mode)
      : previous_(dpu::ForceSchedMode(mode)) {}
  ~ScopedSchedMode() { dpu::ForceSchedMode(previous_); }

 private:
  dpu::SchedMode previous_;
};

// ---- BitVector span emission -----------------------------------------------

TEST(SetRangeTest, MatchesPerBitLoopAtEveryAlignment) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + static_cast<size_t>(rng.NextBounded(300));
    const size_t begin = static_cast<size_t>(rng.NextBounded(
        static_cast<uint32_t>(n + 1)));
    const size_t end = begin + static_cast<size_t>(rng.NextBounded(
                                   static_cast<uint32_t>(n - begin + 1)));
    BitVector spans(n);
    spans.SetRange(begin, end);
    BitVector bits(n);
    for (size_t i = begin; i < end; ++i) bits.Set(i);
    EXPECT_TRUE(spans == bits) << "n=" << n << " [" << begin << "," << end
                               << ")";
  }
}

TEST(SetRangeTest, OrsIntoExistingSpans) {
  BitVector bv(192);
  bv.SetRange(0, 10);
  bv.SetRange(100, 130);
  bv.SetRange(5, 64);  // overlaps the first span and a word boundary
  EXPECT_EQ(bv.CountOnes(), 64u + 30u);
  EXPECT_TRUE(bv.Test(63));
  EXPECT_FALSE(bv.Test(64));
}

// ---- Encoding choice on TPC-H-shaped columns -------------------------------

TEST(EncodedScanTest, SortedPrefixChunksRleShuffledTailsStayPlain) {
  // One column, two chunks: a sorted low-cardinality prefix (the
  // l_shipdate shape after clustering) and a shuffled unique tail.
  std::vector<storage::ColumnSpec> specs = {
      {"d", storage::ColumnKind::kInt32}};
  std::vector<storage::ColumnData> data(1);
  for (int i = 0; i < 1024; ++i) data[0].ints.push_back(i / 128);
  std::vector<int64_t> tail(1024);
  std::iota(tail.begin(), tail.end(), 100000);
  Rng rng(7);
  for (size_t i = tail.size(); i > 1; --i) {
    std::swap(tail[i - 1], tail[rng.NextBounded(static_cast<uint32_t>(i))]);
  }
  data[0].ints.insert(data[0].ints.end(), tail.begin(), tail.end());
  storage::LoadOptions opts;
  opts.rows_per_chunk = 1024;
  ASSERT_OK_AND_ASSIGN(storage::Table table,
                       storage::LoadTable("l", specs, data, opts));

  // The loader runs BuildTableEncodings: chunk 0 keeps an RLE-topped
  // transfer representation, chunk 1 stays plain.
  ASSERT_EQ(table.num_partitions(), 1u);
  ASSERT_EQ(table.partition(0).num_chunks(), 2u);
  const storage::EncodedColumn* rle = table.partition(0).chunk(0).encoding(0);
  ASSERT_NE(rle, nullptr);
  EXPECT_EQ(rle->num_rows, 1024u);
  EXPECT_LT(rle->encoded_bytes(), 1024u * 4u);
  EXPECT_EQ(table.partition(0).chunk(1).encoding(0), nullptr);
  EXPECT_GT(table.stats(0).compression_ratio, 1.0);
}

// ---- Typed RLE decode (native width, pooled scratch) -----------------------

TEST(EncodedScanTest, TypedRleDecodeRoundTripsAtNativeWidth) {
  std::vector<int16_t> values;
  Rng rng(13);
  for (int run = 0; run < 40; ++run) {
    const int16_t v = static_cast<int16_t>(rng.NextInRange(-300, 300));
    const int len = 1 + static_cast<int>(rng.NextBounded(50));
    for (int i = 0; i < len; ++i) values.push_back(v);
  }
  const storage::RleColumn rle =
      storage::RleEncodeTyped<int16_t>(values.data(), values.size());
  ASSERT_EQ(rle.num_rows, values.size());

  // Decode at native width into TileBufferPool scratch — the scan
  // path's recycled-buffer contract, no widened heap vector.
  Arena arena;
  TileBufferPool pool(&arena);
  TileBufferPool::Handle scratch = pool.AcquireArray<int16_t>(values.size());
  storage::RleDecode<int16_t>(rle, scratch.as<int16_t>());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(scratch.as<int16_t>()[i], values[i]) << i;
  }

  // The legacy widening overload agrees element-wise.
  const std::vector<int64_t> widened = storage::RleDecode(rle);
  ASSERT_EQ(widened.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(widened[i], static_cast<int64_t>(values[i])) << i;
  }
}

// ---- QComp code-space rewrite ----------------------------------------------

// Lowers a single scan and returns its predicates (fusion disabled so
// the ScanStep is inspectable).
std::vector<Predicate> LowerScanPredicates(const core::Catalog& catalog,
                                           const LogicalPtr& plan) {
  core::PlannerOptions options;
  options.enable_fusion = false;
  core::Planner planner(dpu::DpuConfig::Default(),
                        dpu::CostParams::Default(), options);
  auto lowered = planner.Plan(plan, catalog);
  EXPECT_TRUE(lowered.ok()) << lowered.status().ToString();
  if (!lowered.ok()) return {};
  for (const auto& step : lowered.value().steps) {
    if (auto* scan = dynamic_cast<core::ScanStep*>(step.get())) {
      return scan->predicates();
    }
  }
  ADD_FAILURE() << "no ScanStep in lowered plan";
  return {};
}

TEST(EncodedScanTest, ContiguousDictInSetRewrittenToCodeSpaceRange) {
  std::vector<storage::ColumnSpec> specs = {
      {"s", storage::ColumnKind::kString},
      {"v", storage::ColumnKind::kInt32}};
  std::vector<storage::ColumnData> data(2);
  const char* words[] = {"apple", "berry", "cherry", "date", "elder"};
  for (int i = 0; i < 512; ++i) {
    data[0].strings.push_back(words[i % 5]);
    data[1].ints.push_back(i);
  }
  core::Catalog catalog;
  ASSERT_OK_AND_ASSIGN(storage::Table table,
                       storage::LoadTable("t", specs, data));
  catalog.emplace("t", std::move(table));

  // Codes {1, 2, 3}: contiguous -> Between(1, 3) in code space.
  BitVector range(5);
  range.Set(1);
  range.Set(2);
  range.Set(3);
  std::vector<Predicate> preds = LowerScanPredicates(
      catalog, LogicalNode::Scan("t", {"v"},
                                 {Predicate::InSet("s", range, 0.6)}));
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0].kind, Predicate::Kind::kBetween);
  EXPECT_EQ(preds[0].value, 1);
  EXPECT_EQ(preds[0].value2, 3);

  // A singleton becomes an equality comparison.
  BitVector one(5);
  one.Set(2);
  preds = LowerScanPredicates(
      catalog,
      LogicalNode::Scan("t", {"v"}, {Predicate::InSet("s", one, 0.2)}));
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0].kind, Predicate::Kind::kCmpConst);
  EXPECT_EQ(preds[0].op, CmpOp::kEq);
  EXPECT_EQ(preds[0].value, 2);

  // A gap keeps the bitmap probe.
  BitVector gap(5);
  gap.Set(0);
  gap.Set(4);
  preds = LowerScanPredicates(
      catalog,
      LogicalNode::Scan("t", {"v"}, {Predicate::InSet("s", gap, 0.4)}));
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0].kind, Predicate::Kind::kInSet);
}

// ---- Engine-level bit-identity ---------------------------------------------

class EncodedScanEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A TPC-H Q6 shaped lineitem slice: sorted l_shipdate (RLE gold),
    // small-domain quantity/discount, and a high-entropy price column
    // that must stay plain.
    std::vector<storage::ColumnSpec> specs = {
        {"shipdate", storage::ColumnKind::kDate},
        {"quantity", storage::ColumnKind::kInt32},
        {"discount", storage::ColumnKind::kInt32},
        {"price", storage::ColumnKind::kInt64}};
    std::vector<storage::ColumnData> data(4);
    Rng rng(4242);
    const int rows = 6000;
    for (int i = 0; i < rows; ++i) {
      data[0].ints.push_back(9131 + i / 250);  // sorted day numbers
      data[1].ints.push_back(rng.NextInRange(1, 50));
      data[2].ints.push_back(rng.NextInRange(0, 10));
      data[3].ints.push_back(rng.NextInRange(90000, 105000));
    }
    ASSERT_OK(host_.CreateTable("lineitem", specs, data));
    ASSERT_OK(host_.LoadToRapid("lineitem", &engine_));
  }

  // Q6 shape: range on the sorted date, point filters on the small
  // domains, sum of a product.
  LogicalPtr Q6Plan() {
    return LogicalNode::GroupBy(
        LogicalNode::Scan(
            "lineitem", {"discount", "price"},
            {Predicate::Between("shipdate", 9135, 9150, 0.6),
             Predicate::CmpConst("quantity", CmpOp::kLt, 24),
             Predicate::Between("discount", 5, 7, 0.3)}),
        {},
        {{"revenue", core::AggFunc::kSum,
          core::Expr::Mul(core::Expr::Col("price"),
                          core::Expr::Col("discount")),
          {}}});
  }

  HostDatabase host_;
  core::RapidEngine engine_{dpu::DpuConfig{}};
};

TEST_F(EncodedScanEngineTest, OffAndAutoBitIdenticalAcrossTiersAndSchedulers) {
  QueryResult reference;
  {
    ScopedEncodedScan off(EncodedScanMode::kOff);
    ASSERT_OK_AND_ASSIGN(reference, engine_.Execute(Q6Plan()));
    EXPECT_EQ(reference.stats.encoded_bytes_moved, 0u);
    EXPECT_EQ(reference.stats.runs_filtered, 0u);
  }
  ASSERT_EQ(reference.rows.num_rows(), 1u);

  const SimdLevel levels[] = {SimdLevel::kScalar, SimdLevel::kSse42,
                              SimdLevel::kAvx2};
  const dpu::SchedMode scheds[] = {dpu::SchedMode::kStatic,
                                   dpu::SchedMode::kMorsel};
  for (SimdLevel level : levels) {
    for (dpu::SchedMode sched : scheds) {
      ScopedSimdLevel simd(level);
      ScopedSchedMode mode(sched);
      QueryResult off_run;
      QueryResult auto_run;
      {
        ScopedEncodedScan off(EncodedScanMode::kOff);
        ASSERT_OK_AND_ASSIGN(off_run, engine_.Execute(Q6Plan()));
      }
      {
        ScopedEncodedScan on(EncodedScanMode::kAuto);
        ASSERT_OK_AND_ASSIGN(auto_run, engine_.Execute(Q6Plan()));
      }
      ExpectSameRows(off_run.rows, reference.rows);
      ExpectSameRows(auto_run.rows, reference.rows);
      // The encoded path really ran: the DMS moved fewer bytes than
      // the plain equivalent and predicates resolved whole runs.
      EXPECT_GT(auto_run.stats.encoded_bytes_moved, 0u)
          << SimdLevelName(level);
      EXPECT_LT(auto_run.stats.encoded_bytes_moved,
                auto_run.stats.plain_bytes_moved)
          << SimdLevelName(level);
      EXPECT_GT(auto_run.stats.runs_filtered, 0u) << SimdLevelName(level);
      EXPECT_EQ(off_run.stats.encoded_bytes_moved, 0u);
    }
  }
}

TEST_F(EncodedScanEngineTest, EncodedScanSurvivesDmsFaultAndReplays) {
  QueryResult clean;
  {
    ScopedEncodedScan on(EncodedScanMode::kAuto);
    ASSERT_OK_AND_ASSIGN(clean, engine_.Execute(Q6Plan()));
  }

  // Transient dms.transfer faults under the encoded path: descriptor
  // retries and fragment checkpoints must replay encoded scans to the
  // same rows. Seed chosen for this test's own poll sequence (the
  // encoded path legitimately changes fault-site ordinals).
  ScopedEncodedScan on(EncodedScanMode::kAuto);
  ScopedFaultInjection fi(81);
  FaultInjector::SiteSpec spec;
  spec.max_failures = 2;
  fi.Arm(faults::kDmsTransfer, spec);

  ASSERT_OK_AND_ASSIGN(QueryResult faulted, engine_.Execute(Q6Plan()));
  EXPECT_EQ(FaultInjector::Instance().failures(faults::kDmsTransfer), 2u);
  ExpectSameRows(faulted.rows, clean.rows);
  EXPECT_GT(faulted.stats.encoded_bytes_moved, 0u);
}

TEST_F(EncodedScanEngineTest, QueryReportExposesEncodedCounters) {
  ScopedEncodedScan on(EncodedScanMode::kAuto);
  ASSERT_OK_AND_ASSIGN(QueryReport report,
                       host_.ExecuteQuery(Q6Plan(), &engine_));
  EXPECT_FALSE(report.fell_back);
  EXPECT_GT(report.encoded_bytes_moved, 0u);
  EXPECT_GT(report.plain_bytes_moved, report.encoded_bytes_moved);
  EXPECT_GT(report.runs_filtered, 0u);

  ScopedEncodedScan off(EncodedScanMode::kOff);
  ASSERT_OK_AND_ASSIGN(QueryReport plain_report,
                       host_.ExecuteQuery(Q6Plan(), &engine_));
  EXPECT_EQ(plain_report.encoded_bytes_moved, 0u);
  EXPECT_EQ(plain_report.runs_filtered, 0u);
  ExpectSameRows(report.rows, plain_report.rows);
}

// Truncating-cast semantics: a constant outside the column's native
// range must compare identically on the run-level and per-row paths
// (both truncate to the native width first).
TEST(EncodedScanTest, RunLevelFilterKeepsTruncatingCastSemantics) {
  std::vector<storage::ColumnSpec> specs = {
      {"b", storage::ColumnKind::kInt8},
      {"id", storage::ColumnKind::kInt32}};
  std::vector<storage::ColumnData> data(2);
  for (int i = 0; i < 4096; ++i) {
    data[0].ints.push_back((i / 512) % 3 == 0 ? 44 : 7);  // long runs
    data[1].ints.push_back(i);
  }
  core::RapidEngine engine{dpu::DpuConfig{}};
  ASSERT_OK_AND_ASSIGN(storage::Table table,
                       storage::LoadTable("t8", specs, data));
  ASSERT_OK(engine.Load(std::move(table)));

  // 300 truncates to (int8)44: the predicate must match the 44-runs
  // on both paths.
  auto plan = LogicalNode::Scan(
      "t8", {"id"}, {Predicate::CmpConst("b", CmpOp::kEq, 300, 0.3)});
  QueryResult off_run;
  QueryResult auto_run;
  {
    ScopedEncodedScan off(EncodedScanMode::kOff);
    ASSERT_OK_AND_ASSIGN(off_run, engine.Execute(plan));
  }
  {
    ScopedEncodedScan on(EncodedScanMode::kAuto);
    ASSERT_OK_AND_ASSIGN(auto_run, engine.Execute(plan));
  }
  EXPECT_GT(off_run.rows.num_rows(), 0u);
  ExpectSameRows(off_run.rows, auto_run.rows);
}

}  // namespace
}  // namespace rapid
