// Morsel-driven scheduler tests: WorkQueue unit behavior (static
// striding, LPT seeding, virtual-time stealing, the balanced-makespan
// bound) and the determinism suite — query results must stay
// bit-identical across scheduling modes (RAPID_SCHED static|morsel),
// core counts {1, 4, 32}, inline vs pooled execution, and under
// transient fault injection at dms.transfer, because every operator
// indexes its output slots by morsel id, never by the core that
// happened to run the morsel.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/rng.h"
#include "core/engine.h"
#include "dpu/dpu.h"
#include "dpu/work_queue.h"
#include "hostdb/database.h"
#include "tests/test_util.h"

namespace rapid {
namespace {

using core::ColumnSet;
using core::ExecOptions;
using core::LogicalNode;
using core::LogicalPtr;
using core::Predicate;
using core::QueryResult;
using dpu::SchedMode;
using dpu::WorkQueue;
using hostdb::HostDatabase;
using primitives::CmpOp;

// Pins the scheduling mode for a scope and restores the previous mode.
class ScopedSchedMode {
 public:
  explicit ScopedSchedMode(SchedMode mode)
      : previous_(dpu::ForceSchedMode(mode)) {}
  ~ScopedSchedMode() { dpu::ForceSchedMode(previous_); }

 private:
  SchedMode previous_;
};

// Drains `core_id`'s share of the queue, returning the morsel ids in
// hand-out order.
std::vector<size_t> Drain(WorkQueue& queue, int core_id) {
  std::vector<size_t> got;
  size_t m = 0;
  while (queue.Next(core_id, &m)) got.push_back(m);
  return got;
}

// ---- WorkQueue unit behavior ----------------------------------------------

TEST(WorkQueueTest, StaticModeStridesRoundRobin) {
  WorkQueue queue(10, 4, SchedMode::kStatic);
  EXPECT_EQ(Drain(queue, 0), (std::vector<size_t>{0, 4, 8}));
  EXPECT_EQ(Drain(queue, 1), (std::vector<size_t>{1, 5, 9}));
  EXPECT_EQ(Drain(queue, 2), (std::vector<size_t>{2, 6}));
  EXPECT_EQ(Drain(queue, 3), (std::vector<size_t>{3, 7}));
  EXPECT_EQ(queue.steal_count(), 0u);
}

TEST(WorkQueueTest, UnweightedMorselSeedingDealsRoundRobin) {
  // Unit weights: LPT's stable largest-first order is morsel-id order,
  // so the deal is exactly m -> core m % P and perfectly balanced —
  // nothing is worth stealing.
  WorkQueue queue(8, 4, SchedMode::kMorsel);
  EXPECT_EQ(Drain(queue, 0), (std::vector<size_t>{0, 4}));
  EXPECT_EQ(Drain(queue, 1), (std::vector<size_t>{1, 5}));
  EXPECT_EQ(Drain(queue, 2), (std::vector<size_t>{2, 6}));
  EXPECT_EQ(Drain(queue, 3), (std::vector<size_t>{3, 7}));
  EXPECT_EQ(queue.steal_count(), 0u);
}

TEST(WorkQueueTest, WeightedLptSeedsLargestFirstToLeastLoaded) {
  // Sorted descending: m0(8), m4(7), m5(6), m1, m2, m3 (unit tail in
  // id order). Dealing to the least-loaded core leaves
  //   core0: [0]  core1: [4, 2]  core2: [5, 1, 3]
  // and owners pop their biggest morsel first.
  WorkQueue queue({8, 1, 1, 1, 7, 6}, 3, SchedMode::kMorsel);
  EXPECT_EQ(Drain(queue, 1), (std::vector<size_t>{4, 2}));
  EXPECT_EQ(Drain(queue, 2), (std::vector<size_t>{5, 1, 3}));
  EXPECT_EQ(Drain(queue, 0), (std::vector<size_t>{0}));
  EXPECT_EQ(queue.steal_count(), 0u);
}

TEST(WorkQueueTest, AccurateWeightsLeaveNothingWorthStealing) {
  // A drained core may only steal when it would finish the victim's
  // tail morsel before the victim, in virtual time. With accurate
  // weights the LPT plan is already balanced: core 0 finishes its one
  // big morsel and must NOT pull work that core 1 would finish at the
  // same virtual instant.
  WorkQueue queue({3, 1, 1, 1}, 2, SchedMode::kMorsel);
  EXPECT_EQ(Drain(queue, 0), (std::vector<size_t>{0}));  // load 3
  EXPECT_EQ(queue.steal_count(), 0u);
  EXPECT_EQ(Drain(queue, 1), (std::vector<size_t>{1, 2, 3}));  // load 3
}

TEST(WorkQueueTest, CycleFeedbackStealsFromRealStraggler) {
  // Weights predict core 0's morsel to be the heaviest (50 vs 40+10),
  // but Charge() reports it actually cost 1 cycle while core 1's
  // first morsel cost its full 40. Core 0's virtual clock is now far
  // ahead of core 1's completion, so it steals the straggler's tail.
  WorkQueue queue({50, 40, 10}, 2, SchedMode::kMorsel);
  size_t m = 0;
  ASSERT_TRUE(queue.Next(0, &m));
  EXPECT_EQ(m, 0u);
  queue.Charge(0, 0, 1.0);  // mispredicted: 50 weight -> 1 cycle
  ASSERT_TRUE(queue.Next(1, &m));
  EXPECT_EQ(m, 1u);
  queue.Charge(1, 1, 40.0);  // on-target straggler
  ASSERT_TRUE(queue.Next(0, &m));  // own deque empty -> steal
  EXPECT_EQ(m, 2u);
  EXPECT_EQ(queue.steal_count(), 1u);
  EXPECT_FALSE(queue.Next(1, &m));
  EXPECT_FALSE(queue.Next(0, &m));
}

TEST(WorkQueueTest, BalancedMakespanBound) {
  // largest == 0 degenerates to the perfect round-robin estimate.
  EXPECT_DOUBLE_EQ(dpu::BalancedMakespanCycles(100, 0, 4), 25.0);
  // sum/cores plus the largest morsel's remainder.
  EXPECT_DOUBLE_EQ(dpu::BalancedMakespanCycles(100, 10, 4), 32.5);
  // A phase can never beat its largest morsel.
  EXPECT_DOUBLE_EQ(dpu::BalancedMakespanCycles(100, 100, 4), 100.0);
  // One core runs everything serially.
  EXPECT_DOUBLE_EQ(dpu::BalancedMakespanCycles(100, 40, 1), 100.0);
}

TEST(WorkQueueTest, MorselPhaseTracksImbalanceAndAbortsOnError) {
  dpu::Dpu dpu{dpu::DpuConfig{}};
  WorkQueue queue(64, dpu.num_cores(), SchedMode::kMorsel);
  ASSERT_TRUE(dpu.ParallelForMorsels(queue, nullptr,
                                     [](dpu::DpCore& core, size_t) {
                                       core.cycles().ChargeCompute(100);
                                       return Status::OK();
                                     })
                  .ok());
  EXPECT_EQ(dpu.imbalance().phases, 1u);
  EXPECT_GE(dpu.imbalance().Ratio(), 1.0);

  WorkQueue poisoned(64, dpu.num_cores(), SchedMode::kMorsel);
  const Status st = dpu.ParallelForMorsels(
      poisoned, nullptr, [](dpu::DpCore&, size_t m) {
        return m == 7 ? Status::Internal("injected") : Status::OK();
      });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(WorkQueueTest, MorselPhaseHonorsCancellation) {
  dpu::Dpu dpu{dpu::DpuConfig{}};
  CancelToken token;
  token.Cancel();
  WorkQueue queue(64, dpu.num_cores(), SchedMode::kMorsel);
  const Status st = dpu.ParallelForMorsels(
      queue, &token, [](dpu::DpCore&, size_t) { return Status::OK(); });
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
}

// ---- Scheduler determinism suite ------------------------------------------

class SchedulerDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Fact table with a Zipf-skewed join/group key, so partitions and
    // chunk loads are genuinely unbalanced.
    std::vector<storage::ColumnSpec> fact_specs = {
        {"id", storage::ColumnKind::kInt64},
        {"g", storage::ColumnKind::kInt64},
        {"v", storage::ColumnKind::kInt64}};
    std::vector<storage::ColumnData> fact(3);
    Rng rng(99);
    ZipfGenerator zipf(16, 0.9, 7);
    for (int i = 0; i < 6000; ++i) {
      fact[0].ints.push_back(i);
      fact[1].ints.push_back(static_cast<int64_t>(zipf.Sample()));
      fact[2].ints.push_back(rng.NextInRange(0, 999));
    }
    ASSERT_OK(host_.CreateTable("t", fact_specs, fact));

    std::vector<storage::ColumnSpec> dim_specs = {
        {"k", storage::ColumnKind::kInt64},
        {"w", storage::ColumnKind::kInt64}};
    std::vector<storage::ColumnData> dim(2);
    for (int i = 0; i < 16; ++i) {
      dim[0].ints.push_back(i);
      dim[1].ints.push_back(1000 + i);
    }
    ASSERT_OK(host_.CreateTable("d", dim_specs, dim));
  }

  std::unique_ptr<core::RapidEngine> MakeEngine(int cores) {
    dpu::DpuConfig config{};
    config.num_cores = cores;
    auto engine = std::make_unique<core::RapidEngine>(config);
    EXPECT_OK(host_.LoadToRapid("t", engine.get()));
    EXPECT_OK(host_.LoadToRapid("d", engine.get()));
    return engine;
  }

  // One query per converted operator family: scan/filter, partitioned
  // join, group-by, sort, top-k, set op, window.
  static std::vector<LogicalPtr> Queries() {
    std::vector<LogicalPtr> queries;
    queries.push_back(LogicalNode::Scan(
        "t", {"id", "v"}, {Predicate::CmpConst("v", CmpOp::kLt, 500)}));
    queries.push_back(LogicalNode::Join(LogicalNode::Scan("t", {"id", "g"}),
                                        LogicalNode::Scan("d", {"k", "w"}),
                                        {"g"}, {"k"}, {"id", "w"}));
    queries.push_back(LogicalNode::GroupBy(
        LogicalNode::Scan("t", {"g", "v"}), {{"g", core::Expr::Col("g")}},
        {{"s", core::AggFunc::kSum, core::Expr::Col("v"), {}},
         {"c", core::AggFunc::kCount, nullptr, {}}}));
    queries.push_back(LogicalNode::Sort(LogicalNode::Scan("t", {"v", "id"}),
                                        {{"v", true}, {"id", true}}));
    queries.push_back(LogicalNode::TopK(LogicalNode::Scan("t", {"v", "id"}),
                                        {{"v", false}}, 50));
    queries.push_back(LogicalNode::SetOp(core::SetOpKind::kUnion,
                                         LogicalNode::Scan("t", {"g"}),
                                         LogicalNode::Scan("d", {"k"})));
    queries.push_back(LogicalNode::Window(
        LogicalNode::Scan("t", {"g", "v", "id"}),
        {core::LogicalWindow{core::WindowFunc::kRowNumber,
                             {"g"},
                             {{"v", true}, {"id", true}},
                             "",
                             "rn"}}));
    return queries;
  }

  // Executes the whole query set on `engine`. The join fan-out is
  // pinned so the physical plan shape does not change with the
  // engine's core count — this suite isolates *scheduling* from
  // planning.
  static std::vector<ColumnSet> RunAll(core::RapidEngine& engine) {
    ExecOptions options;
    options.planner.force_join_fanout = 32;
    std::vector<ColumnSet> results;
    for (const LogicalPtr& q : Queries()) {
      auto result = engine.Execute(q, options);
      EXPECT_OK(result.status());
      results.push_back(result.ok() ? std::move(result.value().rows)
                                    : ColumnSet());
    }
    return results;
  }

  // Bit-identity: exact column vectors, not sorted-row equivalence.
  static void ExpectBitIdentical(const std::vector<ColumnSet>& expected,
                                 const std::vector<ColumnSet>& actual,
                                 const std::string& label) {
    ASSERT_EQ(expected.size(), actual.size()) << label;
    for (size_t q = 0; q < expected.size(); ++q) {
      ASSERT_EQ(expected[q].num_columns(), actual[q].num_columns())
          << label << " query " << q;
      for (size_t c = 0; c < expected[q].num_columns(); ++c) {
        EXPECT_EQ(expected[q].column(c), actual[q].column(c))
            << label << " query " << q << " column " << c;
      }
    }
  }

  std::vector<ColumnSet> Baseline() {
    ScopedSchedMode mode(SchedMode::kMorsel);
    return RunAll(*MakeEngine(32));
  }

  HostDatabase host_;
};

TEST_F(SchedulerDeterminismTest, StaticAndMorselModesAgree) {
  const std::vector<ColumnSet> baseline = Baseline();
  ScopedSchedMode mode(SchedMode::kStatic);
  ExpectBitIdentical(baseline, RunAll(*MakeEngine(32)), "static sched");
}

TEST_F(SchedulerDeterminismTest, CoreCountsAgree) {
  const std::vector<ColumnSet> baseline = Baseline();
  for (const int cores : {1, 4}) {
    {
      ScopedSchedMode mode(SchedMode::kMorsel);
      ExpectBitIdentical(baseline, RunAll(*MakeEngine(cores)),
                         "morsel cores=" + std::to_string(cores));
    }
    {
      ScopedSchedMode mode(SchedMode::kStatic);
      ExpectBitIdentical(baseline, RunAll(*MakeEngine(cores)),
                         "static cores=" + std::to_string(cores));
    }
  }
}

TEST_F(SchedulerDeterminismTest, InlineExecutionAgrees) {
  const std::vector<ColumnSet> baseline = Baseline();
  ScopedSchedMode mode(SchedMode::kMorsel);
  auto engine = MakeEngine(32);
  engine->dpu().SetInlineExecution(true);
  ExpectBitIdentical(baseline, RunAll(*engine), "inline execution");
}

TEST_F(SchedulerDeterminismTest, TransientDmsFaultsDoNotChangeBytes) {
  const std::vector<ColumnSet> baseline = Baseline();
  ScopedSchedMode mode(SchedMode::kMorsel);
  ScopedFaultInjection fi(51);
  FaultInjector::SiteSpec spec;
  spec.probability = 0.2;
  spec.max_failures = 3;  // within the DMS descriptor retry budget
  fi.Arm(faults::kDmsTransfer, spec);
  ExpectBitIdentical(baseline, RunAll(*MakeEngine(32)),
                     "dms.transfer faults");
}

}  // namespace
}  // namespace rapid
