// Tests for the execution layer: relation accessor, pipeline operators
// (filter/project/sink/group-by), and the bulk executors (partition,
// join with skew resilience, sort, top-k, window, set operations).

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/ops/filter_op.h"
#include "core/ops/groupby_op.h"
#include "core/ops/join_exec.h"
#include "core/ops/partition_exec.h"
#include "core/ops/project_op.h"
#include "core/ops/setop_exec.h"
#include "core/ops/sink_op.h"
#include "core/ops/sort_exec.h"
#include "core/ops/window_exec.h"
#include "core/qef/relation_accessor.h"
#include "storage/loader.h"
#include "tests/test_util.h"

namespace rapid::core {
namespace {

using rapid::testing::MakeColumnSet;
using rapid::testing::Rows;
using rapid::testing::SortedRows;

class OpsTest : public ::testing::Test {
 protected:
  OpsTest() : dpu_() {}

  ExecCtx Ctx(int core = 0) {
    return ExecCtx{&dpu_.core(core), &dpu_.dms(), &dpu_.params(), true};
  }

  dpu::Dpu dpu_;
};

// ---- RelationAccessor --------------------------------------------------

// Terminal op that records everything pushed into it.
class CollectOp : public PipelineOp {
 public:
  size_t DmemBytes(size_t) const override { return 0; }
  Status Open(ExecCtx&) override { return Status::OK(); }
  Status Consume(ExecCtx&, const Tile& tile) override {
    tiles_++;
    for (size_t i = 0; i < tile.rows; ++i) {
      std::vector<int64_t> row;
      for (const TileColumn& c : tile.columns) row.push_back(c.GetInt(i));
      rows_.push_back(std::move(row));
    }
    scales_.clear();
    for (const TileColumn& c : tile.columns) scales_.push_back(c.dsb_scale);
    return Status::OK();
  }
  Status Finish(ExecCtx&) override {
    finished_ = true;
    return Status::OK();
  }

  size_t tiles_ = 0;
  bool finished_ = false;
  std::vector<std::vector<int64_t>> rows_;
  std::vector<int> scales_;
};

TEST_F(OpsTest, AccessorPushesChunksInTiles) {
  std::vector<storage::ColumnSpec> specs = {
      {"a", storage::ColumnKind::kInt32}, {"b", storage::ColumnKind::kInt64}};
  std::vector<storage::ColumnData> data(2);
  for (int i = 0; i < 300; ++i) {
    data[0].ints.push_back(i);
    data[1].ints.push_back(i * 10);
  }
  storage::LoadOptions opts;
  opts.rows_per_chunk = 100;
  ASSERT_OK_AND_ASSIGN(storage::Table table,
                       storage::LoadTable("t", specs, data, opts));

  std::vector<const storage::Chunk*> chunks;
  for (size_t c = 0; c < table.partition(0).num_chunks(); ++c) {
    chunks.push_back(&table.partition(0).chunk(c));
  }
  CollectOp collect;
  ExecCtx ctx = Ctx();
  ctx.dmem().Reset();
  ASSERT_OK(RelationAccessor::PushChunks(ctx, chunks, {0, 1}, {0, 0}, 64,
                                         &collect));
  EXPECT_TRUE(collect.finished_);
  // 3 chunks x ceil(100/64)=2 tiles.
  EXPECT_EQ(collect.tiles_, 6u);
  ASSERT_EQ(collect.rows_.size(), 300u);
  EXPECT_EQ(collect.rows_[299], (std::vector<int64_t>{299, 2990}));
  EXPECT_GT(ctx.cycles().dms_cycles(), 0);
}

TEST_F(OpsTest, AccessorRescalesDecimalVectors) {
  // Two chunks whose vectors carry different per-vector scales; the
  // accessor must normalize to the target scale.
  storage::Schema schema({{"d", storage::DataType::kDecimal}});
  storage::Chunk c1(schema, 2);
  c1.column(0).Append(15);  // 1.5 at scale 1
  c1.column(0).Append(25);
  c1.column(0).set_dsb_scale(1);
  storage::Chunk c2(schema, 1);
  c2.column(0).Append(125);  // 1.25 at scale 2
  c2.column(0).set_dsb_scale(2);

  CollectOp collect;
  ExecCtx ctx = Ctx();
  ctx.dmem().Reset();
  ASSERT_OK(RelationAccessor::PushChunks(ctx, {&c1, &c2}, {0}, {2}, 64,
                                         &collect));
  ASSERT_EQ(collect.rows_.size(), 3u);
  EXPECT_EQ(collect.rows_[0][0], 150);  // rescaled to scale 2
  EXPECT_EQ(collect.rows_[2][0], 125);
  EXPECT_EQ(collect.scales_[0], 2);
}

TEST_F(OpsTest, AccessorOverColumnSet) {
  ColumnSet set = MakeColumnSet({"x"}, {{1, 2, 3, 4, 5}});
  CollectOp collect;
  ExecCtx ctx = Ctx();
  ctx.dmem().Reset();
  ASSERT_OK(RelationAccessor::PushColumnSet(ctx, set, {0}, 1, 4, 64,
                                            &collect));
  ASSERT_EQ(collect.rows_.size(), 3u);  // rows [1,4)
  EXPECT_EQ(collect.rows_[0][0], 2);
  EXPECT_EQ(collect.rows_[2][0], 4);
}

// ---- Filter / Project / Sink pipeline -----------------------------------

TEST_F(OpsTest, FilterPipelineLateMaterializes) {
  ColumnSet input = MakeColumnSet(
      {"k", "v"}, {{1, 2, 3, 4, 5, 6}, {10, 20, 30, 40, 50, 60}});
  ColumnBinding binding{{"k", 0}, {"v", 1}};

  ColumnSet out(std::vector<ColumnMeta>{ColumnMeta{"v2", {}, 0}});
  FilterOp filter({Predicate::CmpConst("k", primitives::CmpOp::kGt, 3)},
                  {"v"}, binding, 64, false);
  ProjectOp project({{"v2", Expr::Mul(Expr::Col("v"), Expr::Int(2))}},
                    filter.OutputBinding(), 64);
  MaterializeSink sink(&out);
  filter.set_downstream(&project);
  project.set_downstream(&sink);

  ExecCtx ctx = Ctx();
  ctx.dmem().Reset();
  ASSERT_OK(filter.Open(ctx));
  ASSERT_OK(project.Open(ctx));
  ASSERT_OK(RelationAccessor::PushColumnSet(ctx, input, {0, 1}, 0, 6, 64,
                                            &filter));
  EXPECT_EQ(filter.rows_in(), 6u);
  EXPECT_EQ(filter.rows_out(), 3u);
  EXPECT_EQ(out.column(0), (std::vector<int64_t>{80, 100, 120}));
}

TEST_F(OpsTest, FilterConjunctionRefines) {
  ColumnSet input = MakeColumnSet({"a", "b"}, {{1, 5, 8, 12}, {0, 1, 0, 1}});
  ColumnBinding binding{{"a", 0}, {"b", 1}};
  ColumnSet out(std::vector<ColumnMeta>{ColumnMeta{"a", {}, 0}});
  FilterOp filter({Predicate::CmpConst("a", primitives::CmpOp::kGt, 3),
                   Predicate::CmpConst("b", primitives::CmpOp::kEq, 1)},
                  {"a"}, binding, 64, false);
  MaterializeSink sink(&out);
  filter.set_downstream(&sink);
  ExecCtx ctx = Ctx();
  ctx.dmem().Reset();
  ASSERT_OK(filter.Open(ctx));
  ASSERT_OK(
      RelationAccessor::PushColumnSet(ctx, input, {0, 1}, 0, 4, 64, &filter));
  EXPECT_EQ(out.column(0), (std::vector<int64_t>{5, 12}));
}

TEST_F(OpsTest, EmptyPredicatesPassEverything) {
  ColumnSet input = MakeColumnSet({"a"}, {{7, 8}});
  ColumnBinding binding{{"a", 0}};
  ColumnSet out(std::vector<ColumnMeta>{ColumnMeta{"a", {}, 0}});
  FilterOp filter({}, {"a"}, binding, 64, false);
  MaterializeSink sink(&out);
  filter.set_downstream(&sink);
  ExecCtx ctx = Ctx();
  ctx.dmem().Reset();
  ASSERT_OK(filter.Open(ctx));
  ASSERT_OK(
      RelationAccessor::PushColumnSet(ctx, input, {0}, 0, 2, 64, &filter));
  EXPECT_EQ(out.num_rows(), 2u);
}

TEST_F(OpsTest, DmemBudgetEnforced) {
  // A filter whose DMEM footprint exceeds the scratchpad must fail at
  // Open, not silently overrun.
  ColumnBinding binding{{"a", 0}};
  std::vector<std::string> many_cols(40, "a");
  FilterOp filter({}, many_cols, binding, 4096, false);
  ExecCtx ctx = Ctx();
  ctx.dmem().Reset();
  const Status st = filter.Open(ctx);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOutOfMemory);
}

// ---- GroupByOp -----------------------------------------------------------

TEST_F(OpsTest, GroupByAggregatesAndMerges) {
  ColumnSet input = MakeColumnSet(
      {"g", "v"}, {{1, 2, 1, 2, 1}, {10, 20, 30, 40, 50}});
  ColumnBinding binding{{"g", 0}, {"v", 1}};
  std::vector<AggSpec> aggs;
  aggs.push_back({"sum_v", AggFunc::kSum, Expr::Col("v"), {}});
  aggs.push_back({"min_v", AggFunc::kMin, Expr::Col("v"), {}});
  aggs.push_back({"max_v", AggFunc::kMax, Expr::Col("v"), {}});
  aggs.push_back({"cnt", AggFunc::kCount, nullptr, {}});

  GroupByOp op1({Expr::Col("g")}, aggs, binding);
  GroupByOp op2({Expr::Col("g")}, aggs, binding);
  ExecCtx ctx = Ctx();
  ctx.dmem().Reset();
  ASSERT_OK(op1.Open(ctx));
  ASSERT_OK(op2.Open(ctx));
  // Split rows between two "cores".
  ASSERT_OK(RelationAccessor::PushColumnSet(ctx, input, {0, 1}, 0, 3, 64,
                                            &op1));
  ASSERT_OK(RelationAccessor::PushColumnSet(ctx, input, {0, 1}, 3, 5, 64,
                                            &op2));
  // Merge operator folds op2's table into op1's.
  op1.table().MergeFrom(op2.table(), op1.funcs());

  std::vector<ColumnMeta> metas;
  for (const char* n : {"g", "sum_v", "min_v", "max_v", "cnt"}) {
    metas.push_back(ColumnMeta{n, {}, 0});
  }
  ColumnSet out(metas);
  ASSERT_OK(op1.EmitInto(&out));
  auto rows = SortedRows(out);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<int64_t>{1, 90, 10, 50, 3}));
  EXPECT_EQ(rows[1], (std::vector<int64_t>{2, 60, 20, 40, 2}));
}

TEST_F(OpsTest, GroupByWithAggregateFilter) {
  ColumnSet input = MakeColumnSet({"g", "v"}, {{1, 1, 1}, {5, 10, 15}});
  ColumnBinding binding{{"g", 0}, {"v", 1}};
  std::vector<AggSpec> aggs;
  aggs.push_back({"big_sum", AggFunc::kSum, Expr::Col("v"),
                  std::make_shared<Predicate>(Predicate::CmpConst(
                      "v", primitives::CmpOp::kGe, 10))});
  aggs.push_back({"all_cnt", AggFunc::kCount, nullptr, {}});
  GroupByOp op({Expr::Col("g")}, aggs, binding);
  ExecCtx ctx = Ctx();
  ctx.dmem().Reset();
  ASSERT_OK(op.Open(ctx));
  ASSERT_OK(
      RelationAccessor::PushColumnSet(ctx, input, {0, 1}, 0, 3, 64, &op));
  std::vector<ColumnMeta> metas = {ColumnMeta{"g", {}, 0},
                                   ColumnMeta{"big_sum", {}, 0},
                                   ColumnMeta{"all_cnt", {}, 0}};
  ColumnSet out(metas);
  ASSERT_OK(op.EmitInto(&out));
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.Value(0, 1), 25);  // 10 + 15
  EXPECT_EQ(out.Value(0, 2), 3);
}

TEST_F(OpsTest, ZeroKeyGroupByProducesSingleGroup) {
  ColumnSet input = MakeColumnSet({"v"}, {{1, 2, 3}});
  ColumnBinding binding{{"v", 0}};
  GroupByOp op({}, {{"s", AggFunc::kSum, Expr::Col("v"), {}}}, binding);
  ExecCtx ctx = Ctx();
  ctx.dmem().Reset();
  ASSERT_OK(op.Open(ctx));
  ASSERT_OK(RelationAccessor::PushColumnSet(ctx, input, {0}, 0, 3, 64, &op));
  ColumnSet out(std::vector<ColumnMeta>{ColumnMeta{"s", {}, 0}});
  ASSERT_OK(op.EmitInto(&out));
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.Value(0, 0), 6);
}

// ---- PartitionExec ---------------------------------------------------------

ColumnSet RandomKv(size_t n, uint64_t seed, int64_t key_range) {
  Rng rng(seed);
  std::vector<int64_t> keys(n);
  std::vector<int64_t> vals(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = rng.NextInRange(0, key_range - 1);
    vals[i] = static_cast<int64_t>(i);
  }
  return MakeColumnSet({"k", "v"}, {keys, vals});
}

TEST_F(OpsTest, PartitionPreservesAllRowsAndRoutesByHash) {
  ColumnSet input = RandomKv(5000, 9, 1000);
  PartitionScheme scheme;
  scheme.rounds.push_back(PartitionRound{32, 32});
  ASSERT_OK_AND_ASSIGN(
      PartitionedData parts,
      PartitionExec::Execute(dpu_, input, {0}, scheme, 256));
  ASSERT_EQ(parts.partitions.size(), 32u);
  EXPECT_EQ(parts.bits_used, 5);

  size_t total = 0;
  const std::vector<uint32_t> hashes = PartitionExec::HashColumn(input, {0});
  std::multiset<std::pair<int64_t, int64_t>> seen;
  for (size_t p = 0; p < 32; ++p) {
    const ColumnSet& part = parts.partitions[p];
    total += part.num_rows();
    for (size_t r = 0; r < part.num_rows(); ++r) {
      // Every row must be in the partition its hash selects.
      const uint32_t h = PartitionExec::HashColumn(part, {0})[r];
      EXPECT_EQ(h & 31u, p);
      seen.insert({part.Value(r, 0), part.Value(r, 1)});
    }
  }
  EXPECT_EQ(total, 5000u);
  // Contents are a permutation of the input.
  std::multiset<std::pair<int64_t, int64_t>> expected;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    expected.insert({input.Value(r, 0), input.Value(r, 1)});
  }
  EXPECT_EQ(seen, expected);
}

TEST_F(OpsTest, MultiRoundEqualsSingleRoundContents) {
  ColumnSet input = RandomKv(3000, 13, 500);
  PartitionScheme one;
  one.rounds.push_back(PartitionRound{64, 32});
  PartitionScheme two;
  two.rounds.push_back(PartitionRound{8, 8});
  two.rounds.push_back(PartitionRound{8, 1});
  ASSERT_OK_AND_ASSIGN(PartitionedData a,
                       PartitionExec::Execute(dpu_, input, {0}, one, 128));
  ASSERT_OK_AND_ASSIGN(PartitionedData b,
                       PartitionExec::Execute(dpu_, input, {0}, two, 128));
  ASSERT_EQ(a.partitions.size(), 64u);
  ASSERT_EQ(b.partitions.size(), 64u);
  EXPECT_EQ(a.bits_used, b.bits_used);
  size_t total_b = 0;
  for (const auto& p : b.partitions) total_b += p.num_rows();
  EXPECT_EQ(total_b, 3000u);
  // Round 1 uses bits [0,3), round 2 bits [3,6) -> partition p of `two`
  // holds hash bits (b2 << 3) | b1; the single 64-way round holds
  // bits [0,6) directly. Compare as sets of rows per final hash value.
  for (int h = 0; h < 64; ++h) {
    const int two_index = ((h >> 3) & 7) + (h & 7) * 8;
    EXPECT_EQ(SortedRows(a.partitions[static_cast<size_t>(h)]),
              SortedRows(b.partitions[static_cast<size_t>(two_index)]))
        << h;
  }
}

TEST_F(OpsTest, PartitionRejectsBadSchemes) {
  ColumnSet input = RandomKv(10, 1, 5);
  PartitionScheme non_pow2;
  non_pow2.rounds.push_back(PartitionRound{12, 1});
  EXPECT_FALSE(
      PartitionExec::Execute(dpu_, input, {0}, non_pow2, 64).ok());
  PartitionScheme bad_hw;
  bad_hw.rounds.push_back(PartitionRound{32, 5});
  EXPECT_FALSE(PartitionExec::Execute(dpu_, input, {0}, bad_hw, 64).ok());
  PartitionScheme empty;
  EXPECT_FALSE(PartitionExec::Execute(dpu_, input, {0}, empty, 64).ok());
}

TEST_F(OpsTest, RepartitionSplitsWithHigherBits) {
  ColumnSet input = RandomKv(1000, 21, 100);
  ASSERT_OK_AND_ASSIGN(
      std::vector<ColumnSet> sub,
      PartitionExec::Repartition(dpu_.core(0), dpu_.params(), input, {0}, 4,
                                 5, 128));
  ASSERT_EQ(sub.size(), 4u);
  size_t total = 0;
  for (const auto& p : sub) total += p.num_rows();
  EXPECT_EQ(total, 1000u);
  for (size_t p = 0; p < 4; ++p) {
    const std::vector<uint32_t> hashes =
        PartitionExec::HashColumn(sub[p], {0});
    for (uint32_t h : hashes) EXPECT_EQ((h >> 5) & 3u, p);
  }
}

// ---- JoinExec --------------------------------------------------------------

struct JoinFixture {
  PartitionedData build;
  PartitionedData probe;
};

JoinFixture MakeJoinInputs(dpu::Dpu& dpu, size_t nb, size_t np,
                           int64_t key_range, uint64_t seed,
                           int fanout = 32) {
  JoinFixture fx;
  ColumnSet build = RandomKv(nb, seed, key_range);
  ColumnSet probe = RandomKv(np, seed + 1, key_range);
  PartitionScheme scheme;
  scheme.rounds.push_back(
      PartitionRound{fanout, std::min(32, fanout)});
  fx.build = PartitionExec::Execute(dpu, build, {0}, scheme, 128).value();
  fx.probe = PartitionExec::Execute(dpu, probe, {0}, scheme, 128).value();
  return fx;
}

// Reference nested-loop join over the partitioned inputs.
std::multiset<std::vector<int64_t>> ReferenceInnerJoin(
    const PartitionedData& build, const PartitionedData& probe) {
  std::multiset<std::vector<int64_t>> out;
  for (size_t p = 0; p < build.partitions.size(); ++p) {
    const ColumnSet& b = build.partitions[p];
    const ColumnSet& q = probe.partitions[p];
    for (size_t i = 0; i < b.num_rows(); ++i) {
      for (size_t j = 0; j < q.num_rows(); ++j) {
        if (b.Value(i, 0) == q.Value(j, 0)) {
          out.insert({b.Value(i, 1), q.Value(j, 0), q.Value(j, 1)});
        }
      }
    }
  }
  return out;
}

JoinSpec BasicSpec() {
  JoinSpec spec;
  spec.build_keys = {0};
  spec.probe_keys = {0};
  // Output: build v, probe k, probe v.
  spec.outputs = {{true, 1}, {false, 0}, {false, 1}};
  return spec;
}

TEST_F(OpsTest, InnerJoinMatchesReference) {
  JoinFixture fx = MakeJoinInputs(dpu_, 400, 900, 80, 51);
  JoinStats stats;
  ASSERT_OK_AND_ASSIGN(
      ColumnSet result,
      JoinExec::Execute(dpu_, fx.build, fx.probe, BasicSpec(), &stats));
  std::multiset<std::vector<int64_t>> got;
  for (auto& row : Rows(result)) got.insert(row);
  EXPECT_EQ(got, ReferenceInnerJoin(fx.build, fx.probe));
  EXPECT_EQ(stats.build_rows, 400u);
  EXPECT_EQ(stats.probe_rows, 900u);
  EXPECT_EQ(stats.matches, got.size());
  EXPECT_EQ(stats.overflowed_partitions, 0u);
}

TEST_F(OpsTest, JoinPropertySweep) {
  Rng rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t nb = 50 + rng.NextBounded(300);
    const size_t np = 50 + rng.NextBounded(600);
    const int64_t range = 10 + static_cast<int64_t>(rng.NextBounded(200));
    JoinFixture fx = MakeJoinInputs(dpu_, nb, np, range, 100 + trial);
    ASSERT_OK_AND_ASSIGN(
        ColumnSet result,
        JoinExec::Execute(dpu_, fx.build, fx.probe, BasicSpec(), nullptr));
    std::multiset<std::vector<int64_t>> got;
    for (auto& row : Rows(result)) got.insert(row);
    EXPECT_EQ(got, ReferenceInnerJoin(fx.build, fx.probe)) << trial;
  }
}

TEST_F(OpsTest, SemiAntiOuterJoins) {
  JoinFixture fx = MakeJoinInputs(dpu_, 100, 200, 40, 61);
  // Build-side key set for reference.
  std::set<int64_t> build_keys;
  for (const auto& part : fx.build.partitions) {
    for (size_t r = 0; r < part.num_rows(); ++r) {
      build_keys.insert(part.Value(r, 0));
    }
  }
  size_t probe_total = 0;
  size_t probe_matched = 0;
  for (const auto& part : fx.probe.partitions) {
    probe_total += part.num_rows();
    for (size_t r = 0; r < part.num_rows(); ++r) {
      if (build_keys.count(part.Value(r, 0))) ++probe_matched;
    }
  }

  JoinSpec semi;
  semi.type = JoinType::kSemi;
  semi.build_keys = {0};
  semi.probe_keys = {0};
  semi.outputs = {{false, 0}, {false, 1}};
  ASSERT_OK_AND_ASSIGN(ColumnSet semi_result,
                       JoinExec::Execute(dpu_, fx.build, fx.probe, semi,
                                         nullptr));
  EXPECT_EQ(semi_result.num_rows(), probe_matched);
  for (size_t r = 0; r < semi_result.num_rows(); ++r) {
    EXPECT_TRUE(build_keys.count(semi_result.Value(r, 0)));
  }

  JoinSpec anti = semi;
  anti.type = JoinType::kAnti;
  ASSERT_OK_AND_ASSIGN(ColumnSet anti_result,
                       JoinExec::Execute(dpu_, fx.build, fx.probe, anti,
                                         nullptr));
  EXPECT_EQ(anti_result.num_rows(), probe_total - probe_matched);
  for (size_t r = 0; r < anti_result.num_rows(); ++r) {
    EXPECT_FALSE(build_keys.count(anti_result.Value(r, 0)));
  }

  JoinSpec outer = BasicSpec();
  outer.type = JoinType::kLeftOuter;
  ASSERT_OK_AND_ASSIGN(ColumnSet outer_result,
                       JoinExec::Execute(dpu_, fx.build, fx.probe, outer,
                                         nullptr));
  // Outer = inner matches + one null-extended row per unmatched probe.
  const size_t inner_matches =
      ReferenceInnerJoin(fx.build, fx.probe).size();
  EXPECT_EQ(outer_result.num_rows(),
            inner_matches + (probe_total - probe_matched));
  size_t nulls = 0;
  for (size_t r = 0; r < outer_result.num_rows(); ++r) {
    if (outer_result.Value(r, 0) == kJoinNull) ++nulls;
  }
  EXPECT_EQ(nulls, probe_total - probe_matched);
}

TEST_F(OpsTest, SemiJoinRejectsBuildOutputs) {
  JoinFixture fx = MakeJoinInputs(dpu_, 10, 10, 5, 3);
  JoinSpec bad;
  bad.type = JoinType::kSemi;
  bad.build_keys = {0};
  bad.probe_keys = {0};
  bad.outputs = {{true, 1}};
  EXPECT_FALSE(JoinExec::Execute(dpu_, fx.build, fx.probe, bad, nullptr).ok());
}

TEST_F(OpsTest, SmallSkewOverflowStillCorrect) {
  // Tight DMEM capacity: every partition overflows, results unchanged.
  JoinFixture fx = MakeJoinInputs(dpu_, 600, 600, 50, 71);
  JoinSpec spec = BasicSpec();
  spec.dmem_capacity_rows = 4;
  JoinStats stats;
  ASSERT_OK_AND_ASSIGN(
      ColumnSet result,
      JoinExec::Execute(dpu_, fx.build, fx.probe, spec, &stats));
  std::multiset<std::vector<int64_t>> got;
  for (auto& row : Rows(result)) got.insert(row);
  EXPECT_EQ(got, ReferenceInnerJoin(fx.build, fx.probe));
  EXPECT_GT(stats.overflowed_partitions, 0u);
  EXPECT_GT(stats.overflow_steps, 0u);
}

TEST_F(OpsTest, LargeSkewTriggersRepartitioning) {
  // All build rows share few keys; with a tiny per-partition estimate
  // the executor must repartition dynamically and stay correct.
  JoinFixture fx = MakeJoinInputs(dpu_, 2000, 1000, 8, 81, 4);
  JoinSpec spec = BasicSpec();
  spec.est_rows_per_partition = 50;
  spec.large_skew_factor = 2.0;
  JoinStats stats;
  ASSERT_OK_AND_ASSIGN(
      ColumnSet result,
      JoinExec::Execute(dpu_, fx.build, fx.probe, spec, &stats));
  std::multiset<std::vector<int64_t>> got;
  for (auto& row : Rows(result)) got.insert(row);
  EXPECT_EQ(got, ReferenceInnerJoin(fx.build, fx.probe));
  EXPECT_GT(stats.repartitioned_partitions, 0u);
}

TEST_F(OpsTest, HeavyHitterDetectionAndBroadcast) {
  // One key dominates the build side.
  std::vector<int64_t> bkeys(500, 7);
  std::vector<int64_t> bvals(500);
  for (size_t i = 100; i < 500; ++i) bkeys[i] = static_cast<int64_t>(i);
  for (size_t i = 0; i < 500; ++i) bvals[i] = static_cast<int64_t>(i);
  ColumnSet build = MakeColumnSet({"k", "v"}, {bkeys, bvals});
  ColumnSet probe = RandomKv(300, 91, 600);
  PartitionScheme scheme;
  scheme.rounds.push_back(PartitionRound{4, 4});
  PartitionedData bp =
      PartitionExec::Execute(dpu_, build, {0}, scheme, 128).value();
  PartitionedData pp =
      PartitionExec::Execute(dpu_, probe, {0}, scheme, 128).value();

  JoinSpec spec = BasicSpec();
  spec.heavy_hitter_threshold = 50;
  JoinStats stats;
  ASSERT_OK_AND_ASSIGN(ColumnSet result,
                       JoinExec::Execute(dpu_, bp, pp, spec, &stats));
  EXPECT_GE(stats.heavy_hitter_keys, 1u);
  std::multiset<std::vector<int64_t>> got;
  for (auto& row : Rows(result)) got.insert(row);
  EXPECT_EQ(got, ReferenceInnerJoin(bp, pp));
}

TEST_F(OpsTest, CompositeKeyJoin) {
  ColumnSet build = MakeColumnSet(
      {"k1", "k2", "v"}, {{1, 1, 2}, {10, 20, 10}, {100, 200, 300}});
  ColumnSet probe = MakeColumnSet(
      {"k1", "k2", "w"}, {{1, 1, 2, 2}, {10, 30, 10, 20}, {7, 8, 9, 6}});
  PartitionScheme scheme;
  scheme.rounds.push_back(PartitionRound{2, 2});
  PartitionedData bp =
      PartitionExec::Execute(dpu_, build, {0, 1}, scheme, 64).value();
  PartitionedData pp =
      PartitionExec::Execute(dpu_, probe, {0, 1}, scheme, 64).value();
  JoinSpec spec;
  spec.build_keys = {0, 1};
  spec.probe_keys = {0, 1};
  spec.outputs = {{true, 2}, {false, 2}};
  ASSERT_OK_AND_ASSIGN(ColumnSet result,
                       JoinExec::Execute(dpu_, bp, pp, spec, nullptr));
  // Matches: (1,10) and... build (2,10) vs probe (2,10) -> (300,9).
  auto rows = SortedRows(result);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<int64_t>{100, 7}));
  EXPECT_EQ(rows[1], (std::vector<int64_t>{300, 9}));
}

// ---- Sort / TopK -----------------------------------------------------------

TEST_F(OpsTest, SortSingleKeyAscending) {
  ColumnSet input = MakeColumnSet({"k", "v"}, {{3, 1, 2}, {30, 10, 20}});
  ASSERT_OK_AND_ASSIGN(ColumnSet sorted,
                       SortExec::Execute(dpu_, input, {SortKey{0, true}}));
  EXPECT_EQ(sorted.column(0), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(sorted.column(1), (std::vector<int64_t>{10, 20, 30}));
}

TEST_F(OpsTest, SortMultiKeyMixedDirections) {
  ColumnSet input = MakeColumnSet(
      {"a", "b"}, {{1, 2, 1, 2}, {9, 8, 7, 6}});
  ASSERT_OK_AND_ASSIGN(
      ColumnSet sorted,
      SortExec::Execute(dpu_, input, {SortKey{0, true}, SortKey{1, false}}));
  EXPECT_EQ(sorted.column(0), (std::vector<int64_t>{1, 1, 2, 2}));
  EXPECT_EQ(sorted.column(1), (std::vector<int64_t>{9, 7, 8, 6}));
}

TEST_F(OpsTest, SortMatchesStdSortProperty) {
  Rng rng(111);
  for (int trial = 0; trial < 5; ++trial) {
    const size_t n = 500 + rng.NextBounded(2000);
    std::vector<int64_t> keys(n);
    std::vector<int64_t> vals(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = rng.NextInRange(-1000, 1000);
      vals[i] = static_cast<int64_t>(i);
    }
    ColumnSet input = MakeColumnSet({"k", "v"}, {keys, vals});
    ASSERT_OK_AND_ASSIGN(ColumnSet sorted,
                         SortExec::Execute(dpu_, input, {SortKey{0, true}}));
    std::vector<int64_t> expected = keys;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(sorted.column(0), expected);
    // Payload follows its key: every (k, v) pair must exist in input.
    std::multiset<std::pair<int64_t, int64_t>> in_pairs;
    std::multiset<std::pair<int64_t, int64_t>> out_pairs;
    for (size_t i = 0; i < n; ++i) {
      in_pairs.insert({keys[i], vals[i]});
      out_pairs.insert({sorted.Value(i, 0), sorted.Value(i, 1)});
    }
    EXPECT_EQ(in_pairs, out_pairs);
  }
}

TEST_F(OpsTest, SortNegativeValues) {
  ColumnSet input = MakeColumnSet({"k"}, {{5, -3, 0, -100, 42}});
  ASSERT_OK_AND_ASSIGN(ColumnSet sorted,
                       SortExec::Execute(dpu_, input, {SortKey{0, true}}));
  EXPECT_EQ(sorted.column(0), (std::vector<int64_t>{-100, -3, 0, 5, 42}));
}

TEST_F(OpsTest, TopKReturnsSmallestUnderOrder) {
  ColumnSet input = MakeColumnSet({"k", "v"},
                                  {{5, 1, 4, 2, 3}, {50, 10, 40, 20, 30}});
  ASSERT_OK_AND_ASSIGN(
      ColumnSet top,
      TopKExec::Execute(dpu_, input, {SortKey{0, false}}, 2));
  EXPECT_EQ(top.column(0), (std::vector<int64_t>{5, 4}));
  EXPECT_EQ(top.column(1), (std::vector<int64_t>{50, 40}));
}

TEST_F(OpsTest, TopKWithKLargerThanInput) {
  ColumnSet input = MakeColumnSet({"k"}, {{2, 1}});
  ASSERT_OK_AND_ASSIGN(ColumnSet top,
                       TopKExec::Execute(dpu_, input, {SortKey{0, true}}, 10));
  EXPECT_EQ(top.column(0), (std::vector<int64_t>{1, 2}));
}

TEST_F(OpsTest, SortEmptyInput) {
  ColumnSet input = MakeColumnSet({"k"}, {{}});
  ASSERT_OK_AND_ASSIGN(ColumnSet sorted,
                       SortExec::Execute(dpu_, input, {SortKey{0, true}}));
  EXPECT_EQ(sorted.num_rows(), 0u);
}

// ---- Window ----------------------------------------------------------------

TEST_F(OpsTest, WindowRankAndRowNumber) {
  ColumnSet input = MakeColumnSet(
      {"p", "o", "v"},
      {{1, 1, 1, 2, 2}, {10, 10, 20, 5, 6}, {1, 2, 3, 4, 5}});
  WindowSpec rank;
  rank.func = WindowFunc::kRank;
  rank.partition_by = {0};
  rank.order_by = {SortKey{1, true}};
  rank.output_name = "rnk";
  WindowSpec rownum = rank;
  rownum.func = WindowFunc::kRowNumber;
  rownum.output_name = "rn";
  ASSERT_OK_AND_ASSIGN(ColumnSet out,
                       WindowExec::Execute(dpu_, input, {rank, rownum}));
  ASSERT_EQ(out.num_rows(), 5u);
  // Partition 1 ordered by o: rows (10,10,20) -> rank 1,1,3; rn 1,2,3.
  EXPECT_EQ(out.column(3), (std::vector<int64_t>{1, 1, 3, 1, 2}));
  EXPECT_EQ(out.column(4), (std::vector<int64_t>{1, 2, 3, 1, 2}));
}

TEST_F(OpsTest, WindowSums) {
  ColumnSet input = MakeColumnSet(
      {"p", "o", "v"}, {{1, 1, 2}, {1, 2, 1}, {10, 20, 5}});
  WindowSpec running;
  running.func = WindowFunc::kRunningSum;
  running.partition_by = {0};
  running.order_by = {SortKey{1, true}};
  running.value_column = 2;
  running.output_name = "rsum";
  WindowSpec total = running;
  total.func = WindowFunc::kPartitionSum;
  total.output_name = "psum";
  ASSERT_OK_AND_ASSIGN(ColumnSet out,
                       WindowExec::Execute(dpu_, input, {running, total}));
  EXPECT_EQ(out.column(3), (std::vector<int64_t>{10, 30, 5}));
  EXPECT_EQ(out.column(4), (std::vector<int64_t>{30, 30, 5}));
}

TEST_F(OpsTest, WindowDenseRank) {
  ColumnSet input = MakeColumnSet({"p", "o"}, {{1, 1, 1, 1}, {5, 5, 7, 9}});
  WindowSpec dense;
  dense.func = WindowFunc::kDenseRank;
  dense.partition_by = {0};
  dense.order_by = {SortKey{1, true}};
  ASSERT_OK_AND_ASSIGN(ColumnSet out,
                       WindowExec::Execute(dpu_, input, {dense}));
  EXPECT_EQ(out.column(2), (std::vector<int64_t>{1, 1, 2, 3}));
}

// ---- Set operations --------------------------------------------------------

TEST_F(OpsTest, SetOperationsFollowSqlSemantics) {
  ColumnSet left = MakeColumnSet({"a"}, {{1, 2, 2, 3}});
  ColumnSet right = MakeColumnSet({"a"}, {{2, 4, 4}});
  ASSERT_OK_AND_ASSIGN(
      ColumnSet u, SetOpExec::Execute(dpu_, SetOpKind::kUnion, left, right));
  EXPECT_EQ(SortedRows(u), (std::vector<std::vector<int64_t>>{{1}, {2}, {3},
                                                              {4}}));
  ASSERT_OK_AND_ASSIGN(
      ColumnSet i,
      SetOpExec::Execute(dpu_, SetOpKind::kIntersect, left, right));
  EXPECT_EQ(SortedRows(i), (std::vector<std::vector<int64_t>>{{2}}));
  ASSERT_OK_AND_ASSIGN(
      ColumnSet m, SetOpExec::Execute(dpu_, SetOpKind::kMinus, left, right));
  EXPECT_EQ(SortedRows(m), (std::vector<std::vector<int64_t>>{{1}, {3}}));
}

TEST_F(OpsTest, SetOpsMultiColumnAndReference) {
  Rng rng(131);
  std::vector<int64_t> la;
  std::vector<int64_t> lb;
  std::vector<int64_t> ra;
  std::vector<int64_t> rb;
  for (int i = 0; i < 500; ++i) {
    la.push_back(rng.NextInRange(0, 20));
    lb.push_back(rng.NextInRange(0, 3));
    ra.push_back(rng.NextInRange(0, 20));
    rb.push_back(rng.NextInRange(0, 3));
  }
  ColumnSet left = MakeColumnSet({"a", "b"}, {la, lb});
  ColumnSet right = MakeColumnSet({"a", "b"}, {ra, rb});
  std::set<std::vector<int64_t>> lset;
  std::set<std::vector<int64_t>> rset;
  for (auto& r : Rows(left)) lset.insert(r);
  for (auto& r : Rows(right)) rset.insert(r);

  ASSERT_OK_AND_ASSIGN(
      ColumnSet m, SetOpExec::Execute(dpu_, SetOpKind::kMinus, left, right));
  std::set<std::vector<int64_t>> expected;
  for (const auto& r : lset) {
    if (!rset.count(r)) expected.insert(r);
  }
  const auto got = SortedRows(m);
  EXPECT_EQ(std::set<std::vector<int64_t>>(got.begin(), got.end()), expected);
  EXPECT_EQ(got.size(), expected.size());  // distinct
}

TEST_F(OpsTest, SetOpRejectsMismatchedArity) {
  ColumnSet left = MakeColumnSet({"a"}, {{1}});
  ColumnSet right = MakeColumnSet({"a", "b"}, {{1}, {2}});
  EXPECT_FALSE(
      SetOpExec::Execute(dpu_, SetOpKind::kUnion, left, right).ok());
}

}  // namespace
}  // namespace rapid::core
