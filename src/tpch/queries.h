// The evaluated TPC-H query set (the paper's "representative half"):
// Q1, Q3, Q4, Q5, Q6, Q10, Q11, Q12, Q14, Q18, Q19.
//
// Each query is expressed as one or more logical-plan fragments plus
// an optional host post-processing step (Section 3.2: the host's
// RAPID operator applies decoding and transformations such as AVG
// finalization or scalar-subquery glue). The same fragments run on
// both engines — RAPID (vectorized, push-based, DPU-modeled) and the
// host's Volcano engine — so results are directly comparable.

#ifndef RAPID_TPCH_QUERIES_H_
#define RAPID_TPCH_QUERIES_H_

#include <functional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/qcomp/logical_plan.h"
#include "hostdb/database.h"

namespace rapid::tpch {

struct TpchQuery {
  std::string name;
  // Fragment builders; fragment i may inspect results of fragments
  // < i (scalar-subquery style glue, e.g. Q11's HAVING threshold).
  std::vector<std::function<Result<core::LogicalPtr>(
      const core::Catalog& catalog,
      const std::vector<core::ColumnSet>& prev)>>
      fragments;
  // Optional final host-side step over all fragment results; when
  // null the last fragment's rows are the result.
  std::function<core::ColumnSet(const std::vector<core::ColumnSet>&)> post;
};

// Builds the full query set. The catalog provides dictionaries for
// encoding string constants; host and RAPID copies are encoded
// identically, so either catalog works.
std::vector<TpchQuery> BuildQuerySet();

// Single queries by name ("Q1".."Q19").
Result<TpchQuery> BuildQuery(const std::string& name);

struct QueryRun {
  core::ColumnSet result;
  double wall_seconds = 0;          // measured on this host
  double modeled_dpu_seconds = 0;   // RAPID runs only
  core::WorkloadCounters workload;  // RAPID runs only
};

// Executes all fragments on the RAPID engine and applies post.
Result<QueryRun> RunOnRapid(core::RapidEngine& engine, const TpchQuery& query,
                            const core::ExecOptions& options = {});

// Executes all fragments on the host's Volcano engine (System X only).
Result<QueryRun> RunOnHost(hostdb::HostDatabase& host,
                           const TpchQuery& query);

// Generates TPC-H data at `scale_factor`, creates the tables in the
// host database and loads them into the RAPID engine.
Status LoadTpch(double scale_factor, hostdb::HostDatabase* host,
                core::RapidEngine* engine, uint64_t seed = 42,
                size_t rows_per_chunk = 2048);

}  // namespace rapid::tpch

#endif  // RAPID_TPCH_QUERIES_H_
