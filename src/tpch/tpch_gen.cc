#include "tpch/tpch_gen.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace rapid::tpch {

namespace {

using storage::ColumnData;
using storage::ColumnKind;
using storage::ColumnSpec;

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// region of each nation, per the TPC-H spec.
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "MACHINERY", "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK",
                            "MAIL", "FOB"};
const char* kShipInstruct[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kTypeSyllable1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE",
                                "ECONOMY", "PROMO"};
const char* kTypeSyllable2[] = {"ANODIZED", "BURNISHED", "PLATED",
                                "POLISHED", "BRUSHED"};
const char* kTypeSyllable3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainerSyllable1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainerSyllable2[] = {"CASE", "BOX", "BAG", "JAR", "PKG",
                                     "PACK", "CAN", "DRUM"};

}  // namespace

int32_t DaysFromCivil(int year, int month, int day) {
  // Howard Hinnant's algorithm.
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy = static_cast<unsigned>(
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int32_t>(era * 146097 +
                              static_cast<int>(doe) - 719468);
}

size_t TableData::num_rows() const {
  if (specs.empty()) return 0;
  switch (specs[0].kind) {
    case ColumnKind::kDecimal:
      return data[0].decimals.size();
    case ColumnKind::kString:
      return data[0].strings.size();
    default:
      return data[0].ints.size();
  }
}

TpchGenerator::TpchGenerator(double scale_factor, uint64_t seed)
    : sf_(scale_factor), seed_(seed) {}

size_t TpchGenerator::Scaled(size_t base) const {
  const auto n =
      static_cast<size_t>(std::llround(static_cast<double>(base) * sf_));
  return std::max<size_t>(1, n);
}

TableData TpchGenerator::Region() {
  TableData t;
  t.name = "region";
  t.specs = {{"r_regionkey", ColumnKind::kInt32},
             {"r_name", ColumnKind::kString}};
  t.data.resize(2);
  for (int i = 0; i < 5; ++i) {
    t.data[0].ints.push_back(i);
    t.data[1].strings.push_back(kRegions[i]);
  }
  return t;
}

TableData TpchGenerator::Nation() {
  TableData t;
  t.name = "nation";
  t.specs = {{"n_nationkey", ColumnKind::kInt32},
             {"n_name", ColumnKind::kString},
             {"n_regionkey", ColumnKind::kInt32}};
  t.data.resize(3);
  for (int i = 0; i < 25; ++i) {
    t.data[0].ints.push_back(i);
    t.data[1].strings.push_back(kNations[i]);
    t.data[2].ints.push_back(kNationRegion[i]);
  }
  return t;
}

TableData TpchGenerator::Supplier() {
  Rng rng(seed_ ^ 0x5001);
  TableData t;
  t.name = "supplier";
  t.specs = {{"s_suppkey", ColumnKind::kInt32},
             {"s_name", ColumnKind::kString},
             {"s_nationkey", ColumnKind::kInt32},
             {"s_acctbal", ColumnKind::kDecimal}};
  t.data.resize(4);
  const size_t n = num_suppliers();
  for (size_t i = 0; i < n; ++i) {
    t.data[0].ints.push_back(static_cast<int64_t>(i + 1));
    t.data[1].strings.push_back("Supplier#" + std::to_string(i + 1));
    t.data[2].ints.push_back(static_cast<int64_t>(rng.NextBounded(25)));
    t.data[3].decimals.push_back(
        static_cast<double>(rng.NextInRange(-99999, 999999)) / 100.0);
  }
  return t;
}

TableData TpchGenerator::Customer() {
  Rng rng(seed_ ^ 0xC001);
  TableData t;
  t.name = "customer";
  t.specs = {{"c_custkey", ColumnKind::kInt32},
             {"c_name", ColumnKind::kString},
             {"c_nationkey", ColumnKind::kInt32},
             {"c_mktsegment", ColumnKind::kString},
             {"c_acctbal", ColumnKind::kDecimal}};
  t.data.resize(5);
  const size_t n = num_customers();
  for (size_t i = 0; i < n; ++i) {
    t.data[0].ints.push_back(static_cast<int64_t>(i + 1));
    t.data[1].strings.push_back("Customer#" + std::to_string(i + 1));
    t.data[2].ints.push_back(static_cast<int64_t>(rng.NextBounded(25)));
    t.data[3].strings.push_back(kSegments[rng.NextBounded(5)]);
    t.data[4].decimals.push_back(
        static_cast<double>(rng.NextInRange(-99999, 999999)) / 100.0);
  }
  return t;
}

TableData TpchGenerator::Part() {
  Rng rng(seed_ ^ 0xBA01);
  TableData t;
  t.name = "part";
  t.specs = {{"p_partkey", ColumnKind::kInt32},
             {"p_brand", ColumnKind::kString},
             {"p_type", ColumnKind::kString},
             {"p_container", ColumnKind::kString},
             {"p_size", ColumnKind::kInt32},
             {"p_retailprice", ColumnKind::kDecimal}};
  t.data.resize(6);
  const size_t n = num_parts();
  for (size_t i = 0; i < n; ++i) {
    const auto key = static_cast<int64_t>(i + 1);
    t.data[0].ints.push_back(key);
    t.data[1].strings.push_back(
        "Brand#" + std::to_string(1 + rng.NextBounded(5)) +
        std::to_string(1 + rng.NextBounded(5)));
    t.data[2].strings.push_back(std::string(kTypeSyllable1[rng.NextBounded(6)]) +
                                " " + kTypeSyllable2[rng.NextBounded(5)] +
                                " " + kTypeSyllable3[rng.NextBounded(5)]);
    t.data[3].strings.push_back(
        std::string(kContainerSyllable1[rng.NextBounded(5)]) + " " +
        kContainerSyllable2[rng.NextBounded(8)]);
    t.data[4].ints.push_back(static_cast<int64_t>(1 + rng.NextBounded(50)));
    // TPC-H retail price formula.
    t.data[5].decimals.push_back(
        (90000.0 + static_cast<double>((key / 10) % 20001) +
         100.0 * static_cast<double>(key % 1000)) /
        100.0);
  }
  return t;
}

TableData TpchGenerator::PartSupp() {
  Rng rng(seed_ ^ 0xB501);
  TableData t;
  t.name = "partsupp";
  t.specs = {{"ps_partkey", ColumnKind::kInt32},
             {"ps_suppkey", ColumnKind::kInt32},
             {"ps_availqty", ColumnKind::kInt32},
             {"ps_supplycost", ColumnKind::kDecimal}};
  t.data.resize(4);
  const size_t parts = num_parts();
  const size_t suppliers = num_suppliers();
  for (size_t p = 0; p < parts; ++p) {
    // Four suppliers per part, spread per the spec's formula.
    for (size_t s = 0; s < 4; ++s) {
      const size_t suppkey =
          (p + s * (suppliers / 4 + p / suppliers)) % suppliers + 1;
      t.data[0].ints.push_back(static_cast<int64_t>(p + 1));
      t.data[1].ints.push_back(static_cast<int64_t>(suppkey));
      t.data[2].ints.push_back(static_cast<int64_t>(1 + rng.NextBounded(9999)));
      t.data[3].decimals.push_back(
          static_cast<double>(rng.NextInRange(100, 100000)) / 100.0);
    }
  }
  return t;
}

void TpchGenerator::EnsureOrdersAndLineitem() {
  if (orders_built_) return;
  orders_built_ = true;

  Rng rng(seed_ ^ 0x0D01);
  const int32_t start = DaysFromCivil(1992, 1, 1);
  const int32_t end = DaysFromCivil(1998, 8, 2);
  const int32_t cutoff = DaysFromCivil(1995, 6, 17);
  const size_t n_orders = num_orders();
  const size_t n_cust = num_customers();
  const size_t n_parts = num_parts();
  const size_t n_supp = num_suppliers();

  orders_.name = "orders";
  orders_.specs = {{"o_orderkey", ColumnKind::kInt64},
                   {"o_custkey", ColumnKind::kInt32},
                   {"o_orderstatus", ColumnKind::kString},
                   {"o_totalprice", ColumnKind::kDecimal},
                   {"o_orderdate", ColumnKind::kDate},
                   {"o_orderpriority", ColumnKind::kString},
                   {"o_shippriority", ColumnKind::kInt32}};
  orders_.data.resize(7);

  lineitem_.name = "lineitem";
  lineitem_.specs = {{"l_orderkey", ColumnKind::kInt64},
                     {"l_partkey", ColumnKind::kInt32},
                     {"l_suppkey", ColumnKind::kInt32},
                     {"l_linenumber", ColumnKind::kInt32},
                     {"l_quantity", ColumnKind::kDecimal},
                     {"l_extendedprice", ColumnKind::kDecimal},
                     {"l_discount", ColumnKind::kDecimal},
                     {"l_tax", ColumnKind::kDecimal},
                     {"l_returnflag", ColumnKind::kString},
                     {"l_linestatus", ColumnKind::kString},
                     {"l_shipdate", ColumnKind::kDate},
                     {"l_commitdate", ColumnKind::kDate},
                     {"l_receiptdate", ColumnKind::kDate},
                     {"l_shipmode", ColumnKind::kString},
                     {"l_shipinstruct", ColumnKind::kString}};
  lineitem_.data.resize(15);

  for (size_t o = 0; o < n_orders; ++o) {
    const auto orderkey = static_cast<int64_t>(o + 1);
    const auto custkey = static_cast<int64_t>(1 + rng.NextBounded(n_cust));
    const auto orderdate = static_cast<int32_t>(
        start + rng.NextBounded(static_cast<uint64_t>(end - start)));
    const size_t lines = 1 + rng.NextBounded(7);

    double total = 0;
    bool any_open = false;
    bool all_open = true;
    for (size_t l = 0; l < lines; ++l) {
      const auto partkey = static_cast<int64_t>(1 + rng.NextBounded(n_parts));
      const auto suppkey = static_cast<int64_t>(1 + rng.NextBounded(n_supp));
      const auto qty = static_cast<int64_t>(1 + rng.NextBounded(50));
      // Integer cents keep every decimal exactly representable (the
      // DSB encoder requires exact base-table decimals).
      const int64_t unit_cents =
          90000 + (partkey / 10) % 20001 + 100 * (partkey % 1000);
      const double extprice =
          static_cast<double>(qty * unit_cents) / 100.0;
      const double discount =
          static_cast<double>(rng.NextBounded(11)) / 100.0;  // 0.00-0.10
      const double tax = static_cast<double>(rng.NextBounded(9)) / 100.0;
      const auto shipdate =
          static_cast<int32_t>(orderdate + 1 + rng.NextBounded(121));
      const auto commitdate =
          static_cast<int32_t>(orderdate + 30 + rng.NextBounded(61));
      const auto receiptdate =
          static_cast<int32_t>(shipdate + 1 + rng.NextBounded(30));
      const bool open = shipdate > cutoff;
      any_open |= open;
      all_open &= open;
      const char* returnflag =
          receiptdate <= cutoff ? (rng.NextBounded(2) ? "R" : "A") : "N";

      lineitem_.data[0].ints.push_back(orderkey);
      lineitem_.data[1].ints.push_back(partkey);
      lineitem_.data[2].ints.push_back(suppkey);
      lineitem_.data[3].ints.push_back(static_cast<int64_t>(l + 1));
      lineitem_.data[4].decimals.push_back(static_cast<double>(qty));
      lineitem_.data[5].decimals.push_back(extprice);
      lineitem_.data[6].decimals.push_back(discount);
      lineitem_.data[7].decimals.push_back(tax);
      lineitem_.data[8].strings.push_back(returnflag);
      lineitem_.data[9].strings.push_back(open ? "O" : "F");
      lineitem_.data[10].ints.push_back(shipdate);
      lineitem_.data[11].ints.push_back(commitdate);
      lineitem_.data[12].ints.push_back(receiptdate);
      lineitem_.data[13].strings.push_back(kShipModes[rng.NextBounded(7)]);
      lineitem_.data[14].strings.push_back(kShipInstruct[rng.NextBounded(4)]);

      total += extprice * (1.0 - discount) * (1.0 + tax);
    }

    orders_.data[0].ints.push_back(orderkey);
    orders_.data[1].ints.push_back(custkey);
    orders_.data[2].strings.push_back(all_open ? "O"
                                               : (any_open ? "P" : "F"));
    orders_.data[3].decimals.push_back(std::round(total * 100.0) / 100.0);
    orders_.data[4].ints.push_back(orderdate);
    orders_.data[5].strings.push_back(kPriorities[rng.NextBounded(5)]);
    orders_.data[6].ints.push_back(0);
  }
}

TableData TpchGenerator::Orders() {
  EnsureOrdersAndLineitem();
  return orders_;
}

TableData TpchGenerator::Lineitem() {
  EnsureOrdersAndLineitem();
  return lineitem_;
}

std::vector<TableData> TpchGenerator::AllTables() {
  std::vector<TableData> out;
  out.push_back(Region());
  out.push_back(Nation());
  out.push_back(Supplier());
  out.push_back(Customer());
  out.push_back(Part());
  out.push_back(PartSupp());
  out.push_back(Orders());
  out.push_back(Lineitem());
  return out;
}

}  // namespace rapid::tpch
