// TPC-H data generation (the paper's evaluation workload).
//
// A from-scratch dbgen equivalent: all eight tables at a configurable
// scale factor, with the standard cardinalities (lineitem ~= 6M * SF),
// key relationships (orders -> lineitem 1..7 lines, correlated dates)
// and value domains. Deterministic for a given seed.

#ifndef RAPID_TPCH_TPCH_GEN_H_
#define RAPID_TPCH_TPCH_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/loader.h"

namespace rapid::tpch {

// Days since 1970-01-01 for a civil date (valid for years 1700-2100).
int32_t DaysFromCivil(int year, int month, int day);

struct TableData {
  std::string name;
  std::vector<storage::ColumnSpec> specs;
  std::vector<storage::ColumnData> data;

  size_t num_rows() const;
};

class TpchGenerator {
 public:
  explicit TpchGenerator(double scale_factor, uint64_t seed = 42);

  // Individual tables. Orders and lineitem are correlated; generating
  // either one materializes both internally.
  TableData Region();
  TableData Nation();
  TableData Supplier();
  TableData Customer();
  TableData Part();
  TableData PartSupp();
  TableData Orders();
  TableData Lineitem();

  // All eight tables.
  std::vector<TableData> AllTables();

  // Standard cardinalities at this scale factor.
  size_t num_orders() const { return Scaled(1'500'000); }
  size_t num_customers() const { return Scaled(150'000); }
  size_t num_parts() const { return Scaled(200'000); }
  size_t num_suppliers() const { return Scaled(10'000); }

 private:
  size_t Scaled(size_t base) const;
  void EnsureOrdersAndLineitem();

  double sf_;
  uint64_t seed_;
  bool orders_built_ = false;
  TableData orders_;
  TableData lineitem_;
};

// Convenience: creates all TPC-H tables in the host database and
// (optionally) loads them into a RAPID engine.
class HostLoader;

}  // namespace rapid::tpch

#endif  // RAPID_TPCH_TPCH_GEN_H_
