#include "tpch/queries.h"

#include <chrono>
#include <cmath>

#include "storage/dsb.h"
#include "tpch/tpch_gen.h"

namespace rapid::tpch {

namespace {

using core::AggFunc;
using core::AggSpec;
using core::ColumnSet;
using core::Expr;
using core::ExprPtr;
using core::JoinType;
using core::LogicalNode;
using core::LogicalPtr;
using core::Predicate;
using primitives::CmpOp;

// ---- Constant-encoding helpers ---------------------------------------------

Result<const storage::Table*> FindTable(const core::Catalog& catalog,
                                        const std::string& table) {
  auto it = catalog.find(table);
  if (it == catalog.end()) {
    return Status::NotFound("table '" + table + "' not loaded");
  }
  return &it->second;
}

Result<const storage::Dictionary*> FindDict(const core::Catalog& catalog,
                                            const std::string& table,
                                            const std::string& column) {
  RAPID_ASSIGN_OR_RETURN(const storage::Table* t, FindTable(catalog, table));
  RAPID_ASSIGN_OR_RETURN(size_t idx, t->schema().IndexOf(column));
  const storage::Dictionary* dict = t->dictionary(idx);
  if (dict == nullptr) {
    return Status::InvalidArgument(column + " is not a dictionary column");
  }
  return dict;
}

// Dictionary code of a string constant.
Result<int64_t> DictCode(const core::Catalog& catalog,
                         const std::string& table, const std::string& column,
                         const std::string& value) {
  RAPID_ASSIGN_OR_RETURN(const storage::Dictionary* dict,
                         FindDict(catalog, table, column));
  RAPID_ASSIGN_OR_RETURN(uint32_t code, dict->Lookup(value));
  return static_cast<int64_t>(code);
}

// Bitmap over dictionary codes for an IN list.
Result<BitVector> DictSet(const core::Catalog& catalog,
                          const std::string& table, const std::string& column,
                          const std::vector<std::string>& values) {
  RAPID_ASSIGN_OR_RETURN(const storage::Dictionary* dict,
                         FindDict(catalog, table, column));
  BitVector out(dict->size());
  for (const std::string& v : values) {
    RAPID_ASSIGN_OR_RETURN(uint32_t code, dict->Lookup(v));
    out.Set(code);
  }
  return out;
}

Result<BitVector> DictPrefix(const core::Catalog& catalog,
                             const std::string& table,
                             const std::string& column,
                             const std::string& prefix) {
  RAPID_ASSIGN_OR_RETURN(const storage::Dictionary* dict,
                         FindDict(catalog, table, column));
  return dict->PrefixLookup(prefix);
}

// DSB mantissa of a decimal constant at the column's storage scale.
Result<int64_t> Dsb(const core::Catalog& catalog, const std::string& table,
                    const std::string& column, double value) {
  RAPID_ASSIGN_OR_RETURN(const storage::Table* t, FindTable(catalog, table));
  RAPID_ASSIGN_OR_RETURN(size_t idx, t->schema().IndexOf(column));
  const int scale = t->stats(idx).dsb_scale;
  return static_cast<int64_t>(std::llround(
      value * static_cast<double>(storage::Pow10(scale))));
}

// revenue expression: extprice * (1 - discount).
ExprPtr Revenue() {
  return Expr::Mul(Expr::Col("l_extendedprice"),
                   Expr::Sub(Expr::Dec(1.0, 2), Expr::Col("l_discount")));
}

// Appends a derived decimal column computed as 10^scale * a / b.
void AppendRatioColumn(ColumnSet* set, const std::string& name, size_t col_a,
                       size_t col_b, int out_scale) {
  core::ColumnMeta meta;
  meta.name = name;
  meta.type = storage::DataType::kDecimal;
  meta.dsb_scale = out_scale;
  // Rebuild with one more column.
  std::vector<core::ColumnMeta> metas = set->metas();
  metas.push_back(meta);
  ColumnSet out(metas);
  for (size_t r = 0; r < set->num_rows(); ++r) {
    std::vector<int64_t> row(set->num_columns() + 1);
    for (size_t c = 0; c < set->num_columns(); ++c) row[c] = set->Value(r, c);
    const double a = set->Decimal(r, col_a);
    const double b = set->Decimal(r, col_b);
    row[set->num_columns()] = static_cast<int64_t>(std::llround(
        (b == 0 ? 0 : a / b) *
        static_cast<double>(storage::Pow10(out_scale))));
    out.AppendRow(row);
  }
  *set = std::move(out);
}

// ---- Query builders ----------------------------------------------------

TpchQuery BuildQ1() {
  TpchQuery q;
  q.name = "Q1";
  q.fragments.push_back([](const core::Catalog& catalog,
                           const std::vector<ColumnSet>&)
                            -> Result<LogicalPtr> {
    const int32_t cutoff = DaysFromCivil(1998, 9, 2);
    auto scan = LogicalNode::Scan(
        "lineitem",
        {"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
         "l_discount", "l_tax"},
        {Predicate::CmpConst("l_shipdate", CmpOp::kLe, cutoff)});
    auto charge = Expr::Mul(Revenue(),
                            Expr::Add(Expr::Dec(1.0, 2), Expr::Col("l_tax")));
    std::vector<AggSpec> aggs;
    aggs.push_back({"sum_qty", AggFunc::kSum, Expr::Col("l_quantity"), {}});
    aggs.push_back(
        {"sum_base_price", AggFunc::kSum, Expr::Col("l_extendedprice"), {}});
    aggs.push_back({"sum_disc_price", AggFunc::kSum, Revenue(), {}});
    aggs.push_back({"sum_charge", AggFunc::kSum, charge, {}});
    aggs.push_back({"sum_disc", AggFunc::kSum, Expr::Col("l_discount"), {}});
    aggs.push_back({"count_order", AggFunc::kCount, nullptr, {}});
    auto grouped = LogicalNode::GroupBy(
        scan,
        {{"l_returnflag", Expr::Col("l_returnflag")},
         {"l_linestatus", Expr::Col("l_linestatus")}},
        std::move(aggs));
    (void)catalog;
    return LogicalNode::Sort(grouped, {{"l_returnflag", true},
                                       {"l_linestatus", true}});
  });
  q.post = [](const std::vector<ColumnSet>& results) {
    // Host post-processing: AVG finalization (sum / count).
    ColumnSet out = results.back();
    auto col = [&](const char* name) { return out.IndexOf(name).value(); };
    const size_t count = col("count_order");
    AppendRatioColumn(&out, "avg_qty", col("sum_qty"), count, 2);
    AppendRatioColumn(&out, "avg_price", col("sum_base_price"), count, 2);
    AppendRatioColumn(&out, "avg_disc", col("sum_disc"), count, 2);
    return out;
  };
  return q;
}

TpchQuery BuildQ3() {
  TpchQuery q;
  q.name = "Q3";
  q.fragments.push_back([](const core::Catalog& catalog,
                           const std::vector<ColumnSet>&)
                            -> Result<LogicalPtr> {
    RAPID_ASSIGN_OR_RETURN(
        int64_t building,
        DictCode(catalog, "customer", "c_mktsegment", "BUILDING"));
    const int32_t date = DaysFromCivil(1995, 3, 15);
    auto c = LogicalNode::Scan(
        "customer", {"c_custkey"},
        {Predicate::CmpConst("c_mktsegment", CmpOp::kEq, building)});
    auto o = LogicalNode::Scan(
        "orders", {"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"},
        {Predicate::CmpConst("o_orderdate", CmpOp::kLt, date)});
    auto j1 = LogicalNode::Join(
        c, o, {"c_custkey"}, {"o_custkey"},
        {"o_orderkey", "o_orderdate", "o_shippriority"});
    auto l = LogicalNode::Scan(
        "lineitem", {"l_orderkey", "l_extendedprice", "l_discount"},
        {Predicate::CmpConst("l_shipdate", CmpOp::kGt, date)});
    auto j2 = LogicalNode::Join(
        j1, l, {"o_orderkey"}, {"l_orderkey"},
        {"l_orderkey", "o_orderdate", "o_shippriority", "l_extendedprice",
         "l_discount"});
    auto g = LogicalNode::GroupBy(
        j2,
        {{"l_orderkey", Expr::Col("l_orderkey")},
         {"o_orderdate", Expr::Col("o_orderdate")},
         {"o_shippriority", Expr::Col("o_shippriority")}},
        {{"revenue", AggFunc::kSum, Revenue(), {}}});
    return LogicalNode::TopK(g, {{"revenue", false}, {"o_orderdate", true}},
                             10);
  });
  return q;
}

TpchQuery BuildQ4() {
  TpchQuery q;
  q.name = "Q4";
  q.fragments.push_back([](const core::Catalog&,
                           const std::vector<ColumnSet>&)
                            -> Result<LogicalPtr> {
    auto l = LogicalNode::Scan(
        "lineitem", {"l_orderkey"},
        {Predicate::CmpCol("l_commitdate", CmpOp::kLt, "l_receiptdate")});
    auto o = LogicalNode::Scan(
        "orders", {"o_orderkey", "o_orderpriority"},
        {Predicate::Between("o_orderdate", DaysFromCivil(1993, 7, 1),
                            DaysFromCivil(1993, 9, 30))});
    // EXISTS: orders with at least one late lineitem (semi join; the
    // probe/preserved side is orders).
    auto semi = LogicalNode::Join(l, o, {"l_orderkey"}, {"o_orderkey"},
                                  {"o_orderpriority"}, JoinType::kSemi);
    auto g = LogicalNode::GroupBy(
        semi, {{"o_orderpriority", Expr::Col("o_orderpriority")}},
        {{"order_count", AggFunc::kCount, nullptr, {}}});
    return LogicalNode::Sort(g, {{"o_orderpriority", true}});
  });
  return q;
}

TpchQuery BuildQ5() {
  TpchQuery q;
  q.name = "Q5";
  q.fragments.push_back([](const core::Catalog& catalog,
                           const std::vector<ColumnSet>&)
                            -> Result<LogicalPtr> {
    RAPID_ASSIGN_OR_RETURN(int64_t asia,
                           DictCode(catalog, "region", "r_name", "ASIA"));
    auto r = LogicalNode::Scan(
        "region", {"r_regionkey"},
        {Predicate::CmpConst("r_name", CmpOp::kEq, asia)});
    auto n = LogicalNode::Scan("nation",
                               {"n_nationkey", "n_name", "n_regionkey"});
    auto j1 = LogicalNode::Join(r, n, {"r_regionkey"}, {"n_regionkey"},
                                {"n_nationkey", "n_name"});
    auto s = LogicalNode::Scan("supplier", {"s_suppkey", "s_nationkey"});
    auto j2 = LogicalNode::Join(j1, s, {"n_nationkey"}, {"s_nationkey"},
                                {"s_suppkey", "n_name", "n_nationkey"});
    auto c = LogicalNode::Scan("customer", {"c_custkey", "c_nationkey"});
    auto o = LogicalNode::Scan(
        "orders", {"o_orderkey", "o_custkey"},
        {Predicate::Between("o_orderdate", DaysFromCivil(1994, 1, 1),
                            DaysFromCivil(1994, 12, 31))});
    auto j3 = LogicalNode::Join(c, o, {"c_custkey"}, {"o_custkey"},
                                {"o_orderkey", "c_nationkey"});
    auto l = LogicalNode::Scan(
        "lineitem", {"l_orderkey", "l_suppkey", "l_extendedprice",
                     "l_discount"});
    auto j4 = LogicalNode::Join(
        j3, l, {"o_orderkey"}, {"l_orderkey"},
        {"l_suppkey", "l_extendedprice", "l_discount", "c_nationkey"});
    auto j5 = LogicalNode::Join(
        j2, j4, {"s_suppkey"}, {"l_suppkey"},
        {"n_name", "n_nationkey", "c_nationkey", "l_extendedprice",
         "l_discount"});
    auto f = LogicalNode::Filter(
        j5, {Predicate::CmpCol("c_nationkey", CmpOp::kEq, "n_nationkey")},
        {"n_name", "l_extendedprice", "l_discount"});
    auto g = LogicalNode::GroupBy(f, {{"n_name", Expr::Col("n_name")}},
                                  {{"revenue", AggFunc::kSum, Revenue(), {}}});
    return LogicalNode::Sort(g, {{"revenue", false}});
  });
  return q;
}

TpchQuery BuildQ6() {
  TpchQuery q;
  q.name = "Q6";
  q.fragments.push_back([](const core::Catalog& catalog,
                           const std::vector<ColumnSet>&)
                            -> Result<LogicalPtr> {
    RAPID_ASSIGN_OR_RETURN(int64_t lo,
                           Dsb(catalog, "lineitem", "l_discount", 0.05));
    RAPID_ASSIGN_OR_RETURN(int64_t hi,
                           Dsb(catalog, "lineitem", "l_discount", 0.07));
    RAPID_ASSIGN_OR_RETURN(int64_t qty,
                           Dsb(catalog, "lineitem", "l_quantity", 24.0));
    auto scan = LogicalNode::Scan(
        "lineitem", {"l_extendedprice", "l_discount"},
        {Predicate::Between("l_shipdate", DaysFromCivil(1994, 1, 1),
                            DaysFromCivil(1994, 12, 31)),
         Predicate::Between("l_discount", lo, hi),
         Predicate::CmpConst("l_quantity", CmpOp::kLt, qty)});
    auto revenue = Expr::Mul(Expr::Col("l_extendedprice"),
                             Expr::Col("l_discount"));
    return LogicalNode::GroupBy(scan, {},
                                {{"revenue", AggFunc::kSum, revenue, {}}});
  });
  return q;
}

TpchQuery BuildQ10() {
  TpchQuery q;
  q.name = "Q10";
  q.fragments.push_back([](const core::Catalog& catalog,
                           const std::vector<ColumnSet>&)
                            -> Result<LogicalPtr> {
    RAPID_ASSIGN_OR_RETURN(int64_t rflag,
                           DictCode(catalog, "lineitem", "l_returnflag", "R"));
    auto o = LogicalNode::Scan(
        "orders", {"o_orderkey", "o_custkey"},
        {Predicate::Between("o_orderdate", DaysFromCivil(1993, 10, 1),
                            DaysFromCivil(1993, 12, 31))});
    auto c = LogicalNode::Scan(
        "customer", {"c_custkey", "c_name", "c_acctbal", "c_nationkey"});
    auto j1 = LogicalNode::Join(
        o, c, {"o_custkey"}, {"c_custkey"},
        {"o_orderkey", "c_custkey", "c_name", "c_acctbal", "c_nationkey"});
    auto l = LogicalNode::Scan(
        "lineitem", {"l_orderkey", "l_extendedprice", "l_discount"},
        {Predicate::CmpConst("l_returnflag", CmpOp::kEq, rflag)});
    auto j2 = LogicalNode::Join(
        j1, l, {"o_orderkey"}, {"l_orderkey"},
        {"c_custkey", "c_name", "c_acctbal", "c_nationkey", "l_extendedprice",
         "l_discount"});
    auto n = LogicalNode::Scan("nation", {"n_nationkey", "n_name"});
    auto j3 = LogicalNode::Join(
        n, j2, {"n_nationkey"}, {"c_nationkey"},
        {"c_custkey", "c_name", "c_acctbal", "n_name", "l_extendedprice",
         "l_discount"});
    auto g = LogicalNode::GroupBy(
        j3,
        {{"c_custkey", Expr::Col("c_custkey")},
         {"c_name", Expr::Col("c_name")},
         {"c_acctbal", Expr::Col("c_acctbal")},
         {"n_name", Expr::Col("n_name")}},
        {{"revenue", AggFunc::kSum, Revenue(), {}}});
    return LogicalNode::TopK(g, {{"revenue", false}, {"c_custkey", true}},
                             20);
  });
  return q;
}

LogicalPtr Q11JoinTree(int64_t germany) {
  auto n = LogicalNode::Scan(
      "nation", {"n_nationkey"},
      {Predicate::CmpConst("n_name", CmpOp::kEq, germany)});
  auto s = LogicalNode::Scan("supplier", {"s_suppkey", "s_nationkey"});
  auto j1 = LogicalNode::Join(n, s, {"n_nationkey"}, {"s_nationkey"},
                              {"s_suppkey"});
  auto ps = LogicalNode::Scan(
      "partsupp", {"ps_partkey", "ps_suppkey", "ps_availqty",
                   "ps_supplycost"});
  return LogicalNode::Join(j1, ps, {"s_suppkey"}, {"ps_suppkey"},
                           {"ps_partkey", "ps_supplycost", "ps_availqty"});
}

TpchQuery BuildQ11() {
  TpchQuery q;
  q.name = "Q11";
  auto value_expr = [] {
    return Expr::Mul(Expr::Col("ps_supplycost"), Expr::Col("ps_availqty"));
  };
  // Fragment 0: the scalar subquery (total value across Germany).
  q.fragments.push_back([value_expr](const core::Catalog& catalog,
                                     const std::vector<ColumnSet>&)
                            -> Result<LogicalPtr> {
    RAPID_ASSIGN_OR_RETURN(int64_t germany,
                           DictCode(catalog, "nation", "n_name", "GERMANY"));
    return LogicalNode::GroupBy(Q11JoinTree(germany), {},
                                {{"total", AggFunc::kSum, value_expr(), {}}});
  });
  // Fragment 1: per-part value with HAVING value > total * 0.0001
  // (threshold glue performed by the host, Section 3.2).
  q.fragments.push_back([value_expr](const core::Catalog& catalog,
                                     const std::vector<ColumnSet>& prev)
                            -> Result<LogicalPtr> {
    RAPID_ASSIGN_OR_RETURN(int64_t germany,
                           DictCode(catalog, "nation", "n_name", "GERMANY"));
    int64_t threshold = 0;
    if (!prev.empty() && prev[0].num_rows() > 0) {
      threshold = prev[0].Value(0, 0) / 10000;  // * 0.0001, same scale
    }
    auto g = LogicalNode::GroupBy(
        Q11JoinTree(germany), {{"ps_partkey", Expr::Col("ps_partkey")}},
        {{"value", AggFunc::kSum, value_expr(), {}}});
    auto f = LogicalNode::Filter(
        g, {Predicate::CmpConst("value", CmpOp::kGt, threshold)});
    return LogicalNode::Sort(f, {{"value", false}, {"ps_partkey", true}});
  });
  return q;
}

TpchQuery BuildQ12() {
  TpchQuery q;
  q.name = "Q12";
  q.fragments.push_back([](const core::Catalog& catalog,
                           const std::vector<ColumnSet>&)
                            -> Result<LogicalPtr> {
    RAPID_ASSIGN_OR_RETURN(
        BitVector modes,
        DictSet(catalog, "lineitem", "l_shipmode", {"MAIL", "SHIP"}));
    RAPID_ASSIGN_OR_RETURN(
        BitVector high,
        DictSet(catalog, "orders", "o_orderpriority",
                {"1-URGENT", "2-HIGH"}));
    BitVector low = high;
    low.Not();
    auto l = LogicalNode::Scan(
        "lineitem", {"l_orderkey", "l_shipmode"},
        {Predicate::InSet("l_shipmode", modes),
         Predicate::CmpCol("l_commitdate", CmpOp::kLt, "l_receiptdate"),
         Predicate::CmpCol("l_shipdate", CmpOp::kLt, "l_commitdate"),
         Predicate::Between("l_receiptdate", DaysFromCivil(1994, 1, 1),
                            DaysFromCivil(1994, 12, 31))});
    auto o = LogicalNode::Scan("orders", {"o_orderkey", "o_orderpriority"});
    auto j = LogicalNode::Join(l, o, {"l_orderkey"}, {"o_orderkey"},
                               {"l_shipmode", "o_orderpriority"});
    std::vector<AggSpec> aggs;
    aggs.push_back({"high_line_count", AggFunc::kCount, nullptr,
                    std::make_shared<Predicate>(
                        Predicate::InSet("o_orderpriority", high))});
    aggs.push_back({"low_line_count", AggFunc::kCount, nullptr,
                    std::make_shared<Predicate>(
                        Predicate::InSet("o_orderpriority", low))});
    auto g = LogicalNode::GroupBy(
        j, {{"l_shipmode", Expr::Col("l_shipmode")}}, std::move(aggs));
    return LogicalNode::Sort(g, {{"l_shipmode", true}});
  });
  return q;
}

TpchQuery BuildQ14() {
  TpchQuery q;
  q.name = "Q14";
  q.fragments.push_back([](const core::Catalog& catalog,
                           const std::vector<ColumnSet>&)
                            -> Result<LogicalPtr> {
    RAPID_ASSIGN_OR_RETURN(BitVector promo,
                           DictPrefix(catalog, "part", "p_type", "PROMO"));
    auto l = LogicalNode::Scan(
        "lineitem", {"l_partkey", "l_extendedprice", "l_discount"},
        {Predicate::Between("l_shipdate", DaysFromCivil(1995, 9, 1),
                            DaysFromCivil(1995, 9, 30))});
    auto p = LogicalNode::Scan("part", {"p_partkey", "p_type"});
    auto j = LogicalNode::Join(
        l, p, {"l_partkey"}, {"p_partkey"},
        {"p_type", "l_extendedprice", "l_discount"});
    std::vector<AggSpec> aggs;
    aggs.push_back({"promo", AggFunc::kSum, Revenue(),
                    std::make_shared<Predicate>(
                        Predicate::InSet("p_type", promo))});
    aggs.push_back({"total", AggFunc::kSum, Revenue(), {}});
    return LogicalNode::GroupBy(j, {}, std::move(aggs));
  });
  q.post = [](const std::vector<ColumnSet>& results) {
    ColumnSet out = results.back();
    if (out.num_rows() == 0) return out;
    AppendRatioColumn(&out, "promo_revenue_frac", 0, 1, 6);
    return out;
  };
  return q;
}

TpchQuery BuildQ18() {
  TpchQuery q;
  q.name = "Q18";
  q.fragments.push_back([](const core::Catalog& catalog,
                           const std::vector<ColumnSet>&)
                            -> Result<LogicalPtr> {
    RAPID_ASSIGN_OR_RETURN(int64_t limit,
                           Dsb(catalog, "lineitem", "l_quantity", 300.0));
    auto l1 = LogicalNode::Scan("lineitem", {"l_orderkey", "l_quantity"});
    auto g1 = LogicalNode::GroupBy(
        l1, {{"l_orderkey", Expr::Col("l_orderkey")}},
        {{"big_qty", AggFunc::kSum, Expr::Col("l_quantity"), {}}});
    auto f1 = LogicalNode::Filter(
        g1, {Predicate::CmpConst("big_qty", CmpOp::kGt, limit)},
        {"l_orderkey"});
    auto o = LogicalNode::Scan(
        "orders", {"o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"});
    auto sj = LogicalNode::Join(
        f1, o, {"l_orderkey"}, {"o_orderkey"},
        {"o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"},
        JoinType::kSemi);
    auto c = LogicalNode::Scan("customer", {"c_custkey", "c_name"});
    auto j2 = LogicalNode::Join(
        c, sj, {"c_custkey"}, {"o_custkey"},
        {"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"});
    auto l2 = LogicalNode::Scan("lineitem", {"l_orderkey", "l_quantity"});
    auto j3 = LogicalNode::Join(
        j2, l2, {"o_orderkey"}, {"l_orderkey"},
        {"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice",
         "l_quantity"});
    auto g = LogicalNode::GroupBy(
        j3,
        {{"c_name", Expr::Col("c_name")},
         {"c_custkey", Expr::Col("c_custkey")},
         {"o_orderkey", Expr::Col("o_orderkey")},
         {"o_orderdate", Expr::Col("o_orderdate")},
         {"o_totalprice", Expr::Col("o_totalprice")}},
        {{"sum_qty", AggFunc::kSum, Expr::Col("l_quantity"), {}}});
    return LogicalNode::TopK(
        g, {{"o_totalprice", false}, {"o_orderdate", true}}, 100);
  });
  return q;
}

Result<LogicalPtr> Q19Branch(const core::Catalog& catalog,
                             const std::string& brand,
                             const std::vector<std::string>& containers,
                             double qty_lo, double qty_hi, int64_t size_hi) {
  RAPID_ASSIGN_OR_RETURN(int64_t brand_code,
                         DictCode(catalog, "part", "p_brand", brand));
  RAPID_ASSIGN_OR_RETURN(BitVector container_set,
                         DictSet(catalog, "part", "p_container", containers));
  RAPID_ASSIGN_OR_RETURN(BitVector air,
                         DictSet(catalog, "lineitem", "l_shipmode",
                                 {"AIR", "REG AIR"}));
  RAPID_ASSIGN_OR_RETURN(
      int64_t instruct,
      DictCode(catalog, "lineitem", "l_shipinstruct", "DELIVER IN PERSON"));
  RAPID_ASSIGN_OR_RETURN(int64_t lo,
                         Dsb(catalog, "lineitem", "l_quantity", qty_lo));
  RAPID_ASSIGN_OR_RETURN(int64_t hi,
                         Dsb(catalog, "lineitem", "l_quantity", qty_hi));

  auto p = LogicalNode::Scan(
      "part", {"p_partkey"},
      {Predicate::CmpConst("p_brand", CmpOp::kEq, brand_code),
       Predicate::InSet("p_container", container_set),
       Predicate::Between("p_size", 1, size_hi)});
  auto l = LogicalNode::Scan(
      "lineitem",
      {"l_partkey", "l_orderkey", "l_linenumber", "l_extendedprice",
       "l_discount"},
      {Predicate::Between("l_quantity", lo, hi),
       Predicate::InSet("l_shipmode", air),
       Predicate::CmpConst("l_shipinstruct", CmpOp::kEq, instruct)});
  auto j = LogicalNode::Join(
      p, l, {"p_partkey"}, {"l_partkey"},
      {"l_orderkey", "l_linenumber", "l_extendedprice", "l_discount"});
  // Unique line ids keep UNION's distinct semantics from merging
  // distinct lineitems that happen to share a revenue value.
  return LogicalNode::Project(
      j, {{"line_order", Expr::Col("l_orderkey")},
          {"line_number", Expr::Col("l_linenumber")},
          {"revenue", Revenue()}});
}

TpchQuery BuildQ19() {
  TpchQuery q;
  q.name = "Q19";
  q.fragments.push_back([](const core::Catalog& catalog,
                           const std::vector<ColumnSet>&)
                            -> Result<LogicalPtr> {
    RAPID_ASSIGN_OR_RETURN(
        LogicalPtr b1,
        Q19Branch(catalog, "Brand#12",
                  {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11, 5));
    RAPID_ASSIGN_OR_RETURN(
        LogicalPtr b2,
        Q19Branch(catalog, "Brand#23",
                  {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 20, 10));
    RAPID_ASSIGN_OR_RETURN(
        LogicalPtr b3,
        Q19Branch(catalog, "Brand#34",
                  {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30, 15));
    auto u = LogicalNode::SetOp(
        core::SetOpKind::kUnion,
        LogicalNode::SetOp(core::SetOpKind::kUnion, b1, b2), b3);
    return LogicalNode::GroupBy(
        u, {}, {{"revenue", AggFunc::kSum, Expr::Col("revenue"), {}}});
  });
  return q;
}

}  // namespace

std::vector<TpchQuery> BuildQuerySet() {
  std::vector<TpchQuery> out;
  out.push_back(BuildQ1());
  out.push_back(BuildQ3());
  out.push_back(BuildQ4());
  out.push_back(BuildQ5());
  out.push_back(BuildQ6());
  out.push_back(BuildQ10());
  out.push_back(BuildQ11());
  out.push_back(BuildQ12());
  out.push_back(BuildQ14());
  out.push_back(BuildQ18());
  out.push_back(BuildQ19());
  return out;
}

Result<TpchQuery> BuildQuery(const std::string& name) {
  for (TpchQuery& q : BuildQuerySet()) {
    if (q.name == name) return std::move(q);
  }
  return Status::NotFound("no TPC-H query named '" + name + "'");
}

Result<QueryRun> RunOnRapid(core::RapidEngine& engine, const TpchQuery& query,
                            const core::ExecOptions& options) {
  QueryRun run;
  std::vector<core::ColumnSet> results;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& fragment : query.fragments) {
    RAPID_ASSIGN_OR_RETURN(core::LogicalPtr plan,
                           fragment(engine.catalog(), results));
    RAPID_ASSIGN_OR_RETURN(core::QueryResult result,
                           engine.Execute(plan, options));
    run.modeled_dpu_seconds += result.stats.modeled_seconds;
    run.workload.scanned_rows += result.stats.workload.scanned_rows;
    run.workload.scanned_bytes += result.stats.workload.scanned_bytes;
    run.workload.partitioned_rows += result.stats.workload.partitioned_rows;
    run.workload.join_build_rows += result.stats.workload.join_build_rows;
    run.workload.join_probe_rows += result.stats.workload.join_probe_rows;
    run.workload.agg_rows += result.stats.workload.agg_rows;
    run.workload.sorted_rows += result.stats.workload.sorted_rows;
    results.push_back(std::move(result.rows));
  }
  run.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  run.result = query.post ? query.post(results) : std::move(results.back());
  return run;
}

Result<QueryRun> RunOnHost(hostdb::HostDatabase& host,
                           const TpchQuery& query) {
  QueryRun run;
  std::vector<core::ColumnSet> results;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& fragment : query.fragments) {
    RAPID_ASSIGN_OR_RETURN(core::LogicalPtr plan,
                           fragment(host.catalog(), results));
    RAPID_ASSIGN_OR_RETURN(core::ColumnSet result, host.ExecuteLocal(plan));
    results.push_back(std::move(result));
  }
  run.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  run.result = query.post ? query.post(results) : std::move(results.back());
  return run;
}

Status LoadTpch(double scale_factor, hostdb::HostDatabase* host,
                core::RapidEngine* engine, uint64_t seed,
                size_t rows_per_chunk) {
  TpchGenerator gen(scale_factor, seed);
  for (TableData& table : gen.AllTables()) {
    storage::LoadOptions opts;
    opts.rows_per_chunk = rows_per_chunk;
    RAPID_RETURN_NOT_OK(
        host->CreateTable(table.name, table.specs, table.data, opts));
    if (engine != nullptr) {
      RAPID_RETURN_NOT_OK(host->LoadToRapid(table.name, engine));
    }
  }
  return Status::OK();
}

}  // namespace rapid::tpch
