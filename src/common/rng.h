// Deterministic random number generation for workload synthesis.
//
// All tests and benchmarks seed explicitly so runs are reproducible.
// Zipf sampling drives the skew-resilience experiments (Section 6.4).

#ifndef RAPID_COMMON_RNG_H_
#define RAPID_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace rapid {

// xoshiro256** — small, fast, good-quality PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, bound) without modulo bias for small bounds.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

 private:
  uint64_t state_[4];
};

// Zipf-distributed sampler over [0, n). Precomputes the CDF once; each
// Sample is a binary search. theta=0 degenerates to uniform; theta
// around 1.0-1.5 produces the heavy-hitter workloads of Section 6.4.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Sample();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace rapid

#endif  // RAPID_COMMON_RNG_H_
