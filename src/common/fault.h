// Deterministic fault injection for the offload pipeline.
//
// The host integration (Section 3) is only safe if every error path of
// the simulated DPU — DMS descriptor failures, DMEM exhaustion, hash
// table overflow, ATE delivery loss — can be exercised on demand. The
// FaultInjector is a process-wide registry of *named fault sites*:
// production code polls a site on its hot error path, tests arm sites
// with a seeded RNG and probability/count triggers, and everything in
// between (retry, repartition, demotion, host fallback) becomes
// testable without touching the happy path.
//
// Cost discipline: when nothing is armed, a fault point is one relaxed
// atomic load and a predicted-not-taken branch (see
// bench_fault_overhead). The mutex-protected slow path only runs while
// a test has armed at least one site.

#ifndef RAPID_COMMON_FAULT_H_
#define RAPID_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "common/status.h"

namespace rapid {

class FaultInjector {
 public:
  // Trigger spec for one armed site.
  struct SiteSpec {
    // Status code injected failures carry (the site's recovery policy
    // keys off this: e.g. kCapacityExceeded at "join.build" triggers
    // repartitioning, anything at "dms.transfer" is transient).
    StatusCode code = StatusCode::kInternal;
    // Per-hit firing probability in [0, 1]; 1.0 fires on every hit.
    double probability = 1.0;
    // Hits to let through before the site may fire (ordinal targeting:
    // "fail the 3rd descriptor").
    uint64_t skip_first = 0;
    // Total failures to inject; < 0 means unlimited. Lets tests model
    // transient faults that heal ("fail twice, then succeed").
    int64_t max_failures = -1;
    // Message of the injected Status ("" derives one from the site).
    std::string message;
  };

  static FaultInjector& Instance();

  // True while any site is armed. The single hot-path check.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Arms `site` (enables the injector if this is the first armed
  // site). Re-arming replaces the spec and resets the site counters.
  void Arm(const std::string& site, SiteSpec spec);
  void Disarm(const std::string& site);

  // Disarms everything, clears all counters, reseeds to `seed`.
  void Reset(uint64_t seed = 0x5eed5eedULL);

  // Slow path of RAPID_FAULT_POINT: records the hit and decides (via
  // the seeded RNG and the spec's triggers) whether this hit fails.
  // Returns OK for unarmed sites. Thread-safe; trigger decisions are a
  // deterministic function of (seed, per-site hit ordinal).
  Status Poll(const char* site);

  // Like Poll but also cheap-checks enabled(): usable directly from
  // code that wants a Status without the early-return macro (retry
  // loops).
  Status PollIfEnabled(const char* site) {
    if (!enabled()) return Status::OK();
    return Poll(site);
  }

  // Observability for tests: total hits / injected failures per site
  // (counted even after Disarm, until Reset).
  uint64_t hits(const std::string& site) const;
  uint64_t failures(const std::string& site) const;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  FaultInjector() : rng_(0x5eed5eedULL) {}

  struct SiteState {
    SiteSpec spec;
    bool armed = false;
    uint64_t hits = 0;
    uint64_t failures = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, SiteState> sites_;
  Rng rng_;
  size_t armed_count_ = 0;

  static std::atomic<bool> enabled_;
};

// RAII arming for tests: reseeds on entry, disarms everything on exit
// so fault state can never leak across test cases.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(uint64_t seed) {
    FaultInjector::Instance().Reset(seed);
  }
  ~ScopedFaultInjection() { FaultInjector::Instance().Reset(); }

  ScopedFaultInjection& Arm(const std::string& site,
                            FaultInjector::SiteSpec spec) {
    FaultInjector::Instance().Arm(site, std::move(spec));
    return *this;
  }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

// Canonical site names, kept together so tests and DESIGN.md cannot
// drift from the code.
namespace faults {
inline constexpr char kDmsTransfer[] = "dms.transfer";      // tile descriptor
inline constexpr char kDmsPartition[] = "dms.partition";    // partition engine
inline constexpr char kDmemAlloc[] = "dmem.alloc";          // scratchpad alloc
inline constexpr char kAteSend[] = "ate.send";              // message delivery
inline constexpr char kJoinBuild[] = "join.build";          // hash-table build
inline constexpr char kPoolAcquire[] = "pool.acquire";      // tile-pool growth
}  // namespace faults

}  // namespace rapid

// Fault point with early return: zero-cost when the injector is
// disabled. Works in any function returning Status or Result<T>.
#define RAPID_FAULT_POINT(site)                                         \
  do {                                                                  \
    if (__builtin_expect(::rapid::FaultInjector::enabled(), 0)) {       \
      ::rapid::Status _fault = ::rapid::FaultInjector::Instance().Poll(site); \
      if (!_fault.ok()) return _fault;                                  \
    }                                                                   \
  } while (0)

#endif  // RAPID_COMMON_FAULT_H_
