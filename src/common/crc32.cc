#include "common/crc32.h"

namespace rapid {

namespace {

// Table-driven CRC32C. Table is generated at first use; generation is
// cheap (256 iterations) and the result is immutable thereafter.
struct Crc32Table {
  uint32_t entries[256];

  Crc32Table() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // CRC32C reflected polynomial
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      entries[i] = crc;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  const auto& table = Table();
  uint32_t crc = seed;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ bytes[i]) & 0xFF];
  }
  return crc;
}

}  // namespace rapid
