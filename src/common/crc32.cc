#include "common/crc32.h"

#include <cstring>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define RAPID_CRC32_X86 1
#if defined(__GNUC__) || defined(__clang__)
#include <cpuid.h>
#endif
#endif

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define RAPID_CRC32_ARM 1
#include <arm_acle.h>
#endif

namespace rapid {

namespace {

// Table-driven CRC32C. Table is generated at first use; generation is
// cheap (256 iterations) and the result is immutable thereafter.
struct Crc32Table {
  uint32_t entries[256];

  Crc32Table() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // CRC32C reflected polynomial
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      entries[i] = crc;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table table;
  return table;
}

#if defined(RAPID_CRC32_X86)

// The SSE4.2 crc32 instruction implements CRC32C with the same
// reflected polynomial and no final inversion — bit-identical to the
// table walk. Compiled with a function-level target attribute so the
// translation unit itself needs no -msse4.2 (the software path must
// stay runnable on any x86).
__attribute__((target("sse4.2"))) uint32_t Crc32Sse42(const void* data,
                                                      size_t len,
                                                      uint32_t seed) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t crc = seed;
  while (len >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, bytes, 8);
    crc = __builtin_ia32_crc32di(crc, chunk);
    bytes += 8;
    len -= 8;
  }
  auto crc32 = static_cast<uint32_t>(crc);
  while (len > 0) {
    crc32 = __builtin_ia32_crc32qi(crc32, *bytes);
    ++bytes;
    --len;
  }
  return crc32;
}

bool CpuHasSse42() {
#if defined(__GNUC__) || defined(__clang__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & bit_SSE4_2) != 0;
#else
  return false;
#endif
}

#endif  // RAPID_CRC32_X86

#if defined(RAPID_CRC32_ARM)

uint32_t Crc32Armv8(const void* data, size_t len, uint32_t seed) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = seed;
  while (len >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, bytes, 8);
    crc = __crc32cd(crc, chunk);
    bytes += 8;
    len -= 8;
  }
  while (len > 0) {
    crc = __crc32cb(crc, *bytes);
    ++bytes;
    --len;
  }
  return crc;
}

#endif  // RAPID_CRC32_ARM

using Crc32Fn = uint32_t (*)(const void*, size_t, uint32_t);

Crc32Fn ResolveCrc32() {
#if defined(RAPID_CRC32_X86)
  if (CpuHasSse42()) return &Crc32Sse42;
#endif
#if defined(RAPID_CRC32_ARM)
  return &Crc32Armv8;
#endif
  return &Crc32Software;
}

Crc32Fn DispatchedCrc32() {
  static const Crc32Fn fn = ResolveCrc32();
  return fn;
}

}  // namespace

uint32_t Crc32Software(const void* data, size_t len, uint32_t seed) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  const auto& table = Table();
  uint32_t crc = seed;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ bytes[i]) & 0xFF];
  }
  return crc;
}

bool Crc32HardwareAvailable() {
  return DispatchedCrc32() != &Crc32Software;
}

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  return DispatchedCrc32()(data, len, seed);
}

}  // namespace rapid
