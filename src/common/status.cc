#include "common/status.h"

namespace rapid {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAdmissionDenied:
      return "AdmissionDenied";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kRetryExhausted:
      return "RetryExhausted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace rapid
