// Host SIMD capability detection and dispatch-level selection.
//
// The dpCore's database-specific vector instructions (BVLD, FILT,
// CRC32 — Section 5.4) are substituted on commodity CPUs by SIMD
// kernels in src/primitives/. This module decides, once per process,
// which instruction-set tier those kernels dispatch to:
//
//   * kScalar — portable reference loops (always available),
//   * kSse42  — SSE4.2: hardware CRC32C plus 128-bit compare kernels,
//   * kAvx2   — AVX2: 256-bit predicate, aggregation and projection
//               kernels.
//
// Selection follows the CRC32 dispatch pattern (common/crc32.cc): the
// CPU's capabilities are probed once, the RAPID_SIMD environment
// variable ("off" / "sse42" / "avx2" / "auto") can pin or cap the
// tier for sanitizer runs and debugging, and the resolved level is
// logged once at startup. Tests and benchmarks may override the level
// in-process via ForceSimdLevel; every kernel tier is bit-identical,
// so flipping levels never changes results, only throughput.

#ifndef RAPID_COMMON_SIMD_H_
#define RAPID_COMMON_SIMD_H_

namespace rapid {

enum class SimdLevel : int { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

// Highest tier this CPU can execute (probed once).
SimdLevel SimdLevelSupported();

// Tier the primitive dispatch tables use right now: a ForceSimdLevel
// override if one is active, otherwise the startup resolution of
// RAPID_SIMD clamped to SimdLevelSupported() (logged once).
SimdLevel SimdLevelActive();

// Overrides the active tier (clamped to what the CPU supports) and
// returns the previously active tier so callers can restore it.
// Intended for the scalar-vs-SIMD equivalence suite and benchmarks.
SimdLevel ForceSimdLevel(SimdLevel level);

// "scalar", "sse42" or "avx2".
const char* SimdLevelName(SimdLevel level);

}  // namespace rapid

#endif  // RAPID_COMMON_SIMD_H_
