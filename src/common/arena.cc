#include "common/arena.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/fault.h"
#include "common/logging.h"

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace rapid {

namespace {

// Large chunks only: madvise below the huge-page size is a no-op at
// best.
constexpr size_t kHugePageBytes = size_t{2} << 20;

size_t RoundUp(size_t value, size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

bool Arena::HugePagesEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("RAPID_HUGEPAGES");
    if (v == nullptr) return false;
    const std::string_view s(v);
    return s == "on" || s == "1" || s == "true";
  }();
  return enabled;
}

Arena::Arena(size_t chunk_bytes)
    : chunk_bytes_(RoundUp(chunk_bytes, kChunkAlignment)) {}

Arena::~Arena() {
  for (Chunk& chunk : chunks_) std::free(chunk.data);
}

Arena::Chunk& Arena::AddChunk(size_t min_bytes) {
  const size_t capacity =
      RoundUp(min_bytes > chunk_bytes_ ? min_bytes : chunk_bytes_,
              kChunkAlignment);
  Chunk chunk;
  chunk.data =
      static_cast<uint8_t*>(std::aligned_alloc(kChunkAlignment, capacity));
  RAPID_CHECK(chunk.data != nullptr);
  chunk.capacity = capacity;
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  if (HugePagesEnabled() && capacity >= kHugePageBytes) {
    // Best-effort: transparent huge pages shrink the dTLB footprint of
    // scatter-heavy tiles; failure just leaves 4 KiB pages.
    (void)madvise(chunk.data, capacity, MADV_HUGEPAGE);
  }
#endif
  chunks_.push_back(chunk);
  active_ = chunks_.size() - 1;
  return chunks_.back();
}

void* Arena::Allocate(size_t bytes, size_t align) {
  RAPID_DCHECK(align > 0 && (align & (align - 1)) == 0);
  RAPID_DCHECK(align <= kChunkAlignment);
  ++alloc_calls_;
  if (bytes == 0) bytes = 1;

  // Advance through existing chunks (rewound by Reset) before mapping
  // a new one; a warm arena allocates nothing.
  for (; active_ < chunks_.size(); ++active_) {
    Chunk& chunk = chunks_[active_];
    const size_t offset = RoundUp(chunk.used, align);
    if (offset + bytes <= chunk.capacity) {
      chunk.used = offset + bytes;
      uint64_t used = 0;
      for (const Chunk& c : chunks_) used += c.used;
      if (used > high_water_) high_water_ = used;
      return chunk.data + offset;
    }
  }

  Chunk& chunk = AddChunk(bytes);
  chunk.used = bytes;  // chunk data is kChunkAlignment-aligned already
  uint64_t used = 0;
  for (const Chunk& c : chunks_) used += c.used;
  if (used > high_water_) high_water_ = used;
  return chunk.data;
}

void Arena::Reset() {
  for (Chunk& chunk : chunks_) chunk.used = 0;
  active_ = 0;
}

ArenaStats Arena::stats() const {
  ArenaStats s;
  for (const Chunk& chunk : chunks_) {
    s.bytes_reserved += chunk.capacity;
    s.bytes_used += chunk.used;
  }
  s.high_water = high_water_;
  s.chunk_count = chunks_.size();
  s.alloc_calls = alloc_calls_;
  return s;
}

// ---- TileBufferPool --------------------------------------------------------

namespace {
std::atomic<bool> g_pool_bypass{[] {
  const char* v = std::getenv("RAPID_TILE_POOL");
  return v != nullptr && std::string_view(v) == "off";
}()};
}  // namespace

bool TileBufferPool::ForceBypass(bool bypass) {
  return g_pool_bypass.exchange(bypass, std::memory_order_relaxed);
}

bool TileBufferPool::BypassActive() {
  return g_pool_bypass.load(std::memory_order_relaxed);
}

int TileBufferPool::ClassOf(size_t bytes) {
  size_t cls_bytes = kMinClassBytes;
  int cls = 0;
  while (cls_bytes < bytes) {
    cls_bytes <<= 1;
    ++cls;
  }
  RAPID_CHECK(cls < kNumClasses);
  return cls;
}

TileBufferPool::Handle TileBufferPool::Acquire(size_t bytes) {
  if (bytes == 0) bytes = 1;
  const int cls = ClassOf(bytes);
  const size_t cls_bytes = kMinClassBytes << cls;
  ++stats_.acquires;
  stats_.bytes_acquired += cls_bytes;
  if (BypassActive()) {
    // Pre-pool behavior: one heap allocation per acquire.
    ++stats_.misses;
    stats_.bytes_allocated += cls_bytes;
    auto* data = static_cast<uint8_t*>(
        std::aligned_alloc(Arena::kDefaultAlignment, cls_bytes));
    RAPID_CHECK(data != nullptr);
    return Handle(this, data, cls_bytes, -2);
  }
  std::vector<uint8_t*>& list = free_lists_[cls];
  if (!list.empty()) {
    uint8_t* data = list.back();
    list.pop_back();
    ++stats_.reuses;
    return Handle(this, data, cls_bytes, cls);
  }
  ++stats_.misses;
  stats_.bytes_allocated += cls_bytes;
  auto* data = static_cast<uint8_t*>(arena_->Allocate(cls_bytes));
  return Handle(this, data, cls_bytes, cls);
}

Status TileBufferPool::TryAcquire(size_t bytes, Handle* out) {
  // Only requests that leave the free lists can fail on the real
  // machine (chunk growth maps new memory; bypass mode hits the heap);
  // recycled buffers are already resident.
  const int cls = ClassOf(bytes == 0 ? 1 : bytes);
  if (BypassActive() || free_lists_[cls].empty()) {
    RAPID_FAULT_POINT(faults::kPoolAcquire);
  }
  *out = Acquire(bytes);
  return Status::OK();
}

void TileBufferPool::Release(uint8_t* data, size_t bytes, int cls) {
  (void)bytes;
  ++stats_.releases;
  if (cls == -2) {
    std::free(data);
    return;
  }
  free_lists_[cls].push_back(data);
}

void TileBufferPool::Handle::reset() {
  if (data_ != nullptr) pool_->Release(data_, bytes_, cls_);
  pool_ = nullptr;
  data_ = nullptr;
  bytes_ = 0;
  cls_ = -1;
}

}  // namespace rapid
