// Status and Result<T>: error propagation without exceptions.
//
// RAPID runs on bare metal in the paper; here we follow the same
// discipline in portable C++: fallible functions return Status (or
// Result<T>), and callers propagate with RAPID_RETURN_NOT_OK /
// RAPID_ASSIGN_OR_RETURN.

#ifndef RAPID_COMMON_STATUS_H_
#define RAPID_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace rapid {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,       // DMEM or DRAM budget exceeded
  kNotFound,
  kAlreadyExists,
  kNotSupported,
  kInternal,
  kAdmissionDenied,   // SCN admissibility check failed (Section 3.3)
  kCapacityExceeded,  // e.g. partition fan-out or hash table overflow
  kCancelled,         // query cancelled via CancelToken
  kDeadlineExceeded,  // query deadline elapsed mid-execution
  kRetryExhausted,    // transient failure persisted past the retry budget
};

// A success-or-error value. Cheap to copy in the success case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status AdmissionDenied(std::string msg) {
    return Status(StatusCode::kAdmissionDenied, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status RetryExhausted(std::string msg) {
    return Status(StatusCode::kRetryExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsAdmissionDenied() const {
    return code_ == StatusCode::kAdmissionDenied;
  }
  bool IsCapacityExceeded() const {
    return code_ == StatusCode::kCapacityExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsRetryExhausted() const {
    return code_ == StatusCode::kRetryExhausted;
  }
  // Cancellation and deadline expiry describe the *query*, not the
  // engine: re-running the fragment elsewhere cannot help, so the host
  // must propagate these instead of falling back (Section 3.2 covers
  // only execution failures).
  bool IsCancellation() const {
    return IsCancelled() || IsDeadlineExceeded();
  }

  // "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  // Implicit construction from values and from Status keeps call sites
  // readable: `return value;` / `return Status::Internal(...)`.
  Result(T value) : value_(std::move(value)) {}           // NOLINT
  Result(Status status) : value_(std::move(status)) {     // NOLINT
    // A Result must never hold an OK status without a value.
    if (std::get<Status>(value_).ok()) {
      value_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace rapid

#define RAPID_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::rapid::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

#define RAPID_CONCAT_IMPL(a, b) a##b
#define RAPID_CONCAT(a, b) RAPID_CONCAT_IMPL(a, b)

#define RAPID_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define RAPID_ASSIGN_OR_RETURN(lhs, rexpr) \
  RAPID_ASSIGN_OR_RETURN_IMPL(RAPID_CONCAT(_res_, __LINE__), lhs, rexpr)

#endif  // RAPID_COMMON_STATUS_H_
