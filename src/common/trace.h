// Unified query tracing in modeled virtual time.
//
// The engine's accounting is cycle-accurate (dpu::CycleCounter), so a
// trace recorded in *modeled* time is deterministic and jitter-free:
// two runs of the same query produce the same span durations no matter
// how the host machine schedules the simulator's worker threads. The
// TraceCollector records spans on a set of tracks:
//
//   - one track per dpCore, clocked by that core's accumulated
//     compute+DMS cycles (monotone: cycles only increase, and a core's
//     track is only ever written by the worker thread driving it);
//   - a "steps" track carrying the engine's per-step timeline, clocked
//     by accumulated modeled query time (span durations reconcile
//     exactly with ExecutionStats::modeled_seconds);
//   - a "dms" track serializing every DMS transfer, matching the cost
//     model's rule that all transfers share one DRAM interface;
//   - ordinal "planner" and "host" tracks for decisions that happen
//     outside modeled time (plan choices, offload decisions). Their
//     clock is an event ordinal, not cycles.
//
// Gating follows the repo's env-gate idiom (common/simd.cc): the
// RAPID_TRACE environment variable (off|summary|full, default off) is
// resolved once; ForceTraceMode pins it for tests. When tracing is off
// every instrumentation site costs one relaxed atomic load and a
// predicted-not-taken branch — the same discipline as the fault
// injector (see bench_trace_overhead).
//
// Ordinal-safety rules (same contract PR 9 established for the join
// filter): recording a span never polls a fault site, never acquires a
// tile-pool buffer and never allocates DMEM — span storage lives in
// collector-owned heap vectors — so enabling tracing cannot shift
// fault-injection ordinals or DMEM layouts, and results stay
// bit-identical across off|summary|full.

#ifndef RAPID_COMMON_TRACE_H_
#define RAPID_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace rapid {

enum class TraceMode { kOff = 0, kSummary = 1, kFull = 2 };

// Active trace mode: ForceTraceMode override if set, else RAPID_TRACE
// resolved once at first use. One atomic load on the hot path.
TraceMode TraceModeActive();

// Pins the mode (tests); returns the previously active mode.
TraceMode ForceTraceMode(TraceMode mode);

const char* TraceModeName(TraceMode mode);

class TraceCollector {
 public:
  // One typed key/value annotation on a span. Keys and string values
  // must be static-lifetime strings (literals, or Intern()ed).
  struct Arg {
    enum class Kind { kInt, kDouble, kStr };
    const char* key = "";
    Kind kind = Kind::kInt;
    int64_t i = 0;
    double d = 0;
    const char* s = "";

    static Arg I(const char* key, int64_t value) {
      Arg a;
      a.key = key;
      a.kind = Kind::kInt;
      a.i = value;
      return a;
    }
    static Arg U(const char* key, uint64_t value) {
      return I(key, static_cast<int64_t>(value));
    }
    static Arg D(const char* key, double value) {
      Arg a;
      a.key = key;
      a.kind = Kind::kDouble;
      a.d = value;
      return a;
    }
    static Arg S(const char* key, const char* value) {
      Arg a;
      a.key = key;
      a.kind = Kind::kStr;
      a.s = value;
      return a;
    }
  };

  struct Event {
    const char* name = "";
    double begin = 0;  // track-local virtual time (cycles, or ordinals)
    double end = 0;
    int depth = 0;     // nesting depth at begin (well-formedness checks)
    bool instant = false;
    std::vector<Arg> args;
  };

  struct Track {
    std::string name;
    bool cycle_time = true;  // false: ordinal units (planner/host)
    std::vector<Event> events;
    // Writer-owned state (single writer per track, see header comment).
    int open_depth = 0;
    double clock = 0;
  };

  // Pseudo-track ids accepted wherever a track id is taken; dpCore
  // tracks use the core id (>= 0) directly.
  static constexpr int kTrackSteps = -1;
  static constexpr int kTrackPlanner = -2;
  static constexpr int kTrackDms = -3;
  static constexpr int kTrackHost = -4;

  static TraceCollector& Instance();

  // True while a query scope is open AND the active mode reaches
  // `level`. The single hot-path gate for every instrumentation site.
  static bool Recording(TraceMode level) {
    return static_cast<int>(TraceModeActive()) >=
               static_cast<int>(level) &&
           active_.load(std::memory_order_relaxed);
  }

  // Opens/closes a query scope. Scopes nest (HostDatabase::ExecuteQuery
  // wraps RapidEngine::Execute wraps ExecutePhysical); only the
  // outermost Begin resets the buffers and only the matching End
  // finalizes the trace — exporting Chrome trace-event JSON to
  // RAPID_TRACE_PATH (if set) and retaining it for last_trace_json().
  // Must be called from the orchestration thread.
  void BeginQuery(int num_cores, double clock_hz);
  void EndQuery();

  // Steps-track recording: a span of `cycles` modeled cycles appended
  // at the current steps cursor (durations sum to the query's modeled
  // time), or an instant pinned at the cursor.
  void AddStepSpan(const char* name, double cycles, std::vector<Arg> args);
  void AddStepInstant(const char* name, std::vector<Arg> args);

  // DMS-track recording: transfers serialize on the shared DRAM
  // interface, so each event occupies [cursor, cursor + cycles) of an
  // atomically-advanced cycle cursor. Events stage in thread-local
  // buffers (lock-free on the hot path; cores transfer concurrently)
  // and merge into the dms track, sorted by begin, at EndQuery.
  // Placement order follows thread interleaving but every duration is
  // modeled, hence deterministic.
  void RecordDms(const char* name, double cycles, std::vector<Arg> args);

  // Interns a dynamic name (step descriptions); returns a pointer that
  // stays valid for the process lifetime.
  const char* Intern(const std::string& name);

  // Structured copy for tests (call only while no parallel phase is
  // recording).
  struct Snapshot {
    std::vector<Track> tracks;
    double clock_hz = 0;
  };
  Snapshot TakeSnapshot() const;

  // Chrome trace-event JSON of the current buffers.
  std::string ExportJson() const;

  // JSON of the last completed outermost query scope ("" if tracing
  // was off). Serialization is deferred to this call — EndQuery only
  // marks the buffers final (unless RAPID_TRACE_PATH forces an eager
  // file write), so untraced consumers never pay for the export.
  const std::string& last_trace_json();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

 private:
  friend class TraceSpan;

  TraceCollector() = default;

  // Maps a track id (core id or pseudo id) to the tracks_ slot;
  // nullptr when out of range or inactive.
  Track* ResolveTrack(int track);

  int num_cores_ = 0;
  double clock_hz_ = 1;
  int nest_ = 0;  // query-scope nesting depth (orchestration thread)
  TraceMode query_mode_ = TraceMode::kOff;  // mode pinned at outer Begin
  std::vector<Track> tracks_;
  // DMS cursor (double bits, CAS-advanced) and per-thread staging
  // buffers. The deque gives staged vectors stable addresses; the
  // generation counter makes persistent worker threads re-register
  // each query. The mutex guards registration and merge only.
  std::atomic<uint64_t> dms_clock_bits_{0};
  std::atomic<uint64_t> dms_generation_{0};
  std::mutex dms_stage_mu_;
  std::deque<std::vector<Event>> dms_stages_;
  std::string last_json_;
  bool pending_export_ = false;  // buffers final but not yet serialized

  // Interned dynamic names: stable storage + lookup, mutex-guarded
  // (cold path: step descriptions, once per step).
  std::mutex intern_mu_;
  std::deque<std::string> interned_;

  static std::atomic<bool> active_;
};

// RAII query scope: BeginQuery on construction, EndQuery on
// destruction. Safe to nest (hostdb wraps engine wraps
// ExecutePhysical); only the outermost pair resets and finalizes.
class TraceQueryScope {
 public:
  TraceQueryScope(int num_cores, double clock_hz) {
    TraceCollector::Instance().BeginQuery(num_cores, clock_hz);
  }
  ~TraceQueryScope() { TraceCollector::Instance().EndQuery(); }
  TraceQueryScope(const TraceQueryScope&) = delete;
  TraceQueryScope& operator=(const TraceQueryScope&) = delete;
};

// RAII span. Inactive (and free apart from the Recording() gate) when
// tracing is off, the level is not reached, or no query scope is open.
//
// Core-track spans sample a monotone virtual clock through `clock`
// (use dpu::TraceClockNow with &core.cycles()); ordinal tracks
// (planner/host) pass no clock and advance the track's event ordinal.
class TraceSpan {
 public:
  using ClockFn = double (*)(const void*);

  TraceSpan(TraceMode level, int track, const char* name,
            ClockFn clock = nullptr, const void* clock_arg = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return track_ != nullptr; }

  void Annotate(const char* key, int64_t value) {
    if (track_ != nullptr) args_.push_back(TraceCollector::Arg::I(key, value));
  }
  void Annotate(const char* key, uint64_t value) {
    if (track_ != nullptr) args_.push_back(TraceCollector::Arg::U(key, value));
  }
  void Annotate(const char* key, double value) {
    if (track_ != nullptr) args_.push_back(TraceCollector::Arg::D(key, value));
  }
  void Annotate(const char* key, const char* value) {
    if (track_ != nullptr) args_.push_back(TraceCollector::Arg::S(key, value));
  }

 private:
  TraceCollector::Track* track_ = nullptr;
  const char* name_ = nullptr;
  ClockFn clock_ = nullptr;
  const void* clock_arg_ = nullptr;
  double begin_ = 0;
  int depth_ = 0;
  std::vector<TraceCollector::Arg> args_;
};

}  // namespace rapid

#endif  // RAPID_COMMON_TRACE_H_
