// Query-level cancellation and deadline propagation.
//
// A CancelToken is shared between the query's issuer and every dpCore
// working on its behalf. The QEF polls it at tile-loop and barrier
// boundaries — the natural preemption points of the non-preemptive
// actor model (Section 5.1): a task never blocks mid-tile, so a
// cancelled query unwinds within one tile round. Cancellation and
// deadline expiry surface as kCancelled / kDeadlineExceeded, which the
// host treats as final (no Volcano fallback — the query itself is
// dead, not the DPU).

#ifndef RAPID_COMMON_CANCEL_H_
#define RAPID_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace rapid {

class CancelToken {
 public:
  CancelToken() = default;

  // Requests cancellation. Safe from any thread, including while the
  // DPU worker pool is mid-round.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  // Absolute deadline; checks fail with kDeadlineExceeded once passed.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_release);
  }

  // Relative form: deadline = now + seconds.
  void SetTimeout(double seconds) {
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::nanoseconds(
                    static_cast<int64_t>(seconds * 1e9)));
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }

  // Chains this token to a caller-owned one: Check() trips when either
  // token does. The engine uses this to combine its own deadline token
  // with the caller's cancellation token. Set before the token is
  // shared with worker threads.
  void set_parent(const CancelToken* parent) { parent_ = parent; }

  // The poll: OK, or the terminal status of this query.
  Status Check() const {
    if (parent_ != nullptr) {
      Status st = parent_->Check();
      if (!st.ok()) return st;
    }
    if (cancelled()) return Status::Cancelled("query cancelled");
    const int64_t deadline = deadline_ns_.load(std::memory_order_acquire);
    if (deadline != 0 &&
        std::chrono::steady_clock::now().time_since_epoch() >=
            std::chrono::nanoseconds(deadline)) {
      return Status::DeadlineExceeded("query deadline elapsed");
    }
    return Status::OK();
  }

  // Null-tolerant form for call sites where no token may be attached.
  static Status Check(const CancelToken* token) {
    if (token == nullptr) return Status::OK();
    return token->Check();
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

 private:
  std::atomic<bool> cancelled_{false};
  // Nanoseconds since steady_clock epoch; 0 = no deadline.
  std::atomic<int64_t> deadline_ns_{0};
  const CancelToken* parent_ = nullptr;
};

}  // namespace rapid

#endif  // RAPID_COMMON_CANCEL_H_
