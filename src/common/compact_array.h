// CompactArray: a bit-packed array of unsigned integers with a fixed
// bit width. This is the storage behind RAPID's compact hash-table
// representation (Section 6.3): for N items, both the `hash-buckets`
// and the `link` array store ceil(log2 N)-bit entries instead of
// pointers, so a DMEM-resident hash table costs ~2*N*ceil(log2 N) bits.

#ifndef RAPID_COMMON_COMPACT_ARRAY_H_
#define RAPID_COMMON_COMPACT_ARRAY_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace rapid {

// Minimum number of bits needed to represent values in [0, n]. Used to
// size join-kernel arrays: with N rows, offsets plus the end-of-chain
// sentinel need ceil(log2(N + 1)) bits.
inline int BitsFor(uint64_t n) {
  int bits = 1;
  while ((uint64_t{1} << bits) <= n) ++bits;
  return bits;
}

class CompactArray {
 public:
  CompactArray() : bit_width_(1), size_(0) {}

  // Creates `size` entries of `bit_width` bits each, zero-initialized.
  CompactArray(size_t size, int bit_width) { Reset(size, bit_width); }

  void Reset(size_t size, int bit_width) {
    RAPID_CHECK(bit_width >= 1 && bit_width <= 64);
    bit_width_ = bit_width;
    size_ = size;
    words_.assign((size * bit_width + 63) / 64, 0);
  }

  size_t size() const { return size_; }
  int bit_width() const { return bit_width_; }
  uint64_t max_value() const {
    return bit_width_ == 64 ? ~uint64_t{0}
                            : (uint64_t{1} << bit_width_) - 1;
  }
  // Bytes of backing storage; what a DMEM budget check charges.
  size_t byte_size() const { return words_.size() * sizeof(uint64_t); }

  uint64_t Get(size_t i) const {
    RAPID_DCHECK(i < size_);
    const size_t bit_pos = i * bit_width_;
    const size_t word = bit_pos >> 6;
    const int offset = static_cast<int>(bit_pos & 63);
    uint64_t value = words_[word] >> offset;
    if (offset + bit_width_ > 64) {
      value |= words_[word + 1] << (64 - offset);
    }
    return value & MaskOf(bit_width_);
  }

  void Set(size_t i, uint64_t value) {
    RAPID_DCHECK(i < size_);
    RAPID_DCHECK(value <= max_value());
    const size_t bit_pos = i * bit_width_;
    const size_t word = bit_pos >> 6;
    const int offset = static_cast<int>(bit_pos & 63);
    const uint64_t mask = MaskOf(bit_width_);
    words_[word] = (words_[word] & ~(mask << offset)) | (value << offset);
    if (offset + bit_width_ > 64) {
      const int spill = offset + bit_width_ - 64;
      const uint64_t hi_mask = MaskOf(spill);
      words_[word + 1] =
          (words_[word + 1] & ~hi_mask) | (value >> (64 - offset));
    }
  }

  void FillWithMax() {
    // Sets every entry to the all-ones sentinel (end-of-chain marker in
    // the join kernel).
    for (size_t i = 0; i < size_; ++i) Set(i, max_value());
  }

 private:
  static uint64_t MaskOf(int bits) {
    return bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
  }

  int bit_width_;
  size_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace rapid

#endif  // RAPID_COMMON_COMPACT_ARRAY_H_
