#include "common/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace rapid {
namespace {

// Startup mode from RAPID_TRACE, resolved once (simd.cc idiom).
TraceMode ResolveStartupMode() {
  const char* env = std::getenv("RAPID_TRACE");
  if (env == nullptr || env[0] == '\0') return TraceMode::kOff;
  if (std::strcmp(env, "off") == 0) return TraceMode::kOff;
  if (std::strcmp(env, "summary") == 0) return TraceMode::kSummary;
  if (std::strcmp(env, "full") == 0) return TraceMode::kFull;
  std::fprintf(stderr,
               "rapid: unknown RAPID_TRACE value '%s' (want off|summary|full),"
               " tracing disabled\n",
               env);
  return TraceMode::kOff;
}

std::atomic<int> g_forced_mode{-1};

// Per-thread DMS staging slot: points into TraceCollector::dms_stages_
// while its generation matches the current query's.
struct ThreadDmsStage {
  uint64_t generation = 0;
  std::vector<TraceCollector::Event>* events = nullptr;
};
thread_local ThreadDmsStage t_dms_stage;

// fetch_add for a double carried in an atomic<uint64_t> (C++17 has no
// floating-point fetch_add); returns the previous value.
double FetchAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t cur = bits->load(std::memory_order_relaxed);
  while (true) {
    double value;
    std::memcpy(&value, &cur, sizeof(value));
    const double next = value + delta;
    uint64_t next_bits;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
    if (bits->compare_exchange_weak(cur, next_bits,
                                    std::memory_order_relaxed)) {
      return value;
    }
  }
}

void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendArgs(std::string* out, const std::vector<TraceCollector::Arg>& args) {
  *out += ",\"args\":{";
  for (size_t i = 0; i < args.size(); ++i) {
    const TraceCollector::Arg& a = args[i];
    if (i > 0) *out += ',';
    *out += '"';
    AppendJsonEscaped(out, a.key);
    *out += "\":";
    char buf[64];
    switch (a.kind) {
      case TraceCollector::Arg::Kind::kInt:
        std::snprintf(buf, sizeof(buf), "%" PRId64, a.i);
        *out += buf;
        break;
      case TraceCollector::Arg::Kind::kDouble:
        std::snprintf(buf, sizeof(buf), "%.6g", a.d);
        *out += buf;
        break;
      case TraceCollector::Arg::Kind::kStr:
        *out += '"';
        AppendJsonEscaped(out, a.s);
        *out += '"';
        break;
    }
  }
  *out += '}';
}

}  // namespace

TraceMode TraceModeActive() {
  const int forced = g_forced_mode.load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<TraceMode>(forced);
  static const TraceMode startup = ResolveStartupMode();
  return startup;
}

TraceMode ForceTraceMode(TraceMode mode) {
  const TraceMode previous = TraceModeActive();
  g_forced_mode.store(static_cast<int>(mode), std::memory_order_release);
  return previous;
}

const char* TraceModeName(TraceMode mode) {
  switch (mode) {
    case TraceMode::kOff:
      return "off";
    case TraceMode::kSummary:
      return "summary";
    case TraceMode::kFull:
      return "full";
  }
  return "?";
}

std::atomic<bool> TraceCollector::active_{false};

TraceCollector& TraceCollector::Instance() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::BeginQuery(int num_cores, double clock_hz) {
  if (nest_++ > 0) return;
  query_mode_ = TraceModeActive();
  if (query_mode_ == TraceMode::kOff) return;
  num_cores_ = num_cores;
  clock_hz_ = clock_hz > 0 ? clock_hz : 1;
  pending_export_ = false;  // the previous trace is superseded
  // Recycle track storage across queries: events.clear() keeps the
  // event vectors' capacity, so steady-state tracing does not reallocate.
  tracks_.resize(num_cores_ + 4);
  for (Track& t : tracks_) {
    t.events.clear();
    t.open_depth = 0;
    t.clock = 0;
  }
  for (int c = 0; c < num_cores_; ++c) {
    tracks_[c].name = "dpCore " + std::to_string(c);
    tracks_[c].cycle_time = true;
  }
  tracks_[num_cores_ + 0].name = "steps";
  tracks_[num_cores_ + 0].cycle_time = true;
  tracks_[num_cores_ + 1].name = "planner";
  tracks_[num_cores_ + 1].cycle_time = false;
  tracks_[num_cores_ + 2].name = "dms";
  tracks_[num_cores_ + 2].cycle_time = true;
  tracks_[num_cores_ + 3].name = "host";
  tracks_[num_cores_ + 3].cycle_time = false;
  dms_clock_bits_.store(0, std::memory_order_relaxed);
  dms_generation_.fetch_add(1, std::memory_order_relaxed);
  dms_stages_.clear();
  // Publish the track storage to worker threads before they can record
  // (the dpu's phase barrier also orders this, but be explicit).
  active_.store(true, std::memory_order_release);
}

void TraceCollector::EndQuery() {
  if (nest_ <= 0) return;
  if (--nest_ > 0) return;
  if (query_mode_ == TraceMode::kOff) return;
  active_.store(false, std::memory_order_release);
  // Fold the per-thread DMS staging buffers into the dms track,
  // ordered by their cursor positions (workers are quiescent here; the
  // lock only fences late registrations).
  if (Track* dms = ResolveTrack(kTrackDms); dms != nullptr) {
    std::lock_guard<std::mutex> lock(dms_stage_mu_);
    for (std::vector<Event>& stage : dms_stages_) {
      for (Event& e : stage) dms->events.push_back(std::move(e));
    }
    dms_stages_.clear();
    std::stable_sort(
        dms->events.begin(), dms->events.end(),
        [](const Event& a, const Event& b) { return a.begin < b.begin; });
  }
  // Serialization is deferred to last_trace_json(): the buffers stay
  // intact until the next outermost BeginQuery, so an unread trace
  // costs nothing. RAPID_TRACE_PATH forces the export now.
  pending_export_ = true;
  const char* path = std::getenv("RAPID_TRACE_PATH");
  if (path != nullptr && path[0] != '\0') {
    last_json_ = ExportJson();
    pending_export_ = false;
    std::FILE* f = std::fopen(path, "w");
    if (f != nullptr) {
      std::fwrite(last_json_.data(), 1, last_json_.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "rapid: cannot write RAPID_TRACE_PATH '%s'\n",
                   path);
    }
  }
}

const std::string& TraceCollector::last_trace_json() {
  // Never serialize while a query is recording into the buffers; the
  // cached JSON (possibly from an earlier query) is the stable answer.
  if (pending_export_ && !active_.load(std::memory_order_relaxed)) {
    last_json_ = ExportJson();
    pending_export_ = false;
  }
  return last_json_;
}

TraceCollector::Track* TraceCollector::ResolveTrack(int track) {
  int index;
  switch (track) {
    case kTrackSteps:
      index = num_cores_ + 0;
      break;
    case kTrackPlanner:
      index = num_cores_ + 1;
      break;
    case kTrackDms:
      index = num_cores_ + 2;
      break;
    case kTrackHost:
      index = num_cores_ + 3;
      break;
    default:
      index = track;
  }
  if (index < 0 || index >= static_cast<int>(tracks_.size())) return nullptr;
  return &tracks_[index];
}

void TraceCollector::AddStepSpan(const char* name, double cycles,
                                 std::vector<Arg> args) {
  Track* t = ResolveTrack(kTrackSteps);
  if (t == nullptr) return;
  Event e;
  e.name = name;
  e.begin = t->clock;
  e.end = t->clock + cycles;
  e.args = std::move(args);
  t->clock = e.end;
  t->events.push_back(std::move(e));
}

void TraceCollector::AddStepInstant(const char* name, std::vector<Arg> args) {
  Track* t = ResolveTrack(kTrackSteps);
  if (t == nullptr) return;
  Event e;
  e.name = name;
  e.begin = t->clock;
  e.end = t->clock;
  e.instant = true;
  e.args = std::move(args);
  t->events.push_back(std::move(e));
}

void TraceCollector::RecordDms(const char* name, double cycles,
                               std::vector<Arg> args) {
  if (!active_.load(std::memory_order_relaxed)) return;
  const uint64_t generation = dms_generation_.load(std::memory_order_relaxed);
  if (t_dms_stage.events == nullptr || t_dms_stage.generation != generation) {
    std::lock_guard<std::mutex> lock(dms_stage_mu_);
    dms_stages_.emplace_back();
    dms_stages_.back().reserve(64);
    t_dms_stage.events = &dms_stages_.back();
    t_dms_stage.generation = generation;
  }
  Event e;
  e.name = name;
  e.begin = FetchAddDouble(&dms_clock_bits_, cycles);
  e.end = e.begin + cycles;
  e.args = std::move(args);
  t_dms_stage.events->push_back(std::move(e));
}

const char* TraceCollector::Intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  for (const std::string& s : interned_) {
    if (s == name) return s.c_str();
  }
  interned_.push_back(name);
  return interned_.back().c_str();
}

TraceCollector::Snapshot TraceCollector::TakeSnapshot() const {
  Snapshot snap;
  snap.tracks = tracks_;
  snap.clock_hz = clock_hz_;
  return snap;
}

std::string TraceCollector::ExportJson() const {
  // Chrome trace-event format: pid 1, one tid per track, "X" complete
  // events with ts/dur in microseconds. Cycle tracks convert through
  // the modeled clock; ordinal tracks use 1 unit = 1 us.
  const double us_per_cycle = 1e6 / clock_hz_;
  std::string out;
  out.reserve(4096);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
                "\"args\":{\"name\":\"rapid\"}}");
  out += buf;
  first = false;
  for (size_t t = 0; t < tracks_.size(); ++t) {
    const Track& track = tracks_[t];
    out += ",\n";
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(t) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    AppendJsonEscaped(&out, track.name.c_str());
    out += "\"}}";
    const double scale = track.cycle_time ? us_per_cycle : 1.0;
    for (const Event& e : track.events) {
      out += ",\n";
      if (e.instant) {
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%zu,"
                      "\"ts\":%.4f,\"name\":\"",
                      t, e.begin * scale);
        out += buf;
        AppendJsonEscaped(&out, e.name);
        out += "\"";
      } else {
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"X\",\"pid\":1,\"tid\":%zu,\"ts\":%.4f,"
                      "\"dur\":%.4f,\"name\":\"",
                      t, e.begin * scale, (e.end - e.begin) * scale);
        out += buf;
        AppendJsonEscaped(&out, e.name);
        out += "\"";
      }
      if (!e.args.empty()) AppendArgs(&out, e.args);
      out += "}";
    }
  }
  (void)first;
  out += "\n]}\n";
  return out;
}

TraceSpan::TraceSpan(TraceMode level, int track, const char* name,
                     ClockFn clock, const void* clock_arg) {
  if (!TraceCollector::Recording(level)) return;
  TraceCollector::Track* t = TraceCollector::Instance().ResolveTrack(track);
  if (t == nullptr) return;
  track_ = t;
  name_ = name;
  clock_ = clock;
  clock_arg_ = clock_arg;
  args_.reserve(4);  // one allocation for the typical annotation count
  depth_ = t->open_depth++;
  if (clock_ != nullptr) {
    begin_ = clock_(clock_arg_);
  } else {
    begin_ = t->clock;
    t->clock += 1;
  }
}

TraceSpan::~TraceSpan() {
  if (track_ == nullptr) return;
  double end;
  if (clock_ != nullptr) {
    end = clock_(clock_arg_);
  } else {
    end = track_->clock;
    track_->clock += 1;
  }
  TraceCollector::Event e;
  e.name = name_;
  e.begin = begin_;
  e.end = end;
  e.depth = depth_;
  e.args = std::move(args_);
  track_->events.push_back(std::move(e));
  track_->open_depth--;
}

}  // namespace rapid
