// Cache-line aligned heap buffer used for DRAM-resident column data.
// The DMS transfers whole cache lines; keeping vectors aligned mirrors
// the strict alignment rules of the DPU memory system (Section 4.2).

#ifndef RAPID_COMMON_BUFFER_H_
#define RAPID_COMMON_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace rapid {

inline constexpr size_t kCacheLineSize = 64;

// Move-only owning buffer with 64-byte alignment.
class AlignedBuffer {
 public:
  AlignedBuffer() : data_(nullptr), size_(0) {}

  explicit AlignedBuffer(size_t size) : size_(size) {
    if (size == 0) {
      data_ = nullptr;
      return;
    }
    const size_t padded = (size + kCacheLineSize - 1) & ~(kCacheLineSize - 1);
    data_ = static_cast<uint8_t*>(std::aligned_alloc(kCacheLineSize, padded));
    RAPID_CHECK(data_ != nullptr);
    std::memset(data_, 0, padded);
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      std::free(data_);
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { std::free(data_); }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(data_);
  }

 private:
  uint8_t* data_;
  size_t size_;
};

}  // namespace rapid

#endif  // RAPID_COMMON_BUFFER_H_
