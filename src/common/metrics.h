// Process-wide metrics: named counters, gauges and fixed-bucket
// histograms, registered once and updated with single atomic ops.
//
// Where the trace answers "what did THIS query do", metrics aggregate
// across queries: how many queries ran, how many offloaded, how many
// rows Bloom filters pruned, how often the tile pool missed. Sites
// register a metric once (cache the pointer in a function-local
// static) and then update it lock-free; MetricsRegistry::Snapshot()
// copies everything for inspection, and DumpText()/DumpJson() render
// it for humans and scrapers.

#ifndef RAPID_COMMON_METRICS_H_
#define RAPID_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rapid {

class MetricCounter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class MetricGauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed upper-bound buckets plus an implicit overflow bucket; also
// tracks count and sum so averages survive bucket granularity.
class MetricHistogram {
 public:
  explicit MetricHistogram(std::vector<double> upper_bounds);

  void Observe(double value);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  void Reset();

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // upper_bounds + overflow
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // CAS-accumulated double
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  // Registration is idempotent: the first call creates, later calls
  // return the same object. Pointers stay valid for process lifetime.
  MetricCounter* Counter(const std::string& name);
  MetricGauge* Gauge(const std::string& name);
  MetricHistogram* Histogram(const std::string& name,
                             std::vector<double> upper_bounds);

  struct SnapshotEntry {
    std::string name;
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    uint64_t counter = 0;
    int64_t gauge = 0;
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;  // bounds.size() + 1 (overflow)
    uint64_t count = 0;
    double sum = 0;
  };
  // Name-sorted copy of every registered metric.
  std::vector<SnapshotEntry> Snapshot() const;

  std::string DumpText() const;
  std::string DumpJson() const;

  // Zeroes every metric (tests). Registration survives.
  void ResetAll();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  struct Entry {
    std::string name;
    std::unique_ptr<MetricCounter> counter;
    std::unique_ptr<MetricGauge> gauge;
    std::unique_ptr<MetricHistogram> histogram;
  };
  Entry* Find(const std::string& name);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace rapid

#endif  // RAPID_COMMON_METRICS_H_
