#include "common/fault.h"

namespace rapid {

std::atomic<bool> FaultInjector::enabled_{false};

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& site, SiteSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  if (!state.armed) ++armed_count_;
  state.spec = std::move(spec);
  state.armed = true;
  state.hits = 0;
  state.failures = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  if (--armed_count_ == 0) {
    enabled_.store(false, std::memory_order_relaxed);
  }
}

void FaultInjector::Reset(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_count_ = 0;
  rng_ = Rng(seed);
  enabled_.store(false, std::memory_order_relaxed);
}

Status FaultInjector::Poll(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return Status::OK();
  SiteState& state = it->second;
  const uint64_t ordinal = state.hits++;

  if (ordinal < state.spec.skip_first) return Status::OK();
  if (state.spec.max_failures >= 0 &&
      state.failures >= static_cast<uint64_t>(state.spec.max_failures)) {
    return Status::OK();
  }
  // The RNG draw happens on every eligible hit (whether or not it
  // fires) so the decision sequence is a pure function of the seed and
  // the site's hit ordinals, independent of other sites' arming.
  if (state.spec.probability < 1.0 &&
      rng_.NextDouble() >= state.spec.probability) {
    return Status::OK();
  }

  ++state.failures;
  std::string msg = state.spec.message.empty()
                        ? "injected fault at site '" + std::string(site) +
                              "' (hit " + std::to_string(ordinal) + ")"
                        : state.spec.message;
  return Status(state.spec.code, std::move(msg));
}

uint64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::failures(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.failures;
}

}  // namespace rapid
