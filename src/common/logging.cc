#include "common/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstring>

namespace rapid {
namespace {

LogLevel ResolveStartupLevel() {
  const char* env = std::getenv("RAPID_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  std::fprintf(stderr,
               "rapid: unknown RAPID_LOG_LEVEL value '%s'"
               " (want error|warn|info|debug), using warn\n",
               env);
  return LogLevel::kWarn;
}

std::atomic<int> g_forced_level{-1};

}  // namespace

LogLevel LogLevelActive() {
  const int forced = g_forced_level.load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<LogLevel>(forced);
  static const LogLevel startup = ResolveStartupLevel();
  return startup;
}

LogLevel ForceLogLevel(LogLevel level) {
  const LogLevel previous = LogLevelActive();
  g_forced_level.store(static_cast<int>(level), std::memory_order_release);
  return previous;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "?";
}

namespace internal {

void LogWrite(LogLevel level, const char* fmt, ...) {
  // One vsnprintf into a local buffer, one fwrite: lines from
  // concurrent threads stay intact.
  char buf[1024];
  int n = std::snprintf(buf, sizeof(buf), "rapid: ");
  va_list args;
  va_start(args, fmt);
  n += std::vsnprintf(buf + n, sizeof(buf) - static_cast<size_t>(n) - 1, fmt,
                      args);
  va_end(args);
  if (n > static_cast<int>(sizeof(buf)) - 2) n = sizeof(buf) - 2;
  buf[n] = '\n';
  std::fwrite(buf, 1, static_cast<size_t>(n) + 1, stderr);
  (void)level;
}

}  // namespace internal
}  // namespace rapid
