// CRC32 hashing, modeling the dpCore's single-cycle CRC32 instruction
// and the DMS hash engine (Sections 2.1 and 5.4). All hash
// partitioning, group-by and join hashing in RAPID use CRC32C.

#ifndef RAPID_COMMON_CRC32_H_
#define RAPID_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace rapid {

// CRC32C (Castagnoli) of a byte buffer, seeded with `seed`.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0xFFFFFFFFu);

// Hash of a single fixed-width key, the common case in join/group-by.
inline uint32_t Crc32U64(uint64_t key, uint32_t seed = 0xFFFFFFFFu) {
  return Crc32(&key, sizeof(key), seed);
}

// Combines hashes of multi-column keys the way the DMS hash engine
// chains CRC over up to 4 key columns (Figure 8: hash 1/2/4 keys).
inline uint32_t Crc32Combine(uint32_t prev, uint64_t key) {
  return Crc32(&key, sizeof(key), prev);
}

}  // namespace rapid

#endif  // RAPID_COMMON_CRC32_H_
