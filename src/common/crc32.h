// CRC32 hashing, modeling the dpCore's single-cycle CRC32 instruction
// and the DMS hash engine (Sections 2.1 and 5.4). All hash
// partitioning, group-by and join hashing in RAPID use CRC32C.
//
// Two implementations exist: a table-driven software fallback and a
// hardware path using SSE4.2 `crc32` (x86) or the ARMv8 CRC32C
// extension. Both compute the exact same function — join and
// partition hash stability across machines depends on it — and the
// dispatch is resolved once at startup via a function pointer.

#ifndef RAPID_COMMON_CRC32_H_
#define RAPID_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace rapid {

// CRC32C (Castagnoli) of a byte buffer, seeded with `seed`.
// Dispatches to the hardware instruction when available.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0xFFFFFFFFu);

// Table-driven software implementation (always available; the
// reference the hardware path is validated against).
uint32_t Crc32Software(const void* data, size_t len,
                       uint32_t seed = 0xFFFFFFFFu);

// True when this process dispatches to a hardware CRC32C instruction.
bool Crc32HardwareAvailable();

// Hash of a single fixed-width key, the common case in join/group-by.
inline uint32_t Crc32U64(uint64_t key, uint32_t seed = 0xFFFFFFFFu) {
  return Crc32(&key, sizeof(key), seed);
}

// Combines hashes of multi-column keys the way the DMS hash engine
// chains CRC over up to 4 key columns (Figure 8: hash 1/2/4 keys).
inline uint32_t Crc32Combine(uint32_t prev, uint64_t key) {
  return Crc32(&key, sizeof(key), prev);
}

}  // namespace rapid

#endif  // RAPID_COMMON_CRC32_H_
