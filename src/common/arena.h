// Tile-local memory subsystem: a chunked bump-pointer arena plus a
// size-classed buffer pool layered on top of it.
//
// RAPID's hot operator paths (partition scatter, join build, fused
// pipelines) run one tile at a time per dpCore; allocating their
// scratch buffers from the global heap per tile both serializes the
// morsel workers on the allocator lock and thrashes the allocator's
// caches (Durner et al., "On the Impact of Memory Allocation on
// High-Performance Query Processing"). Instead every DpCore owns an
// Arena (never contended: morsel workers are pinned to one core
// context at a time) and a TileBufferPool that recycles tile-sized
// buffers across tiles and across queries. After a warm-up query the
// steady state performs zero heap allocations on the tile path.
//
// Neither class is thread-safe; each instance belongs to exactly one
// DpCore and is only touched by the worker currently running that
// core's morsel.

#ifndef RAPID_COMMON_ARENA_H_
#define RAPID_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rapid {

// Counters describing one arena (or, via Accumulate, a set of them).
struct ArenaStats {
  uint64_t bytes_reserved = 0;  // sum of chunk capacities
  uint64_t bytes_used = 0;      // bytes currently bump-allocated
  uint64_t high_water = 0;      // max bytes_used ever observed
  uint64_t chunk_count = 0;
  uint64_t alloc_calls = 0;     // Allocate() invocations (lifetime)

  void Accumulate(const ArenaStats& other) {
    bytes_reserved += other.bytes_reserved;
    bytes_used += other.bytes_used;
    high_water += other.high_water;
    chunk_count += other.chunk_count;
    alloc_calls += other.alloc_calls;
  }
};

// Chunked bump-pointer arena. Allocations are 64-byte aligned by
// default (one cache line — every kernel scratch buffer can be handed
// to SIMD code without further alignment fixups). Chunks are
// page-aligned and, when RAPID_HUGEPAGES=on, madvise(MADV_HUGEPAGE)d
// so the kernel can back them with 2 MiB pages and shrink the
// dTLB footprint of scatter-heavy tiles.
//
// Reset() rewinds every chunk cursor but keeps the chunks mapped, so
// a warm arena never returns to the system allocator.
class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = size_t{1} << 20;  // 1 MiB
  static constexpr size_t kChunkAlignment = 4096;
  static constexpr size_t kDefaultAlignment = 64;

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `bytes` of storage aligned to `align` (a power of two,
  // at most kChunkAlignment). The memory is uninitialized and stays
  // valid until Reset(). Zero-byte requests return a unique non-null
  // pointer.
  void* Allocate(size_t bytes, size_t align = kDefaultAlignment);

  template <typename T>
  T* AllocateArray(size_t count) {
    const size_t align =
        alignof(T) > kDefaultAlignment ? alignof(T) : kDefaultAlignment;
    return static_cast<T*>(Allocate(count * sizeof(T), align));
  }

  // Rewinds every chunk cursor; keeps the chunks for reuse.
  void Reset();

  ArenaStats stats() const;

  // RAPID_HUGEPAGES=on|off (default off), resolved once per process.
  static bool HugePagesEnabled();

 private:
  struct Chunk {
    uint8_t* data = nullptr;
    size_t capacity = 0;
    size_t used = 0;
  };

  // Appends a chunk of at least `min_bytes` and makes it active.
  Chunk& AddChunk(size_t min_bytes);

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t active_ = 0;  // chunks_[active_] is the current bump target
  uint64_t alloc_calls_ = 0;
  uint64_t high_water_ = 0;
};

// Counters describing one pool (or an accumulated set).
struct TilePoolStats {
  uint64_t acquires = 0;         // buffer requests served
  uint64_t reuses = 0;           // served from a free list
  uint64_t misses = 0;           // needed a fresh arena allocation
  uint64_t releases = 0;         // buffers returned (handle resets)
  uint64_t bytes_acquired = 0;   // sum of class sizes handed out
  uint64_t bytes_allocated = 0;  // sum of class sizes freshly allocated

  void Accumulate(const TilePoolStats& other) {
    acquires += other.acquires;
    reuses += other.reuses;
    misses += other.misses;
    releases += other.releases;
    bytes_acquired += other.bytes_acquired;
    bytes_allocated += other.bytes_allocated;
  }

  // Buffers currently leased out. Error and cancellation paths must
  // drain back to zero — the pool-leak regression tests assert on it.
  uint64_t outstanding() const { return acquires - releases; }
};

// Recycles tile-sized scratch buffers (partition maps, hash columns,
// bit-vector payloads, write-combining scratch, fused-pipeline
// intermediates). Buffers live in power-of-two size classes; Acquire
// pops a free buffer of the smallest fitting class or bump-allocates
// a new one from the arena. Releasing (via Handle destruction) pushes
// the buffer back on its class's free list — nothing is ever returned
// to the heap, so steady-state tiles allocate nothing.
//
// Buffer contents are NOT zeroed on acquire; callers that need zeroed
// memory must clear it themselves.
class TileBufferPool {
 public:
  static constexpr size_t kMinClassBytes = 64;
  static constexpr int kNumClasses = 26;  // 64 B .. 2 GiB

  explicit TileBufferPool(Arena* arena) : arena_(arena) {}

  TileBufferPool(const TileBufferPool&) = delete;
  TileBufferPool& operator=(const TileBufferPool&) = delete;

  // RAII lease on a pooled buffer; returns it to the pool on
  // destruction. Movable so operators can hold leases as members.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept { *this = std::move(other); }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        reset();
        pool_ = other.pool_;
        data_ = other.data_;
        bytes_ = other.bytes_;
        cls_ = other.cls_;
        other.pool_ = nullptr;
        other.data_ = nullptr;
        other.bytes_ = 0;
        other.cls_ = -1;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { reset(); }

    uint8_t* data() const { return data_; }
    // Usable size: the size class, >= the requested byte count.
    size_t size() const { return bytes_; }
    template <typename T>
    T* as() const {
      return reinterpret_cast<T*>(data_);
    }
    explicit operator bool() const { return data_ != nullptr; }

    // Returns the buffer to the pool early.
    void reset();

   private:
    friend class TileBufferPool;
    Handle(TileBufferPool* pool, uint8_t* data, size_t bytes, int cls)
        : pool_(pool), data_(data), bytes_(bytes), cls_(cls) {}

    TileBufferPool* pool_ = nullptr;
    uint8_t* data_ = nullptr;
    size_t bytes_ = 0;
    int cls_ = -1;  // -1: empty; -2: heap-backed (bypass mode)
  };

  // Leases a buffer of at least `bytes` (64-byte aligned).
  Handle Acquire(size_t bytes);

  // Fallible variant for recoverable call sites: polls the
  // "pool.acquire" fault site whenever the request would leave the
  // free lists (arena chunk growth / bypass heap allocation —
  // allocator pressure), so tests can exercise recovery the same way
  // as "dmem.alloc". On success `*out` holds the lease.
  Status TryAcquire(size_t bytes, Handle* out);

  template <typename T>
  Handle AcquireArray(size_t count) {
    return Acquire(count * sizeof(T));
  }

  template <typename T>
  Status TryAcquireArray(size_t count, Handle* out) {
    return TryAcquire(count * sizeof(T), out);
  }

  const TilePoolStats& stats() const { return stats_; }

  // Bypass mode: Acquire falls through to the heap and Release frees,
  // emulating the pre-pool per-tile allocation pattern. Used by
  // bench_partition_scatter for before/after allocation counts, and
  // settable via RAPID_TILE_POOL=off. Returns the previous value.
  static bool ForceBypass(bool bypass);

  // True when acquires currently go to the heap (RAPID_TILE_POOL=off
  // or ForceBypass); recycling-behavior tests skip themselves then.
  static bool BypassActive();

 private:
  friend class Handle;
  static int ClassOf(size_t bytes);
  void Release(uint8_t* data, size_t bytes, int cls);

  Arena* arena_;
  std::vector<uint8_t*> free_lists_[kNumClasses];
  TilePoolStats stats_;
};

}  // namespace rapid

#endif  // RAPID_COMMON_ARENA_H_
