// Assertion macros for internal invariants.
//
// RAPID_CHECK* fire in all build types: violating a DMEM budget or a
// kernel invariant is a programming error, never a data-dependent
// condition, so aborting is the correct response (Google style:
// invariants crash, expected failures return Status).

#ifndef RAPID_COMMON_LOGGING_H_
#define RAPID_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace rapid::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "RAPID_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace rapid::internal

#define RAPID_CHECK(cond)                                        \
  do {                                                           \
    if (!(cond)) {                                               \
      ::rapid::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                            \
  } while (0)

#define RAPID_CHECK_OK(expr)                                             \
  do {                                                                   \
    ::rapid::Status _st = (expr);                                        \
    if (!_st.ok()) {                                                     \
      std::fprintf(stderr, "RAPID_CHECK_OK failed at %s:%d: %s\n",       \
                   __FILE__, __LINE__, _st.ToString().c_str());          \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define RAPID_DCHECK(cond) RAPID_CHECK(cond)

#endif  // RAPID_COMMON_LOGGING_H_
