// Assertion macros for internal invariants, and leveled diagnostics.
//
// RAPID_CHECK* fire in all build types: violating a DMEM budget or a
// kernel invariant is a programming error, never a data-dependent
// condition, so aborting is the correct response (Google style:
// invariants crash, expected failures return Status).
//
// RAPID_LOG(level, fmt, ...) replaces the ad-hoc one-shot fprintfs
// (SIMD level pick, encoding report, scheduler mode): messages below
// the active level are dropped, so the default (warn) keeps test
// output quiet while RAPID_LOG_LEVEL=info restores the startup
// notices and debug opens the firehose. The level resolves once from
// the environment (simd.cc idiom); ForceLogLevel pins it for tests.

#ifndef RAPID_COMMON_LOGGING_H_
#define RAPID_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace rapid {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

// Active level: ForceLogLevel override if set, else RAPID_LOG_LEVEL
// (error|warn|info|debug, default warn) resolved once at first use.
LogLevel LogLevelActive();

// Pins the level (tests); returns the previously active level.
LogLevel ForceLogLevel(LogLevel level);

const char* LogLevelName(LogLevel level);

inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(LogLevelActive());
}

namespace internal {

// Writes one log line to stderr with a "rapid: " prefix. Callers go
// through RAPID_LOG so disabled levels cost only the LogEnabled test.
void LogWrite(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace internal
}  // namespace rapid

// Usage: RAPID_LOG(kInfo, "simd dispatch level: %s", name);
// The message is a printf format WITHOUT the "rapid: " prefix or a
// trailing newline — LogWrite adds both.
#define RAPID_LOG(level, ...)                                          \
  do {                                                                 \
    if (::rapid::LogEnabled(::rapid::LogLevel::level)) {               \
      ::rapid::internal::LogWrite(::rapid::LogLevel::level,            \
                                  __VA_ARGS__);                        \
    }                                                                  \
  } while (0)

namespace rapid::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "RAPID_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace rapid::internal

#define RAPID_CHECK(cond)                                        \
  do {                                                           \
    if (!(cond)) {                                               \
      ::rapid::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                            \
  } while (0)

#define RAPID_CHECK_OK(expr)                                             \
  do {                                                                   \
    ::rapid::Status _st = (expr);                                        \
    if (!_st.ok()) {                                                     \
      std::fprintf(stderr, "RAPID_CHECK_OK failed at %s:%d: %s\n",       \
                   __FILE__, __LINE__, _st.ToString().c_str());          \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define RAPID_DCHECK(cond) RAPID_CHECK(cond)

#endif  // RAPID_COMMON_LOGGING_H_
