#include "common/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace rapid {

MetricHistogram::MetricHistogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1) {}

void MetricHistogram::Observe(double value) {
  size_t i = 0;
  while (i < upper_bounds_.size() && value > upper_bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double current;
    std::memcpy(&current, &bits, sizeof(current));
    const double updated = current + value;
    uint64_t updated_bits;
    std::memcpy(&updated_bits, &updated, sizeof(updated_bits));
    if (sum_bits_.compare_exchange_weak(bits, updated_bits,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double MetricHistogram::sum() const {
  const uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void MetricHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name) {
  for (auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

MetricCounter* MetricsRegistry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = Find(name);
  if (e == nullptr) {
    entries_.push_back(std::make_unique<Entry>());
    e = entries_.back().get();
    e->name = name;
    e->counter = std::make_unique<MetricCounter>();
  }
  return e->counter.get();
}

MetricGauge* MetricsRegistry::Gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = Find(name);
  if (e == nullptr) {
    entries_.push_back(std::make_unique<Entry>());
    e = entries_.back().get();
    e->name = name;
    e->gauge = std::make_unique<MetricGauge>();
  }
  return e->gauge.get();
}

MetricHistogram* MetricsRegistry::Histogram(const std::string& name,
                                            std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = Find(name);
  if (e == nullptr) {
    entries_.push_back(std::make_unique<Entry>());
    e = entries_.back().get();
    e->name = name;
    e->histogram = std::make_unique<MetricHistogram>(std::move(upper_bounds));
  }
  return e->histogram.get();
}

std::vector<MetricsRegistry::SnapshotEntry> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotEntry> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    SnapshotEntry s;
    s.name = e->name;
    if (e->counter != nullptr) {
      s.kind = SnapshotEntry::Kind::kCounter;
      s.counter = e->counter->value();
    } else if (e->gauge != nullptr) {
      s.kind = SnapshotEntry::Kind::kGauge;
      s.gauge = e->gauge->value();
    } else {
      s.kind = SnapshotEntry::Kind::kHistogram;
      s.bounds = e->histogram->upper_bounds();
      for (size_t i = 0; i <= s.bounds.size(); ++i) {
        s.buckets.push_back(e->histogram->bucket_count(i));
      }
      s.count = e->histogram->count();
      s.sum = e->histogram->sum();
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::DumpText() const {
  std::string out;
  char buf[128];
  for (const SnapshotEntry& s : Snapshot()) {
    switch (s.kind) {
      case SnapshotEntry::Kind::kCounter:
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", s.counter);
        out += s.name;
        out += buf;
        break;
      case SnapshotEntry::Kind::kGauge:
        std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", s.gauge);
        out += s.name;
        out += buf;
        break;
      case SnapshotEntry::Kind::kHistogram:
        std::snprintf(buf, sizeof(buf), " count=%" PRIu64 " sum=%.6g",
                      s.count, s.sum);
        out += s.name;
        out += buf;
        for (size_t i = 0; i < s.buckets.size(); ++i) {
          if (i < s.bounds.size()) {
            std::snprintf(buf, sizeof(buf), " le%.6g=%" PRIu64, s.bounds[i],
                          s.buckets[i]);
          } else {
            std::snprintf(buf, sizeof(buf), " inf=%" PRIu64, s.buckets[i]);
          }
          out += buf;
        }
        out += '\n';
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::string out = "{";
  char buf[128];
  bool first = true;
  for (const SnapshotEntry& s : Snapshot()) {
    if (!first) out += ',';
    first = false;
    out += "\n\"" + s.name + "\":";
    switch (s.kind) {
      case SnapshotEntry::Kind::kCounter:
        std::snprintf(buf, sizeof(buf), "%" PRIu64, s.counter);
        out += buf;
        break;
      case SnapshotEntry::Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "%" PRId64, s.gauge);
        out += buf;
        break;
      case SnapshotEntry::Kind::kHistogram: {
        std::snprintf(buf, sizeof(buf),
                      "{\"count\":%" PRIu64 ",\"sum\":%.6g,\"buckets\":[",
                      s.count, s.sum);
        out += buf;
        for (size_t i = 0; i < s.buckets.size(); ++i) {
          if (i > 0) out += ',';
          std::snprintf(buf, sizeof(buf), "%" PRIu64, s.buckets[i]);
          out += buf;
        }
        out += "]}";
        break;
      }
    }
  }
  out += "\n}\n";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    if (e->counter != nullptr) e->counter->Reset();
    if (e->gauge != nullptr) e->gauge->Reset();
    if (e->histogram != nullptr) e->histogram->Reset();
  }
}

}  // namespace rapid
