// Mix64: a SplitMix64-style 64-bit finalizer hash family.
//
// The join kernel's bucket placement is derived from Crc32U64
// (common/crc32.h); any structure shared with it would make Bloom
// blocks correlate with hash-table buckets and inflate the filter's
// false-positive rate exactly on the keys that collide in the table.
// Mix64 is an independent family: the SplitMix64 finalizer is a
// bijection on 64-bit values with full avalanche (every input bit
// flips every output bit with probability ~1/2), so the high bits
// (block selection) and low bits (lane bit positions) are usable as
// independent hashes.

#ifndef RAPID_COMMON_MIX64_H_
#define RAPID_COMMON_MIX64_H_

#include <cstdint>

namespace rapid {

// SplitMix64 finalizer (Steele, Lea & Flood; same constants as
// splitmix64's next()). Bijective on uint64_t.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EB;
  return x ^ (x >> 31);
}

// Combines a running hash with the next key component (composite
// keys). The previous state is multiplied by an odd constant (the
// xorshift64* multiplier) before mixing in the key, so the combine is
// order-sensitive — Mix64(prev ^ Mix64(key)) would be symmetric and
// collide (a, b) with (b, a) — and the trailing finalizer restores
// full avalanche.
inline uint64_t Mix64Combine(uint64_t prev, uint64_t key) {
  // The gamma offset keeps prev == 0 from annihilating the multiply
  // (combining with an empty state must still differ from Mix64(key)).
  return Mix64((prev + 0x9E3779B97F4A7C15ull) * 0x2545F4914F6CDD1Dull ^ key);
}

}  // namespace rapid

#endif  // RAPID_COMMON_MIX64_H_
