#include "common/bitvector.h"

// BitVector is header-only; this translation unit anchors the library.
