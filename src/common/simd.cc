#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace rapid {
namespace {

SimdLevel ProbeSupported() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSse42;
#endif
  return SimdLevel::kScalar;
}

SimdLevel Clamp(SimdLevel level, SimdLevel cap) {
  return static_cast<int>(level) > static_cast<int>(cap) ? cap : level;
}

// Resolves RAPID_SIMD once, clamps to hardware support, logs the choice.
SimdLevel ResolveStartupLevel() {
  const SimdLevel supported = ProbeSupported();
  SimdLevel level = supported;
  const char* requested = "auto";
  if (const char* env = std::getenv("RAPID_SIMD"); env != nullptr && *env) {
    requested = env;
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0) {
      level = SimdLevel::kScalar;
    } else if (std::strcmp(env, "sse42") == 0) {
      level = Clamp(SimdLevel::kSse42, supported);
    } else if (std::strcmp(env, "avx2") == 0) {
      level = Clamp(SimdLevel::kAvx2, supported);
    } else if (std::strcmp(env, "auto") == 0) {
      level = supported;
    } else {
      RAPID_LOG(kWarn,
                "unknown RAPID_SIMD value '%s' "
                "(want off|sse42|avx2|auto); using auto",
                env);
    }
  }
  RAPID_LOG(kInfo, "SIMD dispatch level %s (RAPID_SIMD=%s, cpu max %s)",
            SimdLevelName(level), requested, SimdLevelName(supported));
  return level;
}

// kScalar-1 encodes "no override"; anything else is a ForceSimdLevel pin.
std::atomic<int> g_forced_level{-1};

}  // namespace

SimdLevel SimdLevelSupported() {
  static const SimdLevel supported = ProbeSupported();
  return supported;
}

SimdLevel SimdLevelActive() {
  const int forced = g_forced_level.load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  static const SimdLevel startup = ResolveStartupLevel();
  return startup;
}

SimdLevel ForceSimdLevel(SimdLevel level) {
  const SimdLevel clamped = Clamp(level, SimdLevelSupported());
  const SimdLevel previous = SimdLevelActive();
  g_forced_level.store(static_cast<int>(clamped), std::memory_order_release);
  return previous;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse42:
      return "sse42";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace rapid
