#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace rapid {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the user seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  RAPID_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) % bound
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  RAPID_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  RAPID_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

uint64_t ZipfGenerator::Sample() {
  const double u = rng_.NextDouble();
  // First index whose CDF value exceeds u.
  size_t lo = 0;
  size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace rapid
