// BitVector: the qualifying-row representation used throughout RAPID's
// filter pipeline (Section 5.4). Predicate primitives produce and
// consume bit vectors; the DMS can gather rows selected by one.

#ifndef RAPID_COMMON_BITVECTOR_H_
#define RAPID_COMMON_BITVECTOR_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace rapid {

// A fixed-size vector of bits with fast population count and
// set-bit iteration. Bit i corresponds to row offset i in a tile.
class BitVector {
 public:
  BitVector() : num_bits_(0) {}
  explicit BitVector(size_t num_bits) { Resize(num_bits); }

  void Resize(size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
  }

  size_t size() const { return num_bits_; }

  void Set(size_t i) {
    RAPID_DCHECK(i < num_bits_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }
  void Clear(size_t i) {
    RAPID_DCHECK(i < num_bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void SetTo(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }
  bool Test(size_t i) const {
    RAPID_DCHECK(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void SetAll() {
    for (auto& w : words_) w = ~uint64_t{0};
    MaskTail();
  }
  void ClearAll() {
    for (auto& w : words_) w = 0;
  }

  // Sets bits [begin, end) in whole-word strokes. The run-level
  // predicate path emits one span per qualifying run with this; OR-ing
  // into the (zeroed or partially filled) words keeps earlier spans.
  void SetRange(size_t begin, size_t end) {
    RAPID_DCHECK(begin <= end && end <= num_bits_);
    if (begin >= end) return;
    const size_t first_word = begin >> 6;
    const size_t last_word = (end - 1) >> 6;
    const uint64_t first_mask = ~uint64_t{0} << (begin & 63);
    const uint64_t last_mask = ~uint64_t{0} >> (63 - ((end - 1) & 63));
    if (first_word == last_word) {
      words_[first_word] |= first_mask & last_mask;
      return;
    }
    words_[first_word] |= first_mask;
    for (size_t w = first_word + 1; w < last_word; ++w) {
      words_[w] = ~uint64_t{0};
    }
    words_[last_word] |= last_mask;
  }

  // Number of set bits.
  size_t CountOnes() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  // In-place intersection / union with another vector of equal size.
  void And(const BitVector& other) {
    RAPID_DCHECK(other.num_bits_ == num_bits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }
  void Or(const BitVector& other) {
    RAPID_DCHECK(other.num_bits_ == num_bits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }
  void Not() {
    for (auto& w : words_) w = ~w;
    MaskTail();
  }

  // Appends the offsets of all set bits to `rids` (the RID-list
  // representation of qualifying rows, Section 5.4).
  void ToRids(std::vector<uint32_t>* rids) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        rids->push_back(static_cast<uint32_t>(wi * 64 + bit));
        w &= (w - 1);
      }
    }
  }

  // Raw-buffer flavour: writes the offsets of all set bits into `rids`
  // (capacity >= size()) and returns how many were written. Lets
  // callers stage RID lists in recycled scratch instead of growing a
  // vector per tile.
  size_t ToRids(uint32_t* rids) const {
    size_t n = 0;
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        rids[n++] = static_cast<uint32_t>(wi * 64 + bit);
        w &= (w - 1);
      }
    }
    return n;
  }

  // Builds from a RID list; RIDs must be < num_bits.
  static BitVector FromRids(const std::vector<uint32_t>& rids,
                            size_t num_bits) {
    BitVector bv(num_bits);
    for (uint32_t rid : rids) bv.Set(rid);
    return bv;
  }

  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }
  size_t num_words() const { return words_.size(); }

  bool operator==(const BitVector& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

 private:
  // Clears bits past num_bits_ in the last word so CountOnes and
  // ToRids never see phantom rows.
  void MaskTail() {
    const size_t tail = num_bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  size_t num_bits_;
  std::vector<uint64_t> words_;
};

}  // namespace rapid

#endif  // RAPID_COMMON_BITVECTOR_H_
