// Dpu: the System-on-Chip facade (Section 2.5). Owns the 32 dpCores,
// the DMS and the ATE, and provides the parallel execution entry point
// the query-execution framework schedules actors onto.
//
// Execution uses a persistent pool of one OS thread per dpCore; the
// host machine may have fewer physical cores, which only affects wall
// clock, never the modeled DPU cycle counts.

#ifndef RAPID_DPU_DPU_H_
#define RAPID_DPU_DPU_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "dpu/ate.h"
#include "dpu/config.h"
#include "dpu/cost_model.h"
#include "dpu/dms.h"
#include "dpu/dpcore.h"
#include "dpu/power_model.h"
#include "dpu/work_queue.h"

namespace rapid::dpu {

class Dpu {
 public:
  explicit Dpu(const DpuConfig& config = DpuConfig::Default(),
               const CostParams& params = CostParams::Default());
  ~Dpu();

  Dpu(const Dpu&) = delete;
  Dpu& operator=(const Dpu&) = delete;

  const DpuConfig& config() const { return config_; }
  const CostParams& params() const { return params_; }
  Dms& dms() { return dms_; }
  Ate& ate() { return ate_; }
  const PowerModel& power() const { return power_; }

  int num_cores() const { return config_.num_cores; }
  DpCore& core(int id) { return *cores_[id]; }

  // Runs `fn(core)` on every dpCore concurrently and waits for all of
  // them. This is one scheduling round of the actor model; tasks
  // within a round communicate via the ATE only.
  void ParallelFor(const std::function<void(DpCore&)>& fn);

  // Inline execution: run scheduling rounds sequentially on the
  // calling thread instead of the worker pool. Functionally identical
  // (rounds are data-parallel); removes simulator thread-switch noise
  // from wall-clock measurements on hosts with few CPUs. Cycle
  // accounting is unaffected.
  void SetInlineExecution(bool inline_exec) { inline_exec_ = inline_exec; }

  // Same, but only on cores [0, n). `n` is clamped to
  // [1, num_cores]; out-of-range requests never index the pool.
  void ParallelForN(int n, const std::function<void(DpCore&)>& fn);

  // Morsel-driven scheduling round: every core pulls morsels from
  // `queue` until it drains, polling `cancel` (may be null) between
  // morsels so cancellation latency is bounded by one morsel. The
  // first non-OK status (including cancellation) aborts the remaining
  // morsels on all cores and is returned. Callers must index their
  // output slots by morsel id so results are independent of which core
  // ran which morsel. Updates the phase/accumulated ImbalanceStats.
  Status ParallelForMorsels(
      WorkQueue& queue, const CancelToken* cancel,
      const std::function<Status(DpCore&, size_t)>& fn);

  // Modeled elapsed cycles of the last/accumulated execution: the
  // slowest core bounds the phase.
  double MaxEffectiveCycles(bool double_buffered = true) const;
  double MaxEffectiveSeconds(bool double_buffered = true) const;

  // Modeled phase time under the shared-memory-system rule: compute
  // runs concurrently across cores (max), but all DMS transfers share
  // the single DRAM interface (sum), overlapped with compute by double
  // buffering: time = max(max_c compute_c, sum_c dms_c) / clock.
  double ModeledPhaseCycles() const;
  double ModeledPhaseSeconds() const {
    return ModeledPhaseCycles() / params_.clock_hz;
  }

  // Sum over cores, for utilization analysis.
  double TotalComputeCycles() const;

  // Load-balance statistics accumulated over every morsel phase since
  // the last ResetCores (per-phase max/mean core compute cycles and
  // steal counts), and the most recent phase alone.
  const ImbalanceStats& imbalance() const { return imbalance_; }
  const ImbalanceStats& last_phase_imbalance() const {
    return last_phase_imbalance_;
  }

  // Clears all core cycle counters, DMEM arenas and imbalance stats.
  void ResetCores();

 private:
  void WorkerLoop(int core_id);

  DpuConfig config_;
  CostParams params_;
  Dms dms_;
  Ate ate_;
  PowerModel power_;
  std::vector<std::unique_ptr<DpCore>> cores_;

  // Worker pool state.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::function<void(DpCore&)> job_;
  int job_limit_ = 0;          // cores [0, job_limit_) participate
  uint64_t job_generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
  bool inline_exec_ = false;
  std::vector<std::thread> workers_;

  ImbalanceStats imbalance_;
  ImbalanceStats last_phase_imbalance_;
};

}  // namespace rapid::dpu

#endif  // RAPID_DPU_DPU_H_
