// Atomic Transaction Engine (Section 2.4): the DPU's on-chip
// communication fabric. The hardware is a 2-level crossbar with
// guaranteed point-to-point message ordering; on top of it RAPID
// builds message passing and synchronization primitives (mutex,
// barrier). Because dpCore caches are not coherent, ATE messages are
// the *only* sanctioned cross-core communication channel.
//
// The simulator provides the same primitives with the same ordering
// guarantee (per-destination FIFO delivery).

#ifndef RAPID_DPU_ATE_H_
#define RAPID_DPU_ATE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/logging.h"

namespace rapid::dpu {

struct AteMessage {
  int from = -1;
  uint64_t tag = 0;
  std::vector<uint8_t> payload;
};

class Ate {
 public:
  explicit Ate(int num_cores)
      : mailboxes_(num_cores), hw_mutexes_(kNumHwMutexes) {}

  Ate(const Ate&) = delete;
  Ate& operator=(const Ate&) = delete;

  // Sends a message to `to`'s mailbox. Messages from the same sender
  // to the same destination are delivered in send order.
  void Send(int from, int to, uint64_t tag, std::vector<uint8_t> payload = {}) {
    RAPID_DCHECK(to >= 0 && to < static_cast<int>(mailboxes_.size()));
    Mailbox& box = mailboxes_[to];
    {
      std::lock_guard<std::mutex> lock(box.mu);
      box.queue.push_back(AteMessage{from, tag, std::move(payload)});
    }
    box.cv.notify_one();
  }

  // Blocking receive on `core`'s mailbox.
  AteMessage Receive(int core) {
    Mailbox& box = mailboxes_[core];
    std::unique_lock<std::mutex> lock(box.mu);
    box.cv.wait(lock, [&] { return !box.queue.empty(); });
    AteMessage msg = std::move(box.queue.front());
    box.queue.pop_front();
    return msg;
  }

  // Non-blocking receive.
  std::optional<AteMessage> TryReceive(int core) {
    Mailbox& box = mailboxes_[core];
    std::lock_guard<std::mutex> lock(box.mu);
    if (box.queue.empty()) return std::nullopt;
    AteMessage msg = std::move(box.queue.front());
    box.queue.pop_front();
    return msg;
  }

  // Hardware mutex: the ATE provides a small number of chip-level
  // locks usable from any core.
  static constexpr int kNumHwMutexes = 16;
  void Lock(int mutex_id) { hw_mutexes_[mutex_id].lock(); }
  void Unlock(int mutex_id) { hw_mutexes_[mutex_id].unlock(); }

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<AteMessage> queue;
  };

  std::vector<Mailbox> mailboxes_;
  std::vector<std::mutex> hw_mutexes_;
};

// Reusable barrier across a fixed set of participants, implemented the
// way RAPID builds it over ATE messaging.
class AteBarrier {
 public:
  explicit AteBarrier(int num_participants)
      : num_participants_(num_participants) {}

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t gen = generation_;
    if (++arrived_ == num_participants_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int num_participants_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace rapid::dpu

#endif  // RAPID_DPU_ATE_H_
