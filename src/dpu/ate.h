// Atomic Transaction Engine (Section 2.4): the DPU's on-chip
// communication fabric. The hardware is a 2-level crossbar with
// guaranteed point-to-point message ordering; on top of it RAPID
// builds message passing and synchronization primitives (mutex,
// barrier). Because dpCore caches are not coherent, ATE messages are
// the *only* sanctioned cross-core communication channel.
//
// The simulator provides the same primitives with the same ordering
// guarantee (per-destination FIFO delivery).

#ifndef RAPID_DPU_ATE_H_
#define RAPID_DPU_ATE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/cancel.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/status.h"

namespace rapid::dpu {

struct AteMessage {
  int from = -1;
  uint64_t tag = 0;
  std::vector<uint8_t> payload;
};

class Ate {
 public:
  explicit Ate(int num_cores, int max_delivery_attempts = 4)
      : mailboxes_(num_cores),
        hw_mutexes_(kNumHwMutexes),
        max_delivery_attempts_(max_delivery_attempts) {}

  Ate(const Ate&) = delete;
  Ate& operator=(const Ate&) = delete;

  // Sends a message to `to`'s mailbox. Messages from the same sender
  // to the same destination are delivered in send order.
  //
  // The crossbar guarantees ordering, not delivery: the fault site
  // "ate.send" models a dropped hop, which the engine absorbs by
  // redelivering up to max_delivery_attempts times. A message lost for
  // good surfaces as kRetryExhausted and is NOT enqueued — senders
  // that ignore the status keep the pre-fault behavior of the
  // simulator (delivery or silent loss, never a partial enqueue).
  Status Send(int from, int to, uint64_t tag,
              std::vector<uint8_t> payload = {}) {
    RAPID_DCHECK(to >= 0 && to < static_cast<int>(mailboxes_.size()));
    if (__builtin_expect(FaultInjector::enabled(), 0)) {
      Status last = Status::OK();
      bool delivered = false;
      for (int attempt = 0; attempt < max_delivery_attempts_; ++attempt) {
        last = FaultInjector::Instance().Poll(faults::kAteSend);
        if (last.ok()) {
          delivered = true;
          break;
        }
      }
      if (!delivered) {
        return Status::RetryExhausted(
            "ATE message " + std::to_string(from) + "->" +
            std::to_string(to) + " lost after " +
            std::to_string(max_delivery_attempts_) +
            " attempts: " + last.ToString());
      }
    }
    Mailbox& box = mailboxes_[to];
    {
      std::lock_guard<std::mutex> lock(box.mu);
      box.queue.push_back(AteMessage{from, tag, std::move(payload)});
    }
    box.cv.notify_one();
    return Status::OK();
  }

  // Blocking receive on `core`'s mailbox.
  AteMessage Receive(int core) {
    Mailbox& box = mailboxes_[core];
    std::unique_lock<std::mutex> lock(box.mu);
    box.cv.wait(lock, [&] { return !box.queue.empty(); });
    AteMessage msg = std::move(box.queue.front());
    box.queue.pop_front();
    return msg;
  }

  // Non-blocking receive.
  std::optional<AteMessage> TryReceive(int core) {
    Mailbox& box = mailboxes_[core];
    std::lock_guard<std::mutex> lock(box.mu);
    if (box.queue.empty()) return std::nullopt;
    AteMessage msg = std::move(box.queue.front());
    box.queue.pop_front();
    return msg;
  }

  // Hardware mutex: the ATE provides a small number of chip-level
  // locks usable from any core.
  static constexpr int kNumHwMutexes = 16;
  void Lock(int mutex_id) { hw_mutexes_[mutex_id].lock(); }
  void Unlock(int mutex_id) { hw_mutexes_[mutex_id].unlock(); }

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<AteMessage> queue;
  };

  std::vector<Mailbox> mailboxes_;
  std::vector<std::mutex> hw_mutexes_;
  int max_delivery_attempts_;
};

// Reusable barrier across a fixed set of participants, implemented the
// way RAPID builds it over ATE messaging.
class AteBarrier {
 public:
  explicit AteBarrier(int num_participants)
      : num_participants_(num_participants) {}

  // Blocks until all participants arrive. With a CancelToken, a
  // cancelled (or past-deadline) participant abandons the barrier
  // instead of waiting forever for peers that already unwound: it
  // still counts as arrived (so surviving peers are released) but
  // returns the cancellation status. Without a token this degenerates
  // to the classic blocking wait.
  Status Wait(const CancelToken* cancel = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t gen = generation_;
    if (++arrived_ == num_participants_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return CancelToken::Check(cancel);
    }
    if (cancel == nullptr) {
      cv_.wait(lock, [&] { return generation_ != gen; });
      return Status::OK();
    }
    while (generation_ == gen) {
      Status st = cancel->Check();
      if (!st.ok()) {
        // Our arrival already counted when we entered, so peers that
        // arrive later still complete the barrier — the fleet is never
        // stranded behind a dead query.
        return st;
      }
      cv_.wait_for(lock, std::chrono::milliseconds(1),
                   [&] { return generation_ != gen; });
    }
    return Status::OK();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int num_participants_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace rapid::dpu

#endif  // RAPID_DPU_ATE_H_
