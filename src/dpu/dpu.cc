#include "dpu/dpu.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace rapid::dpu {

Dpu::Dpu(const DpuConfig& config, const CostParams& params)
    : config_(config),
      params_(params),
      dms_(config, params),
      ate_(config.num_cores, params.ate_max_attempts),
      power_() {
  cores_.reserve(config_.num_cores);
  for (int i = 0; i < config_.num_cores; ++i) {
    cores_.push_back(std::make_unique<DpCore>(i, config_));
  }
  workers_.reserve(config_.num_cores);
  for (int i = 0; i < config_.num_cores; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Dpu::~Dpu() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void Dpu::WorkerLoop(int core_id) {
  uint64_t seen_generation = 0;
  for (;;) {
    std::function<void(DpCore&)> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || job_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      if (core_id >= job_limit_) {
        // Not participating in this round; acknowledge immediately.
        if (--pending_ == 0) done_cv_.notify_one();
        continue;
      }
      job = job_;
    }
    job(*cores_[core_id]);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void Dpu::ParallelForN(int n, const std::function<void(DpCore&)>& fn) {
  // Clamp instead of trusting the caller: a task-formation bug asking
  // for 0 or num_cores+1 cores must not index past the pool.
  n = std::max(1, std::min(n, config_.num_cores));
  if (inline_exec_) {
    for (int c = 0; c < n; ++c) fn(*cores_[c]);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  job_ = fn;
  job_limit_ = n;
  pending_ = config_.num_cores;
  ++job_generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return pending_ == 0; });
}

void Dpu::ParallelFor(const std::function<void(DpCore&)>& fn) {
  ParallelForN(config_.num_cores, fn);
}

Status Dpu::ParallelForMorsels(
    WorkQueue& queue, const CancelToken* cancel,
    const std::function<Status(DpCore&, size_t)>& fn) {
  const auto ncores = static_cast<size_t>(config_.num_cores);
  std::vector<double> before(ncores);
  for (size_t c = 0; c < ncores; ++c) {
    before[c] = cores_[c]->cycles().compute_cycles();
  }

  std::vector<Status> statuses(ncores);
  std::atomic<bool> abort{false};
  ParallelFor([&](DpCore& core) {
    const auto cid = static_cast<size_t>(core.id());
    size_t morsel = 0;
    while (!abort.load(std::memory_order_relaxed) &&
           queue.Next(core.id(), &morsel)) {
      // Poll between morsels: a cancelled query unwinds within one
      // morsel, not one phase.
      Status st = CancelToken::Check(cancel);
      const double morsel_start = core.cycles().compute_cycles();
      if (st.ok()) st = fn(core, morsel);
      // Report the morsel's real modeled cost so the queue's virtual
      // clocks (and hence steal decisions) track actual stragglers,
      // not just the weight estimates.
      queue.Charge(core.id(), morsel,
                   core.cycles().compute_cycles() - morsel_start);
      if (!st.ok()) {
        statuses[cid] = std::move(st);
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });

  // Phase imbalance: the slowest core's compute delta bounds the
  // phase, the mean is the perfectly balanced cost.
  ImbalanceStats phase;
  double sum = 0;
  for (size_t c = 0; c < ncores; ++c) {
    const double delta = cores_[c]->cycles().compute_cycles() - before[c];
    phase.max_core_cycles = std::max(phase.max_core_cycles, delta);
    sum += delta;
  }
  phase.mean_core_cycles = sum / static_cast<double>(ncores);
  phase.steal_count = queue.steal_count();
  phase.phases = 1;
  last_phase_imbalance_ = phase;
  imbalance_.Accumulate(phase);

  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

double Dpu::MaxEffectiveCycles(bool double_buffered) const {
  double max_cycles = 0;
  for (const auto& core : cores_) {
    max_cycles =
        std::max(max_cycles, core->cycles().EffectiveCycles(double_buffered));
  }
  return max_cycles;
}

double Dpu::MaxEffectiveSeconds(bool double_buffered) const {
  return MaxEffectiveCycles(double_buffered) / params_.clock_hz;
}

double Dpu::ModeledPhaseCycles() const {
  double max_compute = 0;
  double sum_dms = 0;
  for (const auto& core : cores_) {
    max_compute = std::max(max_compute, core->cycles().compute_cycles());
    sum_dms += core->cycles().dms_cycles();
  }
  return std::max(max_compute, sum_dms);
}

double Dpu::TotalComputeCycles() const {
  double total = 0;
  for (const auto& core : cores_) total += core->cycles().compute_cycles();
  return total;
}

void Dpu::ResetCores() {
  for (auto& core : cores_) {
    core->cycles().Reset();
    core->dmem().Reset();
    core->encoded_scan().Reset();
    core->join_filter().Reset();
  }
  imbalance_ = ImbalanceStats{};
  last_phase_imbalance_ = ImbalanceStats{};
}

}  // namespace rapid::dpu
