#include "dpu/config.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace rapid::dpu {

namespace {

int ResolveCoreCount(int paper_default) {
  int cores = paper_default;
  if (const char* env = std::getenv("RAPID_CORES"); env != nullptr && *env) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      cores = static_cast<int>(std::min(parsed, 1024L));
    } else {
      RAPID_LOG(kWarn,
                "invalid RAPID_CORES value '%s' "
                "(want an integer >= 1); using %d",
                env, paper_default);
    }
  }
  if (cores != paper_default) {
    RAPID_LOG(kInfo, "dpCore count overridden to %d (RAPID_CORES)", cores);
  }
  return cores;
}

}  // namespace

DpuConfig DpuConfig::Default() {
  DpuConfig config;
  static const int cores = ResolveCoreCount(config.num_cores);
  config.num_cores = cores;
  return config;
}

}  // namespace rapid::dpu
