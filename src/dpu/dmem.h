// Dmem: the 32 KiB software-managed scratchpad of a dpCore
// (Section 2.2). It is a bump allocator over a real backing buffer:
// operators and the relation accessor allocate their input/output
// vectors and internal state from it, and exceeding the budget is an
// error — DMEM capacity is the central constraint behind task
// formation (Section 5.2) and partition sizing (Section 5.3).

#ifndef RAPID_DPU_DMEM_H_
#define RAPID_DPU_DMEM_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/buffer.h"
#include "common/fault.h"
#include "common/status.h"

namespace rapid::dpu {

class Dmem {
 public:
  explicit Dmem(size_t capacity)
      : buffer_(capacity), capacity_(capacity), used_(0), high_water_(0) {}

  Dmem(const Dmem&) = delete;
  Dmem& operator=(const Dmem&) = delete;

  // Allocates `bytes` (8-byte aligned). Fails with OutOfMemory when the
  // scratchpad budget is exhausted; callers must either have reserved
  // space via task formation or handle spilling (e.g. the join's
  // DMEM-overflow strategy, Section 6.4).
  Result<uint8_t*> Allocate(size_t bytes) {
    // Injectable budget exhaustion: lets tests exercise the OOM
    // recovery ladder (pipeline demotion -> host fallback) on queries
    // that would otherwise fit comfortably.
    RAPID_FAULT_POINT(faults::kDmemAlloc);
    const size_t aligned = (bytes + 7) & ~size_t{7};
    if (used_ + aligned > capacity_) {
      return Status::OutOfMemory("DMEM exhausted: need " +
                                 std::to_string(aligned) + " bytes, " +
                                 std::to_string(capacity_ - used_) + " free");
    }
    uint8_t* ptr = buffer_.data() + used_;
    used_ += aligned;
    if (used_ > high_water_) high_water_ = used_;
    return ptr;
  }

  template <typename T>
  Result<T*> AllocateArray(size_t count) {
    auto res = Allocate(count * sizeof(T));
    if (!res.ok()) return res.status();
    return reinterpret_cast<T*>(res.value());
  }

  // Releases everything. DMEM has no free(): tasks reset the scratchpad
  // wholesale at task boundaries, mirroring how RAPID reuses DMEM
  // between tasks.
  void Reset() { used_ = 0; }

  // Partial release back to a recorded `used()` watermark: frees every
  // allocation made after the mark while keeping earlier ones alive.
  // Morsel loops use this to keep a core's resident operator state
  // (e.g. a broadcast hash table) while recycling the per-morsel
  // accessor tile buffers stacked on top of it.
  void TruncateTo(size_t mark) {
    if (mark < used_) used_ = mark;
  }

  size_t capacity() const { return capacity_; }
  size_t used() const { return used_; }
  size_t free_bytes() const { return capacity_ - used_; }
  size_t high_water() const { return high_water_; }

  bool Contains(const void* ptr) const {
    const auto* p = static_cast<const uint8_t*>(ptr);
    return p >= buffer_.data() && p < buffer_.data() + capacity_;
  }

 private:
  AlignedBuffer buffer_;
  size_t capacity_;
  size_t used_;
  size_t high_water_;
};

}  // namespace rapid::dpu

#endif  // RAPID_DPU_DMEM_H_
