#include "dpu/dms.h"

#include <cstring>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/trace.h"

namespace rapid::dpu {

int64_t KeyColumn::ValueAt(size_t row) const {
  switch (width) {
    case 1:
      return static_cast<int64_t>(
          reinterpret_cast<const int8_t*>(data)[row]);
    case 2: {
      int16_t v;
      std::memcpy(&v, data + row * 2, 2);
      return v;
    }
    case 4: {
      int32_t v;
      std::memcpy(&v, data + row * 4, 4);
      return v;
    }
    case 8: {
      int64_t v;
      std::memcpy(&v, data + row * 8, 8);
      return v;
    }
    default:
      RAPID_CHECK(false);
  }
}

Status Dms::RunDescriptor(CycleCounter* cycles, const char* site) const {
  if (!FaultInjector::enabled()) return Status::OK();
  Status last = Status::OK();
  double backoff = params_.dms_retry_backoff_cycles;
  for (int attempt = 0; attempt < params_.dms_max_attempts; ++attempt) {
    last = FaultInjector::Instance().Poll(site);
    if (last.ok()) return Status::OK();
    // Cancellation-class faults are not transient; retrying a dead
    // query only burns cycles.
    if (last.IsCancellation()) return last;
    if (attempt + 1 < params_.dms_max_attempts && cycles != nullptr) {
      // Reprogram + settle before the next attempt.
      cycles->ChargeDms(backoff);
      backoff *= 2;
    }
  }
  return Status::RetryExhausted("DMS descriptor failed " +
                                std::to_string(params_.dms_max_attempts) +
                                " attempts at '" + site +
                                "': " + last.ToString());
}

Status Dms::TransferTile(CycleCounter* cycles,
                         const std::vector<ColumnSlice>& slices,
                         bool read_write) const {
  RAPID_RETURN_NOT_OK(RunDescriptor(cycles, faults::kDmsTransfer));
  size_t total_bytes = 0;
  for (const ColumnSlice& s : slices) {
    std::memcpy(s.dst, s.src, s.bytes);
    total_bytes += s.bytes;
  }
  if (cycles != nullptr) {
    // The transfer formula charges per-column descriptor overhead plus
    // streaming time for the payload bytes; `read_write` marks that
    // the chain interleaves read and write descriptors.
    const int columns =
        read_write ? static_cast<int>(slices.size()) / 2
                   : static_cast<int>(slices.size());
    const size_t payload = read_write ? total_bytes / 2 : total_bytes;
    const size_t per_col =
        columns > 0 ? payload / static_cast<size_t>(columns) : 0;
    const double dms_cycles = DmsTileTransferCycles(
        params_, columns > 0 ? columns : 1, per_col, 1, read_write);
    cycles->ChargeDms(dms_cycles);
    if (TraceCollector::Recording(TraceMode::kFull)) {
      TraceCollector::Instance().RecordDms(
          "dms.transfer", dms_cycles,
          {TraceCollector::Arg::U("bytes", total_bytes),
           TraceCollector::Arg::I("columns", columns),
           TraceCollector::Arg::S("mode", read_write ? "rw" : "ro")});
    }
  }
  return Status::OK();
}

void Dms::Gather(CycleCounter* cycles, uint8_t* dst, const uint8_t* src,
                 const uint32_t* rids, size_t n, size_t width) const {
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(dst + i * width, src + static_cast<size_t>(rids[i]) * width,
                width);
  }
  if (cycles != nullptr) {
    cycles->ChargeDms(DmsGatherCycles(params_, n, width));
  }
}

size_t Dms::GatherBits(CycleCounter* cycles, uint8_t* dst, const uint8_t* src,
                       const BitVector& bits, size_t width) const {
  size_t out = 0;
  for (size_t wi = 0; wi < bits.num_words(); ++wi) {
    uint64_t w = bits.words()[wi];
    while (w != 0) {
      const size_t row = wi * 64 + static_cast<size_t>(__builtin_ctzll(w));
      std::memcpy(dst + out * width, src + row * width, width);
      ++out;
      w &= (w - 1);
    }
  }
  if (cycles != nullptr) {
    cycles->ChargeDms(DmsGatherCycles(params_, out, width));
  }
  return out;
}

void Dms::Scatter(CycleCounter* cycles, uint8_t* dst, const uint8_t* src,
                  const uint32_t* rids, size_t n, size_t width) const {
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(dst + static_cast<size_t>(rids[i]) * width, src + i * width,
                width);
  }
  if (cycles != nullptr) {
    cycles->ChargeDms(DmsGatherCycles(params_, n, width));
  }
}

uint32_t Dms::HashKeys(const std::vector<KeyColumn>& keys, size_t row) {
  uint32_t crc = 0xFFFFFFFFu;
  for (const KeyColumn& key : keys) {
    crc = Crc32Combine(crc, static_cast<uint64_t>(key.ValueAt(row)));
  }
  return crc;
}

Status Dms::ComputeTargets(CycleCounter* cycles, const HwPartitionSpec& spec,
                           size_t n, size_t row_bytes,
                           std::vector<uint16_t>* targets) const {
  if (spec.fanout < 1 || spec.fanout > config_.hw_partition_fanout) {
    return Status::InvalidArgument("hardware partition fan-out must be 1.." +
                                   std::to_string(config_.hw_partition_fanout));
  }
  if (spec.strategy == HwPartitionStrategy::kHash &&
      (spec.keys.empty() || spec.keys.size() > 4)) {
    return Status::InvalidArgument("hash partitioning supports 1-4 keys");
  }
  if ((spec.strategy == HwPartitionStrategy::kRadix ||
       spec.strategy == HwPartitionStrategy::kRange) &&
      spec.keys.size() != 1) {
    return Status::InvalidArgument("radix/range partitioning needs one key");
  }
  if (spec.strategy == HwPartitionStrategy::kRange &&
      spec.range_bounds.size() + 1 != static_cast<size_t>(spec.fanout)) {
    return Status::InvalidArgument(
        "range partitioning needs fanout-1 ascending bounds");
  }
  RAPID_RETURN_NOT_OK(RunDescriptor(cycles, faults::kDmsPartition));

  targets->resize(n);
  const uint32_t mask = static_cast<uint32_t>(spec.fanout) - 1;
  switch (spec.strategy) {
    case HwPartitionStrategy::kHash: {
      // The hash engine writes CRC32 values to CRC memory, then the
      // radix bits select the target dpCore id (CID memory).
      for (size_t i = 0; i < n; ++i) {
        (*targets)[i] = static_cast<uint16_t>(HashKeys(spec.keys, i) & mask);
      }
      break;
    }
    case HwPartitionStrategy::kRadix: {
      // Least significant log2(fanout) bits of the key (Section 7.1).
      const KeyColumn& key = spec.keys[0];
      for (size_t i = 0; i < n; ++i) {
        (*targets)[i] = static_cast<uint16_t>(
            static_cast<uint64_t>(key.ValueAt(i)) & mask);
      }
      break;
    }
    case HwPartitionStrategy::kRange: {
      // Match against the 32 pre-programmed range bounds.
      const KeyColumn& key = spec.keys[0];
      for (size_t i = 0; i < n; ++i) {
        const int64_t v = key.ValueAt(i);
        uint16_t t = static_cast<uint16_t>(spec.range_bounds.size());
        for (size_t b = 0; b < spec.range_bounds.size(); ++b) {
          if (v < spec.range_bounds[b]) {
            t = static_cast<uint16_t>(b);
            break;
          }
        }
        (*targets)[i] = t;
      }
      break;
    }
    case HwPartitionStrategy::kRoundRobin: {
      // Plain round-robin, except rows inside a programmed frequent
      // range rotate over that range's dedicated core set.
      std::vector<size_t> skew_cursor(spec.skew_ranges.size(), 0);
      size_t cursor = 0;
      const bool keyed = !spec.keys.empty();
      for (size_t i = 0; i < n; ++i) {
        bool handled = false;
        if (keyed && !spec.skew_ranges.empty()) {
          const int64_t v = spec.keys[0].ValueAt(i);
          for (size_t s = 0; s < spec.skew_ranges.size(); ++s) {
            const SkewRange& sr = spec.skew_ranges[s];
            if (v >= sr.lo && v <= sr.hi && !sr.cores.empty()) {
              (*targets)[i] = sr.cores[skew_cursor[s] % sr.cores.size()];
              ++skew_cursor[s];
              handled = true;
              break;
            }
          }
        }
        if (!handled) {
          (*targets)[i] =
              static_cast<uint16_t>(cursor % static_cast<size_t>(spec.fanout));
          ++cursor;
        }
      }
      break;
    }
  }

  if (cycles != nullptr) {
    cycles->ChargeDms(HwPartitionCycles(params_, spec.strategy,
                                        static_cast<int>(spec.keys.size()), n,
                                        n * row_bytes));
  }
  return Status::OK();
}

void Dms::DistributeColumn(CycleCounter* cycles, const uint8_t* col,
                           size_t width,
                           const std::vector<uint16_t>& targets,
                           std::vector<std::vector<uint8_t>>* out) const {
  // Histogram pass first: sizing every target buffer up front turns
  // the distribution into one reservation per target instead of
  // log-many growth reallocations while the engine streams rows.
  std::vector<size_t> extra(out->size(), 0);
  for (const uint16_t t : targets) extra[t] += width;
  for (size_t t = 0; t < out->size(); ++t) {
    if (extra[t] > 0) (*out)[t].reserve((*out)[t].size() + extra[t]);
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    std::vector<uint8_t>& buf = (*out)[targets[i]];
    buf.insert(buf.end(), col + i * width, col + (i + 1) * width);
  }
  if (cycles != nullptr) {
    // Distribution is part of the same engine pass; only the payload
    // streaming is charged (target resolution was charged already).
    cycles->ChargeDms(static_cast<double>(targets.size()) * width /
                      params_.partition_bytes_per_cycle);
  }
}

}  // namespace rapid::dpu
