// Morsel-driven work scheduling for DPU phases.
//
// Every parallel phase of the engine is a set of independent morsels
// (chunks, row ranges, partition pairs, buckets, runs, ...). The
// WorkQueue hands morsels to dpCores either statically (the legacy
// round-robin assignment: core c runs morsels c, c+P, c+2P, ...) or
// dynamically: each core owns a deque seeded by skew-aware LPT
// (largest-processing-time-first over the caller-provided weights) and
// steals the smallest tail morsel from the heaviest remaining victim
// once its own deque drains.
//
// Stealing happens in *virtual* time, not host wall clock: the DPU is
// simulated, so a morsel's cost is its modeled weight, and host thread
// wake-up order says nothing about which core is "ahead". A thief
// takes a morsel only when its own virtual clock plus the morsel's
// weight beats the victim's virtual completion time — exactly the
// steals a real work-stealing runtime would perform, and each one can
// only lower the modeled makespan below the LPT bound. Results stay
// bit-identical because callers index output slots by morsel id,
// never by the core that happened to run the morsel.
//
// The scheduling mode is resolved once from RAPID_SCHED
// (static|morsel), mirroring RAPID_SIMD; tests pin it with
// ForceSchedMode.

#ifndef RAPID_DPU_WORK_QUEUE_H_
#define RAPID_DPU_WORK_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/arena.h"

namespace rapid::dpu {

enum class SchedMode {
  kStatic = 0,  // legacy deterministic round-robin striding
  kMorsel = 1,  // dynamic LPT + work stealing
};

// Scheduling mode resolved once per process from RAPID_SCHED (logged
// once), unless pinned by ForceSchedMode.
SchedMode SchedModeActive();

// Pins the scheduling mode (tests); returns the previous mode.
SchedMode ForceSchedMode(SchedMode mode);

const char* SchedModeName(SchedMode mode);

// Graham's balanced-makespan bound for scheduling independent morsels
// on `num_cores` identical cores: sum/cores plus the largest morsel's
// remainder. With largest == 0 this degenerates to the perfect
// round-robin estimate (total / cores).
double BalancedMakespanCycles(double total_cycles,
                              double largest_morsel_cycles, int num_cores);

// Per-phase (and accumulated) load-balance statistics of morsel
// execution: the slowest core bounds the phase, so max/mean over core
// cycles is the modeled cost of imbalance.
struct ImbalanceStats {
  double max_core_cycles = 0;   // summed per-phase maxima
  double mean_core_cycles = 0;  // summed per-phase means
  uint64_t steal_count = 0;     // morsels run by a non-seeded core
  uint64_t phases = 0;          // morsel phases accumulated

  // Slowest-core slowdown vs a perfectly balanced phase (1.0 = even).
  double Ratio() const {
    return mean_core_cycles > 0 ? max_core_cycles / mean_core_cycles : 1.0;
  }
  void Accumulate(const ImbalanceStats& other) {
    max_core_cycles += other.max_core_cycles;
    mean_core_cycles += other.mean_core_cycles;
    steal_count += other.steal_count;
    phases += other.phases;
  }
};

class WorkQueue {
 public:
  // Unweighted morsels (all assumed equal work): equivalent to the
  // weighted constructor with unit weights, so the LPT seeding deals
  // morsel m to core m % num_cores and stealing evens out the tail.
  WorkQueue(size_t num_morsels, int num_cores,
            SchedMode mode = SchedModeActive());

  // Weighted morsels: the LPT pre-assignment deals morsels
  // largest-first onto the least-loaded core's deque, so the queue
  // drains evenly even under heavy skew. Owners pop their largest
  // morsel first; thieves steal the smallest morsel from the heaviest
  // remaining victim.
  WorkQueue(std::vector<double> weights, int num_cores,
            SchedMode mode = SchedModeActive());

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  // Hands the next morsel to `core_id`. Returns false when drained.
  bool Next(int core_id, size_t* morsel);

  // Feedback from the executor: morsel `morsel` actually cost `cycles`
  // modeled compute cycles on core `core_id`. Corrects that core's
  // virtual clock (a pop optimistically charges the weight-based
  // estimate) and refines the observed cycles-per-weight rate, so
  // steal decisions chase real stragglers — the cores whose morsels
  // ran longer than their weights predicted — not just the LPT plan.
  void Charge(int core_id, size_t morsel, double cycles);

  size_t num_morsels() const { return num_morsels_; }
  SchedMode mode() const { return mode_; }
  uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  void SeedLpt(const std::vector<double>& weights);

  const size_t num_morsels_;
  const int num_cores_;
  const SchedMode mode_;

  // All queue state lives in one 64-byte-aligned arena block sized
  // exactly for this phase in the constructor — one allocation per
  // phase instead of per-core deques and half a dozen vectors. Each
  // core owns a contiguous slot segment [seg_begin_[c],
  // seg_begin_[c+1]) holding its LPT-seeded morsels largest-first;
  // [head_[c], tail_[c]) is the live window: the owner pops the head
  // (its largest remaining morsel), a thief pops the victim's tail
  // (the smallest). One mutex guards the morsel-mode state — morsels
  // are coarse, so a global lock is cheaper than per-segment CAS.
  // Virtual clocks are in modeled cycles: pops charge weight * rate up
  // front and Charge() replaces the estimate with the measured cost.
  double CyclesPerWeight() const;  // observed rate (callers hold mu_)

  Arena arena_;
  std::mutex mu_;
  size_t* slots_ = nullptr;             // num_morsels_, per-core segments
  size_t* seg_begin_ = nullptr;         // num_cores_ + 1 segment bounds
  size_t* head_ = nullptr;              // num_cores_ live-window starts
  size_t* tail_ = nullptr;              // num_cores_ live-window ends
  double* weights_ = nullptr;           // num_morsels_
  double* estimated_charge_ = nullptr;  // optimistic pop charge, per morsel
  double* remaining_weight_ = nullptr;  // weight still queued per core
  double* executed_cycles_ = nullptr;   // virtual clock per core
  size_t* static_next_ = nullptr;       // static mode: stride cursors
  double charged_cycles_ = 0;  // measured cycles across charged morsels
  double charged_weight_ = 0;  // weight of charged morsels
  std::atomic<uint64_t> steals_{0};
};

}  // namespace rapid::dpu

#endif  // RAPID_DPU_WORK_QUEUE_H_
