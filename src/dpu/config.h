// DPU architectural parameters (Section 2 of the paper).
//
// These are the published numbers for the RAPID Data Processing Unit:
// 32 dpCores in 4 macros, 800 MHz, 32 KiB DMEM scratchpad per core,
// 16 KiB L1-D / 8 KiB L1-I, 256 KiB shared L2 per macro, 51 mW dynamic
// power per core, 5.8 W provisioned for the chip.

#ifndef RAPID_DPU_CONFIG_H_
#define RAPID_DPU_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace rapid::dpu {

struct DpuConfig {
  // Core organization.
  int num_cores = 32;
  int num_macros = 4;
  int cores_per_macro = 8;

  // Memories.
  size_t dmem_bytes = 32 * 1024;   // per-core scratchpad
  size_t l1d_bytes = 16 * 1024;    // per-core L1 data cache
  size_t l1i_bytes = 8 * 1024;     // per-core L1 instruction cache
  size_t l2_bytes = 256 * 1024;    // per-macro shared L2

  // Clock and power.
  double clock_hz = 800e6;
  double core_dynamic_power_w = 0.051;  // 51 mW per dpCore
  double chip_power_w = 5.8;            // provisioned DPU power

  // DMS hardware partitioning fan-out: one target per dpCore.
  int hw_partition_fanout = 32;

  // Storage model sweet spots (Section 4.1).
  size_t vector_bytes = 16 * 1024;  // column vector size in a chunk
  size_t min_tile_rows = 64;        // minimum unit of operator transfer

  // Paper defaults, with `num_cores` optionally overridden by the
  // RAPID_CORES environment variable (clamped to [1, 1024]; resolved
  // once per process, logged when it deviates from 32). Used by the
  // scheduler determinism suite and CI to run the whole engine at
  // other core counts — results are bit-identical by construction.
  static DpuConfig Default();
};

}  // namespace rapid::dpu

#endif  // RAPID_DPU_CONFIG_H_
