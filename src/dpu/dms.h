// Data Movement System (Sections 2.3 and 5.4): the DPU's programmable
// data-movement engine. All DRAM <-> DMEM traffic flows through the
// DMS, programmed with descriptors. The DMS supports:
//
//   * streaming tile transfers (column slices, double-buffered),
//   * gather/scatter by RID list or bit vector,
//   * hardware partitioning: hash-radix (CRC32 over 1-4 keys), radix,
//     range (32 pre-programmed bounds) and round-robin, including the
//     skew mitigation that spreads a frequent range over several
//     dpCores round-robin.
//
// Every operation performs the real data movement on host memory and
// charges modeled cycles to the caller's CycleCounter (DMS stream, so
// double buffering can overlap it with compute).

#ifndef RAPID_DPU_DMS_H_
#define RAPID_DPU_DMS_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"
#include "dpu/config.h"
#include "dpu/cost_model.h"

namespace rapid::dpu {

// One column's slice within a tile transfer descriptor.
struct ColumnSlice {
  const uint8_t* src = nullptr;
  uint8_t* dst = nullptr;
  size_t bytes = 0;
};

// A key column fed to the partition engine. Only fixed widths the
// hardware supports (Section 4.2).
struct KeyColumn {
  const uint8_t* data = nullptr;
  int width = 4;  // 1, 2, 4 or 8 bytes

  int64_t ValueAt(size_t row) const;
};

// Frequent-value range spread over multiple cores round-robin
// (Section 5.4, "dealing with skewed data").
struct SkewRange {
  int64_t lo = 0;
  int64_t hi = 0;  // inclusive
  std::vector<uint16_t> cores;
};

struct HwPartitionSpec {
  HwPartitionStrategy strategy = HwPartitionStrategy::kHash;
  std::vector<KeyColumn> keys;     // 1-4 keys for hash; 1 for radix/range
  int fanout = 32;                 // <= DpuConfig::hw_partition_fanout
  std::vector<int64_t> range_bounds;  // ascending upper bounds, for kRange
  std::vector<SkewRange> skew_ranges;  // optional, kRoundRobin only
};

class Dms {
 public:
  Dms(const DpuConfig& config, const CostParams& params)
      : config_(config), params_(params) {}

  const CostParams& params() const { return params_; }

  // ---- Streaming transfers ----

  // Executes one descriptor chain: copies every column slice and
  // charges the modeled transfer time. `read_write` marks an r+w
  // double-buffered loop (input and output slices in one chain).
  //
  // Transient descriptor failures (fault site "dms.transfer") are
  // retried up to params.dms_max_attempts times with exponential
  // backoff charged to `cycles`; a fault that persists past the budget
  // surfaces as kRetryExhausted and the slices are left untouched.
  Status TransferTile(CycleCounter* cycles,
                      const std::vector<ColumnSlice>& slices,
                      bool read_write) const;

  // ---- Gather / scatter ----

  // dst[i] = src[rids[i]] for fixed-width elements.
  void Gather(CycleCounter* cycles, uint8_t* dst, const uint8_t* src,
              const uint32_t* rids, size_t n, size_t width) const;

  // Gathers the rows whose bit is set; returns number gathered.
  size_t GatherBits(CycleCounter* cycles, uint8_t* dst, const uint8_t* src,
                    const BitVector& bits, size_t width) const;

  // dst[rids[i]] = src[i].
  void Scatter(CycleCounter* cycles, uint8_t* dst, const uint8_t* src,
               const uint32_t* rids, size_t n, size_t width) const;

  // ---- Hardware partitioning ----

  // Resolves the target dpCore id for each of `n` rows (the CID-memory
  // stage of the engine). Charges the partition-engine streaming cost
  // for `row_bytes` bytes per row. Partition descriptor faults
  // ("dms.partition") follow the same bounded retry policy as
  // TransferTile.
  Status ComputeTargets(CycleCounter* cycles, const HwPartitionSpec& spec,
                        size_t n, size_t row_bytes,
                        std::vector<uint16_t>* targets) const;

  // Shared retry policy for DMS descriptor programming: polls the
  // fault site up to params.dms_max_attempts times, charging
  // exponentially growing backoff cycles between attempts. Returns OK
  // once an attempt succeeds, kRetryExhausted when the fault persists,
  // or the fault verbatim when it is not transient (cancellation).
  Status RunDescriptor(CycleCounter* cycles, const char* site) const;

  // Distributes one column into per-target buffers according to a
  // previously computed target map. Buffers grow as needed (the real
  // DMS would flush them to the target core's DMEM).
  void DistributeColumn(CycleCounter* cycles, const uint8_t* col, size_t width,
                        const std::vector<uint16_t>& targets,
                        std::vector<std::vector<uint8_t>>* out) const;

  // CRC32 of up to 4 keys for one row, as computed by the hash engine.
  static uint32_t HashKeys(const std::vector<KeyColumn>& keys, size_t row);

 private:
  DpuConfig config_;
  CostParams params_;
};

}  // namespace rapid::dpu

#endif  // RAPID_DPU_DMS_H_
