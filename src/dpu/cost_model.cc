#include "dpu/cost_model.h"

namespace rapid::dpu {

const CostParams& CostParams::Default() {
  static const CostParams params;
  return params;
}

}  // namespace rapid::dpu
