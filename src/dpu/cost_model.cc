#include "dpu/cost_model.h"

#include "common/simd.h"

namespace rapid::dpu {

const CostParams& CostParams::Default() {
  static const CostParams params;
  return params;
}

CostParams CostParams::HostCalibrated() {
  CostParams params = Default();
  // Family multipliers measured with bench_primitives (int32 columns,
  // 4096-row tiles) on the host; see DESIGN.md section 10. They are
  // deliberately conservative round numbers: the modeled plan choices
  // should be robust to run-to-run noise in the measurements.
  switch (SimdLevelActive()) {
    case SimdLevel::kAvx2:
      // Measured (BENCH_primitives.json): filter_bv_i32 16.9x,
      // filter_rid_i32 16.0x, agg_sum_i32 8.6x, agg_sum_i64 2.6x,
      // arith_mul_i32 2.1x, hash_crc32_i64 7.7x, partition_map 1.2x.
      params.simd.filter = 15.0;
      params.simd.agg = 2.5;  // i64 bound: plans mix both widths
      params.simd.arith = 2.0;
      params.simd.hash = 7.5;
      params.simd.partition_map = 1.2;
      // Write-combining scatter with streaming stores
      // (bench_partition_scatter, fan-out >= 64, where the direct
      // scatter's working set of destination lines overflows L1/L2).
      params.simd.partition_scatter = 1.8;
      // 256-bit broadcast fill vs the scalar per-row store loop
      // (bench_encoded_scan; long runs stream at store bandwidth).
      params.simd.rle = 4.0;
      // Vectorized 8-lane block test (bench_join_filter); bounded by
      // the scalar Mix64 chain feeding it.
      params.simd.bloom = 2.0;
      break;
    case SimdLevel::kSse42:
      // SSE4.2 vectorizes 32/64-bit filters (4 lanes) and runs the
      // hardware CRC32 hash loop (the bulk of the 7.7x hash win);
      // agg/arith/partition-map inherit scalar kernels.
      params.simd.filter = 3.0;
      params.simd.hash = 7.5;
      // 128-bit broadcast fill covers only the 4/8-byte widths.
      params.simd.rle = 2.0;
      // 4-way unrolled probe hides the mix-multiply latency.
      params.simd.bloom = 1.5;
      break;
    case SimdLevel::kScalar:
      break;
  }
  return params;
}

}  // namespace rapid::dpu
