// Power model for performance-per-watt comparisons (Figure 14).
//
// Following the paper, perf/watt is computed against CPU power alone:
// the DPU is provisioned at 5.8 W; System X runs on a dual-socket
// Intel Xeon E5-2699 (145 W TDP per socket).

#ifndef RAPID_DPU_POWER_MODEL_H_
#define RAPID_DPU_POWER_MODEL_H_

namespace rapid::dpu {

struct PowerModel {
  double dpu_watts = 5.8;
  double xeon_socket_tdp_watts = 145.0;
  int xeon_sockets = 2;

  double xeon_watts() const { return xeon_socket_tdp_watts * xeon_sockets; }

  // Performance per watt given a throughput metric (queries/s, rows/s).
  static double PerfPerWatt(double throughput, double watts) {
    return throughput / watts;
  }

  // Ratio of (RAPID perf/watt) to (System X perf/watt); the paper
  // reports 10x-25x per query with a 15x average.
  double PerfPerWattRatio(double rapid_throughput,
                          double sysx_throughput) const {
    return PerfPerWatt(rapid_throughput, dpu_watts) /
           PerfPerWatt(sysx_throughput, xeon_watts());
  }
};

}  // namespace rapid::dpu

#endif  // RAPID_DPU_POWER_MODEL_H_
