#include "dpu/work_queue.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "common/logging.h"

namespace rapid::dpu {

namespace {

SchedMode ResolveStartupMode() {
  SchedMode mode = SchedMode::kMorsel;
  const char* requested = "morsel";
  if (const char* env = std::getenv("RAPID_SCHED"); env != nullptr && *env) {
    requested = env;
    if (std::strcmp(env, "static") == 0) {
      mode = SchedMode::kStatic;
    } else if (std::strcmp(env, "morsel") == 0 ||
               std::strcmp(env, "dynamic") == 0) {
      mode = SchedMode::kMorsel;
    } else {
      RAPID_LOG(kWarn,
                "unknown RAPID_SCHED value '%s' "
                "(want static|morsel); using morsel",
                env);
      requested = "morsel";
    }
  }
  RAPID_LOG(kInfo, "scheduling mode %s (RAPID_SCHED=%s)", SchedModeName(mode),
            requested);
  return mode;
}

// -1 encodes "no override"; anything else is a ForceSchedMode pin.
std::atomic<int> g_forced_mode{-1};

}  // namespace

SchedMode SchedModeActive() {
  const int forced = g_forced_mode.load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<SchedMode>(forced);
  static const SchedMode startup = ResolveStartupMode();
  return startup;
}

SchedMode ForceSchedMode(SchedMode mode) {
  const SchedMode previous = SchedModeActive();
  g_forced_mode.store(static_cast<int>(mode), std::memory_order_release);
  return previous;
}

const char* SchedModeName(SchedMode mode) {
  switch (mode) {
    case SchedMode::kStatic:
      return "static";
    case SchedMode::kMorsel:
      return "morsel";
  }
  return "unknown";
}

double BalancedMakespanCycles(double total_cycles,
                              double largest_morsel_cycles, int num_cores) {
  if (num_cores <= 1) return total_cycles;
  const double cores = static_cast<double>(num_cores);
  const double bound =
      total_cycles / cores + largest_morsel_cycles * (cores - 1.0) / cores;
  // A phase can never finish faster than its largest morsel.
  return std::max(bound, largest_morsel_cycles);
}

WorkQueue::WorkQueue(size_t num_morsels, int num_cores, SchedMode mode)
    : WorkQueue(std::vector<double>(num_morsels, 1.0), num_cores, mode) {}

WorkQueue::WorkQueue(std::vector<double> weights, int num_cores,
                     SchedMode mode)
    : num_morsels_(weights.size()),
      num_cores_(num_cores < 1 ? 1 : num_cores),
      mode_(mode),
      // Size the arena for exactly one chunk: the constructor knows
      // every array's extent up front, so the whole queue is one
      // 64-byte-aligned allocation (plus per-array alignment slack).
      arena_((mode == SchedMode::kStatic
                  ? static_cast<size_t>(num_cores < 1 ? 1 : num_cores) *
                        sizeof(size_t)
                  : weights.size() * (2 * sizeof(size_t) + 2 * sizeof(double)) +
                        static_cast<size_t>(num_cores < 1 ? 1 : num_cores) *
                            (4 * sizeof(size_t) + 3 * sizeof(double)) +
                        sizeof(size_t)) +
             8 * Arena::kDefaultAlignment) {
  const auto cores = static_cast<size_t>(num_cores_);
  if (mode_ == SchedMode::kStatic) {
    static_next_ = arena_.AllocateArray<size_t>(cores);
    for (size_t c = 0; c < cores; ++c) static_next_[c] = c;
    return;
  }
  slots_ = arena_.AllocateArray<size_t>(num_morsels_);
  seg_begin_ = arena_.AllocateArray<size_t>(cores + 1);
  head_ = arena_.AllocateArray<size_t>(cores);
  tail_ = arena_.AllocateArray<size_t>(cores);
  weights_ = arena_.AllocateArray<double>(num_morsels_);
  estimated_charge_ = arena_.AllocateArray<double>(num_morsels_);
  remaining_weight_ = arena_.AllocateArray<double>(cores);
  executed_cycles_ = arena_.AllocateArray<double>(cores);
  std::copy(weights.begin(), weights.end(), weights_);
  SeedLpt(weights);
}

void WorkQueue::SeedLpt(const std::vector<double>& weights) {
  const auto cores = static_cast<size_t>(num_cores_);
  for (size_t c = 0; c < cores; ++c) {
    remaining_weight_[c] = 0.0;
    executed_cycles_[c] = 0.0;
  }
  for (size_t m = 0; m < num_morsels_; ++m) estimated_charge_[m] = 0.0;

  // LPT: morsels sorted by weight descending (ties in morsel-id order
  // so the seeding is deterministic), each dealt to the least-loaded
  // core so far. Each core's slot segment ends up sorted
  // largest-first, so owners popping the head run their biggest
  // morsels first and the small tail is what gets stolen.
  std::vector<size_t> order(weights.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return weights[a] > weights[b];
  });
  // Pass 1: deal to the least-loaded core, counting segment sizes.
  std::vector<size_t> target(weights.size());
  std::vector<size_t> count(cores, 0);
  std::vector<double> load(cores, 0.0);
  for (size_t m : order) {
    size_t t = 0;
    for (size_t c = 1; c < cores; ++c) {
      if (load[c] < load[t]) t = c;
    }
    target[m] = t;
    ++count[t];
    load[t] += weights[m];
  }
  // Pass 2: lay the segments out contiguously and fill them in deal
  // order (largest-first within each core).
  seg_begin_[0] = 0;
  for (size_t c = 0; c < cores; ++c) {
    seg_begin_[c + 1] = seg_begin_[c] + count[c];
    head_[c] = seg_begin_[c];
    remaining_weight_[c] = load[c];
  }
  std::vector<size_t> cursor(seg_begin_, seg_begin_ + cores);
  for (size_t m : order) {
    slots_[cursor[target[m]]++] = m;
  }
  for (size_t c = 0; c < cores; ++c) tail_[c] = cursor[c];
}

bool WorkQueue::Next(int core_id, size_t* morsel) {
  const size_t cid =
      static_cast<size_t>(core_id) % static_cast<size_t>(num_cores_);
  if (mode_ == SchedMode::kStatic) {
    // Legacy deterministic striding: core c runs c, c+P, c+2P, ...
    size_t& next = static_next_[cid];
    if (next >= num_morsels_) return false;
    *morsel = next;
    next += static_cast<size_t>(num_cores_);
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const double rate = CyclesPerWeight();
  if (head_[cid] < tail_[cid]) {
    *morsel = slots_[head_[cid]++];
    remaining_weight_[cid] -= weights_[*morsel];
    estimated_charge_[*morsel] = weights_[*morsel] * rate;
    executed_cycles_[cid] += estimated_charge_[*morsel];
    return true;
  }
  // Virtual-time steal: the DPU is simulated, so "who is ahead" is a
  // question of modeled cycles, not host thread wake-up order. Target
  // the victim whose virtual completion time (executed cycles + still
  // queued weight at the observed rate) is largest, and take its
  // smallest tail morsel — but only when this thief would finish that
  // morsel, in virtual time, before the victim's completion. Such a
  // steal strictly lowers the pair's makespan; rejecting everything
  // else keeps the modeled balance independent of host scheduling
  // jitter.
  size_t victim = cid;
  double victim_completion = -1.0;
  for (size_t c = 0; c < static_cast<size_t>(num_cores_); ++c) {
    if (c == cid || head_[c] >= tail_[c]) continue;
    const double completion = executed_cycles_[c] + remaining_weight_[c] * rate;
    if (completion > victim_completion) {
      victim = c;
      victim_completion = completion;
    }
  }
  if (victim == cid) return false;
  const size_t candidate = slots_[tail_[victim] - 1];
  if (executed_cycles_[cid] + weights_[candidate] * rate >= victim_completion) {
    return false;
  }
  *morsel = candidate;
  --tail_[victim];
  remaining_weight_[victim] -= weights_[*morsel];
  estimated_charge_[*morsel] = weights_[*morsel] * rate;
  executed_cycles_[cid] += estimated_charge_[*morsel];
  steals_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

double WorkQueue::CyclesPerWeight() const {
  return charged_weight_ > 0 ? charged_cycles_ / charged_weight_ : 1.0;
}

void WorkQueue::Charge(int core_id, size_t morsel, double cycles) {
  if (mode_ == SchedMode::kStatic) return;
  const size_t cid =
      static_cast<size_t>(core_id) % static_cast<size_t>(num_cores_);
  std::lock_guard<std::mutex> lock(mu_);
  executed_cycles_[cid] += cycles - estimated_charge_[morsel];
  charged_cycles_ += cycles;
  charged_weight_ += weights_[morsel];
}

}  // namespace rapid::dpu
