// DpCore: one of the DPU's 32 data-processing cores (Section 2.1).
// In the simulator a dpCore is an execution context: an id, its
// macro, a real 32 KiB DMEM arena and a cycle counter that the cost
// model charges.

#ifndef RAPID_DPU_DPCORE_H_
#define RAPID_DPU_DPCORE_H_

#include "common/arena.h"
#include "dpu/config.h"
#include "dpu/cost_model.h"
#include "dpu/dmem.h"

namespace rapid::dpu {

// Per-core tallies of the encoded scan path: DMS bytes actually moved
// for RLE-topped columns vs what the plain representation would have
// moved, and predicate evaluations short-circuited at run granularity.
// Summed over cores into ExecutionStats after each fragment.
struct EncodedScanCounters {
  uint64_t encoded_bytes = 0;
  uint64_t plain_bytes = 0;
  uint64_t runs_filtered = 0;

  void Reset() { *this = EncodedScanCounters{}; }
  void Merge(const EncodedScanCounters& other) {
    encoded_bytes += other.encoded_bytes;
    plain_bytes += other.plain_bytes;
    runs_filtered += other.runs_filtered;
  }
};

// Per-core tallies of the join-filter pushdown (RAPID_JOIN_FILTER):
// Bloom filters built from build-side outputs, probe rows the pushed
// filter dropped before partitioning/materialization, and the bytes
// the built filters occupy. Summed into ExecutionStats like the
// encoded-scan counters.
struct JoinFilterCounters {
  uint64_t filters_built = 0;
  uint64_t rows_pruned = 0;
  uint64_t filter_bytes = 0;

  void Reset() { *this = JoinFilterCounters{}; }
  void Merge(const JoinFilterCounters& other) {
    filters_built += other.filters_built;
    rows_pruned += other.rows_pruned;
    filter_bytes += other.filter_bytes;
  }
};

class DpCore {
 public:
  DpCore(int id, const DpuConfig& config)
      : id_(id),
        macro_id_(id / config.cores_per_macro),
        dmem_(config.dmem_bytes),
        pool_(&arena_) {}

  DpCore(const DpCore&) = delete;
  DpCore& operator=(const DpCore&) = delete;

  int id() const { return id_; }
  int macro_id() const { return macro_id_; }

  Dmem& dmem() { return dmem_; }
  CycleCounter& cycles() { return cycles_; }
  const CycleCounter& cycles() const { return cycles_; }
  EncodedScanCounters& encoded_scan() { return encoded_scan_; }
  const EncodedScanCounters& encoded_scan() const { return encoded_scan_; }
  JoinFilterCounters& join_filter() { return join_filter_; }
  const JoinFilterCounters& join_filter() const { return join_filter_; }

  // Tile-local scratch memory. Only the worker currently executing
  // this core's morsel may touch either. The arena is never Reset()
  // while the pool is live (pooled buffers point into it); both
  // persist across queries so warm tiles allocate nothing — which is
  // why Dpu::ResetCores leaves them alone.
  Arena& arena() { return arena_; }
  const Arena& arena() const { return arena_; }
  TileBufferPool& pool() { return pool_; }
  const TileBufferPool& pool() const { return pool_; }

 private:
  int id_;
  int macro_id_;
  Dmem dmem_;
  CycleCounter cycles_;
  EncodedScanCounters encoded_scan_;
  JoinFilterCounters join_filter_;
  Arena arena_;
  TileBufferPool pool_;
};

}  // namespace rapid::dpu

#endif  // RAPID_DPU_DPCORE_H_
