// Calibrated cycle cost model of the RAPID DPU.
//
// The simulator executes real algorithms on real data, but DPU-side
// throughput is *modeled*: each primitive invocation and DMS transfer
// charges cycles to the executing dpCore, and throughput is
// rows / (cycles / 800 MHz). The constants below are calibrated
// against every absolute number the paper reports:
//
//   - filter: 1.65 cycles/tuple => 482 M tuples/s/core     (Section 7.2)
//   - DMS transfer: >= 9 GiB/s at 128-row tiles, ~75% of
//     12.8 GB/s DDR3 peak                                  (Figure 9)
//   - HW partitioning: ~9.3 GiB/s for all strategies       (Figure 8)
//   - SW partitioning: ~948 M rows/s at 32-way fan-out     (Figure 10)
//   - join build: ~46 M rows/s/core at 256-row tiles,
//     +39% from tile 64 -> 1024                            (Figure 11)
//   - join probe: 880 M - 1.35 B rows/s/DPU, +30% from
//     tile 64 -> 1024                                      (Figure 12)
//
// This mirrors the paper's own methodology: RAPID's QComp cost model
// is "analytically modeled on top of data transfer (I/O) and compute
// cost functions considering the potential overlap" and "accurately
// calibrated with micro-benchmarks" (Section 5.2).

#ifndef RAPID_DPU_COST_MODEL_H_
#define RAPID_DPU_COST_MODEL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace rapid::dpu {

struct CostParams {
  double clock_hz = 800e6;

  // ---- DMS / memory system ----
  // DDR3 peak is 16 bytes per 800 MHz cycle (12.8 GB/s).
  double dram_bytes_per_cycle = 16.0;
  // Streaming rate of the DMS partition engine (CMEM staging + CRC +
  // CID resolution + scatter to DMEM): 12.5 B/cy = 9.3 GiB/s.
  double partition_bytes_per_cycle = 12.5;
  // Fixed descriptor-chain configuration cost per tile transfer.
  double dms_tile_setup_cycles = 2.0;
  // Per-column descriptor cost: each column lives on different DRAM
  // pages, so switching columns costs a row-buffer miss.
  double dms_column_switch_cycles = 7.0;
  // Mild contention growth as more DRAM pages stay open concurrently.
  double dms_column_contention_cycles = 0.25;  // * columns^2 per tile
  // Read->write turnaround penalty per tile for rw access patterns.
  double dms_rw_turnaround_cycles = 24.0;
  // Gather/scatter (random row access) is slower than streaming.
  double dms_gather_bytes_per_cycle = 6.0;

  // Per-row cost of the partition-engine front end, by strategy.
  double hw_part_radix_cycles_per_row = 0.00;
  double hw_part_hash_cycles_per_key_row = 0.01;
  double hw_part_range_cycles_per_row = 0.04;

  // ---- dpCore primitives (per row unless noted) ----
  // Dual-issued bvld+filteq loop of Listing 1.
  double filter_cycles_per_row = 1.65;
  // Arithmetic expression evaluation; multiplies stall the low-power
  // multiplier for several cycles.
  double arith_cycles_per_row = 1.0;
  double mult_extra_cycles_per_row = 3.0;
  // CRC32 hash-value generation (single-cycle instruction + load/store).
  double hash_cycles_per_row = 2.0;
  // Aggregation update (sum/min/max/count) per aggregate column.
  double agg_cycles_per_row = 2.0;
  // RLE expansion of an encoded column into the DMEM tile: a per-row
  // broadcast-store charge plus a per-run loop-restart charge (runs
  // dominate on poorly compressed data, rows on well compressed).
  double rle_decode_cycles_per_row = 0.25;
  double rle_decode_cycles_per_run = 4.0;
  // Hash-table group-by update (bucket find + aggregate update).
  double groupby_cycles_per_row = 12.0;
  // Blocked Bloom filter (join-filter pushdown): mix + one 64-byte
  // block touch per row. Insert stores 8 lane bits, probe tests them.
  double bloom_insert_cycles_per_row = 3.0;
  double bloom_probe_cycles_per_row = 3.0;

  // ---- Software partitioning (Listing 2 + Listing 3) ----
  double partition_map_cycles_per_row = 8.0;   // compute_partition_map
  // Legacy gather + sequential-emit column partitioning (Listing 3,
  // kept for the reference path); superseded on the hot path by the
  // write-combining scatter below.
  double swpart_gather_cycles_per_row = 7.0;   // per projection column
  // Per-partition write-combining scatter (streaming stores); the
  // default matches the old gather charge so Default() stays
  // numerically identical to the pre-scatter model.
  double swpart_scatter_cycles_per_row = 7.0;  // per projection column
  double swpart_partition_loop_cycles = 40.0;  // per partition per tile

  // ---- Hash join kernel (Section 6.3) ----
  double join_build_cycles_per_row = 15.7;
  double join_build_tile_setup_cycles = 430.0;
  double join_probe_cycles_per_row = 16.0;
  double join_probe_chain_step_cycles = 4.0;   // per link traversal
  double join_probe_emit_cycles = 3.0;         // per produced match
  double join_probe_tile_setup_cycles = 390.0;
  // Probing the DRAM-resident overflow region costs a DRAM round trip.
  double join_overflow_access_cycles = 60.0;

  // ---- Other operators ----
  double sort_cycles_per_row_per_pass = 8.0;
  double topk_cycles_per_row = 6.0;
  double row_at_a_time_overhead_cycles = 14.0;  // non-vectorized penalty

  // ---- SIMD throughput multipliers ----
  // Rows-per-cycle speedup of each dispatched kernel family relative
  // to its scalar twin (bench_primitives measures these). The paper's
  // dpCores get this effect from the BVLD/FILT/CRC32 vector
  // instructions; on the host simulator the SIMD kernels play that
  // role, so per-row cycle charges divide by the family multiplier.
  // Default() keeps every multiplier at 1.0 — modeled costs stay
  // deterministic and identical to the pre-SIMD model. HostCalibrated()
  // fills them from the active dispatch level (common/simd.h) so QComp
  // task formation and fusion gating see vectorized costs.
  struct SimdThroughput {
    double filter = 1.0;
    double agg = 1.0;
    double arith = 1.0;
    double hash = 1.0;
    double partition_map = 1.0;
    double partition_scatter = 1.0;
    double rle = 1.0;
    double bloom = 1.0;
  };
  SimdThroughput simd;

  // ---- Failure recovery ----
  // Descriptor reprogram + settle time before retrying a failed DMS
  // operation; doubles per attempt (bounded exponential backoff).
  double dms_retry_backoff_cycles = 220.0;
  // Attempts per DMS descriptor (1 initial + retries) before the
  // engine gives up with kRetryExhausted.
  int dms_max_attempts = 4;
  // ATE redelivery attempts before a message is declared lost.
  int ate_max_attempts = 4;

  static const CostParams& Default();

  // Default() with SIMD multipliers filled in for the SIMD level
  // active right now (RAPID_SIMD / ForceSimdLevel). Computed fresh on
  // every call so tests that flip levels observe the change.
  static CostParams HostCalibrated();
};

// Per-core cycle accumulator. Compute and DMS cycles are tracked
// separately because double buffering overlaps them (Section 5.1):
// within a double-buffered task the effective time is the max of the
// two streams, not the sum.
class CycleCounter {
 public:
  void ChargeCompute(double cycles) { compute_cycles_ += cycles; }
  void ChargeDms(double cycles) { dms_cycles_ += cycles; }

  double compute_cycles() const { return compute_cycles_; }
  double dms_cycles() const { return dms_cycles_; }

  // Total modeled cycles. With double buffering the DMS stream hides
  // behind compute (or vice versa); otherwise the streams serialize.
  double EffectiveCycles(bool double_buffered = true) const {
    return double_buffered ? std::max(compute_cycles_, dms_cycles_)
                           : compute_cycles_ + dms_cycles_;
  }

  double EffectiveSeconds(const CostParams& params,
                          bool double_buffered = true) const {
    return EffectiveCycles(double_buffered) / params.clock_hz;
  }

  void Reset() {
    compute_cycles_ = 0;
    dms_cycles_ = 0;
  }

  void Merge(const CycleCounter& other) {
    compute_cycles_ += other.compute_cycles_;
    dms_cycles_ += other.dms_cycles_;
  }

 private:
  double compute_cycles_ = 0;
  double dms_cycles_ = 0;
};

// TraceSpan clock callback for core tracks: a core's virtual time is
// its accumulated compute + DMS cycles, which only grows while the
// core works — giving each dpCore trace track a monotone clock. Pass
// with `&core.cycles()` as the clock argument.
inline double TraceClockNow(const void* counter) {
  const auto* c = static_cast<const CycleCounter*>(counter);
  return c->compute_cycles() + c->dms_cycles();
}

// ---- Cost helper functions -------------------------------------------------
// These compute cycle charges for common events; operators call them
// and feed the result into the core's CycleCounter.

// Streaming DMS transfer of a tile: `columns` columns of
// `rows * width` bytes each, in `read` or read+write mode.
inline double DmsTileTransferCycles(const CostParams& p, int columns,
                                    size_t rows, size_t width_bytes,
                                    bool read_write) {
  const double bytes =
      static_cast<double>(columns) * rows * width_bytes * (read_write ? 2 : 1);
  double cycles = p.dms_tile_setup_cycles +
                  columns * p.dms_column_switch_cycles *
                      (read_write ? 2 : 1) +
                  p.dms_column_contention_cycles * columns * columns +
                  bytes / p.dram_bytes_per_cycle;
  if (read_write) cycles += p.dms_rw_turnaround_cycles;
  return cycles;
}

// DMS gather/scatter of `rows` random rows of `width_bytes`.
inline double DmsGatherCycles(const CostParams& p, size_t rows,
                              size_t width_bytes) {
  return p.dms_tile_setup_cycles +
         static_cast<double>(rows) * width_bytes / p.dms_gather_bytes_per_cycle;
}

enum class HwPartitionStrategy { kRadix, kHash, kRange, kRoundRobin };

// Hardware partitioning of `bytes` of row data with the DMS engine.
inline double HwPartitionCycles(const CostParams& p,
                                HwPartitionStrategy strategy, int num_keys,
                                size_t rows, size_t bytes) {
  double per_row = 0;
  switch (strategy) {
    case HwPartitionStrategy::kRadix:
      per_row = p.hw_part_radix_cycles_per_row;
      break;
    case HwPartitionStrategy::kHash:
      per_row = p.hw_part_hash_cycles_per_key_row * num_keys;
      break;
    case HwPartitionStrategy::kRange:
      per_row = p.hw_part_range_cycles_per_row;
      break;
    case HwPartitionStrategy::kRoundRobin:
      per_row = 0;
      break;
  }
  return static_cast<double>(bytes) / p.partition_bytes_per_cycle +
         per_row * static_cast<double>(rows);
}

// Software partitioning of one tile (Listing 2 + the write-combining
// column scatter). The partition-map loop (bucket mapping +
// histogram) and the scatter both divide by their family multiplier;
// the scatter's comes from the streaming-store path keeping the
// destination lines out of the cache (QComp's fusion and
// partition-round gates see the cheaper scatter through this term).
inline double SwPartitionTileCycles(const CostParams& p, size_t rows,
                                    int columns, int fanout) {
  return p.partition_map_cycles_per_row / p.simd.partition_map * rows +
         p.swpart_scatter_cycles_per_row / p.simd.partition_scatter * rows *
             columns +
         p.swpart_partition_loop_cycles * fanout;
}

// Join build kernel over one tile.
inline double JoinBuildTileCycles(const CostParams& p, size_t rows) {
  return p.join_build_tile_setup_cycles + p.join_build_cycles_per_row * rows;
}

// Join probe kernel over one tile. `chain_steps` is the total number
// of link-array traversals and `matches` the number of emitted rows.
inline double JoinProbeTileCycles(const CostParams& p, size_t rows,
                                  size_t chain_steps, size_t matches) {
  return p.join_probe_tile_setup_cycles + p.join_probe_cycles_per_row * rows +
         p.join_probe_chain_step_cycles * chain_steps +
         p.join_probe_emit_cycles * matches;
}

}  // namespace rapid::dpu

#endif  // RAPID_DPU_COST_MODEL_H_
