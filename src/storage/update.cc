#include "storage/update.h"

#include <algorithm>

namespace rapid::storage {

Status Tracker::ApplyUpdate(uint64_t scn, std::vector<RowChange> changes) {
  if (scn <= latest_scn_) {
    return Status::InvalidArgument(
        "update SCN must be greater than the latest applied SCN");
  }
  for (const RowChange& change : changes) {
    if (change.values.size() != num_columns_) {
      return Status::InvalidArgument("row change has wrong column count");
    }
  }

  const size_t unit_index = units_.size();
  for (const RowChange& change : changes) {
    auto& versions = row_index_[change.row_id];
    if (!versions.empty()) {
      // The previous version of this row expires now.
      UpdateUnit& prev = units_[versions.back()];
      if (prev.expiration_scn == kScnInfinity) prev.expiration_scn = scn;
    }
    versions.push_back(unit_index);
  }
  units_.push_back(UpdateUnit{scn, kScnInfinity, std::move(changes)});
  latest_scn_ = scn;
  return Status::OK();
}

Result<int64_t> Tracker::Resolve(uint64_t query_scn, uint64_t row_id,
                                 size_t column) const {
  auto it = row_index_.find(row_id);
  if (it == row_index_.end()) return Status::NotFound("row never updated");
  // Walk versions newest-first; pick the newest visible at query_scn.
  const auto& versions = it->second;
  for (auto vi = versions.rbegin(); vi != versions.rend(); ++vi) {
    const UpdateUnit& unit = units_[*vi];
    if (unit.scn <= query_scn) {
      for (const RowChange& change : unit.changes) {
        if (change.row_id == row_id) return change.values[column];
      }
    }
  }
  return Status::NotFound("no version visible at this SCN");
}

bool Tracker::HasVersionFor(uint64_t query_scn, uint64_t row_id) const {
  auto it = row_index_.find(row_id);
  if (it == row_index_.end()) return false;
  for (size_t vi : it->second) {
    if (units_[vi].scn <= query_scn) return true;
  }
  return false;
}

size_t Tracker::Vacuum(uint64_t min_active_scn) {
  size_t reclaimed = 0;
  for (auto it = row_index_.begin(); it != row_index_.end();) {
    auto& versions = it->second;
    // A version is dead if it expired at or before min_active_scn.
    auto dead_end = std::stable_partition(
        versions.begin(), versions.end(), [&](size_t vi) {
          return units_[vi].expiration_scn <= min_active_scn;
        });
    reclaimed += static_cast<size_t>(dead_end - versions.begin());
    versions.erase(versions.begin(), dead_end);
    if (versions.empty()) {
      it = row_index_.erase(it);
    } else {
      ++it;
    }
  }
  return reclaimed;
}

}  // namespace rapid::storage
