#include "storage/rle.h"

#include "common/logging.h"

namespace rapid::storage {

RleColumn RleEncode(const int64_t* values, size_t n) {
  RleColumn out;
  out.num_rows = n;
  for (size_t i = 0; i < n;) {
    size_t j = i + 1;
    while (j < n && values[j] == values[i] && j - i < UINT32_MAX) ++j;
    out.runs.push_back(RleRun{values[i], static_cast<uint32_t>(j - i)});
    i = j;
  }
  return out;
}

std::vector<int64_t> RleDecode(const RleColumn& column) {
  std::vector<int64_t> out;
  out.reserve(column.num_rows);
  for (const RleRun& run : column.runs) {
    out.insert(out.end(), run.length, run.value);
  }
  return out;
}

int64_t RleValueAt(const RleColumn& column, size_t row) {
  RAPID_CHECK(row < column.num_rows);
  size_t offset = 0;
  // Linear scan is fine for the short run lists RAPID keeps per
  // 16 KiB vector; switch to prefix sums if vectors grow.
  for (const RleRun& run : column.runs) {
    if (row < offset + run.length) return run.value;
    offset += run.length;
  }
  RAPID_CHECK(false);
}

bool RleIsProfitable(const RleColumn& column, size_t element_width) {
  return column.byte_size() < column.num_rows * element_width;
}

}  // namespace rapid::storage
