#include "storage/loader.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "storage/dsb.h"
#include "storage/encoding_stack.h"

namespace rapid::storage {

namespace {

// One line per LOAD summarizing the encoding pass (format documented
// in README): total RLE vector share, table-level byte reduction, and
// the per-column ratios where RLE actually bit.
void LogEncodingReport(const std::string& name,
                       const std::vector<ColumnEncodingReport>& reports) {
  size_t vectors_total = 0;
  size_t vectors_rle = 0;
  size_t plain_bytes = 0;
  size_t encoded_bytes = 0;
  for (const ColumnEncodingReport& r : reports) {
    vectors_total += r.vectors_total;
    vectors_rle += r.vectors_rle;
    plain_bytes += r.plain_bytes;
    encoded_bytes += r.encoded_bytes;
  }
  const double ratio = encoded_bytes == 0 ? 1.0
                                          : static_cast<double>(plain_bytes) /
                                                static_cast<double>(encoded_bytes);
  if (!LogEnabled(LogLevel::kInfo)) return;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "encodings '%s': %zu/%zu vectors RLE, %zu -> %zu bytes "
                "(x%.2f)",
                name.c_str(), vectors_rle, vectors_total, plain_bytes,
                encoded_bytes, ratio);
  std::string line = buf;
  for (const ColumnEncodingReport& r : reports) {
    if (r.vectors_rle == 0 || r.encoded_bytes == 0) continue;
    std::snprintf(buf, sizeof(buf), " %s=x%.2f", r.column.c_str(),
                  static_cast<double>(r.plain_bytes) /
                      static_cast<double>(r.encoded_bytes));
    line += buf;
  }
  RAPID_LOG(kInfo, "%s", line.c_str());
}

size_t RowCountOf(const ColumnSpec& spec, const ColumnData& data) {
  switch (spec.kind) {
    case ColumnKind::kDecimal:
      return data.decimals.size();
    case ColumnKind::kString:
      return data.strings.size();
    default:
      return data.ints.size();
  }
}

}  // namespace

Result<Table> LoadTable(const std::string& name,
                        const std::vector<ColumnSpec>& specs,
                        const std::vector<ColumnData>& data,
                        const LoadOptions& options) {
  if (specs.empty() || specs.size() != data.size()) {
    return Status::InvalidArgument("specs and data must match and be nonempty");
  }
  const size_t num_rows = RowCountOf(specs[0], data[0]);
  for (size_t c = 0; c < specs.size(); ++c) {
    if (RowCountOf(specs[c], data[c]) != num_rows) {
      return Status::InvalidArgument("column '" + specs[c].name +
                                     "' has mismatched row count");
    }
  }
  if (options.rows_per_chunk == 0 || options.num_partitions == 0) {
    return Status::InvalidArgument("rows_per_chunk and num_partitions > 0");
  }

  std::vector<Field> fields;
  fields.reserve(specs.size());
  for (const ColumnSpec& spec : specs) {
    fields.push_back(Field{spec.name, PhysicalTypeOf(spec.kind)});
  }
  Table table(name, Schema(std::move(fields)));
  table.set_scn(options.scn);

  // Pre-encode decimal columns: per-chunk common scale, column-level
  // max scale recorded in stats for uniform downstream arithmetic.
  // Pre-encode string columns through the table dictionary.
  std::vector<std::vector<int64_t>> encoded(specs.size());
  std::vector<int> column_scale(specs.size(), 0);
  for (size_t c = 0; c < specs.size(); ++c) {
    switch (specs[c].kind) {
      case ColumnKind::kDecimal: {
        const DsbColumn dsb = DsbEncode(data[c].decimals);
        if (!dsb.exceptions.empty()) {
          return Status::NotSupported(
              "base table column '" + specs[c].name +
              "' contains DSB exception values; base loads must be exact");
        }
        encoded[c] = dsb.mantissas;
        column_scale[c] = dsb.scale;
        break;
      }
      case ColumnKind::kString: {
        Dictionary* dict = table.dictionary(c);
        encoded[c].reserve(num_rows);
        for (const std::string& s : data[c].strings) {
          encoded[c].push_back(dict->GetOrInsert(s));
        }
        break;
      }
      default: {
        encoded[c] = data[c].ints;
        break;
      }
    }
  }

  // Slice into chunks and deal them round-robin over partitions,
  // mirroring how LOAD's parallel scan threads fill RAPID nodes.
  std::vector<Partition> partitions(options.num_partitions);
  size_t chunk_index = 0;
  for (size_t start = 0; start < num_rows; start += options.rows_per_chunk) {
    const size_t rows = std::min(options.rows_per_chunk, num_rows - start);
    Chunk chunk(table.schema(), rows);
    for (size_t c = 0; c < specs.size(); ++c) {
      Vector& v = chunk.column(c);
      for (size_t r = 0; r < rows; ++r) {
        v.SetInt(r, encoded[c][start + r]);
      }
      if (specs[c].kind == ColumnKind::kDecimal) {
        v.set_dsb_scale(column_scale[c]);
      }
    }
    partitions[chunk_index % options.num_partitions].AddChunk(
        std::move(chunk));
    ++chunk_index;
  }
  if (num_rows == 0) {
    // An empty table still has its partitions.
  }
  for (auto& p : partitions) table.AddPartition(std::move(p));

  table.set_rows_per_chunk(options.rows_per_chunk);
  table.RecomputeStats();
  for (size_t c = 0; c < specs.size(); ++c) {
    table.stats(c).dsb_scale = column_scale[c];
  }
  // Encoding-selection pass (Section 4.2): tops run-heavy vectors
  // with the chunk-resident RLE transfer representation and records
  // per-column compression ratios for QComp.
  LogEncodingReport(name, BuildTableEncodings(&table));
  return table;
}

Status ApplyRowChange(Table* table, uint64_t row_id,
                      const std::vector<int64_t>& values) {
  if (values.size() != table->schema().num_fields()) {
    return Status::InvalidArgument("row change has wrong column count");
  }
  const size_t rows_per_chunk = table->rows_per_chunk();
  if (rows_per_chunk == 0) {
    return Status::InvalidArgument("table has no load geometry");
  }
  const size_t chunk_index = static_cast<size_t>(row_id) / rows_per_chunk;
  const size_t num_partitions = table->num_partitions();
  const size_t partition = chunk_index % num_partitions;
  const size_t chunk = chunk_index / num_partitions;
  const size_t row = static_cast<size_t>(row_id) % rows_per_chunk;
  if (partition >= table->num_partitions() ||
      chunk >= table->partition(partition).num_chunks() ||
      row >= table->partition(partition).chunk(chunk).num_rows()) {
    return Status::InvalidArgument("row id out of range");
  }
  Chunk& target = table->partition(partition).chunk(chunk);
  for (size_t c = 0; c < values.size(); ++c) {
    target.column(c).SetInt(row, values[c]);
  }
  // The mutated vectors' transfer representations are stale; rebuild
  // them so encoded scans keep reading current data.
  BuildChunkEncodings(&target);
  return Status::OK();
}

}  // namespace rapid::storage
