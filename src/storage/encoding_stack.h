// Encoding stack (Section 4.2): "we apply a stack of encodings on
// each column vector for lightweight compression (e.g., run length
// encoding)".
//
// The analyzer inspects each column vector and selects the cheapest
// representation: the base fixed-width encoding the loader already
// applied (DSB mantissas, dictionary codes, day numbers), optionally
// topped with run-length encoding when it is profitable for that
// vector. Selection is per vector — the same column may be RLE in one
// chunk and plain in another (sorted prefixes compress; random tails
// do not).

#ifndef RAPID_STORAGE_ENCODING_STACK_H_
#define RAPID_STORAGE_ENCODING_STACK_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/encoded_column.h"
#include "storage/rle.h"
#include "storage/table.h"

namespace rapid::storage {

enum class VectorEncoding : uint8_t {
  kPlain,  // flat fixed-width array (the base encoding)
  kRle,    // run-length on top of the base encoding
};

struct VectorEncodingChoice {
  VectorEncoding encoding = VectorEncoding::kPlain;
  size_t plain_bytes = 0;
  size_t encoded_bytes = 0;  // == plain_bytes for kPlain

  double CompressionRatio() const {
    return encoded_bytes == 0
               ? 1.0
               : static_cast<double>(plain_bytes) /
                     static_cast<double>(encoded_bytes);
  }
};

// Chooses the encoding for one vector.
VectorEncodingChoice ChooseEncoding(const Vector& vector);

// Per-column summary across all vectors of a table.
struct ColumnEncodingReport {
  std::string column;
  size_t vectors_total = 0;
  size_t vectors_rle = 0;
  size_t plain_bytes = 0;
  size_t encoded_bytes = 0;
};

// Analyzes every vector of every column (what the loader's encoding-
// selection pass computes; QComp's primitive/encoding selection reads
// this when costing scans).
std::vector<ColumnEncodingReport> AnalyzeTableEncodings(const Table& table);

// Materializes the RLE form of a vector (for vectors where RLE won).
// Splits runs at the vector's native width (no widened row copy).
RleColumn RleFromVector(const Vector& vector);

// Materializes the chunk-resident transfer representation of one
// vector: packed native-width run values + 4-byte lengths. Returns
// null when the encoded form would not move fewer DRAM bytes than the
// plain array (the vector stays plain).
std::unique_ptr<EncodedColumn> EncodeVectorRuns(const Vector& vector);

// (Re)builds the per-column encodings of one chunk. Update paths call
// this after mutating a chunk in place so transfer representations
// never go stale.
void BuildChunkEncodings(Chunk* chunk);

// Runs the loader's encoding-selection pass over a whole table:
// builds every chunk's encodings, stores the per-column compression
// ratio into ColumnStats and returns the per-column report (the
// loader logs it once per LOAD).
std::vector<ColumnEncodingReport> BuildTableEncodings(Table* table);

// ---- Encoded-scan gate -----------------------------------------------------
//
// RAPID_ENCODED_SCAN=off|auto (default auto) decides whether the
// relation accessor ships RLE-topped vectors over the DMS and filters
// on compressed data. Resolved once at startup and logged; tests pin
// it in-process via ForceEncodedScan. Both modes are bit-identical —
// the gate changes bytes moved and modeled cycles, never results.

enum class EncodedScanMode : int { kOff = 0, kAuto = 1 };

// Mode in effect right now: a ForceEncodedScan override if one is
// active, otherwise the startup resolution of RAPID_ENCODED_SCAN.
EncodedScanMode EncodedScanActive();

// Overrides the active mode and returns the previously active mode so
// callers can restore it.
EncodedScanMode ForceEncodedScan(EncodedScanMode mode);

}  // namespace rapid::storage

#endif  // RAPID_STORAGE_ENCODING_STACK_H_
