// Encoding stack (Section 4.2): "we apply a stack of encodings on
// each column vector for lightweight compression (e.g., run length
// encoding)".
//
// The analyzer inspects each column vector and selects the cheapest
// representation: the base fixed-width encoding the loader already
// applied (DSB mantissas, dictionary codes, day numbers), optionally
// topped with run-length encoding when it is profitable for that
// vector. Selection is per vector — the same column may be RLE in one
// chunk and plain in another (sorted prefixes compress; random tails
// do not).

#ifndef RAPID_STORAGE_ENCODING_STACK_H_
#define RAPID_STORAGE_ENCODING_STACK_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/rle.h"
#include "storage/table.h"

namespace rapid::storage {

enum class VectorEncoding : uint8_t {
  kPlain,  // flat fixed-width array (the base encoding)
  kRle,    // run-length on top of the base encoding
};

struct VectorEncodingChoice {
  VectorEncoding encoding = VectorEncoding::kPlain;
  size_t plain_bytes = 0;
  size_t encoded_bytes = 0;  // == plain_bytes for kPlain

  double CompressionRatio() const {
    return encoded_bytes == 0
               ? 1.0
               : static_cast<double>(plain_bytes) /
                     static_cast<double>(encoded_bytes);
  }
};

// Chooses the encoding for one vector.
VectorEncodingChoice ChooseEncoding(const Vector& vector);

// Per-column summary across all vectors of a table.
struct ColumnEncodingReport {
  std::string column;
  size_t vectors_total = 0;
  size_t vectors_rle = 0;
  size_t plain_bytes = 0;
  size_t encoded_bytes = 0;
};

// Analyzes every vector of every column (what the loader's encoding-
// selection pass computes; QComp's primitive/encoding selection reads
// this when costing scans).
std::vector<ColumnEncodingReport> AnalyzeTableEncodings(const Table& table);

// Materializes the RLE form of a vector (for vectors where RLE won).
RleColumn RleFromVector(const Vector& vector);

}  // namespace rapid::storage

#endif  // RAPID_STORAGE_ENCODING_STACK_H_
