// Bulk loading (Section 4.4). The host database's LOAD command scans
// base relations and ships them to RAPID nodes; here the loader takes
// staged columnar data, applies the fixed-width encodings of
// Section 4.2 (DSB for decimals, dictionary for strings, day numbers
// for dates) and lays the table out as partitions -> chunks ->
// vectors.

#ifndef RAPID_STORAGE_LOADER_H_
#define RAPID_STORAGE_LOADER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace rapid::storage {

// Logical column kinds accepted by the loader; each maps to a physical
// fixed-width DataType.
enum class ColumnKind : uint8_t {
  kInt8,
  kInt16,
  kInt32,
  kInt64,
  kDecimal,  // doubles, DSB-encoded
  kDate,     // int32 day numbers
  kString,   // dictionary-encoded
};

struct ColumnSpec {
  std::string name;
  ColumnKind kind = ColumnKind::kInt64;
};

// Staged data for one column; exactly one of the payload vectors is
// populated depending on the kind.
struct ColumnData {
  std::vector<int64_t> ints;        // integer/date kinds
  std::vector<double> decimals;     // kDecimal
  std::vector<std::string> strings; // kString
};

struct LoadOptions {
  size_t rows_per_chunk = 2048;  // 16 KiB vectors at 8-byte width
  size_t num_partitions = 1;     // horizontal partitions (round-robin
                                 // by chunk)
  uint64_t scn = 1;              // SCN the load is consistent as of
};

// Builds a Table from staged columns. All columns must have the same
// row count. Decimal values that cannot be represented exactly at
// scale <= kDsbMaxScale are rejected here (exception values are
// supported by DsbColumn for vector-level processing; base tables are
// required to be exception-free, which holds for all TPC-H data).
Result<Table> LoadTable(const std::string& name,
                        const std::vector<ColumnSpec>& specs,
                        const std::vector<ColumnData>& data,
                        const LoadOptions& options = LoadOptions{});

// Applies one full-row change in place using the table's load
// geometry. `values` are pre-encoded (dict codes, DSB mantissas at
// the column scale, day numbers).
Status ApplyRowChange(Table* table, uint64_t row_id,
                      const std::vector<int64_t>& values);

inline DataType PhysicalTypeOf(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kInt8:
      return DataType::kInt8;
    case ColumnKind::kInt16:
      return DataType::kInt16;
    case ColumnKind::kInt32:
      return DataType::kInt32;
    case ColumnKind::kInt64:
      return DataType::kInt64;
    case ColumnKind::kDecimal:
      return DataType::kDecimal;
    case ColumnKind::kDate:
      return DataType::kDate;
    case ColumnKind::kString:
      return DataType::kDictCode;
  }
  RAPID_CHECK(false);
}

}  // namespace rapid::storage

#endif  // RAPID_STORAGE_LOADER_H_
