#include "storage/table.h"

#include <unordered_set>

namespace rapid::storage {

void Table::RecomputeStats() {
  for (size_t col = 0; col < schema_.num_fields(); ++col) {
    ColumnStats& st = stats_[col];
    bool first = true;
    std::unordered_set<int64_t> distinct;
    for (const Partition& part : partitions_) {
      for (size_t ci = 0; ci < part.num_chunks(); ++ci) {
        const Vector& v = part.chunk(ci).column(col);
        for (size_t row = 0; row < v.size(); ++row) {
          const int64_t value = v.GetInt(row);
          if (first) {
            st.min = st.max = value;
            first = false;
          } else {
            if (value < st.min) st.min = value;
            if (value > st.max) st.max = value;
          }
          distinct.insert(value);
        }
      }
    }
    st.ndv = distinct.size();
    if (first) {
      st.min = st.max = 0;
      st.ndv = 0;
    }
  }
}

}  // namespace rapid::storage
