// Decimal Scaled Binary (DSB) encoding (Section 4.2).
//
// The DPU deliberately lacks floating-point hardware, so decimal
// columns are stored as int64 mantissas with one common scale per
// vector, chosen as the minimum power of ten that clears the decimal
// point in all values. Values that cannot be represented exactly at
// any feasible scale (e.g. 1/3) are stored as *exception values*:
// the slot holds a sentinel and the original double lives in a side
// table keyed by row offset.

#ifndef RAPID_STORAGE_DSB_H_
#define RAPID_STORAGE_DSB_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace rapid::storage {

// Sentinel mantissa marking a row whose value lives in the exception
// table. int64 min never arises from a legal scaled decimal because
// encoding rejects mantissas that would overflow.
inline constexpr int64_t kDsbExceptionSentinel = INT64_MIN;

// Maximum decimal scale the encoder will try before declaring a value
// an exception.
inline constexpr int kDsbMaxScale = 12;

struct DsbColumn {
  // Mantissas; value = mantissa / 10^scale (except sentinel rows).
  std::vector<int64_t> mantissas;
  int scale = 0;
  // Exception values by row offset.
  std::unordered_map<uint32_t, double> exceptions;

  bool IsException(uint32_t row) const {
    return mantissas[row] == kDsbExceptionSentinel;
  }

  double DecodeRow(uint32_t row) const;
};

// Encodes `values` with the minimum common scale. Values needing more
// than kDsbMaxScale digits of fraction, or whose mantissa would
// overflow int64, become exceptions.
DsbColumn DsbEncode(const std::vector<double>& values);

// Decodes every row back to doubles.
std::vector<double> DsbDecode(const DsbColumn& column);

// Rescales an int64 mantissa from `from_scale` to `to_scale`
// (to_scale >= from_scale), for arithmetic across vectors with
// different common scales.
Result<int64_t> DsbRescale(int64_t mantissa, int from_scale, int to_scale);

// 10^exp for exp in [0, 18].
int64_t Pow10(int exp);

}  // namespace rapid::storage

#endif  // RAPID_STORAGE_DSB_H_
