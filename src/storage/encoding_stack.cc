#include "storage/encoding_stack.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace rapid::storage {

RleColumn RleFromVector(const Vector& vector) {
  const size_t n = vector.size();
  // Split runs at the native width; run values widen once per run
  // with the same signedness rules as Vector::GetInt.
  switch (vector.type()) {
    case DataType::kInt8:
      return RleEncodeTyped(vector.Data<int8_t>(), n);
    case DataType::kInt16:
      return RleEncodeTyped(vector.Data<int16_t>(), n);
    case DataType::kInt32:
    case DataType::kDate:
      return RleEncodeTyped(vector.Data<int32_t>(), n);
    case DataType::kDictCode:
      return RleEncodeTyped(vector.Data<uint32_t>(), n);
    case DataType::kInt64:
    case DataType::kDecimal:
      return RleEncodeTyped(vector.Data<int64_t>(), n);
  }
  return RleColumn{};
}

VectorEncodingChoice ChooseEncoding(const Vector& vector) {
  VectorEncodingChoice choice;
  choice.plain_bytes = vector.byte_size();
  choice.encoded_bytes = choice.plain_bytes;
  if (vector.size() == 0) return choice;

  const RleColumn rle = RleFromVector(vector);
  if (RleIsProfitable(rle, vector.width()) &&
      rle.byte_size() < choice.plain_bytes) {
    choice.encoding = VectorEncoding::kRle;
    choice.encoded_bytes = rle.byte_size();
  }
  return choice;
}

std::vector<ColumnEncodingReport> AnalyzeTableEncodings(const Table& table) {
  std::vector<ColumnEncodingReport> reports(table.schema().num_fields());
  for (size_t c = 0; c < reports.size(); ++c) {
    reports[c].column = table.schema().field(c).name;
  }
  for (size_t p = 0; p < table.num_partitions(); ++p) {
    const Partition& part = table.partition(p);
    for (size_t ch = 0; ch < part.num_chunks(); ++ch) {
      const Chunk& chunk = part.chunk(ch);
      for (size_t c = 0; c < chunk.num_columns(); ++c) {
        const VectorEncodingChoice choice = ChooseEncoding(chunk.column(c));
        ColumnEncodingReport& report = reports[c];
        ++report.vectors_total;
        if (choice.encoding == VectorEncoding::kRle) ++report.vectors_rle;
        report.plain_bytes += choice.plain_bytes;
        report.encoded_bytes += choice.encoded_bytes;
      }
    }
  }
  return reports;
}

std::unique_ptr<EncodedColumn> EncodeVectorRuns(const Vector& vector) {
  const size_t n = vector.size();
  if (n == 0) return nullptr;
  const RleColumn rle = RleFromVector(vector);
  const size_t width = vector.width();
  // Profitable at transfer granularity: the DMS would move packed
  // native-width run values plus one 4-byte length per run.
  if (rle.runs.size() * (width + 4) >= n * width) return nullptr;

  auto enc = std::make_unique<EncodedColumn>();
  enc->num_rows = n;
  enc->width = width;
  enc->values.resize(rle.runs.size() * width);
  enc->lengths.reserve(rle.runs.size());
  enc->starts.reserve(rle.runs.size());
  uint32_t row = 0;
  uint8_t* out = enc->values.data();
  for (const RleRun& run : rle.runs) {
    switch (width) {
      case 1: {
        const auto v = static_cast<uint8_t>(run.value);
        std::memcpy(out, &v, 1);
        break;
      }
      case 2: {
        const auto v = static_cast<uint16_t>(run.value);
        std::memcpy(out, &v, 2);
        break;
      }
      case 4: {
        const auto v = static_cast<uint32_t>(run.value);
        std::memcpy(out, &v, 4);
        break;
      }
      default: {
        const auto v = static_cast<uint64_t>(run.value);
        std::memcpy(out, &v, 8);
        break;
      }
    }
    out += width;
    enc->lengths.push_back(run.length);
    enc->starts.push_back(row);
    row += run.length;
  }
  return enc;
}

void BuildChunkEncodings(Chunk* chunk) {
  for (size_t c = 0; c < chunk->num_columns(); ++c) {
    chunk->SetEncoding(c, EncodeVectorRuns(chunk->column(c)));
  }
}

std::vector<ColumnEncodingReport> BuildTableEncodings(Table* table) {
  std::vector<ColumnEncodingReport> reports(table->schema().num_fields());
  for (size_t c = 0; c < reports.size(); ++c) {
    reports[c].column = table->schema().field(c).name;
  }
  for (size_t p = 0; p < table->num_partitions(); ++p) {
    Partition& part = table->partition(p);
    for (size_t ch = 0; ch < part.num_chunks(); ++ch) {
      Chunk& chunk = part.chunk(ch);
      for (size_t c = 0; c < chunk.num_columns(); ++c) {
        std::unique_ptr<EncodedColumn> enc =
            EncodeVectorRuns(chunk.column(c));
        ColumnEncodingReport& report = reports[c];
        ++report.vectors_total;
        report.plain_bytes += chunk.column(c).byte_size();
        if (enc != nullptr) {
          ++report.vectors_rle;
          report.encoded_bytes += enc->encoded_bytes();
        } else {
          report.encoded_bytes += chunk.column(c).byte_size();
        }
        chunk.SetEncoding(c, std::move(enc));
      }
    }
  }
  for (size_t c = 0; c < reports.size(); ++c) {
    const ColumnEncodingReport& r = reports[c];
    table->stats(c).compression_ratio =
        r.encoded_bytes == 0 ? 1.0
                             : static_cast<double>(r.plain_bytes) /
                                   static_cast<double>(r.encoded_bytes);
  }
  return reports;
}

// ---- Encoded-scan gate -----------------------------------------------------

namespace {

// Resolves RAPID_ENCODED_SCAN once and logs the choice (mirrors the
// RAPID_SIMD startup resolution in common/simd.cc).
EncodedScanMode ResolveStartupMode() {
  EncodedScanMode mode = EncodedScanMode::kAuto;
  const char* requested = "auto";
  if (const char* env = std::getenv("RAPID_ENCODED_SCAN");
      env != nullptr && *env) {
    requested = env;
    if (std::strcmp(env, "off") == 0) {
      mode = EncodedScanMode::kOff;
    } else if (std::strcmp(env, "auto") == 0) {
      mode = EncodedScanMode::kAuto;
    } else {
      RAPID_LOG(kWarn,
                "unknown RAPID_ENCODED_SCAN value '%s' "
                "(want off|auto); using auto",
                env);
    }
  }
  RAPID_LOG(kInfo, "encoded scans %s (RAPID_ENCODED_SCAN=%s)",
            mode == EncodedScanMode::kAuto ? "auto" : "off", requested);
  return mode;
}

// -1 encodes "no override"; anything else is a ForceEncodedScan pin.
std::atomic<int> g_forced_mode{-1};

}  // namespace

EncodedScanMode EncodedScanActive() {
  const int forced = g_forced_mode.load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<EncodedScanMode>(forced);
  static const EncodedScanMode startup = ResolveStartupMode();
  return startup;
}

EncodedScanMode ForceEncodedScan(EncodedScanMode mode) {
  const EncodedScanMode previous = EncodedScanActive();
  g_forced_mode.store(static_cast<int>(mode), std::memory_order_release);
  return previous;
}

}  // namespace rapid::storage
