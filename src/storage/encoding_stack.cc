#include "storage/encoding_stack.h"

namespace rapid::storage {

RleColumn RleFromVector(const Vector& vector) {
  std::vector<int64_t> widened(vector.size());
  for (size_t i = 0; i < vector.size(); ++i) widened[i] = vector.GetInt(i);
  return RleEncode(widened.data(), widened.size());
}

VectorEncodingChoice ChooseEncoding(const Vector& vector) {
  VectorEncodingChoice choice;
  choice.plain_bytes = vector.byte_size();
  choice.encoded_bytes = choice.plain_bytes;
  if (vector.size() == 0) return choice;

  const RleColumn rle = RleFromVector(vector);
  if (RleIsProfitable(rle, vector.width()) &&
      rle.byte_size() < choice.plain_bytes) {
    choice.encoding = VectorEncoding::kRle;
    choice.encoded_bytes = rle.byte_size();
  }
  return choice;
}

std::vector<ColumnEncodingReport> AnalyzeTableEncodings(const Table& table) {
  std::vector<ColumnEncodingReport> reports(table.schema().num_fields());
  for (size_t c = 0; c < reports.size(); ++c) {
    reports[c].column = table.schema().field(c).name;
  }
  for (size_t p = 0; p < table.num_partitions(); ++p) {
    const Partition& part = table.partition(p);
    for (size_t ch = 0; ch < part.num_chunks(); ++ch) {
      const Chunk& chunk = part.chunk(ch);
      for (size_t c = 0; c < chunk.num_columns(); ++c) {
        const VectorEncodingChoice choice = ChooseEncoding(chunk.column(c));
        ColumnEncodingReport& report = reports[c];
        ++report.vectors_total;
        if (choice.encoding == VectorEncoding::kRle) ++report.vectors_rle;
        report.plain_bytes += choice.plain_bytes;
        report.encoded_bytes += choice.encoded_bytes;
      }
    }
  }
  return reports;
}

}  // namespace rapid::storage
