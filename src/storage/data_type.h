// Data types and schemas (Section 4.2).
//
// The DPU has no floating-point unit and strict alignment rules, so
// RAPID handles all common SQL types with fixed-width encodings:
// integers, DSB-encoded decimals (int64 mantissa + per-vector scale),
// dates as day numbers, and dictionary codes for strings.

#ifndef RAPID_STORAGE_DATA_TYPE_H_
#define RAPID_STORAGE_DATA_TYPE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace rapid::storage {

enum class DataType : uint8_t {
  kInt8,
  kInt16,
  kInt32,
  kInt64,
  kDecimal,   // DSB: int64 mantissa; scale lives in the vector header
  kDate,      // days since 1970-01-01, int32
  kDictCode,  // dictionary code for a string column, uint32
};

inline size_t WidthOf(DataType type) {
  switch (type) {
    case DataType::kInt8:
      return 1;
    case DataType::kInt16:
      return 2;
    case DataType::kInt32:
    case DataType::kDate:
    case DataType::kDictCode:
      return 4;
    case DataType::kInt64:
    case DataType::kDecimal:
      return 8;
  }
  RAPID_CHECK(false);
}

inline const char* NameOf(DataType type) {
  switch (type) {
    case DataType::kInt8:
      return "int8";
    case DataType::kInt16:
      return "int16";
    case DataType::kInt32:
      return "int32";
    case DataType::kInt64:
      return "int64";
    case DataType::kDecimal:
      return "decimal";
    case DataType::kDate:
      return "date";
    case DataType::kDictCode:
      return "dict";
  }
  return "unknown";
}

struct Field {
  std::string name;
  DataType type = DataType::kInt64;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  // Index of the field named `name`, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == name) return i;
    }
    return Status::NotFound("no column named '" + name + "'");
  }

  size_t RowWidth() const {
    size_t w = 0;
    for (const Field& f : fields_) w += WidthOf(f.type);
    return w;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace rapid::storage

#endif  // RAPID_STORAGE_DATA_TYPE_H_
