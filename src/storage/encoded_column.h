// Chunk-resident RLE topping of a column vector (Section 4.2).
//
// The loader's encoding pass materializes, for every vector where RLE
// wins, a run-split representation next to the plain array: packed
// native-width run values plus 4-byte run lengths. The plain Vector
// stays the backing store (updates, stats, host fallback and random
// access keep using it); the EncodedColumn is the *transfer*
// representation — the relation accessor programs DMS descriptors
// over these bytes instead of the flat array, so a scan moves
// `encoded_bytes()` over the DRAM interface instead of
// `num_rows * width`.

#ifndef RAPID_STORAGE_ENCODED_COLUMN_H_
#define RAPID_STORAGE_ENCODED_COLUMN_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rapid::storage {

struct EncodedColumn {
  // num_runs * width bytes: each run's value at the column's native
  // width, back to back (what the DMS streams).
  std::vector<uint8_t> values;
  // Per-run repeat counts; sums to num_rows.
  std::vector<uint32_t> lengths;
  // Per-run start rows (exclusive prefix sum of lengths). Host-side
  // descriptor-programming metadata only — never transferred.
  std::vector<uint32_t> starts;
  size_t num_rows = 0;
  size_t width = 0;

  size_t num_runs() const { return lengths.size(); }

  // DRAM bytes a full-vector scan moves: run values + run lengths.
  size_t encoded_bytes() const { return values.size() + lengths.size() * 4; }

  // Index of the run whose span covers `row`.
  size_t RunIndexOf(size_t row) const {
    auto it = std::upper_bound(starts.begin(), starts.end(),
                               static_cast<uint32_t>(row));
    return static_cast<size_t>(it - starts.begin()) - 1;
  }
};

}  // namespace rapid::storage

#endif  // RAPID_STORAGE_ENCODED_COLUMN_H_
