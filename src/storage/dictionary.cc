#include "storage/dictionary.h"

#include <algorithm>
#include <cstddef>

#include "common/logging.h"

namespace rapid::storage {

uint32_t Dictionary::GetOrInsert(std::string_view value) {
  auto it = code_of_.find(std::string(value));
  if (it != code_of_.end()) return it->second;
  const auto code = static_cast<uint32_t>(values_.size());
  values_.emplace_back(value);
  code_of_.emplace(values_.back(), code);
  // Keep the sorted index up to date with a positional insert.
  const size_t pos = LowerBound(value);
  sorted_.insert(sorted_.begin() + static_cast<ptrdiff_t>(pos), code);
  return code;
}

Result<uint32_t> Dictionary::Lookup(std::string_view value) const {
  auto it = code_of_.find(std::string(value));
  if (it == code_of_.end()) {
    return Status::NotFound("value not in dictionary");
  }
  return it->second;
}

const std::string& Dictionary::Decode(uint32_t code) const {
  RAPID_CHECK(code < values_.size());
  return values_[code];
}

size_t Dictionary::LowerBound(std::string_view key) const {
  size_t lo = 0;
  size_t hi = sorted_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (std::string_view(values_[sorted_[mid]]) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

BitVector Dictionary::RangeLookup(std::string_view lo, bool has_lo,
                                  std::string_view hi, bool has_hi) const {
  BitVector out(values_.size());
  const size_t begin = has_lo ? LowerBound(lo) : 0;
  for (size_t i = begin; i < sorted_.size(); ++i) {
    const std::string& v = values_[sorted_[i]];
    if (has_hi && std::string_view(v) > hi) break;
    out.Set(sorted_[i]);
  }
  return out;
}

BitVector Dictionary::PrefixLookup(std::string_view prefix) const {
  BitVector out(values_.size());
  for (size_t i = LowerBound(prefix); i < sorted_.size(); ++i) {
    const std::string& v = values_[sorted_[i]];
    if (v.compare(0, prefix.size(), prefix) != 0) break;
    out.Set(sorted_[i]);
  }
  return out;
}

bool Dictionary::IsOrderPreserving() const {
  for (size_t i = 0; i < sorted_.size(); ++i) {
    if (sorted_[i] != i) return false;
  }
  return true;
}

}  // namespace rapid::storage
