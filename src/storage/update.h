// Update units and the tracker (Section 4.3).
//
// RAPID supports periodic updates to loaded base relations. Changes
// are tracked per update unit (UU): a set of changed rows tagged with
// the SCN at which they become visible and the SCN at which they
// expire (because a newer version supersedes them). The tracker
// resolves, for a query SCN, the valid version of every row so query
// processing and update propagation can proceed concurrently.

#ifndef RAPID_STORAGE_UPDATE_H_
#define RAPID_STORAGE_UPDATE_H_

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace rapid::storage {

inline constexpr uint64_t kScnInfinity = std::numeric_limits<uint64_t>::max();

// One changed row: full new row image (fixed-width values per column).
struct RowChange {
  uint64_t row_id = 0;            // global row number within the table
  std::vector<int64_t> values;    // one per column, widened to int64
};

// A set of changes that became visible atomically at `scn`.
struct UpdateUnit {
  uint64_t scn = 0;
  uint64_t expiration_scn = kScnInfinity;  // set when superseded
  std::vector<RowChange> changes;
};

// Tracks update units for one table and resolves row versions by SCN.
class Tracker {
 public:
  explicit Tracker(size_t num_columns) : num_columns_(num_columns) {}

  // Applies a batch of changes visible from `scn` on. Marks the
  // previous version of each touched row as expiring at `scn`.
  Status ApplyUpdate(uint64_t scn, std::vector<RowChange> changes);

  // Value of (row, column) visible to a query running at `query_scn`,
  // or NotFound if the row was never updated (caller falls back to the
  // base vector).
  Result<int64_t> Resolve(uint64_t query_scn, uint64_t row_id,
                          size_t column) const;

  // True if some update with scn <= query_scn touched `row_id`.
  bool HasVersionFor(uint64_t query_scn, uint64_t row_id) const;

  // Drops versions no longer visible to any query at or after
  // `min_active_scn`; returns the number of row versions reclaimed.
  // (Section 4.3: accumulated updates occupy memory via outdated
  // vectors; this is the garbage collection step.)
  size_t Vacuum(uint64_t min_active_scn);

  size_t num_units() const { return units_.size(); }
  uint64_t latest_scn() const { return latest_scn_; }

 private:
  size_t num_columns_;
  uint64_t latest_scn_ = 0;
  std::vector<UpdateUnit> units_;
  // row_id -> indices into units_ (ascending SCN) that touch the row.
  std::map<uint64_t, std::vector<size_t>> row_index_;
};

}  // namespace rapid::storage

#endif  // RAPID_STORAGE_UPDATE_H_
