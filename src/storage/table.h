// Storage organization of relations (Section 4.1, Figure 3):
//
//   Table -> horizontal Partitions -> Chunks (horizontal slices)
//         -> per-column Vectors (flat arrays, 16 KiB sweet spot)
//
// Operators consume data in tiles of 64+ rows served out of vectors.

#ifndef RAPID_STORAGE_TABLE_H_
#define RAPID_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/data_type.h"
#include "storage/dictionary.h"
#include "storage/encoded_column.h"
#include "storage/vector.h"

namespace rapid::storage {

// Per-column statistics used by QComp and the offload planner.
struct ColumnStats {
  int64_t min = 0;
  int64_t max = 0;
  uint64_t ndv = 0;  // number of distinct values
  // For kDecimal columns: the maximum DSB scale over all vectors of
  // the column. Tiles are rescaled to this scale when read, so
  // arithmetic across chunks operates on a uniform scale.
  int dsb_scale = 0;
  // plain bytes / encoded bytes across all vectors of the column
  // (>= 1; 1.0 when every vector stays plain). Set by the loader's
  // encoding pass; QComp's scan costing and DMEM budgeting read it.
  double compression_ratio = 1.0;
};

// A horizontal slice of a table; one Vector per column, all with the
// same row count.
class Chunk {
 public:
  Chunk(const Schema& schema, size_t capacity) {
    columns_.reserve(schema.num_fields());
    for (const Field& f : schema.fields()) {
      columns_.emplace_back(f.type, capacity);
    }
  }

  Chunk(Chunk&&) = default;
  Chunk& operator=(Chunk&&) = default;

  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t num_columns() const { return columns_.size(); }

  Vector& column(size_t i) { return columns_[i]; }
  const Vector& column(size_t i) const { return columns_[i]; }

  // RLE topping selected per vector by the encoding stack (null when
  // the vector stays plain). The plain Vector remains the backing
  // store; the encoding is the DMS-transfer representation. Any
  // in-place mutation of a column must rebuild or clear its encoding
  // (BuildChunkEncodings) — the update paths do.
  const EncodedColumn* encoding(size_t i) const {
    return i < encodings_.size() ? encodings_[i].get() : nullptr;
  }
  void SetEncoding(size_t i, std::unique_ptr<EncodedColumn> encoding) {
    if (encodings_.size() < columns_.size()) encodings_.resize(columns_.size());
    encodings_[i] = std::move(encoding);
  }
  void ClearEncodings() { encodings_.clear(); }

 private:
  std::vector<Vector> columns_;
  std::vector<std::unique_ptr<EncodedColumn>> encodings_;
};

// A horizontal partition: an ordered list of chunks.
class Partition {
 public:
  Partition() = default;
  Partition(Partition&&) = default;
  Partition& operator=(Partition&&) = default;

  void AddChunk(Chunk chunk) { chunks_.push_back(std::move(chunk)); }

  size_t num_chunks() const { return chunks_.size(); }
  Chunk& chunk(size_t i) { return chunks_[i]; }
  const Chunk& chunk(size_t i) const { return chunks_[i]; }

  size_t num_rows() const {
    size_t n = 0;
    for (const Chunk& c : chunks_) n += c.num_rows();
    return n;
  }

 private:
  std::vector<Chunk> chunks_;
};

class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {
    dictionaries_.resize(schema_.num_fields());
    for (size_t i = 0; i < schema_.num_fields(); ++i) {
      if (schema_.field(i).type == DataType::kDictCode) {
        dictionaries_[i] = std::make_unique<Dictionary>();
      }
    }
    stats_.resize(schema_.num_fields());
  }

  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  void AddPartition(Partition partition) {
    partitions_.push_back(std::move(partition));
  }
  size_t num_partitions() const { return partitions_.size(); }
  Partition& partition(size_t i) { return partitions_[i]; }
  const Partition& partition(size_t i) const { return partitions_[i]; }

  size_t num_rows() const {
    size_t n = 0;
    for (const Partition& p : partitions_) n += p.num_rows();
    return n;
  }

  // Dictionary of a string column (null for non-dictionary columns).
  Dictionary* dictionary(size_t col) { return dictionaries_[col].get(); }
  const Dictionary* dictionary(size_t col) const {
    return dictionaries_[col].get();
  }

  ColumnStats& stats(size_t col) { return stats_[col]; }
  const ColumnStats& stats(size_t col) const { return stats_[col]; }

  // Recomputes min/max/ndv for all columns (exact; tables here are
  // memory resident).
  void RecomputeStats();

  // SCN as of which this table's content is current (Section 3.3).
  uint64_t scn() const { return scn_; }
  void set_scn(uint64_t scn) { scn_ = scn; }

  // Load geometry (set by the loader): chunks are dealt round-robin
  // over partitions, so a global row number maps to
  //   chunk_index = row / rows_per_chunk
  //   partition   = chunk_index % num_partitions
  //   chunk       = chunk_index / num_partitions
  //   row_in_chunk= row % rows_per_chunk
  size_t rows_per_chunk() const { return rows_per_chunk_; }
  void set_rows_per_chunk(size_t n) { rows_per_chunk_ = n; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Partition> partitions_;
  std::vector<std::unique_ptr<Dictionary>> dictionaries_;
  std::vector<ColumnStats> stats_;
  uint64_t scn_ = 0;
  size_t rows_per_chunk_ = 0;
};

}  // namespace rapid::storage

#endif  // RAPID_STORAGE_TABLE_H_
