// Dictionary encoding for fixed- and variable-length strings
// (Section 4.2). The dictionary supports updates (new values can be
// appended after initial load) and range/prefix lookups so that range
// and LIKE-prefix predicates can be evaluated directly on codes.
//
// Codes are assigned in insertion order (stable across updates); a
// sorted index over the values supports order-based lookups. A range
// or prefix query therefore yields a *set* of qualifying codes,
// returned as a bitmap over the code space — the filter primitives
// then test membership per row.

#ifndef RAPID_STORAGE_DICTIONARY_H_
#define RAPID_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"

namespace rapid::storage {

class Dictionary {
 public:
  Dictionary() = default;

  // Returns the code for `value`, inserting it if absent.
  uint32_t GetOrInsert(std::string_view value);

  // Returns the code for `value` or NotFound.
  Result<uint32_t> Lookup(std::string_view value) const;

  const std::string& Decode(uint32_t code) const;

  size_t size() const { return values_.size(); }

  // Bitmap over codes: bit c set iff lo <= values_[c] <= hi
  // (inclusive bounds; empty string for an unbounded side is expressed
  // via the `has_*` flags).
  BitVector RangeLookup(std::string_view lo, bool has_lo, std::string_view hi,
                        bool has_hi) const;

  // Bitmap over codes whose value starts with `prefix` (LIKE 'p%').
  BitVector PrefixLookup(std::string_view prefix) const;

  // True if codes currently compare in value order (no out-of-order
  // appends since load); order-preserving dictionaries let range
  // predicates compile to simple code comparisons.
  bool IsOrderPreserving() const;

 private:
  // Index of the first entry in sorted order whose value is >= `key`.
  size_t LowerBound(std::string_view key) const;

  std::vector<std::string> values_;              // by code
  std::unordered_map<std::string, uint32_t> code_of_;
  std::vector<uint32_t> sorted_;                 // codes sorted by value
};

}  // namespace rapid::storage

#endif  // RAPID_STORAGE_DICTIONARY_H_
