// Vector: a flat, fixed-width array of one column's data inside a
// chunk (Section 4.1). The DPU sweet spot is 16 KiB per vector, which
// enables double buffering of DMS transfers.

#ifndef RAPID_STORAGE_VECTOR_H_
#define RAPID_STORAGE_VECTOR_H_

#include <cstdint>
#include <cstring>

#include "common/buffer.h"
#include "common/logging.h"
#include "storage/data_type.h"

namespace rapid::storage {

class Vector {
 public:
  Vector() : type_(DataType::kInt64), size_(0), capacity_(0), dsb_scale_(0) {}

  Vector(DataType type, size_t capacity)
      : type_(type),
        size_(0),
        capacity_(capacity),
        dsb_scale_(0),
        buffer_(capacity * WidthOf(type)) {}

  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;
  Vector(const Vector&) = delete;
  Vector& operator=(const Vector&) = delete;

  // Deep copy, for update-unit versioning.
  Vector Clone() const {
    Vector out(type_, capacity_);
    out.size_ = size_;
    out.dsb_scale_ = dsb_scale_;
    std::memcpy(out.buffer_.data(), buffer_.data(), size_ * width());
    return out;
  }

  DataType type() const { return type_; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  size_t width() const { return WidthOf(type_); }
  size_t byte_size() const { return size_ * width(); }

  // Common decimal scale of a DSB-encoded vector (power of 10).
  int dsb_scale() const { return dsb_scale_; }
  void set_dsb_scale(int scale) { dsb_scale_ = scale; }

  uint8_t* raw() { return buffer_.data(); }
  const uint8_t* raw() const { return buffer_.data(); }

  template <typename T>
  T* Data() {
    RAPID_DCHECK(sizeof(T) == width());
    return buffer_.as<T>();
  }
  template <typename T>
  const T* Data() const {
    RAPID_DCHECK(sizeof(T) == width());
    return buffer_.as<const T>();
  }

  // Generic accessors that widen to int64 regardless of the physical
  // width; used by row-oriented paths (host DB, tests).
  int64_t GetInt(size_t row) const {
    RAPID_DCHECK(row < size_);
    switch (type_) {
      case DataType::kInt8:
        return buffer_.as<const int8_t>()[row];
      case DataType::kInt16:
        return buffer_.as<const int16_t>()[row];
      case DataType::kInt32:
      case DataType::kDate:
        return buffer_.as<const int32_t>()[row];
      case DataType::kDictCode:
        return buffer_.as<const uint32_t>()[row];
      case DataType::kInt64:
      case DataType::kDecimal:
        return buffer_.as<const int64_t>()[row];
    }
    RAPID_CHECK(false);
  }

  void SetInt(size_t row, int64_t value) {
    RAPID_DCHECK(row < capacity_);
    switch (type_) {
      case DataType::kInt8:
        buffer_.as<int8_t>()[row] = static_cast<int8_t>(value);
        break;
      case DataType::kInt16:
        buffer_.as<int16_t>()[row] = static_cast<int16_t>(value);
        break;
      case DataType::kInt32:
      case DataType::kDate:
        buffer_.as<int32_t>()[row] = static_cast<int32_t>(value);
        break;
      case DataType::kDictCode:
        buffer_.as<uint32_t>()[row] = static_cast<uint32_t>(value);
        break;
      case DataType::kInt64:
      case DataType::kDecimal:
        buffer_.as<int64_t>()[row] = value;
        break;
    }
    if (row >= size_) size_ = row + 1;
  }

  void Append(int64_t value) { SetInt(size_, value); }

  void set_size(size_t size) {
    RAPID_DCHECK(size <= capacity_);
    size_ = size;
  }

 private:
  DataType type_;
  size_t size_;
  size_t capacity_;
  int dsb_scale_;
  AlignedBuffer buffer_;
};

}  // namespace rapid::storage

#endif  // RAPID_STORAGE_VECTOR_H_
