#include "storage/dsb.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace rapid::storage {

int64_t Pow10(int exp) {
  RAPID_CHECK(exp >= 0 && exp <= 18);
  static constexpr int64_t kPowers[] = {1,
                                        10,
                                        100,
                                        1000,
                                        10000,
                                        100000,
                                        1000000,
                                        10000000,
                                        100000000,
                                        1000000000,
                                        10000000000,
                                        100000000000,
                                        1000000000000,
                                        10000000000000,
                                        100000000000000,
                                        1000000000000000,
                                        10000000000000000,
                                        100000000000000000,
                                        1000000000000000000};
  return kPowers[exp];
}

namespace {

// Tries to represent `v` exactly as mantissa * 10^-scale for the
// smallest scale <= kDsbMaxScale. Returns false for exceptions.
bool FindExactScale(double v, int* scale, int64_t* mantissa) {
  for (int s = 0; s <= kDsbMaxScale; ++s) {
    const double scaled = v * static_cast<double>(Pow10(s));
    if (std::abs(scaled) >= 9.0e18) return false;  // would overflow int64
    const double rounded = std::nearbyint(scaled);
    // Exact representation: scaling back reproduces the input bit-for-bit.
    if (rounded / static_cast<double>(Pow10(s)) == v) {
      const int64_t m = static_cast<int64_t>(rounded);
      if (m == kDsbExceptionSentinel) return false;
      *scale = s;
      *mantissa = m;
      return true;
    }
  }
  return false;
}

}  // namespace

double DsbColumn::DecodeRow(uint32_t row) const {
  if (IsException(row)) {
    auto it = exceptions.find(row);
    RAPID_CHECK(it != exceptions.end());
    return it->second;
  }
  return static_cast<double>(mantissas[row]) /
         static_cast<double>(Pow10(scale));
}

DsbColumn DsbEncode(const std::vector<double>& values) {
  DsbColumn column;
  column.mantissas.resize(values.size());

  // Pass 1: find the common scale (minimum avoiding the decimal point
  // in all non-exception values) and mark exceptions.
  std::vector<int> scales(values.size(), -1);
  std::vector<int64_t> mantissas(values.size(), 0);
  int common_scale = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    int s;
    int64_t m;
    if (FindExactScale(values[i], &s, &m)) {
      scales[i] = s;
      mantissas[i] = m;
      if (s > common_scale) common_scale = s;
    }
  }
  column.scale = common_scale;

  // Pass 2: rescale every value to the common scale. Values whose
  // mantissa overflows at the common scale also become exceptions.
  for (size_t i = 0; i < values.size(); ++i) {
    const auto row = static_cast<uint32_t>(i);
    if (scales[i] < 0) {
      column.mantissas[i] = kDsbExceptionSentinel;
      column.exceptions[row] = values[i];
      continue;
    }
    auto rescaled = DsbRescale(mantissas[i], scales[i], common_scale);
    if (!rescaled.ok()) {
      column.mantissas[i] = kDsbExceptionSentinel;
      column.exceptions[row] = values[i];
      continue;
    }
    column.mantissas[i] = rescaled.value();
  }
  return column;
}

std::vector<double> DsbDecode(const DsbColumn& column) {
  std::vector<double> out(column.mantissas.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = column.DecodeRow(static_cast<uint32_t>(i));
  }
  return out;
}

Result<int64_t> DsbRescale(int64_t mantissa, int from_scale, int to_scale) {
  if (to_scale < from_scale) {
    return Status::InvalidArgument("DSB rescale must not lose precision");
  }
  const int diff = to_scale - from_scale;
  if (diff > 18) return Status::CapacityExceeded("DSB rescale overflow");
  const int64_t factor = Pow10(diff);
  if (mantissa > 0 && mantissa > std::numeric_limits<int64_t>::max() / factor) {
    return Status::CapacityExceeded("DSB rescale overflow");
  }
  if (mantissa < 0 && mantissa < std::numeric_limits<int64_t>::min() / factor) {
    return Status::CapacityExceeded("DSB rescale overflow");
  }
  return mantissa * factor;
}

}  // namespace rapid::storage
