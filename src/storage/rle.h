// Run-length encoding, one of the lightweight compressions RAPID
// stacks on column vectors (Section 4.2).

#ifndef RAPID_STORAGE_RLE_H_
#define RAPID_STORAGE_RLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rapid::storage {

struct RleRun {
  int64_t value;
  uint32_t length;
};

struct RleColumn {
  std::vector<RleRun> runs;
  size_t num_rows = 0;

  // Compressed size in bytes (12 bytes per run).
  size_t byte_size() const { return runs.size() * (sizeof(int64_t) + 4); }
};

RleColumn RleEncode(const int64_t* values, size_t n);
std::vector<int64_t> RleDecode(const RleColumn& column);

// Random access into the compressed form (binary search over runs).
int64_t RleValueAt(const RleColumn& column, size_t row);

// True if RLE actually compresses (fewer bytes than the flat array);
// the encoding-stack selector uses this.
bool RleIsProfitable(const RleColumn& column, size_t element_width);

}  // namespace rapid::storage

#endif  // RAPID_STORAGE_RLE_H_
