// Run-length encoding, one of the lightweight compressions RAPID
// stacks on column vectors (Section 4.2).

#ifndef RAPID_STORAGE_RLE_H_
#define RAPID_STORAGE_RLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rapid::storage {

struct RleRun {
  int64_t value;
  uint32_t length;
};

struct RleColumn {
  std::vector<RleRun> runs;
  size_t num_rows = 0;

  // Compressed size in bytes (12 bytes per run).
  size_t byte_size() const { return runs.size() * (sizeof(int64_t) + 4); }
};

RleColumn RleEncode(const int64_t* values, size_t n);
std::vector<int64_t> RleDecode(const RleColumn& column);

// Typed encode: splits runs at the column's native width without
// first widening every row into an int64 copy (run values widen once,
// per run). Bit-identical to RleEncode over the widened array.
template <typename T>
RleColumn RleEncodeTyped(const T* values, size_t n) {
  RleColumn out;
  out.num_rows = n;
  for (size_t i = 0; i < n;) {
    size_t j = i + 1;
    while (j < n && values[j] == values[i] && j - i < UINT32_MAX) ++j;
    out.runs.push_back(
        RleRun{static_cast<int64_t>(values[i]), static_cast<uint32_t>(j - i)});
    i = j;
  }
  return out;
}

// Typed decode into a caller-provided buffer of column.num_rows
// elements at the column's native width. Callers on the scan path
// lease the buffer from a TileBufferPool instead of growing a heap
// vector per decode.
template <typename T>
void RleDecode(const RleColumn& column, T* out) {
  for (const RleRun& run : column.runs) {
    const T value = static_cast<T>(run.value);
    for (uint32_t i = 0; i < run.length; ++i) *out++ = value;
  }
}

// Random access into the compressed form (binary search over runs).
int64_t RleValueAt(const RleColumn& column, size_t row);

// True if RLE actually compresses (fewer bytes than the flat array);
// the encoding-stack selector uses this.
bool RleIsProfitable(const RleColumn& column, size_t element_width);

}  // namespace rapid::storage

#endif  // RAPID_STORAGE_RLE_H_
