#include "core/qef/column_set.h"

#include "storage/dsb.h"

namespace rapid::core {

double ColumnSet::Decimal(size_t row, size_t col) const {
  return static_cast<double>(columns_[col][row]) /
         static_cast<double>(storage::Pow10(meta_[col].dsb_scale));
}

}  // namespace rapid::core
