// RelationAccessor (Section 5.1, "Relational Data Access Model").
//
// Operators declare *what* they need (which columns, what access
// pattern); the RA programs the DMS descriptor loops, double-buffers
// DMEM tiles and pushes them into the operator pipeline, hiding all
// DMS complexity. Supported patterns: sequential, gather (by RID
// list), and partitioned (in combination with the partition operator).

#ifndef RAPID_CORE_QEF_RELATION_ACCESSOR_H_
#define RAPID_CORE_QEF_RELATION_ACCESSOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/qef/column_set.h"
#include "core/qef/exec_ctx.h"
#include "core/qef/operator.h"
#include "storage/table.h"

namespace rapid::core {

class RelationAccessor {
 public:
  // Sequential access over base-table chunks: transfers each tile's
  // column slices into DMEM via the DMS (double-buffered), rescales
  // decimal vectors to the column-level DSB scale, and pushes tiles
  // into `op`. `chunks` is this core's share of the relation.
  // `column_indices`/`target_scales` select and normalize columns.
  static Status PushChunks(ExecCtx& ctx,
                           const std::vector<const storage::Chunk*>& chunks,
                           const std::vector<size_t>& column_indices,
                           const std::vector<int>& target_scales,
                           size_t tile_rows, PipelineOp* op);

  // Sequential access over a DRAM-resident intermediate (rows
  // [row_begin, row_end) of `set`), tile by tile.
  static Status PushColumnSet(ExecCtx& ctx, const ColumnSet& set,
                              const std::vector<size_t>& column_indices,
                              size_t row_begin, size_t row_end,
                              size_t tile_rows, PipelineOp* op);

  // DMEM bytes the accessor itself needs for input tile buffers
  // (double-buffered: 2x per column), used by task formation.
  static size_t InputDmemBytes(const std::vector<size_t>& widths,
                               size_t tile_rows) {
    size_t bytes = 0;
    for (size_t w : widths) bytes += 2 * w * tile_rows;
    return bytes;
  }
};

}  // namespace rapid::core

#endif  // RAPID_CORE_QEF_RELATION_ACCESSOR_H_
