// PipelineOp: the RAPID operator interface (Section 5.4).
//
// The paper's operators implement op_dmem_size, op_dram_size, create,
// open, produce and close; execution is push-based (Section 5.1).
// Here that maps to:
//   DmemBytes()  <- op_dmem_size: DMEM the operator needs at a given
//                   tile size; task formation packs operators into
//                   tasks under the 32 KiB budget using this.
//   Open()       <- create/open: allocate DMEM state.
//   Consume()    <- produce: data is *pushed* in, tile by tile.
//   Finish()     <- close/end-of-data: flush retained state downstream.
//
// Operators within a task pipeline tiles to each other through DMEM by
// calling downstream_->Consume directly; only task-boundary operators
// materialize to DRAM.

#ifndef RAPID_CORE_QEF_OPERATOR_H_
#define RAPID_CORE_QEF_OPERATOR_H_

#include <cstddef>

#include "common/status.h"
#include "core/qef/exec_ctx.h"
#include "core/qef/tile.h"

namespace rapid::core {

class PipelineOp {
 public:
  virtual ~PipelineOp() = default;

  // DMEM bytes this operator needs for internal state and output
  // vectors at the given tile size (excluding its input vectors, which
  // the upstream producer accounts for).
  virtual size_t DmemBytes(size_t tile_rows) const = 0;

  virtual Status Open(ExecCtx& ctx) = 0;
  virtual Status Consume(ExecCtx& ctx, const Tile& tile) = 0;
  virtual Status Finish(ExecCtx& ctx) = 0;

  void set_downstream(PipelineOp* downstream) { downstream_ = downstream; }
  PipelineOp* downstream() const { return downstream_; }

 protected:
  // Pushes a tile down the pipeline; Finish() propagates too.
  Status Push(ExecCtx& ctx, const Tile& tile) {
    return downstream_ != nullptr ? downstream_->Consume(ctx, tile)
                                  : Status::OK();
  }
  Status PushFinish(ExecCtx& ctx) {
    return downstream_ != nullptr ? downstream_->Finish(ctx) : Status::OK();
  }

  PipelineOp* downstream_ = nullptr;
};

}  // namespace rapid::core

#endif  // RAPID_CORE_QEF_OPERATOR_H_
