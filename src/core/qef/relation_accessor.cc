#include "core/qef/relation_accessor.h"

#include <algorithm>
#include <cstring>

#include "common/trace.h"
#include "dpu/cost_model.h"
#include "primitives/arith.h"
#include "primitives/simd.h"
#include "storage/encoding_stack.h"

namespace rapid::core {

namespace {

// Largest number of runs any tile_rows-aligned window of the chunk
// overlaps: the double-buffered staging region must hold one tile's
// worth of runs, so the accessor pre-scans the run starts (host-side
// metadata) before sizing it.
size_t MaxRunsPerTile(const storage::EncodedColumn& enc, size_t tile_rows) {
  size_t max_runs = 1;
  size_t first = 0;
  for (size_t start = 0; start < enc.num_rows; start += tile_rows) {
    const uint32_t end =
        static_cast<uint32_t>(std::min(start + tile_rows, enc.num_rows));
    while (first + 1 < enc.starts.size() && enc.starts[first + 1] <= start) {
      ++first;
    }
    size_t last = first;
    while (last + 1 < enc.starts.size() && enc.starts[last + 1] < end) ++last;
    max_runs = std::max(max_runs, last - first + 1);
  }
  return max_runs;
}

// Expands staged runs into the tile buffer with the dispatched kernel
// for the element width. Expansion is pure byte replication, so the
// unsigned table serves both signednesses bit-identically.
void ExpandRuns(const uint8_t* run_values, const uint32_t* run_lengths,
                size_t num_runs, size_t width, uint8_t* out) {
  using primitives::simd::rle_kernels;
  switch (width) {
    case 1:
      rle_kernels<uint8_t>().expand(run_values, run_lengths, num_runs, out);
      break;
    case 2:
      rle_kernels<uint16_t>().expand(
          reinterpret_cast<const uint16_t*>(run_values), run_lengths, num_runs,
          reinterpret_cast<uint16_t*>(out));
      break;
    case 4:
      rle_kernels<uint32_t>().expand(
          reinterpret_cast<const uint32_t*>(run_values), run_lengths, num_runs,
          reinterpret_cast<uint32_t*>(out));
      break;
    default:
      rle_kernels<uint64_t>().expand(
          reinterpret_cast<const uint64_t*>(run_values), run_lengths, num_runs,
          reinterpret_cast<uint64_t*>(out));
      break;
  }
}

// One column's staged run window within the in-flight tile transfer.
struct StagedRuns {
  size_t col = 0;
  const storage::EncodedColumn* enc = nullptr;
  size_t first = 0;   // index of the first staged run
  size_t runs = 0;    // staged run count
  uint8_t* values = nullptr;
  uint32_t* lengths = nullptr;
};

}  // namespace

Status RelationAccessor::PushChunks(
    ExecCtx& ctx, const std::vector<const storage::Chunk*>& chunks,
    const std::vector<size_t>& column_indices,
    const std::vector<int>& target_scales, size_t tile_rows, PipelineOp* op) {
  if (column_indices.empty()) {
    return Status::InvalidArgument("accessor needs at least one column");
  }
  if (chunks.empty()) return op->Finish(ctx);

  const bool encoded_enabled =
      storage::EncodedScanActive() == storage::EncodedScanMode::kAuto;

  // Allocate double-buffered DMEM tile buffers once per column. The
  // encoded path expands into the same buffers, so operators see
  // identical tiles either way.
  std::vector<uint8_t*> buffers(column_indices.size());
  for (size_t c = 0; c < column_indices.size(); ++c) {
    const storage::Vector& proto =
        chunks[0]->column(column_indices[c]);
    // Two buffers per column for double buffering; tiles alternate.
    RAPID_ASSIGN_OR_RETURN(buffers[c],
                           ctx.dmem().Allocate(2 * tile_rows * proto.width()));
  }

  // Encoded staging: per RLE-topped column, a double-buffered region
  // the DMS fills with the tile's run lengths (first half) and packed
  // run values (second half) before expansion. Sized for the densest
  // tile across this core's chunks; a column whose staging does not
  // fit the remaining DMEM budget just stays on the plain path
  // (bit-identical, only more bytes moved).
  std::vector<uint8_t*> staging(column_indices.size(), nullptr);
  std::vector<size_t> staging_runs(column_indices.size(), 0);
  if (encoded_enabled) {
    for (size_t c = 0; c < column_indices.size(); ++c) {
      size_t max_runs = 0;
      for (const storage::Chunk* chunk : chunks) {
        const storage::EncodedColumn* enc =
            chunk->encoding(column_indices[c]);
        if (enc == nullptr) continue;
        max_runs = std::max(max_runs, MaxRunsPerTile(*enc, tile_rows));
      }
      if (max_runs == 0) continue;
      const size_t width = chunks[0]->column(column_indices[c]).width();
      const size_t bytes = 2 * max_runs * (width + sizeof(uint32_t));
      if (bytes > ctx.dmem().free_bytes()) continue;
      Result<uint8_t*> staged = ctx.dmem().Allocate(bytes);
      if (!staged.ok()) continue;  // injected exhaustion: plain fallback
      staging[c] = staged.value();
      staging_runs[c] = max_runs;
    }
  }

  uint64_t base_row = 0;
  size_t parity = 0;
  std::vector<size_t> run_cursor(column_indices.size(), 0);
  for (const storage::Chunk* chunk : chunks) {
    const size_t chunk_rows = chunk->num_rows();
    std::fill(run_cursor.begin(), run_cursor.end(), 0);
    for (size_t start = 0; start < chunk_rows; start += tile_rows) {
      RAPID_RETURN_NOT_OK(ctx.CheckCancel());
      const size_t rows = std::min(tile_rows, chunk_rows - start);
      TraceSpan tile_span(TraceMode::kFull, ctx.core->id(), "scan.tile",
                          &dpu::TraceClockNow, &ctx.cycles());

      // One DMS descriptor chain transfers all column slices of the
      // tile; double buffering alternates halves of each buffer.
      // RLE-topped columns ship their run window (lengths + packed
      // values) instead of the expanded slice, so the chain's byte
      // charge drops by the column's compression ratio.
      std::vector<dpu::ColumnSlice> slices;
      std::vector<StagedRuns> staged_cols;
      Tile tile;
      tile.rows = rows;
      tile.base_row = base_row;
      tile.columns.resize(column_indices.size());
      for (size_t c = 0; c < column_indices.size(); ++c) {
        const storage::Vector& vec = chunk->column(column_indices[c]);
        const size_t width = vec.width();
        uint8_t* dst = buffers[c] + parity * tile_rows * width;
        tile.columns[c].data = dst;
        tile.columns[c].type = vec.type();
        tile.columns[c].dsb_scale = vec.dsb_scale();
        const storage::EncodedColumn* enc =
            staging[c] != nullptr ? chunk->encoding(column_indices[c])
                                  : nullptr;
        if (enc != nullptr) {
          // Advance the monotone run cursor to the first run covering
          // `start`, then extend to the last run before the tile end.
          size_t& first = run_cursor[c];
          while (first + 1 < enc->starts.size() &&
                 enc->starts[first + 1] <= start) {
            ++first;
          }
          size_t last = first;
          const uint32_t end = static_cast<uint32_t>(start + rows);
          while (last + 1 < enc->starts.size() &&
                 enc->starts[last + 1] < end) {
            ++last;
          }
          const size_t runs = last - first + 1;
          if (runs <= staging_runs[c]) {
            uint8_t* lengths_dst =
                staging[c] + parity * staging_runs[c] * sizeof(uint32_t);
            uint8_t* values_dst = staging[c] +
                                  2 * staging_runs[c] * sizeof(uint32_t) +
                                  parity * staging_runs[c] * width;
            slices.push_back(dpu::ColumnSlice{
                reinterpret_cast<const uint8_t*>(enc->lengths.data() + first),
                lengths_dst, runs * sizeof(uint32_t)});
            slices.push_back(dpu::ColumnSlice{
                enc->values.data() + first * width, values_dst, runs * width});
            staged_cols.push_back(
                StagedRuns{c, enc, first, runs, values_dst,
                           reinterpret_cast<uint32_t*>(lengths_dst)});
            ctx.core->encoded_scan().encoded_bytes +=
                runs * (width + sizeof(uint32_t));
            ctx.core->encoded_scan().plain_bytes += rows * width;
            continue;
          }
        }
        slices.push_back(dpu::ColumnSlice{vec.raw() + start * width, dst,
                                          rows * width});
      }
      if (tile_span.active()) {
        // Encoded-vs-plain accounting: `bytes_moved` is what the DMS
        // chain actually ships (run windows for RLE-topped columns),
        // `plain_bytes` what the same tile costs with encoding off.
        uint64_t moved = 0;
        for (const dpu::ColumnSlice& s : slices) moved += s.bytes;
        uint64_t plain = 0;
        for (size_t c = 0; c < column_indices.size(); ++c) {
          plain += rows * chunk->column(column_indices[c]).width();
        }
        tile_span.Annotate("rows", static_cast<uint64_t>(rows));
        tile_span.Annotate("encoded_cols",
                           static_cast<int64_t>(staged_cols.size()));
        tile_span.Annotate("bytes_moved", moved);
        tile_span.Annotate("plain_bytes", plain);
      }
      RAPID_RETURN_NOT_OK(
          ctx.dms->TransferTile(&ctx.cycles(), slices, /*read_write=*/false));

      // Clip each staged run window to the tile (skip the rows of the
      // first run before `start`, truncate the last run at the tile
      // end), rescale decimal run values to the column-level scale,
      // then expand into the tile buffer with the dispatched kernel.
      for (const StagedRuns& s : staged_cols) {
        TileColumn& col = tile.columns[s.col];
        const size_t width = col.width();
        s.lengths[0] -= static_cast<uint32_t>(start) - s.enc->starts[s.first];
        uint32_t remaining = static_cast<uint32_t>(rows);
        for (size_t r = 0; r < s.runs; ++r) {
          const uint32_t clipped = std::min(s.lengths[r], remaining);
          s.lengths[r] = clipped;
          remaining -= clipped;
        }
        if (col.type == storage::DataType::kDecimal &&
            col.dsb_scale != target_scales[s.col]) {
          // Rescaling the run values before expansion keeps the
          // expanded tile and the run metadata consistent, and charges
          // arithmetic per run instead of per row.
          primitives::DsbRescaleTile(reinterpret_cast<int64_t*>(s.values),
                                     s.runs, col.dsb_scale,
                                     target_scales[s.col]);
          ctx.ChargeCompute(ctx.params->arith_cycles_per_row *
                            static_cast<double>(s.runs));
          col.dsb_scale = target_scales[s.col];
        }
        ExpandRuns(s.values, s.lengths, s.runs, width, col.data);
        ctx.ChargeCompute(
            ctx.params->rle_decode_cycles_per_row / ctx.params->simd.rle *
                static_cast<double>(rows) +
            ctx.params->rle_decode_cycles_per_run *
                static_cast<double>(s.runs));
        col.run_values = s.values;
        col.run_lengths = s.lengths;
        col.num_runs = static_cast<uint32_t>(s.runs);
      }

      // Normalize decimal vectors with differing per-vector common
      // scales to the column-level scale before operators see them.
      for (size_t c = 0; c < column_indices.size(); ++c) {
        TileColumn& col = tile.columns[c];
        if (col.type == storage::DataType::kDecimal &&
            col.dsb_scale != target_scales[c]) {
          primitives::DsbRescaleTile(reinterpret_cast<int64_t*>(col.data),
                                     rows, col.dsb_scale, target_scales[c]);
          ctx.ChargeCompute(ctx.params->arith_cycles_per_row *
                            static_cast<double>(rows));
          col.dsb_scale = target_scales[c];
        }
      }

      RAPID_RETURN_NOT_OK(op->Consume(ctx, tile));
      parity ^= 1;
      base_row += rows;
    }
  }
  return op->Finish(ctx);
}

Status RelationAccessor::PushColumnSet(ExecCtx& ctx, const ColumnSet& set,
                                       const std::vector<size_t>& column_indices,
                                       size_t row_begin, size_t row_end,
                                       size_t tile_rows, PipelineOp* op) {
  if (column_indices.empty()) {
    return Status::InvalidArgument("accessor needs at least one column");
  }
  row_end = std::min(row_end, set.num_rows());
  if (row_begin >= row_end) return op->Finish(ctx);

  std::vector<uint8_t*> buffers(column_indices.size());
  for (size_t c = 0; c < column_indices.size(); ++c) {
    RAPID_ASSIGN_OR_RETURN(
        buffers[c], ctx.dmem().Allocate(2 * tile_rows * sizeof(int64_t)));
  }

  size_t parity = 0;
  for (size_t start = row_begin; start < row_end; start += tile_rows) {
    RAPID_RETURN_NOT_OK(ctx.CheckCancel());
    const size_t rows = std::min(tile_rows, row_end - start);
    std::vector<dpu::ColumnSlice> slices;
    Tile tile;
    tile.rows = rows;
    tile.base_row = start - row_begin;
    tile.columns.resize(column_indices.size());
    for (size_t c = 0; c < column_indices.size(); ++c) {
      const std::vector<int64_t>& col = set.column(column_indices[c]);
      uint8_t* dst = buffers[c] + parity * tile_rows * sizeof(int64_t);
      slices.push_back(dpu::ColumnSlice{
          reinterpret_cast<const uint8_t*>(col.data() + start), dst,
          rows * sizeof(int64_t)});
      const ColumnMeta& meta = set.meta(column_indices[c]);
      tile.columns[c].data = dst;
      // Intermediates are widened to 8 bytes regardless of logical
      // type; expose them as int64/decimal so widths match the data.
      tile.columns[c].type = meta.type == storage::DataType::kDecimal
                                 ? storage::DataType::kDecimal
                                 : storage::DataType::kInt64;
      tile.columns[c].dsb_scale = meta.dsb_scale;
    }
    RAPID_RETURN_NOT_OK(
        ctx.dms->TransferTile(&ctx.cycles(), slices, /*read_write=*/false));
    RAPID_RETURN_NOT_OK(op->Consume(ctx, tile));
    parity ^= 1;
  }
  return op->Finish(ctx);
}

}  // namespace rapid::core
