#include "core/qef/relation_accessor.h"

#include <algorithm>
#include <cstring>

#include "primitives/arith.h"

namespace rapid::core {

Status RelationAccessor::PushChunks(
    ExecCtx& ctx, const std::vector<const storage::Chunk*>& chunks,
    const std::vector<size_t>& column_indices,
    const std::vector<int>& target_scales, size_t tile_rows, PipelineOp* op) {
  if (column_indices.empty()) {
    return Status::InvalidArgument("accessor needs at least one column");
  }
  if (chunks.empty()) return op->Finish(ctx);

  // Allocate double-buffered DMEM tile buffers once per column.
  std::vector<uint8_t*> buffers(column_indices.size());
  for (size_t c = 0; c < column_indices.size(); ++c) {
    const storage::Vector& proto =
        chunks[0]->column(column_indices[c]);
    // Two buffers per column for double buffering; tiles alternate.
    RAPID_ASSIGN_OR_RETURN(buffers[c],
                           ctx.dmem().Allocate(2 * tile_rows * proto.width()));
  }

  uint64_t base_row = 0;
  size_t parity = 0;
  for (const storage::Chunk* chunk : chunks) {
    const size_t chunk_rows = chunk->num_rows();
    for (size_t start = 0; start < chunk_rows; start += tile_rows) {
      RAPID_RETURN_NOT_OK(ctx.CheckCancel());
      const size_t rows = std::min(tile_rows, chunk_rows - start);

      // One DMS descriptor chain transfers all column slices of the
      // tile; double buffering alternates halves of each buffer.
      std::vector<dpu::ColumnSlice> slices;
      Tile tile;
      tile.rows = rows;
      tile.base_row = base_row;
      tile.columns.resize(column_indices.size());
      for (size_t c = 0; c < column_indices.size(); ++c) {
        const storage::Vector& vec = chunk->column(column_indices[c]);
        const size_t width = vec.width();
        uint8_t* dst = buffers[c] + parity * tile_rows * width;
        slices.push_back(dpu::ColumnSlice{vec.raw() + start * width, dst,
                                          rows * width});
        tile.columns[c].data = dst;
        tile.columns[c].type = vec.type();
        tile.columns[c].dsb_scale = vec.dsb_scale();
      }
      RAPID_RETURN_NOT_OK(
          ctx.dms->TransferTile(&ctx.cycles(), slices, /*read_write=*/false));

      // Normalize decimal vectors with differing per-vector common
      // scales to the column-level scale before operators see them.
      for (size_t c = 0; c < column_indices.size(); ++c) {
        TileColumn& col = tile.columns[c];
        if (col.type == storage::DataType::kDecimal &&
            col.dsb_scale != target_scales[c]) {
          primitives::DsbRescaleTile(reinterpret_cast<int64_t*>(col.data),
                                     rows, col.dsb_scale, target_scales[c]);
          ctx.ChargeCompute(ctx.params->arith_cycles_per_row *
                            static_cast<double>(rows));
          col.dsb_scale = target_scales[c];
        }
      }

      RAPID_RETURN_NOT_OK(op->Consume(ctx, tile));
      parity ^= 1;
      base_row += rows;
    }
  }
  return op->Finish(ctx);
}

Status RelationAccessor::PushColumnSet(ExecCtx& ctx, const ColumnSet& set,
                                       const std::vector<size_t>& column_indices,
                                       size_t row_begin, size_t row_end,
                                       size_t tile_rows, PipelineOp* op) {
  if (column_indices.empty()) {
    return Status::InvalidArgument("accessor needs at least one column");
  }
  row_end = std::min(row_end, set.num_rows());
  if (row_begin >= row_end) return op->Finish(ctx);

  std::vector<uint8_t*> buffers(column_indices.size());
  for (size_t c = 0; c < column_indices.size(); ++c) {
    RAPID_ASSIGN_OR_RETURN(
        buffers[c], ctx.dmem().Allocate(2 * tile_rows * sizeof(int64_t)));
  }

  size_t parity = 0;
  for (size_t start = row_begin; start < row_end; start += tile_rows) {
    RAPID_RETURN_NOT_OK(ctx.CheckCancel());
    const size_t rows = std::min(tile_rows, row_end - start);
    std::vector<dpu::ColumnSlice> slices;
    Tile tile;
    tile.rows = rows;
    tile.base_row = start - row_begin;
    tile.columns.resize(column_indices.size());
    for (size_t c = 0; c < column_indices.size(); ++c) {
      const std::vector<int64_t>& col = set.column(column_indices[c]);
      uint8_t* dst = buffers[c] + parity * tile_rows * sizeof(int64_t);
      slices.push_back(dpu::ColumnSlice{
          reinterpret_cast<const uint8_t*>(col.data() + start), dst,
          rows * sizeof(int64_t)});
      const ColumnMeta& meta = set.meta(column_indices[c]);
      tile.columns[c].data = dst;
      // Intermediates are widened to 8 bytes regardless of logical
      // type; expose them as int64/decimal so widths match the data.
      tile.columns[c].type = meta.type == storage::DataType::kDecimal
                                 ? storage::DataType::kDecimal
                                 : storage::DataType::kInt64;
      tile.columns[c].dsb_scale = meta.dsb_scale;
    }
    RAPID_RETURN_NOT_OK(
        ctx.dms->TransferTile(&ctx.cycles(), slices, /*read_write=*/false));
    RAPID_RETURN_NOT_OK(op->Consume(ctx, tile));
    parity ^= 1;
  }
  return op->Finish(ctx);
}

}  // namespace rapid::core
