// ExecCtx: per-core execution context handed to operators. Bundles
// the dpCore (DMEM arena + cycle counter), the DMS and the cost
// parameters. One ExecCtx exists per core per task execution.

#ifndef RAPID_CORE_QEF_EXEC_CTX_H_
#define RAPID_CORE_QEF_EXEC_CTX_H_

#include "common/cancel.h"
#include "common/status.h"
#include "dpu/cost_model.h"
#include "dpu/dms.h"
#include "dpu/dpcore.h"

namespace rapid::core {

struct ExecCtx {
  dpu::DpCore* core = nullptr;
  dpu::Dms* dms = nullptr;
  const dpu::CostParams* params = nullptr;

  // Vectorized execution toggle (Figure 13 ablation). When false,
  // operators charge the row-at-a-time interpretation overhead.
  bool vectorized = true;

  // Query-level cancellation token (may be null). Operators poll it at
  // tile boundaries so a cancelled query unwinds within one tile round
  // rather than running to completion.
  const CancelToken* cancel = nullptr;

  Status CheckCancel() const { return CancelToken::Check(cancel); }

  dpu::Dmem& dmem() { return core->dmem(); }
  dpu::CycleCounter& cycles() { return core->cycles(); }

  // Tile-local buffer pool of the executing core; recycles scratch
  // buffers across tiles and queries (see common/arena.h).
  TileBufferPool& pool() { return core->pool(); }

  void ChargeCompute(double cycles) { core->cycles().ChargeCompute(cycles); }
  void ChargeDms(double cycles) { core->cycles().ChargeDms(cycles); }

  // Row-at-a-time penalty applied by operators when vectorization is
  // disabled: per-row primitive call/setup overhead that batching
  // amortizes away.
  void ChargeVectorizationPenalty(size_t rows) {
    if (!vectorized) {
      core->cycles().ChargeCompute(params->row_at_a_time_overhead_cycles *
                                   static_cast<double>(rows));
    }
  }
};

}  // namespace rapid::core

#endif  // RAPID_CORE_QEF_EXEC_CTX_H_
