// ColumnSet: a DRAM-resident materialized intermediate result.
//
// Task boundaries materialize to DRAM (Section 5.2); a ColumnSet is
// what a task writes and the next task's relation accessor reads.
// Values are widened to int64 (intermediates in RAPID are fixed-width;
// we keep one width for simplicity and track the logical type and DSB
// scale per column for correct downstream interpretation).

#ifndef RAPID_CORE_QEF_COLUMN_SET_H_
#define RAPID_CORE_QEF_COLUMN_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "storage/data_type.h"
#include "storage/dictionary.h"

namespace rapid::core {

struct ColumnMeta {
  std::string name;
  storage::DataType type = storage::DataType::kInt64;
  int dsb_scale = 0;
  // Dictionary of the source column when the values are dictionary
  // codes (propagated through plans so results can decode to strings);
  // null otherwise. Not owned.
  const storage::Dictionary* dict = nullptr;
};

class ColumnSet {
 public:
  ColumnSet() = default;
  explicit ColumnSet(std::vector<ColumnMeta> meta)
      : meta_(std::move(meta)), columns_(meta_.size()) {}

  size_t num_columns() const { return meta_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  const ColumnMeta& meta(size_t c) const { return meta_[c]; }
  ColumnMeta& meta(size_t c) { return meta_[c]; }
  const std::vector<ColumnMeta>& metas() const { return meta_; }

  std::vector<int64_t>& column(size_t c) { return columns_[c]; }
  const std::vector<int64_t>& column(size_t c) const { return columns_[c]; }

  void AppendRow(const std::vector<int64_t>& values) {
    RAPID_DCHECK(values.size() == columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].push_back(values[c]);
    }
  }

  // Appends all rows of `other` (schemas must match positionally).
  void Append(const ColumnSet& other) {
    RAPID_DCHECK(other.num_columns() == num_columns());
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].insert(columns_[c].end(), other.columns_[c].begin(),
                         other.columns_[c].end());
    }
  }

  int64_t Value(size_t row, size_t col) const { return columns_[col][row]; }

  // Decodes a decimal column value to double using its DSB scale.
  double Decimal(size_t row, size_t col) const;

  Result<size_t> IndexOf(const std::string& name) const {
    for (size_t c = 0; c < meta_.size(); ++c) {
      if (meta_[c].name == name) return c;
    }
    return Status::NotFound("no column named '" + name + "'");
  }

 private:
  std::vector<ColumnMeta> meta_;
  std::vector<std::vector<int64_t>> columns_;
};

}  // namespace rapid::core

#endif  // RAPID_CORE_QEF_COLUMN_SET_H_
