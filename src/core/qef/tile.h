// Tile: the unit of transfer between the relation accessor and
// operators (Section 4.1): N >= 64 rows of one or more columns,
// resident in DMEM during processing. All rows of a tile are consumed
// at once by vectorized execution (Section 5.4).

#ifndef RAPID_CORE_QEF_TILE_H_
#define RAPID_CORE_QEF_TILE_H_

#include <cstdint>
#include <vector>

#include "storage/data_type.h"

namespace rapid::core {

struct TileColumn {
  uint8_t* data = nullptr;          // DMEM pointer
  storage::DataType type = storage::DataType::kInt64;
  int dsb_scale = 0;                // for kDecimal columns

  // Run metadata of the encoded scan path: when the accessor expanded
  // this tile from DMS-staged RLE runs it leaves the staged (value,
  // length) arrays visible so predicates can evaluate once per run and
  // emit whole bit-vector spans. `run_values` holds num_runs packed
  // native-width values; the lengths sum to exactly the tile's rows.
  // Zero num_runs means plain data (the common case).
  const uint8_t* run_values = nullptr;  // DMEM pointer (staging buffer)
  const uint32_t* run_lengths = nullptr;
  uint32_t num_runs = 0;

  size_t width() const { return storage::WidthOf(type); }

  int64_t GetInt(size_t row) const {
    using storage::DataType;
    switch (type) {
      case DataType::kInt8:
        return reinterpret_cast<const int8_t*>(data)[row];
      case DataType::kInt16:
        return reinterpret_cast<const int16_t*>(data)[row];
      case DataType::kInt32:
      case DataType::kDate:
        return reinterpret_cast<const int32_t*>(data)[row];
      case DataType::kDictCode:
        return reinterpret_cast<const uint32_t*>(data)[row];
      case DataType::kInt64:
      case DataType::kDecimal:
        return reinterpret_cast<const int64_t*>(data)[row];
    }
    return 0;
  }
};

// Widening bulk copy: dst[i] = (int64) column[rids ? rids[i] : i],
// dispatching on the physical type once instead of per row.
inline void WidenColumn(const TileColumn& col, const uint32_t* rids,
                        size_t n, int64_t* dst) {
  using storage::DataType;
  switch (col.type) {
    case DataType::kInt8: {
      const auto* src = reinterpret_cast<const int8_t*>(col.data);
      for (size_t i = 0; i < n; ++i) dst[i] = src[rids ? rids[i] : i];
      break;
    }
    case DataType::kInt16: {
      const auto* src = reinterpret_cast<const int16_t*>(col.data);
      for (size_t i = 0; i < n; ++i) dst[i] = src[rids ? rids[i] : i];
      break;
    }
    case DataType::kInt32:
    case DataType::kDate: {
      const auto* src = reinterpret_cast<const int32_t*>(col.data);
      for (size_t i = 0; i < n; ++i) dst[i] = src[rids ? rids[i] : i];
      break;
    }
    case DataType::kDictCode: {
      const auto* src = reinterpret_cast<const uint32_t*>(col.data);
      for (size_t i = 0; i < n; ++i) dst[i] = src[rids ? rids[i] : i];
      break;
    }
    case DataType::kInt64:
    case DataType::kDecimal: {
      const auto* src = reinterpret_cast<const int64_t*>(col.data);
      for (size_t i = 0; i < n; ++i) dst[i] = src[rids ? rids[i] : i];
      break;
    }
  }
}

struct Tile {
  size_t rows = 0;
  std::vector<TileColumn> columns;
  // Global row number of the tile's first row within its input, so
  // operators can form RIDs/row ids spanning the whole relation.
  uint64_t base_row = 0;
};

}  // namespace rapid::core

#endif  // RAPID_CORE_QEF_TILE_H_
