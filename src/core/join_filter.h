// Runtime gate of the join-filter pushdown (sideways information
// passing): RAPID_JOIN_FILTER=off|auto, default auto. The gate is
// consulted only at *runtime* — the planner attaches filter references
// and the fusion pass shapes pipelines identically in both modes, so
// toggling the gate never changes plan shape, DMEM allocation counts
// or fault-poll ordinals; it only decides whether the referenced
// filter is actually built and evaluated.

#ifndef RAPID_CORE_JOIN_FILTER_H_
#define RAPID_CORE_JOIN_FILTER_H_

namespace rapid::core {

enum class JoinFilterMode { kOff = 0, kAuto = 1 };

// Active mode: a ForceJoinFilter override if set, else the
// RAPID_JOIN_FILTER startup value (resolved once, logged to stderr).
JoinFilterMode JoinFilterActive();

// Test hook: pins the mode for the process and returns the previous
// active mode so tests can restore it.
JoinFilterMode ForceJoinFilter(JoinFilterMode mode);

}  // namespace rapid::core

#endif  // RAPID_CORE_JOIN_FILTER_H_
