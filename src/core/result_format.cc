#include "core/result_format.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "storage/dsb.h"

namespace rapid::core {

namespace {

// Inverse of tpch::DaysFromCivil (Howard Hinnant's civil_from_days).
void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const auto doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t year = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(year + (*m <= 2));
}

}  // namespace

std::string FormatCell(const ColumnSet& set, size_t row, size_t col) {
  const ColumnMeta& meta = set.meta(col);
  const int64_t value = set.Value(row, col);

  if (meta.dict != nullptr && value >= 0 &&
      static_cast<size_t>(value) < meta.dict->size()) {
    return meta.dict->Decode(static_cast<uint32_t>(value));
  }
  if (meta.type == storage::DataType::kDecimal || meta.dsb_scale > 0) {
    const int scale = meta.dsb_scale;
    const int64_t p = storage::Pow10(scale);
    const int64_t whole = value / p;
    int64_t frac = value % p;
    if (frac < 0) frac = -frac;
    char buf[64];
    if (scale == 0) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    } else {
      std::snprintf(buf, sizeof(buf), "%s%lld.%0*lld",
                    (value < 0 && whole == 0) ? "-" : "",
                    static_cast<long long>(whole), scale,
                    static_cast<long long>(frac));
    }
    return buf;
  }
  if (meta.type == storage::DataType::kDate) {
    int y;
    unsigned m;
    unsigned d;
    CivilFromDays(value, &y, &m, &d);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", y, m, d);
    return buf;
  }
  return std::to_string(value);
}

std::string FormatTable(const ColumnSet& set, size_t max_rows) {
  const size_t rows = std::min(max_rows, set.num_rows());
  const size_t cols = set.num_columns();
  std::vector<std::vector<std::string>> cells(rows + 1,
                                              std::vector<std::string>(cols));
  std::vector<size_t> widths(cols, 0);
  for (size_t c = 0; c < cols; ++c) {
    cells[0][c] = set.meta(c).name;
    widths[c] = cells[0][c].size();
  }
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      cells[r + 1][c] = FormatCell(set, r, c);
      widths[c] = std::max(widths[c], cells[r + 1][c].size());
    }
  }
  std::ostringstream os;
  for (size_t r = 0; r < rows + 1; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      os << (c ? " | " : "") << cells[r][c]
         << std::string(widths[c] - cells[r][c].size(), ' ');
    }
    os << '\n';
    if (r == 0) {
      for (size_t c = 0; c < cols; ++c) {
        os << (c ? "-+-" : "") << std::string(widths[c], '-');
      }
      os << '\n';
    }
  }
  if (set.num_rows() > rows) {
    os << "... (" << set.num_rows() << " rows total)\n";
  }
  return os.str();
}

}  // namespace rapid::core
