// Expressions and predicates of the RAPID engine.
//
// Queries reaching RAPID are already normalized by the host compiler
// (Section 3.1); RAPID evaluates flat arithmetic expressions over
// columns (DSB-scale aware, integer only) and conjunctive predicates.
// Evaluation is vectorized: each node produces a full tile of values
// per invocation via the type-specialized primitives.

#ifndef RAPID_CORE_EXPR_H_
#define RAPID_CORE_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"
#include "core/qef/exec_ctx.h"
#include "core/qef/tile.h"
#include "primitives/arith.h"
#include "primitives/bloom.h"
#include "primitives/filter.h"

namespace rapid::core {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind { kColumn, kConst, kBinary };

  Kind kind = Kind::kConst;

  // kColumn: name in the operator's input schema.
  std::string column;

  // kConst: widened value; for decimal constants, `value` is the
  // mantissa at `scale` (e.g. 0.5 == {5, 1}).
  int64_t value = 0;
  int scale = 0;

  // kBinary.
  primitives::ArithOp op = primitives::ArithOp::kAdd;
  ExprPtr left;
  ExprPtr right;

  static ExprPtr Col(std::string name);
  static ExprPtr Int(int64_t v);
  static ExprPtr Dec(double v, int scale);
  static ExprPtr Add(ExprPtr l, ExprPtr r);
  static ExprPtr Sub(ExprPtr l, ExprPtr r);
  static ExprPtr Mul(ExprPtr l, ExprPtr r);

  // Column names referenced by this expression (appended to `out`).
  void CollectColumns(std::vector<std::string>* out) const;
};

// Maps column names to tile column positions for bound evaluation.
using ColumnBinding = std::unordered_map<std::string, size_t>;

// Evaluates `expr` over a tile: writes tile.rows widened values into
// `out` and returns the result's DSB scale. Charges arithmetic
// primitive cycles.
Result<int> EvalExpr(ExecCtx& ctx, const Tile& tile,
                     const ColumnBinding& binding, const Expr& expr,
                     std::vector<int64_t>* out);

// Raw-buffer flavour: `out` must hold at least tile.rows widened
// values (typically a tile-pool buffer). Intermediates of nested
// arithmetic come from the core's tile pool rather than per-tile heap
// vectors, so steady-state evaluation allocates nothing.
Result<int> EvalExpr(ExecCtx& ctx, const Tile& tile,
                     const ColumnBinding& binding, const Expr& expr,
                     int64_t* out);

// One conjunct of a WHERE clause. Values are pre-encoded by the
// compiler to the column's storage representation (dict codes, day
// numbers, DSB mantissas at the column scale).
struct Predicate {
  enum class Kind { kCmpConst, kBetween, kInSet, kCmpCol, kBloom };

  Kind kind = Kind::kCmpConst;
  std::string column;
  primitives::CmpOp op = primitives::CmpOp::kEq;
  int64_t value = 0;   // kCmpConst; lo for kBetween
  int64_t value2 = 0;  // hi for kBetween (inclusive)
  BitVector in_set;    // kInSet: bitmap over dictionary codes
  std::string column2;  // kCmpCol right-hand column

  // kBloom: pushed-down join filter (sideways information passing).
  // Not owned; the filter outlives the predicate — it lives with the
  // join's build output for the duration of the fragment.
  const primitives::BlockedBloomFilter* bloom = nullptr;

  // Planner's selectivity estimate; drives most-selective-first
  // ordering (Section 5.4).
  double selectivity = 0.5;

  static Predicate CmpConst(std::string column, primitives::CmpOp op,
                            int64_t value, double selectivity = 0.5);
  static Predicate Between(std::string column, int64_t lo, int64_t hi,
                           double selectivity = 0.5);
  static Predicate InSet(std::string column, BitVector codes,
                         double selectivity = 0.5);
  static Predicate CmpCol(std::string left, primitives::CmpOp op,
                          std::string right, double selectivity = 0.5);
  static Predicate Bloom(std::string column,
                         const primitives::BlockedBloomFilter* filter,
                         double selectivity = 0.5);
};

// Evaluates one predicate over all rows of a tile into `out`
// (bit-vector flavour). Charges filter primitive cycles.
Status EvalPredicate(ExecCtx& ctx, const Tile& tile,
                     const ColumnBinding& binding, const Predicate& pred,
                     BitVector* out);

// Refines an existing qualifying bit vector with one more predicate
// (the Listing 1 loop: only set rows are re-evaluated).
Status RefinePredicate(ExecCtx& ctx, const Tile& tile,
                       const ColumnBinding& binding, const Predicate& pred,
                       const BitVector& in, BitVector* out);

}  // namespace rapid::core

#endif  // RAPID_CORE_EXPR_H_
