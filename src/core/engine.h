// RapidEngine: the public entry point of the RAPID query processing
// engine. Owns the DPU (simulated), the loaded tables and the QComp
// planner; executes logical plans and reports both results and the
// modeled DPU execution statistics used by the performance/power
// evaluation.

#ifndef RAPID_CORE_ENGINE_H_
#define RAPID_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/cancel.h"
#include "core/qcomp/planner.h"
#include "core/qcomp/steps.h"
#include "dpu/dpu.h"
#include "storage/table.h"
#include "storage/update.h"

namespace rapid::core {

struct ExecOptions {
  bool vectorized = true;  // Figure 13 ablation switch
  PlannerOptions planner;

  // Caller-owned cancellation token (may be null). Polled at tile-loop
  // and barrier boundaries; a tripped token surfaces as kCancelled.
  const CancelToken* cancel = nullptr;
  // Wall-clock budget for the query; 0 = none. Expiry surfaces as
  // kDeadlineExceeded. Composes with `cancel` (whichever trips first).
  double timeout_seconds = 0;
  // Fragment checkpointing: completed step outputs, partition rounds
  // and fused-pipeline morsels survive a failed attempt and seed
  // in-place retries, the demotion replan and the host fallback.
  bool enable_checkpoints = true;
  // Fragment-level DPU retries for transient failures before the
  // engine gives up (host fallback is the caller's last resort).
  // < 0 resolves RAPID_RETRY_BUDGET (default 2, clamped to [0, 16]).
  int retry_budget = -1;
};

struct StepTiming {
  std::string description;
  double modeled_seconds = 0;  // max-core cycle delta / 800 MHz
  double compute_cycles = 0;   // slowest core's compute cycles this step
  double dms_cycles = 0;       // summed DMS cycles this step (shared DRAM)
  // Load balance of this step's morsel phases: slowest core's compute
  // delta over the per-core mean (1.0 = perfectly balanced), and the
  // number of morsels executed on a core other than their LPT owner.
  double imbalance_ratio = 1.0;
  uint64_t steal_count = 0;
  // Physical-plan step id and output cardinality — what ExplainAnalyze
  // joins the timings back to the plan tree with.
  int step_id = -1;
  uint64_t rows_out = 0;
};

struct ExecutionStats {
  double modeled_seconds = 0;  // total modeled DPU time
  double wall_seconds = 0;     // host wall clock (x86 software mode)
  double total_compute_cycles = 0;
  // Summed DMS transfer cycles across all steps and cores — the
  // data-movement volume pipeline fusion eliminates (fused chains pay
  // one load per input tile and one store per output tile).
  double total_dms_cycles = 0;
  std::vector<StepTiming> steps;
  // Morsel-phase load balance accumulated over the whole query:
  // per-phase max/mean core cycles and steal counts (dpu::WorkQueue).
  dpu::ImbalanceStats imbalance;
  WorkloadCounters workload;
  // True when a DMEM out-of-memory failure demoted the plan from fused
  // pipelines back to step-at-a-time execution (the fused chain's
  // per-core state no longer fit the scratchpad).
  bool demoted_to_unfused = false;
  // Fragment-checkpoint accounting across all attempts of the query:
  // partition rounds restored instead of re-executed, fused-pipeline
  // morsels skipped by mid-step resume, and fragment-level DPU retries
  // spent (bounded by ExecOptions::retry_budget).
  uint64_t reused_rounds = 0;
  uint64_t resumed_morsels = 0;
  uint64_t dpu_retries = 0;
  // Tile-local memory subsystem, summed over the dpCores at query end.
  // Arena figures are absolute (arenas persist across queries; a warm
  // steady state shows a flat high-water mark); tile_pool counters are
  // the per-query delta, so `misses` is the number of tile buffers
  // this query had to allocate rather than recycle.
  ArenaStats arena;
  TilePoolStats tile_pool;
  // Encoded scan path (RAPID_ENCODED_SCAN): bytes the DMS actually
  // moved as RLE runs, the plain bytes those same tiles would have
  // cost, and the number of runs whose predicate was decided without
  // expanding a single row.
  uint64_t encoded_bytes_moved = 0;
  uint64_t plain_bytes_moved = 0;
  uint64_t runs_filtered = 0;
  // Join-filter pushdown (RAPID_JOIN_FILTER): Bloom filters built over
  // build-side keys, probe rows they pruned before partition/probe
  // work, and the bytes those filters occupied.
  uint64_t join_filter_built = 0;
  uint64_t rows_pruned_by_join_filter = 0;
  uint64_t filter_bytes = 0;
};

// A completed step's materialized rows, identified by the logical
// subtree it computes ("" = plan root; then one digit per level: '0'
// descends to the input/left child, '1' to the right). When a later
// step fails, the engine hands these back so the host fallback can
// resume from them instead of recomputing the whole fragment.
struct PartialResult {
  std::string path;
  ColumnSet rows;
};

// Query-lifetime checkpoint of a fragment's expensive intermediates,
// accumulated across execution attempts. Entries are keyed by the
// subtree address from PhysicalPlan::subtree_steps (plain paths for
// materialized step outputs, "X#p" for the partition rounds over
// subtree X) — addressing survives the demotion replan, which
// renumbers steps but preserves logical paths. ExecutePhysical
// consumes compatible entries at the start of an attempt and
// re-harvests everything completed when the attempt fails.
struct FragmentCheckpoint {
  struct Fragment {
    std::string path;   // subtree address ("" = root; may end in "#p")
    StepOutput out;     // the completed step's output
  };
  std::vector<Fragment> completed;
  struct Partial {
    std::string path;   // address of the step the progress belongs to
    StepProgress progress;
  };
  std::vector<Partial> in_progress;
  // Accounting accumulated across every attempt of this query.
  uint64_t reused_rounds = 0;
  uint64_t resumed_morsels = 0;
  uint64_t dpu_retries = 0;
};

// What the engine hands back when execution fails for good: the
// checkpoint's completed unpartitioned subtree results (for host
// fallback grafting) plus the reuse/retry accounting, so callers can
// report how much DPU work survived even though the fragment did not.
struct FallbackInfo {
  std::vector<PartialResult> partials;
  uint64_t reused_rounds = 0;
  uint64_t resumed_morsels = 0;
  uint64_t dpu_retries = 0;
};

struct QueryResult {
  ColumnSet rows;
  ExecutionStats stats;
  std::string plan_text;
};

class RapidEngine {
 public:
  explicit RapidEngine(
      const dpu::DpuConfig& config = dpu::DpuConfig::Default(),
      const dpu::CostParams& params = dpu::CostParams::Default());

  RapidEngine(const RapidEngine&) = delete;
  RapidEngine& operator=(const RapidEngine&) = delete;

  // Loads (or replaces) a table; RAPID keeps it fully in memory.
  Status Load(storage::Table table);

  const storage::Table* GetTable(const std::string& name) const;
  const Catalog& catalog() const { return catalog_; }

  // Compiles and executes a logical plan. Drives the recovery ladder:
  // transient failures (DMS retry exhaustion, post-demotion DMEM OOM,
  // allocator pressure) get up to `options.retry_budget` in-place DPU
  // retries that resume from the fragment checkpoint; a DMEM OOM under
  // fusion demotes to an unfused replan (checkpoints carry over by
  // subtree address). When everything fails and `fallback` is non-null
  // (and the failure is not a cancellation), it receives the completed
  // subtree results and the reuse accounting for the caller's host
  // fallback.
  Result<QueryResult> Execute(const LogicalPtr& plan,
                              const ExecOptions& options = ExecOptions{},
                              FallbackInfo* fallback = nullptr);

  // Executes an already-planned physical plan (used by benchmarks that
  // need access to step internals such as join statistics). `ckpt`
  // (optional) is consumed on entry — compatible completed outputs are
  // restored, mid-step progress resumes — and refilled with everything
  // completed when the attempt fails with a non-cancellation status.
  Result<QueryResult> ExecutePhysical(const PhysicalPlan& plan,
                                      const ExecOptions& options,
                                      FragmentCheckpoint* ckpt = nullptr);

  // Resolved fragment-retry budget: `option` when >= 0, otherwise the
  // RAPID_RETRY_BUDGET environment value (default 2, clamped [0, 16]).
  static int ResolveRetryBudget(int option);

  // Chrome trace-event JSON of the most recent query executed with
  // RAPID_TRACE (or ForceTraceMode) at summary or full; "" when the
  // last query ran with tracing off. Process-wide, like the collector.
  static const std::string& LastTrace();

  // Executes `plan` and renders the physical plan tree annotated with
  // per-node actuals (rows, modeled ms, compute/DMS cycles, imbalance,
  // steals) plus the query-wide counters — EXPLAIN ANALYZE.
  Result<std::string> ExplainAnalyze(
      const LogicalPtr& plan, const ExecOptions& options = ExecOptions{});

  // Applies an update batch to a loaded table through its tracker and
  // bumps the table SCN (Section 4.3).
  Status ApplyUpdate(const std::string& table, uint64_t scn,
                     std::vector<storage::RowChange> changes);

  // Update tracker of a table (null if the table has no updates yet).
  const storage::Tracker* tracker(const std::string& table) const;

  // Garbage-collects row versions no longer visible to any query at or
  // after `min_active_scn` (Section 4.3: accumulated updates occupy
  // memory via outdated vectors). Returns reclaimed version count.
  size_t VacuumTrackers(uint64_t min_active_scn);

  dpu::Dpu& dpu() { return *dpu_; }

 private:
  std::unique_ptr<dpu::Dpu> dpu_;
  dpu::DpuConfig config_;
  dpu::CostParams params_;
  Catalog catalog_;
  std::unordered_map<std::string, std::unique_ptr<storage::Tracker>>
      trackers_;
};

}  // namespace rapid::core

#endif  // RAPID_CORE_ENGINE_H_
