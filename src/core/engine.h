// RapidEngine: the public entry point of the RAPID query processing
// engine. Owns the DPU (simulated), the loaded tables and the QComp
// planner; executes logical plans and reports both results and the
// modeled DPU execution statistics used by the performance/power
// evaluation.

#ifndef RAPID_CORE_ENGINE_H_
#define RAPID_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/cancel.h"
#include "core/qcomp/planner.h"
#include "core/qcomp/steps.h"
#include "dpu/dpu.h"
#include "storage/table.h"
#include "storage/update.h"

namespace rapid::core {

struct ExecOptions {
  bool vectorized = true;  // Figure 13 ablation switch
  PlannerOptions planner;

  // Caller-owned cancellation token (may be null). Polled at tile-loop
  // and barrier boundaries; a tripped token surfaces as kCancelled.
  const CancelToken* cancel = nullptr;
  // Wall-clock budget for the query; 0 = none. Expiry surfaces as
  // kDeadlineExceeded. Composes with `cancel` (whichever trips first).
  double timeout_seconds = 0;
};

struct StepTiming {
  std::string description;
  double modeled_seconds = 0;  // max-core cycle delta / 800 MHz
  double compute_cycles = 0;   // slowest core's compute cycles this step
  double dms_cycles = 0;       // summed DMS cycles this step (shared DRAM)
  // Load balance of this step's morsel phases: slowest core's compute
  // delta over the per-core mean (1.0 = perfectly balanced), and the
  // number of morsels executed on a core other than their LPT owner.
  double imbalance_ratio = 1.0;
  uint64_t steal_count = 0;
};

struct ExecutionStats {
  double modeled_seconds = 0;  // total modeled DPU time
  double wall_seconds = 0;     // host wall clock (x86 software mode)
  double total_compute_cycles = 0;
  // Summed DMS transfer cycles across all steps and cores — the
  // data-movement volume pipeline fusion eliminates (fused chains pay
  // one load per input tile and one store per output tile).
  double total_dms_cycles = 0;
  std::vector<StepTiming> steps;
  // Morsel-phase load balance accumulated over the whole query:
  // per-phase max/mean core cycles and steal counts (dpu::WorkQueue).
  dpu::ImbalanceStats imbalance;
  WorkloadCounters workload;
  // True when a DMEM out-of-memory failure demoted the plan from fused
  // pipelines back to step-at-a-time execution (the fused chain's
  // per-core state no longer fit the scratchpad).
  bool demoted_to_unfused = false;
  // Tile-local memory subsystem, summed over the dpCores at query end.
  // Arena figures are absolute (arenas persist across queries; a warm
  // steady state shows a flat high-water mark); tile_pool counters are
  // the per-query delta, so `misses` is the number of tile buffers
  // this query had to allocate rather than recycle.
  ArenaStats arena;
  TilePoolStats tile_pool;
};

// A completed step's materialized rows, identified by the logical
// subtree it computes ("" = plan root; then one digit per level: '0'
// descends to the input/left child, '1' to the right). When a later
// step fails, the engine hands these back so the host fallback can
// resume from them instead of recomputing the whole fragment.
struct PartialResult {
  std::string path;
  ColumnSet rows;
};

struct QueryResult {
  ColumnSet rows;
  ExecutionStats stats;
  std::string plan_text;
};

class RapidEngine {
 public:
  explicit RapidEngine(
      const dpu::DpuConfig& config = dpu::DpuConfig::Default(),
      const dpu::CostParams& params = dpu::CostParams::Default());

  RapidEngine(const RapidEngine&) = delete;
  RapidEngine& operator=(const RapidEngine&) = delete;

  // Loads (or replaces) a table; RAPID keeps it fully in memory.
  Status Load(storage::Table table);

  const storage::Table* GetTable(const std::string& name) const;
  const Catalog& catalog() const { return catalog_; }

  // Compiles and executes a logical plan. When `partials` is non-null
  // and execution fails partway (other than by cancellation), it
  // receives the materialized outputs of the steps that completed,
  // keyed by logical-subtree path, so the caller's fallback can reuse
  // them.
  Result<QueryResult> Execute(const LogicalPtr& plan,
                              const ExecOptions& options = ExecOptions{},
                              std::vector<PartialResult>* partials = nullptr);

  // Executes an already-planned physical plan (used by benchmarks that
  // need access to step internals such as join statistics).
  Result<QueryResult> ExecutePhysical(
      const PhysicalPlan& plan, const ExecOptions& options,
      std::vector<PartialResult>* partials = nullptr);

  // Applies an update batch to a loaded table through its tracker and
  // bumps the table SCN (Section 4.3).
  Status ApplyUpdate(const std::string& table, uint64_t scn,
                     std::vector<storage::RowChange> changes);

  // Update tracker of a table (null if the table has no updates yet).
  const storage::Tracker* tracker(const std::string& table) const;

  // Garbage-collects row versions no longer visible to any query at or
  // after `min_active_scn` (Section 4.3: accumulated updates occupy
  // memory via outdated vectors). Returns reclaimed version count.
  size_t VacuumTrackers(uint64_t min_active_scn);

  dpu::Dpu& dpu() { return *dpu_; }

 private:
  std::unique_ptr<dpu::Dpu> dpu_;
  dpu::DpuConfig config_;
  dpu::CostParams params_;
  Catalog catalog_;
  std::unordered_map<std::string, std::unique_ptr<storage::Tracker>>
      trackers_;
};

}  // namespace rapid::core

#endif  // RAPID_CORE_ENGINE_H_
