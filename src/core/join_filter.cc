#include "core/join_filter.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace rapid::core {

namespace {

// Resolves RAPID_JOIN_FILTER once and logs the choice (mirrors the
// RAPID_ENCODED_SCAN startup resolution in storage/encoding_stack.cc).
JoinFilterMode ResolveStartupMode() {
  JoinFilterMode mode = JoinFilterMode::kAuto;
  const char* requested = "auto";
  if (const char* env = std::getenv("RAPID_JOIN_FILTER");
      env != nullptr && *env) {
    requested = env;
    if (std::strcmp(env, "off") == 0) {
      mode = JoinFilterMode::kOff;
    } else if (std::strcmp(env, "auto") == 0) {
      mode = JoinFilterMode::kAuto;
    } else {
      RAPID_LOG(kWarn,
                "unknown RAPID_JOIN_FILTER value '%s' "
                "(want off|auto); using auto",
                env);
    }
  }
  RAPID_LOG(kInfo, "join filters %s (RAPID_JOIN_FILTER=%s)",
            mode == JoinFilterMode::kAuto ? "auto" : "off", requested);
  return mode;
}

// -1 encodes "no override"; anything else is a ForceJoinFilter pin.
std::atomic<int> g_forced_mode{-1};

}  // namespace

JoinFilterMode JoinFilterActive() {
  const int forced = g_forced_mode.load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<JoinFilterMode>(forced);
  static const JoinFilterMode startup = ResolveStartupMode();
  return startup;
}

JoinFilterMode ForceJoinFilter(JoinFilterMode mode) {
  const JoinFilterMode previous = JoinFilterActive();
  g_forced_mode.store(static_cast<int>(mode), std::memory_order_release);
  return previous;
}

}  // namespace rapid::core
