#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "storage/loader.h"

namespace rapid::core {

namespace {

// True for "X#p" checkpoint addresses (partition rounds over subtree
// X) — these never reach the host-side path walker, which only
// understands plain '0'/'1' subtree paths.
bool IsPartitionAddress(const std::string& path) {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, "#p") == 0;
}

int ResolveEnvRetryBudget() {
  constexpr int kDefault = 2;
  int budget = kDefault;
  if (const char* env = std::getenv("RAPID_RETRY_BUDGET");
      env != nullptr && *env) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 0) {
      budget = static_cast<int>(std::min(parsed, 16L));
    } else {
      RAPID_LOG(kWarn,
                "invalid RAPID_RETRY_BUDGET value '%s' "
                "(want an integer >= 0); using %d",
                env, kDefault);
    }
  }
  if (budget != kDefault) {
    RAPID_LOG(kInfo, "fragment retry budget overridden to %d "
              "(RAPID_RETRY_BUDGET)",
              budget);
  }
  return budget;
}

// One emission path for the cross-query metrics: every counter that
// used to be hand-threaded out of ExecutionStats by callers is
// published here when a query completes on the DPU.
void EmitQueryMetrics(const ExecutionStats& s) {
  auto& reg = MetricsRegistry::Instance();
  static MetricCounter* queries = reg.Counter("rapid.queries");
  static MetricHistogram* latency_ms = reg.Histogram(
      "rapid.query.modeled_ms", {0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000});
  static MetricCounter* pruned =
      reg.Counter("rapid.rows.pruned_by_join_filter");
  static MetricCounter* steals = reg.Counter("rapid.sched.steals");
  static MetricCounter* pool_misses = reg.Counter("rapid.pool.misses");
  static MetricCounter* encoded_bytes =
      reg.Counter("rapid.dms.encoded_bytes");
  static MetricCounter* plain_bytes = reg.Counter("rapid.dms.plain_bytes");
  static MetricCounter* retries = reg.Counter("rapid.query.retries");
  static MetricCounter* demotions = reg.Counter("rapid.query.demotions");
  queries->Increment();
  latency_ms->Observe(s.modeled_seconds * 1e3);
  pruned->Add(s.rows_pruned_by_join_filter);
  steals->Add(s.imbalance.steal_count);
  pool_misses->Add(s.tile_pool.misses);
  encoded_bytes->Add(s.encoded_bytes_moved);
  plain_bytes->Add(s.plain_bytes_moved);
  retries->Add(s.dpu_retries);
  if (s.demoted_to_unfused) demotions->Increment();
}

}  // namespace

int RapidEngine::ResolveRetryBudget(int option) {
  if (option >= 0) return std::min(option, 16);
  static const int env_budget = ResolveEnvRetryBudget();
  return env_budget;
}

RapidEngine::RapidEngine(const dpu::DpuConfig& config,
                         const dpu::CostParams& params)
    : dpu_(std::make_unique<dpu::Dpu>(config, params)),
      config_(config),
      params_(params) {}

Status RapidEngine::Load(storage::Table table) {
  const std::string name = table.name();
  catalog_.erase(name);
  catalog_.emplace(name, std::move(table));
  return Status::OK();
}

const storage::Table* RapidEngine::GetTable(const std::string& name) const {
  auto it = catalog_.find(name);
  return it == catalog_.end() ? nullptr : &it->second;
}

Status RapidEngine::ApplyUpdate(const std::string& table, uint64_t scn,
                                std::vector<storage::RowChange> changes) {
  auto it = catalog_.find(table);
  if (it == catalog_.end()) {
    return Status::NotFound("table '" + table + "' not loaded");
  }
  auto& tracker = trackers_[table];
  if (tracker == nullptr) {
    tracker = std::make_unique<storage::Tracker>(
        it->second.schema().num_fields());
  }
  // The tracker records versions for SCN resolution; the base vectors
  // are refreshed to the latest propagated state so scans see current
  // data (queries older than the propagated SCN resolve through the
  // tracker).
  for (const storage::RowChange& change : changes) {
    RAPID_RETURN_NOT_OK(
        storage::ApplyRowChange(&it->second, change.row_id, change.values));
  }
  RAPID_RETURN_NOT_OK(tracker->ApplyUpdate(scn, std::move(changes)));
  it->second.set_scn(scn);
  return Status::OK();
}

const storage::Tracker* RapidEngine::tracker(const std::string& table) const {
  auto it = trackers_.find(table);
  return it == trackers_.end() ? nullptr : it->second.get();
}

size_t RapidEngine::VacuumTrackers(uint64_t min_active_scn) {
  size_t reclaimed = 0;
  for (auto& [name, tracker] : trackers_) {
    reclaimed += tracker->Vacuum(min_active_scn);
  }
  return reclaimed;
}

Result<QueryResult> RapidEngine::Execute(const LogicalPtr& plan,
                                         const ExecOptions& options,
                                         FallbackInfo* fallback) {
  TraceQueryScope trace_scope(dpu_->num_cores(), params_.clock_hz);
  Planner planner(config_, params_, options.planner);
  Result<PhysicalPlan> planned = [&] {
    TraceSpan span(TraceMode::kSummary, TraceCollector::kTrackPlanner,
                   "qcomp.plan");
    auto r = planner.Plan(plan, catalog_);
    if (r.ok()) {
      span.Annotate("steps", static_cast<int64_t>(r.value().steps.size()));
      span.Annotate("fusion",
                    options.planner.enable_fusion ? int64_t{1} : int64_t{0});
    }
    return r;
  }();
  RAPID_RETURN_NOT_OK(planned.status());
  PhysicalPlan physical = std::move(planned.value());

  FragmentCheckpoint ckpt;
  FragmentCheckpoint* cp = options.enable_checkpoints ? &ckpt : nullptr;
  int budget = ResolveRetryBudget(options.retry_budget);

  // Recovery ladder, driven by the failure class of each attempt:
  //  1. DMEM OOM while fusion is on -> demote: replan unfused (DRAM
  //     staging needs only one operator's state at a time). Checkpoints
  //     carry over — subtree addressing survives the renumbering.
  //  2. Transient failures — DMS retry exhaustion, post-demotion DMEM
  //     OOM, allocator pressure — get up to `budget` in-place retries
  //     of the same plan, each resuming from the checkpoint.
  //  3. Cancellation aborts immediately; anything else exhausts the
  //     ladder and surfaces to the caller (host fallback).
  ExecOptions attempt = options;
  PhysicalPlan unfused;  // owns the demoted plan when built
  const PhysicalPlan* current = &physical;
  bool demoted = false;
  Result<QueryResult> result = ExecutePhysical(*current, attempt, cp);
  while (!result.ok()) {
    const Status& failure = result.status();
    if (failure.IsCancellation()) break;
    if (failure.IsOutOfMemory() && attempt.planner.enable_fusion) {
      attempt.planner.enable_fusion = false;
      Planner unfused_planner(config_, params_, attempt.planner);
      auto replanned = unfused_planner.Plan(plan, catalog_);
      if (!replanned.ok()) {
        result = replanned.status();
        break;
      }
      unfused = std::move(replanned.value());
      current = &unfused;
      demoted = true;
      if (TraceCollector::Recording(TraceMode::kSummary)) {
        auto& tc = TraceCollector::Instance();
        tc.AddStepInstant("engine.demote_unfused",
                          {TraceCollector::Arg::S(
                              "cause", tc.Intern(failure.ToString()))});
      }
      result = ExecutePhysical(*current, attempt, cp);
      continue;
    }
    // Transient set: descriptor retry exhaustion and allocator
    // pressure heal on their own; OOM is only retryable once fusion —
    // the main DMEM consumer — is already off. Capacity and planning
    // failures would just fail again identically.
    const bool transient =
        failure.IsRetryExhausted() ||
        (failure.IsOutOfMemory() && !attempt.planner.enable_fusion);
    if (cp != nullptr && transient && budget > 0) {
      --budget;
      ++cp->dpu_retries;
      if (TraceCollector::Recording(TraceMode::kSummary)) {
        auto& tc = TraceCollector::Instance();
        tc.AddStepInstant(
            "engine.retry",
            {TraceCollector::Arg::I("budget_left", budget),
             TraceCollector::Arg::S("cause", tc.Intern(failure.ToString()))});
      }
      result = ExecutePhysical(*current, attempt, cp);
      continue;
    }
    break;
  }

  if (result.ok()) {
    if (demoted) result.value().stats.demoted_to_unfused = true;
    EmitQueryMetrics(result.value().stats);
    return result;
  }
  MetricsRegistry::Instance().Counter("rapid.query.failures")->Increment();
  if (fallback != nullptr && !result.status().IsCancellation()) {
    fallback->reused_rounds = ckpt.reused_rounds;
    fallback->resumed_morsels = ckpt.resumed_morsels;
    fallback->dpu_retries = ckpt.dpu_retries;
    // Unpartitioned completed subtrees graft directly into the host
    // rerun. Completed partition rounds have no Volcano counterpart;
    // when the partitions' *input* subtree did not itself survive,
    // flatten them back into that subtree's rows so the host at least
    // skips recomputing the input (partition order is deterministic,
    // and the host rerun re-sorts/aggregates above it anyway — but to
    // stay bit-exact we only graft when the plain subtree is absent).
    for (auto& frag : ckpt.completed) {
      if (frag.out.partitioned || IsPartitionAddress(frag.path)) continue;
      fallback->partials.push_back(
          PartialResult{frag.path, std::move(frag.out.set)});
    }
    for (auto& frag : ckpt.completed) {
      if (!frag.out.partitioned || !IsPartitionAddress(frag.path)) continue;
      const std::string input_path =
          frag.path.substr(0, frag.path.size() - 2);
      bool have_input = false;
      for (const PartialResult& pr : fallback->partials) {
        if (pr.path == input_path) {
          have_input = true;
          break;
        }
      }
      if (have_input || frag.out.parts.partitions.empty()) continue;
      ColumnSet flat(frag.out.parts.partitions.front().metas());
      for (const ColumnSet& part : frag.out.parts.partitions) {
        for (size_t col = 0; col < flat.num_columns(); ++col) {
          if (part.num_rows() > 0) flat.meta(col) = part.meta(col);
        }
      }
      for (const ColumnSet& part : frag.out.parts.partitions) {
        flat.Append(part);
      }
      fallback->partials.push_back(
          PartialResult{input_path, std::move(flat)});
    }
  }
  return result;
}

Result<QueryResult> RapidEngine::ExecutePhysical(const PhysicalPlan& plan,
                                                 const ExecOptions& options,
                                                 FragmentCheckpoint* ckpt) {
  if (plan.root < 0 || plan.steps.empty()) {
    return Status::InvalidArgument("physical plan is empty");
  }
  // Nested no-op under Execute's scope; gives direct callers
  // (benchmarks, ExplainAnalyze) a complete trace of their own.
  TraceQueryScope trace_scope(dpu_->num_cores(), params_.clock_hz);

  // Compose the caller's token with a local deadline token when a
  // timeout is set; steps poll whichever pointer ends up in the env.
  CancelToken deadline_token;
  const CancelToken* cancel = options.cancel;
  if (options.timeout_seconds > 0) {
    deadline_token.SetTimeout(options.timeout_seconds);
    deadline_token.set_parent(options.cancel);
    cancel = &deadline_token;
  }

  ExecEnv env;
  env.dpu = dpu_.get();
  env.catalog = &catalog_;
  env.vectorized = options.vectorized;
  env.cancel = cancel;
  env.outputs.resize(plan.steps.size());

  // Restore the checkpoint into this plan. Fragments are addressed by
  // logical-subtree path, so entries harvested from a *different*
  // physical plan (the fused plan before demotion) land on the right
  // steps here; addresses that no longer resolve are dropped. Restored
  // outputs mark their step done — the loop below skips it — and
  // restored partition rounds count as reused work.
  std::vector<uint8_t> done(plan.steps.size(), 0);
  std::vector<StepProgress> progress_slots;
  if (ckpt != nullptr) {
    std::unordered_map<std::string, size_t> by_path;
    for (const auto& [path, sid] : plan.subtree_steps) {
      if (sid >= 0 && static_cast<size_t>(sid) < plan.steps.size()) {
        by_path.emplace(path, static_cast<size_t>(sid));
      }
    }
    std::vector<FragmentCheckpoint::Fragment> completed =
        std::move(ckpt->completed);
    ckpt->completed.clear();
    for (auto& frag : completed) {
      auto it = by_path.find(frag.path);
      if (it == by_path.end() || done[it->second] != 0) continue;
      // Partition rounds restore only under "#p" addresses and plain
      // outputs only under plain paths (defensive shape check).
      if (frag.out.partitioned != IsPartitionAddress(frag.path)) continue;
      if (frag.out.partitioned) {
        env.reused_rounds += static_cast<uint64_t>(
            std::max(0, frag.out.parts.rounds));
      }
      if (TraceCollector::Recording(TraceMode::kSummary)) {
        auto& tc = TraceCollector::Instance();
        tc.AddStepInstant(
            "checkpoint.restore",
            {TraceCollector::Arg::S("path", tc.Intern(frag.path)),
             TraceCollector::Arg::I("step",
                                    static_cast<int64_t>(it->second)),
             TraceCollector::Arg::I(
                 "rounds",
                 frag.out.partitioned ? frag.out.parts.rounds : 0)});
      }
      env.outputs[it->second] = std::move(frag.out);
      done[it->second] = 1;
    }
    std::vector<FragmentCheckpoint::Partial> in_progress =
        std::move(ckpt->in_progress);
    ckpt->in_progress.clear();
    progress_slots.resize(plan.steps.size());
    for (auto& partial : in_progress) {
      auto it = by_path.find(partial.path);
      if (it == by_path.end() || done[it->second] != 0) continue;
      progress_slots[it->second] = std::move(partial.progress);
    }
    env.progress = &progress_slots;
  }

  dpu_->ResetCores();

  QueryResult result;
  result.plan_text = plan.Describe();

  const auto wall_start = std::chrono::steady_clock::now();
  const auto ncores = static_cast<size_t>(dpu_->num_cores());
  // Per-query tile-pool delta: the pools persist across queries, so
  // subtract their lifetime counters from after the run.
  TilePoolStats pool_before;
  for (size_t c = 0; c < ncores; ++c) {
    pool_before.Accumulate(dpu_->core(static_cast<int>(c)).pool().stats());
  }
  std::vector<double> before_compute(ncores, 0);
  std::vector<double> before_dms(ncores, 0);
  Status step_status = Status::OK();
  for (const auto& step : plan.steps) {
    // Checkpoint-restored steps already hold their output; their cost
    // was paid (and timed) by the attempt that completed them.
    if (done[static_cast<size_t>(step->id())] != 0) continue;
    // Barrier boundary between steps: the cheapest place to notice a
    // cancelled or expired query before launching another DPU round.
    step_status = CancelToken::Check(cancel);
    if (!step_status.ok()) break;
    for (size_t c = 0; c < ncores; ++c) {
      before_compute[c] = dpu_->core(static_cast<int>(c)).cycles()
                              .compute_cycles();
      before_dms[c] = dpu_->core(static_cast<int>(c)).cycles().dms_cycles();
    }
    const dpu::ImbalanceStats imb_before = dpu_->imbalance();
    step_status = step->Execute(env);
    if (!step_status.ok()) break;
    done[static_cast<size_t>(step->id())] = 1;
    // Modeled step time: cores compute concurrently (slowest bounds
    // the phase) while all DMS transfers share the single DRAM
    // interface (they serialize); double buffering overlaps the two
    // streams, so the phase costs the max of both.
    double max_compute = 0;
    double sum_dms = 0;
    for (size_t c = 0; c < ncores; ++c) {
      const auto& cyc = dpu_->core(static_cast<int>(c)).cycles();
      max_compute =
          std::max(max_compute, cyc.compute_cycles() - before_compute[c]);
      sum_dms += cyc.dms_cycles() - before_dms[c];
    }
    const double step_seconds =
        std::max(max_compute, sum_dms) / params_.clock_hz;
    // Per-step morsel-phase load balance: delta of the accumulated
    // imbalance counters across this step's phases.
    const dpu::ImbalanceStats& imb_after = dpu_->imbalance();
    dpu::ImbalanceStats step_imb;
    step_imb.max_core_cycles =
        imb_after.max_core_cycles - imb_before.max_core_cycles;
    step_imb.mean_core_cycles =
        imb_after.mean_core_cycles - imb_before.mean_core_cycles;
    step_imb.steal_count = imb_after.steal_count - imb_before.steal_count;
    step_imb.phases = imb_after.phases - imb_before.phases;
    const StepOutput& out = env.outputs[static_cast<size_t>(step->id())];
    uint64_t rows_out = out.set.num_rows();
    if (out.partitioned) {
      rows_out = 0;
      for (const ColumnSet& part : out.parts.partitions) {
        rows_out += part.num_rows();
      }
    }
    result.stats.steps.push_back(StepTiming{
        step->Describe(), step_seconds, max_compute, sum_dms,
        step_imb.Ratio(), step_imb.steal_count, step->id(), rows_out});
    result.stats.modeled_seconds += step_seconds;
    result.stats.total_dms_cycles += sum_dms;
    // Steps-track span: duration = this step's modeled cycles, so the
    // summed span durations reconcile with modeled_seconds exactly.
    if (TraceCollector::Recording(TraceMode::kSummary)) {
      auto& tc = TraceCollector::Instance();
      tc.AddStepSpan(tc.Intern(step->Describe()),
                     std::max(max_compute, sum_dms),
                     {TraceCollector::Arg::I("step", step->id()),
                      TraceCollector::Arg::U("rows_out", rows_out),
                      TraceCollector::Arg::D("compute_cycles", max_compute),
                      TraceCollector::Arg::D("dms_cycles", sum_dms),
                      TraceCollector::Arg::D("imbalance", step_imb.Ratio()),
                      TraceCollector::Arg::U("steals",
                                             step_imb.steal_count)});
    }
  }
  if (!step_status.ok()) {
    // Harvest everything this attempt completed — materialized step
    // outputs AND partitioned intermediates — into the checkpoint,
    // keyed by subtree address, plus any mid-step progress the failing
    // step saved (completed partition rounds, done morsel slots).
    // Cancellation harvests nothing: the caller is abandoning the
    // query, not retrying it.
    if (ckpt != nullptr && !step_status.IsCancellation()) {
      std::vector<uint8_t> harvested(plan.steps.size(), 0);
      for (const auto& [path, sid] : plan.subtree_steps) {
        const auto uid = static_cast<size_t>(sid);
        if (uid >= plan.steps.size() || done[uid] == 0 ||
            harvested[uid] != 0) {
          continue;
        }
        if (env.outputs[uid].partitioned != IsPartitionAddress(path)) {
          continue;
        }
        harvested[uid] = 1;
        ckpt->completed.push_back(
            FragmentCheckpoint::Fragment{path,
                                         std::move(env.outputs[uid])});
      }
      for (const auto& [path, sid] : plan.subtree_steps) {
        const auto uid = static_cast<size_t>(sid);
        if (uid >= progress_slots.size() || done[uid] != 0 ||
            progress_slots[uid].empty()) {
          continue;
        }
        ckpt->in_progress.push_back(FragmentCheckpoint::Partial{
            path, std::move(progress_slots[uid])});
        progress_slots[uid].clear();
      }
      ckpt->reused_rounds += env.reused_rounds;
      ckpt->resumed_morsels += env.resumed_morsels;
    }
    return step_status;
  }
  const auto wall_end = std::chrono::steady_clock::now();

  result.stats.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.stats.workload = env.counters;
  result.stats.imbalance = dpu_->imbalance();
  result.stats.total_compute_cycles = dpu_->TotalComputeCycles();
  for (size_t c = 0; c < ncores; ++c) {
    result.stats.arena.Accumulate(
        dpu_->core(static_cast<int>(c)).arena().stats());
    result.stats.tile_pool.Accumulate(
        dpu_->core(static_cast<int>(c)).pool().stats());
    const dpu::EncodedScanCounters& enc =
        dpu_->core(static_cast<int>(c)).encoded_scan();
    result.stats.encoded_bytes_moved += enc.encoded_bytes;
    result.stats.plain_bytes_moved += enc.plain_bytes;
    result.stats.runs_filtered += enc.runs_filtered;
    const dpu::JoinFilterCounters& jf =
        dpu_->core(static_cast<int>(c)).join_filter();
    result.stats.join_filter_built += jf.filters_built;
    result.stats.rows_pruned_by_join_filter += jf.rows_pruned;
    result.stats.filter_bytes += jf.filter_bytes;
  }
  // Lifetime-counter deltas -> per-query figures (sizes stay absolute).
  result.stats.tile_pool.acquires -= pool_before.acquires;
  result.stats.tile_pool.reuses -= pool_before.reuses;
  result.stats.tile_pool.misses -= pool_before.misses;
  result.stats.tile_pool.releases -= pool_before.releases;
  result.stats.tile_pool.bytes_acquired -= pool_before.bytes_acquired;
  result.stats.tile_pool.bytes_allocated -= pool_before.bytes_allocated;
  // Reuse accounting: fold this attempt into the query-lifetime
  // checkpoint totals so the final stats cover every attempt.
  if (ckpt != nullptr) {
    ckpt->reused_rounds += env.reused_rounds;
    ckpt->resumed_morsels += env.resumed_morsels;
    result.stats.reused_rounds = ckpt->reused_rounds;
    result.stats.resumed_morsels = ckpt->resumed_morsels;
    result.stats.dpu_retries = ckpt->dpu_retries;
  } else {
    result.stats.reused_rounds = env.reused_rounds;
    result.stats.resumed_morsels = env.resumed_morsels;
  }
  result.rows = std::move(env.outputs[static_cast<size_t>(plan.root)].set);
  return result;
}

const std::string& RapidEngine::LastTrace() {
  return TraceCollector::Instance().last_trace_json();
}

namespace {

// Physical tree render with per-node actuals, following PlanStep
// input edges down from the root.
void RenderStepTree(const PhysicalPlan& plan, int id,
                    const std::unordered_map<int, const StepTiming*>& timings,
                    int indent, std::string* out) {
  if (id < 0 || static_cast<size_t>(id) >= plan.steps.size()) return;
  const auto& step = plan.steps[static_cast<size_t>(id)];
  out->append(static_cast<size_t>(indent) * 2, ' ');
  *out += "#" + std::to_string(id) + " " + step->Describe();
  auto it = timings.find(id);
  if (it != timings.end()) {
    const StepTiming& t = *it->second;
    char buf[176];
    std::snprintf(buf, sizeof(buf),
                  "  (rows=%llu modeled_ms=%.4f compute_cycles=%.0f"
                  " dms_cycles=%.0f imbalance=%.2f steals=%llu)",
                  static_cast<unsigned long long>(t.rows_out),
                  t.modeled_seconds * 1e3, t.compute_cycles, t.dms_cycles,
                  t.imbalance_ratio,
                  static_cast<unsigned long long>(t.steal_count));
    *out += buf;
  } else {
    // Only possible when a checkpoint restored the step's output: the
    // cost was paid (and reported) by the attempt that completed it.
    *out += "  (restored from checkpoint)";
  }
  *out += "\n";
  // A step can reference the same input through several edges (e.g. a
  // probe's build input doubling as its join-filter source); render
  // the shared subtree once.
  std::vector<int> children;
  for (int child : step->Inputs()) {
    if (std::find(children.begin(), children.end(), child) ==
        children.end()) {
      children.push_back(child);
    }
  }
  for (int child : children) {
    RenderStepTree(plan, child, timings, indent + 1, out);
  }
}

}  // namespace

Result<std::string> RapidEngine::ExplainAnalyze(const LogicalPtr& plan,
                                                const ExecOptions& options) {
  Planner planner(config_, params_, options.planner);
  RAPID_ASSIGN_OR_RETURN(PhysicalPlan physical, planner.Plan(plan, catalog_));
  FragmentCheckpoint ckpt;
  RAPID_ASSIGN_OR_RETURN(
      QueryResult result,
      ExecutePhysical(physical, options,
                      options.enable_checkpoints ? &ckpt : nullptr));

  const ExecutionStats& s = result.stats;
  std::unordered_map<int, const StepTiming*> timings;
  for (const StepTiming& t : s.steps) timings.emplace(t.step_id, &t);

  std::string out;
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "EXPLAIN ANALYZE  rows=%llu modeled_ms=%.4f wall_ms=%.4f"
                " compute_cycles=%.0f dms_cycles=%.0f",
                static_cast<unsigned long long>(result.rows.num_rows()),
                s.modeled_seconds * 1e3, s.wall_seconds * 1e3,
                s.total_compute_cycles, s.total_dms_cycles);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                " steals=%llu pool_misses=%llu pruned=%llu reused_rounds=%llu"
                " retries=%llu\n",
                static_cast<unsigned long long>(s.imbalance.steal_count),
                static_cast<unsigned long long>(s.tile_pool.misses),
                static_cast<unsigned long long>(
                    s.rows_pruned_by_join_filter),
                static_cast<unsigned long long>(s.reused_rounds),
                static_cast<unsigned long long>(s.dpu_retries));
  out += buf;
  RenderStepTree(physical, physical.root, timings, 0, &out);
  return out;
}

}  // namespace rapid::core
