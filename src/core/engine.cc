#include "core/engine.h"

#include <algorithm>
#include <chrono>

#include "storage/loader.h"

namespace rapid::core {

RapidEngine::RapidEngine(const dpu::DpuConfig& config,
                         const dpu::CostParams& params)
    : dpu_(std::make_unique<dpu::Dpu>(config, params)),
      config_(config),
      params_(params) {}

Status RapidEngine::Load(storage::Table table) {
  const std::string name = table.name();
  catalog_.erase(name);
  catalog_.emplace(name, std::move(table));
  return Status::OK();
}

const storage::Table* RapidEngine::GetTable(const std::string& name) const {
  auto it = catalog_.find(name);
  return it == catalog_.end() ? nullptr : &it->second;
}

Status RapidEngine::ApplyUpdate(const std::string& table, uint64_t scn,
                                std::vector<storage::RowChange> changes) {
  auto it = catalog_.find(table);
  if (it == catalog_.end()) {
    return Status::NotFound("table '" + table + "' not loaded");
  }
  auto& tracker = trackers_[table];
  if (tracker == nullptr) {
    tracker = std::make_unique<storage::Tracker>(
        it->second.schema().num_fields());
  }
  // The tracker records versions for SCN resolution; the base vectors
  // are refreshed to the latest propagated state so scans see current
  // data (queries older than the propagated SCN resolve through the
  // tracker).
  for (const storage::RowChange& change : changes) {
    RAPID_RETURN_NOT_OK(
        storage::ApplyRowChange(&it->second, change.row_id, change.values));
  }
  RAPID_RETURN_NOT_OK(tracker->ApplyUpdate(scn, std::move(changes)));
  it->second.set_scn(scn);
  return Status::OK();
}

const storage::Tracker* RapidEngine::tracker(const std::string& table) const {
  auto it = trackers_.find(table);
  return it == trackers_.end() ? nullptr : it->second.get();
}

size_t RapidEngine::VacuumTrackers(uint64_t min_active_scn) {
  size_t reclaimed = 0;
  for (auto& [name, tracker] : trackers_) {
    reclaimed += tracker->Vacuum(min_active_scn);
  }
  return reclaimed;
}

Result<QueryResult> RapidEngine::Execute(const LogicalPtr& plan,
                                         const ExecOptions& options,
                                         std::vector<PartialResult>* partials) {
  Planner planner(config_, params_, options.planner);
  RAPID_ASSIGN_OR_RETURN(PhysicalPlan physical, planner.Plan(plan, catalog_));
  Result<QueryResult> result = ExecutePhysical(physical, options, partials);

  // DMEM out-of-memory demotion: a fused pipeline keeps every
  // operator's state resident in the scratchpad at once, so it is the
  // first thing to give up when DMEM runs short. Replan without fusion
  // — step-at-a-time execution stages intermediates through DRAM and
  // needs only one operator's state at a time — and retry once before
  // surfacing the failure.
  if (!result.ok() && result.status().IsOutOfMemory() &&
      options.planner.enable_fusion) {
    if (partials != nullptr) partials->clear();  // the retry supersedes them
    ExecOptions demoted = options;
    demoted.planner.enable_fusion = false;
    Planner unfused_planner(config_, params_, demoted.planner);
    RAPID_ASSIGN_OR_RETURN(PhysicalPlan unfused,
                           unfused_planner.Plan(plan, catalog_));
    result = ExecutePhysical(unfused, demoted, partials);
    if (result.ok()) result.value().stats.demoted_to_unfused = true;
  }
  return result;
}

Result<QueryResult> RapidEngine::ExecutePhysical(
    const PhysicalPlan& plan, const ExecOptions& options,
    std::vector<PartialResult>* partials) {
  if (plan.root < 0 || plan.steps.empty()) {
    return Status::InvalidArgument("physical plan is empty");
  }

  // Compose the caller's token with a local deadline token when a
  // timeout is set; steps poll whichever pointer ends up in the env.
  CancelToken deadline_token;
  const CancelToken* cancel = options.cancel;
  if (options.timeout_seconds > 0) {
    deadline_token.SetTimeout(options.timeout_seconds);
    deadline_token.set_parent(options.cancel);
    cancel = &deadline_token;
  }

  ExecEnv env;
  env.dpu = dpu_.get();
  env.catalog = &catalog_;
  env.vectorized = options.vectorized;
  env.cancel = cancel;
  env.outputs.resize(plan.steps.size());

  dpu_->ResetCores();

  QueryResult result;
  result.plan_text = plan.Describe();

  const auto wall_start = std::chrono::steady_clock::now();
  const auto ncores = static_cast<size_t>(dpu_->num_cores());
  // Per-query tile-pool delta: the pools persist across queries, so
  // subtract their lifetime counters from after the run.
  TilePoolStats pool_before;
  for (size_t c = 0; c < ncores; ++c) {
    pool_before.Accumulate(dpu_->core(static_cast<int>(c)).pool().stats());
  }
  std::vector<double> before_compute(ncores, 0);
  std::vector<double> before_dms(ncores, 0);
  Status step_status = Status::OK();
  size_t completed_steps = 0;
  for (const auto& step : plan.steps) {
    // Barrier boundary between steps: the cheapest place to notice a
    // cancelled or expired query before launching another DPU round.
    step_status = CancelToken::Check(cancel);
    if (!step_status.ok()) break;
    for (size_t c = 0; c < ncores; ++c) {
      before_compute[c] = dpu_->core(static_cast<int>(c)).cycles()
                              .compute_cycles();
      before_dms[c] = dpu_->core(static_cast<int>(c)).cycles().dms_cycles();
    }
    const dpu::ImbalanceStats imb_before = dpu_->imbalance();
    step_status = step->Execute(env);
    if (!step_status.ok()) break;
    ++completed_steps;
    // Modeled step time: cores compute concurrently (slowest bounds
    // the phase) while all DMS transfers share the single DRAM
    // interface (they serialize); double buffering overlaps the two
    // streams, so the phase costs the max of both.
    double max_compute = 0;
    double sum_dms = 0;
    for (size_t c = 0; c < ncores; ++c) {
      const auto& cyc = dpu_->core(static_cast<int>(c)).cycles();
      max_compute =
          std::max(max_compute, cyc.compute_cycles() - before_compute[c]);
      sum_dms += cyc.dms_cycles() - before_dms[c];
    }
    const double step_seconds =
        std::max(max_compute, sum_dms) / params_.clock_hz;
    // Per-step morsel-phase load balance: delta of the accumulated
    // imbalance counters across this step's phases.
    const dpu::ImbalanceStats& imb_after = dpu_->imbalance();
    dpu::ImbalanceStats step_imb;
    step_imb.max_core_cycles =
        imb_after.max_core_cycles - imb_before.max_core_cycles;
    step_imb.mean_core_cycles =
        imb_after.mean_core_cycles - imb_before.mean_core_cycles;
    step_imb.steal_count = imb_after.steal_count - imb_before.steal_count;
    step_imb.phases = imb_after.phases - imb_before.phases;
    result.stats.steps.push_back(StepTiming{step->Describe(), step_seconds,
                                            max_compute, sum_dms,
                                            step_imb.Ratio(),
                                            step_imb.steal_count});
    result.stats.modeled_seconds += step_seconds;
    result.stats.total_dms_cycles += sum_dms;
  }
  if (!step_status.ok()) {
    // Hand the completed steps' materialized rows to the caller's
    // fallback. Steps run in plan order, so every step id below the
    // failed one has a valid output; only whole logical subtrees
    // (recorded by the planner, remapped by fusion) are reusable.
    // Cancellation gets nothing: the caller is abandoning the query.
    if (partials != nullptr && !step_status.IsCancellation()) {
      for (const auto& [path, sid] : plan.subtree_steps) {
        const auto uid = static_cast<size_t>(sid);
        if (uid >= completed_steps || env.outputs[uid].partitioned) continue;
        partials->push_back(PartialResult{path, std::move(env.outputs[uid].set)});
      }
    }
    return step_status;
  }
  const auto wall_end = std::chrono::steady_clock::now();

  result.stats.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.stats.workload = env.counters;
  result.stats.imbalance = dpu_->imbalance();
  result.stats.total_compute_cycles = dpu_->TotalComputeCycles();
  for (size_t c = 0; c < ncores; ++c) {
    result.stats.arena.Accumulate(
        dpu_->core(static_cast<int>(c)).arena().stats());
    result.stats.tile_pool.Accumulate(
        dpu_->core(static_cast<int>(c)).pool().stats());
  }
  // Lifetime-counter deltas -> per-query figures (sizes stay absolute).
  result.stats.tile_pool.acquires -= pool_before.acquires;
  result.stats.tile_pool.reuses -= pool_before.reuses;
  result.stats.tile_pool.misses -= pool_before.misses;
  result.stats.tile_pool.bytes_acquired -= pool_before.bytes_acquired;
  result.stats.tile_pool.bytes_allocated -= pool_before.bytes_allocated;
  result.rows = std::move(env.outputs[static_cast<size_t>(plan.root)].set);
  return result;
}

}  // namespace rapid::core
