#include "core/ops/sort_exec.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace rapid::core {

namespace {

// Maps a signed key to an order-preserving unsigned key; descending
// keys are complemented so ascending radix passes produce the right
// order for both directions.
inline uint64_t BiasKey(int64_t v, bool ascending) {
  const uint64_t biased = static_cast<uint64_t>(v) ^ (uint64_t{1} << 63);
  return ascending ? biased : ~biased;
}

// One stable LSD radix sort pass over 8-bit digits of `keys`,
// permuting `perm`. Returns cycle charge units (rows touched).
void RadixPass(const std::vector<uint64_t>& keys, int digit,
               std::vector<uint32_t>* perm, std::vector<uint32_t>* scratch) {
  const int shift = digit * 8;
  uint32_t counts[257] = {0};
  for (uint32_t r : *perm) {
    ++counts[((keys[r] >> shift) & 0xFF) + 1];
  }
  for (int i = 0; i < 256; ++i) counts[i + 1] += counts[i];
  scratch->resize(perm->size());
  for (uint32_t r : *perm) {
    (*scratch)[counts[(keys[r] >> shift) & 0xFF]++] = r;
  }
  perm->swap(*scratch);
}

// Radix-sorts `perm` (row indices into `set`) by `keys`, stable,
// least-significant key last... i.e. passes run from the last sort key
// to the first so the primary key dominates. Charges sort cycles.
void RadixSortRows(dpu::DpCore& core, const dpu::CostParams& params,
                   const ColumnSet& set, const std::vector<SortKey>& sort_keys,
                   std::vector<uint32_t>* perm) {
  std::vector<uint32_t> scratch;
  // Keys are indexed by global row id because the permutation entries
  // are row ids into `set` (a bucket is a sparse subset of rows).
  std::vector<uint64_t> keys(set.num_rows());
  int passes = 0;
  for (auto it = sort_keys.rbegin(); it != sort_keys.rend(); ++it) {
    const std::vector<int64_t>& col = set.column(it->column);
    uint64_t max_key = 0;
    for (uint32_t r : *perm) {
      keys[r] = BiasKey(col[r], it->ascending);
      if (keys[r] > max_key) max_key = keys[r];
    }
    // Only the digits that can differ need passes.
    int digits = 1;
    while (digits < 8 && (max_key >> (digits * 8)) != 0) ++digits;
    for (int d = 0; d < digits; ++d) {
      RadixPass(keys, d, perm, &scratch);
      ++passes;
    }
  }
  core.cycles().ChargeCompute(params.sort_cycles_per_row_per_pass *
                              static_cast<double>(perm->size()) * passes);
}

// Comparator fallback used for sampling bounds (host-side planning,
// not charged to the DPU).
bool RowLess(const ColumnSet& set, const std::vector<SortKey>& keys, size_t a,
             size_t b) {
  for (const SortKey& k : keys) {
    const int64_t va = set.Value(a, k.column);
    const int64_t vb = set.Value(b, k.column);
    if (va != vb) return k.ascending ? va < vb : va > vb;
  }
  return false;
}

}  // namespace

std::vector<uint32_t> SortExec::SortedPermutation(
    dpu::Dpu& dpu, const ColumnSet& input, const std::vector<SortKey>& keys) {
  const size_t n = input.num_rows();
  const int num_cores = dpu.num_cores();

  // Range partition on the primary key: sample bounds, then assign
  // each row to a core range (the DMS range-partitioning engine).
  std::vector<uint32_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
  if (n == 0 || keys.empty()) return perm;

  const SortKey& primary = keys[0];
  const std::vector<int64_t>& pcol = input.column(primary.column);

  // Sampled bounds: take up to 1024 evenly spaced rows.
  std::vector<int64_t> sample;
  const size_t step = std::max<size_t>(1, n / 1024);
  for (size_t i = 0; i < n; i += step) sample.push_back(pcol[i]);
  std::sort(sample.begin(), sample.end());
  if (!primary.ascending) std::reverse(sample.begin(), sample.end());

  std::vector<int64_t> bounds;  // num_cores-1 split points
  for (int c = 1; c < num_cores; ++c) {
    bounds.push_back(sample[sample.size() * static_cast<size_t>(c) /
                            static_cast<size_t>(num_cores)]);
  }

  // Assign rows to core buckets.
  std::vector<std::vector<uint32_t>> buckets(static_cast<size_t>(num_cores));
  for (size_t i = 0; i < n; ++i) {
    const int64_t v = pcol[i];
    size_t b = 0;
    // Linear scan over <=31 bounds, matching the DMS comparator tree.
    while (b < bounds.size() &&
           (primary.ascending ? v >= bounds[b] : v <= bounds[b])) {
      ++b;
    }
    buckets[b].push_back(static_cast<uint32_t>(i));
  }

  // Per-core radix sort of each bucket.
  dpu.ParallelFor([&](dpu::DpCore& core) {
    auto& bucket = buckets[static_cast<size_t>(core.id())];
    if (!bucket.empty()) {
      RadixSortRows(core, dpu.params(), input, keys, &bucket);
    }
  });

  // Concatenate in bound order.
  perm.clear();
  for (const auto& bucket : buckets) {
    perm.insert(perm.end(), bucket.begin(), bucket.end());
  }
  return perm;
}

Result<ColumnSet> SortExec::Execute(dpu::Dpu& dpu, const ColumnSet& input,
                                    const std::vector<SortKey>& keys) {
  for (const SortKey& k : keys) {
    if (k.column >= input.num_columns()) {
      return Status::InvalidArgument("sort key column out of range");
    }
  }
  const std::vector<uint32_t> perm = SortedPermutation(dpu, input, keys);
  ColumnSet out(input.metas());
  for (size_t c = 0; c < input.num_columns(); ++c) {
    const std::vector<int64_t>& src = input.column(c);
    std::vector<int64_t>& dst = out.column(c);
    dst.resize(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) dst[i] = src[perm[i]];
  }
  // Gathering the payload by the sorted permutation is a DMS gather.
  dpu.core(0).cycles().ChargeDms(dpu::DmsGatherCycles(
      dpu.params(), perm.size() * input.num_columns(), sizeof(int64_t)));
  return out;
}

Result<ColumnSet> TopKExec::Execute(dpu::Dpu& dpu, const ColumnSet& input,
                                    const std::vector<SortKey>& keys,
                                    size_t k) {
  if (keys.empty()) return Status::InvalidArgument("top-k needs sort keys");
  for (const SortKey& key : keys) {
    if (key.column >= input.num_columns()) {
      return Status::InvalidArgument("top-k key column out of range");
    }
  }
  const size_t n = input.num_rows();
  const int num_cores = dpu.num_cores();
  const size_t share = (n + static_cast<size_t>(num_cores) - 1) /
                       static_cast<size_t>(num_cores);

  // Vectorized per-core selection: a bounded candidate set plus a
  // running threshold (the current k-th row). Each tile is first
  // pruned against the threshold with one branch-free comparison per
  // row; only survivors pay the insertion cost. This is the
  // "vectorized Top-K" of Section 5.4.
  std::vector<std::vector<uint32_t>> local(static_cast<size_t>(num_cores));
  dpu.ParallelFor([&](dpu::DpCore& core) {
    const size_t begin = static_cast<size_t>(core.id()) * share;
    const size_t end = std::min(n, begin + share);
    if (begin >= end) return;
    auto& rows = local[static_cast<size_t>(core.id())];
    auto less = [&](uint32_t a, uint32_t b) {
      return RowLess(input, keys, a, b);
    };

    constexpr size_t kTileRows = 1024;
    uint64_t inserted = 0;
    bool have_threshold = false;
    uint32_t threshold_row = 0;
    for (size_t start = begin; start < end; start += kTileRows) {
      const size_t tile_end = std::min(end, start + kTileRows);
      for (size_t i = start; i < tile_end; ++i) {
        const auto row = static_cast<uint32_t>(i);
        // Prune against the running k-th value (1 cycle/row below).
        if (have_threshold && !less(row, threshold_row)) continue;
        rows.push_back(row);
        ++inserted;
      }
      // Re-establish the bound once the candidate set overflows 2k.
      if (rows.size() >= 2 * k) {
        std::nth_element(rows.begin(),
                         rows.begin() + static_cast<ptrdiff_t>(k - 1),
                         rows.end(), less);
        rows.resize(k);
        threshold_row = rows[k - 1];
        have_threshold = true;
      }
    }
    const size_t keep = std::min(k, rows.size());
    std::partial_sort(rows.begin(),
                      rows.begin() + static_cast<ptrdiff_t>(keep),
                      rows.end(), less);
    rows.resize(keep);
    // Charge: one pruning comparison per row plus the heap work for
    // the rows that survived the threshold.
    core.cycles().ChargeCompute(
        static_cast<double>(end - begin) +
        dpu.params().topk_cycles_per_row * static_cast<double>(inserted));
  });

  // Merge per-core candidates; final selection on one core.
  std::vector<uint32_t> merged;
  for (const auto& rows : local) {
    merged.insert(merged.end(), rows.begin(), rows.end());
  }
  const size_t keep = std::min(k, merged.size());
  std::partial_sort(merged.begin(),
                    merged.begin() + static_cast<ptrdiff_t>(keep),
                    merged.end(), [&](uint32_t a, uint32_t b) {
                      return RowLess(input, keys, a, b);
                    });
  merged.resize(keep);
  dpu.core(0).cycles().ChargeCompute(dpu.params().topk_cycles_per_row *
                                     static_cast<double>(merged.size()));

  ColumnSet out(input.metas());
  for (uint32_t r : merged) {
    std::vector<int64_t> row(input.num_columns());
    for (size_t c = 0; c < input.num_columns(); ++c) {
      row[c] = input.Value(r, c);
    }
    out.AppendRow(row);
  }
  return out;
}

}  // namespace rapid::core
