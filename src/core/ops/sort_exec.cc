#include "core/ops/sort_exec.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/trace.h"

namespace rapid::core {

namespace {

// Maps a signed key to an order-preserving unsigned key; descending
// keys are complemented so ascending radix passes produce the right
// order for both directions.
inline uint64_t BiasKey(int64_t v, bool ascending) {
  const uint64_t biased = static_cast<uint64_t>(v) ^ (uint64_t{1} << 63);
  return ascending ? biased : ~biased;
}

// One stable LSD radix sort pass over 8-bit digits of `keys`,
// permuting `perm`. Returns cycle charge units (rows touched).
void RadixPass(const std::vector<uint64_t>& keys, int digit,
               std::vector<uint32_t>* perm, std::vector<uint32_t>* scratch) {
  const int shift = digit * 8;
  uint32_t counts[257] = {0};
  for (uint32_t r : *perm) {
    ++counts[((keys[r] >> shift) & 0xFF) + 1];
  }
  for (int i = 0; i < 256; ++i) counts[i + 1] += counts[i];
  scratch->resize(perm->size());
  for (uint32_t r : *perm) {
    (*scratch)[counts[(keys[r] >> shift) & 0xFF]++] = r;
  }
  perm->swap(*scratch);
}

// Radix-sorts `perm` (row indices into `set`) by `keys`, stable,
// least-significant key last... i.e. passes run from the last sort key
// to the first so the primary key dominates. Charges sort cycles.
void RadixSortRows(dpu::DpCore& core, const dpu::CostParams& params,
                   const ColumnSet& set, const std::vector<SortKey>& sort_keys,
                   std::vector<uint32_t>* perm) {
  std::vector<uint32_t> scratch;
  // Keys are indexed by global row id because the permutation entries
  // are row ids into `set` (a bucket is a sparse subset of rows).
  std::vector<uint64_t> keys(set.num_rows());
  int passes = 0;
  for (auto it = sort_keys.rbegin(); it != sort_keys.rend(); ++it) {
    const std::vector<int64_t>& col = set.column(it->column);
    uint64_t max_key = 0;
    for (uint32_t r : *perm) {
      keys[r] = BiasKey(col[r], it->ascending);
      if (keys[r] > max_key) max_key = keys[r];
    }
    // Only the digits that can differ need passes.
    int digits = 1;
    while (digits < 8 && (max_key >> (digits * 8)) != 0) ++digits;
    for (int d = 0; d < digits; ++d) {
      RadixPass(keys, d, perm, &scratch);
      ++passes;
    }
  }
  core.cycles().ChargeCompute(params.sort_cycles_per_row_per_pass *
                              static_cast<double>(perm->size()) * passes);
}

// Strict total order: sort keys, then the row id as a tiebreak. The
// tiebreak makes top-k selection canonical — the k winners (and their
// order) are unique, so the result is independent of how the input is
// carved into morsels or how candidates merge.
bool RowLess(const ColumnSet& set, const std::vector<SortKey>& keys, size_t a,
             size_t b) {
  for (const SortKey& k : keys) {
    const int64_t va = set.Value(a, k.column);
    const int64_t vb = set.Value(b, k.column);
    if (va != vb) return k.ascending ? va < vb : va > vb;
  }
  return a < b;
}

}  // namespace

std::vector<uint32_t> SortExec::SortedPermutation(
    dpu::Dpu& dpu, const ColumnSet& input, const std::vector<SortKey>& keys) {
  const size_t n = input.num_rows();
  const int num_cores = dpu.num_cores();

  // Range partition on the primary key: sample bounds, then assign
  // each row to a core range (the DMS range-partitioning engine).
  std::vector<uint32_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
  if (n == 0 || keys.empty()) return perm;

  const SortKey& primary = keys[0];
  const std::vector<int64_t>& pcol = input.column(primary.column);

  // Sampled bounds: take up to 1024 evenly spaced rows.
  std::vector<int64_t> sample;
  const size_t step = std::max<size_t>(1, n / 1024);
  for (size_t i = 0; i < n; i += step) sample.push_back(pcol[i]);
  std::sort(sample.begin(), sample.end());
  if (!primary.ascending) std::reverse(sample.begin(), sample.end());

  // Oversubscribe the range partition ~4x so the morsel queue can
  // rebalance value-skewed buckets. The result is identical for any
  // bucket count: rows with equal primary keys always land in the same
  // bucket, the radix sort within a bucket is stable, and buckets
  // concatenate in bound order — together a total order independent of
  // where the bounds fall.
  const size_t num_buckets = std::max<size_t>(
      1, std::min(static_cast<size_t>(num_cores) * 4, (n + 63) / 64));
  std::vector<int64_t> bounds;  // num_buckets-1 split points
  for (size_t b = 1; b < num_buckets; ++b) {
    bounds.push_back(sample[sample.size() * b / num_buckets]);
  }

  // Assign rows to range buckets.
  std::vector<std::vector<uint32_t>> buckets(num_buckets);
  for (size_t i = 0; i < n; ++i) {
    const int64_t v = pcol[i];
    size_t b = 0;
    // Linear scan over the bounds, matching the DMS comparator tree.
    while (b < bounds.size() &&
           (primary.ascending ? v >= bounds[b] : v <= bounds[b])) {
      ++b;
    }
    buckets[b].push_back(static_cast<uint32_t>(i));
  }

  // Radix sort of each bucket, one bucket per morsel weighted by size.
  std::vector<double> bucket_weights(num_buckets);
  for (size_t b = 0; b < num_buckets; ++b) {
    bucket_weights[b] = static_cast<double>(buckets[b].size());
  }
  dpu::WorkQueue queue(std::move(bucket_weights), num_cores);
  const Status st = dpu.ParallelForMorsels(
      queue, /*cancel=*/nullptr, [&](dpu::DpCore& core, size_t b) -> Status {
        TraceSpan span(TraceMode::kFull, core.id(), "sort.bucket",
                       &dpu::TraceClockNow, &core.cycles());
        span.Annotate("bucket", static_cast<int64_t>(b));
        span.Annotate("rows", static_cast<uint64_t>(buckets[b].size()));
        if (!buckets[b].empty()) {
          RadixSortRows(core, dpu.params(), input, keys, &buckets[b]);
        }
        return Status::OK();
      });
  RAPID_CHECK(st.ok());

  // Concatenate in bound order.
  perm.clear();
  for (const auto& bucket : buckets) {
    perm.insert(perm.end(), bucket.begin(), bucket.end());
  }
  return perm;
}

Result<ColumnSet> SortExec::Execute(dpu::Dpu& dpu, const ColumnSet& input,
                                    const std::vector<SortKey>& keys) {
  for (const SortKey& k : keys) {
    if (k.column >= input.num_columns()) {
      return Status::InvalidArgument("sort key column out of range");
    }
  }
  const std::vector<uint32_t> perm = SortedPermutation(dpu, input, keys);
  ColumnSet out(input.metas());
  for (size_t c = 0; c < input.num_columns(); ++c) {
    const std::vector<int64_t>& src = input.column(c);
    std::vector<int64_t>& dst = out.column(c);
    dst.resize(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) dst[i] = src[perm[i]];
  }
  // Gathering the payload by the sorted permutation is a DMS gather.
  dpu.core(0).cycles().ChargeDms(dpu::DmsGatherCycles(
      dpu.params(), perm.size() * input.num_columns(), sizeof(int64_t)));
  return out;
}

Result<ColumnSet> TopKExec::Execute(dpu::Dpu& dpu, const ColumnSet& input,
                                    const std::vector<SortKey>& keys,
                                    size_t k) {
  if (keys.empty()) return Status::InvalidArgument("top-k needs sort keys");
  for (const SortKey& key : keys) {
    if (key.column >= input.num_columns()) {
      return Status::InvalidArgument("top-k key column out of range");
    }
  }
  const size_t n = input.num_rows();
  const int num_cores = dpu.num_cores();

  // ~4 morsels per core; candidate sets are indexed by morsel id so
  // the merge order — and with RowLess's row-id tiebreak, the result —
  // is independent of which core ran which morsel.
  const size_t slots = static_cast<size_t>(num_cores) * 4;
  const size_t target = std::max<size_t>(64, (n + slots - 1) / slots);
  std::vector<std::pair<size_t, size_t>> ranges;
  for (size_t begin = 0; begin < n; begin += target) {
    ranges.emplace_back(begin, std::min(n, begin + target));
  }
  if (ranges.empty()) ranges.emplace_back(0, 0);

  // Vectorized per-morsel selection: a bounded candidate set plus a
  // running threshold (the current k-th row). Each tile is first
  // pruned against the threshold with one branch-free comparison per
  // row; only survivors pay the insertion cost. This is the
  // "vectorized Top-K" of Section 5.4.
  std::vector<std::vector<uint32_t>> local(ranges.size());
  std::vector<double> range_weights(ranges.size());
  for (size_t m = 0; m < ranges.size(); ++m) {
    range_weights[m] = static_cast<double>(ranges[m].second - ranges[m].first);
  }
  dpu::WorkQueue queue(std::move(range_weights), num_cores);
  RAPID_RETURN_NOT_OK(dpu.ParallelForMorsels(
      queue, /*cancel=*/nullptr, [&](dpu::DpCore& core, size_t m) -> Status {
        const size_t begin = ranges[m].first;
        const size_t end = ranges[m].second;
        if (begin >= end) return Status::OK();
        auto& rows = local[m];
        auto less = [&](uint32_t a, uint32_t b) {
          return RowLess(input, keys, a, b);
        };

        constexpr size_t kTileRows = 1024;
        uint64_t inserted = 0;
        bool have_threshold = false;
        uint32_t threshold_row = 0;
        for (size_t start = begin; start < end; start += kTileRows) {
          const size_t tile_end = std::min(end, start + kTileRows);
          for (size_t i = start; i < tile_end; ++i) {
            const auto row = static_cast<uint32_t>(i);
            // Prune against the running k-th value (1 cycle/row below).
            if (have_threshold && !less(row, threshold_row)) continue;
            rows.push_back(row);
            ++inserted;
          }
          // Re-establish the bound once the candidate set overflows 2k.
          if (rows.size() >= 2 * k) {
            std::nth_element(rows.begin(),
                             rows.begin() + static_cast<ptrdiff_t>(k - 1),
                             rows.end(), less);
            rows.resize(k);
            threshold_row = rows[k - 1];
            have_threshold = true;
          }
        }
        const size_t keep = std::min(k, rows.size());
        std::partial_sort(rows.begin(),
                          rows.begin() + static_cast<ptrdiff_t>(keep),
                          rows.end(), less);
        rows.resize(keep);
        // Charge: one pruning comparison per row plus the heap work for
        // the rows that survived the threshold.
        core.cycles().ChargeCompute(
            static_cast<double>(end - begin) +
            dpu.params().topk_cycles_per_row * static_cast<double>(inserted));
        return Status::OK();
      }));

  // Merge per-morsel candidates; final selection on one core.
  std::vector<uint32_t> merged;
  for (const auto& rows : local) {
    merged.insert(merged.end(), rows.begin(), rows.end());
  }
  const size_t keep = std::min(k, merged.size());
  std::partial_sort(merged.begin(),
                    merged.begin() + static_cast<ptrdiff_t>(keep),
                    merged.end(), [&](uint32_t a, uint32_t b) {
                      return RowLess(input, keys, a, b);
                    });
  merged.resize(keep);
  dpu.core(0).cycles().ChargeCompute(dpu.params().topk_cycles_per_row *
                                     static_cast<double>(merged.size()));

  ColumnSet out(input.metas());
  for (uint32_t r : merged) {
    std::vector<int64_t> row(input.num_columns());
    for (size_t c = 0; c < input.num_columns(); ++c) {
      row[c] = input.Value(r, c);
    }
    out.AppendRow(row);
  }
  return out;
}

}  // namespace rapid::core
