#include "core/ops/merge_join_exec.h"

#include "core/ops/sort_exec.h"

namespace rapid::core {

Result<ColumnSet> MergeJoinExec::Execute(dpu::Dpu& dpu,
                                         const ColumnSet& left,
                                         const ColumnSet& right,
                                         const MergeJoinSpec& spec) {
  if (spec.left_key >= left.num_columns() ||
      spec.right_key >= right.num_columns()) {
    return Status::InvalidArgument("merge join key out of range");
  }
  for (const JoinSpec::Output& o : spec.outputs) {
    const ColumnSet& side = o.from_build ? left : right;
    if (o.column >= side.num_columns()) {
      return Status::InvalidArgument("merge join output out of range");
    }
  }

  // Phase 1: partitioning-based sort of both inputs on the join key.
  RAPID_ASSIGN_OR_RETURN(
      ColumnSet ls, SortExec::Execute(dpu, left, {SortKey{spec.left_key,
                                                          true}}));
  RAPID_ASSIGN_OR_RETURN(
      ColumnSet rs, SortExec::Execute(dpu, right, {SortKey{spec.right_key,
                                                           true}}));

  std::vector<ColumnMeta> metas;
  for (const JoinSpec::Output& o : spec.outputs) {
    metas.push_back(o.from_build ? ls.meta(o.column) : rs.meta(o.column));
  }
  ColumnSet out(metas);

  // Phase 2: merge. Equal-key groups cross-product.
  const std::vector<int64_t>& lk = ls.column(spec.left_key);
  const std::vector<int64_t>& rk = rs.column(spec.right_key);
  size_t i = 0;
  size_t j = 0;
  uint64_t emitted = 0;
  while (i < lk.size() && j < rk.size()) {
    if (lk[i] < rk[j]) {
      ++i;
    } else if (lk[i] > rk[j]) {
      ++j;
    } else {
      const int64_t key = lk[i];
      size_t i_end = i;
      size_t j_end = j;
      while (i_end < lk.size() && lk[i_end] == key) ++i_end;
      while (j_end < rk.size() && rk[j_end] == key) ++j_end;
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          for (size_t c = 0; c < spec.outputs.size(); ++c) {
            const JoinSpec::Output& o = spec.outputs[c];
            out.column(c).push_back(o.from_build ? ls.Value(a, o.column)
                                                 : rs.Value(b, o.column));
          }
          ++emitted;
        }
      }
      i = i_end;
      j = j_end;
    }
  }

  // Merge step charge: one pass over both sorted runs plus emission.
  dpu.core(0).cycles().ChargeCompute(
      2.0 * static_cast<double>(lk.size() + rk.size()) +
      dpu.params().join_probe_emit_cycles * static_cast<double>(emitted));
  return out;
}

}  // namespace rapid::core
