// Sorting and Top-K (Section 5.4, "Other Operators").
//
// Sorting uses the partitioning-based algorithm: rows are
// range-partitioned across dpCores on the primary key (DMS range
// partitioning with sampled bounds), each core radix-sorts its
// partition, and concatenating partitions in bound order yields the
// global order. Multi-key sorts run LSD-stable radix passes from the
// least significant key to the most significant.
//
// Top-K is vectorized: each core maintains a bounded heap over its
// share of the input, pruning tiles against the current k-th value;
// per-core heaps merge at the end.

#ifndef RAPID_CORE_OPS_SORT_EXEC_H_
#define RAPID_CORE_OPS_SORT_EXEC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/qef/column_set.h"
#include "dpu/dpu.h"

namespace rapid::core {

struct SortKey {
  size_t column = 0;
  bool ascending = true;
};

class SortExec {
 public:
  // Stable sort of all rows of `input` by `keys`.
  static Result<ColumnSet> Execute(dpu::Dpu& dpu, const ColumnSet& input,
                                   const std::vector<SortKey>& keys);

  // Returns the row permutation that sorts `input` by `keys` (used by
  // the window operator, which needs positions, not moved rows).
  static std::vector<uint32_t> SortedPermutation(
      dpu::Dpu& dpu, const ColumnSet& input, const std::vector<SortKey>& keys);
};

class TopKExec {
 public:
  // First `k` rows of the input under the `keys` order.
  static Result<ColumnSet> Execute(dpu::Dpu& dpu, const ColumnSet& input,
                                   const std::vector<SortKey>& keys, size_t k);
};

}  // namespace rapid::core

#endif  // RAPID_CORE_OPS_SORT_EXEC_H_
