// Window functions (Section 5.4): analytic aggregates and rank with a
// PARTITION BY clause. The input is ordered by (partition keys, order
// keys) using the partitioning-based sort; each window partition is
// then a contiguous run, processed independently across dpCores.

#ifndef RAPID_CORE_OPS_WINDOW_EXEC_H_
#define RAPID_CORE_OPS_WINDOW_EXEC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/ops/sort_exec.h"
#include "core/qef/column_set.h"
#include "dpu/dpu.h"

namespace rapid::core {

enum class WindowFunc {
  kRowNumber,
  kRank,
  kDenseRank,
  kRunningSum,   // sum(value) over (partition by .. order by .. rows
                 // unbounded preceding)
  kPartitionSum, // sum(value) over (partition by ..)
};

struct WindowSpec {
  WindowFunc func = WindowFunc::kRowNumber;
  std::vector<size_t> partition_by;  // column indices
  std::vector<SortKey> order_by;
  size_t value_column = 0;  // for the sum functions
  std::string output_name = "win";
};

class WindowExec {
 public:
  // Returns the input rows (ordered by partition keys then order keys)
  // with one appended column per window function result.
  static Result<ColumnSet> Execute(dpu::Dpu& dpu, const ColumnSet& input,
                                   const std::vector<WindowSpec>& specs);
};

}  // namespace rapid::core

#endif  // RAPID_CORE_OPS_WINDOW_EXEC_H_
