// MaterializeSink: the task-boundary operator. Streams incoming tiles
// back to DRAM via the DMS (write direction of the double-buffered
// loop), appending to a per-core ColumnSet that the next task reads.

#ifndef RAPID_CORE_OPS_SINK_OP_H_
#define RAPID_CORE_OPS_SINK_OP_H_

#include <vector>

#include "core/qef/column_set.h"
#include "core/qef/operator.h"

namespace rapid::core {

class MaterializeSink : public PipelineOp {
 public:
  // `out` is the per-core destination; metas define the output schema
  // (tile columns are matched positionally).
  explicit MaterializeSink(ColumnSet* out) : out_(out) {}

  size_t DmemBytes(size_t tile_rows) const override {
    // Output staging buffers, double-buffered for the write direction.
    return 2 * out_->num_columns() * tile_rows * sizeof(int64_t);
  }

  Status Open(ExecCtx&) override { return Status::OK(); }

  Status Consume(ExecCtx& ctx, const Tile& tile) override {
    RAPID_DCHECK(tile.columns.size() == out_->num_columns());
    for (size_t c = 0; c < tile.columns.size(); ++c) {
      std::vector<int64_t>& dst = out_->column(c);
      const TileColumn& src = tile.columns[c];
      const size_t old = dst.size();
      dst.resize(old + tile.rows);
      WidenColumn(src, nullptr, tile.rows, dst.data() + old);
      // Record the observed scale so downstream readers decode
      // decimals correctly.
      out_->meta(c).dsb_scale = src.dsb_scale;
      if (src.type == storage::DataType::kDecimal) {
        out_->meta(c).type = storage::DataType::kDecimal;
      }
    }
    // DMS write stream: one descriptor chain per tile.
    ctx.ChargeDms(dpu::DmsTileTransferCycles(
        *ctx.params, static_cast<int>(tile.columns.size()), tile.rows,
        sizeof(int64_t), /*read_write=*/false));
    return Status::OK();
  }

  Status Finish(ExecCtx&) override { return Status::OK(); }

 private:
  ColumnSet* out_;
};

}  // namespace rapid::core

#endif  // RAPID_CORE_OPS_SINK_OP_H_
