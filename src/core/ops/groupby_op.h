// Group-by operator (Section 5.4).
//
// RAPID has two group-by strategies chosen by QComp from NDV
// statistics:
//  * High NDV: a partitioning phase distributes distinct groups across
//    dpCores so each core's hash table fits in DMEM; this operator
//    then runs per partition with disjoint key sets (no merge needed).
//  * Low NDV: the operator runs on-the-fly over each core's share of
//    the input, and a *merge operator* combines the small per-core
//    tables afterwards (merge works on aggregated data, low overhead).
//
// Both strategies use this operator; the strategy decides what input
// each core sees and whether MergeFrom runs afterwards.

#ifndef RAPID_CORE_OPS_GROUPBY_OP_H_
#define RAPID_CORE_OPS_GROUPBY_OP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/expr.h"
#include "core/qef/column_set.h"
#include "core/qef/operator.h"
#include "primitives/agg.h"

namespace rapid::core {

enum class AggFunc { kSum, kMin, kMax, kCount };

struct AggSpec {
  std::string name;
  AggFunc func = AggFunc::kCount;
  ExprPtr expr;  // input expression; null for COUNT(*)
  // Optional FILTER clause: only qualifying rows feed this aggregate
  // (how the compiler lowers CASE WHEN <pred> THEN <expr> END inside
  // an aggregate, e.g. TPC-H Q14's promo_revenue numerator).
  std::shared_ptr<Predicate> filter;
};

// Chained hash table over columnar key/aggregate storage. Sized by
// the planner's NDV estimate; lives in DMEM in the real system.
class GroupHashTable {
 public:
  GroupHashTable(size_t num_keys, size_t num_aggs);

  // Returns the group index for `keys`, inserting a new group if
  // needed. `chain_steps` (optional) accumulates collision-chain
  // traversals for cycle accounting.
  size_t GroupFor(const int64_t* keys, uint64_t* chain_steps = nullptr);

  void UpdateSum(size_t group, size_t agg, int64_t value) {
    states_[agg][group].sum += value;
  }
  void UpdateMin(size_t group, size_t agg, int64_t value) {
    auto& st = states_[agg][group];
    if (value < st.min) st.min = value;
  }
  void UpdateMax(size_t group, size_t agg, int64_t value) {
    auto& st = states_[agg][group];
    if (value > st.max) st.max = value;
  }
  void UpdateCount(size_t group, size_t agg) { ++states_[agg][group].count; }

  size_t num_groups() const { return num_groups_; }
  int64_t key(size_t group, size_t k) const { return keys_[k][group]; }
  const primitives::AggState& state(size_t group, size_t agg) const {
    return states_[agg][group];
  }

  // Merge operator (low-NDV strategy): folds `other` into this table.
  void MergeFrom(const GroupHashTable& other,
                 const std::vector<AggFunc>& funcs);

  // Approximate DMEM footprint (keys + states + buckets).
  size_t ByteSize() const;

 private:
  void MaybeGrow();

  size_t num_keys_;
  size_t num_groups_ = 0;
  std::vector<std::vector<int64_t>> keys_;  // [key][group]
  std::vector<std::vector<primitives::AggState>> states_;  // [agg][group]
  // Compact chained table (DMEM-style integer arrays, like the join
  // kernel): heads_ maps hash buckets to the last group inserted,
  // next_ chains groups with colliding hashes.
  std::vector<int32_t> heads_;
  std::vector<int32_t> next_;
  std::vector<uint32_t> hashes_;  // per group, for cheap rehashing
};

class GroupByOp : public PipelineOp {
 public:
  GroupByOp(std::vector<ExprPtr> keys, std::vector<AggSpec> aggs,
            ColumnBinding binding);

  size_t DmemBytes(size_t tile_rows) const override;
  Status Open(ExecCtx& ctx) override;
  Status Consume(ExecCtx& ctx, const Tile& tile) override;
  Status Finish(ExecCtx& ctx) override;

  GroupHashTable& table() { return table_; }
  const std::vector<AggFunc> funcs() const;
  // DSB scales of key columns / aggregate results observed during
  // execution (needed to decode the output).
  const std::vector<int>& key_scales() const { return key_scales_; }
  const std::vector<int>& agg_scales() const { return agg_scales_; }

  // Emits groups + aggregates into `out` (columns: keys then aggs).
  Status EmitInto(ColumnSet* out) const;

 private:
  std::vector<ExprPtr> keys_;
  std::vector<AggSpec> aggs_;
  ColumnBinding binding_;
  GroupHashTable table_;
  std::vector<int> key_scales_;
  std::vector<int> agg_scales_;
  std::vector<std::vector<int64_t>> key_scratch_;
  std::vector<std::vector<int64_t>> agg_scratch_;
};

}  // namespace rapid::core

#endif  // RAPID_CORE_OPS_GROUPBY_OP_H_
