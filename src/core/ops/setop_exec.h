// Set operations (Section 5.4): UNION, INTERSECT and MINUS with SQL
// set semantics (distinct results). Implemented hash-based: rows are
// hash-partitioned across dpCores on the full row, then each core
// evaluates the operation on its disjoint share.

#ifndef RAPID_CORE_OPS_SETOP_EXEC_H_
#define RAPID_CORE_OPS_SETOP_EXEC_H_

#include "common/status.h"
#include "core/qef/column_set.h"
#include "dpu/dpu.h"

namespace rapid::core {

enum class SetOpKind { kUnion, kIntersect, kMinus };

class SetOpExec {
 public:
  // Left/right must have the same column count. Output rows are
  // distinct; column metadata is taken from the left input.
  static Result<ColumnSet> Execute(dpu::Dpu& dpu, SetOpKind kind,
                                   const ColumnSet& left,
                                   const ColumnSet& right);
};

}  // namespace rapid::core

#endif  // RAPID_CORE_OPS_SETOP_EXEC_H_
