#include "core/ops/probe_op.h"

#include <algorithm>

#include "common/crc32.h"
#include "dpu/cost_model.h"

namespace rapid::core {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

uint32_t HashTileRow(const Tile& tile, const std::vector<size_t>& keys,
                     size_t row) {
  uint32_t h = 0xFFFFFFFFu;
  for (size_t k : keys) {
    h = Crc32Combine(h, static_cast<uint64_t>(tile.columns[k].GetInt(row)));
  }
  return h;
}

uint32_t HashBuildRow(const ColumnSet& set, const std::vector<size_t>& keys,
                      size_t row) {
  uint32_t h = 0xFFFFFFFFu;
  for (size_t k : keys) {
    h = Crc32Combine(h, static_cast<uint64_t>(set.Value(row, k)));
  }
  return h;
}

}  // namespace

HashJoinProbeOp::HashJoinProbeOp(ProbeOpSpec spec) : spec_(std::move(spec)) {}

HashJoinProbeOp::~HashJoinProbeOp() = default;

size_t HashJoinProbeOp::DmemBytes(size_t tile_rows) const {
  // Output staging buffers (widened) + hash/match-count scratch. The
  // hash table itself is sized at Open() from the remaining budget.
  return spec_.outputs.size() * tile_rows * sizeof(int64_t) +
         2 * tile_rows * sizeof(uint32_t) + 64;
}

Status HashJoinProbeOp::Open(ExecCtx& ctx) {
  RAPID_RETURN_NOT_OK(ctx.dmem().Allocate(DmemBytes(spec_.tile_rows)).status());
  out_buffers_.assign(spec_.outputs.size(), {});
  out_types_.assign(spec_.outputs.size(), storage::DataType::kInt64);
  out_scales_.assign(spec_.outputs.size(), 0);
  hash_scratch_ = ctx.pool().AcquireArray<uint32_t>(spec_.tile_rows);
  count_scratch_ = ctx.pool().AcquireArray<uint32_t>(spec_.tile_rows);

  const ColumnSet& build = *spec_.build;
  const size_t rows = build.num_rows();
  for (size_t c = 0; c < spec_.outputs.size(); ++c) {
    const ProbeOpSpec::Output& o = spec_.outputs[c];
    if (o.from_build) {
      out_types_[c] = build.meta(o.column).type;
      out_scales_[c] = build.meta(o.column).dsb_scale;
    }
  }

  // Size the private table: target capacity from the spec, degraded to
  // whatever the chain's remaining DMEM allows. Rows beyond the
  // capacity overflow to the table's DRAM region (small-skew path).
  const size_t reduced = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(std::max<size_t>(rows, 1)) /
                             spec_.bucket_reduction));
  size_t buckets = NextPow2(reduced);
  size_t capacity = std::min(spec_.dmem_capacity_rows, rows);
  const size_t avail = ctx.dmem().free_bytes();
  table_ = std::make_unique<primitives::CompactJoinTable>(rows, buckets,
                                                          capacity);
  while (table_->DmemBytes() > avail && capacity > 64) {
    capacity /= 2;
    if (buckets > 64) buckets /= 2;
    table_ = std::make_unique<primitives::CompactJoinTable>(rows, buckets,
                                                            capacity);
  }
  RAPID_RETURN_NOT_OK(ctx.dmem().Allocate(table_->DmemBytes()).status());

  // Broadcast build: every core ingests the full build side. The DMS
  // streams the key columns in tile by tile; build compute is charged
  // per core (the price of skipping both partition passes — QComp only
  // chooses this when the build side is small).
  for (size_t start = 0; start < rows; start += spec_.tile_rows) {
    const size_t n = std::min(spec_.tile_rows, rows - start);
    for (size_t i = 0; i < n; ++i) {
      const size_t row = start + i;
      table_->Insert(HashBuildRow(build, spec_.build_keys, row), row);
    }
    ctx.ChargeCompute(dpu::JoinBuildTileCycles(*ctx.params, n));
    ctx.ChargeVectorizationPenalty(n);
    ctx.ChargeDms(dpu::DmsTileTransferCycles(
        *ctx.params, static_cast<int>(spec_.build_keys.size()), n,
        sizeof(int64_t), false));
  }
  stats_.build_rows = rows;
  if (table_->overflowed()) ++stats_.overflowed_partitions;
  return Status::OK();
}

void HashJoinProbeOp::EmitRow(const Tile& tile, size_t tile_row, size_t brow) {
  const ColumnSet& build = *spec_.build;
  for (size_t c = 0; c < spec_.outputs.size(); ++c) {
    const ProbeOpSpec::Output& o = spec_.outputs[c];
    out_buffers_[c].push_back(
        o.from_build
            ? (brow == SIZE_MAX ? kJoinNull : build.Value(brow, o.column))
            : tile.columns[o.column].GetInt(tile_row));
  }
}

Status HashJoinProbeOp::FlushPending(ExecCtx& ctx) {
  const size_t total = out_buffers_.empty() ? 0 : out_buffers_[0].size();
  // Matches accumulate past the tile size before a flush (a probe tile
  // can emit many rows per input row), so slice the staging buffers:
  // downstream ops sized their DMEM vectors for tile_rows-row tiles.
  for (size_t start = 0; start < total; start += spec_.tile_rows) {
    Tile out;
    out.rows = std::min(spec_.tile_rows, total - start);
    out.columns.resize(spec_.outputs.size());
    for (size_t c = 0; c < spec_.outputs.size(); ++c) {
      out.columns[c].data =
          reinterpret_cast<uint8_t*>(out_buffers_[c].data() + start);
      out.columns[c].type = out_types_[c] == storage::DataType::kDecimal
                                ? storage::DataType::kDecimal
                                : storage::DataType::kInt64;
      out.columns[c].dsb_scale = out_scales_[c];
    }
    RAPID_RETURN_NOT_OK(Push(ctx, out));
  }
  for (auto& buf : out_buffers_) buf.clear();
  return Status::OK();
}

Status HashJoinProbeOp::Consume(ExecCtx& ctx, const Tile& tile) {
  const size_t n = tile.rows;
  stats_.probe_rows += n;
  if (hash_scratch_.size() < n * sizeof(uint32_t)) {
    hash_scratch_ = ctx.pool().AcquireArray<uint32_t>(n);
    count_scratch_ = ctx.pool().AcquireArray<uint32_t>(n);
  }
  uint32_t* hashes = hash_scratch_.as<uint32_t>();
  uint32_t* counts = count_scratch_.as<uint32_t>();
  // Capture probe-side decimal metadata from the incoming tile so the
  // sink records scales correctly.
  for (size_t c = 0; c < spec_.outputs.size(); ++c) {
    const ProbeOpSpec::Output& o = spec_.outputs[c];
    if (!o.from_build) {
      const TileColumn& src = tile.columns[o.column];
      out_types_[c] = src.type == storage::DataType::kDecimal
                          ? storage::DataType::kDecimal
                          : storage::DataType::kInt64;
      out_scales_[c] = src.dsb_scale;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    hashes[i] = HashTileRow(tile, spec_.probe_keys, i);
  }

  const ColumnSet& build = *spec_.build;
  primitives::ProbeStats tile_stats;
  table_->ProbeBatch(
      hashes, n,
      [&](size_t i, size_t brow) {
        for (size_t k = 0; k < spec_.build_keys.size(); ++k) {
          if (build.Value(brow, spec_.build_keys[k]) !=
              tile.columns[spec_.probe_keys[k]].GetInt(i)) {
            return false;
          }
        }
        return true;
      },
      [&](size_t i, size_t brow) {
        if (spec_.type == JoinType::kInner ||
            spec_.type == JoinType::kLeftOuter) {
          EmitRow(tile, i, brow);
        }
      },
      counts, &tile_stats);

  for (size_t i = 0; i < n; ++i) {
    const uint32_t matches = counts[i];
    if (matches == 0 && (spec_.type == JoinType::kAnti ||
                         spec_.type == JoinType::kLeftOuter)) {
      EmitRow(tile, i, SIZE_MAX);
    } else if (matches > 0 && spec_.type == JoinType::kSemi) {
      EmitRow(tile, i, SIZE_MAX);
    }
    stats_.matches += matches;
  }
  stats_.chain_steps += tile_stats.chain_steps;
  stats_.overflow_steps += tile_stats.overflow_steps;

  ctx.ChargeCompute(dpu::JoinProbeTileCycles(*ctx.params, n,
                                             tile_stats.chain_steps,
                                             tile_stats.matches));
  ctx.ChargeVectorizationPenalty(n);
  ctx.ChargeCompute(ctx.params->join_overflow_access_cycles *
                    static_cast<double>(tile_stats.overflow_steps));
  // No DMS charge for the probe input: the tile is already
  // DMEM-resident, streamed in once by the chain's accessor. This is
  // the fusion win over the materialize-partition-join path.

  if (!out_buffers_.empty() && out_buffers_[0].size() >= spec_.tile_rows) {
    RAPID_RETURN_NOT_OK(FlushPending(ctx));
  }
  return Status::OK();
}

Status HashJoinProbeOp::Finish(ExecCtx& ctx) {
  RAPID_RETURN_NOT_OK(FlushPending(ctx));
  return PushFinish(ctx);
}

}  // namespace rapid::core
