#include "core/ops/project_op.h"

namespace rapid::core {

ProjectOp::ProjectOp(std::vector<std::pair<std::string, ExprPtr>> projections,
                     ColumnBinding binding, size_t tile_rows)
    : projections_(std::move(projections)),
      binding_(std::move(binding)),
      tile_rows_(tile_rows) {}

size_t ProjectOp::DmemBytes(size_t tile_rows) const {
  return projections_.size() * tile_rows * sizeof(int64_t);
}

Status ProjectOp::Open(ExecCtx& ctx) {
  RAPID_RETURN_NOT_OK(ctx.dmem().Allocate(DmemBytes(tile_rows_)).status());
  out_buffers_.clear();
  out_buffers_.reserve(projections_.size());
  for (size_t c = 0; c < projections_.size(); ++c) {
    out_buffers_.push_back(ctx.pool().AcquireArray<int64_t>(tile_rows_));
  }
  return Status::OK();
}

Status ProjectOp::Consume(ExecCtx& ctx, const Tile& tile) {
  Tile out;
  out.rows = tile.rows;
  out.base_row = tile.base_row;
  out.columns.resize(projections_.size());
  for (size_t c = 0; c < projections_.size(); ++c) {
    RAPID_ASSIGN_OR_RETURN(
        int scale,
        EvalExpr(ctx, tile, binding_, *projections_[c].second,
                 out_buffers_[c].as<int64_t>()));
    out.columns[c].data = out_buffers_[c].data();
    out.columns[c].type = scale != 0 ? storage::DataType::kDecimal
                                     : storage::DataType::kInt64;
    out.columns[c].dsb_scale = scale;
  }
  return Push(ctx, out);
}

Status ProjectOp::Finish(ExecCtx& ctx) { return PushFinish(ctx); }

ColumnBinding ProjectOp::OutputBinding() const {
  ColumnBinding out;
  for (size_t c = 0; c < projections_.size(); ++c) {
    out[projections_[c].first] = c;
  }
  return out;
}

}  // namespace rapid::core
