#include "core/ops/groupby_op.h"

#include "common/crc32.h"
#include "common/logging.h"

namespace rapid::core {

GroupHashTable::GroupHashTable(size_t num_keys, size_t num_aggs)
    : num_keys_(num_keys), keys_(num_keys), states_(num_aggs),
      heads_(64, -1) {}

void GroupHashTable::MaybeGrow() {
  if (num_groups_ < heads_.size()) return;
  heads_.assign(heads_.size() * 2, -1);
  const uint32_t mask = static_cast<uint32_t>(heads_.size()) - 1;
  for (size_t g = 0; g < num_groups_; ++g) {
    const uint32_t idx = hashes_[g] & mask;
    next_[g] = heads_[idx];
    heads_[idx] = static_cast<int32_t>(g);
  }
}

size_t GroupHashTable::GroupFor(const int64_t* keys, uint64_t* chain_steps) {
  uint32_t hash = 0xFFFFFFFFu;
  for (size_t k = 0; k < num_keys_; ++k) {
    hash = Crc32Combine(hash, static_cast<uint64_t>(keys[k]));
  }
  const uint32_t mask = static_cast<uint32_t>(heads_.size()) - 1;
  for (int32_t g = heads_[hash & mask]; g >= 0;
       g = next_[static_cast<size_t>(g)]) {
    if (chain_steps != nullptr) ++*chain_steps;
    if (hashes_[static_cast<size_t>(g)] != hash) continue;
    bool match = true;
    for (size_t k = 0; k < num_keys_; ++k) {
      if (keys_[k][static_cast<size_t>(g)] != keys[k]) {
        match = false;
        break;
      }
    }
    if (match) return static_cast<size_t>(g);
  }
  // New group.
  const auto group = static_cast<uint32_t>(num_groups_);
  ++num_groups_;
  for (size_t k = 0; k < num_keys_; ++k) keys_[k].push_back(keys[k]);
  for (auto& st : states_) st.emplace_back();
  hashes_.push_back(hash);
  next_.push_back(heads_[hash & mask]);
  heads_[hash & mask] = static_cast<int32_t>(group);
  MaybeGrow();
  return group;
}

void GroupHashTable::MergeFrom(const GroupHashTable& other,
                               const std::vector<AggFunc>& funcs) {
  std::vector<int64_t> key_row(num_keys_);
  for (size_t g = 0; g < other.num_groups(); ++g) {
    for (size_t k = 0; k < num_keys_; ++k) key_row[k] = other.key(g, k);
    const size_t mine = GroupFor(key_row.data());
    for (size_t a = 0; a < states_.size(); ++a) {
      const primitives::AggState& theirs = other.state(g, a);
      primitives::AggState& st = states_[a][mine];
      switch (funcs[a]) {
        case AggFunc::kSum:
          st.sum += theirs.sum;
          break;
        case AggFunc::kMin:
          if (theirs.min < st.min) st.min = theirs.min;
          break;
        case AggFunc::kMax:
          if (theirs.max > st.max) st.max = theirs.max;
          break;
        case AggFunc::kCount:
          st.count += theirs.count;
          break;
      }
    }
  }
}

size_t GroupHashTable::ByteSize() const {
  size_t bytes = 0;
  for (const auto& k : keys_) bytes += k.size() * sizeof(int64_t);
  for (const auto& s : states_) bytes += s.size() * sizeof(primitives::AggState);
  bytes += heads_.size() * sizeof(int32_t) + next_.size() * sizeof(int32_t) +
           hashes_.size() * sizeof(uint32_t);
  return bytes;
}

GroupByOp::GroupByOp(std::vector<ExprPtr> keys, std::vector<AggSpec> aggs,
                     ColumnBinding binding)
    : keys_(std::move(keys)),
      aggs_(std::move(aggs)),
      binding_(std::move(binding)),
      table_(keys_.size(), aggs_.size()),
      key_scales_(keys_.size(), 0),
      agg_scales_(aggs_.size(), 0) {}

size_t GroupByOp::DmemBytes(size_t tile_rows) const {
  // Key/aggregate input staging for one tile plus a hash-table
  // reservation (the planner sizes partitions so the table fits).
  return (keys_.size() + aggs_.size()) * tile_rows * sizeof(int64_t);
}

Status GroupByOp::Open(ExecCtx&) {
  key_scratch_.assign(keys_.size(), {});
  agg_scratch_.assign(aggs_.size(), {});
  return Status::OK();
}

Status GroupByOp::Consume(ExecCtx& ctx, const Tile& tile) {
  const size_t n = tile.rows;
  for (size_t k = 0; k < keys_.size(); ++k) {
    RAPID_ASSIGN_OR_RETURN(
        key_scales_[k],
        EvalExpr(ctx, tile, binding_, *keys_[k], &key_scratch_[k]));
  }
  for (size_t a = 0; a < aggs_.size(); ++a) {
    if (aggs_[a].expr != nullptr) {
      RAPID_ASSIGN_OR_RETURN(
          agg_scales_[a],
          EvalExpr(ctx, tile, binding_, *aggs_[a].expr, &agg_scratch_[a]));
    }
  }

  // Evaluate aggregate FILTER clauses vectorized, once per tile.
  std::vector<BitVector> agg_filters(aggs_.size());
  for (size_t a = 0; a < aggs_.size(); ++a) {
    if (aggs_[a].filter != nullptr) {
      RAPID_RETURN_NOT_OK(EvalPredicate(ctx, tile, binding_,
                                        *aggs_[a].filter, &agg_filters[a]));
    }
  }

  uint64_t chain_steps = 0;
  std::vector<int64_t> key_row(keys_.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < keys_.size(); ++k) key_row[k] = key_scratch_[k][i];
    const size_t group = table_.GroupFor(key_row.data(), &chain_steps);
    for (size_t a = 0; a < aggs_.size(); ++a) {
      if (aggs_[a].filter != nullptr && !agg_filters[a].Test(i)) continue;
      switch (aggs_[a].func) {
        case AggFunc::kSum:
          table_.UpdateSum(group, a, agg_scratch_[a][i]);
          break;
        case AggFunc::kMin:
          table_.UpdateMin(group, a, agg_scratch_[a][i]);
          break;
        case AggFunc::kMax:
          table_.UpdateMax(group, a, agg_scratch_[a][i]);
          break;
        case AggFunc::kCount:
          table_.UpdateCount(group, a);
          break;
      }
    }
  }
  // Aggregate updates take the SIMD-dispatched agg kernels' rate; the
  // bucket walk (groupby + chain steps) is pointer chasing and scalar.
  ctx.ChargeCompute(ctx.params->groupby_cycles_per_row *
                        static_cast<double>(n) +
                    ctx.params->agg_cycles_per_row / ctx.params->simd.agg *
                        static_cast<double>(n) *
                        static_cast<double>(aggs_.size()) +
                    2.0 * static_cast<double>(chain_steps));
  ctx.ChargeVectorizationPenalty(n);
  return Status::OK();
}

Status GroupByOp::Finish(ExecCtx&) { return Status::OK(); }

const std::vector<AggFunc> GroupByOp::funcs() const {
  std::vector<AggFunc> out;
  out.reserve(aggs_.size());
  for (const AggSpec& a : aggs_) out.push_back(a.func);
  return out;
}

Status GroupByOp::EmitInto(ColumnSet* out) const {
  RAPID_CHECK(out->num_columns() == keys_.size() + aggs_.size());
  for (size_t g = 0; g < table_.num_groups(); ++g) {
    std::vector<int64_t> row(keys_.size() + aggs_.size());
    for (size_t k = 0; k < keys_.size(); ++k) row[k] = table_.key(g, k);
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const primitives::AggState& st = table_.state(g, a);
      int64_t v = 0;
      switch (aggs_[a].func) {
        case AggFunc::kSum:
          v = st.sum;
          break;
        case AggFunc::kMin:
          v = st.min;
          break;
        case AggFunc::kMax:
          v = st.max;
          break;
        case AggFunc::kCount:
          v = static_cast<int64_t>(st.count);
          break;
      }
      row[keys_.size() + a] = v;
    }
    out->AppendRow(row);
  }
  // Record scales on the output metadata.
  for (size_t k = 0; k < keys_.size(); ++k) {
    out->meta(k).dsb_scale = key_scales_[k];
    if (key_scales_[k] != 0) out->meta(k).type = storage::DataType::kDecimal;
  }
  for (size_t a = 0; a < aggs_.size(); ++a) {
    const size_t c = keys_.size() + a;
    const int scale = aggs_[a].func == AggFunc::kCount ? 0 : agg_scales_[a];
    out->meta(c).dsb_scale = scale;
    if (scale != 0) out->meta(c).type = storage::DataType::kDecimal;
  }
  return Status::OK();
}

}  // namespace rapid::core
