#include "core/ops/partition_exec.h"

#include <algorithm>

#include "common/arena.h"
#include "common/crc32.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/trace.h"
#include "primitives/partition_map.h"
#include "primitives/simd.h"

namespace rapid::core {

namespace {

int Log2Of(int fanout) {
  int bits = 0;
  while ((1 << bits) < fanout) ++bits;
  RAPID_CHECK((1 << bits) == fanout);
  return bits;
}

// Logical row width of a ColumnSet: physical widths of the logical
// types (intermediates are stored widened, but the DMS moves the
// encoded widths on the real machine, so cycle charges use these).
size_t LogicalRowBytes(const ColumnSet& set) {
  size_t bytes = 0;
  for (size_t c = 0; c < set.num_columns(); ++c) {
    bytes += storage::WidthOf(set.meta(c).type);
  }
  return bytes;
}

// Splits rows [begin, end) of `bucket` `fanout` ways using hash bits
// [shift, shift+log2(fanout)). Runs on one core. The DMS charge covers
// the full stream through the partition engine (staging, CRC/CID
// resolution and the scatter back to DRAM in one pass, cf. Figure 8).
//
// The software stage scatters each column directly to its partition
// via the per-partition write-combining kernel (streaming stores on
// AVX2); all tile scratch comes from the core's buffer pool, so a
// warm core touches the heap only to grow the partition vectors
// themselves.
Status SplitRange(dpu::DpCore& core, const dpu::CostParams& params,
                  const ColumnSet& bucket, const std::vector<uint32_t>& hashes,
                  size_t begin, size_t end, int fanout, int hw_fanout,
                  int shift, size_t tile_rows, const CancelToken* cancel,
                  std::vector<ColumnSet>* out) {
  const size_t num_cols = bucket.num_columns();
  const int sw_fanout = fanout / hw_fanout;
  const size_t row_bytes = LogicalRowBytes(bucket);

  out->assign(static_cast<size_t>(fanout), ColumnSet(bucket.metas()));

  const primitives::simd::PartitionKernelTable& kernels =
      primitives::simd::partition_kernels();
  TileBufferPool& pool = core.pool();
  const auto ufanout = static_cast<size_t>(fanout);
  // Fallible acquires: "pool.acquire" faults (allocator pressure on
  // chunk growth) surface as a Status instead of aborting, so the
  // retry/fallback ladder can recover. The RAII handles return every
  // buffer to the pool on any exit — including cancellation mid-round.
  TileBufferPool::Handle pof;
  TileBufferPool::Handle counts;
  TileBufferPool::Handle bases;
  TileBufferPool::Handle wc;
  RAPID_RETURN_NOT_OK(pool.TryAcquireArray<uint16_t>(tile_rows, &pof));
  RAPID_RETURN_NOT_OK(pool.TryAcquireArray<uint32_t>(ufanout, &counts));
  RAPID_RETURN_NOT_OK(pool.TryAcquireArray<int64_t*>(ufanout, &bases));
  RAPID_RETURN_NOT_OK(pool.TryAcquire(
      primitives::simd::ScatterScratchBytes(ufanout), &wc));

  for (size_t start = begin; start < end; start += tile_rows) {
    RAPID_RETURN_NOT_OK(CancelToken::Check(cancel));
    const size_t rows = std::min(tile_rows, end - start);
    // compute_partition_map over this tile's hash values (Listing 2,
    // loops 1-2; the RID list is not needed on the scatter path).
    primitives::ComputePartitionIndex(hashes.data() + start, rows, fanout,
                                      shift, pof.as<uint16_t>(),
                                      counts.as<uint32_t>());
    // Scatter every projection column into the per-partition buffers
    // through software write-combining lines; within each partition
    // rows land in tile order, exactly as the former gather +
    // sequential-emit path appended them.
    for (size_t c = 0; c < num_cols; ++c) {
      const int64_t* in = bucket.column(c).data() + start;
      int64_t** dst = bases.as<int64_t*>();
      for (size_t p = 0; p < ufanout; ++p) {
        auto& vec = (*out)[p].column(c);
        const size_t old = vec.size();
        vec.resize(old + counts.as<uint32_t>()[p]);
        dst[p] = vec.data() + old;
      }
      kernels.scatter_col(in, pof.as<uint16_t>(), rows, ufanout, dst,
                          wc.data());
    }

    // Cycle charges. One partition-engine pass moves the tile's data
    // (read + partitioned write); the dpCore's software stage runs the
    // map/gather loops for the software share of the fan-out.
    if (hw_fanout > 1) {
      core.cycles().ChargeDms(dpu::HwPartitionCycles(
          params, dpu::HwPartitionStrategy::kHash, 1, rows,
          rows * row_bytes));
    } else {
      core.cycles().ChargeDms(static_cast<double>(rows * row_bytes) /
                              params.partition_bytes_per_cycle);
    }
    if (sw_fanout > 1) {
      core.cycles().ChargeCompute(dpu::SwPartitionTileCycles(
          params, rows, static_cast<int>(num_cols), sw_fanout));
    } else {
      // Pure hardware round: the dpCore only drains DMEM buffers.
      core.cycles().ChargeCompute(static_cast<double>(rows));
    }
  }
  return Status::OK();
}

}  // namespace

bool PartitionProgress::CompatibleWith(const PartitionScheme& scheme) const {
  if (rounds_done <= 0 ||
      rounds_done > static_cast<int>(scheme.NumRounds())) {
    return false;
  }
  size_t expect_buckets = 1;
  int expect_bits = 0;
  for (int r = 0; r < rounds_done; ++r) {
    const int fanout = scheme.rounds[static_cast<size_t>(r)].fanout;
    expect_buckets *= static_cast<size_t>(fanout);
    for (int b = 1; b < fanout; b <<= 1) ++expect_bits;
  }
  return buckets.size() == expect_buckets &&
         bucket_hashes.size() == expect_buckets && bits_used == expect_bits;
}

std::vector<uint32_t> PartitionExec::HashColumn(
    const ColumnSet& input, const std::vector<size_t>& key_cols) {
  const size_t n = input.num_rows();
  std::vector<uint32_t> hashes(n, 0xFFFFFFFFu);
  for (size_t kc : key_cols) {
    const int64_t* keys = input.column(kc).data();
    for (size_t i = 0; i < n; ++i) {
      hashes[i] = Crc32Combine(hashes[i], static_cast<uint64_t>(keys[i]));
    }
  }
  return hashes;
}

Result<PartitionedData> PartitionExec::Execute(
    dpu::Dpu& dpu, const ColumnSet& input,
    const std::vector<size_t>& key_cols, const PartitionScheme& scheme,
    size_t tile_rows, const CancelToken* cancel,
    PartitionProgress* progress) {
  if (scheme.rounds.empty()) {
    return Status::InvalidArgument("partition scheme needs >= 1 round");
  }
  for (const PartitionRound& r : scheme.rounds) {
    if (r.fanout < 2 || (r.fanout & (r.fanout - 1)) != 0) {
      return Status::InvalidArgument("round fan-out must be a power of two");
    }
    if (r.hw_fanout < 1 || r.fanout % r.hw_fanout != 0) {
      return Status::InvalidArgument("hw fan-out must divide the round");
    }
  }

  // Current buckets plus their hash columns (hashes are computed once
  // by the DMS hash engine and reused across rounds). A compatible
  // checkpoint replaces the leading rounds — including the hash pass —
  // with the buckets it already holds; resumed rounds are
  // deterministic functions of those buckets, so the final partitions
  // are bit-identical to a from-scratch run.
  std::vector<ColumnSet> buckets;
  std::vector<std::vector<uint32_t>> bucket_hashes;
  int shift = 0;
  size_t start_round = 0;
  if (progress != nullptr && !progress->empty() &&
      progress->CompatibleWith(scheme)) {
    buckets = std::move(progress->buckets);
    bucket_hashes = std::move(progress->bucket_hashes);
    shift = progress->bits_used;
    start_round = static_cast<size_t>(progress->rounds_done);
    progress->clear();
  } else {
    if (progress != nullptr) progress->clear();
    buckets.push_back(ColumnSet(input.metas()));
    buckets[0].Append(input);
    bucket_hashes.push_back(HashColumn(input, key_cols));
  }

  const auto num_cores = static_cast<size_t>(dpu.num_cores());
  for (size_t ri = start_round; ri < scheme.rounds.size(); ++ri) {
    const PartitionRound& round = scheme.rounds[ri];
    const int bits = Log2Of(round.fanout);
    const size_t in_buckets = buckets.size();

    // Work units: each bucket is split into ranges so that every core
    // has work even when few buckets exist (the DMS streams ranges to
    // different cores).
    struct WorkUnit {
      size_t bucket;
      size_t begin;
      size_t end;
      std::vector<ColumnSet> out;
    };
    std::vector<WorkUnit> units;
    size_t total_rows = 0;
    for (const ColumnSet& b : buckets) total_rows += b.num_rows();
    // ~4 units per core so the morsel queue can rebalance; the
    // reassembly below concatenates range outputs in range order, so
    // the result bytes are independent of the unit boundaries.
    const size_t target_rows = std::max<size_t>(
        64, (total_rows + 4 * num_cores - 1) / (4 * num_cores));
    for (size_t b = 0; b < in_buckets; ++b) {
      const size_t rows = buckets[b].num_rows();
      if (rows == 0) {
        units.push_back(WorkUnit{b, 0, 0, {}});
        continue;
      }
      for (size_t begin = 0; begin < rows; begin += target_rows) {
        units.push_back(
            WorkUnit{b, begin, std::min(rows, begin + target_rows), {}});
      }
    }

    // Morsel-driven assignment: each work unit is one morsel, weighted
    // by its row count; idle cores pull or steal the remainder instead
    // of waiting on a straggler.
    std::vector<double> unit_weights(units.size());
    for (size_t u = 0; u < units.size(); ++u) {
      unit_weights[u] = static_cast<double>(units[u].end - units[u].begin);
    }
    dpu::WorkQueue queue(std::move(unit_weights), dpu.num_cores());
    const Status round_status = dpu.ParallelForMorsels(
        queue, cancel, [&](dpu::DpCore& core, size_t u) -> Status {
          WorkUnit& unit = units[u];
          TraceSpan span(TraceMode::kFull, core.id(), "partition.unit",
                         &dpu::TraceClockNow, &core.cycles());
          span.Annotate("round", static_cast<int64_t>(ri));
          span.Annotate("rows", static_cast<uint64_t>(unit.end - unit.begin));
          // Each work unit programs one partition-engine descriptor
          // chain; transient faults are retried inside RunDescriptor.
          RAPID_RETURN_NOT_OK(
              dpu.dms().RunDescriptor(&core.cycles(), faults::kDmsPartition));
          return SplitRange(core, dpu.params(), buckets[unit.bucket],
                            bucket_hashes[unit.bucket], unit.begin, unit.end,
                            round.fanout, round.hw_fanout, shift, tile_rows,
                            cancel, &unit.out);
        });
    if (!round_status.ok()) {
      // `buckets` still holds the previous completed round's output
      // (reassembly only happens below, after the parallel loop), so
      // checkpointing it costs nothing on the fault-free path. A
      // cancelled query saves nothing — it is being abandoned.
      if (progress != nullptr && ri > 0 && !round_status.IsCancellation()) {
        progress->rounds_done = static_cast<int>(ri);
        progress->bits_used = shift;
        progress->buckets = std::move(buckets);
        progress->bucket_hashes = std::move(bucket_hashes);
      }
      return round_status;
    }
    if (TraceCollector::Recording(TraceMode::kFull)) {
      TraceCollector::Instance().AddStepInstant(
          "partition.round",
          {TraceCollector::Arg::I("round", static_cast<int64_t>(ri)),
           TraceCollector::Arg::I("fanout", round.fanout),
           TraceCollector::Arg::U("rows", total_rows)});
    }

    // Reassemble buckets in (bucket, partition) order, merging the
    // range splits in range order for determinism; carry hash columns
    // forward by re-splitting the parents'.
    std::vector<ColumnSet> new_buckets;
    std::vector<std::vector<uint32_t>> new_hashes;
    new_buckets.reserve(in_buckets * static_cast<size_t>(round.fanout));
    for (size_t b = 0; b < in_buckets; ++b) {
      std::vector<ColumnSet> merged(static_cast<size_t>(round.fanout),
                                    ColumnSet(buckets[b].metas()));
      for (const WorkUnit& unit : units) {
        if (unit.bucket != b || unit.out.empty()) continue;
        for (int p = 0; p < round.fanout; ++p) {
          merged[static_cast<size_t>(p)].Append(
              unit.out[static_cast<size_t>(p)]);
        }
      }
      const std::vector<uint32_t>& parent = bucket_hashes[b];
      std::vector<std::vector<uint32_t>> h(static_cast<size_t>(round.fanout));
      const uint32_t mask = static_cast<uint32_t>(round.fanout) - 1;
      for (uint32_t hash : parent) {
        h[(hash >> shift) & mask].push_back(hash);
      }
      for (int p = 0; p < round.fanout; ++p) {
        new_buckets.push_back(std::move(merged[static_cast<size_t>(p)]));
        new_hashes.push_back(std::move(h[static_cast<size_t>(p)]));
      }
    }
    buckets = std::move(new_buckets);
    bucket_hashes = std::move(new_hashes);
    shift += bits;
  }

  PartitionedData out;
  out.partitions = std::move(buckets);
  out.bits_used = shift;
  out.rounds = static_cast<int>(scheme.NumRounds());
  return out;
}

Result<std::vector<ColumnSet>> PartitionExec::Repartition(
    dpu::DpCore& core, const dpu::CostParams& params, const ColumnSet& input,
    const std::vector<size_t>& key_cols, int extra_fanout, int bits_used,
    size_t tile_rows) {
  if (extra_fanout < 2 || (extra_fanout & (extra_fanout - 1)) != 0) {
    return Status::InvalidArgument("repartition fan-out must be power of 2");
  }
  std::vector<uint32_t> hashes = HashColumn(input, key_cols);
  std::vector<ColumnSet> out;
  // Runs on the detecting core: large-skew repartitioning is
  // introduced dynamically for a single oversized partition. No cancel
  // token — the caller owns cancellation at its own tile boundaries.
  RAPID_RETURN_NOT_OK(SplitRange(core, params, input, hashes, 0,
                                 input.num_rows(), extra_fanout,
                                 /*hw_fanout=*/1, bits_used, tile_rows,
                                 /*cancel=*/nullptr, &out));
  return out;
}

}  // namespace rapid::core
