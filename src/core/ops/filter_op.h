// Filter operator (Section 5.4).
//
// Evaluates an ordered conjunction of predicates over each input tile:
// the most selective predicate runs first over the full tile, and
// subsequent predicates refine only the qualifying rows (the
// bit-vector driven bvld/filteq loop of Listing 1). The qualifying-row
// representation is chosen by the planner: a RID list when expected
// selectivity < 1/32 (RIDs are 32-bit, so below that the list is
// smaller than the bit vector), a bit vector otherwise.
//
// The operator supports late materialization: projection columns are
// gathered *after* all predicates are evaluated, so only qualifying
// rows move. Gathered output columns are widened to int64 tiles for
// downstream operators.

#ifndef RAPID_CORE_OPS_FILTER_OP_H_
#define RAPID_CORE_OPS_FILTER_OP_H_

#include <string>
#include <vector>

#include "common/arena.h"
#include "core/expr.h"
#include "core/qef/operator.h"

namespace rapid::core {

class FilterOp : public PipelineOp {
 public:
  // `predicates` must already be ordered most-selective-first by the
  // planner. `output_columns` are the columns to materialize for
  // downstream operators; `binding` maps input column names to tile
  // positions. `use_rid_list` selects the RID-list primitives.
  FilterOp(std::vector<Predicate> predicates,
           std::vector<std::string> output_columns, ColumnBinding binding,
           size_t tile_rows, bool use_rid_list);

  size_t DmemBytes(size_t tile_rows) const override;
  Status Open(ExecCtx& ctx) override;
  Status Consume(ExecCtx& ctx, const Tile& tile) override;
  Status Finish(ExecCtx& ctx) override;

  // Output binding for downstream operators: output column names in
  // tile position order.
  ColumnBinding OutputBinding() const;

  uint64_t rows_in() const { return rows_in_; }
  uint64_t rows_out() const { return rows_out_; }

 private:
  std::vector<Predicate> predicates_;
  std::vector<std::string> output_columns_;
  ColumnBinding binding_;
  size_t tile_rows_;
  bool use_rid_list_;

  // Output tile storage (widened), one recycled tile-pool buffer per
  // output column; the RID scratch rides in the pool too.
  std::vector<TileBufferPool::Handle> out_buffers_;
  TileBufferPool::Handle rid_buffer_;
  // Qualifying-row bit vectors, hoisted so per-tile evaluation reuses
  // their capacity instead of reallocating.
  BitVector selected_;
  BitVector refined_;
  uint64_t rows_in_ = 0;
  uint64_t rows_out_ = 0;
};

}  // namespace rapid::core

#endif  // RAPID_CORE_OPS_FILTER_OP_H_
