#include "core/ops/window_exec.h"

#include <algorithm>
#include <utility>

namespace rapid::core {

namespace {

bool SamePartition(const ColumnSet& set, const std::vector<size_t>& keys,
                   size_t a, size_t b) {
  for (size_t k : keys) {
    if (set.Value(a, k) != set.Value(b, k)) return false;
  }
  return true;
}

bool SameOrderKeys(const ColumnSet& set, const std::vector<SortKey>& keys,
                   size_t a, size_t b) {
  for (const SortKey& k : keys) {
    if (set.Value(a, k.column) != set.Value(b, k.column)) return false;
  }
  return true;
}

}  // namespace

Result<ColumnSet> WindowExec::Execute(dpu::Dpu& dpu, const ColumnSet& input,
                                      const std::vector<WindowSpec>& specs) {
  if (specs.empty()) {
    return Status::InvalidArgument("window exec needs >= 1 function");
  }
  // All specs must share the partition/order clause (one sort pass);
  // the planner splits incompatible clauses into separate steps.
  for (const WindowSpec& spec : specs) {
    if (spec.partition_by != specs[0].partition_by ||
        spec.order_by.size() != specs[0].order_by.size()) {
      return Status::NotSupported(
          "window functions in one step must share partition/order clause");
    }
    if ((spec.func == WindowFunc::kRunningSum ||
         spec.func == WindowFunc::kPartitionSum) &&
        spec.value_column >= input.num_columns()) {
      return Status::InvalidArgument("window value column out of range");
    }
  }

  // Order by (partition keys, order keys).
  std::vector<SortKey> sort_keys;
  for (size_t k : specs[0].partition_by) sort_keys.push_back(SortKey{k, true});
  for (const SortKey& k : specs[0].order_by) sort_keys.push_back(k);
  RAPID_ASSIGN_OR_RETURN(ColumnSet sorted,
                         SortExec::Execute(dpu, input, sort_keys));

  const size_t n = sorted.num_rows();

  // Locate partition runs.
  std::vector<size_t> starts;
  for (size_t i = 0; i < n; ++i) {
    if (i == 0 ||
        !SamePartition(sorted, specs[0].partition_by, i - 1, i)) {
      starts.push_back(i);
    }
  }
  starts.push_back(n);

  // Output = sorted input + one column per function.
  std::vector<ColumnMeta> metas = sorted.metas();
  for (const WindowSpec& spec : specs) {
    ColumnMeta m;
    m.name = spec.output_name;
    if (spec.func == WindowFunc::kRunningSum ||
        spec.func == WindowFunc::kPartitionSum) {
      m = sorted.meta(spec.value_column);
      m.name = spec.output_name;
    }
    metas.push_back(m);
  }
  ColumnSet out(metas);
  for (size_t c = 0; c < sorted.num_columns(); ++c) {
    out.column(c) = sorted.column(c);
  }
  for (size_t f = 0; f < specs.size(); ++f) {
    out.column(sorted.num_columns() + f).resize(n);
  }

  // Each run is independent and writes its rows by absolute index, so
  // any core may take any run: runs are morsels weighted by length —
  // one giant partition no longer serializes behind a striped core.
  const size_t num_runs = starts.size() - 1;
  std::vector<double> run_weights(num_runs);
  for (size_t run = 0; run < num_runs; ++run) {
    run_weights[run] = static_cast<double>(starts[run + 1] - starts[run]);
  }
  dpu::WorkQueue queue(std::move(run_weights), dpu.num_cores());
  RAPID_RETURN_NOT_OK(dpu.ParallelForMorsels(
      queue, /*cancel=*/nullptr, [&](dpu::DpCore& core, size_t run) -> Status {
        const size_t begin = starts[run];
        const size_t end = starts[run + 1];
        for (size_t f = 0; f < specs.size(); ++f) {
          const WindowSpec& spec = specs[f];
          std::vector<int64_t>& dst = out.column(sorted.num_columns() + f);
          switch (spec.func) {
            case WindowFunc::kRowNumber: {
              for (size_t i = begin; i < end; ++i) {
                dst[i] = static_cast<int64_t>(i - begin + 1);
              }
              break;
            }
            case WindowFunc::kRank: {
              int64_t rank = 1;
              for (size_t i = begin; i < end; ++i) {
                if (i > begin && !SameOrderKeys(sorted, spec.order_by, i - 1, i)) {
                  rank = static_cast<int64_t>(i - begin + 1);
                }
                dst[i] = rank;
              }
              break;
            }
            case WindowFunc::kDenseRank: {
              int64_t rank = 1;
              for (size_t i = begin; i < end; ++i) {
                if (i > begin &&
                    !SameOrderKeys(sorted, spec.order_by, i - 1, i)) {
                  ++rank;
                }
                dst[i] = rank;
              }
              break;
            }
            case WindowFunc::kRunningSum: {
              int64_t sum = 0;
              for (size_t i = begin; i < end; ++i) {
                sum += sorted.Value(i, spec.value_column);
                dst[i] = sum;
              }
              break;
            }
            case WindowFunc::kPartitionSum: {
              int64_t sum = 0;
              for (size_t i = begin; i < end; ++i) {
                sum += sorted.Value(i, spec.value_column);
              }
              for (size_t i = begin; i < end; ++i) dst[i] = sum;
              break;
            }
          }
        }
        core.cycles().ChargeCompute(
            dpu.params().agg_cycles_per_row / dpu.params().simd.agg *
            static_cast<double>((end - begin) * specs.size()));
        return Status::OK();
      }));

  return out;
}

}  // namespace rapid::core
