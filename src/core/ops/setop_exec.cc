#include "core/ops/setop_exec.h"

#include <set>
#include <utility>
#include <vector>

#include "common/crc32.h"

namespace rapid::core {

namespace {

uint32_t RowHash(const ColumnSet& set, size_t row) {
  uint32_t h = 0xFFFFFFFFu;
  for (size_t c = 0; c < set.num_columns(); ++c) {
    h = Crc32Combine(h, static_cast<uint64_t>(set.Value(row, c)));
  }
  return h;
}

std::vector<int64_t> RowTuple(const ColumnSet& set, size_t row) {
  std::vector<int64_t> t(set.num_columns());
  for (size_t c = 0; c < set.num_columns(); ++c) t[c] = set.Value(row, c);
  return t;
}

}  // namespace

Result<ColumnSet> SetOpExec::Execute(dpu::Dpu& dpu, SetOpKind kind,
                                     const ColumnSet& left,
                                     const ColumnSet& right) {
  if (left.num_columns() != right.num_columns()) {
    return Status::InvalidArgument("set operation inputs must align");
  }
  const int num_cores = dpu.num_cores();
  // Fixed fan-out independent of the core count: partition contents —
  // and so the merged output order — are the same no matter how many
  // cores execute. Partitions are morsels, balanced by the scheduler.
  constexpr uint32_t kFanout = 64;

  // Hash-partition both sides by full-row hash (modulo fan-out —
  // hardware round-robin engine handles non-power-of-two fanouts).
  std::vector<std::vector<uint32_t>> lpart(kFanout);
  std::vector<std::vector<uint32_t>> rpart(kFanout);
  for (size_t i = 0; i < left.num_rows(); ++i) {
    lpart[RowHash(left, i) % kFanout].push_back(static_cast<uint32_t>(i));
  }
  for (size_t i = 0; i < right.num_rows(); ++i) {
    rpart[RowHash(right, i) % kFanout].push_back(static_cast<uint32_t>(i));
  }
  dpu.core(0).cycles().ChargeDms(dpu::HwPartitionCycles(
      dpu.params(), dpu::HwPartitionStrategy::kHash,
      static_cast<int>(left.num_columns()),
      left.num_rows() + right.num_rows(),
      (left.num_rows() + right.num_rows()) * left.num_columns() *
          sizeof(int64_t)));

  std::vector<ColumnSet> per_part(kFanout, ColumnSet(left.metas()));
  std::vector<double> weights(kFanout);
  for (size_t p = 0; p < kFanout; ++p) {
    weights[p] = static_cast<double>(lpart[p].size() + rpart[p].size());
  }
  dpu::WorkQueue queue(std::move(weights), num_cores);
  RAPID_RETURN_NOT_OK(dpu.ParallelForMorsels(
      queue, /*cancel=*/nullptr, [&](dpu::DpCore& core, size_t p) -> Status {
        const auto& lrows = lpart[p];
        const auto& rrows = rpart[p];
        std::set<std::vector<int64_t>> rset;
        for (uint32_t r : rrows) rset.insert(RowTuple(right, r));
        std::set<std::vector<int64_t>> emitted;
        ColumnSet& out = per_part[p];

        switch (kind) {
          case SetOpKind::kUnion: {
            for (uint32_t r : lrows) {
              auto t = RowTuple(left, r);
              if (emitted.insert(t).second) out.AppendRow(t);
            }
            for (const auto& t : rset) {
              if (emitted.insert(t).second) out.AppendRow(t);
            }
            break;
          }
          case SetOpKind::kIntersect: {
            for (uint32_t r : lrows) {
              auto t = RowTuple(left, r);
              if (rset.count(t) != 0 && emitted.insert(t).second) {
                out.AppendRow(t);
              }
            }
            break;
          }
          case SetOpKind::kMinus: {
            for (uint32_t r : lrows) {
              auto t = RowTuple(left, r);
              if (rset.count(t) == 0 && emitted.insert(t).second) {
                out.AppendRow(t);
              }
            }
            break;
          }
        }
        core.cycles().ChargeCompute(
            dpu.params().groupby_cycles_per_row *
            static_cast<double>(lrows.size() + rrows.size()));
        return Status::OK();
      }));

  ColumnSet merged(left.metas());
  for (const ColumnSet& cs : per_part) merged.Append(cs);
  return merged;
}

}  // namespace rapid::core
