// Partitioning operator (Sections 5.3, 5.4 and 6.2).
//
// RAPID combines hardware and software partitioning: the DMS engine
// partitions up to 32 ways on the fly (hash/radix/range/round-robin)
// while delivering data into dpCore DMEMs, and each dpCore can apply
// further vectorized software partitioning (Listings 2 and 3) — so a
// single pass reaches fan-outs above 1024. Larger targets use
// multiple rounds, chosen by the partition-scheme optimizer.
//
// Each round maintains per-partition local buffers in DMEM and flushes
// full buffers to DRAM via the DMS, converting random DRAM writes into
// sequential streams.

#ifndef RAPID_CORE_OPS_PARTITION_EXEC_H_
#define RAPID_CORE_OPS_PARTITION_EXEC_H_

#include <cstdint>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/qef/column_set.h"
#include "dpu/dpu.h"

namespace rapid::core {

// One partitioning pass: total `fanout` ways, of which `hw_fanout`
// ways come from the DMS hardware engine (first pass only) and
// fanout/hw_fanout ways from software partitioning on each core.
struct PartitionRound {
  int fanout = 32;
  int hw_fanout = 1;  // 1 = pure software round
};

struct PartitionScheme {
  std::vector<PartitionRound> rounds;

  int TotalFanout() const {
    int f = 1;
    for (const PartitionRound& r : rounds) f *= r.fanout;
    return f;
  }
  size_t NumRounds() const { return rounds.size(); }
};

struct PartitionedData {
  std::vector<ColumnSet> partitions;
  // Hash bits already consumed to form these partitions; further
  // (re)partitioning must use bits above this position.
  int bits_used = 0;
  // Rounds executed (or reused) to produce these partitions; the
  // checkpoint layer counts them as reused work when a whole
  // partitioned output is restored on a retry.
  int rounds = 0;
};

// Completed-round checkpoint of a multi-round partition pass. When a
// later round fails, Execute() moves the last fully reassembled
// round's buckets (and their carried hash columns) here; a retry with
// the same scheme resumes at round `rounds_done` instead of
// re-partitioning from scratch. Cancellation never populates this —
// the query is being abandoned, not retried.
struct PartitionProgress {
  int rounds_done = 0;  // fully completed rounds held in `buckets`
  int bits_used = 0;    // hash bits consumed by those rounds
  std::vector<ColumnSet> buckets;
  std::vector<std::vector<uint32_t>> bucket_hashes;

  bool empty() const { return rounds_done == 0; }
  void clear() {
    rounds_done = 0;
    bits_used = 0;
    buckets.clear();
    bucket_hashes.clear();
  }
  // True when this progress is a valid prefix of `scheme`: the bucket
  // count and consumed bits match rounds [0, rounds_done). A retry
  // after demotion replans with the same deterministic scheme, so a
  // mismatch only means the checkpoint belongs to a different step.
  bool CompatibleWith(const PartitionScheme& scheme) const;
};

class PartitionExec {
 public:
  // Hash-partitions `input` by CRC32 over `key_cols` according to
  // `scheme`, in parallel over the DPU's cores. `tile_rows` is the
  // software-partitioning tile size (Figure 10's parameter).
  //
  // Each work unit programs one partition-engine descriptor chain;
  // transient "dms.partition" faults are absorbed by the DMS retry
  // policy, and `cancel` (optional) is polled at tile boundaries.
  //
  // `progress` (optional) carries completed rounds across attempts:
  // on entry, compatible progress skips its rounds (including the
  // input hash computation); on a non-cancellation failure the last
  // completed round is saved back so the caller can retry from it.
  // Resumed execution is bit-identical to a from-scratch run — rounds
  // are deterministic functions of their input buckets.
  static Result<PartitionedData> Execute(dpu::Dpu& dpu,
                                         const ColumnSet& input,
                                         const std::vector<size_t>& key_cols,
                                         const PartitionScheme& scheme,
                                         size_t tile_rows,
                                         const CancelToken* cancel = nullptr,
                                         PartitionProgress* progress = nullptr);

  // Re-partitions a single oversized partition `extra_fanout` more
  // ways (the large-skew handler, Section 6.4), starting at hash bit
  // `bits_used`. Runs on `core` (the core that detected the skew).
  static Result<std::vector<ColumnSet>> Repartition(
      dpu::DpCore& core, const dpu::CostParams& params,
      const ColumnSet& input, const std::vector<size_t>& key_cols,
      int extra_fanout, int bits_used, size_t tile_rows);

  // CRC32 hash column for `input` over `key_cols` (the hardware hash
  // engine's CRC-memory output).
  static std::vector<uint32_t> HashColumn(const ColumnSet& input,
                                          const std::vector<size_t>& key_cols);
};

}  // namespace rapid::core

#endif  // RAPID_CORE_OPS_PARTITION_EXEC_H_
