// Hash-join executor (Section 6, Figures 5-7).
//
// Executes the build and probe stages of the partitioned hash join:
// each partition pair becomes an independent *join kernel* handled by
// one dpCore using the compact bucket/link hash table
// (primitives::CompactJoinTable). The executor implements all three
// skew/statistics-resilience strategies of Section 6.4:
//
//   * small skew — partitions slightly above the DMEM estimate
//     gracefully overflow the hash table into DRAM (charged with the
//     DRAM round-trip cost on probe);
//   * large skew — partitions exceeding a configurable factor of the
//     estimate are dynamically repartitioned into smaller kernels;
//   * heavy hitters — detected at runtime via a small approximate
//     histogram (space-saving); their build rows are pulled out of
//     the hash table and processed broadcast-style in a side pass.

#ifndef RAPID_CORE_OPS_JOIN_EXEC_H_
#define RAPID_CORE_OPS_JOIN_EXEC_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/ops/partition_exec.h"
#include "core/qef/column_set.h"
#include "dpu/dpu.h"

namespace rapid::core {

// Sentinel for the unmatched build side of a left-outer join.
inline constexpr int64_t kJoinNull = std::numeric_limits<int64_t>::min();

enum class JoinType { kInner, kSemi, kAnti, kLeftOuter };

struct JoinSpec {
  JoinType type = JoinType::kInner;

  // Join key column indices (composite keys supported; both sides
  // must list the same number of keys).
  std::vector<size_t> build_keys;
  std::vector<size_t> probe_keys;

  // Output projection, in output order. For semi/anti joins no output
  // may come from the build side (it only filters).
  struct Output {
    bool from_build = false;
    size_t column = 0;
  };
  std::vector<Output> outputs;

  size_t tile_rows = 256;
  // Vectorized primitive execution (Figure 13's ablation switch);
  // when false the kernel pays per-row interpretation overhead.
  bool vectorized = true;

  // --- QComp estimates & resilience knobs (Section 6.4) ---
  // Expected build rows per partition (0 = trust actual sizes).
  size_t est_rows_per_partition = 0;
  // hash-buckets = next_pow2(rows / bucket_reduction)  (2-4x smaller
  // than rows, from NDV statistics).
  double bucket_reduction = 4.0;
  // Build rows that fit in DMEM; beyond this the table overflows to
  // DRAM (small skew). Default: effectively unlimited.
  size_t dmem_capacity_rows = std::numeric_limits<size_t>::max();
  // When true, exceeding dmem_capacity_rows is a *hard* capacity fault
  // (no DRAM overflow region available): the kernel recovers by
  // repartitioning the pair at doubled fan-out and retrying, the same
  // path taken for injected "join.build" kCapacityExceeded faults.
  bool hard_capacity = false;
  // Partition > factor * estimate => dynamic repartitioning.
  double large_skew_factor = 4.0;
  // Keys with (approximate) count >= threshold are heavy hitters;
  // 0 disables detection.
  size_t heavy_hitter_threshold = 0;

  // Planner cardinality estimates for the whole (pre-partitioning)
  // build/probe inputs; the pipeline-fusion pass uses them to decide
  // whether a broadcast-style fused probe is cheaper than the
  // partitioned join. 0 = unknown.
  size_t est_build_rows = 0;
  size_t est_probe_rows = 0;

  // Build a per-pair blocked Bloom filter over the build keys and
  // prune probe rows before the hash probe (RAPID_JOIN_FILTER). Set
  // by the planner's cost gate when no scan-side pushdown covers the
  // probe input (non-scan subtree, or anti/left-outer semantics that
  // forbid dropping probe rows upstream); the runtime gate still
  // decides whether the filter is actually built. Single-key joins
  // only.
  bool build_join_filter = false;
};

struct JoinStats {
  uint64_t build_rows = 0;
  uint64_t probe_rows = 0;
  uint64_t matches = 0;
  uint64_t chain_steps = 0;
  uint64_t overflow_steps = 0;
  uint64_t overflowed_partitions = 0;
  uint64_t repartitioned_partitions = 0;
  // Build-side hard-capacity faults absorbed by repartition-and-retry
  // at doubled fan-out (failure recovery, not skew handling).
  uint64_t overflow_recoveries = 0;
  uint64_t heavy_hitter_keys = 0;
  uint64_t heavy_hitter_matches = 0;
  // Join-filter pushdown (RAPID_JOIN_FILTER): per-pair Bloom filters
  // built over the build keys, probe rows they pruned before the hash
  // probe, and the bytes the built filters occupy.
  uint64_t join_filter_built = 0;
  uint64_t rows_pruned_by_join_filter = 0;
  uint64_t filter_bytes = 0;
};

class JoinExec {
 public:
  // Joins partition pairs (build.partitions[i] vs probe.partitions[i])
  // across the DPU's cores. Both inputs must have equal fan-out.
  // `cancel` (optional) is polled at tile boundaries inside every
  // kernel so a cancelled query unwinds within one tile round.
  static Result<ColumnSet> Execute(dpu::Dpu& dpu,
                                   const PartitionedData& build,
                                   const PartitionedData& probe,
                                   const JoinSpec& spec,
                                   JoinStats* stats = nullptr,
                                   const CancelToken* cancel = nullptr);

  // Output schema implied by the spec.
  static std::vector<ColumnMeta> OutputMetas(const ColumnSet& build,
                                             const ColumnSet& probe,
                                             const JoinSpec& spec);
};

}  // namespace rapid::core

#endif  // RAPID_CORE_OPS_JOIN_EXEC_H_
