#include "core/ops/filter_op.h"

#include <utility>

#include "common/logging.h"

namespace rapid::core {

FilterOp::FilterOp(std::vector<Predicate> predicates,
                   std::vector<std::string> output_columns,
                   ColumnBinding binding, size_t tile_rows, bool use_rid_list)
    : predicates_(std::move(predicates)),
      output_columns_(std::move(output_columns)),
      binding_(std::move(binding)),
      tile_rows_(tile_rows),
      use_rid_list_(use_rid_list) {}

size_t FilterOp::DmemBytes(size_t tile_rows) const {
  // Widened output vectors + the qualifying-row representation
  // (bit vector or RID list over the tile).
  const size_t outputs = output_columns_.size() * tile_rows * sizeof(int64_t);
  const size_t selection = use_rid_list_ ? tile_rows * sizeof(uint32_t)
                                         : (tile_rows + 7) / 8;
  return outputs + selection;
}

Status FilterOp::Open(ExecCtx& ctx) {
  // Charge the DMEM budget for real: the arena enforces the 32 KiB
  // limit that task formation planned against.
  RAPID_RETURN_NOT_OK(ctx.dmem().Allocate(DmemBytes(tile_rows_)).status());
  out_buffers_.clear();
  out_buffers_.reserve(output_columns_.size());
  for (size_t c = 0; c < output_columns_.size(); ++c) {
    out_buffers_.push_back(ctx.pool().AcquireArray<int64_t>(tile_rows_));
  }
  rid_buffer_ = ctx.pool().AcquireArray<uint32_t>(tile_rows_);
  return Status::OK();
}

Status FilterOp::Consume(ExecCtx& ctx, const Tile& tile) {
  rows_in_ += tile.rows;

  if (predicates_.empty()) {
    selected_.Resize(tile.rows);
    selected_.SetAll();
  } else {
    RAPID_RETURN_NOT_OK(
        EvalPredicate(ctx, tile, binding_, predicates_[0], &selected_));
    for (size_t p = 1; p < predicates_.size(); ++p) {
      RAPID_RETURN_NOT_OK(RefinePredicate(ctx, tile, binding_, predicates_[p],
                                          selected_, &refined_));
      std::swap(selected_, refined_);
    }
  }

  // Late materialization: gather projection columns for qualifying
  // rows only. The RID list doubles as the gather descriptor the RA
  // programs into the DMS.
  uint32_t* rids = rid_buffer_.as<uint32_t>();
  const size_t q = selected_.ToRids(rids);
  rows_out_ += q;
  if (q == 0) return Status::OK();

  Tile out;
  out.rows = q;
  out.base_row = tile.base_row;
  out.columns.resize(output_columns_.size());
  for (size_t c = 0; c < output_columns_.size(); ++c) {
    auto it = binding_.find(output_columns_[c]);
    if (it == binding_.end()) {
      return Status::NotFound("filter output column '" + output_columns_[c] +
                              "' not bound");
    }
    const TileColumn& src = tile.columns[it->second];
    int64_t* dst = out_buffers_[c].as<int64_t>();
    WidenColumn(src, rids, q, dst);
    // The gather runs over DMEM-resident tiles (the accessor already
    // streamed them in), and DMEM random access is single-cycle.
    ctx.ChargeCompute(static_cast<double>(q));
    out.columns[c].data = out_buffers_[c].data();
    out.columns[c].type = src.type == storage::DataType::kDecimal
                              ? storage::DataType::kDecimal
                              : storage::DataType::kInt64;
    out.columns[c].dsb_scale = src.dsb_scale;
  }

  // RID-list bookkeeping: converting the bit vector to RIDs costs one
  // pass; with the RID flavour the list came straight out of the
  // predicate primitives, so only charge it for the bit-vector path.
  if (!use_rid_list_) {
    ctx.ChargeCompute(0.5 * static_cast<double>(tile.rows) / 64.0);
  }
  ctx.ChargeVectorizationPenalty(q);

  return Push(ctx, out);
}

Status FilterOp::Finish(ExecCtx& ctx) { return PushFinish(ctx); }

ColumnBinding FilterOp::OutputBinding() const {
  ColumnBinding out;
  for (size_t c = 0; c < output_columns_.size(); ++c) {
    out[output_columns_[c]] = c;
  }
  return out;
}

}  // namespace rapid::core
