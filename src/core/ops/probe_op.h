// HashJoinProbeOp: the pipelined (push-based) form of the hash-join
// probe, used inside fused PipelineSteps.
//
// Unlike the partitioned JoinExec path — which materializes both sides,
// partitions them, and barriers between build and probe — this operator
// executes a *broadcast* join: each dpCore builds its own private
// CompactJoinTable over the full (unpartitioned) build ColumnSet in
// Open(), then probe tiles stream through Consume() DMEM-resident with
// no extra DMS round-trip. QComp only fuses a probe this way when the
// build side is small enough that the per-core broadcast build is
// cheaper than two partition passes plus a join barrier (the classic
// small-dimension-table trade).
//
// DMEM honesty: the table's compact arrays are charged against the
// core's scratchpad arena. If the build side outgrows the remaining
// budget, capacity degrades gracefully — rows beyond it overflow into
// the table's DRAM region exactly like the small-skew path of
// Section 6.4, and probes into that region pay the DRAM round-trip.

#ifndef RAPID_CORE_OPS_PROBE_OP_H_
#define RAPID_CORE_OPS_PROBE_OP_H_

#include <memory>
#include <vector>

#include "common/arena.h"
#include "core/ops/join_exec.h"
#include "core/qef/column_set.h"
#include "core/qef/operator.h"
#include "primitives/join_kernel.h"

namespace rapid::core {

struct ProbeOpSpec {
  // Unpartitioned build side (DRAM-resident; produced by an earlier
  // materializing step). Not owned.
  const ColumnSet* build = nullptr;
  // Key column indices into `build`.
  std::vector<size_t> build_keys;
  // Tile positions of the probe keys in the incoming tiles.
  std::vector<size_t> probe_keys;

  struct Output {
    bool from_build = false;
    // Build column index, or probe tile position.
    size_t column = 0;
  };
  std::vector<Output> outputs;

  JoinType type = JoinType::kInner;
  size_t tile_rows = 1024;
  double bucket_reduction = 4.0;
  // Build rows that may live in DMEM; Open() shrinks this further if
  // the chain's remaining scratchpad budget demands it.
  size_t dmem_capacity_rows = std::numeric_limits<size_t>::max();
};

class HashJoinProbeOp : public PipelineOp {
 public:
  explicit HashJoinProbeOp(ProbeOpSpec spec);
  ~HashJoinProbeOp() override;

  size_t DmemBytes(size_t tile_rows) const override;
  Status Open(ExecCtx& ctx) override;
  Status Consume(ExecCtx& ctx, const Tile& tile) override;
  Status Finish(ExecCtx& ctx) override;

  const JoinStats& stats() const { return stats_; }

 private:
  void EmitRow(const Tile& tile, size_t tile_row, size_t brow);
  Status FlushPending(ExecCtx& ctx);

  ProbeOpSpec spec_;
  std::unique_ptr<primitives::CompactJoinTable> table_;

  // Pending output rows, one widened buffer per output column; flushed
  // downstream in ~tile_rows chunks.
  std::vector<std::vector<int64_t>> out_buffers_;
  std::vector<storage::DataType> out_types_;
  std::vector<int> out_scales_;

  // Fixed tile-sized scratch from the core's tile pool. The growable
  // out_buffers_ above stay heap vectors: a single probe row can emit
  // arbitrarily many matches, so their size is unbounded.
  TileBufferPool::Handle hash_scratch_;
  TileBufferPool::Handle count_scratch_;
  JoinStats stats_;
};

}  // namespace rapid::core

#endif  // RAPID_CORE_OPS_PROBE_OP_H_
