// Project operator: evaluates arithmetic expressions over incoming
// tiles (widened), producing a tile with one column per projection.
// Part of a task's pipeline; never materializes on its own.

#ifndef RAPID_CORE_OPS_PROJECT_OP_H_
#define RAPID_CORE_OPS_PROJECT_OP_H_

#include <string>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "core/expr.h"
#include "core/qef/operator.h"

namespace rapid::core {

class ProjectOp : public PipelineOp {
 public:
  ProjectOp(std::vector<std::pair<std::string, ExprPtr>> projections,
            ColumnBinding binding, size_t tile_rows);

  size_t DmemBytes(size_t tile_rows) const override;
  Status Open(ExecCtx& ctx) override;
  Status Consume(ExecCtx& ctx, const Tile& tile) override;
  Status Finish(ExecCtx& ctx) override;

  ColumnBinding OutputBinding() const;

 private:
  std::vector<std::pair<std::string, ExprPtr>> projections_;
  ColumnBinding binding_;
  size_t tile_rows_;
  // Recycled tile-pool buffers, one per projection (acquired in Open,
  // released back to the core's pool when the operator is destroyed).
  std::vector<TileBufferPool::Handle> out_buffers_;
};

}  // namespace rapid::core

#endif  // RAPID_CORE_OPS_PROJECT_OP_H_
