#include "core/ops/join_exec.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/trace.h"
#include "core/join_filter.h"
#include "primitives/bloom.h"
#include "primitives/join_kernel.h"

namespace rapid::core {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

uint32_t HashRow(const ColumnSet& set, const std::vector<size_t>& keys,
                 size_t row) {
  uint32_t h = 0xFFFFFFFFu;
  for (size_t k : keys) {
    h = Crc32Combine(h, static_cast<uint64_t>(set.Value(row, k)));
  }
  return h;
}

bool KeysEqual(const ColumnSet& build, const std::vector<size_t>& bkeys,
               size_t brow, const ColumnSet& probe,
               const std::vector<size_t>& pkeys, size_t prow) {
  for (size_t k = 0; k < bkeys.size(); ++k) {
    if (build.Value(brow, bkeys[k]) != probe.Value(prow, pkeys[k])) {
      return false;
    }
  }
  return true;
}

// Space-saving heavy-hitter sketch: k counters, evict-min on overflow.
// Overestimates counts, never underestimates — safe for detection.
// Counters are indexed by a count-ordered bucket map so increment and
// evict-min are O(log k) instead of an O(k) scan per insert — the
// sketch runs on the hot build path of every partition pair.
class SpaceSaving {
 public:
  explicit SpaceSaving(size_t capacity) : capacity_(capacity) {}

  void Add(int64_t key) {
    auto it = counts_.find(key);
    if (it != counts_.end()) {
      MoveBucket(key, it->second, it->second + 1);
      ++it->second;
      return;
    }
    if (counts_.size() < capacity_) {
      counts_[key] = 1;
      by_count_[1].insert(key);
      return;
    }
    // Evict a minimum-count key and inherit its count (+1).
    auto min_bucket = by_count_.begin();
    const uint64_t inherited = min_bucket->first + 1;
    const int64_t victim = *min_bucket->second.begin();
    min_bucket->second.erase(min_bucket->second.begin());
    if (min_bucket->second.empty()) by_count_.erase(min_bucket);
    counts_.erase(victim);
    counts_[key] = inherited;
    by_count_[inherited].insert(key);
  }

  std::vector<int64_t> KeysAbove(uint64_t threshold) const {
    std::vector<int64_t> out;
    for (const auto& [key, count] : counts_) {
      if (count >= threshold) out.push_back(key);
    }
    return out;
  }

 private:
  void MoveBucket(int64_t key, uint64_t from, uint64_t to) {
    auto it = by_count_.find(from);
    it->second.erase(key);
    if (it->second.empty()) by_count_.erase(it);
    by_count_[to].insert(key);
  }

  size_t capacity_;
  std::unordered_map<int64_t, uint64_t> counts_;
  // count -> keys currently at that count; begin() is the eviction
  // candidate set.
  std::map<uint64_t, std::unordered_set<int64_t>> by_count_;
};

struct PairResult {
  ColumnSet output;
  JoinStats stats;
};

void EmitMatch(const ColumnSet& build, const ColumnSet& probe,
               const JoinSpec& spec, size_t brow, size_t prow,
               ColumnSet* out) {
  for (size_t c = 0; c < spec.outputs.size(); ++c) {
    const JoinSpec::Output& o = spec.outputs[c];
    out->column(c).push_back(
        o.from_build
            ? (brow == SIZE_MAX ? kJoinNull : build.Value(brow, o.column))
            : probe.Value(prow, o.column));
  }
}

// Recovery attempts per partition pair before a hard build-side
// capacity fault is surfaced to the caller. Each attempt doubles the
// fan-out, so the budget bounds both recursion depth and the number of
// sub-kernels a pathological fault storm can spawn.
constexpr int kMaxOverflowRecoveries = 4;

// Joins one partition pair on one core. May recurse after large-skew
// repartitioning or after build-side capacity-fault recovery.
Status JoinPair(dpu::Dpu& dpu, dpu::DpCore& core, const ColumnSet& build,
                const ColumnSet& probe, const JoinSpec& spec, int bits_used,
                const CancelToken* cancel, int overflow_budget,
                PairResult* result) {
  const dpu::CostParams& params = dpu.params();
  const size_t build_rows = build.num_rows();
  const size_t probe_rows = probe.num_rows();
  result->stats.build_rows += build_rows;
  result->stats.probe_rows += probe_rows;

  // ---- Large skew: dynamically repartition oversized kernels ----
  if (spec.est_rows_per_partition > 0 &&
      static_cast<double>(build_rows) >
          spec.large_skew_factor *
              static_cast<double>(spec.est_rows_per_partition) &&
      bits_used + 1 < 32) {
    const size_t target_parts = (build_rows + spec.est_rows_per_partition - 1) /
                                spec.est_rows_per_partition;
    int extra = static_cast<int>(NextPow2(std::max<size_t>(2, target_parts)));
    // The 32-bit hash caps total fan-out: leave at least one bit above
    // the partitioning bits for the kernel's bucket index, or the
    // bucket shift walks off the hash width.
    const int max_extra_bits = 31 - bits_used;
    if (__builtin_ctz(static_cast<unsigned>(extra)) > max_extra_bits) {
      extra = 1 << max_extra_bits;
    }
    auto sub_build = PartitionExec::Repartition(
        core, params, build, spec.build_keys, extra, bits_used,
        spec.tile_rows);
    auto sub_probe = PartitionExec::Repartition(
        core, params, probe, spec.probe_keys, extra, bits_used,
        spec.tile_rows);
    if (sub_build.ok() && sub_probe.ok()) {
      ++result->stats.repartitioned_partitions;
      // The repartitioned rows were already counted above; sub-pair
      // accounting would double count, so snapshot and restore.
      const uint64_t saved_build = result->stats.build_rows;
      const uint64_t saved_probe = result->stats.probe_rows;
      const int extra_bits = __builtin_ctz(static_cast<unsigned>(extra));
      for (int p = 0; p < extra; ++p) {
        RAPID_RETURN_NOT_OK(JoinPair(
            dpu, core, sub_build.value()[static_cast<size_t>(p)],
            sub_probe.value()[static_cast<size_t>(p)], spec,
            bits_used + extra_bits, cancel, overflow_budget, result));
      }
      result->stats.build_rows = saved_build;
      result->stats.probe_rows = saved_probe;
      return Status::OK();
    }
  }

  // ---- Build-side capacity faults: repartition-and-retry ----
  // Two triggers share one recovery: an injected "join.build"
  // kCapacityExceeded fault (modeling a hash table whose DRAM overflow
  // region is itself exhausted) and a hard DMEM budget with
  // spec.hard_capacity set. Recovery splits the pair at doubled
  // fan-out — each sub-kernel builds a table roughly half the size —
  // and retries, up to kMaxOverflowRecoveries times.
  Status build_fault = Status::OK();
  if (__builtin_expect(FaultInjector::enabled(), 0)) {
    build_fault = FaultInjector::Instance().Poll(faults::kJoinBuild);
    if (!build_fault.ok() && !build_fault.IsCapacityExceeded()) {
      return build_fault;  // non-capacity faults are not recoverable here
    }
  }
  const bool hard_overflow =
      spec.hard_capacity && build_rows > spec.dmem_capacity_rows;
  if (!build_fault.ok() || hard_overflow) {
    if (overflow_budget > 0 && bits_used + 1 < 32 && build_rows > 1) {
      auto sub_build = PartitionExec::Repartition(
          core, params, build, spec.build_keys, 2, bits_used, spec.tile_rows);
      auto sub_probe = PartitionExec::Repartition(
          core, params, probe, spec.probe_keys, 2, bits_used, spec.tile_rows);
      if (sub_build.ok() && sub_probe.ok()) {
        ++result->stats.overflow_recoveries;
        const uint64_t saved_build = result->stats.build_rows;
        const uint64_t saved_probe = result->stats.probe_rows;
        for (int p = 0; p < 2; ++p) {
          RAPID_RETURN_NOT_OK(JoinPair(
              dpu, core, sub_build.value()[static_cast<size_t>(p)],
              sub_probe.value()[static_cast<size_t>(p)], spec, bits_used + 1,
              cancel, overflow_budget - 1, result));
        }
        result->stats.build_rows = saved_build;
        result->stats.probe_rows = saved_probe;
        return Status::OK();
      }
    }
    if (!build_fault.ok()) {
      return Status::CapacityExceeded(
          "join build capacity fault not recoverable after " +
          std::to_string(kMaxOverflowRecoveries) +
          " repartition attempts: " + build_fault.ToString());
    }
    // Hard DMEM overflow that can no longer be split: fall through to
    // the graceful DRAM-overflow table below.
  }

  // ---- Heavy-hitter detection (flow-join style) ----
  std::unordered_map<int64_t, std::vector<uint32_t>> heavy_rows;
  if (spec.heavy_hitter_threshold > 0 && spec.build_keys.size() == 1) {
    SpaceSaving sketch(64);
    const std::vector<int64_t>& keys = build.column(spec.build_keys[0]);
    for (size_t i = 0; i < build_rows; ++i) sketch.Add(keys[i]);
    // Sketch scan is ~1 cycle/row with the approximate histogram.
    core.cycles().ChargeCompute(static_cast<double>(build_rows));
    for (int64_t key : sketch.KeysAbove(spec.heavy_hitter_threshold)) {
      // Verify against exact counts (sketch overestimates).
      uint64_t exact = 0;
      for (size_t i = 0; i < build_rows; ++i) {
        if (keys[i] == key) ++exact;
      }
      if (exact >= spec.heavy_hitter_threshold) {
        heavy_rows.emplace(key, std::vector<uint32_t>{});
      }
    }
    if (!heavy_rows.empty()) {
      result->stats.heavy_hitter_keys += heavy_rows.size();
    }
  }

  // ---- Build stage ----
  const size_t reduced = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(std::max<size_t>(build_rows, 1)) /
                             spec.bucket_reduction));
  const size_t num_buckets = NextPow2(reduced);
  // The fast modulo is a bit-mask *and a shift* (Section 6.3): the low
  // hash bits selected this partition, so the kernel's bucket index
  // must come from the bits above them or every row aliases into the
  // same few buckets.
  const int shift = std::min(bits_used, 31);
  primitives::CompactJoinTable table(build_rows, num_buckets,
                                     std::min(spec.dmem_capacity_rows,
                                              build_rows));
  if (build_rows > spec.dmem_capacity_rows) {
    ++result->stats.overflowed_partitions;
  }

  {
    TraceSpan build_span(TraceMode::kFull, core.id(), "join.build",
                         &dpu::TraceClockNow, &core.cycles());
    build_span.Annotate("rows", static_cast<uint64_t>(build_rows));
    const std::vector<size_t>& bkeys = spec.build_keys;
    for (size_t start = 0; start < build_rows; start += spec.tile_rows) {
      RAPID_RETURN_NOT_OK(CancelToken::Check(cancel));
      const size_t rows = std::min(spec.tile_rows, build_rows - start);
      for (size_t i = 0; i < rows; ++i) {
        const size_t row = start + i;
        if (!heavy_rows.empty() && bkeys.size() == 1) {
          auto it = heavy_rows.find(build.Value(row, bkeys[0]));
          if (it != heavy_rows.end()) {
            // Heavy keys bypass the hash table; their rows go to the
            // broadcast side list.
            it->second.push_back(static_cast<uint32_t>(row));
            continue;
          }
        }
        table.Insert(HashRow(build, bkeys, row) >> shift, row);
      }
      core.cycles().ChargeCompute(dpu::JoinBuildTileCycles(params, rows));
      if (!spec.vectorized) {
        core.cycles().ChargeCompute(params.row_at_a_time_overhead_cycles *
                                    static_cast<double>(rows));
      }
      // DMS streams the build tile into DMEM (overlapped).
      core.cycles().ChargeDms(dpu::DmsTileTransferCycles(
          params, static_cast<int>(bkeys.size()), rows, sizeof(int64_t),
          false));
    }
  }

  // ---- Join-filter build (RAPID_JOIN_FILTER) ----
  // Per-pair blocked Bloom filter over ALL build keys — including the
  // heavy-hitter rows that bypassed the hash table — so a filter miss
  // guarantees the probe row matches neither the table nor the
  // broadcast side list. Built after the repartition/recovery blocks
  // above: every recursion path returns early, so a stale filter can
  // never survive a repartition (invalidation by construction). The
  // gate is runtime-only and the bloom code performs no fault polls,
  // pool acquires or DMEM allocations, keeping fault-injection
  // ordinals identical in off and auto modes.
  primitives::BlockedBloomFilter pair_filter;
  bool use_filter = false;
  if (spec.build_join_filter && JoinFilterActive() == JoinFilterMode::kAuto &&
      spec.build_keys.size() == 1 && build_rows > 0 && probe_rows > 0) {
    const size_t num_blocks = primitives::BlockedBloomFilter::BlocksForNdv(
        build_rows, core.dmem().capacity() / 4);
    if (num_blocks > 0) {
      pair_filter = primitives::BlockedBloomFilter(num_blocks);
      const std::vector<int64_t>& keys = build.column(spec.build_keys[0]);
      for (size_t i = 0; i < build_rows; ++i) {
        pair_filter.Insert(static_cast<uint64_t>(keys[i]));
      }
      core.cycles().ChargeCompute(params.bloom_insert_cycles_per_row /
                                  params.simd.bloom *
                                  static_cast<double>(build_rows));
      use_filter = true;
      ++result->stats.join_filter_built;
      result->stats.filter_bytes += pair_filter.bytes();
      core.join_filter().filters_built += 1;
      core.join_filter().filter_bytes += pair_filter.bytes();
    }
  }

  // ---- Probe stage ----
  primitives::ProbeStats probe_stats;
  const std::vector<size_t>& pkeys = spec.probe_keys;
  // The batched path hashes a whole DMEM tile then calls ProbeBatch
  // once per tile. It preserves emission order for inner/semi/anti
  // joins; left-outer interleaves match and null rows per probe row,
  // and heavy-hitter side passes need per-row bookkeeping, so those
  // keep the per-row loop.
  const bool batched =
      heavy_rows.empty() && spec.type != JoinType::kLeftOuter;
  std::vector<uint32_t> tile_hashes;
  std::vector<uint32_t> tile_match_counts;
  std::vector<uint32_t> keep_idx;
  std::vector<uint32_t> kept_counts;
  if (batched) {
    tile_hashes.resize(spec.tile_rows);
    tile_match_counts.resize(spec.tile_rows);
    keep_idx.resize(spec.tile_rows);
    kept_counts.resize(spec.tile_rows);
  }
  TraceSpan probe_span(TraceMode::kFull, core.id(), "join.probe",
                       &dpu::TraceClockNow, &core.cycles());
  probe_span.Annotate("rows", static_cast<uint64_t>(probe_rows));
  for (size_t start = 0; start < probe_rows; start += spec.tile_rows) {
    RAPID_RETURN_NOT_OK(CancelToken::Check(cancel));
    const size_t rows = std::min(spec.tile_rows, probe_rows - start);
    primitives::ProbeStats tile_stats;
    size_t tile_pruned = 0;
    if (batched) {
      // Bloom-prune before hashing: pruned rows keep match_count 0 (so
      // the anti post-loop still emits them in row order) and drop out
      // of the ProbeBatch entirely. Kept rows probe in row order, so
      // inner/semi emission order is identical with the filter off.
      size_t kept = 0;
      for (size_t i = 0; i < rows; ++i) {
        tile_match_counts[i] = 0;
        if (use_filter && !pair_filter.MayContain(static_cast<uint64_t>(
                              probe.Value(start + i, pkeys[0])))) {
          continue;
        }
        keep_idx[kept] = static_cast<uint32_t>(i);
        tile_hashes[kept] = HashRow(probe, pkeys, start + i) >> shift;
        ++kept;
      }
      tile_pruned = rows - kept;
      table.ProbeBatch(
          tile_hashes.data(), kept,
          [&](size_t i, size_t brow) {
            return KeysEqual(build, spec.build_keys, brow, probe, pkeys,
                             start + keep_idx[i]);
          },
          [&](size_t i, size_t brow) {
            if (spec.type == JoinType::kInner) {
              EmitMatch(build, probe, spec, brow, start + keep_idx[i],
                        &result->output);
            }
          },
          kept_counts.data(), &tile_stats);
      for (size_t i = 0; i < kept; ++i) {
        tile_match_counts[keep_idx[i]] = kept_counts[i];
      }
      for (size_t i = 0; i < rows; ++i) {
        const uint32_t match_count = tile_match_counts[i];
        if (spec.type == JoinType::kSemi && match_count > 0) {
          EmitMatch(build, probe, spec, SIZE_MAX, start + i, &result->output);
        } else if (spec.type == JoinType::kAnti && match_count == 0) {
          EmitMatch(build, probe, spec, SIZE_MAX, start + i, &result->output);
        }
        result->stats.matches += match_count;
      }
    } else {
      for (size_t i = 0; i < rows; ++i) {
        const size_t prow = start + i;
        size_t match_count = 0;
        // The filter covers heavy-bypass build rows too, so a miss
        // also skips the broadcast side pass; match_count stays 0 and
        // the anti/left-outer switch below emits correctly.
        const bool pruned =
            use_filter && !pair_filter.MayContain(static_cast<uint64_t>(
                              probe.Value(prow, pkeys[0])));
        if (pruned) {
          ++tile_pruned;
        } else {
          const uint32_t hash = HashRow(probe, pkeys, prow) >> shift;
          table.Probe(
              hash,
              [&](size_t brow) {
                return KeysEqual(build, spec.build_keys, brow, probe, pkeys,
                                 prow);
              },
              [&](size_t brow) {
                ++match_count;
                if (spec.type == JoinType::kInner ||
                    spec.type == JoinType::kLeftOuter) {
                  EmitMatch(build, probe, spec, brow, prow, &result->output);
                }
              },
              &tile_stats);

          // Heavy-hitter side pass: probe the broadcast list.
          if (!heavy_rows.empty() && pkeys.size() == 1) {
            auto it = heavy_rows.find(probe.Value(prow, pkeys[0]));
            if (it != heavy_rows.end()) {
              for (uint32_t brow : it->second) {
                ++match_count;
                ++result->stats.heavy_hitter_matches;
                if (spec.type == JoinType::kInner ||
                    spec.type == JoinType::kLeftOuter) {
                  EmitMatch(build, probe, spec, brow, prow, &result->output);
                }
              }
            }
          }
        }

        switch (spec.type) {
          case JoinType::kSemi:
            if (match_count > 0) {
              EmitMatch(build, probe, spec, SIZE_MAX, prow, &result->output);
            }
            break;
          case JoinType::kAnti:
            if (match_count == 0) {
              EmitMatch(build, probe, spec, SIZE_MAX, prow, &result->output);
            }
            break;
          case JoinType::kLeftOuter:
            if (match_count == 0) {
              EmitMatch(build, probe, spec, SIZE_MAX, prow, &result->output);
            }
            break;
          case JoinType::kInner:
            break;
        }
        result->stats.matches += match_count;
      }
    }
    if (use_filter) {
      // One blocked-Bloom probe per probe row; pruned rows skip the
      // hash probe below.
      core.cycles().ChargeCompute(params.bloom_probe_cycles_per_row /
                                  params.simd.bloom *
                                  static_cast<double>(rows));
      result->stats.rows_pruned_by_join_filter += tile_pruned;
      core.join_filter().rows_pruned += tile_pruned;
    }
    core.cycles().ChargeCompute(dpu::JoinProbeTileCycles(
        params, rows - tile_pruned, tile_stats.chain_steps,
        tile_stats.matches));
    if (!spec.vectorized) {
      core.cycles().ChargeCompute(params.row_at_a_time_overhead_cycles *
                                  static_cast<double>(rows));
    }
    // DRAM overflow region probes cost a DRAM round trip each.
    core.cycles().ChargeCompute(params.join_overflow_access_cycles *
                                static_cast<double>(tile_stats.overflow_steps));
    core.cycles().ChargeDms(dpu::DmsTileTransferCycles(
        params, static_cast<int>(pkeys.size()), rows, sizeof(int64_t), false));
    probe_stats.Merge(tile_stats);
  }
  probe_span.Annotate("matches", static_cast<uint64_t>(probe_stats.matches));
  result->stats.chain_steps += probe_stats.chain_steps;
  result->stats.overflow_steps += probe_stats.overflow_steps;
  return Status::OK();
}

}  // namespace

std::vector<ColumnMeta> JoinExec::OutputMetas(const ColumnSet& build,
                                              const ColumnSet& probe,
                                              const JoinSpec& spec) {
  std::vector<ColumnMeta> metas;
  for (const JoinSpec::Output& o : spec.outputs) {
    metas.push_back(o.from_build ? build.meta(o.column)
                                 : probe.meta(o.column));
  }
  return metas;
}

Result<ColumnSet> JoinExec::Execute(dpu::Dpu& dpu, const PartitionedData& build,
                                    const PartitionedData& probe,
                                    const JoinSpec& spec, JoinStats* stats,
                                    const CancelToken* cancel) {
  if (build.partitions.size() != probe.partitions.size()) {
    return Status::InvalidArgument("join inputs have mismatched fan-out");
  }
  if (build.partitions.empty()) {
    return Status::InvalidArgument("join needs at least one partition");
  }
  if (spec.build_keys.empty() ||
      spec.build_keys.size() != spec.probe_keys.size()) {
    return Status::InvalidArgument("join key lists must match and be nonempty");
  }
  if (spec.type == JoinType::kSemi || spec.type == JoinType::kAnti) {
    for (const JoinSpec::Output& o : spec.outputs) {
      if (o.from_build) {
        return Status::InvalidArgument(
            "semi/anti joins project probe side only");
      }
    }
  }

  const std::vector<ColumnMeta> metas =
      OutputMetas(build.partitions[0], probe.partitions[0], spec);

  const size_t num_pairs = build.partitions.size();
  std::vector<PairResult> results(num_pairs);
  for (auto& r : results) r.output = ColumnSet(metas);

  // Morsel-driven: each partition pair is one morsel, weighted by its
  // build+probe rows so LPT seeding launches skewed pairs first and
  // idle cores steal the rest. Results land in slot `pair`, making the
  // merged output independent of which core ran which pair.
  std::vector<double> pair_weights(num_pairs);
  for (size_t pair = 0; pair < num_pairs; ++pair) {
    pair_weights[pair] =
        static_cast<double>(build.partitions[pair].num_rows() +
                            probe.partitions[pair].num_rows());
  }
  dpu::WorkQueue queue(std::move(pair_weights), dpu.num_cores());
  RAPID_RETURN_NOT_OK(dpu.ParallelForMorsels(
      queue, cancel, [&](dpu::DpCore& core, size_t pair) -> Status {
        TraceSpan span(TraceMode::kFull, core.id(), "join.pair",
                       &dpu::TraceClockNow, &core.cycles());
        span.Annotate("pair", static_cast<int64_t>(pair));
        span.Annotate("build_rows",
                      static_cast<uint64_t>(build.partitions[pair].num_rows()));
        span.Annotate("probe_rows",
                      static_cast<uint64_t>(probe.partitions[pair].num_rows()));
        return JoinPair(dpu, core, build.partitions[pair],
                        probe.partitions[pair], spec, build.bits_used, cancel,
                        kMaxOverflowRecoveries, &results[pair]);
      }));

  ColumnSet merged(metas);
  JoinStats total;
  for (PairResult& r : results) {
    merged.Append(r.output);
    total.build_rows += r.stats.build_rows;
    total.probe_rows += r.stats.probe_rows;
    total.matches += r.stats.matches;
    total.chain_steps += r.stats.chain_steps;
    total.overflow_steps += r.stats.overflow_steps;
    total.overflowed_partitions += r.stats.overflowed_partitions;
    total.repartitioned_partitions += r.stats.repartitioned_partitions;
    total.overflow_recoveries += r.stats.overflow_recoveries;
    total.heavy_hitter_keys += r.stats.heavy_hitter_keys;
    total.heavy_hitter_matches += r.stats.heavy_hitter_matches;
    total.join_filter_built += r.stats.join_filter_built;
    total.rows_pruned_by_join_filter += r.stats.rows_pruned_by_join_filter;
    total.filter_bytes += r.stats.filter_bytes;
  }
  if (stats != nullptr) *stats = total;
  return merged;
}

}  // namespace rapid::core
