// Sort-merge join (Section 6.5): "we apply a partitioning-based
// sorting and a merge-join step". Both inputs are sorted with the
// range-partitioned radix sort of SortExec; the merge step then walks
// the sorted runs emitting matching key groups. RAPID uses this when
// inputs are pre-sorted or an order-preserving output is required;
// the equi-join default remains the hash join (Section 6.1).

#ifndef RAPID_CORE_OPS_MERGE_JOIN_EXEC_H_
#define RAPID_CORE_OPS_MERGE_JOIN_EXEC_H_

#include "common/status.h"
#include "core/ops/join_exec.h"
#include "core/qef/column_set.h"
#include "dpu/dpu.h"

namespace rapid::core {

struct MergeJoinSpec {
  size_t left_key = 0;
  size_t right_key = 0;
  // Output projection in output order (from_build refers to the left
  // input here, mirroring JoinSpec::Output).
  std::vector<JoinSpec::Output> outputs;
};

class MergeJoinExec {
 public:
  // Inner equi-join of two inputs; output rows are ordered by the join
  // key (a property the hash join does not provide).
  static Result<ColumnSet> Execute(dpu::Dpu& dpu, const ColumnSet& left,
                                   const ColumnSet& right,
                                   const MergeJoinSpec& spec);
};

}  // namespace rapid::core

#endif  // RAPID_CORE_OPS_MERGE_JOIN_EXEC_H_
