#include "core/expr.h"

#include <algorithm>
#include <cmath>

#include "common/arena.h"

#include "common/logging.h"
#include "primitives/simd.h"
#include "storage/dsb.h"

namespace rapid::core {

using primitives::ArithOp;
using primitives::CmpOp;

ExprPtr Expr::Col(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kColumn;
  e->column = std::move(name);
  return e;
}

ExprPtr Expr::Int(int64_t v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kConst;
  e->value = v;
  e->scale = 0;
  return e;
}

ExprPtr Expr::Dec(double v, int scale) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kConst;
  e->value = static_cast<int64_t>(
      std::llround(v * static_cast<double>(storage::Pow10(scale))));
  e->scale = scale;
  return e;
}

namespace {

ExprPtr MakeBinary(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

}  // namespace

ExprPtr Expr::Add(ExprPtr l, ExprPtr r) {
  return MakeBinary(ArithOp::kAdd, std::move(l), std::move(r));
}
ExprPtr Expr::Sub(ExprPtr l, ExprPtr r) {
  return MakeBinary(ArithOp::kSub, std::move(l), std::move(r));
}
ExprPtr Expr::Mul(ExprPtr l, ExprPtr r) {
  return MakeBinary(ArithOp::kMul, std::move(l), std::move(r));
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  switch (kind) {
    case Kind::kColumn:
      out->push_back(column);
      break;
    case Kind::kConst:
      break;
    case Kind::kBinary:
      left->CollectColumns(out);
      right->CollectColumns(out);
      break;
  }
}

Result<int> EvalExpr(ExecCtx& ctx, const Tile& tile,
                     const ColumnBinding& binding, const Expr& expr,
                     std::vector<int64_t>* out) {
  out->resize(tile.rows);
  return EvalExpr(ctx, tile, binding, expr, out->data());
}

Result<int> EvalExpr(ExecCtx& ctx, const Tile& tile,
                     const ColumnBinding& binding, const Expr& expr,
                     int64_t* out) {
  const size_t n = tile.rows;
  switch (expr.kind) {
    case Expr::Kind::kColumn: {
      auto it = binding.find(expr.column);
      if (it == binding.end()) {
        return Status::NotFound("unbound column '" + expr.column + "'");
      }
      const TileColumn& col = tile.columns[it->second];
      // Widening copy; free on the DPU where the load unit widens.
      WidenColumn(col, nullptr, n, out);
      return col.dsb_scale;
    }
    case Expr::Kind::kConst: {
      std::fill_n(out, n, expr.value);
      return expr.scale;
    }
    case Expr::Kind::kBinary: {
      // Intermediates live in recycled tile-pool buffers (released on
      // scope exit), so nested expressions never touch the heap after
      // the pool warms up.
      TileBufferPool::Handle lhs = ctx.pool().AcquireArray<int64_t>(n);
      TileBufferPool::Handle rhs = ctx.pool().AcquireArray<int64_t>(n);
      RAPID_ASSIGN_OR_RETURN(
          int lscale,
          EvalExpr(ctx, tile, binding, *expr.left, lhs.as<int64_t>()));
      RAPID_ASSIGN_OR_RETURN(
          int rscale,
          EvalExpr(ctx, tile, binding, *expr.right, rhs.as<int64_t>()));
      int result_scale = 0;
      if (expr.op == ArithOp::kMul) {
        // DSB multiply: mantissas multiply, scales add.
        result_scale = primitives::DsbMulTile(
            lhs.as<int64_t>(), lscale, rhs.as<int64_t>(), rscale, n, out);
        ctx.ChargeCompute((ctx.params->arith_cycles_per_row +
                           ctx.params->mult_extra_cycles_per_row) /
                          ctx.params->simd.arith * static_cast<double>(n));
      } else {
        // Add/sub require a common scale; rescale the smaller side.
        result_scale = lscale > rscale ? lscale : rscale;
        if (lscale < result_scale) {
          primitives::DsbRescaleTile(lhs.as<int64_t>(), n, lscale,
                                     result_scale);
        }
        if (rscale < result_scale) {
          primitives::DsbRescaleTile(rhs.as<int64_t>(), n, rscale,
                                     result_scale);
        }
        if (expr.op == ArithOp::kAdd) {
          primitives::ArithColCol<ArithOp::kAdd, int64_t>(
              lhs.as<int64_t>(), rhs.as<int64_t>(), n, out);
        } else {
          primitives::ArithColCol<ArithOp::kSub, int64_t>(
              lhs.as<int64_t>(), rhs.as<int64_t>(), n, out);
        }
        ctx.ChargeCompute(ctx.params->arith_cycles_per_row /
                          ctx.params->simd.arith * static_cast<double>(n));
      }
      ctx.ChargeVectorizationPenalty(n);
      return result_scale;
    }
  }
  return Status::Internal("unreachable expression kind");
}

Predicate Predicate::CmpConst(std::string column, CmpOp op, int64_t value,
                              double selectivity) {
  Predicate p;
  p.kind = Kind::kCmpConst;
  p.column = std::move(column);
  p.op = op;
  p.value = value;
  p.selectivity = selectivity;
  return p;
}

Predicate Predicate::Between(std::string column, int64_t lo, int64_t hi,
                             double selectivity) {
  Predicate p;
  p.kind = Kind::kBetween;
  p.column = std::move(column);
  p.value = lo;
  p.value2 = hi;
  p.selectivity = selectivity;
  return p;
}

Predicate Predicate::InSet(std::string column, BitVector codes,
                           double selectivity) {
  Predicate p;
  p.kind = Kind::kInSet;
  p.column = std::move(column);
  p.in_set = std::move(codes);
  p.selectivity = selectivity;
  return p;
}

Predicate Predicate::CmpCol(std::string left, CmpOp op, std::string right,
                            double selectivity) {
  Predicate p;
  p.kind = Kind::kCmpCol;
  p.column = std::move(left);
  p.op = op;
  p.column2 = std::move(right);
  p.selectivity = selectivity;
  return p;
}

Predicate Predicate::Bloom(std::string column,
                           const primitives::BlockedBloomFilter* filter,
                           double selectivity) {
  Predicate p;
  p.kind = Kind::kBloom;
  p.column = std::move(column);
  p.bloom = filter;
  p.selectivity = selectivity;
  return p;
}

namespace {

// Dispatches a const-comparison filter primitive on (op, width).
template <typename T>
void FilterConstDispatchTyped(CmpOp op, const T* data, size_t n, T constant,
                              BitVector* out) {
  switch (op) {
    case CmpOp::kEq:
      primitives::FilterConstBv<CmpOp::kEq, T>(data, n, constant, out);
      break;
    case CmpOp::kNe:
      primitives::FilterConstBv<CmpOp::kNe, T>(data, n, constant, out);
      break;
    case CmpOp::kLt:
      primitives::FilterConstBv<CmpOp::kLt, T>(data, n, constant, out);
      break;
    case CmpOp::kLe:
      primitives::FilterConstBv<CmpOp::kLe, T>(data, n, constant, out);
      break;
    case CmpOp::kGt:
      primitives::FilterConstBv<CmpOp::kGt, T>(data, n, constant, out);
      break;
    case CmpOp::kGe:
      primitives::FilterConstBv<CmpOp::kGe, T>(data, n, constant, out);
      break;
  }
}

void FilterConstDispatch(const TileColumn& col, size_t n, CmpOp op,
                         int64_t value, BitVector* out) {
  using storage::DataType;
  switch (col.type) {
    case DataType::kInt8:
      FilterConstDispatchTyped<int8_t>(op, reinterpret_cast<int8_t*>(col.data),
                                       n, static_cast<int8_t>(value), out);
      break;
    case DataType::kInt16:
      FilterConstDispatchTyped<int16_t>(
          op, reinterpret_cast<int16_t*>(col.data), n,
          static_cast<int16_t>(value), out);
      break;
    case DataType::kInt32:
    case DataType::kDate:
      FilterConstDispatchTyped<int32_t>(
          op, reinterpret_cast<int32_t*>(col.data), n,
          static_cast<int32_t>(value), out);
      break;
    case DataType::kDictCode:
      FilterConstDispatchTyped<uint32_t>(
          op, reinterpret_cast<uint32_t*>(col.data), n,
          static_cast<uint32_t>(value), out);
      break;
    case DataType::kInt64:
    case DataType::kDecimal:
      FilterConstDispatchTyped<int64_t>(
          op, reinterpret_cast<int64_t*>(col.data), n, value, out);
      break;
  }
}

template <typename T>
void FilterBetweenTyped(const TileColumn& col, size_t n, int64_t lo,
                        int64_t hi, BitVector* out) {
  primitives::FilterBetweenBv<T>(reinterpret_cast<T*>(col.data), n,
                                 static_cast<T>(lo), static_cast<T>(hi), out);
}

void FilterBetweenDispatch(const TileColumn& col, size_t n, int64_t lo,
                           int64_t hi, BitVector* out) {
  using storage::DataType;
  switch (col.type) {
    case DataType::kInt8:
      FilterBetweenTyped<int8_t>(col, n, lo, hi, out);
      break;
    case DataType::kInt16:
      FilterBetweenTyped<int16_t>(col, n, lo, hi, out);
      break;
    case DataType::kInt32:
    case DataType::kDate:
      FilterBetweenTyped<int32_t>(col, n, lo, hi, out);
      break;
    case DataType::kDictCode:
      FilterBetweenTyped<uint32_t>(col, n, lo, hi, out);
      break;
    case DataType::kInt64:
    case DataType::kDecimal:
      FilterBetweenTyped<int64_t>(col, n, lo, hi, out);
      break;
  }
}

template <typename T>
void FilterColColTyped(CmpOp op, const TileColumn& l, const TileColumn& r,
                       size_t n, BitVector* out) {
  const T* left = reinterpret_cast<const T*>(l.data);
  const T* right = reinterpret_cast<const T*>(r.data);
  switch (op) {
    case CmpOp::kEq:
      primitives::FilterColColBv<CmpOp::kEq, T>(left, right, n, out);
      break;
    case CmpOp::kNe:
      primitives::FilterColColBv<CmpOp::kNe, T>(left, right, n, out);
      break;
    case CmpOp::kLt:
      primitives::FilterColColBv<CmpOp::kLt, T>(left, right, n, out);
      break;
    case CmpOp::kLe:
      primitives::FilterColColBv<CmpOp::kLe, T>(left, right, n, out);
      break;
    case CmpOp::kGt:
      primitives::FilterColColBv<CmpOp::kGt, T>(left, right, n, out);
      break;
    case CmpOp::kGe:
      primitives::FilterColColBv<CmpOp::kGe, T>(left, right, n, out);
      break;
  }
}

// Dispatches the Bloom probe kernel on the column's physical width.
// Keys widen through static_cast<uint64_t> of the native element —
// identical to the build side's widened insert (sign-extension for
// signed narrow columns, zero-extension for dict codes).
void BloomProbeDispatch(const TileColumn& col, size_t n,
                        const primitives::BlockedBloomFilter& filter,
                        BitVector* out) {
  using storage::DataType;
  out->Resize(n);
  const uint64_t* blocks = filter.blocks();
  const uint32_t mask = filter.block_mask();
  uint64_t* words = out->mutable_words();
  switch (col.type) {
    case DataType::kInt8:
      primitives::simd::bloom_kernels<int8_t>().probe_bv(
          reinterpret_cast<const int8_t*>(col.data), n, blocks, mask, words);
      break;
    case DataType::kInt16:
      primitives::simd::bloom_kernels<int16_t>().probe_bv(
          reinterpret_cast<const int16_t*>(col.data), n, blocks, mask, words);
      break;
    case DataType::kInt32:
    case DataType::kDate:
      primitives::simd::bloom_kernels<int32_t>().probe_bv(
          reinterpret_cast<const int32_t*>(col.data), n, blocks, mask, words);
      break;
    case DataType::kDictCode:
      primitives::simd::bloom_kernels<uint32_t>().probe_bv(
          reinterpret_cast<const uint32_t*>(col.data), n, blocks, mask, words);
      break;
    case DataType::kInt64:
    case DataType::kDecimal:
      primitives::simd::bloom_kernels<int64_t>().probe_bv(
          reinterpret_cast<const int64_t*>(col.data), n, blocks, mask, words);
      break;
  }
}

// One Bloom probe for a whole run, widening the run value exactly as
// the per-row kernel widens tile elements.
bool RunMayContain(const TileColumn& col, const Predicate& pred, size_t r) {
  using storage::DataType;
  uint64_t key = 0;
  switch (col.type) {
    case DataType::kInt8:
      key = static_cast<uint64_t>(
          reinterpret_cast<const int8_t*>(col.run_values)[r]);
      break;
    case DataType::kInt16:
      key = static_cast<uint64_t>(
          reinterpret_cast<const int16_t*>(col.run_values)[r]);
      break;
    case DataType::kInt32:
    case DataType::kDate:
      key = static_cast<uint64_t>(
          reinterpret_cast<const int32_t*>(col.run_values)[r]);
      break;
    case DataType::kDictCode:
      key = static_cast<uint64_t>(
          reinterpret_cast<const uint32_t*>(col.run_values)[r]);
      break;
    case DataType::kInt64:
    case DataType::kDecimal:
      key = static_cast<uint64_t>(
          reinterpret_cast<const int64_t*>(col.run_values)[r]);
      break;
  }
  return pred.bloom->MayContain(key);
}

Result<size_t> Bind(const ColumnBinding& binding, const std::string& name) {
  auto it = binding.find(name);
  if (it == binding.end()) {
    return Status::NotFound("unbound column '" + name + "'");
  }
  return it->second;
}

// One run's predicate verdict in the column's native type, matching
// the per-row kernels' constant-cast semantics exactly (the constant
// truncates to T, comparisons happen in T).
template <typename T>
bool RunMatchesTyped(const Predicate& pred, T v) {
  using primitives::Compare;
  if (pred.kind == Predicate::Kind::kBetween) {
    return v >= static_cast<T>(pred.value) && v <= static_cast<T>(pred.value2);
  }
  const T c = static_cast<T>(pred.value);
  switch (pred.op) {
    case CmpOp::kEq:
      return Compare<CmpOp::kEq, T>(v, c);
    case CmpOp::kNe:
      return Compare<CmpOp::kNe, T>(v, c);
    case CmpOp::kLt:
      return Compare<CmpOp::kLt, T>(v, c);
    case CmpOp::kLe:
      return Compare<CmpOp::kLe, T>(v, c);
    case CmpOp::kGt:
      return Compare<CmpOp::kGt, T>(v, c);
    case CmpOp::kGe:
      return Compare<CmpOp::kGe, T>(v, c);
  }
  return false;
}

bool RunMatches(const TileColumn& col, const Predicate& pred, size_t r) {
  using storage::DataType;
  if (pred.kind == Predicate::Kind::kBloom) {
    return RunMayContain(col, pred, r);
  }
  if (pred.kind == Predicate::Kind::kInSet) {
    // Mirrors FilterDictSetBv / the widened membership probe.
    if (col.type == DataType::kDictCode) {
      const uint32_t code =
          reinterpret_cast<const uint32_t*>(col.run_values)[r];
      return code < pred.in_set.size() && pred.in_set.Test(code);
    }
    int64_t v = 0;
    switch (col.type) {
      case DataType::kInt8:
        v = reinterpret_cast<const int8_t*>(col.run_values)[r];
        break;
      case DataType::kInt16:
        v = reinterpret_cast<const int16_t*>(col.run_values)[r];
        break;
      case DataType::kInt32:
      case DataType::kDate:
        v = reinterpret_cast<const int32_t*>(col.run_values)[r];
        break;
      default:
        v = reinterpret_cast<const int64_t*>(col.run_values)[r];
        break;
    }
    return v >= 0 && static_cast<uint64_t>(v) < pred.in_set.size() &&
           pred.in_set.Test(static_cast<size_t>(v));
  }
  switch (col.type) {
    case DataType::kInt8:
      return RunMatchesTyped<int8_t>(
          pred, reinterpret_cast<const int8_t*>(col.run_values)[r]);
    case DataType::kInt16:
      return RunMatchesTyped<int16_t>(
          pred, reinterpret_cast<const int16_t*>(col.run_values)[r]);
    case DataType::kInt32:
    case DataType::kDate:
      return RunMatchesTyped<int32_t>(
          pred, reinterpret_cast<const int32_t*>(col.run_values)[r]);
    case DataType::kDictCode:
      return RunMatchesTyped<uint32_t>(
          pred, reinterpret_cast<const uint32_t*>(col.run_values)[r]);
    case DataType::kInt64:
    case DataType::kDecimal:
      return RunMatchesTyped<int64_t>(
          pred, reinterpret_cast<const int64_t*>(col.run_values)[r]);
  }
  return false;
}

// `run_level` (optional) reports whether the run-level short circuit
// fired, so RefinePredicate knows the charge was already run-based and
// skips its subset re-charge.
Status EvalPredicateImpl(ExecCtx& ctx, const Tile& tile,
                         const ColumnBinding& binding, const Predicate& pred,
                         BitVector* out, bool* run_level) {
  const size_t n = tile.rows;
  RAPID_ASSIGN_OR_RETURN(size_t ci, Bind(binding, pred.column));
  const TileColumn& col = tile.columns[ci];

  // Run-level short circuit (encoded scan path): when the accessor
  // staged this tile's RLE runs, single-column predicates evaluate
  // once per run and emit whole bit-vector spans — no expanded-row
  // reads at all. The spans reproduce the per-row kernels bit for bit;
  // only the modeled charge changes (per run + per output word).
  if (col.num_runs > 0 && pred.kind != Predicate::Kind::kCmpCol) {
    out->Resize(n);
    size_t row = 0;
    for (size_t r = 0; r < col.num_runs; ++r) {
      const uint32_t len = col.run_lengths[r];
      if (len != 0 && RunMatches(col, pred, r)) {
        out->SetRange(row, row + len);
      }
      row += len;
    }
    double per_row = ctx.params->filter_cycles_per_row /
                     ctx.params->simd.filter;
    if (pred.kind == Predicate::Kind::kBloom) {
      // One mix + block test per run instead of per row.
      per_row = ctx.params->bloom_probe_cycles_per_row /
                ctx.params->simd.bloom;
    }
    double cycles = per_row * (static_cast<double>(col.num_runs) +
                               static_cast<double>(n) / 64.0);
    if (pred.kind == Predicate::Kind::kBetween) cycles *= 2;
    ctx.ChargeCompute(cycles);
    ctx.ChargeVectorizationPenalty(col.num_runs);
    ctx.core->encoded_scan().runs_filtered += col.num_runs;
    if (run_level != nullptr) *run_level = true;
    return Status::OK();
  }

  double cycles = ctx.params->filter_cycles_per_row / ctx.params->simd.filter *
                  static_cast<double>(n);
  switch (pred.kind) {
    case Predicate::Kind::kCmpConst:
      FilterConstDispatch(col, n, pred.op, pred.value, out);
      break;
    case Predicate::Kind::kBloom:
      BloomProbeDispatch(col, n, *pred.bloom, out);
      cycles = ctx.params->bloom_probe_cycles_per_row /
               ctx.params->simd.bloom * static_cast<double>(n);
      break;
    case Predicate::Kind::kBetween:
      FilterBetweenDispatch(col, n, pred.value, pred.value2, out);
      cycles *= 2;  // two comparisons per row
      break;
    case Predicate::Kind::kInSet:
      if (col.type == storage::DataType::kDictCode) {
        primitives::FilterDictSetBv(reinterpret_cast<uint32_t*>(col.data), n,
                                    pred.in_set, out);
      } else {
        // Intermediates carry dict codes widened to int64; membership
        // testing is the same bitmap probe.
        out->Resize(n);
        for (size_t i = 0; i < n; ++i) {
          const int64_t v = col.GetInt(i);
          if (v >= 0 && static_cast<uint64_t>(v) < pred.in_set.size() &&
              pred.in_set.Test(static_cast<size_t>(v))) {
            out->Set(i);
          }
        }
      }
      break;
    case Predicate::Kind::kCmpCol: {
      RAPID_ASSIGN_OR_RETURN(size_t ci2, Bind(binding, pred.column2));
      const TileColumn& col2 = tile.columns[ci2];
      if (col.type != col2.type) {
        // Mixed physical widths: compare through the widened view (the
        // compiler would normally insert a widening cast primitive).
        out->Resize(n);
        for (size_t i = 0; i < n; ++i) {
          const int64_t a = col.GetInt(i);
          const int64_t b = col2.GetInt(i);
          bool hit = false;
          switch (pred.op) {
            case CmpOp::kEq:
              hit = a == b;
              break;
            case CmpOp::kNe:
              hit = a != b;
              break;
            case CmpOp::kLt:
              hit = a < b;
              break;
            case CmpOp::kLe:
              hit = a <= b;
              break;
            case CmpOp::kGt:
              hit = a > b;
              break;
            case CmpOp::kGe:
              hit = a >= b;
              break;
          }
          if (hit) out->Set(i);
        }
        break;
      }
      switch (storage::WidthOf(col.type)) {
        case 1:
          FilterColColTyped<int8_t>(pred.op, col, col2, n, out);
          break;
        case 2:
          FilterColColTyped<int16_t>(pred.op, col, col2, n, out);
          break;
        case 4:
          FilterColColTyped<int32_t>(pred.op, col, col2, n, out);
          break;
        default:
          FilterColColTyped<int64_t>(pred.op, col, col2, n, out);
          break;
      }
      break;
    }
  }
  ctx.ChargeCompute(cycles);
  ctx.ChargeVectorizationPenalty(n);
  return Status::OK();
}

}  // namespace

Status EvalPredicate(ExecCtx& ctx, const Tile& tile,
                     const ColumnBinding& binding, const Predicate& pred,
                     BitVector* out) {
  RAPID_RETURN_NOT_OK(EvalPredicateImpl(ctx, tile, binding, pred, out,
                                        nullptr));
  if (pred.kind == Predicate::Kind::kBloom) {
    ctx.core->join_filter().rows_pruned += tile.rows - out->CountOnes();
  }
  return Status::OK();
}

Status RefinePredicate(ExecCtx& ctx, const Tile& tile,
                       const ColumnBinding& binding, const Predicate& pred,
                       const BitVector& in, BitVector* out) {
  // Evaluate on the qualifying subset only: the bvld/filteq loop of
  // Listing 1 touches just the set rows. Functionally we evaluate the
  // predicate and intersect; the cycle charge reflects the subset.
  const size_t qualifying = in.CountOnes();
  BitVector full;
  bool run_level = false;
  RAPID_RETURN_NOT_OK(
      EvalPredicateImpl(ctx, tile, binding, pred, &full, &run_level));
  // Undo the full-tile charge and re-charge only the gathered rows.
  // The run-level path already charged per run (cheaper than either
  // side of this adjustment), so leave its charge alone.
  if (!run_level) {
    const double per_row =
        pred.kind == Predicate::Kind::kBloom
            ? ctx.params->bloom_probe_cycles_per_row / ctx.params->simd.bloom
            : ctx.params->filter_cycles_per_row / ctx.params->simd.filter;
    ctx.ChargeCompute(per_row * (static_cast<double>(qualifying) -
                                 static_cast<double>(tile.rows)));
  }
  *out = full;
  out->And(in);
  if (pred.kind == Predicate::Kind::kBloom) {
    ctx.core->join_filter().rows_pruned += qualifying - out->CountOnes();
  }
  return Status::OK();
}

}  // namespace rapid::core
