#include "core/qcomp/task_formation.h"

#include <algorithm>

#include "dpu/work_queue.h"

namespace rapid::core {

namespace {

constexpr size_t kMinTileRows = 64;
constexpr size_t kMaxTileRows = 4096;

size_t GroupDmemBytes(const std::vector<OpProfile>& ops, size_t first,
                      size_t last, size_t tile_rows) {
  size_t bytes = 0;
  for (size_t i = first; i <= last; ++i) {
    bytes += ops[i].state_bytes + ops[i].bytes_per_row * tile_rows;
  }
  return bytes;
}

}  // namespace

Result<size_t> MaxTileRows(const std::vector<OpProfile>& ops, size_t first,
                           size_t last, size_t dmem_bytes) {
  if (GroupDmemBytes(ops, first, last, kMinTileRows) > dmem_bytes) {
    return Status::OutOfMemory("operators do not fit DMEM at minimum tile");
  }
  size_t tile = kMinTileRows;
  while (tile < kMaxTileRows &&
         GroupDmemBytes(ops, first, last, tile * 2) <= dmem_bytes) {
    tile *= 2;
  }
  return tile;
}

Result<double> FormationCycles(const std::vector<OpProfile>& ops,
                               const std::vector<TaskGroup>& tasks,
                               size_t input_rows, size_t input_row_bytes,
                               const dpu::CostParams& params, int num_cores,
                               double largest_morsel_fraction) {
  // Rows and row width flowing into each task follow from cumulative
  // output ratios of preceding operators.
  double cycles = 0;
  double rows = static_cast<double>(input_rows);
  double row_bytes = static_cast<double>(input_row_bytes);
  for (const TaskGroup& task : tasks) {
    // Read the task input from DRAM, write the task output back; the
    // dpCore compute stream runs concurrently (double buffering), so
    // the task costs the max of the two streams plus per-tile setup.
    double out_rows = rows;
    double compute = 0;
    for (size_t i = task.first_op; i <= task.last_op; ++i) {
      compute += ops[i].cycles_per_row * out_rows;
      out_rows *= ops[i].output_ratio;
    }
    const double out_bytes =
        out_rows * static_cast<double>(ops[task.last_op].output_row_bytes);
    const double in_bytes = rows * row_bytes;
    const double transfer =
        (in_bytes + out_bytes) / params.dram_bytes_per_cycle;
    const double tiles =
        std::max(1.0, rows / static_cast<double>(task.tile_rows));
    const double task_total =
        std::max(transfer, compute) +
        tiles * (params.dms_tile_setup_cycles +
                 params.dms_column_switch_cycles);
    // Balanced makespan instead of a perfect round-robin split: the
    // largest morsel's remainder survives even under work stealing.
    cycles += dpu::BalancedMakespanCycles(
        task_total, task_total * largest_morsel_fraction, num_cores);
    rows = out_rows;
    row_bytes = static_cast<double>(ops[task.last_op].output_row_bytes);
  }
  return cycles;
}

Result<TaskFormation> FormTasks(const std::vector<OpProfile>& ops,
                                size_t dmem_bytes, size_t input_rows,
                                size_t input_row_bytes,
                                const dpu::CostParams& params, int num_cores,
                                double largest_morsel_fraction) {
  if (ops.empty()) {
    return Status::InvalidArgument("task formation needs >= 1 operator");
  }
  const size_t n = ops.size();
  if (n > 16) {
    return Status::NotSupported("task chains beyond 16 operators");
  }

  // Enumerate contiguous segmentations via bitmask over cut points.
  TaskFormation best;
  bool found = false;
  const uint32_t num_cuts = static_cast<uint32_t>(1) << (n - 1);
  for (uint32_t cuts = 0; cuts < num_cuts; ++cuts) {
    std::vector<TaskGroup> tasks;
    size_t first = 0;
    bool feasible = true;
    for (size_t i = 0; i < n; ++i) {
      const bool cut_after = (i + 1 == n) || ((cuts >> i) & 1);
      if (!cut_after) continue;
      auto tile = MaxTileRows(ops, first, i, dmem_bytes);
      if (!tile.ok()) {
        feasible = false;
        break;
      }
      tasks.push_back(TaskGroup{first, i, tile.value()});
      first = i + 1;
    }
    if (!feasible) continue;
    auto cycles = FormationCycles(ops, tasks, input_rows, input_row_bytes,
                                  params, num_cores, largest_morsel_fraction);
    if (!cycles.ok()) continue;
    if (!found || cycles.value() < best.cycles) {
      best.tasks = std::move(tasks);
      best.cycles = cycles.value();
      found = true;
    }
  }
  if (!found) {
    return Status::OutOfMemory(
        "no task formation fits the DMEM budget; split the pipeline");
  }
  return best;
}

}  // namespace rapid::core
