#include "core/qcomp/plan_serde.h"

#include <cctype>
#include <sstream>
#include <vector>

namespace rapid::core {

namespace {

// ---- Writer ----------------------------------------------------------------

void WriteString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void WriteExpr(std::ostringstream& os, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kColumn:
      os << "(col ";
      WriteString(os, e.column);
      os << ')';
      break;
    case Expr::Kind::kConst:
      os << "(const " << e.value << ' ' << e.scale << ')';
      break;
    case Expr::Kind::kBinary: {
      const char* op = e.op == primitives::ArithOp::kAdd
                           ? "add"
                           : e.op == primitives::ArithOp::kSub ? "sub"
                                                               : "mul";
      os << '(' << op << ' ';
      WriteExpr(os, *e.left);
      os << ' ';
      WriteExpr(os, *e.right);
      os << ')';
      break;
    }
  }
}

const char* CmpName(primitives::CmpOp op) {
  using primitives::CmpOp;
  switch (op) {
    case CmpOp::kEq:
      return "eq";
    case CmpOp::kNe:
      return "ne";
    case CmpOp::kLt:
      return "lt";
    case CmpOp::kLe:
      return "le";
    case CmpOp::kGt:
      return "gt";
    case CmpOp::kGe:
      return "ge";
  }
  return "?";
}

void WritePredicate(std::ostringstream& os, const Predicate& p) {
  switch (p.kind) {
    case Predicate::Kind::kCmpConst:
      os << "(cmp ";
      WriteString(os, p.column);
      os << ' ' << CmpName(p.op) << ' ' << p.value << ' ' << p.selectivity
         << ')';
      break;
    case Predicate::Kind::kBetween:
      os << "(between ";
      WriteString(os, p.column);
      os << ' ' << p.value << ' ' << p.value2 << ' ' << p.selectivity << ')';
      break;
    case Predicate::Kind::kInSet: {
      os << "(inset ";
      WriteString(os, p.column);
      os << ' ' << p.in_set.size() << " (";
      std::vector<uint32_t> rids;
      p.in_set.ToRids(&rids);
      for (size_t i = 0; i < rids.size(); ++i) {
        os << (i ? " " : "") << rids[i];
      }
      os << ") " << p.selectivity << ')';
      break;
    }
    case Predicate::Kind::kCmpCol:
      os << "(cmpcol ";
      WriteString(os, p.column);
      os << ' ' << CmpName(p.op) << ' ';
      WriteString(os, p.column2);
      os << ' ' << p.selectivity << ')';
      break;
    case Predicate::Kind::kBloom:
      // Bloom predicates are injected at execution time from a
      // built join filter (they hold a non-owning pointer into the
      // executing step); they never appear in serialized plans.
      break;
  }
}

void WritePredicates(std::ostringstream& os,
                     const std::vector<Predicate>& preds) {
  os << "(preds";
  for (const Predicate& p : preds) {
    os << ' ';
    WritePredicate(os, p);
  }
  os << ')';
}

void WriteNames(std::ostringstream& os, const char* tag,
                const std::vector<std::string>& names) {
  os << '(' << tag;
  for (const std::string& n : names) {
    os << ' ';
    WriteString(os, n);
  }
  os << ')';
}

const char* AggName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kCount:
      return "count";
  }
  return "?";
}

const char* WindowName(WindowFunc f) {
  switch (f) {
    case WindowFunc::kRowNumber:
      return "rownum";
    case WindowFunc::kRank:
      return "rank";
    case WindowFunc::kDenseRank:
      return "denserank";
    case WindowFunc::kRunningSum:
      return "runsum";
    case WindowFunc::kPartitionSum:
      return "partsum";
  }
  return "?";
}

void WriteNode(std::ostringstream& os, const LogicalNode& n) {
  using Kind = LogicalNode::Kind;
  switch (n.kind) {
    case Kind::kScan:
      os << "(scan ";
      WriteString(os, n.table);
      os << ' ';
      WriteNames(os, "cols", n.columns);
      os << ' ';
      WritePredicates(os, n.predicates);
      os << ')';
      break;
    case Kind::kFilter:
      os << "(filter ";
      WriteNode(os, *n.input);
      os << ' ';
      WritePredicates(os, n.predicates);
      os << ' ';
      WriteNames(os, "cols", n.columns);
      os << ')';
      break;
    case Kind::kProject:
      os << "(project ";
      WriteNode(os, *n.input);
      os << " (exprs";
      for (const auto& [name, expr] : n.projections) {
        os << " (";
        WriteString(os, name);
        os << ' ';
        WriteExpr(os, *expr);
        os << ')';
      }
      os << "))";
      break;
    case Kind::kJoin: {
      const char* type = n.join_type == JoinType::kInner
                             ? "inner"
                             : n.join_type == JoinType::kSemi
                                   ? "semi"
                                   : n.join_type == JoinType::kAnti
                                         ? "anti"
                                         : "leftouter";
      os << "(join " << type << ' ';
      WriteNode(os, *n.input);
      os << ' ';
      WriteNode(os, *n.right);
      os << ' ';
      WriteNames(os, "lkeys", n.left_keys);
      os << ' ';
      WriteNames(os, "rkeys", n.right_keys);
      os << ' ';
      WriteNames(os, "out", n.output_columns);
      os << ')';
      break;
    }
    case Kind::kGroupBy:
      os << "(groupby ";
      WriteNode(os, *n.input);
      os << " (keys";
      for (const auto& [name, expr] : n.group_keys) {
        os << " (";
        WriteString(os, name);
        os << ' ';
        WriteExpr(os, *expr);
        os << ')';
      }
      os << ") (aggs";
      for (const AggSpec& a : n.aggregates) {
        os << " (";
        WriteString(os, a.name);
        os << ' ' << AggName(a.func) << ' ';
        if (a.expr != nullptr) {
          WriteExpr(os, *a.expr);
        } else {
          os << "nil";
        }
        os << ' ';
        if (a.filter != nullptr) {
          WritePredicate(os, *a.filter);
        } else {
          os << "nil";
        }
        os << ')';
      }
      os << "))";
      break;
    case Kind::kSort:
    case Kind::kTopK:
      os << (n.kind == Kind::kSort ? "(sort " : "(topk ");
      WriteNode(os, *n.input);
      os << " (keys";
      for (const auto& [name, asc] : n.sort_keys) {
        os << " (";
        WriteString(os, name);
        os << (asc ? " asc)" : " desc)");
      }
      os << ')';
      if (n.kind == Kind::kTopK) os << ' ' << n.limit;
      os << ')';
      break;
    case Kind::kSetOp: {
      const char* kind = n.setop == SetOpKind::kUnion
                             ? "union"
                             : n.setop == SetOpKind::kIntersect ? "intersect"
                                                                : "minus";
      os << "(setop " << kind << ' ';
      WriteNode(os, *n.input);
      os << ' ';
      WriteNode(os, *n.right);
      os << ')';
      break;
    }
    case Kind::kWindow:
      os << "(window ";
      WriteNode(os, *n.input);
      os << " (funcs";
      for (const LogicalWindow& w : n.windows) {
        os << " (" << WindowName(w.func) << ' ';
        WriteNames(os, "part", w.partition_by);
        os << " (order";
        for (const auto& [name, asc] : w.order_by) {
          os << " (";
          WriteString(os, name);
          os << (asc ? " asc)" : " desc)");
        }
        os << ") ";
        WriteString(os, w.value_column);
        os << ' ';
        WriteString(os, w.output_name);
        os << ')';
      }
      os << "))";
      break;
  }
}

// ---- Reader ----------------------------------------------------------------

// Minimal s-expression tokenizer/parser. Tokens: '(' ')' quoted
// strings, and atoms (numbers / identifiers).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Status Expect(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  bool TryConsume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> Atom() {
    SkipWs();
    const size_t start = pos_;
    while (pos_ < text_.size() && !std::isspace(
               static_cast<unsigned char>(text_[pos_])) &&
           text_[pos_] != '(' && text_[pos_] != ')') {
      ++pos_;
    }
    if (pos_ == start) return Error("expected atom");
    return text_.substr(start, pos_ - start);
  }

  Result<std::string> QuotedString() {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;
    return out;
  }

  Result<int64_t> Int() {
    RAPID_ASSIGN_OR_RETURN(std::string a, Atom());
    try {
      return static_cast<int64_t>(std::stoll(a));
    } catch (...) {
      return Error("expected integer, got '" + a + "'");
    }
  }

  Result<double> Double() {
    RAPID_ASSIGN_OR_RETURN(std::string a, Atom());
    try {
      return std::stod(a);
    } catch (...) {
      return Error("expected number, got '" + a + "'");
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  // True if the next non-whitespace character opens an s-expression
  // (without consuming it).
  bool PeekOpenParen() {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == '(';
  }

  Status Error(const std::string& msg) {
    return Status::InvalidArgument("plan parse error at offset " +
                                   std::to_string(pos_) + ": " + msg);
  }

  // Parses either a quoted string or the bare atom `nil` (returns "").
  Result<std::string> StringOrNil() {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '"') return QuotedString();
    RAPID_ASSIGN_OR_RETURN(std::string a, Atom());
    if (a != "nil") return Error("expected string or nil");
    return std::string();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<primitives::CmpOp> ParseCmp(const std::string& name, Parser* p) {
  using primitives::CmpOp;
  if (name == "eq") return CmpOp::kEq;
  if (name == "ne") return CmpOp::kNe;
  if (name == "lt") return CmpOp::kLt;
  if (name == "le") return CmpOp::kLe;
  if (name == "gt") return CmpOp::kGt;
  if (name == "ge") return CmpOp::kGe;
  return p->Error("unknown comparison '" + name + "'");
}

Result<ExprPtr> ReadExpr(Parser* p) {
  RAPID_RETURN_NOT_OK(p->Expect('('));
  RAPID_ASSIGN_OR_RETURN(std::string head, p->Atom());
  if (head == "col") {
    RAPID_ASSIGN_OR_RETURN(std::string name, p->QuotedString());
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    return Expr::Col(name);
  }
  if (head == "const") {
    RAPID_ASSIGN_OR_RETURN(int64_t value, p->Int());
    RAPID_ASSIGN_OR_RETURN(int64_t scale, p->Int());
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::kConst;
    e->value = value;
    e->scale = static_cast<int>(scale);
    return ExprPtr(e);
  }
  if (head == "add" || head == "sub" || head == "mul") {
    RAPID_ASSIGN_OR_RETURN(ExprPtr l, ReadExpr(p));
    RAPID_ASSIGN_OR_RETURN(ExprPtr r, ReadExpr(p));
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    if (head == "add") return Expr::Add(l, r);
    if (head == "sub") return Expr::Sub(l, r);
    return Expr::Mul(l, r);
  }
  return p->Error("unknown expression '" + head + "'");
}

Result<Predicate> ReadPredicate(Parser* p) {
  RAPID_RETURN_NOT_OK(p->Expect('('));
  RAPID_ASSIGN_OR_RETURN(std::string head, p->Atom());
  if (head == "cmp") {
    RAPID_ASSIGN_OR_RETURN(std::string col, p->QuotedString());
    RAPID_ASSIGN_OR_RETURN(std::string op_name, p->Atom());
    RAPID_ASSIGN_OR_RETURN(primitives::CmpOp op, ParseCmp(op_name, p));
    RAPID_ASSIGN_OR_RETURN(int64_t value, p->Int());
    RAPID_ASSIGN_OR_RETURN(double sel, p->Double());
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    return Predicate::CmpConst(col, op, value, sel);
  }
  if (head == "between") {
    RAPID_ASSIGN_OR_RETURN(std::string col, p->QuotedString());
    RAPID_ASSIGN_OR_RETURN(int64_t lo, p->Int());
    RAPID_ASSIGN_OR_RETURN(int64_t hi, p->Int());
    RAPID_ASSIGN_OR_RETURN(double sel, p->Double());
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    return Predicate::Between(col, lo, hi, sel);
  }
  if (head == "inset") {
    RAPID_ASSIGN_OR_RETURN(std::string col, p->QuotedString());
    RAPID_ASSIGN_OR_RETURN(int64_t size, p->Int());
    RAPID_RETURN_NOT_OK(p->Expect('('));
    BitVector set(static_cast<size_t>(size));
    while (!p->TryConsume(')')) {
      RAPID_ASSIGN_OR_RETURN(int64_t bit, p->Int());
      if (bit < 0 || bit >= size) return p->Error("inset bit out of range");
      set.Set(static_cast<size_t>(bit));
    }
    RAPID_ASSIGN_OR_RETURN(double sel, p->Double());
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    return Predicate::InSet(col, std::move(set), sel);
  }
  if (head == "cmpcol") {
    RAPID_ASSIGN_OR_RETURN(std::string left, p->QuotedString());
    RAPID_ASSIGN_OR_RETURN(std::string op_name, p->Atom());
    RAPID_ASSIGN_OR_RETURN(primitives::CmpOp op, ParseCmp(op_name, p));
    RAPID_ASSIGN_OR_RETURN(std::string right, p->QuotedString());
    RAPID_ASSIGN_OR_RETURN(double sel, p->Double());
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    return Predicate::CmpCol(left, op, right, sel);
  }
  return p->Error("unknown predicate '" + head + "'");
}

Result<std::vector<Predicate>> ReadPredicates(Parser* p) {
  RAPID_RETURN_NOT_OK(p->Expect('('));
  RAPID_ASSIGN_OR_RETURN(std::string tag, p->Atom());
  if (tag != "preds") return p->Error("expected (preds ...)");
  std::vector<Predicate> out;
  while (!p->TryConsume(')')) {
    RAPID_ASSIGN_OR_RETURN(Predicate pred, ReadPredicate(p));
    out.push_back(std::move(pred));
  }
  return out;
}

Result<std::vector<std::string>> ReadNames(Parser* p, const char* tag) {
  RAPID_RETURN_NOT_OK(p->Expect('('));
  RAPID_ASSIGN_OR_RETURN(std::string got, p->Atom());
  if (got != tag) {
    return p->Error(std::string("expected (") + tag + " ...), got " + got);
  }
  std::vector<std::string> out;
  while (!p->TryConsume(')')) {
    RAPID_ASSIGN_OR_RETURN(std::string name, p->QuotedString());
    out.push_back(std::move(name));
  }
  return out;
}

Result<std::vector<std::pair<std::string, bool>>> ReadSortKeys(Parser* p) {
  RAPID_RETURN_NOT_OK(p->Expect('('));
  RAPID_ASSIGN_OR_RETURN(std::string tag, p->Atom());
  if (tag != "keys" && tag != "order") return p->Error("expected sort keys");
  std::vector<std::pair<std::string, bool>> out;
  while (!p->TryConsume(')')) {
    RAPID_RETURN_NOT_OK(p->Expect('('));
    RAPID_ASSIGN_OR_RETURN(std::string name, p->QuotedString());
    RAPID_ASSIGN_OR_RETURN(std::string dir, p->Atom());
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    out.emplace_back(name, dir == "asc");
  }
  return out;
}

Result<LogicalPtr> ReadNode(Parser* p) {
  RAPID_RETURN_NOT_OK(p->Expect('('));
  RAPID_ASSIGN_OR_RETURN(std::string head, p->Atom());

  if (head == "scan") {
    RAPID_ASSIGN_OR_RETURN(std::string table, p->QuotedString());
    RAPID_ASSIGN_OR_RETURN(std::vector<std::string> cols,
                           ReadNames(p, "cols"));
    RAPID_ASSIGN_OR_RETURN(std::vector<Predicate> preds, ReadPredicates(p));
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    return LogicalNode::Scan(table, cols, preds);
  }
  if (head == "filter") {
    RAPID_ASSIGN_OR_RETURN(LogicalPtr input, ReadNode(p));
    RAPID_ASSIGN_OR_RETURN(std::vector<Predicate> preds, ReadPredicates(p));
    RAPID_ASSIGN_OR_RETURN(std::vector<std::string> cols,
                           ReadNames(p, "cols"));
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    return LogicalNode::Filter(input, preds, cols);
  }
  if (head == "project") {
    RAPID_ASSIGN_OR_RETURN(LogicalPtr input, ReadNode(p));
    RAPID_RETURN_NOT_OK(p->Expect('('));
    RAPID_ASSIGN_OR_RETURN(std::string tag, p->Atom());
    if (tag != "exprs") return p->Error("expected (exprs ...)");
    std::vector<std::pair<std::string, ExprPtr>> projections;
    while (!p->TryConsume(')')) {
      RAPID_RETURN_NOT_OK(p->Expect('('));
      RAPID_ASSIGN_OR_RETURN(std::string name, p->QuotedString());
      RAPID_ASSIGN_OR_RETURN(ExprPtr expr, ReadExpr(p));
      RAPID_RETURN_NOT_OK(p->Expect(')'));
      projections.emplace_back(name, expr);
    }
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    return LogicalNode::Project(input, std::move(projections));
  }
  if (head == "join") {
    RAPID_ASSIGN_OR_RETURN(std::string type_name, p->Atom());
    JoinType type;
    if (type_name == "inner") {
      type = JoinType::kInner;
    } else if (type_name == "semi") {
      type = JoinType::kSemi;
    } else if (type_name == "anti") {
      type = JoinType::kAnti;
    } else if (type_name == "leftouter") {
      type = JoinType::kLeftOuter;
    } else {
      return p->Error("unknown join type '" + type_name + "'");
    }
    RAPID_ASSIGN_OR_RETURN(LogicalPtr left, ReadNode(p));
    RAPID_ASSIGN_OR_RETURN(LogicalPtr right, ReadNode(p));
    RAPID_ASSIGN_OR_RETURN(std::vector<std::string> lkeys,
                           ReadNames(p, "lkeys"));
    RAPID_ASSIGN_OR_RETURN(std::vector<std::string> rkeys,
                           ReadNames(p, "rkeys"));
    RAPID_ASSIGN_OR_RETURN(std::vector<std::string> out, ReadNames(p, "out"));
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    return LogicalNode::Join(left, right, lkeys, rkeys, out, type);
  }
  if (head == "groupby") {
    RAPID_ASSIGN_OR_RETURN(LogicalPtr input, ReadNode(p));
    RAPID_RETURN_NOT_OK(p->Expect('('));
    RAPID_ASSIGN_OR_RETURN(std::string tag, p->Atom());
    if (tag != "keys") return p->Error("expected (keys ...)");
    std::vector<std::pair<std::string, ExprPtr>> keys;
    while (!p->TryConsume(')')) {
      RAPID_RETURN_NOT_OK(p->Expect('('));
      RAPID_ASSIGN_OR_RETURN(std::string name, p->QuotedString());
      RAPID_ASSIGN_OR_RETURN(ExprPtr expr, ReadExpr(p));
      RAPID_RETURN_NOT_OK(p->Expect(')'));
      keys.emplace_back(name, expr);
    }
    RAPID_RETURN_NOT_OK(p->Expect('('));
    RAPID_ASSIGN_OR_RETURN(tag, p->Atom());
    if (tag != "aggs") return p->Error("expected (aggs ...)");
    std::vector<AggSpec> aggs;
    while (!p->TryConsume(')')) {
      RAPID_RETURN_NOT_OK(p->Expect('('));
      AggSpec spec;
      RAPID_ASSIGN_OR_RETURN(spec.name, p->QuotedString());
      RAPID_ASSIGN_OR_RETURN(std::string func, p->Atom());
      if (func == "sum") {
        spec.func = AggFunc::kSum;
      } else if (func == "min") {
        spec.func = AggFunc::kMin;
      } else if (func == "max") {
        spec.func = AggFunc::kMax;
      } else if (func == "count") {
        spec.func = AggFunc::kCount;
      } else {
        return p->Error("unknown aggregate '" + func + "'");
      }
      // Input expression: an s-expression or the atom `nil`.
      if (p->PeekOpenParen()) {
        RAPID_ASSIGN_OR_RETURN(spec.expr, ReadExpr(p));
      } else {
        RAPID_ASSIGN_OR_RETURN(std::string nil, p->Atom());
        if (nil != "nil") return p->Error("expected expr or nil");
      }
      // Optional FILTER clause: a predicate or `nil`.
      if (p->PeekOpenParen()) {
        RAPID_ASSIGN_OR_RETURN(Predicate pred, ReadPredicate(p));
        spec.filter = std::make_shared<Predicate>(std::move(pred));
      } else {
        RAPID_ASSIGN_OR_RETURN(std::string nil, p->Atom());
        if (nil != "nil") return p->Error("expected predicate or nil");
      }
      RAPID_RETURN_NOT_OK(p->Expect(')'));
      aggs.push_back(std::move(spec));
    }
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    return LogicalNode::GroupBy(input, std::move(keys), std::move(aggs));
  }
  if (head == "sort" || head == "topk") {
    RAPID_ASSIGN_OR_RETURN(LogicalPtr input, ReadNode(p));
    RAPID_ASSIGN_OR_RETURN(auto keys, ReadSortKeys(p));
    if (head == "topk") {
      RAPID_ASSIGN_OR_RETURN(int64_t k, p->Int());
      RAPID_RETURN_NOT_OK(p->Expect(')'));
      return LogicalNode::TopK(input, keys, static_cast<size_t>(k));
    }
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    return LogicalNode::Sort(input, keys);
  }
  if (head == "setop") {
    RAPID_ASSIGN_OR_RETURN(std::string kind_name, p->Atom());
    SetOpKind kind;
    if (kind_name == "union") {
      kind = SetOpKind::kUnion;
    } else if (kind_name == "intersect") {
      kind = SetOpKind::kIntersect;
    } else if (kind_name == "minus") {
      kind = SetOpKind::kMinus;
    } else {
      return p->Error("unknown set op '" + kind_name + "'");
    }
    RAPID_ASSIGN_OR_RETURN(LogicalPtr left, ReadNode(p));
    RAPID_ASSIGN_OR_RETURN(LogicalPtr right, ReadNode(p));
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    return LogicalNode::SetOp(kind, left, right);
  }
  if (head == "window") {
    RAPID_ASSIGN_OR_RETURN(LogicalPtr input, ReadNode(p));
    RAPID_RETURN_NOT_OK(p->Expect('('));
    RAPID_ASSIGN_OR_RETURN(std::string tag, p->Atom());
    if (tag != "funcs") return p->Error("expected (funcs ...)");
    std::vector<LogicalWindow> windows;
    while (!p->TryConsume(')')) {
      RAPID_RETURN_NOT_OK(p->Expect('('));
      LogicalWindow w;
      RAPID_ASSIGN_OR_RETURN(std::string func, p->Atom());
      if (func == "rownum") {
        w.func = WindowFunc::kRowNumber;
      } else if (func == "rank") {
        w.func = WindowFunc::kRank;
      } else if (func == "denserank") {
        w.func = WindowFunc::kDenseRank;
      } else if (func == "runsum") {
        w.func = WindowFunc::kRunningSum;
      } else if (func == "partsum") {
        w.func = WindowFunc::kPartitionSum;
      } else {
        return p->Error("unknown window function '" + func + "'");
      }
      RAPID_ASSIGN_OR_RETURN(w.partition_by, ReadNames(p, "part"));
      RAPID_ASSIGN_OR_RETURN(w.order_by, ReadSortKeys(p));
      RAPID_ASSIGN_OR_RETURN(w.value_column, p->StringOrNil());
      RAPID_ASSIGN_OR_RETURN(w.output_name, p->QuotedString());
      RAPID_RETURN_NOT_OK(p->Expect(')'));
      windows.push_back(std::move(w));
    }
    RAPID_RETURN_NOT_OK(p->Expect(')'));
    return LogicalNode::Window(input, std::move(windows));
  }
  return p->Error("unknown node '" + head + "'");
}

}  // namespace

std::string SerializeExpr(const Expr& expr) {
  std::ostringstream os;
  WriteExpr(os, expr);
  return os.str();
}

Result<ExprPtr> ParseExpr(const std::string& text) {
  Parser p(text);
  RAPID_ASSIGN_OR_RETURN(ExprPtr e, ReadExpr(&p));
  if (!p.AtEnd()) return p.Error("trailing input");
  return e;
}

std::string SerializePlan(const LogicalPtr& plan) {
  std::ostringstream os;
  if (plan != nullptr) WriteNode(os, *plan);
  return os.str();
}

Result<LogicalPtr> ParsePlan(const std::string& text) {
  Parser p(text);
  RAPID_ASSIGN_OR_RETURN(LogicalPtr plan, ReadNode(&p));
  if (!p.AtEnd()) return p.Error("trailing input after plan");
  return plan;
}

}  // namespace rapid::core
